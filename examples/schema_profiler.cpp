// Schema profiler: load a CSV, mine an approximate acyclic schema with the
// J-measure-guided miner, and report the loss with the paper's bounds.
// This is the end-to-end workflow the paper motivates (Section 1): fitting
// an acyclic schema to a dataset while controlling the number of spurious
// tuples.
//
//   ./build/examples/schema_profiler [data.csv [max_bag_size]]
//
// Without arguments, a built-in employee dataset is profiled.
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "core/analysis.h"
#include "discovery/fd.h"
#include "discovery/miner.h"
#include "discovery/normalize.h"
#include "io/csv.h"
#include "jointree/gyo.h"
#include "relation/ops.h"

namespace {

const char* kDemoCsv =
    "emp,dept,building,city,dept_head\n"
    "ann,db,dragon,seattle,codd\n"
    "bob,db,dragon,seattle,codd\n"
    "cat,db,dragon,seattle,codd\n"
    "dan,ml,lion,portland,mitchell\n"
    "eve,ml,lion,portland,mitchell\n"
    "fay,sys,lion,portland,tanenbaum\n"
    "gil,sys,lion,portland,tanenbaum\n"
    "hal,net,tiger,seattle,cerf\n"
    "ivy,net,tiger,seattle,cerf\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace ajd;

  Result<Relation> loaded = [&]() -> Result<Relation> {
    if (argc > 1) return ReadCsvFile(argv[1]);
    std::istringstream in(kDemoCsv);
    return ReadCsv(in);
  }();
  if (!loaded.ok()) {
    std::printf("failed to load data: %s\n",
                loaded.status().ToString().c_str());
    return 1;
  }
  const Relation& r = loaded.value();
  std::printf("loaded relation: %s (N = %llu)\n",
              r.schema().ToString().c_str(),
              static_cast<unsigned long long>(r.NumRows()));

  MinerOptions options;
  options.max_bag_size =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 2;
  options.max_separator_size = 2;
  options.cmi_threshold = 1e-6;

  Result<MinerReport> mined = MineJoinTree(r, options);
  if (!mined.ok()) {
    std::printf("mining failed: %s\n", mined.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", mined.value().ToString(r.schema()).c_str());

  Result<AjdAnalysis> analysis = AnalyzeAjd(r, mined.value().tree);
  if (!analysis.ok()) {
    std::printf("analysis failed: %s\n",
                analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", analysis.value().ToString().c_str());

  // Storage accounting for the factorized representation.
  uint64_t original_cells = r.NumRows() * r.NumAttrs();
  uint64_t decomposed_cells = 0;
  for (uint32_t v = 0; v < mined.value().tree.NumNodes(); ++v) {
    AttrSet bag = mined.value().tree.bag(v);
    decomposed_cells += CountDistinct(r, bag) * bag.Count();
  }
  std::printf(
      "\nstorage: %llu cells originally, %llu cells decomposed (%.1f%%)\n",
      static_cast<unsigned long long>(original_cells),
      static_cast<unsigned long long>(decomposed_cells),
      100.0 * static_cast<double>(decomposed_cells) /
          static_cast<double>(original_cells));

  // Explain WHY: the functional dependencies behind the schema, and how
  // classic BCNF normalization compares to the mined decomposition.
  Result<std::vector<Fd>> fds = DiscoverFds(r);
  if (fds.ok()) {
    std::printf("\nfunctional dependencies (minimal, exact):\n");
    for (const Fd& fd : fds.value()) {
      std::printf("  %s\n", fd.ToString(r.schema()).c_str());
    }
    Result<std::vector<AttrSet>> bcnf =
        BcnfDecompose(r.schema().AllAttrs(), fds.value());
    if (bcnf.ok()) {
      std::printf("BCNF decomposition from those FDs:\n");
      for (AttrSet bag : bcnf.value()) {
        std::string names = "{";
        bool first = true;
        bag.ForEach([&](uint32_t pos) {
          if (!first) names += ",";
          first = false;
          names += r.schema().attr(pos).name;
        });
        std::printf("  %s}\n", names.c_str());
      }
      Result<JoinTree> bcnf_tree = BuildJoinTree(bcnf.value());
      if (bcnf_tree.ok()) {
        Result<AjdAnalysis> bcnf_analysis = AnalyzeAjd(r, bcnf_tree.value());
        if (bcnf_analysis.ok()) {
          std::printf("BCNF schema loss: rho = %g (lossless by "
                      "construction)\n",
                      bcnf_analysis.value().loss.rho);
        }
      } else {
        std::printf("(BCNF schema is cyclic; AJD analysis not applicable)\n");
      }
    }
  }
  return 0;
}
