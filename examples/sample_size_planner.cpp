// Sample-size planner: invert Theorem 5.1. Given the attribute domain
// sizes of an MVD C ->> A | B and a target certainty, how many tuples must
// a dataset have before the information-theoretic proxy I(A;B|C) certifies
// the spurious-tuple fraction within a chosen budget?
//
//   ./build/examples/sample_size_planner [dA [dC [delta]]]
//
// This is the planning question behind the paper's "applications that
// apply factorization as a means of compression, while wishing to maintain
// the integrity of the data" (Section 1).
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/bounds.h"
#include "core/certificate.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ajd;
  const uint64_t d_a =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1 << 10;
  const uint64_t d_c = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 64;
  const double delta = argc > 3 ? std::atof(argv[3]) : 0.05;

  std::printf("Planning for MVD C ->> A | B with dA = dB = %llu, dC = %llu,"
              " delta = %g\n\n",
              static_cast<unsigned long long>(d_a),
              static_cast<unsigned long long>(d_c), delta);

  std::printf("Qualifying sample size (Eq. 37): N >= %s\n\n",
              FormatDouble(Theorem51MinN(d_a, d_a, d_c, delta), 4).c_str());

  TablePrinter table({"target eps (nats)", "== rho slack factor", "min N",
                      "N / (dA*dC)"});
  for (double eps : {2.0, 1.0, 0.5, 0.2, 0.1}) {
    Result<uint64_t> n = PlanSampleSize(d_a, d_a, d_c, delta, eps);
    if (!n.ok()) {
      table.AddRow({FormatDouble(eps, 3), FormatDouble(std::exp(eps), 4),
                    "unreachable", "-"});
      continue;
    }
    table.AddRow(
        {FormatDouble(eps, 3), FormatDouble(std::exp(eps), 4),
         std::to_string(n.value()),
         FormatDouble(static_cast<double>(n.value()) /
                          (static_cast<double>(d_a) *
                           static_cast<double>(d_c)),
                      4)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading: eps is the additive gap between ln(1+rho) and I(A;B|C)\n"
      "that Theorem 5.1 certifies with probability 1-delta; e^eps is the\n"
      "multiplicative slack on (1+rho). The required N scales like\n"
      "dA*max(dA,dC) times polylog factors — the paper's N = omega(dA*dC)\n"
      "regime made concrete.\n");
  return 0;
}
