// Compression audit: factorize a synthetic sales dataset through a declared
// snowflake-style acyclic schema (the paper's Section 1 application [22]:
// factorization as compression while maintaining data integrity), measure
// the storage savings, and audit the integrity loss with the paper's
// J-measure / KL machinery — including materializing the actual spurious
// tuples for inspection.
//
//   ./build/examples/compression_audit
#include <cstdio>

#include "core/analysis.h"
#include "io/table_printer.h"
#include "jointree/gyo.h"
#include "random/rng.h"
#include "relation/acyclic_join.h"
#include "relation/ops.h"
#include "util/string_util.h"

namespace {

using namespace ajd;

// sales(order, customer, region, product, category): region is determined
// by customer; category by product — except for a few "dirty" rows that
// violate the hierarchy (real data is noisy; Section 1).
Relation MakeSales(uint32_t orders, uint32_t dirty, Rng* rng) {
  Schema schema = Schema::Make({{"order_id", 0},
                                {"customer", 0},
                                {"region", 0},
                                {"product", 0},
                                {"category", 0}})
                      .value();
  RelationBuilder b(schema);
  const uint32_t num_customers = 40, num_regions = 5;
  const uint32_t num_products = 30, num_categories = 6;
  for (uint32_t o = 0; o < orders; ++o) {
    uint32_t customer = static_cast<uint32_t>(rng->UniformU64(num_customers));
    uint32_t product = static_cast<uint32_t>(rng->UniformU64(num_products));
    bool is_dirty = o < dirty;
    uint32_t region = is_dirty
                          ? static_cast<uint32_t>(rng->UniformU64(num_regions))
                          : customer % num_regions;
    uint32_t category = product % num_categories;
    b.AddRow({o, customer, region, product, category});
  }
  return std::move(b).Build();
}

}  // namespace

int main() {
  using namespace ajd;
  Rng rng(1618);
  Relation clean = MakeSales(500, /*dirty=*/0, &rng);
  Relation dirty = MakeSales(500, /*dirty=*/12, &rng);

  // Declared snowflake decomposition:
  //   fact(order, customer, product) + dim(customer, region) +
  //   dim(product, category).
  auto schema_of = [](const Relation& r) {
    AttrSet fact = r.schema().SetOf({"order_id", "customer", "product"})
                       .value();
    AttrSet dim_customer = r.schema().SetOf({"customer", "region"}).value();
    AttrSet dim_product = r.schema().SetOf({"product", "category"}).value();
    return std::vector<AttrSet>{fact, dim_customer, dim_product};
  };

  TablePrinter table({"dataset", "N", "rho", "J (nats)", "rho >= e^J-1",
                      "cells saved", "verdict"});
  for (const auto& [name, rel] :
       {std::pair<const char*, const Relation*>{"clean", &clean},
        std::pair<const char*, const Relation*>{"dirty", &dirty}}) {
    Result<JoinTree> tree = BuildJoinTree(schema_of(*rel));
    if (!tree.ok()) {
      std::printf("schema not acyclic: %s\n",
                  tree.status().ToString().c_str());
      return 1;
    }
    AjdAnalysis a = AnalyzeAjd(*rel, tree.value()).value();
    uint64_t original = rel->NumRows() * rel->NumAttrs();
    uint64_t decomposed = 0;
    for (uint32_t v = 0; v < tree.value().NumNodes(); ++v) {
      AttrSet bag = tree.value().bag(v);
      decomposed += CountDistinct(*rel, bag) * bag.Count();
    }
    table.AddRow({name, std::to_string(rel->NumRows()),
                  FormatDouble(a.loss.rho, 5), FormatDouble(a.j, 5),
                  FormatDouble(a.rho_lower_bound, 5),
                  FormatDouble(100.0 * (1.0 - static_cast<double>(decomposed) /
                                                  static_cast<double>(original)),
                               3) + "%",
                  a.lossless ? "SAFE to factorize" : "LOSSY"});
  }
  std::printf("%s\n", table.Render().c_str());

  // For the dirty dataset, show a few concrete phantom rows the factorized
  // store would invent.
  Result<JoinTree> tree = BuildJoinTree(schema_of(dirty));
  Relation spurious = SpuriousTuples(dirty, tree.value()).value();
  std::printf("dirty dataset: %llu spurious tuples; first few:\n",
              static_cast<unsigned long long>(spurious.NumRows()));
  std::printf("%s", spurious.ToString(5).c_str());
  std::printf(
      "\nReading: on clean data the snowflake factorization is lossless and\n"
      "saves storage; 12 dirty rows make it lossy, and the J-measure flags\n"
      "it BEFORE any join is materialized (Lemma 4.1's bound is the\n"
      "certificate).\n");
  return 0;
}
