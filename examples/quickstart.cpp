// Quickstart: build a relation, declare an acyclic schema, and quantify the
// loss of the corresponding acyclic join dependency.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/analysis.h"
#include "jointree/gyo.h"
#include "relation/relation.h"

int main() {
  using namespace ajd;

  // A tiny course-enrollment relation: (student, course, teacher).
  // Each course has one teacher, but students take many courses.
  Schema schema =
      Schema::Make({{"student", 0}, {"course", 0}, {"teacher", 0}}).value();
  RelationBuilder builder(schema);
  builder.AddStringRow({"ann", "db", "codd"});
  builder.AddStringRow({"bob", "db", "codd"});
  builder.AddStringRow({"ann", "ml", "mitchell"});
  builder.AddStringRow({"cat", "ml", "mitchell"});
  builder.AddStringRow({"cat", "os", "tanenbaum"});
  Relation r = std::move(builder).Build();
  std::printf("%s\n", r.ToString().c_str());

  // Candidate decomposition: {student, course} and {course, teacher}.
  // GYO reduction checks acyclicity and builds the join tree.
  AttrSet sc = r.schema().SetOf({"student", "course"}).value();
  AttrSet ct = r.schema().SetOf({"course", "teacher"}).value();
  Result<JoinTree> tree = BuildJoinTree({sc, ct});
  if (!tree.ok()) {
    std::printf("schema is not acyclic: %s\n",
                tree.status().ToString().c_str());
    return 1;
  }

  // Full analysis: loss rho, J-measure, KL characterization, and the
  // paper's bounds.
  Result<AjdAnalysis> analysis = AnalyzeAjd(r, tree.value());
  if (!analysis.ok()) {
    std::printf("analysis failed: %s\n",
                analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", analysis.value().ToString().c_str());

  // Because course -> teacher (a functional dependency), the MVD
  // course ->> student | teacher holds and the decomposition is lossless.
  return analysis.value().lossless ? 0 : 1;
}
