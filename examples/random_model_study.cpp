// Random-model study: a compact version of the paper's evaluation — how the
// information-theoretic quantities concentrate under the random relation
// model (Definition 5.2), and how the Section 4/5 bounds bracket the true
// loss of a single MVD.
//
//   ./build/examples/random_model_study [d [rho_bar]]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/bounds.h"
#include "core/experiment.h"
#include "core/loss.h"
#include "info/entropy.h"
#include "io/table_printer.h"
#include "random/random_relation.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ajd;
  const uint64_t d = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  const double rho_bar = argc > 2 ? std::atof(argv[2]) : 0.10;

  std::printf("Random relation model over [%llu] x [%llu], target rho = %g\n",
              static_cast<unsigned long long>(d),
              static_cast<unsigned long long>(d), rho_bar);

  // Part 1: the Figure 1 phenomenon at a single d — MI across trials.
  Rng rng(2718);
  const uint64_t n = static_cast<uint64_t>(
      static_cast<double>(d) * static_cast<double>(d) / (1.0 + rho_bar));
  TablePrinter t1({"trial", "I(A;B) nats", "ln(1+rho_bar)", "gap"});
  const double target =
      std::log(static_cast<double>(d) * static_cast<double>(d) /
               static_cast<double>(n));
  for (int trial = 0; trial < 8; ++trial) {
    RandomRelationSpec spec;
    spec.domain_sizes = {d, d};
    spec.num_tuples = n;
    spec.attr_names = {"A", "B"};
    Relation r = SampleRandomRelation(spec, &rng).value();
    EntropyCalculator calc(&r);
    double mi = calc.MutualInformation(AttrSet{0}, AttrSet{1});
    t1.AddRow({std::to_string(trial), FormatDouble(mi, 6),
               FormatDouble(target, 6), FormatDouble(target - mi, 4)});
  }
  std::printf("\nPart 1 — MI concentration (Figure 1 at one d):\n%s",
              t1.Render().c_str());

  // Part 2: a conditional MVD C ->> A | B with d_C groups; compare the true
  // loss against the Lemma 4.1 lower bound and the Theorem 5.1 budget.
  const uint64_t d_c = 8;
  const uint64_t small_d = 24;
  TablePrinter t2({"N", "ln(1+rho)", "I(A;B|C)", "deviation", "eps*(0.05)",
                   "Thm 5.1 applies"});
  for (uint64_t num : {small_d * small_d * d_c / 8,
                       small_d * small_d * d_c / 4,
                       small_d * small_d * d_c / 2}) {
    RandomRelationSpec spec;
    spec.domain_sizes = {small_d, small_d, d_c};
    spec.num_tuples = num;
    spec.attr_names = {"A", "B", "C"};
    Relation r = SampleRandomRelation(spec, &rng).value();
    Mvd mvd = MakeMvd(AttrSet{2}, AttrSet{0}, AttrSet{1});
    LossReport loss = ComputeMvdLoss(r, mvd).value();
    EntropyCalculator calc(&r);
    double cmi = calc.ConditionalMutualInformation(AttrSet{0}, AttrSet{1},
                                                   AttrSet{2});
    double eps = EpsilonStarMvd(small_d, small_d, d_c, num, 0.05);
    t2.AddRow({std::to_string(num), FormatDouble(loss.log1p_rho, 5),
               FormatDouble(cmi, 5),
               FormatDouble(loss.log1p_rho - cmi, 5),
               FormatDouble(eps, 4),
               Theorem51Applies(small_d, small_d, d_c, num, 0.05) ? "yes"
                                                                  : "no"});
  }
  std::printf("\nPart 2 — MVD loss vs CMI (Lemma 4.1: deviation >= 0;\n"
              "Thm 5.1: deviation <= eps* w.h.p.):\n%s",
              t2.Render().c_str());

  std::printf("\nReading: I(A;B|C) under-estimates ln(1+rho) by a vanishing\n"
              "deviation; the paper's eps* budget is loose but safe.\n");
  return 0;
}
