// Experiment PERF-REDUCER — the Yannakakis full reducer vs naive
// materialization, and the semijoin primitive. google-benchmark.
#include <benchmark/benchmark.h>

#include "random/random_relation.h"
#include "random/rng.h"
#include "relation/acyclic_join.h"
#include "relation/full_reducer.h"
#include "relation/ops.h"

namespace {

using namespace ajd;

Relation MakeInput(uint64_t n) {
  Rng rng(23);
  RandomRelationSpec spec;
  spec.domain_sizes = {64, 64, 64, 64};
  spec.num_tuples = n;
  return SampleRandomRelation(spec, &rng).value();
}

JoinTree PathTree() {
  return JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}})
      .value();
}

void BM_FullReduce(benchmark::State& state) {
  Relation r = MakeInput(state.range(0));
  JoinTree t = PathTree();
  for (auto _ : state) {
    ReducedProjections reduced = FullReduce(r, t).value();
    benchmark::DoNotOptimize(reduced.total_removed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullReduce)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_SemiJoin(benchmark::State& state) {
  Relation r = MakeInput(state.range(0));
  Relation left = Project(r, AttrSet{0, 1});
  Relation right = Project(r, AttrSet{1, 2});
  for (auto _ : state) {
    Relation sj = SemiJoin(left, right).value();
    benchmark::DoNotOptimize(sj.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SemiJoin)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_ReduceThenCount(benchmark::State& state) {
  // Reduction followed by counting equals counting directly (the counts
  // agree); this measures the combined pipeline cost.
  Relation r = MakeInput(state.range(0));
  JoinTree t = PathTree();
  for (auto _ : state) {
    ReducedProjections reduced = FullReduce(r, t).value();
    AcyclicJoinCount c = CountAcyclicJoin(r, t);
    benchmark::DoNotOptimize(reduced.total_removed + c.approx);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReduceThenCount)->Arg(1 << 10)->Arg(1 << 13);

}  // namespace

BENCHMARK_MAIN();
