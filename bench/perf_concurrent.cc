// Experiment PERF-CONCURRENT — serve-while-ingest vs quiesce-everything.
//
// N reader threads hammer entropy queries while ONE appender lands batches
// on a schedule, A/B-ing the two concurrency disciplines this library has
// lived under:
//   snapshot — the current engine: readers pin the published (rows, epoch)
//              stamp (EntropyEngine::Pin / EntropyAt) and never block; a
//              dedicated maintenance thread (engine/maintenance.h) runs
//              catch-up off the query path after every append. Ingestion
//              never stalls a reader.
//   quiesce  — the pre-epoch-pinning discipline, reconstructed with a
//              std::shared_mutex: readers hold it shared around every
//              query, the appender takes it exclusive around AppendBatch +
//              CatchUp. Every append stalls every reader for the whole
//              append-and-catch-up window.
// Both arms ingest the identical batch schedule at the identical pace and
// serve the identical query mix. The JSON line reports per-op reader
// latency percentiles (lock wait included — that is the quiesce arm's
// cost) and aggregate reader throughput for each arm, plus their ratio.
//
// Correctness guard (the part CI enforces, --smoke): sampled reader
// results are re-derived on cold relations truncated to the reader's
// pinned row count; any |err| > 1e-9 exits 1. The >= 1.5x throughput
// target is only meaningful on a multi-core host — on a single-core
// runner the arms time-slice and the ratio is noise (a note goes to
// stderr; the guard still runs).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "engine/entropy_engine.h"
#include "engine/maintenance.h"
#include "info/entropy.h"
#include "random/rng.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace {

using namespace ajd;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<std::vector<uint32_t>> DrawRows(Rng* rng, uint32_t num_attrs,
                                            uint32_t domain,
                                            uint32_t count) {
  std::vector<std::vector<uint32_t>> rows(count,
                                          std::vector<uint32_t>(num_attrs));
  for (auto& row : rows) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
    }
  }
  return rows;
}

Relation FromRows(uint32_t num_attrs,
                  const std::vector<std::vector<uint32_t>>& rows) {
  std::vector<uint64_t> dims(num_attrs, 2);
  RelationBuilder b(Schema::MakeSynthetic(dims).value());
  for (const auto& row : rows) b.AddRow(row);
  return std::move(b).Build(/*dedupe=*/false);
}

/// One sampled reader result, re-checked cold after the run.
struct Sample {
  uint64_t rows;
  uint64_t mask;
  double h;
};

struct ArmResult {
  std::vector<double> latencies_ns;  // every reader op, all readers
  uint64_t ops = 0;
  double wall_ns = 0.0;
  std::vector<Sample> samples;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

struct ArmConfig {
  uint32_t num_attrs;
  uint32_t readers;
  uint32_t pace_us;  // appender sleep between batches
  uint32_t samples_per_reader;
};

// The snapshot arm: pinned readers, maintenance-thread catch-up.
ArmResult RunSnapshotArm(
    const ArmConfig& cfg, const std::vector<std::vector<uint32_t>>& base,
    const std::vector<std::vector<std::vector<uint32_t>>>& batches) {
  Relation r = FromRows(cfg.num_attrs, base);
  EntropyEngine engine(&r);
  const uint64_t all_masks = (uint64_t{1} << cfg.num_attrs) - 1;
  engine.Entropy(AttrSet::FromMask(all_masks));  // warm

  ArmResult result;
  std::vector<std::vector<double>> lat(cfg.readers);
  std::vector<std::vector<Sample>> samples(cfg.readers);
  std::atomic<bool> done{false};
  const double t_start = NowNs();
  {
    EpochMaintenance maintenance(&engine, std::chrono::microseconds(100));
    std::vector<std::thread> readers;
    readers.reserve(cfg.readers);
    for (uint32_t t = 0; t < cfg.readers; ++t) {
      readers.emplace_back([&, t] {
        Rng rng(100 + t);
        uint64_t ops = 0;
        while (!done.load(std::memory_order_acquire)) {
          const uint64_t mask = 1 + rng.UniformU64(all_masks - 1);
          const double t0 = NowNs();
          const EpochPin pin = engine.Pin();
          const double h = engine.EntropyAt(AttrSet::FromMask(mask), pin);
          lat[t].push_back(NowNs() - t0);
          if ((ops & 127) == 0 &&
              samples[t].size() < cfg.samples_per_reader) {
            samples[t].push_back({pin.rows, mask, h});
          }
          ++ops;
        }
      });
    }
    for (const auto& batch : batches) {
      if (!r.AppendBatch(batch).ok()) std::abort();
      maintenance.Poke();
      std::this_thread::sleep_for(std::chrono::microseconds(cfg.pace_us));
    }
    done.store(true, std::memory_order_release);
    for (auto& reader : readers) reader.join();
  }
  result.wall_ns = NowNs() - t_start;
  for (auto& per_thread : lat) {
    result.ops += per_thread.size();
    result.latencies_ns.insert(result.latencies_ns.end(),
                               per_thread.begin(), per_thread.end());
  }
  for (auto& per_thread : samples) {
    result.samples.insert(result.samples.end(), per_thread.begin(),
                          per_thread.end());
  }
  return result;
}

// The quiesce baseline: a shared_mutex serializes ingestion against every
// reader — shared for queries, exclusive for append + catch-up.
ArmResult RunQuiesceArm(
    const ArmConfig& cfg, const std::vector<std::vector<uint32_t>>& base,
    const std::vector<std::vector<std::vector<uint32_t>>>& batches) {
  Relation r = FromRows(cfg.num_attrs, base);
  EntropyEngine engine(&r);
  const uint64_t all_masks = (uint64_t{1} << cfg.num_attrs) - 1;
  engine.Entropy(AttrSet::FromMask(all_masks));  // warm

  ArmResult result;
  std::vector<std::vector<double>> lat(cfg.readers);
  std::vector<std::vector<Sample>> samples(cfg.readers);
  std::shared_mutex quiesce_mu;
  std::atomic<bool> done{false};
  const double t_start = NowNs();
  std::vector<std::thread> readers;
  readers.reserve(cfg.readers);
  for (uint32_t t = 0; t < cfg.readers; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(200 + t);
      uint64_t ops = 0;
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t mask = 1 + rng.UniformU64(all_masks - 1);
        const double t0 = NowNs();  // lock wait IS the quiesce cost
        uint64_t rows;
        double h;
        {
          std::shared_lock<std::shared_mutex> lock(quiesce_mu);
          rows = r.NumRows();
          h = engine.Entropy(AttrSet::FromMask(mask));
        }
        lat[t].push_back(NowNs() - t0);
        if ((ops & 127) == 0 &&
            samples[t].size() < cfg.samples_per_reader) {
          samples[t].push_back({rows, mask, h});
        }
        ++ops;
      }
    });
  }
  for (const auto& batch : batches) {
    {
      std::unique_lock<std::shared_mutex> lock(quiesce_mu);
      if (!r.AppendBatch(batch).ok()) std::abort();
      engine.CatchUp();
    }
    std::this_thread::sleep_for(std::chrono::microseconds(cfg.pace_us));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  result.wall_ns = NowNs() - t_start;
  for (auto& per_thread : lat) {
    result.ops += per_thread.size();
    result.latencies_ns.insert(result.latencies_ns.end(),
                               per_thread.begin(), per_thread.end());
  }
  for (auto& per_thread : samples) {
    result.samples.insert(result.samples.end(), per_thread.begin(),
                          per_thread.end());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  ArmConfig cfg;
  cfg.num_attrs = 6;
  cfg.readers = 4;
  cfg.pace_us = smoke ? 3000 : 25000;
  cfg.samples_per_reader = 4;
  const uint32_t domain = smoke ? 4 : 8;
  const uint32_t initial_rows = smoke ? 1500 : 40000;
  const uint32_t num_batches = smoke ? 4 : 12;
  const uint32_t batch_rows = smoke ? 250 : 3000;

  Rng rng(20260807);
  std::vector<std::vector<uint32_t>> base =
      DrawRows(&rng, cfg.num_attrs, domain, initial_rows);
  std::vector<std::vector<std::vector<uint32_t>>> batches;
  for (uint32_t k = 0; k < num_batches; ++k) {
    batches.push_back(DrawRows(&rng, cfg.num_attrs, domain, batch_rows));
  }

  const unsigned hc = std::thread::hardware_concurrency();
  if (hc <= 1) {
    std::fprintf(stderr,
                 "perf_concurrent: single-core host — the serve-while-"
                 "ingest throughput ratio needs a multi-core host to mean "
                 "anything; the 1e-9 correctness guard still runs.\n");
  }

  ArmResult snapshot = RunSnapshotArm(cfg, base, batches);
  ArmResult quiesce = RunQuiesceArm(cfg, base, batches);

  // Correctness guard: every sampled reader result re-derived cold at the
  // row count the reader was pinned to (capped — the tests carry the
  // exhaustive version of this oracle).
  constexpr size_t kMaxChecks = 32;
  std::vector<Sample> checks = snapshot.samples;
  checks.insert(checks.end(), quiesce.samples.begin(),
                quiesce.samples.end());
  if (checks.size() > kMaxChecks) checks.resize(kMaxChecks);
  std::vector<std::vector<uint32_t>> all_rows = base;
  for (const auto& batch : batches) {
    all_rows.insert(all_rows.end(), batch.begin(), batch.end());
  }
  std::map<uint64_t, Relation> cold_at;
  double max_err = 0.0;
  for (const Sample& s : checks) {
    auto it = cold_at.find(s.rows);
    if (it == cold_at.end()) {
      if (s.rows > all_rows.size()) {
        std::fprintf(stderr, "pin beyond the ingested rows: %llu\n",
                     static_cast<unsigned long long>(s.rows));
        return 1;
      }
      it = cold_at
               .emplace(s.rows,
                        FromRows(cfg.num_attrs,
                                 std::vector<std::vector<uint32_t>>(
                                     all_rows.begin(),
                                     all_rows.begin() +
                                         static_cast<long>(s.rows))))
               .first;
    }
    const double want = EntropyOf(it->second, AttrSet::FromMask(s.mask));
    const double err = std::fabs(s.h - want);
    if (err > max_err) max_err = err;
    if (err > 1e-9) {
      std::fprintf(stderr,
                   "VALUE MISMATCH at rows %llu mask %llu: served %.17g "
                   "vs cold %.17g\n",
                   static_cast<unsigned long long>(s.rows),
                   static_cast<unsigned long long>(s.mask), s.h, want);
      return 1;
    }
  }

  std::sort(snapshot.latencies_ns.begin(), snapshot.latencies_ns.end());
  std::sort(quiesce.latencies_ns.begin(), quiesce.latencies_ns.end());
  const double snap_ops_per_sec =
      static_cast<double>(snapshot.ops) / (snapshot.wall_ns * 1e-9);
  const double quiesce_ops_per_sec =
      static_cast<double>(quiesce.ops) / (quiesce.wall_ns * 1e-9);
  std::printf(
      "{\"bench\":\"perf_concurrent\",\"smoke\":%s,\"readers\":%u,"
      "\"initial_rows\":%u,\"batches\":%u,\"batch_rows\":%u,"
      "\"hardware_concurrency\":%u,"
      "\"snapshot_reader_ops\":%llu,\"snapshot_ops_per_sec\":%.0f,"
      "\"snapshot_p50_us\":%.1f,\"snapshot_p95_us\":%.1f,"
      "\"snapshot_p99_us\":%.1f,"
      "\"quiesce_reader_ops\":%llu,\"quiesce_ops_per_sec\":%.0f,"
      "\"quiesce_p50_us\":%.1f,\"quiesce_p95_us\":%.1f,"
      "\"quiesce_p99_us\":%.1f,"
      "\"throughput_vs_quiesce\":%.2f,\"checks\":%zu,\"max_err\":%.3g}\n",
      smoke ? "true" : "false", cfg.readers, initial_rows, num_batches,
      batch_rows, hc, static_cast<unsigned long long>(snapshot.ops),
      snap_ops_per_sec, Percentile(&snapshot.latencies_ns, 0.5) * 1e-3,
      Percentile(&snapshot.latencies_ns, 0.95) * 1e-3,
      Percentile(&snapshot.latencies_ns, 0.99) * 1e-3,
      static_cast<unsigned long long>(quiesce.ops), quiesce_ops_per_sec,
      Percentile(&quiesce.latencies_ns, 0.5) * 1e-3,
      Percentile(&quiesce.latencies_ns, 0.95) * 1e-3,
      Percentile(&quiesce.latencies_ns, 0.99) * 1e-3,
      snap_ops_per_sec / quiesce_ops_per_sec, checks.size(), max_err);
  return 0;
}
