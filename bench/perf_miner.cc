// Experiment PERF-MINER — end-to-end MineJoinTree, serial engine vs the
// threaded engine, across configurations that exercise both split-search
// paths: the exhaustive mask enumeration (<= 16 units) and the batched
// hill climb (> 16 units, where each sweep's flip neighborhood fans out
// through one deduped BatchEntropy call).
//
// For every configuration the two modes must render byte-identical
// MinerReport::ToString output (scoring batches only warm the cache;
// selection runs after each batch in deterministic mask order), so a clean
// exit is itself an equivalence check. One machine-readable JSON line per
// configuration, alongside perf_entropy_engine's, for trajectory tracking.
//
// `--smoke` shrinks every configuration to CI-friendly sizes; the point of
// that mode is keeping the JSON emitter and the equivalence guard alive,
// not producing meaningful timings on shared runners.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "discovery/miner.h"
#include "random/random_relation.h"
#include "random/rng.h"

namespace {

using namespace ajd;

double NowMs() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

struct MinerBenchConfig {
  const char* name;
  uint32_t attrs;
  uint64_t rows;
  uint64_t domain;
  uint32_t max_separator_size;
  uint32_t max_bag_size;
  uint32_t hill_climb_restarts;
  uint64_t seed;
};

struct ModeResult {
  double ms = 0.0;
  std::string rendering;
  uint32_t splits = 0;
};

ModeResult RunMode(const Relation& r, const MinerBenchConfig& config,
                   uint32_t num_threads) {
  MinerOptions options;
  options.max_separator_size = config.max_separator_size;
  options.max_bag_size = config.max_bag_size;
  options.hill_climb_restarts = config.hill_climb_restarts;
  options.seed = config.seed;
  options.num_threads = num_threads;
  ModeResult out;
  const double t0 = NowMs();
  MinerReport report = MineJoinTree(r, options).value();
  out.ms = NowMs() - t0;
  out.rendering = report.ToString(r.schema());
  out.splits = static_cast<uint32_t>(report.splits.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  // exhaustive: every bag's unit count stays <= 16, so BestSplit's
  //   per-size batch covers the full mask enumeration.
  // hill_climb: 18 loose attributes with size-1 separators put ~17 units
  //   in every neighborhood, forcing the batched steepest-descent path on
  //   8+ units throughout the first splitting rounds.
  std::vector<MinerBenchConfig> configs;
  if (smoke) {
    configs.push_back({"exhaustive", 8, 400, 3, 2, 3, 4, 20260730});
    configs.push_back({"hill_climb", 18, 100, 2, 1, 14, 1, 20260731});
  } else {
    configs.push_back({"exhaustive", 12, 4000, 3, 2, 3, 4, 20260730});
    configs.push_back({"hill_climb", 18, 1500, 4, 1, 8, 4, 20260731});
    configs.push_back({"hill_climb_wide", 20, 800, 6, 1, 10, 4, 20260732});
  }

  const uint32_t hw = std::thread::hardware_concurrency();
  bool all_identical = true;
  for (const MinerBenchConfig& config : configs) {
    Rng rng(config.seed);
    RandomRelationSpec spec;
    spec.domain_sizes.assign(config.attrs, config.domain);
    spec.num_tuples = config.rows;
    Relation r = SampleRandomRelation(spec, &rng).value();

    ModeResult serial = RunMode(r, config, /*num_threads=*/1);
    // All hardware threads; on a single-core host force a 2-worker pool so
    // the batched scoring path (and the equivalence guard on it) still
    // runs, even though it cannot be faster there.
    ModeResult threaded = RunMode(r, config, hw > 1 ? 0 : 2);
    const bool identical = serial.rendering == threaded.rendering;
    all_identical = all_identical && identical;

    std::printf(
        "{\"bench\":\"perf_miner\",\"config\":\"%s\",\"smoke\":%s,"
        "\"attrs\":%u,\"rows\":%llu,\"domain\":%llu,"
        "\"max_separator_size\":%u,\"max_bag_size\":%u,\"splits\":%u,"
        "\"hardware_threads\":%u,\"serial_ms\":%.1f,\"threaded_ms\":%.1f,"
        "\"speedup\":%.2f,\"identical_output\":%s}\n",
        config.name, smoke ? "true" : "false", config.attrs,
        static_cast<unsigned long long>(r.NumRows()),
        static_cast<unsigned long long>(config.domain),
        config.max_separator_size, config.max_bag_size, serial.splits, hw,
        serial.ms, threaded.ms, serial.ms / threaded.ms,
        identical ? "true" : "false");
    if (!identical) {
      std::fprintf(stderr,
                   "MISMATCH config=%s\n--- serial ---\n%s--- threaded ---\n"
                   "%s",
                   config.name, serial.rendering.c_str(),
                   threaded.rendering.c_str());
    }
  }
  return all_identical ? 0 : 1;
}
