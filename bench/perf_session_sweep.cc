// Experiment PERF-SESSION-SWEEP — many-relation sweep through one sharded
// AnalysisSession: does ONE global cache budget (engine/cache_arbiter.h)
// beat fixed per-engine splits of the same total bytes?
//
// The workload replays a Kenig/Suciu-style mining sweep: R relations of
// uneven sizes, visited in zipf-skewed bursts (hot relations get long
// mining-shaped random walks over the subset lattice, cold ones short
// ones). Four contenders answer the same deterministic query schedule:
//   baseline   — private per-engine budgets, effectively unbounded (the
//                value reference and the working-set probe);
//   global     — one shared budget B = 2x the largest single-relation
//                working set, arbitrated globally-LRU across relations;
//   split-even — the same B split evenly: each engine gets B / R, private;
//   split-prop — B split proportionally to each relation's standalone
//                working set (the best fixed split one could pick a
//                priori), private.
// The gate: the global budget's base hit rate (fraction of misses that
// refined a cached partition instead of rebuilding from raw columns) must
// be >= both fixed splits', and every entropy must match the baseline to
// 1e-9 (the JSON reports whether they are in fact bit-equal). Exits 1
// otherwise. The schedule, and therefore every counter, is deterministic.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "engine/analysis_session.h"
#include "engine/cache_arbiter.h"
#include "engine/entropy_engine.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "relation/attr_set.h"

namespace {

using namespace ajd;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Query {
  uint32_t relation;
  AttrSet attrs;
};

// Zipf-skewed burst schedule: hot relations are revisited often and walk
// long grow-mostly paths (partition reuse is what distinguishes budgets;
// the entropy VALUE cache never evicts, so repeated masks are hits under
// every contender and cancel out).
std::vector<Query> BuildSchedule(const std::vector<Relation>& relations,
                                 uint32_t bursts, uint32_t burst_len,
                                 Rng* rng) {
  const size_t r_count = relations.size();
  std::vector<double> cum;
  double total = 0.0;
  for (size_t i = 0; i < r_count; ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cum.push_back(total);
  }
  std::vector<Query> schedule;
  for (uint32_t b = 0; b < bursts; ++b) {
    const double u = rng->NextDouble() * total;
    uint32_t r = 0;
    while (r + 1 < r_count && cum[r] < u) ++r;
    const uint32_t num_attrs = relations[r].NumAttrs();
    // Hot relations get full-length bursts; the coldest get stubs.
    const uint32_t len = std::max<uint32_t>(4, burst_len / (1 + r / 2));
    AttrSet walk;
    for (uint32_t q = 0; q < len; ++q) {
      if (walk.Count() + 2 >= num_attrs || walk.Empty()) {
        walk = AttrSet();  // restart from a fresh small seed
        walk.Add(static_cast<uint32_t>(rng->UniformU64(num_attrs)));
      } else {
        uint32_t a;
        do {
          a = static_cast<uint32_t>(rng->UniformU64(num_attrs));
        } while (walk.Contains(a));
        walk.Add(a);
      }
      schedule.push_back({r, walk});
    }
  }
  return schedule;
}

struct SweepResult {
  std::vector<double> values;
  double ns_per_op = 0.0;
  double entropy_hit_rate = 0.0;
  double base_hit_rate = 0.0;  // base_reuses / (queries - hits)
  uint64_t evictions = 0;
  std::vector<size_t> engine_bytes;  // footprint at end, per relation
};

// Replays the schedule against one engine per relation; `budgets[i]` is
// relation i's private budget, or, when `arbiter` is set, every engine
// charges that shared arbiter instead.
SweepResult RunSweep(const std::vector<Relation>& relations,
                     const std::vector<Query>& schedule,
                     const std::vector<size_t>& budgets,
                     std::shared_ptr<CacheArbiter> arbiter) {
  std::vector<std::unique_ptr<EntropyEngine>> engines;
  for (size_t i = 0; i < relations.size(); ++i) {
    EngineOptions opts;
    opts.cache_budget_bytes = budgets[i];
    opts.cache_arbiter = arbiter;
    engines.push_back(
        std::make_unique<EntropyEngine>(&relations[i], opts));
  }
  SweepResult out;
  out.values.reserve(schedule.size());
  const double t0 = NowNs();
  for (const Query& q : schedule) {
    out.values.push_back(engines[q.relation]->Entropy(q.attrs));
  }
  out.ns_per_op = (NowNs() - t0) / static_cast<double>(schedule.size());
  EngineStats total;
  for (auto& e : engines) {
    EngineStats s = e->Stats();
    total.queries += s.queries;
    total.hits += s.hits;
    total.base_reuses += s.base_reuses;
    total.evictions += s.evictions;
    out.engine_bytes.push_back(e->PartitionBytes());
  }
  out.entropy_hit_rate = total.HitRate();
  const uint64_t misses = total.queries - total.hits;
  out.base_hit_rate =
      misses == 0 ? 0.0
                  : static_cast<double>(total.base_reuses) /
                        static_cast<double>(misses);
  out.evictions = total.evictions;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint32_t kRelations = smoke ? 6 : 16;
  const uint32_t kBursts = smoke ? 60 : 400;
  const uint32_t kBurstLen = smoke ? 12 : 40;

  Rng rng(20260731);
  std::vector<Relation> relations;
  for (uint32_t i = 0; i < kRelations; ++i) {
    // Uneven shapes: the hottest relations (low index) are also the
    // biggest, so fixed splits must choose between starving them or
    // overfeeding the cold tail.
    RandomRelationSpec spec;
    const uint32_t attrs =
        smoke ? 6 + (i % 3) : 8 + (i % 5);
    const uint64_t rows = smoke ? 400 - 40 * (i % 4)
                                : 4000 - 200 * static_cast<uint64_t>(i);
    spec.domain_sizes.assign(attrs, 3 + (i % 2));
    spec.num_tuples = rows;
    relations.push_back(SampleRandomRelation(spec, &rng).value());
  }
  const std::vector<Query> schedule =
      BuildSchedule(relations, kBursts, kBurstLen, &rng);

  // Baseline: unbounded private budgets — the value reference, and the
  // probe that measures each relation's standalone working set.
  std::vector<size_t> unbounded(kRelations, ~size_t{0});
  SweepResult baseline = RunSweep(relations, schedule, unbounded, nullptr);
  size_t max_ws = 0, total_ws = 0;
  for (size_t b : baseline.engine_bytes) {
    max_ws = std::max(max_ws, b);
    total_ws += b;
  }
  const size_t kBudget = 2 * max_ws;

  // Global: one arbiter holding kBudget for every engine.
  ArbiterOptions arb_opts;
  arb_opts.budget_bytes = kBudget;
  arb_opts.engine_floor_bytes = kBudget / (4 * kRelations);
  SweepResult global =
      RunSweep(relations, schedule, unbounded,
               std::make_shared<CacheArbiter>(arb_opts));

  // Fixed splits of the same total bytes: even, and proportional to the
  // standalone working sets.
  std::vector<size_t> even(kRelations, kBudget / kRelations);
  SweepResult split_even = RunSweep(relations, schedule, even, nullptr);
  std::vector<size_t> prop;
  for (size_t b : baseline.engine_bytes) {
    prop.push_back(static_cast<size_t>(
        static_cast<double>(kBudget) * static_cast<double>(b) /
        static_cast<double>(total_ws)));
  }
  SweepResult split_prop = RunSweep(relations, schedule, prop, nullptr);

  // Equivalence gate: every contender must reproduce the baseline values.
  double max_diff_global = 0.0, max_diff_splits = 0.0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    max_diff_global = std::max(
        max_diff_global, std::abs(global.values[i] - baseline.values[i]));
    max_diff_splits = std::max(
        {max_diff_splits,
         std::abs(split_even.values[i] - baseline.values[i]),
         std::abs(split_prop.values[i] - baseline.values[i])});
  }
  if (max_diff_global > 1e-9 || max_diff_splits > 1e-9) {
    std::fprintf(stderr,
                 "MISMATCH vs baseline: global=%.3e splits=%.3e\n",
                 max_diff_global, max_diff_splits);
    return 1;
  }
  // The point of the global budget: at the same total bytes, it must reuse
  // cached bases at least as often as the best fixed split.
  const double best_split_rate =
      std::max(split_even.base_hit_rate, split_prop.base_hit_rate);
  if (global.base_hit_rate + 1e-12 < best_split_rate) {
    std::fprintf(stderr,
                 "GLOBAL BUDGET LOST: global=%.4f even=%.4f prop=%.4f\n",
                 global.base_hit_rate, split_even.base_hit_rate,
                 split_prop.base_hit_rate);
    return 1;
  }

  std::printf(
      "{\"bench\":\"perf_session_sweep\",\"smoke\":%s,"
      "\"relations\":%u,\"queries\":%zu,"
      "\"budget_bytes\":%zu,\"max_working_set_bytes\":%zu,"
      "\"total_working_set_bytes\":%zu,"
      "\"ns_per_op_baseline\":%.1f,\"ns_per_op_global\":%.1f,"
      "\"ns_per_op_split_even\":%.1f,\"ns_per_op_split_prop\":%.1f,"
      "\"base_hit_rate_global\":%.4f,\"base_hit_rate_split_even\":%.4f,"
      "\"base_hit_rate_split_prop\":%.4f,\"base_hit_rate_baseline\":%.4f,"
      "\"entropy_hit_rate\":%.4f,"
      "\"evictions_global\":%llu,\"evictions_split_even\":%llu,"
      "\"max_abs_diff_vs_baseline\":%.3e,\"bit_equal_to_baseline\":%s}\n",
      smoke ? "true" : "false", kRelations, schedule.size(), kBudget,
      max_ws, total_ws, baseline.ns_per_op, global.ns_per_op,
      split_even.ns_per_op, split_prop.ns_per_op, global.base_hit_rate,
      split_even.base_hit_rate, split_prop.base_hit_rate,
      baseline.base_hit_rate, global.entropy_hit_rate,
      static_cast<unsigned long long>(global.evictions),
      static_cast<unsigned long long>(split_even.evictions),
      max_diff_global, max_diff_global == 0.0 ? "true" : "false");
  return 0;
}
