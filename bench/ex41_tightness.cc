// Experiment EX41 — Example 4.1: the diagonal family shows Lemma 4.1 is
// tight. For R = {(a_i, b_i)} and S = {{A},{B}}:
//   J = ln N = ln(1 + rho)   exactly, for every N >= 2.
#include <cmath>
#include <cstdio>

#include "core/loss.h"
#include "core/worstcase.h"
#include "info/j_measure.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main() {
  using namespace ajd;
  std::printf("== EX41: Lemma 4.1 tightness on the diagonal family ==\n\n");
  TablePrinter table(
      {"N", "J (nats)", "ln(1+rho)", "rho", "e^J - 1", "|J - ln(1+rho)|"});
  for (uint64_t n : {2ull, 4ull, 8ull, 16ull, 64ull, 256ull, 1024ull,
                     4096ull}) {
    Instance inst = MakeDiagonalInstance(n).value();
    double j = JMeasure(inst.relation, inst.tree);
    LossReport loss = ComputeLoss(inst.relation, inst.tree).value();
    table.AddRow({std::to_string(n), FormatDouble(j, 8),
                  FormatDouble(loss.log1p_rho, 8),
                  FormatDouble(loss.rho, 8),
                  FormatDouble(std::expm1(j), 8),
                  FormatDouble(std::fabs(j - loss.log1p_rho), 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper claim: the last column is 0 for every N (equality in\n"
              "Lemma 4.1), i.e. the deterministic lower bound is tight.\n");
  return 0;
}
