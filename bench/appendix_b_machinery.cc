// Experiment APPB — numerical validation of the Appendix B proof
// machinery behind Theorem 5.2:
//
//  1. Lemma B.2: Ent(Ytilde) <= 2 rho ln(1/rho)/(1-rho) / d_B for the
//     i.i.d. surrogate Ytilde = Binomial(d_B, p)/d_B (exact pmf sum).
//  2. Lemma B.3: |Ent(Y_S) - Ent(Ytilde)| <= sqrt(2 ln^2(d_B)/d_B), with
//     Ent(Y_S) estimated by Monte Carlo over the true (hypergeometric-row)
//     random relation model.
//  3. Lemma B.4 (Poissonization): max_b P[Z=b]/P[W=b] <= 21 d_A^2 for
//     Z ~ Hypergeometric(d_A d_B, d_B, eta), W ~ Poisson(eta/d_A).
//  4. Proposition 5.5: empirical tail of |H(A_S) - E H(A_S)| vs the stated
//     bound.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/bounds.h"
#include "core/experiment.h"
#include "info/entropy.h"
#include "io/table_printer.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "stats/binomial.h"
#include "stats/functional_entropy.h"
#include "stats/hypergeometric.h"
#include "stats/poisson.h"
#include "stats/special.h"
#include "util/math.h"
#include "util/string_util.h"

namespace {

using namespace ajd;

// Exact Ent(Ytilde) for Ytilde = Binomial(d_b, p) / d_b.
double ExactEntBinomialAverage(uint64_t d_b, double p) {
  Binomial bin(d_b, p);
  std::vector<double> values, probs;
  for (uint64_t k = 0; k <= d_b; ++k) {
    values.push_back(static_cast<double>(k) / static_cast<double>(d_b));
    probs.push_back(bin.Pmf(k));
  }
  return FunctionalEntropy(values, probs);
}

// Monte-Carlo Ent(Y_S): Y_S = (fraction of row 1 of [d_a] x [d_b] present
// in a random eta-subset).
double McEntRowFraction(uint64_t d_a, uint64_t d_b, uint64_t eta,
                        uint32_t trials, Rng* rng) {
  std::vector<double> samples;
  samples.reserve(trials);
  for (uint32_t t = 0; t < trials; ++t) {
    // Row-1 occupancy is Hypergeometric(d_a d_b, d_b, eta); sampling the
    // count directly is equivalent to sampling the full relation.
    Hypergeometric h(d_a * d_b, d_b, eta);
    samples.push_back(static_cast<double>(h.Sample(rng)) /
                      static_cast<double>(d_b));
  }
  return FunctionalEntropyOfSamples(samples);
}

}  // namespace

int main() {
  using namespace ajd;
  Rng rng(515);
  std::printf("== APPB: Appendix B proof machinery, numerically ==\n\n");

  std::printf("Lemmas B.2 + B.3: functional entropy of the row-occupancy\n"
              "average (rho_bar = d_a d_b/eta - 1 must be in (0,1))\n");
  TablePrinter t1({"d_a=d_b", "eta", "rho_bar", "Ent(Ytilde) exact",
                   "B.2 bound", "Ent(Y_S) MC", "|diff|", "B.3 bound"});
  for (uint64_t d : {64ull, 128ull, 256ull}) {
    uint64_t eta = d * d * 10 / 11;  // rho_bar = 0.1
    double p = static_cast<double>(eta) /
               (static_cast<double>(d) * static_cast<double>(d));
    double rho_bar = 1.0 / p - 1.0;
    double ent_tilde = ExactEntBinomialAverage(d, p);
    double b2 = LemmaB2EntBound(rho_bar, static_cast<double>(d));
    double ent_ys = McEntRowFraction(d, d, eta, 4000, &rng);
    double b3 = LemmaB3CouplingBound(static_cast<double>(d));
    t1.AddRow({std::to_string(d), std::to_string(eta),
               FormatDouble(rho_bar, 4), FormatDouble(ent_tilde, 6),
               FormatDouble(b2, 6), FormatDouble(ent_ys, 6),
               FormatDouble(std::fabs(ent_ys - ent_tilde), 6),
               FormatDouble(b3, 4)});
  }
  std::printf("%s\n", t1.Render().c_str());

  std::printf("Lemma B.4 (Poissonization): max pmf ratio vs 21 d_a^2\n");
  TablePrinter t2({"d_a", "d_b", "eta", "max ratio", "21 d_a^2", "holds"});
  for (uint64_t d_a : {8ull, 16ull, 32ull}) {
    uint64_t d_b = d_a;
    for (uint64_t eta : {d_a, 4 * d_a, d_a * d_b - d_b}) {
      Hypergeometric z(d_a * d_b, d_b, eta);
      Poisson w(static_cast<double>(eta) / static_cast<double>(d_a));
      double max_ratio = 0.0;
      for (uint64_t b = 0; b <= d_b; ++b) {
        double pw = w.Pmf(b);
        if (pw <= 0.0) continue;
        max_ratio = std::max(max_ratio, z.Pmf(b) / pw);
      }
      double factor = PoissonizationFactor(static_cast<double>(d_a));
      t2.AddRow({std::to_string(d_a), std::to_string(d_b),
                 std::to_string(eta), FormatDouble(max_ratio, 5),
                 FormatDouble(factor, 5),
                 max_ratio <= factor ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", t2.Render().c_str());

  std::printf("Prop 5.5: empirical tail of |H(A_S) - E H(A_S)| vs bound\n");
  TablePrinter t3({"d", "eta", "t", "empirical P", "Prop 5.5 bound"});
  const uint64_t d = 32;
  const uint64_t eta = 600;
  const uint32_t trials = 400;
  std::vector<double> entropies;
  for (uint32_t i = 0; i < trials; ++i) {
    RandomRelationSpec spec;
    spec.domain_sizes = {d, d};
    spec.num_tuples = eta;
    Relation r = SampleRandomRelation(spec, &rng).value();
    entropies.push_back(EntropyOf(r, AttrSet{0}));
  }
  double mean = Mean(entropies);
  for (double t : {0.02, 0.05, 0.1, 0.5}) {
    uint32_t exceed = 0;
    for (double h : entropies) {
      if (std::fabs(h - mean) > t) ++exceed;
    }
    t3.AddRow({std::to_string(d), std::to_string(eta), FormatDouble(t, 3),
               FormatDouble(static_cast<double>(exceed) / trials, 4),
               FormatDouble(std::min(1.0, Proposition55TailBound(d, d, eta,
                                                                 t)),
                            4)});
  }
  std::printf("%s\n", t3.Render().c_str());
  std::printf(
      "Shape: B.2/B.3 bounds dominate the measured functional entropies;\n"
      "Poissonization ratios sit far below 21 d_a^2; the Prop 5.5 tail\n"
      "bound dominates the empirical tail (it is vacuous ( >1 ) for small\n"
      "t at this scale — the constants target asymptotics).\n");
  return 0;
}
