// Experiment PERF-STREAMING — incremental epoch catch-up vs cold rebuild
// on the streaming-monitoring workload (core/streaming.h).
//
// The schedule is append-heavy: a relation starts at half its final size
// and grows through K batches; after every batch the J-measure of one
// fixed join tree (mined once on the initial prefix) is re-evaluated.
//   incremental — ONE relation + ONE session: AppendBatch per batch, the
//                 engine catches up (columns extend, the tree's bag and
//                 separator partitions delta-extend), J re-reads the
//                 extended partitions. O(delta) per batch.
//   cold        — a fresh session per batch over the rows so far, J from
//                 an empty cache. O(N) per batch: the pre-epoch behavior
//                 of this library (any mutation meant full rebuild).
// Both arms evaluate the same J terms; every per-batch value must agree to
// 1e-9 or the bench exits 1 (the equivalence guard CI runs in --smoke).
// The JSON line reports ns per APPENDED row for each arm — the maintenance
// cost a streaming monitor actually pays — and their ratio; the
// loss-trajectory points stream as one JSON line each before it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/streaming.h"
#include "discovery/miner.h"
#include "engine/analysis_session.h"
#include "info/entropy.h"
#include "info/j_measure.h"
#include "random/rng.h"
#include "relation/relation.h"

namespace {

using namespace ajd;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Stream-shaped rows: a drifting hot window plus uniform background. Real
// append streams have temporal key locality (new events reference recent
// entities), so most of a batch lands in a narrow, advancing slice of each
// attribute's domain while a uniform residue keeps every old value alive.
// This is the structure delta extension exploits — the blocks of past
// windows stop receiving rows and are carried over wholesale — and the
// cold arm is indifferent to it (same rows, same O(N) rebuild).
std::vector<std::vector<uint32_t>> DrawRows(Rng* rng, uint32_t num_attrs,
                                            uint32_t domain, uint32_t count,
                                            uint32_t window_base) {
  std::vector<std::vector<uint32_t>> rows(count,
                                          std::vector<uint32_t>(num_attrs));
  constexpr uint32_t kWindow = 8;
  for (auto& row : rows) {
    for (uint32_t a = 0; a < num_attrs; ++a) {
      if (rng->NextDouble() < 0.99) {
        const double u = rng->NextDouble();
        const uint32_t offset = static_cast<uint32_t>(u * u * kWindow);
        row[a] = (window_base + offset) % domain;
      } else {
        row[a] = static_cast<uint32_t>(rng->UniformU64(domain));
      }
    }
  }
  return rows;
}

Relation FromRows(uint32_t num_attrs,
                  const std::vector<std::vector<uint32_t>>& rows) {
  std::vector<uint64_t> dims(num_attrs, 2);
  RelationBuilder b(Schema::MakeSynthetic(dims).value());
  for (const auto& row : rows) b.AddRow(row);
  return std::move(b).Build(/*dedupe=*/false);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint32_t num_attrs = 8;
  const uint32_t domain = smoke ? 16 : 64;
  const uint32_t initial_rows = smoke ? 2000 : 60000;
  const uint32_t batches = smoke ? 6 : 16;
  const uint32_t batch_rows = smoke ? 300 : 4000;
  // The hot window advances this much per batch (and per initial chunk).
  const uint32_t drift = 2;

  Rng rng(20260730);
  // The initial prefix is the same stream, already drifted through its
  // history — chunked so its value-recency structure matches the appends.
  std::vector<std::vector<uint32_t>> all_rows;
  uint32_t window_base = 0;
  {
    const uint32_t chunk = batch_rows == 0 ? initial_rows : batch_rows;
    for (uint32_t done = 0; done < initial_rows; done += chunk) {
      auto part = DrawRows(&rng, num_attrs, domain,
                           std::min(chunk, initial_rows - done),
                           window_base);
      for (auto& row : part) all_rows.push_back(std::move(row));
      window_base += drift;
    }
  }

  // The monitored tree: mined once on the initial prefix, then fixed, so
  // both arms evaluate an identical term set every batch.
  Relation inc = FromRows(num_attrs, all_rows);
  StreamingOptions mopts;
  mopts.drift_threshold = 0.0;  // fixed tree: the A/B must not re-mine
  Result<StreamingLossMonitor> made =
      StreamingLossMonitor::WithMinedTree(&inc, mopts);
  if (!made.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 made.status().ToString().c_str());
    return 1;
  }
  StreamingLossMonitor monitor = std::move(made).value();
  const JoinTree tree = monitor.tree();  // copy for the cold arm

  // Untimed warm-up batch: the first catch-up after mining pays a one-time
  // generational sweep over the miner's whole working set (hundreds of
  // partitions most of which it drops); the A/B measures the steady-state
  // maintenance cost a long-running monitor actually lives at.
  {
    std::vector<std::vector<uint32_t>> warm =
        DrawRows(&rng, num_attrs, domain, batch_rows, window_base);
    window_base += drift;
    Result<StreamingPoint> point = monitor.IngestBatch(warm);
    if (!point.ok()) {
      std::fprintf(stderr, "warm-up ingest failed: %s\n",
                   point.status().ToString().c_str());
      return 1;
    }
    for (auto& row : warm) all_rows.push_back(std::move(row));
  }

  double inc_ns = 0.0;
  double cold_ns = 0.0;
  uint64_t appended = 0;
  double max_diff = 0.0;
  for (uint32_t k = 0; k < batches; ++k) {
    std::vector<std::vector<uint32_t>> batch =
        DrawRows(&rng, num_attrs, domain, batch_rows, window_base);
    window_base += drift;

    const double t0 = NowNs();
    Result<StreamingPoint> point = monitor.IngestBatch(batch);
    const double t1 = NowNs();
    if (!point.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   point.status().ToString().c_str());
      return 1;
    }
    inc_ns += t1 - t0;
    appended += batch.size();
    std::printf("%s\n", point.value().ToJsonLine().c_str());

    // Cold arm: rebuild everything from the rows so far — the only option
    // before relations had epochs.
    for (auto& row : batch) all_rows.push_back(std::move(row));
    const double t2 = NowNs();
    Relation cold_r = FromRows(num_attrs, all_rows);
    AnalysisSession cold_session;
    EntropyCalculator cold_calc(&cold_session, &cold_r);
    const double cold_j = JMeasureDetailed(&cold_calc, tree).j;
    const double t3 = NowNs();
    cold_ns += t3 - t2;

    const double diff = std::fabs(cold_j - point.value().j);
    if (diff > max_diff) max_diff = diff;
    if (diff > 1e-9) {
      std::fprintf(stderr,
                   "VALUE MISMATCH at batch %u: incremental %.17g vs cold "
                   "%.17g\n",
                   k, point.value().j, cold_j);
      return 1;
    }
  }

  const double inc_ns_per_row = inc_ns / static_cast<double>(appended);
  const double cold_ns_per_row = cold_ns / static_cast<double>(appended);
  const EngineStats stats = monitor.session().TotalStats();
  std::printf(
      "{\"bench\":\"perf_streaming\",\"smoke\":%s,\"rows_initial\":%u,"
      "\"batches\":%u,\"batch_rows\":%u,\"appended_rows\":%llu,"
      "\"incremental_ns_per_row\":%.1f,\"cold_ns_per_row\":%.1f,"
      "\"speedup_vs_cold\":%.2f,\"epoch_catchups\":%llu,"
      "\"partitions_extended\":%llu,\"partitions_replayed\":%llu,"
      "\"max_j_diff\":%.3g}\n",
      smoke ? "true" : "false", initial_rows, batches, batch_rows,
      static_cast<unsigned long long>(appended), inc_ns_per_row,
      cold_ns_per_row, cold_ns_per_row / inc_ns_per_row,
      static_cast<unsigned long long>(stats.epoch_catchups),
      static_cast<unsigned long long>(stats.partitions_extended),
      static_cast<unsigned long long>(stats.partitions_replayed),
      max_diff);
  return 0;
}
