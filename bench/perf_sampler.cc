// Experiment PERF-SAMPLER — random relation sampling strategies across
// densities N/D: rejection wins when sparse, shuffle when dense, Floyd is
// the robust middle. google-benchmark.
#include <benchmark/benchmark.h>

#include "random/random_relation.h"
#include "random/rng.h"

namespace {

using namespace ajd;

void SampleWith(benchmark::State& state, SampleStrategy strategy,
                uint64_t domain, uint64_t n) {
  Rng rng(13);
  for (auto _ : state) {
    auto result = SampleDistinctIndices(domain, n, &rng, strategy);
    benchmark::DoNotOptimize(result.value().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_FloydSparse(benchmark::State& state) {
  SampleWith(state, SampleStrategy::kFloyd, 1 << 24, state.range(0));
}
BENCHMARK(BM_FloydSparse)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_RejectionSparse(benchmark::State& state) {
  SampleWith(state, SampleStrategy::kRejection, 1 << 24, state.range(0));
}
BENCHMARK(BM_RejectionSparse)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FloydDense(benchmark::State& state) {
  // N = D/2: rejection would thrash; Floyd stays at N draws.
  SampleWith(state, SampleStrategy::kFloyd, 2 * state.range(0),
             state.range(0));
}
BENCHMARK(BM_FloydDense)->Arg(1 << 14)->Arg(1 << 18);

void BM_ShuffleDense(benchmark::State& state) {
  SampleWith(state, SampleStrategy::kShuffle, 2 * state.range(0),
             state.range(0));
}
BENCHMARK(BM_ShuffleDense)->Arg(1 << 14)->Arg(1 << 18);

void BM_AutoStrategy(benchmark::State& state) {
  SampleWith(state, SampleStrategy::kAuto, 1 << 22, state.range(0));
}
BENCHMARK(BM_AutoStrategy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_EndToEndRelationSampling(benchmark::State& state) {
  Rng rng(17);
  RandomRelationSpec spec;
  spec.domain_sizes = {1000, 1000};
  spec.num_tuples = state.range(0);
  for (auto _ : state) {
    auto r = SampleRandomRelation(spec, &rng);
    benchmark::DoNotOptimize(r.value().NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EndToEndRelationSampling)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
