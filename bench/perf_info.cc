// Experiment PERF-INFO — entropy / CMI / J-measure / KL throughput across
// relation sizes and attribute counts. google-benchmark.
#include <benchmark/benchmark.h>

#include "info/entropy.h"
#include "info/factorized.h"
#include "info/j_measure.h"
#include "random/random_relation.h"
#include "random/rng.h"

namespace {

using namespace ajd;

Relation MakeInput(uint64_t n, uint32_t attrs, uint64_t domain) {
  Rng rng(11);
  RandomRelationSpec spec;
  spec.domain_sizes.assign(attrs, domain);
  spec.num_tuples = n;
  return SampleRandomRelation(spec, &rng).value();
}

void BM_Entropy(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EntropyOf(r, AttrSet{0, 1, 2}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Entropy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CmiCold(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  for (auto _ : state) {
    EntropyCalculator calc(&r);
    benchmark::DoNotOptimize(calc.ConditionalMutualInformation(
        AttrSet{0}, AttrSet{1}, AttrSet{2, 3}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CmiCold)->Arg(1 << 10)->Arg(1 << 14);

void BM_CmiCached(benchmark::State& state) {
  Relation r = MakeInput(1 << 14, 4, 32);
  EntropyCalculator calc(&r);
  // Warm the cache with all 16 subsets.
  for (uint32_t mask = 0; mask < 16; ++mask) {
    calc.Entropy(AttrSet::FromMask(mask));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.ConditionalMutualInformation(
        AttrSet{0}, AttrSet{1}, AttrSet{2, 3}));
  }
}
BENCHMARK(BM_CmiCached);

void BM_JMeasure(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  JoinTree t =
      JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(JMeasure(r, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JMeasure)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_KlFromFactorized(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  JoinTree t =
      JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}}).value();
  for (auto _ : state) {
    FactorizedDistribution pt(r, t);
    benchmark::DoNotOptimize(pt.KlFromEmpirical());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KlFromFactorized)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
