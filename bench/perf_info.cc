// Experiment PERF-INFO — entropy / CMI / J-measure / KL throughput across
// relation sizes and attribute counts. google-benchmark.
#include <benchmark/benchmark.h>

#include <vector>

#include "engine/analysis_session.h"
#include "engine/entropy_engine.h"
#include "info/entropy.h"
#include "info/factorized.h"
#include "info/j_measure.h"
#include "random/random_relation.h"
#include "random/rng.h"

namespace {

using namespace ajd;

Relation MakeInput(uint64_t n, uint32_t attrs, uint64_t domain) {
  Rng rng(11);
  RandomRelationSpec spec;
  spec.domain_sizes.assign(attrs, domain);
  spec.num_tuples = n;
  return SampleRandomRelation(spec, &rng).value();
}

void BM_Entropy(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EntropyOf(r, AttrSet{0, 1, 2}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Entropy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CmiCold(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  for (auto _ : state) {
    EntropyCalculator calc(&r);
    benchmark::DoNotOptimize(calc.ConditionalMutualInformation(
        AttrSet{0}, AttrSet{1}, AttrSet{2, 3}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CmiCold)->Arg(1 << 10)->Arg(1 << 14);

void BM_CmiCached(benchmark::State& state) {
  Relation r = MakeInput(1 << 14, 4, 32);
  EntropyCalculator calc(&r);
  // Warm the cache with all 16 subsets.
  for (uint32_t mask = 0; mask < 16; ++mask) {
    calc.Entropy(AttrSet::FromMask(mask));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(calc.ConditionalMutualInformation(
        AttrSet{0}, AttrSet{1}, AttrSet{2, 3}));
  }
}
BENCHMARK(BM_CmiCached);

void BM_JMeasure(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  JoinTree t =
      JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}}).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(JMeasure(r, t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JMeasure)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

// Engine-backed paths: the same workloads answered by the shared columnar
// EntropyEngine (partition refinement + AttrSet-keyed cache).
void BM_EngineEntropyCold(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  for (auto _ : state) {
    EntropyEngine engine(&r);
    benchmark::DoNotOptimize(engine.Entropy(AttrSet{0, 1, 2}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineEntropyCold)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_EngineLatticeSweep(benchmark::State& state) {
  // All 15 non-empty subsets of 4 attributes — the shape of a J-measure
  // or miner workload. The engine extends cached partitions instead of
  // re-scanning per subset.
  Relation r = MakeInput(state.range(0), 4, 32);
  std::vector<AttrSet> sets;
  for (uint32_t mask = 1; mask < 16; ++mask) {
    sets.push_back(AttrSet::FromMask(mask));
  }
  for (auto _ : state) {
    EntropyEngine engine(&r);
    benchmark::DoNotOptimize(engine.BatchEntropy(sets));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 15);
}
BENCHMARK(BM_EngineLatticeSweep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_LegacyLatticeSweep(benchmark::State& state) {
  // The same sweep through per-call EntropyOf, for comparison.
  Relation r = MakeInput(state.range(0), 4, 32);
  for (auto _ : state) {
    double sum = 0.0;
    for (uint32_t mask = 1; mask < 16; ++mask) {
      sum += EntropyOf(r, AttrSet::FromMask(mask));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 15);
}
BENCHMARK(BM_LegacyLatticeSweep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SessionAnalysisAfterMining(benchmark::State& state) {
  // The reuse story end to end: JMeasure over a session already warmed by
  // the same tree's terms.
  Relation r = MakeInput(1 << 14, 4, 32);
  JoinTree t =
      JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}}).value();
  AnalysisSession session;
  EntropyCalculator warm(&session, &r);
  JMeasure(&warm, t);
  for (auto _ : state) {
    EntropyCalculator calc(&session, &r);
    benchmark::DoNotOptimize(JMeasure(&calc, t));
  }
}
BENCHMARK(BM_SessionAnalysisAfterMining);

void BM_KlFromFactorized(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 4, 32);
  JoinTree t =
      JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}}).value();
  for (auto _ : state) {
    FactorizedDistribution pt(r, t);
    benchmark::DoNotOptimize(pt.KlFromEmpirical());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KlFromFactorized)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
