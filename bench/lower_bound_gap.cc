// Experiment LB — Lemma 4.1 on arbitrary relations and schemas:
// J <= ln(1 + rho) always; this harness measures how loose the bound is in
// the wild (gap statistics over random relations x random acyclic schemas,
// at several densities).
#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "core/loss.h"
#include "info/j_measure.h"
#include "io/table_printer.h"
#include "random/rng.h"
#include "random/random_relation.h"
#include "jointree/join_tree.h"
#include "util/string_util.h"

namespace {

using namespace ajd;

// Random path join tree over `num_attrs` attributes (same interval
// construction as the test utilities, inlined to keep the bench
// self-contained).
JoinTree RandomPathTree(Rng* rng, uint32_t num_attrs, uint32_t max_bags) {
  while (true) {
    uint32_t m = 2 + static_cast<uint32_t>(rng->UniformU64(max_bags - 1));
    std::vector<AttrSet> bags(m);
    for (uint32_t a = 0; a < num_attrs; ++a) {
      uint32_t lo = static_cast<uint32_t>(rng->UniformU64(m));
      uint32_t hi = lo + static_cast<uint32_t>(rng->UniformU64(m - lo));
      for (uint32_t j = lo; j <= hi; ++j) bags[j].Add(a);
    }
    bool ok = true;
    for (const AttrSet& b : bags) ok = ok && !b.Empty();
    if (!ok) continue;
    Result<JoinTree> tree = JoinTree::Path(std::move(bags));
    if (tree.ok()) return std::move(tree).value();
  }
}

}  // namespace

int main() {
  using namespace ajd;
  std::printf("== LB: Lemma 4.1 gap ln(1+rho) - J over random inputs ==\n\n");
  Rng rng(2024);
  TablePrinter table({"attrs", "domain", "N", "trials", "violations",
                      "gap mean", "gap q50", "gap q90", "gap max"});
  struct Config {
    uint32_t attrs;
    uint64_t domain;
    uint64_t n;
  };
  for (Config c : std::vector<Config>{{3, 4, 24},
                                      {3, 8, 128},
                                      {4, 4, 96},
                                      {4, 6, 400},
                                      {5, 3, 100},
                                      {5, 4, 400}}) {
    const int trials = 60;
    int violations = 0;
    std::vector<double> gaps;
    for (int t = 0; t < trials; ++t) {
      RandomRelationSpec spec;
      spec.domain_sizes.assign(c.attrs, c.domain);
      spec.num_tuples = c.n;
      Relation r = SampleRandomRelation(spec, &rng).value();
      JoinTree tree = RandomPathTree(&rng, c.attrs, 4);
      double j = JMeasure(r, tree);
      LossReport loss = ComputeLoss(r, tree).value();
      double gap = loss.log1p_rho - j;
      if (gap < -1e-8) ++violations;
      gaps.push_back(gap);
    }
    SampleSummary s = Summarize(gaps);
    table.AddRow({std::to_string(c.attrs), std::to_string(c.domain),
                  std::to_string(c.n), std::to_string(trials),
                  std::to_string(violations), FormatDouble(s.mean, 5),
                  FormatDouble(s.q50, 5), FormatDouble(s.q90, 5),
                  FormatDouble(s.max, 5)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Paper claim (Lemma 4.1): violations == 0 in every row; the\n"
              "gap is the slack of the deterministic lower bound.\n");
  return 0;
}
