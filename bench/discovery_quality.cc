// Experiment DISC — miner ablation: on planted AJD instances with growing
// noise, the J-guided greedy miner finds schemas whose measured loss (a)
// tracks the planted structure, (b) respects the Lemma 4.1 prediction made
// BEFORE materializing anything, and (c) beats a structure-oblivious
// baseline (the full-independence star schema).
#include <cstdio>

#include "core/analysis.h"
#include "core/worstcase.h"
#include "discovery/miner.h"
#include "engine/analysis_session.h"
#include "io/table_printer.h"
#include "random/rng.h"
#include "util/string_util.h"

int main() {
  using namespace ajd;
  std::printf("== DISC: miner quality on planted AJD + noise ==\n\n");
  Rng rng(991);

  TablePrinter table({"noise", "N", "mined bags", "mined J",
                      "predicted rho >=", "actual rho", "baseline rho",
                      "lossless?"});
  for (uint64_t noise : {0ull, 4ull, 16ull, 64ull, 256ull}) {
    Instance planted =
        MakeLosslessMvdInstance(24, 24, 16, 5, 5, &rng).value();
    Relation r = noise == 0
                     ? planted.relation
                     : AddNoiseTuples(planted.relation, noise, &rng).value();

    MinerOptions options;
    options.max_bag_size = 2;
    options.cmi_threshold = 1e-9;
    // One session per relation: the analysis after mining answers its
    // entropy terms from the cache the split search already filled.
    AnalysisSession session;
    MinerReport mined = MineJoinTree(&session, r, options).value();
    AjdAnalysis a = AnalyzeAjd(&session, r, mined.tree).value();

    // Baseline: fully-independent star schema {A},{B},{C}.
    JoinTree baseline =
        JoinTree::FromMvdPartition(AttrSet(),
                                   {AttrSet{0}, AttrSet{1}, AttrSet{2}})
            .value();
    AjdAnalysis base = AnalyzeAjd(&session, r, baseline).value();

    table.AddRow({std::to_string(noise), std::to_string(r.NumRows()),
                  std::to_string(mined.tree.NumNodes()),
                  FormatDouble(mined.j, 5),
                  FormatDouble(mined.rho_lower_bound, 5),
                  FormatDouble(a.loss.rho, 5),
                  FormatDouble(base.loss.rho, 5),
                  a.lossless ? "yes" : "no"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape: at noise 0 the miner recovers the planted MVD losslessly;\n"
      "as noise grows, mined J and actual rho grow together while the\n"
      "Lemma 4.1 prediction stays below the actual loss; the mined schema\n"
      "always beats the independence baseline by orders of magnitude.\n");
  return 0;
}
