// Experiment PERF-JOIN — substrate performance: Yannakakis count
// propagation vs materializing the acyclic join, and the hash-join /
// projection primitives, across input sizes. google-benchmark.
#include <benchmark/benchmark.h>

#include "core/loss.h"
#include "core/worstcase.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "relation/acyclic_join.h"
#include "relation/ops.h"

namespace {

using namespace ajd;

Relation MakeInput(uint64_t n, uint64_t domain) {
  Rng rng(7);
  RandomRelationSpec spec;
  spec.domain_sizes = {domain, domain, domain, domain};
  spec.num_tuples = n;
  return SampleRandomRelation(spec, &rng).value();
}

JoinTree PathTree() {
  return JoinTree::Path({AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{2, 3}})
      .value();
}

void BM_YannakakisCount(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 64);
  JoinTree t = PathTree();
  for (auto _ : state) {
    AcyclicJoinCount c = CountAcyclicJoin(r, t);
    benchmark::DoNotOptimize(c.approx);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_YannakakisCount)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_MaterializeAcyclicJoin(benchmark::State& state) {
  // Keep the join output bounded: small domains inflate the output, so use
  // a moderate domain and input size.
  Relation r = MakeInput(state.range(0), 64);
  JoinTree t = PathTree();
  for (auto _ : state) {
    Relation joined = MaterializeAcyclicJoin(r, t).value();
    benchmark::DoNotOptimize(joined.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaterializeAcyclicJoin)->Arg(1 << 10)->Arg(1 << 13);

void BM_Projection(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 64);
  for (auto _ : state) {
    Relation p = Project(r, AttrSet{0, 1});
    benchmark::DoNotOptimize(p.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Projection)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_HashJoin(benchmark::State& state) {
  Relation r = MakeInput(state.range(0), 64);
  Relation left = Project(r, AttrSet{0, 1});
  Relation right = Project(r, AttrSet{1, 2});
  for (auto _ : state) {
    Relation j = NaturalJoin(left, right).value();
    benchmark::DoNotOptimize(j.NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(1 << 10)->Arg(1 << 13);

void BM_MvdLossCounting(benchmark::State& state) {
  // ComputeMvdLoss never materializes; contrast with BM_HashJoin.
  Relation r = MakeInput(state.range(0), 64);
  Mvd mvd = MakeMvd(AttrSet{1}, AttrSet{0}, AttrSet{2, 3});
  for (auto _ : state) {
    auto loss = ComputeMvdLoss(r, mvd);
    benchmark::DoNotOptimize(loss.value().rho);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MvdLossCounting)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace

BENCHMARK_MAIN();
