// Experiment SANDWICH — Theorem 2.2: for a rooted DFS enumeration,
//   max_i I(Omega_{1:i-1}; Omega_{i:m} | Delta_i) <= J(T)
//                                      <= sum_i I(...),
// where the lower side is realized through the edge-support CMIs (merging
// bags only coarsens the model class; see DESIGN.md). We also print the
// exact chain-rule identity J = sum_i I(Omega_{1:i-1}; Omega_i | Delta_i).
#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "info/j_measure.h"
#include "io/table_printer.h"
#include "jointree/join_tree.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "util/string_util.h"

int main() {
  using namespace ajd;
  std::printf("== SANDWICH: Thm 2.2 max CMI <= J <= sum CMI ==\n\n");
  Rng rng(31337);

  TablePrinter table({"trial", "m", "max edge CMI", "J", "sum DFS CMI",
                      "chain-rule J", "lower ok", "upper ok"});
  int lower_violations = 0, upper_violations = 0;
  const int trials = 24;
  for (int trial = 0; trial < trials; ++trial) {
    RandomRelationSpec spec;
    spec.domain_sizes = {4, 4, 4, 4, 4};
    spec.num_tuples = 256;
    Relation r = SampleRandomRelation(spec, &rng).value();
    // Random path tree via interval construction.
    JoinTree tree = [&rng]() {
      while (true) {
        uint32_t m = 2 + static_cast<uint32_t>(rng.UniformU64(3));
        std::vector<AttrSet> bags(m);
        for (uint32_t a = 0; a < 5; ++a) {
          uint32_t lo = static_cast<uint32_t>(rng.UniformU64(m));
          uint32_t hi = lo + static_cast<uint32_t>(rng.UniformU64(m - lo));
          for (uint32_t j = lo; j <= hi; ++j) bags[j].Add(a);
        }
        bool ok = true;
        for (const AttrSet& b : bags) ok = ok && !b.Empty();
        if (!ok) continue;
        Result<JoinTree> t = JoinTree::Path(std::move(bags));
        if (t.ok()) return std::move(t).value();
      }
    }();
    double j = JMeasure(r, tree);
    SandwichBounds sandwich = DfsSandwich(r, tree);
    double max_edge_cmi = 0.0;
    for (double c : SupportCmis(r, tree)) {
      max_edge_cmi = std::max(max_edge_cmi, c);
    }
    double chain = JMeasureViaChainRule(r, tree);
    bool lower_ok = max_edge_cmi <= j + 1e-8;
    bool upper_ok = j <= sandwich.sum_cmi + 1e-8;
    if (!lower_ok) ++lower_violations;
    if (!upper_ok) ++upper_violations;
    if (trial < 10) {
      table.AddRow({std::to_string(trial),
                    std::to_string(tree.NumNodes()),
                    FormatDouble(max_edge_cmi, 5), FormatDouble(j, 5),
                    FormatDouble(sandwich.sum_cmi, 5),
                    FormatDouble(chain, 5), lower_ok ? "yes" : "NO",
                    upper_ok ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("over %d trials: lower violations = %d, upper violations = "
              "%d (paper claim: both 0);\nchain-rule J equals J to "
              "floating-point precision in every row.\n",
              trials, lower_violations, upper_violations);
  return 0;
}
