// Experiment PERF-PARTITION — kernel-by-kernel ns/row of the partition
// refinement suite (engine/refine_kernels.h) over cardinality and skew
// sweeps, plus the fused multi-column kernels against the chains they
// replace.
//
// The adaptive thresholds (kDenseCardinalityMax, the sort cutover at
// cardinality >= mass, the SIMD block gate) were picked from this sweep;
// rerun it when the hardware changes. Every timed case first asserts that
// the kernel under test produces output IDENTICAL to the reference scalar
// path — block boundaries, block order, row order, and bit-for-bit entropy
// — so the bench doubles as an equivalence guard and exits 1 on mismatch.
//
// One machine-readable JSON line per case. `--smoke` shrinks sizes to keep
// the guard and the emitter alive in CI, where shared-runner timings mean
// nothing.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/column_store.h"
#include "engine/partition.h"
#include "engine/refine_kernels.h"
#include "engine/worker_pool.h"
#include "random/rng.h"

namespace {

using namespace ajd;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// A synthetic dense column. skew == 0 is uniform; higher skews concentrate
// mass on low codes (u^(1+skew) keeps codes in range and head-heavy), with
// code 0 re-densified so every code < cardinality stays possible.
Column MakeColumn(uint32_t rows, uint32_t cardinality, double skew,
                  Rng* rng) {
  std::vector<uint32_t> codes(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    if (skew == 0.0) {
      codes[i] = static_cast<uint32_t>(rng->UniformU64(cardinality));
    } else {
      const double u = rng->NextDouble();
      const double v = std::pow(u, 1.0 + skew);
      uint32_t c = static_cast<uint32_t>(v * cardinality);
      codes[i] = c >= cardinality ? cardinality - 1 : c;
    }
  }
  return MakeOwnedColumn(std::move(codes), cardinality);
}

// First-occurrence densification of a raw value stream with the first_row
// table (the store's contract, which delta extension requires). Prefix-
// consistent: every cut of the stream shares the same dense codes.
void DensifyStream(const std::vector<uint32_t>& raw,
                   std::vector<uint32_t>* codes,
                   std::vector<uint32_t>* first_row) {
  std::unordered_map<uint32_t, uint32_t> remap;
  codes->reserve(raw.size());
  for (uint32_t i = 0; i < raw.size(); ++i) {
    auto [it, fresh] =
        remap.emplace(raw[i], static_cast<uint32_t>(first_row->size()));
    if (fresh) first_row->push_back(i);
    codes->push_back(it->second);
  }
}

Column ColumnAtCut(const std::vector<uint32_t>& codes,
                   const std::vector<uint32_t>& first_row, uint32_t n) {
  const uint32_t card = static_cast<uint32_t>(
      std::lower_bound(first_row.begin(), first_row.end(), n) -
      first_row.begin());
  return MakeOwnedColumn(
      std::vector<uint32_t>(codes.begin(), codes.begin() + n), card,
      std::vector<uint32_t>(first_row.begin(), first_row.begin() + card));
}

bool SamePartition(const Partition& a, const Partition& b) {
  if (a.NumBlocks() != b.NumBlocks()) return false;
  if (a.NumStrippedRows() != b.NumStrippedRows()) return false;
  for (uint32_t blk = 0; blk < a.NumBlocks(); ++blk) {
    if (a.BlockSize(blk) != b.BlockSize(blk)) return false;
    const uint32_t* pa = a.BlockBegin(blk);
    const uint32_t* pb = b.BlockBegin(blk);
    for (uint32_t i = 0; i < a.BlockSize(blk); ++i) {
      if (pa[i] != pb[i]) return false;
    }
  }
  return true;
}

bool g_all_ok = true;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "MISMATCH: %s\n", what);
    g_all_ok = false;
  }
}

const char* KernelName(RefineKernel k) {
  switch (k) {
    case RefineKernel::kAuto:
      return "auto";
    case RefineKernel::kDense:
      return "dense";
    case RefineKernel::kMid:
      return "mid";
    case RefineKernel::kSort:
      return "sort";
  }
  return "?";
}

// Times fn() (already-verified work) and returns the best-of-reps wall ns.
template <typename Fn>
double TimeNs(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowNs();
    fn();
    const double dt = NowNs() - t0;
    if (r == 0 || dt < best) best = dt;
  }
  return best;
}

void EmitLine(bool smoke, const char* op, const char* kernel, uint32_t rows,
              uint64_t mass, uint32_t cardinality, double skew,
              double ns_per_row) {
  std::printf(
      "{\"bench\":\"perf_partition\",\"smoke\":%s,\"op\":\"%s\","
      "\"kernel\":\"%s\",\"rows\":%u,\"mass\":%llu,\"cardinality\":%u,"
      "\"skew\":%.1f,\"ns_per_row\":%.2f,\"simd\":%s}\n",
      smoke ? "true" : "false", op, kernel, rows,
      static_cast<unsigned long long>(mass), cardinality, skew, ns_per_row,
      SimdTallyEnabled() ? "true" : "false");
}

// A line from the intra-op sharded sweep. threads == 0 is the serial
// reference arm.
void EmitParLine(bool smoke, const char* op, uint32_t threads, uint32_t rows,
                 uint64_t mass, uint32_t cardinality, double ns_per_row) {
  std::printf(
      "{\"bench\":\"perf_partition\",\"smoke\":%s,\"op\":\"%s\","
      "\"threads\":%u,\"rows\":%u,\"mass\":%llu,\"cardinality\":%u,"
      "\"ns_per_row\":%.2f,\"simd\":%s}\n",
      smoke ? "true" : "false", op, threads, rows,
      static_cast<unsigned long long>(mass), cardinality, ns_per_row,
      SimdTallyEnabled() ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<uint32_t> par_threads = {1, 2, 4};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      par_threads.clear();
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end == p) break;
        if (v > 0) par_threads.push_back(static_cast<uint32_t>(v));
        p = *end == ',' ? end + 1 : end;
      }
      if (par_threads.empty()) par_threads = {1, 2, 4};
    }
  }
  const uint32_t kRows = smoke ? 20000 : 1000000;
  const int kReps = smoke ? 1 : 3;
  Rng rng(20260730);

  // The base partition every kernel refines: a medium-cardinality grouping,
  // so blocks span the tiny-to-large spectrum the engine actually sees.
  Column base_col = MakeColumn(kRows, 64, 0.0, &rng);
  Partition base = Partition::OfColumn(base_col);
  const uint64_t mass = base.NumStrippedRows();

  const std::vector<uint32_t> cards = {4,     64,        4096,
                                       65536, kRows / 2, 2 * kRows};
  const std::vector<double> skews = {0.0, 3.0};
  for (uint32_t card : cards) {
    for (double skew : skews) {
      Column col = MakeColumn(kRows, card, skew, &rng);
      // Reference outputs from the forced-scalar path.
      Partition ref = base.RefinedBy(col, RefineKernel::kDense);
      const double ref_h = base.RefinedEntropy(col, kRows,
                                               RefineKernel::kDense);
      for (RefineKernel k : {RefineKernel::kDense, RefineKernel::kMid,
                             RefineKernel::kSort, RefineKernel::kAuto}) {
        Check(SamePartition(ref, base.RefinedBy(col, k)),
              "RefinedBy kernel vs dense");
        Check(ref_h == base.RefinedEntropy(col, kRows, k),
              "RefinedEntropy kernel vs dense (bitwise)");
        const double refine_ns =
            TimeNs(kReps, [&] { base.RefinedBy(col, k); });
        EmitLine(smoke, "refine", KernelName(k), kRows, mass, card, skew,
                 refine_ns / static_cast<double>(mass));
        const double entropy_ns =
            TimeNs(kReps, [&] { base.RefinedEntropy(col, kRows, k); });
        EmitLine(smoke, "entropy", KernelName(k), kRows, mass, card, skew,
                 entropy_ns / static_cast<double>(mass));
      }
    }
  }

  // Fused multi-column kernels vs the chains they replace (k = 2, 3).
  for (size_t k = 2; k <= 3; ++k) {
    std::vector<Column> cols;
    std::vector<const Column*> ptrs;
    uint32_t product = 1;
    for (size_t j = 0; j < k; ++j) {
      cols.push_back(MakeColumn(kRows, 16, j == 0 ? 0.0 : 2.0, &rng));
      product *= 16;
    }
    for (const Column& c : cols) ptrs.push_back(&c);

    Partition chained = base;
    for (size_t j = 0; j + 1 < k; ++j) chained = chained.RefinedBy(cols[j]);
    const double chain_h = chained.RefinedEntropy(cols[k - 1], kRows);
    Partition chain_full = chained.RefinedBy(cols[k - 1]);

    Check(SamePartition(chain_full,
                        base.RefinedByAll(ptrs.data(), k, product)),
          "RefinedByAll vs RefinedBy chain");
    Check(chain_h ==
              base.RefinedEntropyAll(ptrs.data(), k, product, kRows),
          "RefinedEntropyAll vs chain (bitwise)");
    const std::string op_m = "fused" + std::to_string(k) + "_materialize";
    const std::string op_e = "fused" + std::to_string(k) + "_entropy";
    const std::string op_cm = "chain" + std::to_string(k) + "_materialize";
    const std::string op_ce = "chain" + std::to_string(k) + "_entropy";
    EmitLine(smoke, op_m.c_str(), "fused", kRows, mass, product, 0.0,
             TimeNs(kReps, [&] { base.RefinedByAll(ptrs.data(), k, product); }) /
                 static_cast<double>(mass));
    EmitLine(smoke, op_e.c_str(), "fused", kRows, mass, product, 0.0,
             TimeNs(kReps,
                    [&] {
                      base.RefinedEntropyAll(ptrs.data(), k, product, kRows);
                    }) /
                 static_cast<double>(mass));
    EmitLine(smoke, op_cm.c_str(), "chain", kRows, mass, product, 0.0,
             TimeNs(kReps,
                    [&] {
                      Partition p = base;
                      for (size_t j = 0; j < k; ++j) p = p.RefinedBy(cols[j]);
                    }) /
                 static_cast<double>(mass));
    EmitLine(smoke, op_ce.c_str(), "chain", kRows, mass, product, 0.0,
             TimeNs(kReps,
                    [&] {
                      Partition p = base;
                      for (size_t j = 0; j + 1 < k; ++j) {
                        p = p.RefinedBy(cols[j]);
                      }
                      p.RefinedEntropy(cols[k - 1], kRows);
                    }) /
                 static_cast<double>(mass));

    if (k == 2) {
      // The chain-finale kernel: materialize + final entropy in one pass.
      Partition fin;
      const double fin_h =
          base.RefinedByWithEntropy(cols[0], cols[1], product, kRows, &fin);
      Partition step = base.RefinedBy(cols[0]);
      Check(SamePartition(step, fin), "RefinedByWithEntropy partition");
      Check(step.RefinedEntropy(cols[1], kRows) == fin_h,
            "RefinedByWithEntropy entropy (bitwise)");
      EmitLine(smoke, "finale2", "fused", kRows, mass, product, 0.0,
               TimeNs(kReps,
                      [&] {
                        Partition p;
                        base.RefinedByWithEntropy(cols[0], cols[1], product,
                                                  kRows, &p);
                      }) /
                   static_cast<double>(mass));
    }
  }

  // --- Uniform append-extension sweep: chunked in-place vs flat copy ----
  //
  // A uniform (zero temporal locality) append stream is the flat layout's
  // worst case: every batch touches essentially every block, so the copy
  // paths rewrite the whole mass per batch while the chunked in-place
  // paths append each batch into per-block tail slack. Timed per APPENDED
  // row; both arms' final partitions are pinned bitwise against cold
  // builds over the full stream (the exit-1 guard).
  //
  // The cardinality is sized so the value set SATURATES over the base
  // rows (every (parent, code) pair already owns a sub-block before the
  // first batch): what the sweep measures is the steady-state delta path,
  // not the transient where brand-new codes force per-block re-refinement
  // on copy and in-place arms alike.
  {
    const uint32_t kBase = kRows;
    const uint32_t kBatches = 16;
    const uint32_t kBatch = smoke ? 500 : 8192;
    const uint32_t kTotal = kBase + kBatches * kBatch;
    const uint32_t kExtCard = 512;
    const uint64_t appended = kTotal - kBase;

    std::vector<uint32_t> raw(kTotal);
    for (auto& v : raw) v = static_cast<uint32_t>(rng.UniformU64(kExtCard));
    std::vector<uint32_t> ext_codes, ext_first;
    DensifyStream(raw, &ext_codes, &ext_first);
    for (auto& v : raw) v = static_cast<uint32_t>(rng.UniformU64(64));
    std::vector<uint32_t> par_codes, par_first;
    DensifyStream(raw, &par_codes, &par_first);

    std::vector<uint32_t> cuts;
    std::vector<Column> ext_cols;
    std::vector<Partition> parents;  // cold per cut, outside all timers
    for (uint32_t i = 1; i <= kBatches; ++i) {
      const uint32_t cut = kBase + i * kBatch;
      cuts.push_back(cut);
      ext_cols.push_back(ColumnAtCut(ext_codes, ext_first, cut));
      parents.push_back(
          Partition::OfColumn(ColumnAtCut(par_codes, par_first, cut)));
    }
    const Column ext0 = ColumnAtCut(ext_codes, ext_first, kBase);
    const Column par0 = ColumnAtCut(par_codes, par_first, kBase);
    const Partition root0 = Partition::OfColumn(ext0);
    const Partition parent0 = Partition::OfColumn(par0);
    PartitionDelta meta0;
    const Partition child0 = parent0.RefinedBy(ext0, RefineKernel::kAuto,
                                               &meta0);

    // Per-rep state reset happens OUTSIDE the timer so both arms time
    // exactly the extension calls.
    Partition final_flat_root, final_chunked_root;
    Partition final_flat_child, final_chunked_child;
    double flat_root_ns = 0, chunked_root_ns = 0;
    double flat_child_ns = 0, chunked_child_ns = 0;
    for (int r = 0; r < kReps; ++r) {
      {
        Partition p = root0;
        const double t0 = NowNs();
        uint64_t prev = kBase;
        for (uint32_t i = 0; i < kBatches; ++i) {
          p = p.ExtendedOfColumn(ext_cols[i], prev);
          prev = cuts[i];
        }
        const double dt = NowNs() - t0;
        if (r == 0 || dt < flat_root_ns) flat_root_ns = dt;
        final_flat_root = std::move(p);
      }
      {
        Partition p = root0;
        const double t0 = NowNs();
        uint64_t prev = kBase;
        for (uint32_t i = 0; i < kBatches; ++i) {
          p.ExtendOfColumnInPlace(ext_cols[i], prev);
          prev = cuts[i];
        }
        const double dt = NowNs() - t0;
        if (r == 0 || dt < chunked_root_ns) chunked_root_ns = dt;
        final_chunked_root = std::move(p);
      }
      {
        Partition c = child0;
        PartitionDelta meta = meta0;
        const double t0 = NowNs();
        uint64_t prev = kBase;
        for (uint32_t i = 0; i < kBatches; ++i) {
          PartitionDelta next;
          c = c.ExtendedBy(nullptr, parents[i], ext_cols[i], prev, &meta,
                           &next);
          meta = std::move(next);
          prev = cuts[i];
        }
        const double dt = NowNs() - t0;
        if (r == 0 || dt < flat_child_ns) flat_child_ns = dt;
        final_flat_child = std::move(c);
      }
      {
        Partition c = child0;
        PartitionDelta meta = meta0;
        const double t0 = NowNs();
        uint64_t prev = kBase;
        for (uint32_t i = 0; i < kBatches; ++i) {
          PartitionDelta next;
          c.ExtendInPlaceBy(nullptr, parents[i], ext_cols[i], prev, &meta,
                            &next);
          meta = std::move(next);
          prev = cuts[i];
        }
        const double dt = NowNs() - t0;
        if (r == 0 || dt < chunked_child_ns) chunked_child_ns = dt;
        final_chunked_child = std::move(c);
      }
    }

    const Partition cold_root =
        Partition::OfColumn(ColumnAtCut(ext_codes, ext_first, kTotal));
    const Partition cold_child =
        parents.back().RefinedBy(ext_cols.back());
    Check(SamePartition(final_flat_root, cold_root),
          "extend_root flat vs cold");
    Check(SamePartition(final_chunked_root, cold_root),
          "extend_root chunked vs cold");
    Check(SamePartition(final_flat_child, cold_child),
          "extend_child flat vs cold");
    Check(SamePartition(final_chunked_child, cold_child),
          "extend_child chunked vs cold");

    const double ap = static_cast<double>(appended);
    EmitLine(smoke, "extend_root", "flat", kTotal, appended, kExtCard, 0.0,
             flat_root_ns / ap);
    EmitLine(smoke, "extend_root", "chunked", kTotal, appended, kExtCard,
             0.0, chunked_root_ns / ap);
    EmitLine(smoke, "extend_child", "flat", kTotal, appended, kExtCard, 0.0,
             flat_child_ns / ap);
    EmitLine(smoke, "extend_child", "chunked", kTotal, appended, kExtCard,
             0.0, chunked_child_ns / ap);
    std::fprintf(stderr,
                 "extend speedup (flat/chunked, uniform stream): root %.2fx"
                 " child %.2fx\n",
                 flat_root_ns / chunked_root_ns,
                 flat_child_ns / chunked_child_ns);
  }

  // --- Intra-op sharded refinement: serial vs block-sharded ------------
  //
  // One refinement split into contiguous mass-balanced shards on a
  // WorkerPool, at each --threads count (default 1,2,4). The guard here is
  // EXACT, not tolerance-based: the sharded partition must be
  // byte-identical to the serial one (block order, row order, delta
  // vectors) and every entropy bit-equal, at EVERY thread count — that is
  // the engine's thread-count-independence contract, and any divergence
  // flips the exit code to 1. Rows stay above three shard masses even
  // under --smoke so CI exercises real multi-shard merges, not the serial
  // degrade path.
  {
    const uint32_t kParRows =
        std::max<uint32_t>(kRows, 3 * kShardedRefineShardMass + 4321);
    WorkerPool pool;
    Rng prng(20260808);
    Column pbase_col = MakeColumn(kParRows, 64, 0.0, &prng);
    Partition pbase = Partition::OfColumn(pbase_col);
    const uint64_t pmass = pbase.NumStrippedRows();
    const double pmassd = static_cast<double>(pmass);
    double best_refine_speedup = 0.0;
    uint32_t best_refine_threads = 0;
    for (uint32_t card : {uint32_t{4096}, kParRows / 4}) {
      Column col = MakeColumn(kParRows, card, 0.0, &prng);
      PartitionDelta ref_delta;
      const Partition ref =
          pbase.RefinedBy(col, RefineKernel::kAuto, &ref_delta);
      const double ref_h =
          pbase.RefinedEntropy(col, kParRows, RefineKernel::kAuto);
      const double serial_refine_ns = TimeNs(
          kReps, [&] { pbase.RefinedBy(col, RefineKernel::kAuto); });
      const double serial_entropy_ns = TimeNs(kReps, [&] {
        pbase.RefinedEntropy(col, kParRows, RefineKernel::kAuto);
      });
      EmitParLine(smoke, "refine_sharded", 0, kParRows, pmass, card,
                  serial_refine_ns / pmassd);
      EmitParLine(smoke, "entropy_sharded", 0, kParRows, pmass, card,
                  serial_entropy_ns / pmassd);
      for (uint32_t t : par_threads) {
        PartitionDelta d;
        const Partition sharded =
            pbase.RefinedBySharded(col, RefineKernel::kAuto, t, &pool, &d);
        Check(SamePartition(ref, sharded), "sharded RefinedBy vs serial");
        Check(d.run_lengths == ref_delta.run_lengths &&
                  d.parent_first_rows == ref_delta.parent_first_rows,
              "sharded delta vs serial");
        Check(ref_h == pbase.RefinedEntropySharded(
                           col, kParRows, RefineKernel::kAuto, t, &pool),
              "sharded RefinedEntropy vs serial (bitwise)");
        const double refine_ns = TimeNs(kReps, [&] {
          pbase.RefinedBySharded(col, RefineKernel::kAuto, t, &pool);
        });
        const double entropy_ns = TimeNs(kReps, [&] {
          pbase.RefinedEntropySharded(col, kParRows, RefineKernel::kAuto, t,
                                      &pool);
        });
        EmitParLine(smoke, "refine_sharded", t, kParRows, pmass, card,
                    refine_ns / pmassd);
        EmitParLine(smoke, "entropy_sharded", t, kParRows, pmass, card,
                    entropy_ns / pmassd);
        const double speedup = serial_refine_ns / refine_ns;
        if (speedup > best_refine_speedup) {
          best_refine_speedup = speedup;
          best_refine_threads = t;
        }
      }
    }

    // The fused multi-column forms under the same exact guard (k = 2).
    Column fc1 = MakeColumn(kParRows, 64, 0.0, &prng);
    Column fc2 = MakeColumn(kParRows, 64, 2.0, &prng);
    const Column* fptrs[2] = {&fc1, &fc2};
    const uint32_t product = 64 * 64;
    const Partition fref = pbase.RefinedByAll(fptrs, 2, product);
    const double fref_h =
        pbase.RefinedEntropyAll(fptrs, 2, product, kParRows);
    Partition fin_ref;
    const double fin_ref_h = pbase.RefinedByWithEntropy(
        fc1, fc2, product, kParRows, &fin_ref);
    for (uint32_t t : par_threads) {
      Check(SamePartition(
                fref, pbase.RefinedByAllSharded(fptrs, 2, product, t, &pool)),
            "sharded RefinedByAll vs serial");
      Check(fref_h == pbase.RefinedEntropyAllSharded(fptrs, 2, product,
                                                     kParRows, t, &pool),
            "sharded RefinedEntropyAll vs serial (bitwise)");
      Partition fin;
      const double fin_h = pbase.RefinedByWithEntropySharded(
          fc1, fc2, product, kParRows, t, &pool, &fin);
      Check(SamePartition(fin_ref, fin),
            "sharded RefinedByWithEntropy partition vs serial");
      Check(fin_ref_h == fin_h,
            "sharded RefinedByWithEntropy entropy vs serial (bitwise)");
      EmitParLine(smoke, "fused2_entropy_sharded", t, kParRows, pmass,
                  product,
                  TimeNs(kReps,
                         [&] {
                           pbase.RefinedEntropyAllSharded(
                               fptrs, 2, product, kParRows, t, &pool);
                         }) /
                      pmassd);
    }
    std::fprintf(stderr,
                 "sharded refine best speedup: %.2fx at %u threads\n",
                 best_refine_speedup, best_refine_threads);
  }

  // Near-key OfColumn: the sort path must match the counting construction.
  {
    Column near_key = MakeColumn(kRows, 2 * kRows, 0.0, &rng);
    Partition via_sort = Partition::OfColumn(near_key);
    Partition via_refine =
        Partition::Trivial(kRows).RefinedBy(near_key, RefineKernel::kDense);
    // OfColumn emits blocks in code order; Trivial-refine in
    // first-occurrence order. For a non-densified synthetic column the two
    // orders differ, so compare mass/blocks plus entropy (order-free).
    Check(via_sort.NumStrippedRows() == via_refine.NumStrippedRows(),
          "near-key OfColumn stripped mass");
    Check(via_sort.NumBlocks() == via_refine.NumBlocks(),
          "near-key OfColumn block count");
    Check(std::abs(via_sort.EntropyNats(kRows) -
                   via_refine.EntropyNats(kRows)) < 1e-12,
          "near-key OfColumn entropy");
    EmitLine(smoke, "of_column_near_key", "sort", kRows, kRows, 2 * kRows,
             0.0,
             TimeNs(kReps, [&] { Partition::OfColumn(near_key); }) /
                 static_cast<double>(kRows));
  }

  return g_all_ok ? 0 : 1;
}
