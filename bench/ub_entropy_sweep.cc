// Experiment UB-ENT — Theorem 5.2 / Proposition 5.4: for the random
// relation model over [d] x [d] with eta tuples,
//   0 <= ln d - H(A_S) <= 20 sqrt(d ln^3(eta/delta)/eta)   w.p. 1 - delta,
// and the MEAN gap is at most C(d) = 2 ln(d)/sqrt(d) (Prop 5.4, eta>=60d).
// We sweep d and the density eta/d and report empirical gaps vs both
// bounds.
#include <cstdio>

#include "core/experiment.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main() {
  using namespace ajd;
  std::printf("== UB-ENT: Thm 5.2 entropy confidence interval ==\n\n");

  std::printf("Sweep 1: d = 32, growing eta (density eta/d^2)\n");
  TablePrinter t1({"eta", "gap mean", "gap q90", "gap max", "Prop5.4 C(d)",
                   "Thm5.2 dev", "eta>=(40)", "within"});
  for (uint64_t eta : {128ull, 512ull, 1016ull}) {
    EntropyDeviationConfig config;
    config.d = 32;
    config.eta = eta;
    config.trials = 40;
    config.seed = 3000 + eta;
    EntropyDeviationResult r = RunEntropyDeviation(config).value();
    t1.AddRow({std::to_string(eta), FormatDouble(r.gap.mean, 5),
               FormatDouble(r.gap.q90, 5), FormatDouble(r.gap.max, 5),
               FormatDouble(r.prop54_bound, 4),
               FormatDouble(r.thm52_bound, 4),
               r.eta_qualifies ? "yes" : "no",
               FormatDouble(r.frac_within, 3)});
  }
  std::printf("%s\n", t1.Render().c_str());

  std::printf("Sweep 2: growing d with eta = 60 d (Prop 5.4's regime;\n"
              "d >= 60 so that eta fits in the d x d domain)\n");
  TablePrinter t2({"d", "eta", "gap mean", "gap max", "Prop5.4 C(d)",
                   "Thm5.2 dev", "within"});
  for (uint64_t d : {64ull, 96ull, 128ull, 192ull}) {
    EntropyDeviationConfig config;
    config.d = d;
    config.eta = 60 * d;
    config.trials = 30;
    config.seed = 4000 + d;
    EntropyDeviationResult r = RunEntropyDeviation(config).value();
    t2.AddRow({std::to_string(d), std::to_string(config.eta),
               FormatDouble(r.gap.mean, 5), FormatDouble(r.gap.max, 5),
               FormatDouble(r.prop54_bound, 4),
               FormatDouble(r.thm52_bound, 4),
               FormatDouble(r.frac_within, 3)});
  }
  std::printf("%s\n", t2.Render().c_str());
  std::printf(
      "Paper shape: gaps are >= 0 (H(A_S) <= ln d), mean gap <= C(d), all\n"
      "trials within the Thm 5.2 deviation, and the gap shrinks as eta\n"
      "grows.\n");
  return 0;
}
