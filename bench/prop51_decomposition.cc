// Experiment PROP51 — Proposition 5.1: the schema loss decomposes over the
// support MVDs: ln(1 + rho(R, S)) <= sum_i ln(1 + rho(R, phi_i)).
// We measure the slack of this decomposition across tree shapes (path vs
// star) and noise levels on planted instances.
//
// FINDING (see EXPERIMENTS.md, "Paper discrepancies"): the proposition AS
// STATED is violated on structured instances — planted product groups plus
// light noise produce rows with negative slack, and a minimal 10-tuple
// counterexample exists (MakeProp51Counterexample). The violating rows
// below are the finding, not a bug; the decomposition is reliable only as
// a typical-case heuristic.
#include <cstdio>
#include <vector>

#include "core/analysis.h"
#include "core/bounds.h"
#include "core/experiment.h"
#include "core/loss.h"
#include "core/worstcase.h"
#include "io/table_printer.h"
#include "random/rng.h"
#include "util/string_util.h"

namespace {

using namespace ajd;

// Planted 4-attribute instance: within each C-group, A x B x D product
// structure, then `noise` extra random tuples.
Relation PlantedFourAttr(Rng* rng, uint64_t groups, uint64_t per_branch,
                         uint64_t noise) {
  Schema s = Schema::Make(
                 {{"A", 16}, {"B", 16}, {"D", 16}, {"C", groups}})
                 .value();
  RelationBuilder b(std::move(s));
  for (uint64_t c = 0; c < groups; ++c) {
    for (uint64_t a = 0; a < per_branch; ++a) {
      for (uint64_t bb = 0; bb < per_branch; ++bb) {
        for (uint64_t d = 0; d < per_branch; ++d) {
          b.AddRow({static_cast<uint32_t>((a + c) % 16),
                    static_cast<uint32_t>((bb + 2 * c) % 16),
                    static_cast<uint32_t>((d + 3 * c) % 16),
                    static_cast<uint32_t>(c)});
        }
      }
    }
  }
  Relation base = std::move(b).Build(/*dedupe=*/true);
  if (noise == 0) return base;
  return AddNoiseTuples(base, noise, rng).value();
}

}  // namespace

int main() {
  using namespace ajd;
  std::printf("== PROP51: loss decomposition over support MVDs ==\n\n");
  Rng rng(777);

  // Star tree: C ->> A | B | D. Path tree: {A,C}-{B,C}-{D,C}... same bags,
  // different edges; support MVDs coincide for these bags, so we also add
  // a genuinely different shape with chained separators.
  std::vector<AttrSet> bags = {AttrSet{0, 3}, AttrSet{1, 3}, AttrSet{2, 3}};
  JoinTree star = JoinTree::Make(bags, {{0, 1}, {0, 2}}).value();
  JoinTree path = JoinTree::Make(bags, {{0, 1}, {1, 2}}).value();
  JoinTree chained =
      JoinTree::Make({AttrSet{0, 1, 3}, AttrSet{1, 2, 3}}, {{0, 1}})
          .value();

  TablePrinter table({"tree", "noise", "ln(1+rho)", "sum ln(1+rho_i)",
                      "slack", "J", "holds"});
  struct Case {
    const char* name;
    const JoinTree* tree;
  };
  for (uint64_t noise : {0ull, 8ull, 32ull, 128ull}) {
    Relation r = PlantedFourAttr(&rng, 6, 4, noise);
    for (Case c : std::vector<Case>{{"star", &star},
                                    {"path", &path},
                                    {"chained", &chained}}) {
      LossReport loss = ComputeLoss(r, *c.tree).value();
      std::vector<double> mvd_losses;
      for (const Mvd& mvd : c.tree->SupportMvds()) {
        mvd_losses.push_back(ComputeMvdLoss(r, mvd).value().rho);
      }
      double bound = Proposition51ProductBound(mvd_losses);
      double j = 0.0;
      {
        AjdAnalysis a = AnalyzeAjd(r, *c.tree).value();
        j = a.j;
      }
      table.AddRow({c.name, std::to_string(noise),
                    FormatDouble(loss.log1p_rho, 5),
                    FormatDouble(bound, 5),
                    FormatDouble(bound - loss.log1p_rho, 5),
                    FormatDouble(j, 5),
                    loss.log1p_rho <= bound + 1e-8 ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // The minimal counterexample, printed with exact numbers.
  Instance counter = MakeProp51Counterexample().value();
  LossReport closs = ComputeLoss(counter.relation, counter.tree).value();
  double cbound = 0.0;
  for (const Mvd& mvd : counter.tree.SupportMvds()) {
    cbound += ComputeMvdLoss(counter.relation, mvd).value().log1p_rho;
  }
  std::printf("minimal counterexample (N=10, path {A}-{B}-{D}):\n"
              "  ln(1+rho(S)) = %s   vs   sum ln(1+rho_i) = %s  -> %s\n\n",
              FormatDouble(closs.log1p_rho, 6).c_str(),
              FormatDouble(cbound, 6).c_str(),
              closs.log1p_rho <= cbound ? "holds" : "VIOLATED");

  std::printf(
      "Paper claim (Prop 5.1) predicts 'holds' in every row. Measured: the\n"
      "lossless rows are tight (slack 0) and heavy noise restores the\n"
      "inequality, but structured low-noise instances VIOLATE it — the\n"
      "stated bound is a typical-case heuristic, not a theorem (erratum\n"
      "recorded in EXPERIMENTS.md).\n");
  return 0;
}
