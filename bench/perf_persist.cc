// Experiment PERF-PERSIST — A/B of a warm restart against a cold start on
// the miner's candidate-split workload, through the crash-safe disk tier
// (persist/persistent_store.h).
//
// The scenario is the motivation's "repeated mining sweeps over a
// slowly-growing relation", cut by a process restart: a seed process
// serves the split workload over the first N0 rows with a persistent
// store attached and persists its cache (PersistCache) at shutdown. A NEW
// process then (a) attaches to the relation at N0, (b) serves the full
// sweep, (c) ingests a delta of appended rows, and (d) serves the sweep
// again at N0+delta. The warm arm's engine constructor reloads the
// persisted entries — entropy values serve sweep (b) as plain cache hits,
// and the reloaded partitions become the in-memory cache that the epoch
// catch-up at (c) delta-extends to N0+delta through the standard
// bit-identical extension machinery, which is what prices sweep (d). The
// cold arm runs the identical (a)-(d) timeline with no disk tier: sweep
// (b) pays the full cold build. Both arms pay (c)+(d) through the same
// catch-up code, so the A/B isolates exactly what the disk tier saves.
//
// The relation is a slowly-growing log: half the attributes are
// low-cardinality dimensions, half DRIFT with the row position (bucketed
// views of one clock — month/week/day of a timestamp, rolling entity
// ids), so partition blocks are fat and appends only touch the trailing
// ones — the temporal-locality regime the delta-extension machinery is
// built for (engine/partition.h), and the natural shape of a growing
// fact table.
//
// Both arms are timed END TO END (engine construction through both
// sweeps). The equivalence guard is absolute 1e-9 per term on BOTH
// sweeps: a persisted cache may make the engine slower, never wronger.
//
// Emits one machine-readable JSON line so future PRs can track the
// trajectory.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "engine/entropy_engine.h"
#include "persist/persistent_store.h"
#include "random/rng.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace {

using namespace ajd;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The attr-set terms of the miner's split enumeration over one bag (the
// same shape bench/perf_entropy_engine.cc replays).
std::vector<AttrSet> SplitWorkload(uint32_t num_attrs,
                                   uint32_t masks_per_separator, Rng* rng) {
  std::vector<AttrSet> terms;
  AttrSet bag = AttrSet::Range(num_attrs);
  for (uint32_t sep_size = 0; sep_size <= 2; ++sep_size) {
    ForEachSubsetOfSize(bag, sep_size, [&](AttrSet c) {
      AttrSet rest = bag.Minus(c);
      std::vector<uint32_t> idx = rest.ToIndices();
      terms.push_back(bag);
      terms.push_back(c);
      for (uint32_t m = 0; m < masks_per_separator; ++m) {
        AttrSet a, b;
        for (uint32_t p : idx) {
          if (rng->Bernoulli(0.5)) {
            a.Add(p);
          } else {
            b.Add(p);
          }
        }
        if (a.Empty() || b.Empty()) continue;
        terms.push_back(a.Union(c));
        terms.push_back(b.Union(c));
      }
    });
  }
  return terms;
}

// Code rows of a slowly-growing log: attributes [0, attrs/2) are uniform
// low-cardinality dimensions; attributes [attrs/2, attrs) DRIFT — their
// values track the row's position at per-column granularities (think
// month/week/day buckets of one underlying timestamp, or the rolling id
// of the currently active entity), drawn from a small window around the
// current bucket. Old codes retire as rows arrive, so the columns'
// partition blocks are FAT (low cardinality) and QUIET (appends only
// touch the last few), and being views of one clock they stay mutually
// correlated — deep chains keep fat blocks instead of collapsing.
std::vector<std::vector<uint32_t>> MakeLogRows(uint64_t n, uint32_t attrs,
                                               uint32_t dim_domain,
                                               Rng* rng) {
  std::vector<std::vector<uint32_t>> rows(n,
                                          std::vector<uint32_t>(attrs, 0));
  const uint32_t half = attrs / 2;
  for (uint64_t i = 0; i < n; ++i) {
    for (uint32_t a = 0; a < attrs; ++a) {
      if (a < half) {
        rows[i][a] = static_cast<uint32_t>(rng->UniformU64(dim_domain));
      } else {
        const uint64_t cardinality = uint64_t{16} << (a - half);
        const uint64_t g = std::max<uint64_t>(1, n / cardinality);
        const uint64_t head = i / g;
        const uint64_t lo = head > 3 ? head - 3 : 0;
        rows[i][a] = static_cast<uint32_t>(rng->UniformRange(lo, head));
      }
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI-friendly sizes that keep the store round-trip, the warm
  // restart, and the equivalence guard exercised without meaningful
  // timings.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint32_t kAttrs = smoke ? 8 : 12;
  const uint64_t kRows = smoke ? 2000 : 40000;
  const uint32_t kDimDomain = 16;
  const uint32_t kMasksPerSeparator = smoke ? 4 : 12;

  Rng rng(20260730);

  // One canonical row sequence; every arm's relation is rebuilt from it so
  // the contents (and therefore the fingerprints) match exactly. The seed
  // sees the first N0 rows, both timed arms the full N0 + delta.
  const std::vector<std::vector<uint32_t>> all_rows =
      MakeLogRows(kRows, kAttrs, kDimDomain, &rng);
  const uint64_t n_total = all_rows.size();
  const uint64_t delta = n_total / 50;
  const uint64_t n0 = n_total - delta;
  const std::vector<std::vector<uint32_t>> base_rows(
      all_rows.begin(), all_rows.begin() + static_cast<ptrdiff_t>(n0));

  std::vector<AttrSet> terms = SplitWorkload(kAttrs, kMasksPerSeparator,
                                             &rng);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ajd_perf_persist_" + std::to_string(static_cast<unsigned long>(
                                 ::getpid())));
  std::filesystem::remove_all(dir);

  PersistOptions popt;
  popt.fsync_writes = false;  // timing the tier, not the disk platter

  std::vector<std::string> names;
  for (uint32_t a = 0; a < kAttrs; ++a) names.push_back("a" + std::to_string(a));
  const Schema schema = Schema::MakeUniform(names, 0).value();

  // --- Seed process: serve the workload at N0, persist, "shut down". ---
  {
    auto store = PersistentCacheStore::Open(dir.string(), popt).value();
    Relation seed =
        Relation::FromRows(schema, base_rows, false).value();
    EngineOptions opt;
    opt.persist_store = store;
    EntropyEngine engine(&seed, opt);
    (void)engine.BatchEntropy(terms);
    Status persisted = engine.PersistCache();
    if (!persisted.ok()) {
      std::fprintf(stderr, "PersistCache failed: %s\n",
                   persisted.ToString().c_str());
      return 1;
    }
  }  // engine and store destroyed: the "process" exits

  const std::vector<std::vector<uint32_t>> delta_rows(
      all_rows.begin() + static_cast<ptrdiff_t>(n0), all_rows.end());

  // One (a)-(d) restart timeline; with a store the engine warm-starts.
  struct ArmResult {
    std::vector<double> sweep1, sweep2;
    double total_ns = 0, restart_ns = 0, sweep1_ns = 0;
    EngineStats stats;
  };
  auto run_arm = [&](std::shared_ptr<PersistentCacheStore> store) {
    ArmResult res;
    const double start = NowNs();
    Relation r = Relation::FromRows(schema, base_rows, false).value();
    EngineOptions opt;
    opt.persist_store = std::move(store);
    // Durability comes from an explicit PersistCache at shutdown (what the
    // seed arm does); publishing every catch-up generation down to disk
    // inside the timed serve path would price the write policy, not the
    // restart.
    opt.persist_on_catchup = false;
    EntropyEngine engine(&r, opt);
    res.restart_ns = NowNs() - start;
    const double t_sweep = NowNs();
    res.sweep1 = engine.BatchEntropy(terms);
    res.sweep1_ns = NowNs() - t_sweep;
    if (!r.AppendBatch(delta_rows).ok()) std::abort();
    res.sweep2 = engine.BatchEntropy(terms);
    res.total_ns = NowNs() - start;
    res.stats = engine.Stats();
    return res;
  };

  const ArmResult cold = run_arm(nullptr);
  // Reopening the store runs the normal restart recovery path.
  const ArmResult warm =
      run_arm(PersistentCacheStore::Open(dir.string(), popt).value());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // Equivalence guard: a persisted cache may cost time, never correctness.
  for (size_t i = 0; i < terms.size(); ++i) {
    if (std::abs(cold.sweep1[i] - warm.sweep1[i]) > 1e-9 ||
        std::abs(cold.sweep2[i] - warm.sweep2[i]) > 1e-9) {
      std::fprintf(
          stderr,
          "MISMATCH term %zu: sweep1 cold=%.15f warm=%.15f / sweep2 "
          "cold=%.15f warm=%.15f\n",
          i, cold.sweep1[i], warm.sweep1[i], cold.sweep2[i],
          warm.sweep2[i]);
      return 1;
    }
  }
  if (warm.stats.persist_reloads == 0) {
    std::fprintf(stderr,
                 "warm restart reloaded nothing from disk — the tier is "
                 "not wired\n");
    return 1;
  }

  std::printf(
      "{\"bench\":\"perf_persist\",\"smoke\":%s,"
      "\"rows_base\":%llu,\"rows_delta\":%llu,\"attrs\":%u,\"terms\":%zu,"
      "\"cold_total_ms\":%.1f,\"warm_total_ms\":%.1f,"
      "\"cold_sweep1_ms\":%.1f,\"warm_sweep1_ms\":%.1f,"
      "\"warm_restart_ms\":%.1f,"
      "\"speedup_warm_restart\":%.2f,\"speedup_first_sweep\":%.2f,"
      "\"persist_reloads\":%llu,\"persist_hits\":%llu,"
      "\"partitions_extended\":%llu,\"persist_fallbacks\":%llu,"
      "\"persist_spills\":%llu}\n",
      smoke ? "true" : "false", static_cast<unsigned long long>(n0),
      static_cast<unsigned long long>(delta), kAttrs, terms.size(),
      cold.total_ns / 1e6, warm.total_ns / 1e6, cold.sweep1_ns / 1e6,
      warm.sweep1_ns / 1e6, warm.restart_ns / 1e6,
      cold.total_ns / warm.total_ns,
      (cold.restart_ns + cold.sweep1_ns) /
          (warm.restart_ns + warm.sweep1_ns),
      static_cast<unsigned long long>(warm.stats.persist_reloads),
      static_cast<unsigned long long>(warm.stats.persist_hits),
      static_cast<unsigned long long>(warm.stats.partitions_extended),
      static_cast<unsigned long long>(warm.stats.persist_fallbacks),
      static_cast<unsigned long long>(warm.stats.persist_spills));
  return 0;
}
