// Experiment PERF-ENGINE — A/B of the legacy per-call EntropyOf against the
// shared columnar EntropyEngine on the miner's candidate-split workload.
//
// The workload replays what BestSplit evaluates on a wide relation: for
// every separator C up to size 2 and a sample of bipartitions A | B of the
// remaining attributes, the terms H(A u C), H(B u C), H(bag), H(C). Three
// contenders:
//   legacy          — EntropyOf per term (re-scan + re-hash every call);
//   memoized legacy — EntropyOf once per distinct term (what the old
//                     EntropyCalculator cache achieved);
//   engine          — EntropyEngine with partition reuse + batch API.
//
// Emits one machine-readable JSON line so future PRs can track the
// trajectory. The acceptance target is engine >= 3x legacy on >= 10
// attributes.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "engine/entropy_engine.h"
#include "info/entropy.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "relation/attr_set.h"

namespace {

using namespace ajd;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The attr-set terms of the miner's split enumeration over one bag.
std::vector<AttrSet> SplitWorkload(uint32_t num_attrs,
                                   uint32_t masks_per_separator, Rng* rng) {
  std::vector<AttrSet> terms;
  AttrSet bag = AttrSet::Range(num_attrs);
  for (uint32_t sep_size = 0; sep_size <= 2; ++sep_size) {
    ForEachSubsetOfSize(bag, sep_size, [&](AttrSet c) {
      AttrSet rest = bag.Minus(c);
      std::vector<uint32_t> idx = rest.ToIndices();
      terms.push_back(bag);
      terms.push_back(c);
      for (uint32_t m = 0; m < masks_per_separator; ++m) {
        AttrSet a, b;
        for (uint32_t p : idx) {
          if (rng->Bernoulli(0.5)) {
            a.Add(p);
          } else {
            b.Add(p);
          }
        }
        if (a.Empty() || b.Empty()) continue;
        terms.push_back(a.Union(c));
        terms.push_back(b.Union(c));
      }
    });
  }
  return terms;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: CI-friendly sizes that keep the JSON emitter and the
  // equivalence guard exercised without meaningful timings.
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint32_t kAttrs = smoke ? 8 : 12;
  const uint64_t kRows = smoke ? 500 : 4000;
  const uint32_t kDomain = 3;
  const uint32_t kMasksPerSeparator = smoke ? 4 : 12;

  Rng rng(20260730);
  RandomRelationSpec spec;
  spec.domain_sizes.assign(kAttrs, kDomain);
  spec.num_tuples = kRows;
  Relation r = SampleRandomRelation(spec, &rng).value();

  std::vector<AttrSet> terms = SplitWorkload(kAttrs, kMasksPerSeparator,
                                             &rng);

  // Legacy: one full re-scan per term.
  double t0 = NowNs();
  double legacy_sum = 0.0;
  for (AttrSet s : terms) legacy_sum += EntropyOf(r, s);
  double legacy_ns = NowNs() - t0;

  // Memoized legacy: one re-scan per distinct term.
  t0 = NowNs();
  double memo_sum = 0.0;
  {
    std::unordered_map<AttrSet, double, AttrSetHash> memo;
    for (AttrSet s : terms) {
      auto it = memo.find(s);
      if (it == memo.end()) {
        it = memo.emplace(s, EntropyOf(r, s)).first;
      }
      memo_sum += it->second;
    }
  }
  double memo_ns = NowNs() - t0;

  // Engine: shared partitions + entropy cache, batch evaluation.
  t0 = NowNs();
  double engine_sum = 0.0;
  EntropyEngine engine(&r);
  {
    std::vector<double> hs = engine.BatchEntropy(terms);
    for (double h : hs) engine_sum += h;
  }
  double engine_ns = NowNs() - t0;

  // Equivalence guard: the three contenders must agree to fp accumulation.
  if (std::abs(legacy_sum - engine_sum) > 1e-6 * terms.size()) {
    std::fprintf(stderr, "MISMATCH legacy=%.12f engine=%.12f\n", legacy_sum,
                 engine_sum);
    return 1;
  }

  EngineStats stats = engine.Stats();
  const double n_terms = static_cast<double>(terms.size());
  std::printf(
      "{\"bench\":\"perf_entropy_engine\",\"smoke\":%s,"
      "\"rows\":%llu,\"attrs\":%u,"
      "\"terms\":%zu,\"unique_terms\":%zu,"
      "\"legacy_ns_per_op\":%.1f,\"memoized_legacy_ns_per_op\":%.1f,"
      "\"engine_ns_per_op\":%.1f,"
      "\"speedup_vs_legacy\":%.2f,\"speedup_vs_memoized\":%.2f,"
      "\"cache_hit_rate\":%.4f,\"base_reuses\":%llu,\"refinements\":%llu}\n",
      smoke ? "true" : "false",
      static_cast<unsigned long long>(r.NumRows()), kAttrs, terms.size(),
      engine.CacheSize(), legacy_ns / n_terms, memo_ns / n_terms,
      engine_ns / n_terms, legacy_ns / engine_ns, memo_ns / engine_ns,
      stats.HitRate(),
      static_cast<unsigned long long>(stats.base_reuses),
      static_cast<unsigned long long>(stats.refinements));
  return 0;
}
