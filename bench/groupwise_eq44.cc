// Experiment EQ44 — the per-group decomposition used in the proof of
// Theorem 5.1 (Eq. 44 and Lemma C.1):
//
//   ln(1 + rho(R, phi)) <= ln d_C - H(C) + sum_c P(c) ln(1 + rhobar(c)),
//
// a deterministic consequence of the log sum inequality, and the
// Lemma C.1 group-size condition min_c N(c) >= 128 d_A ln(128 d_A/delta)
// with its Serfling-based failure probability.
#include <cmath>
#include <cstdio>

#include "core/groupwise.h"
#include "io/table_printer.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "stats/hypergeometric.h"
#include "util/string_util.h"

int main() {
  using namespace ajd;
  Rng rng(616);
  std::printf("== EQ44: groupwise decomposition + Lemma C.1 ==\n\n");

  std::printf("Eq. (44) slack across densities (dA=dB=16, dC=8):\n");
  TablePrinter t1({"N", "ln(1+rho)", "Eq44 rhs", "slack", "ln dC - H(C)",
                   "min group", "holds"});
  for (uint64_t n : {128ull, 512ull, 1024ull, 1536ull}) {
    RandomRelationSpec spec;
    spec.domain_sizes = {16, 16, 8};
    spec.num_tuples = n;
    spec.attr_names = {"A", "B", "C"};
    Relation r = SampleRandomRelation(spec, &rng).value();
    GroupwiseMvdReport report =
        AnalyzeMvdGroupwise(r, AttrSet{0}, AttrSet{1}, AttrSet{2}).value();
    t1.AddRow({std::to_string(n), FormatDouble(report.log1p_rho, 5),
               FormatDouble(report.eq44_rhs, 5),
               FormatDouble(report.eq44_rhs - report.log1p_rho, 5),
               FormatDouble(std::log(static_cast<double>(report.d_c)) -
                                report.h_c,
                            5),
               std::to_string(report.min_group),
               report.log1p_rho <= report.eq44_rhs + 1e-9 ? "yes" : "NO"});
  }
  std::printf("%s\n", t1.Render().c_str());

  std::printf("Lemma C.1: P[min group < E/2] vs the Serfling union bound\n"
              "(groups are hypergeometric; dC groups of mean N/dC)\n");
  TablePrinter t2({"N", "dC", "E[N(c)]", "empirical P[min < E/2]",
                   "Serfling union bound"});
  const uint64_t d_a = 16, d_b = 16;
  for (uint64_t d_c : {4ull, 8ull}) {
    for (uint64_t n : {256ull, 1024ull}) {
      const double expect = static_cast<double>(n) / d_c;
      const uint32_t trials = 300;
      uint32_t bad = 0;
      for (uint32_t t = 0; t < trials; ++t) {
        RandomRelationSpec spec;
        spec.domain_sizes = {d_a, d_b, d_c};
        spec.num_tuples = n;
        Relation r = SampleRandomRelation(spec, &rng).value();
        GroupwiseMvdReport report =
            AnalyzeMvdGroupwise(r, AttrSet{0}, AttrSet{1}, AttrSet{2})
                .value();
        if (static_cast<double>(report.min_group) < expect / 2.0) ++bad;
      }
      // Union bound over dC groups, each Serfling with eps = N/(2 dC).
      double per_group =
          SerflingTailBound(d_a * d_b * d_c, n,
                            static_cast<double>(n) / (2.0 * d_c));
      double bound = std::min(1.0, static_cast<double>(d_c) * per_group);
      t2.AddRow({std::to_string(n), std::to_string(d_c),
                 FormatDouble(expect, 4),
                 FormatDouble(static_cast<double>(bad) / trials, 4),
                 FormatDouble(bound, 4)});
    }
  }
  std::printf("%s\n", t2.Render().c_str());
  std::printf("Shape: Eq. (44) holds in every row (it is an identity-level\n"
              "inequality); the empirical small-group probability sits\n"
              "below the Serfling union bound.\n");
  return 0;
}
