// Experiment FIG1 — reproduces Figure 1 of the paper:
//
//   "Mutual information scattering vs log(1 + rho) for d_C = 1 and
//    d_A = d_B = d. We fixed the percentage of spurious tuples rho(R,S),
//    generated N = d_A d_B / (1 + rho) tuples from the random relation
//    model (Definition 5.2), and plotted the resulting mutual information.
//    As the database grows, the mutual information approaches log(1+rho)."
//
// This binary prints, for each d, the sampled I(A_S;B_S) values (the
// scatter), their mean, and the target ln(1 + rho_bar). The paper's claim
// is the SHAPE: the scatter hugs the target from below and tightens as d
// grows.
#include <cstdio>
#include <fstream>

#include "core/experiment.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ajd;
  Fig1Config config;
  config.rho_bar = 0.10;  // paper plots values around 0.094-0.0955 nats
  config.d_min = 100;
  config.d_max = 1000;
  config.d_step = 100;
  config.trials = 5;
  config.seed = 42;

  std::printf("== FIG1: MI scattering vs ln(1+rho), dC=1, dA=dB=d ==\n");
  std::printf("rho_bar = %.4f, trials per d = %u, seed = %llu\n\n",
              config.rho_bar, config.trials,
              static_cast<unsigned long long>(config.seed));

  Result<std::vector<Fig1Row>> rows = RunFig1(config);
  if (!rows.ok()) {
    std::printf("error: %s\n", rows.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"d", "N", "target ln(1+rho)", "MI mean", "MI min",
                      "MI max", "gap to target", "spread"});
  for (const Fig1Row& row : rows.value()) {
    table.AddRow({std::to_string(row.d), std::to_string(row.n),
                  FormatDouble(row.target, 6),
                  FormatDouble(row.mi.mean, 6),
                  FormatDouble(row.mi.min, 6),
                  FormatDouble(row.mi.max, 6),
                  FormatDouble(row.target - row.mi.mean, 4),
                  FormatDouble(row.mi.max - row.mi.min, 4)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("scatter (one line per d, nats):\n");
  for (const Fig1Row& row : rows.value()) {
    std::printf("  d=%4llu:", static_cast<unsigned long long>(row.d));
    for (double mi : row.mi_samples) std::printf(" %.6f", mi);
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: MI < target for every sample; gap and spread\n"
      "shrink monotonically (up to noise) as d grows.\n");

  // Optional: dump the raw scatter as CSV for external plotting.
  if (argc > 1) {
    std::ofstream csv(argv[1]);
    csv << "d,n,trial,mi_nats,target_nats\n";
    for (const Fig1Row& row : rows.value()) {
      for (size_t i = 0; i < row.mi_samples.size(); ++i) {
        csv << row.d << ',' << row.n << ',' << i << ','
            << FormatDouble(row.mi_samples[i], 9) << ','
            << FormatDouble(row.target, 9) << '\n';
      }
    }
    std::printf("wrote scatter CSV to %s\n", argv[1]);
  }
  return 0;
}
