// Experiment UB-MVD — Theorem 5.1's shape: for a random relation over
// [dA] x [dB] x [dC] with N tuples, the deviation
//   ln(1 + rho(R, phi)) - I(A;B|C)
// is nonnegative (Lemma 4.1) and, with high probability, at most
// eps*(phi, N, delta) = 60 sqrt(dA d ln^3(6 N dC/delta)/N) — which shrinks
// like Otilde(sqrt(dA d / N)). We sweep N (at fixed domains) and d (at
// proportional N) and report empirical deviation quantiles against eps*.
#include <cstdio>

#include "core/experiment.h"
#include "io/table_printer.h"
#include "util/string_util.h"

int main() {
  using namespace ajd;
  std::printf("== UB-MVD: Thm 5.1 deviation vs eps* ==\n\n");

  std::printf("Sweep 1: fixed domains dA=dB=16, dC=4; growing N\n");
  TablePrinter t1({"N", "dev q50", "dev q90", "dev max", "eps*",
                   "qualifies(37)", "within eps*"});
  for (uint64_t n : {64ull, 256ull, 768ull, 1016ull}) {
    MvdDeviationConfig config;
    config.d_a = 16;
    config.d_b = 16;
    config.d_c = 4;
    config.n = n;
    config.trials = 40;
    config.seed = 1000 + n;
    MvdDeviationResult r = RunMvdDeviation(config).value();
    t1.AddRow({std::to_string(n), FormatDouble(r.dev.q50, 5),
               FormatDouble(r.dev.q90, 5), FormatDouble(r.dev.max, 5),
               FormatDouble(r.eps_star, 4),
               r.thm51_applies ? "yes" : "no",
               FormatDouble(r.frac_within, 3)});
  }
  std::printf("%s\n", t1.Render().c_str());

  std::printf("Sweep 2: dA=dB=dC=d, N = d^3/2 (the paper's concrete\n"
              "example: deviation ~ O(sqrt(ln^3 d / d)))\n");
  TablePrinter t2({"d", "N", "dev q50", "dev q90", "dev max", "eps*",
                   "within eps*"});
  for (uint64_t d : {8ull, 12ull, 16ull, 20ull, 24ull}) {
    MvdDeviationConfig config;
    config.d_a = d;
    config.d_b = d;
    config.d_c = d;
    config.n = d * d * d / 2;
    config.trials = 25;
    config.seed = 2000 + d;
    MvdDeviationResult r = RunMvdDeviation(config).value();
    t2.AddRow({std::to_string(d), std::to_string(config.n),
               FormatDouble(r.dev.q50, 5), FormatDouble(r.dev.q90, 5),
               FormatDouble(r.dev.max, 5), FormatDouble(r.eps_star, 4),
               FormatDouble(r.frac_within, 3)});
  }
  std::printf("%s\n", t2.Render().c_str());
  std::printf(
      "Paper shape: deviations are >= 0, SHRINK as N (resp. d) grows, and\n"
      "always sit far below eps* (the constants 60/256/384 are worst-case;\n"
      "'within eps*' should read 1.000 everywhere).\n");
  return 0;
}
