#include "engine/analysis_session.h"

#include <utility>

#include "util/check.h"

namespace ajd {

AnalysisSession::AnalysisSession(EngineOptions options)
    : options_(std::move(options)) {
  // Resolve the pool once at session scope: engines created later all
  // share it, and TotalStats/worker_pool() observers need a stable handle.
  if (options_.worker_pool == nullptr) {
    options_.worker_pool = WorkerPool::Shared();
  }
}

EntropyEngine& AnalysisSession::EngineFor(const Relation& r) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(&r);
  if (it == engines_.end()) {
    it = engines_
             .emplace(&r, std::make_unique<EntropyEngine>(&r, options_))
             .first;
  } else {
    // Relations are keyed by address: if a relation died and another now
    // occupies its address, the cached engine would silently serve the old
    // relation's entropies. Abort instead.
    AJD_CHECK_MSG(
        it->second->fingerprint() == EntropyEngine::RelationFingerprint(r),
        "relation at %p changed since its engine was built; keep relations "
        "alive and unmodified for the session's lifetime",
        static_cast<const void*>(&r));
  }
  return *it->second;
}

bool AnalysisSession::Release(const Relation& r) {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.erase(&r) > 0;
}

size_t AnalysisSession::NumRelations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size();
}

EngineStats AnalysisSession::TotalStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats total;
  for (const auto& entry : engines_) {
    EngineStats s = entry.second->Stats();
    total.queries += s.queries;
    total.hits += s.hits;
    total.base_reuses += s.base_reuses;
    total.partition_builds += s.partition_builds;
    total.refinements += s.refinements;
    total.fused_refinements += s.fused_refinements;
    total.evictions += s.evictions;
  }
  return total;
}

}  // namespace ajd
