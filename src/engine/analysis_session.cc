#include "engine/analysis_session.h"

#include <utility>

#include "util/check.h"

namespace ajd {

AnalysisSession::AnalysisSession(SessionOptions options)
    : engine_options_(std::move(options.engine)) {
  // Resolve the pool once at session scope: engines created later all
  // share it, and TotalStats/worker_pool() observers need a stable handle.
  if (engine_options_.worker_pool == nullptr) {
    engine_options_.worker_pool = WorkerPool::Shared();
  }
  // Resolve the shared cache budget the same way. cache_budget_bytes == 0
  // means "no arbiter" (private per-engine budgets, the legacy behavior);
  // unset promotes the per-engine budget to one session-global budget. An
  // arbiter injected through the engine options is respected as-is
  // (several sessions can then share ONE budget).
  if (engine_options_.cache_arbiter == nullptr &&
      options.cache_budget_bytes.value_or(1) != 0) {
    ArbiterOptions arb;
    arb.budget_bytes = options.cache_budget_bytes.value_or(
        engine_options_.cache_budget_bytes);
    arb.engine_floor_bytes = options.cache_floor_bytes;
    engine_options_.cache_arbiter = std::make_shared<CacheArbiter>(arb);
  }
}

AnalysisSession::AnalysisSession(EngineOptions options)
    : AnalysisSession([&options] {
        SessionOptions session_options;
        session_options.engine = std::move(options);
        return session_options;
      }()) {}

EntropyEngine& AnalysisSession::EngineFor(const Relation& r) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(&r);
  if (it != engines_.end() && it->second->relation_uid() != r.uid()) {
    // Relations are keyed by address: a different relation (by uid) now
    // occupies this one's address, so the cached engine describes a dead
    // relation. Rebuild transparently — the replacement for the old
    // fingerprint-guard abort. (Same uid with a newer epoch is NOT this
    // case: that is legitimate growth, and the engine catches up lazily.)
    engines_.erase(it);
    it = engines_.end();
  }
  if (it == engines_.end()) {
    it = engines_
             .emplace(&r,
                      std::make_unique<EntropyEngine>(&r, engine_options_))
             .first;
  }
  return *it->second;
}

bool AnalysisSession::Release(const Relation& r) {
  // ~EntropyEngine discharges the engine's footprint from the shared
  // arbiter (O(its entries)); a relation without an engine — never served,
  // or already released — is a no-op.
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.erase(&r) > 0;
}

Status AnalysisSession::PersistAll() {
  // Snapshot the engine pointers under mu_, persist outside it: PersistCache
  // runs a catch-up plus blob writes per engine, and holding the session
  // mutex across that would block EngineFor on every other thread. The
  // unique_ptrs stay valid because only Release/~AnalysisSession drop them
  // and callers of PersistAll own the shutdown sequence.
  std::vector<EntropyEngine*> engines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    engines.reserve(engines_.size());
    for (const auto& entry : engines_) engines.push_back(entry.second.get());
  }
  Status first = Status::OK();
  for (EntropyEngine* e : engines) {
    if (options().persist_store == nullptr) break;
    Status s = e->PersistCache();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

size_t AnalysisSession::NumRelations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size();
}

size_t AnalysisSession::CacheBytes() const {
  return engine_options_.cache_arbiter == nullptr
             ? 0
             : engine_options_.cache_arbiter->AccountedBytes();
}

EngineStats AnalysisSession::TotalStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats total;
  for (const auto& entry : engines_) {
    EngineStats s = entry.second->Stats();
    total.queries += s.queries;
    total.hits += s.hits;
    total.base_reuses += s.base_reuses;
    total.partition_builds += s.partition_builds;
    total.refinements += s.refinements;
    total.fused_refinements += s.fused_refinements;
    total.evictions += s.evictions;
    total.epoch_catchups += s.epoch_catchups;
    total.partitions_extended += s.partitions_extended;
    total.partitions_replayed += s.partitions_replayed;
    total.catchup_dropped += s.catchup_dropped;
    total.catchup_aborts += s.catchup_aborts;
    total.persist_hits += s.persist_hits;
    total.persist_reloads += s.persist_reloads;
    total.persist_extended += s.persist_extended;
    total.persist_spills += s.persist_spills;
    total.persist_fallbacks += s.persist_fallbacks;
  }
  return total;
}

}  // namespace ajd
