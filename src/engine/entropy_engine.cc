#include "engine/entropy_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "engine/cache_arbiter.h"
#include "engine/refine_kernels.h"
#include "engine/worker_pool.h"
#include "persist/persistent_store.h"
#include "relation/fingerprint.h"
#include "relation/row_hash.h"
#include "util/failpoint.h"

namespace ajd {

namespace {

// Fused refinement applies at most this many missing columns in one
// composite pass. Deeper tails are rare (the cost model usually finds a
// close cached base) and would dilute the intermediate-partition reuse the
// cache lives on.
constexpr size_t kMaxFuseColumns = 4;

}  // namespace

EntropyEngine::EntropyEngine(const Relation* r, EngineOptions options)
    : store_(r),
      options_(options),
      relation_uid_(r->uid()),
      synced_epoch_(r->epoch()),
      pool_(options.worker_pool != nullptr ? options.worker_pool
                                           : WorkerPool::Shared()),
      arbiter_(options.cache_arbiter),
      persist_(options.persist_store),
      keys_by_count_(kMaxAttrs + 1) {
  stamp_ = std::make_shared<const EpochPin>(EpochPin{
      store_.SyncedRows(), synced_epoch_.load(std::memory_order_relaxed)});
  if (arbiter_ != nullptr) {
    // No other thread can reach this engine yet, so registering before the
    // body finishes cannot race a Charge.
    arbiter_->RegisterEngine(
        this, [this](AttrSet attrs) { DropPartitionForArbiter(attrs); });
  }
  if (persist_ != nullptr) {
    fp_ = std::make_unique<FingerprintTracker>(r);
    try {
      WarmStartFromPersist();
    } catch (const std::exception&) {
      // Warm restart is an optimization, never a requirement: on any
      // failure (allocation, I/O) the engine simply starts cold.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.persist_fallbacks;
    }
  }
}

EntropyEngine::~EntropyEngine() {
  if (arbiter_ != nullptr) {
    // Discharges this engine's whole footprint in O(its entries) — the
    // fast path behind AnalysisSession::Release on short-lived relations.
    arbiter_->ReleaseEngine(this);
  }
}

void EntropyEngine::CatchUp() {
  if (relation().epoch() == synced_epoch_.load(std::memory_order_acquire)) {
    return;
  }
  // One caller owns the catch-up; everyone else returns immediately and
  // keeps serving the previous stamp (their pinned reads stay valid — the
  // point of the epoch-pinned design). try_lock, never lock: a reader must
  // not block behind a catch-up it does not need.
  std::unique_lock<std::mutex> own(catchup_mu_, std::try_to_lock);
  if (!own.owns_lock()) return;
  const uint64_t target_epoch = relation().epoch();
  if (target_epoch == synced_epoch_.load(std::memory_order_acquire)) {
    return;  // the previous owner finished this epoch already
  }
  // Epoch FIRST (acquire), THEN the row count: the count read here covers
  // at least every append the epoch load observed. A batch landing between
  // the two loads merely over-syncs; its own epoch bump re-triggers a
  // cheap catch-up that finds everything already extended.
  try {
    RunCatchUp(target_epoch, relation().NumRows());
  } catch (...) {
    // A failure that escapes RunCatchUp (e.g. between claim and publish)
    // leaves the engine consistent-but-colder: claimed entries are out of
    // the cache AND off the arbiter's books (discharged at claim), the
    // stamp and synced epoch are unchanged, so readers keep serving the
    // previous generation and the next query retries the catch-up. Never
    // let it unwind into callers — catch-up is a cache maintenance step,
    // not part of any query's contract.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.catchup_aborts;
  }
}

void EntropyEngine::RunCatchUp(uint64_t target_epoch, uint64_t target_rows) {
  // Runs with catchup_mu_ held and mu_ NOT held. Readers of the old stamp
  // proceed concurrently throughout; the new generation becomes visible
  // atomically at the publish step.
  const uint64_t old_rows =
      std::atomic_load_explicit(&stamp_, std::memory_order_relaxed)->rows;
  // The superseded generation's fingerprint, captured while the tracker
  // still sits at old_rows (one cached read); the publish-down step below
  // erases the disk entries it supersedes under this key.
  const bool persist_down = persist_ != nullptr && options_.persist_on_catchup;
  const uint64_t fp_old = persist_down ? FingerprintFor(old_rows) : 0;

  // Columns and sketches first: extension publishes fresh RCU views over
  // the grown buffers, never touching bytes an old-pin view can see.
  store_.CatchUpTo(target_rows);

  // --- CLAIM (under mu_) --------------------------------------------------
  // Generational revalidation: extension costs O(mass) per partition, so
  // paying it for entries nothing touched during the entire previous epoch
  // — one-shot chain intermediates from a miner run, say — would turn
  // catch-up into the O(cache) rebuild it exists to avoid. Entries used
  // since the last catch-up stay, AND so do their chain ancestors: a hot
  // entry's next extension is a cheap delta only while its recipe's
  // prefixes survive (a base lookup touches just the LONGEST prefix, so
  // without the closure the shorter ones would go idle, get dropped, and
  // force a full replay of every hot chain each epoch). Everything else is
  // dropped (an always-safe cache decision) and its bytes return to the
  // budget. Survivors are CLAIMED — removed from the visible cache — so the
  // long extension below runs without mu_ while concurrent readers keep
  // resolving (or recomputing) against a consistent map.
  struct Claimed {
    AttrSet set;
    CachedPartition cp;
  };
  std::vector<Claimed> claimed;
  std::vector<AttrSet> discharged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.epoch_catchups;
    std::unordered_map<AttrSet, bool, AttrSetHash> keep;
    keep.reserve(partitions_.size());
    for (const auto& entry : partitions_) {
      if (entry.second.last_used <= last_catchup_tick_) continue;
      if (entry.second.rows != old_rows) continue;
      keep.emplace(entry.first, true);
      AttrSet prefix;
      const std::vector<uint32_t>& chain = entry.second.chain;
      for (size_t j = 0; j + 1 < chain.size(); ++j) {
        prefix.Add(chain[j]);
        auto pit = partitions_.find(prefix);
        if (pit != partitions_.end() && pit->second.rows == old_rows &&
            pit->second.chain.size() == j + 1 &&
            std::equal(pit->second.chain.begin(), pit->second.chain.end(),
                       chain.begin())) {
          keep.emplace(prefix, true);
        }
      }
    }
    std::vector<AttrSet> idle;
    std::vector<AttrSet> keep_keys;
    for (const auto& entry : partitions_) {
      if (keep.find(entry.first) == keep.end()) {
        idle.push_back(entry.first);
      } else {
        keep_keys.push_back(entry.first);
      }
    }
    for (AttrSet key : idle) {
      // Idle entries still carry the current generation's row tag; demote
      // them to the disk tier rather than discarding the work outright.
      EvictPartitionLocked(partitions_.find(key), /*allow_spill=*/true);
      discharged.push_back(key);
    }
    claimed.reserve(keep_keys.size());
    for (AttrSet key : keep_keys) {
      auto it = partitions_.find(key);
      Claimed c;
      c.set = key;
      // The partition pointer is COPIED (not moved) so RemovePartitionLocked
      // below can still read its byte size; the bulky recipe vectors move.
      c.cp.partition = it->second.partition;
      c.cp.last_used = it->second.last_used;
      c.cp.epoch = it->second.epoch;
      c.cp.rows = it->second.rows;
      c.cp.last_col_card = it->second.last_col_card;
      c.cp.chain = std::move(it->second.chain);
      c.cp.delta = std::move(it->second.delta);
      RemovePartitionLocked(it);
      discharged.push_back(key);
      claimed.push_back(std::move(c));
    }
  }
  if (arbiter_ != nullptr && !discharged.empty()) {
    // Settle outside mu_ (arbiter -> engine is the only permitted lock
    // order). Claimed entries leave the arbiter's books for the duration of
    // the extension and are re-charged at publish — Discharge/Charge rather
    // than Resize, because the arbiter must not pick eviction victims that
    // are not in the visible cache.
    arbiter_->Discharge(this, discharged);
  }

  // --- EXTEND (no locks) ---------------------------------------------------
  // Ascending set size: a chain's proper prefixes are strictly smaller
  // sets, so every ancestor is extended before its descendants need it
  // (tie-break by set value for determinism). Old forms are kept aside for
  // the parent-block correspondence the seeding path walks — but ONLY for
  // entries some child will actually use as a direct parent: pinning every
  // old partition until the end of catch-up would double peak memory and,
  // worse, starve the allocator of the just-freed buffers the next
  // extension would otherwise reuse (measurably slower on large caches).
  std::sort(claimed.begin(), claimed.end(),
            [](const Claimed& a, const Claimed& b) {
              const uint32_t ca = a.set.Count();
              const uint32_t cb = b.set.Count();
              if (ca != cb) return ca < cb;
              return a.set < b.set;
            });
  std::unordered_map<AttrSet, Claimed*, AttrSetHash> by_set;
  by_set.reserve(claimed.size());
  for (Claimed& c : claimed) by_set.emplace(c.set, &c);
  std::unordered_map<AttrSet, std::shared_ptr<const Partition>, AttrSetHash>
      old_parts;
  for (const Claimed& c : claimed) {
    const std::vector<uint32_t>& chain = c.cp.chain;
    if (chain.size() < 2) continue;
    if (!c.cp.delta.run_lengths.empty() &&
        c.cp.delta.run_lengths.size() ==
            c.cp.delta.parent_first_rows.size()) {
      // Scan-free child: its recorded correspondence replaces the old
      // parent entirely, so the parent stays unpinned (and therefore
      // eligible for in-place extension itself).
      continue;
    }
    AttrSet parent;
    for (size_t j = 0; j + 1 < chain.size(); ++j) parent.Add(chain[j]);
    auto pit = by_set.find(parent);
    if (pit != by_set.end() &&
        pit->second->cp.chain.size() + 1 == chain.size() &&
        std::equal(pit->second->cp.chain.begin(),
                   pit->second->cp.chain.end(), chain.begin())) {
      old_parts.emplace(parent, pit->second->cp.partition);
    }
  }
  std::atomic<uint64_t> extended_count{0};
  std::atomic<uint64_t> replayed_count{0};
  std::atomic<uint64_t> dropped_count{0};
  auto extend_entry = [&](Claimed& c) {
    CachedPartition& cp = c.cp;
    const std::vector<uint32_t>& chain = cp.chain;
    AJD_CHECK(!chain.empty());

    // Deepest claimed ancestor whose recorded chain is a strict prefix of
    // this one (set equality alone is not enough: the same AttrSet can
    // have been rebuilt through a different column order after an
    // eviction, and the block correspondence is chain-specific).
    std::shared_ptr<const Partition> parent_new;
    std::shared_ptr<const Partition> parent_old;
    size_t ancestor_len = 0;
    AttrSet prefix_sets[kMaxAttrs];
    AttrSet acc;
    for (size_t j = 0; j + 1 < chain.size(); ++j) {
      acc.Add(chain[j]);
      prefix_sets[j] = acc;  // prefix of length j+1
    }
    for (size_t len = chain.size() - 1; len >= 1; --len) {
      auto pit = by_set.find(prefix_sets[len - 1]);
      if (pit == by_set.end()) continue;
      // An ancestor whose own extension FAILED (degradable catch-up drops
      // it: partition nulled, rows never advanced) must not seed this
      // entry's delta/replay — fall back to a cold replay instead.
      if (pit->second->cp.partition == nullptr ||
          pit->second->cp.rows != target_rows) {
        continue;
      }
      if (pit->second->cp.chain.size() != len ||
          !std::equal(pit->second->cp.chain.begin(),
                      pit->second->cp.chain.end(), chain.begin())) {
        continue;
      }
      parent_new = pit->second->cp.partition;  // extended already (smaller)
      if (len + 1 == chain.size()) {
        // Only a DIRECT parent's old form matters (the delta path walks
        // its block correspondence); deeper ancestors feed the replay
        // path, which reads just the extended form.
        auto oit = old_parts.find(prefix_sets[len - 1]);
        if (oit != old_parts.end()) parent_old = oit->second;
      }
      ancestor_len = len;
      break;
    }

    std::shared_ptr<const Partition> np;
    const Column last_col = store_.ColumnAt(chain.back(), target_rows);
    // Scan-free correspondence from the previous extension (or the build
    // itself — the refinement kernels emit it at build time), if intact.
    const bool meta_ok =
        !cp.delta.run_lengths.empty() &&
        cp.delta.run_lengths.size() == cp.delta.parent_first_rows.size();
    const bool kernel_stable =
        parent_new != nullptr &&
        ChooseRefineKernel(last_col.cardinality,
                           parent_new->NumStrippedRows()) ==
            ChooseRefineKernel(cp.last_col_card,
                               parent_new->NumStrippedRows());
    if (ancestor_len + 1 == chain.size() && kernel_stable &&
        (meta_ok || parent_old != nullptr)) {
      // Direct parent claimed with the same chain and the kernel choice
      // did not move: the O(delta + touched blocks) path — scan-free
      // when the build's or previous extension's metadata survived (steady
      // state), seeding that metadata from the retained old parent
      // otherwise. A sole-owner entry (nothing else aliases it — no
      // concurrent reader holds a reference and it is nobody's retained
      // old parent) extends IN PLACE: the bit-identical prefix before the
      // first affected block is never copied, which is what makes catch-up
      // track the changed region on locality-friendly streams instead of
      // the partition's whole mass. Reader-held entries take the copying
      // path, leaving the old object untouched for its pinned readers.
      const PartitionDelta* meta = meta_ok ? &cp.delta : nullptr;
      const Partition* old_parent_ptr = meta_ok ? nullptr : parent_old.get();
      PartitionDelta next;
      if (cp.partition.use_count() == 1) {
        std::const_pointer_cast<Partition>(cp.partition)
            ->ExtendInPlaceBy(old_parent_ptr, *parent_new, last_col,
                              old_rows, meta, &next);
        np = cp.partition;
      } else {
        np = std::make_shared<Partition>(
            cp.partition->ExtendedBy(old_parent_ptr, *parent_new, last_col,
                                     old_rows, meta, &next));
      }
      cp.delta = std::move(next);
      ++extended_count;
    } else if (chain.size() == 1) {
      if (cp.partition.use_count() == 1) {
        // Sole-owner root: blocks the appended rows touched grow through
        // their chunk slack in place — no full ascending-code rebuild of
        // the untouched blocks. Reader-held (or old-parent-retained) roots
        // take the copying merge, leaving the old object untouched.
        std::const_pointer_cast<Partition>(cp.partition)
            ->ExtendOfColumnInPlace(last_col, old_rows);
        np = cp.partition;
      } else {
        np = std::make_shared<Partition>(
            cp.partition->ExtendedOfColumn(last_col, old_rows));
      }
      ++extended_count;
    } else {
      // Fused gap, evicted ancestor, divergent chain, or a column whose
      // cardinality crossed its kernel-selection threshold: replay the
      // remaining chain cold from the deepest extended ancestor (bit-
      // identical to the delta path by kernel reproducibility). The LAST
      // refinement step emits the parent->child correspondence at build
      // time, so even a replayed entry's NEXT catch-up is scan-free.
      Partition cur;
      const Partition* base = parent_new.get();
      size_t j = ancestor_len;
      if (base == nullptr) {
        cur = Partition::OfColumn(store_.ColumnAt(chain[0], target_rows));
        base = &cur;
        j = 1;
      }
      PartitionDelta next;
      for (; j < chain.size(); ++j) {
        const Column cj = store_.ColumnAt(chain[j], target_rows);
        cur = base->RefinedBy(cj, RefineKernel::kAuto,
                              j + 1 == chain.size() ? &next : nullptr);
        base = &cur;
      }
      np = std::make_shared<Partition>(std::move(cur));
      cp.delta = std::move(next);
      ++replayed_count;
    }
    cp.partition = std::move(np);
    cp.epoch = target_epoch;
    cp.rows = target_rows;
    cp.last_col_card = last_col.cardinality;
  };
  auto run_one = [&](Claimed& c) {
    try {
      AJD_INJECT_BAD_ALLOC(failpoints::kEngineCatchupExtend);
      extend_entry(c);
    } catch (const std::exception&) {
      // Degradable catch-up: a failed extension (allocation failure,
      // injected fault) drops just this entry. Its bytes were already
      // settled with the arbiter at claim time and publish skips it below,
      // so the books stay consistent and later reads simply recompute it
      // cold — bit-identical by kernel reproducibility. Descendants see
      // the nulled partition through the ancestor guard above and replay
      // cold instead of consuming a failed parent.
      c.cp.partition = nullptr;
      ++dropped_count;
    }
  };
  // Fan the extensions out LEVEL BY LEVEL (ascending set size, the sort
  // above): every ancestor an entry can look up lives in a strictly
  // earlier level (proper prefixes are strictly smaller sets), so the pool
  // barrier between levels guarantees each task reads only fully-extended
  // parents, and entries within a level never read each other. by_set and
  // old_parts are read-only during the fan-out; each task writes only its
  // own entry. Extension is bit-identical to the serial loop by kernel
  // reproducibility (and per-entry work is order-independent), so the
  // published cache — and every value served from it — is unchanged at any
  // thread count. Publish order below stays serial and sorted.
  const uint32_t catchup_threads =
      options_.refine_threads != 0 ? options_.refine_threads
      : options_.num_threads != 0
          ? options_.num_threads
          : std::max(1u, std::thread::hardware_concurrency());
  size_t lvl_begin = 0;
  while (lvl_begin < claimed.size()) {
    const uint32_t level = claimed[lvl_begin].set.Count();
    size_t lvl_end = lvl_begin + 1;
    while (lvl_end < claimed.size() &&
           claimed[lvl_end].set.Count() == level) {
      ++lvl_end;
    }
    const size_t lvl_n = lvl_end - lvl_begin;
    const uint32_t workers =
        static_cast<uint32_t>(std::min<size_t>(catchup_threads, lvl_n));
    // Work floor, mirroring RefineThreadsFor's mass gating: when the thread
    // count is INHERITED (refine_threads == 0), a level of tiny extensions
    // runs serially — the pool dispatch costs more than the extensions
    // themselves. The old stripped mass is an upper proxy for per-entry
    // extension work (delta paths touch less, replays touch chain × mass).
    // An explicit refine_threads bypasses the floor: the caller asked for
    // that fan-out, and the threaded catch-up soak relies on this to
    // exercise the fan-out under TSan at toy sizes.
    bool below_floor = false;
    if (options_.refine_threads == 0) {
      uint64_t lvl_mass = 0;
      for (size_t i = lvl_begin;
           i < lvl_end && lvl_mass < kShardedRefineMinMass; ++i) {
        if (claimed[i].cp.partition != nullptr) {
          lvl_mass += claimed[i].cp.partition->NumStrippedRows();
        }
      }
      below_floor = lvl_mass < kShardedRefineMinMass;
    }
    if (workers <= 1 || pool_ == nullptr || below_floor) {
      for (size_t i = lvl_begin; i < lvl_end; ++i) run_one(claimed[i]);
    } else {
      pool_->Run(lvl_n, workers,
                 [&](size_t i) { run_one(claimed[lvl_begin + i]); });
    }
    lvl_begin = lvl_end;
  }
  old_parts.clear();

  AJD_INJECT_FAULT(failpoints::kEngineCatchupPublish);

  // --- PUBLISH (under mu_) --------------------------------------------------
  std::vector<AttrSet> swept;
  std::vector<std::pair<AttrSet, size_t>> charges;
  charges.reserve(claimed.size());
  /// Extended entries to publish DOWN to the disk tier after the in-memory
  /// publish (captured under mu_, written outside it; the partition
  /// pointers are immutable shared state, so the writes race nothing).
  struct DownEntry {
    AttrSet set;
    std::shared_ptr<const Partition> partition;
    std::vector<uint32_t> chain;
    uint32_t last_col_card = 0;
  };
  std::vector<DownEntry> down;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Sweep whatever old-generation state concurrent readers seeded while
    // the extension ran (their inserts carry the old row tag). Entropy
    // values recompute on demand from the extended partitions via the same
    // XLogX-table accumulation the cold kernels use, so post-catch-up reads
    // match the cold chain replay bit-for-bit.
    std::vector<AttrSet> stale;
    for (const auto& entry : partitions_) {
      if (entry.second.rows != target_rows) stale.push_back(entry.first);
    }
    for (AttrSet key : stale) {
      // Never spill a stale-generation entry: its row tag is superseded
      // and the extended form is being published right now.
      EvictPartitionLocked(partitions_.find(key), /*allow_spill=*/false);
      swept.push_back(key);
    }
    for (auto it = entropies_.begin(); it != entropies_.end();) {
      if (it->second.rows != target_rows) {
        it = entropies_.erase(it);
      } else {
        ++it;
      }
    }
    // Reinsert the extended generation (original recency preserved). A key
    // can collide only when the relation bumped its epoch without growing
    // (target row count == old): the resident entry then covers the same
    // rows, so the claimed copy is simply dropped.
    for (Claimed& c : claimed) {
      if (c.cp.partition == nullptr) continue;  // dropped by failed extension
      if (partitions_.find(c.set) != partitions_.end()) continue;
      const size_t bytes = c.cp.partition->MemoryBytes();
      const uint64_t mass = c.cp.partition->NumStrippedRows();
      if (persist_down) {
        down.push_back(
            {c.set, c.cp.partition, c.cp.chain, c.cp.last_col_card});
      }
      partitions_.emplace(c.set, std::move(c.cp));
      partition_bytes_ += bytes;
      keys_by_count_[c.set.Count()].push_back({c.set, mass, target_rows});
      charges.emplace_back(c.set, bytes);
    }
    stats_.partitions_extended += extended_count;
    stats_.partitions_replayed += replayed_count;
    stats_.catchup_dropped += dropped_count;
    if (arbiter_ == nullptr) EvictToPrivateBudgetLocked(AttrSet());
    last_catchup_tick_ = tick_;
    // The stamp flips INSIDE mu_, atomically with the sweep: a reader that
    // pins the new generation afterwards can never observe (or seed)
    // old-generation cache state, and vice versa.
    std::atomic_store_explicit(
        &stamp_,
        std::shared_ptr<const EpochPin>(std::make_shared<const EpochPin>(
            EpochPin{target_rows, target_epoch})),
        std::memory_order_release);
    synced_epoch_.store(target_epoch, std::memory_order_release);
  }
  if (arbiter_ != nullptr) {
    if (!swept.empty()) arbiter_->Discharge(this, swept);
    if (!charges.empty()) arbiter_->Charge(this, charges);
  }

  // Publish DOWN: the disk tier follows the in-memory cache to the new
  // generation, so a restart right now warm-starts at target_rows instead
  // of the previous epoch's prefix. Each write supersedes that entry's
  // old-generation record, which is erased under the old fingerprint.
  // Best effort throughout — a full disk degrades the tier, never the
  // published generation.
  if (persist_down && !down.empty()) {
    const uint64_t fp_new = FingerprintFor(target_rows);
    uint64_t spilled = 0;
    for (const DownEntry& d : down) {
      PersistedEntryMeta meta;
      meta.fingerprint = fp_new;
      meta.attrs = d.set;
      meta.rows = target_rows;
      meta.chain = d.chain;
      meta.last_col_card = d.last_col_card;
      PartitionPayload payload;
      d.partition->FlattenStripped(&payload.rows, &payload.offsets);
      if (persist_->Put(meta, &payload).ok()) ++spilled;
      if (target_rows != old_rows) {
        (void)persist_->Erase(fp_old, d.set, old_rows);
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    stats_.persist_spills += spilled;
  }
}

bool EntropyEngine::CachedPartitionInfo(
    AttrSet attrs, std::vector<uint32_t>* chain,
    std::shared_ptr<const Partition>* partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(attrs);
  if (it == partitions_.end()) return false;
  if (chain != nullptr) *chain = it->second.chain;
  if (partition != nullptr) *partition = it->second.partition;
  return true;
}

double EntropyEngine::Entropy(AttrSet attrs) {
  CatchUp();
  return EntropyAt(attrs, Pin());
}

EpochPin EntropyEngine::Pin() const {
  return *std::atomic_load_explicit(&stamp_, std::memory_order_acquire);
}

double EntropyEngine::EntropyAt(AttrSet attrs, const EpochPin& pin) {
  AJD_CHECK(attrs.IsSubsetOf(relation().schema().AllAttrs()));
  if (attrs.Empty() || pin.rows == 0) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = entropies_.find(attrs);
    if (it != entropies_.end() && it->second.rows == pin.rows) {
      ++stats_.hits;
      return it->second.h;
    }
  }
  return ComputeEntropy(attrs, pin);
}

double EntropyEngine::ComputeEntropy(AttrSet attrs, const EpochPin& pin,
                                     bool materialize_final) {
  // The PINNED row count, not the live one: every column view, sketch, and
  // cached base consumed below is frozen at pin.rows, so the value is the
  // cold answer over exactly that prefix no matter how many appends land
  // while this computation runs.
  const uint64_t n = pin.rows;
  AJD_INJECT_BAD_ALLOC(failpoints::kEngineComputePartition);

  // Disk tier first (persist/persistent_store.h): an exact-key persisted
  // entry — same content fingerprint, same set, same row count — serves the
  // miss for the cost of a reload instead of a refinement chain. Any
  // lookup, load, or validation failure falls through to the cold path
  // below; a bad disk entry can cost time, never change an answer.
  if (persist_ != nullptr) {
    double h_disk;
    if (TryServeFromDisk(attrs, pin, materialize_final, &h_disk)) {
      return h_disk;
    }
  }

  // Best cached base under the refinement cost model: each remaining step
  // scans at most the base's stripped rows, so refining base T costs about
  // NumStrippedRows(T) * |attrs \ T|, against N * |attrs| for a build from
  // a raw column. This prefers the largest cached subset when masses are
  // comparable, but lets a sharply refined smaller subset (e.g. a cached
  // near-key whose stripped partition is tiny) win over a barely refined
  // big one. Levels are scanned descending, so on a cost tie the first
  // (highest) level wins and within a level the smaller mask does — the
  // choice is deterministic given the cache contents.
  std::shared_ptr<const Partition> base;
  AttrSet base_set;
  // The base's recorded build recipe; every partition cached below extends
  // it, so catch-up can replay (or delta-extend) the exact chain later.
  std::vector<uint32_t> cur_chain;
  // Partition-cache pressure: evictions have happened and the cache sits
  // near its budget, so intermediates cached now are unlikely to survive
  // until a reuse — the signal that lets the fused path run (below)
  // without starving future base lookups. Under an arbiter the pressure is
  // global; it is sampled BEFORE taking mu_ because the engine must never
  // wait on the arbiter while holding its own mutex (lock order is
  // arbiter -> engine, see engine/cache_arbiter.h).
  bool cache_pressure =
      arbiter_ != nullptr && arbiter_->UnderPressure();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (arbiter_ == nullptr) {
      cache_pressure = stats_.evictions > 0 &&
                       partition_bytes_ * 4 >= options_.cache_budget_bytes * 3;
    }
    double best_cost = static_cast<double>(n) *
                       std::max<uint32_t>(attrs.Count(), 1);  // from scratch
    uint32_t best_level = 0;
    for (uint32_t level = attrs.Count(); level >= 1 && best_cost > 0.0;
         --level) {
      // A zero-cost base (an all-singleton subset partition: H is already
      // ln N) cannot be beaten; stop scanning the lattice the moment one
      // appears, or misses over a cache full of collapsed partitions turn
      // the scan itself into the bottleneck.
      for (const KeyEntry& entry : keys_by_count_[level]) {
        if (entry.rows != pin.rows) continue;  // different generation
        if (!entry.set.IsSubsetOf(attrs)) continue;
        const uint32_t steps = attrs.Count() - level;
        const double cost = static_cast<double>(entry.mass) *
                            std::max<uint32_t>(steps, 1);
        const bool better =
            cost < best_cost ||
            (cost == best_cost &&
             (best_level == 0 ||
              (level == best_level && entry.set < base_set)));
        if (better) {
          best_cost = cost;
          best_level = level;
          base_set = entry.set;
          if (best_cost == 0.0) break;
        }
      }
    }
    if (best_level != 0) {
      auto it = partitions_.find(base_set);
      base = it->second.partition;
      cur_chain = it->second.chain;
      it->second.last_used = ++tick_;
      ++stats_.base_reuses;
    }
  }
  if (arbiter_ != nullptr && base != nullptr) {
    // Recency signal for the global LRU; outside mu_ per the lock order.
    arbiter_->Touch(this, base_set);
  }

  // Refine by the missing attributes in order of estimated block-splitting
  // power: the sampled distinct sketch's show-up rate at the current
  // stripped mass (NOT the global cardinality — on skewed data a wide but
  // head-heavy column splits far worse than its cardinality suggests).
  // Early on this is roughly descending cardinality (wide columns shatter
  // blocks fastest); once the mass has collapsed, every saturated column
  // splits equally well and the cheapest one — smallest counting-scratch
  // footprint — goes first. When fusion policy allows (see
  // EngineOptions::max_fuse_columns) and the remaining columns'
  // cardinality product fits the fuse budget, they are applied as ONE
  // composite pass, bit-identical to a chain applied in the same (frozen)
  // column order; an unfused chain may re-rank mid-way as the mass
  // shrinks, so the two can differ by fp accumulation noise.
  std::vector<uint32_t> missing = attrs.Minus(base_set).ToIndices();

  uint64_t builds = 0;
  uint64_t refinements = 0;
  uint64_t fused = 0;
  struct FreshEntry {
    AttrSet set;
    std::shared_ptr<const Partition> partition;
    std::vector<uint32_t> chain;
    uint32_t last_col_card = 0;
    /// Build-time parent->child correspondence (empty for roots, fused
    /// passes, and the all-singleton shortcut): makes the entry's FIRST
    /// epoch catch-up scan-free.
    PartitionDelta delta;
  };
  std::vector<FreshEntry> fresh;
  std::shared_ptr<const Partition> cur = std::move(base);
  AttrSet cur_set = base_set;
  double h = 0.0;
  bool have_h = false;
  size_t i = 0;
  while (i < missing.size()) {
    const uint64_t mass = cur == nullptr ? n : cur->NumStrippedRows();
    // Order the remaining columns: max estimated splitting power, narrowest
    // column then index as deterministic tie-breaks (the sketch is itself
    // deterministic, so serial and threaded runs order identically).
    struct ColRank {
      double power;
      uint32_t cardinality;
      uint32_t attr;
    };
    ColRank ranks[kMaxAttrs];
    const size_t tail = missing.size() - i;
    for (size_t j = 0; j < tail; ++j) {
      const uint32_t a = missing[i + j];
      const Column col = store_.ColumnAt(a, pin.rows);
      // Quantized to whole distinct values: sampling noise below one value
      // must not reorder columns on unskewed data, where every column ties
      // and the cardinality/index tie-breaks keep the old deterministic
      // order. Genuine skew shifts the estimate by many values and wins.
      const double p = std::floor(std::min(
          store_.SketchAt(a, pin.rows)
              ->EstimateDistinct(mass, col.cardinality),
          static_cast<double>(mass)));
      ranks[j] = {p, col.cardinality, a};
    }
    std::sort(ranks, ranks + tail, [](const ColRank& x, const ColRank& y) {
      if (x.power != y.power) return x.power > y.power;
      if (x.cardinality != y.cardinality) return x.cardinality < y.cardinality;
      return x.attr < y.attr;
    });
    for (size_t j = 0; j < tail; ++j) missing[i + j] = ranks[j].attr;

    // Fused tail: apply every remaining column in one composite pass when
    // policy allows and the code space fits the budget. Fusing skips
    // materializing AND caching the chain's intermediate partitions — the
    // most-refined, smallest-mass entries, i.e. precisely the best future
    // bases — so on reuse-heavy workloads (the miner's overlapping term
    // sets) it loses more downstream than the skipped passes save, and it
    // only runs when those intermediates would not survive anyway (cache
    // pressure) or the caller forced it (max_fuse_columns >= 2).
    const size_t remaining = tail;
    const uint32_t fuse_limit =
        options_.max_fuse_columns == 0
            ? (cache_pressure ? kMaxFuseColumns : 1)
            : std::min<uint32_t>(options_.max_fuse_columns, kMaxFuseColumns);
    if (cur != nullptr && remaining >= 2 && remaining <= fuse_limit) {
      // Column VALUES held locally: ColumnAt returns a by-value view, so
      // the pointer array the fused kernels take must alias storage that
      // outlives the pass.
      Column fused_cols[kMaxFuseColumns];
      const Column* cols[kMaxFuseColumns];
      for (size_t j = 0; j < remaining; ++j) {
        fused_cols[j] = store_.ColumnAt(missing[i + j], pin.rows);
        cols[j] = &fused_cols[j];
      }
      const uint64_t composite_card =
          FusedCardinality(cols, remaining, FuseBudget(mass));
      if (composite_card > 0) {
        refinements += remaining;
        ++fused;
        // Intra-op sharding: bit-identical to the serial kernels at any
        // thread count (engine/refine_kernels.h), so unlike the batch
        // fan-out this never perturbs seeded reproducibility.
        const uint32_t rt = RefineThreadsFor(cur->NumStrippedRows());
        if (!materialize_final) {
          h = cur->RefinedEntropyAllSharded(
              cols, remaining, static_cast<uint32_t>(composite_card), n, rt,
              pool_.get());
          have_h = true;
          break;
        }
        cur = std::make_shared<Partition>(cur->RefinedByAllSharded(
            cols, remaining, static_cast<uint32_t>(composite_card), rt,
            pool_.get()));
        cur_set = attrs;
        // A fused pass is bit-identical to the chain in the same column
        // order, so the recipe records the columns flat.
        for (size_t j = 0; j < remaining; ++j) {
          cur_chain.push_back(missing[i + j]);
        }
        fresh.push_back({cur_set, cur, cur_chain,
                         cols[remaining - 1]->cardinality, PartitionDelta{}});
        i = missing.size();
        break;
      }
    }

    const uint32_t a = missing[i];
    const Column col = store_.ColumnAt(a, pin.rows);
    PartitionDelta step_delta;
    if (cur == nullptr) {
      cur = std::make_shared<Partition>(Partition::OfColumn(col));
      ++builds;
    } else if (!materialize_final && i + 1 == missing.size()) {
      // Last step: only H is needed, so run the fused counting pass and
      // skip materializing the final partition. If a later query wants it
      // as a base, it refines from the cached prefix at one step's cost.
      h = cur->RefinedEntropySharded(col, n, RefineKernel::kAuto,
                                     RefineThreadsFor(cur->NumStrippedRows()),
                                     pool_.get());
      have_h = true;
      ++refinements;
      break;
    } else {
      // The three-argument form captures the parent->child correspondence
      // at build time, making this entry's first catch-up scan-free.
      cur = std::make_shared<Partition>(cur->RefinedBySharded(
          col, RefineKernel::kAuto, RefineThreadsFor(cur->NumStrippedRows()),
          pool_.get(), &step_delta));
      ++refinements;
    }
    cur_set.Add(a);
    cur_chain.push_back(a);
    fresh.push_back({cur_set, cur, cur_chain, col.cardinality,
                     std::move(step_delta)});
    ++i;
    // All rows already unique: every superset partition is all-singletons
    // too, so H(attrs) = ln N and the remaining refinements are no-ops.
    if (cur->NumStrippedRows() == 0) {
      if (cur_set != attrs) {
        // The full set's stripped partition is empty too; cache a fresh
        // empty instance rather than aliasing cur, so the byte accounting
        // doesn't count one allocation twice. Its recipe extends the
        // current chain by the never-applied columns (any order induces
        // the same empty grouping NOW; the recorded order pins the replay
        // after future appends un-singleton it).
        std::vector<uint32_t> rest_chain = cur_chain;
        for (size_t j = i; j < missing.size(); ++j) {
          rest_chain.push_back(missing[j]);
        }
        const uint32_t rest_card =
            store_.ColumnAt(rest_chain.back(), pin.rows).cardinality;
        fresh.push_back({attrs, std::make_shared<Partition>(),
                         std::move(rest_chain), rest_card, PartitionDelta{}});
      }
      break;
    }
  }
  if (!have_h) {
    AJD_CHECK(cur != nullptr);
    h = cur->EntropyNats(n);
  }

  std::vector<std::pair<AttrSet, size_t>> charged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.partition_builds += builds;
    stats_.refinements += refinements;
    stats_.fused_refinements += fused;
    // Cache the value only while the pin is still current: a superseded
    // pin's value would be invisible to every future lookup (they filter
    // by row tag) yet sit in the map until a sweep that may never come.
    // InsertPartitionLocked applies the same rule to the partitions.
    if (pin.rows ==
        std::atomic_load_explicit(&stamp_, std::memory_order_relaxed)
            ->rows) {
      entropies_[attrs] = CachedEntropy{h, pin.rows};
    }
    for (auto& entry : fresh) {
      const AttrSet set = entry.set;
      const size_t bytes = InsertPartitionLocked(
          set, std::move(entry.partition), std::move(entry.chain),
          entry.last_col_card, pin.rows, std::move(entry.delta));
      if (arbiter_ != nullptr && bytes > 0) charged.emplace_back(set, bytes);
    }
  }
  if (arbiter_ != nullptr && !charged.empty()) {
    // Charge outside mu_: the arbiter may evict — from this engine or any
    // other on the same budget — and its evict callbacks re-take engine
    // mutexes (arbiter -> engine order only).
    arbiter_->Charge(this, charged);
  }
  return h;
}

size_t EntropyEngine::InsertPartitionLocked(AttrSet attrs,
                                            std::shared_ptr<const Partition> p,
                                            std::vector<uint32_t> chain,
                                            uint32_t last_col_card,
                                            uint64_t rows,
                                            PartitionDelta delta) {
  auto it = partitions_.find(attrs);
  if (it != partitions_.end()) {
    // Never replace: the resident entry may belong to the CURRENT
    // generation while this insert races in from a reader at a superseded
    // pin. Touch it for recency and drop the new copy.
    it->second.last_used = ++tick_;
    if (arbiter_ == nullptr) EvictToPrivateBudgetLocked(attrs);
    return 0;
  }
  // A stale-pin compute must not seed the cache either: an entry tagged
  // behind the current stamp would be invisible to every future reader yet
  // hold budget until a catch-up sweep that never comes if appends stop.
  if (rows !=
      std::atomic_load_explicit(&stamp_, std::memory_order_relaxed)->rows) {
    return 0;
  }
  const size_t inserted_bytes = p->MemoryBytes();
  const uint64_t mass = p->NumStrippedRows();
  CachedPartition cp;
  cp.partition = std::move(p);
  cp.chain = std::move(chain);
  cp.last_col_card = last_col_card;
  cp.epoch = synced_epoch_.load(std::memory_order_relaxed);
  cp.rows = rows;
  cp.delta = std::move(delta);
  cp.last_used = ++tick_;
  partitions_.emplace(attrs, std::move(cp));
  partition_bytes_ += inserted_bytes;
  keys_by_count_[attrs.Count()].push_back({attrs, mass, rows});
  // With a shared arbiter attached, eviction is global and happens when the
  // caller charges the arbiter after releasing mu_; the private budget is
  // inert.
  if (arbiter_ != nullptr) return inserted_bytes;
  EvictToPrivateBudgetLocked(attrs);
  return inserted_bytes;
}

void EntropyEngine::EvictToPrivateBudgetLocked(AttrSet spare) {
  // Evict least-recently-used partitions past the budget, sparing the entry
  // just touched. Linear scans are fine: the cache holds at most a few
  // hundred lattice points in practice.
  while (partition_bytes_ > options_.cache_budget_bytes &&
         partitions_.size() > 1) {
    auto victim = partitions_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto jt = partitions_.begin(); jt != partitions_.end(); ++jt) {
      if (jt->first == spare) continue;
      if (jt->second.last_used < oldest) {
        oldest = jt->second.last_used;
        victim = jt;
      }
    }
    if (victim == partitions_.end()) break;
    EvictPartitionLocked(victim, /*allow_spill=*/true);
  }
}

void EntropyEngine::RemovePartitionLocked(
    std::unordered_map<AttrSet, CachedPartition, AttrSetHash>::iterator it) {
  const AttrSet attrs = it->first;
  partition_bytes_ -= it->second.partition->MemoryBytes();
  std::vector<KeyEntry>& bucket = keys_by_count_[attrs.Count()];
  auto pos =
      std::find_if(bucket.begin(), bucket.end(),
                   [&](const KeyEntry& e) { return e.set == attrs; });
  AJD_CHECK(pos != bucket.end());
  *pos = bucket.back();
  bucket.pop_back();
  partitions_.erase(it);
}

void EntropyEngine::EvictPartitionLocked(
    std::unordered_map<AttrSet, CachedPartition, AttrSetHash>::iterator it,
    bool allow_spill) {
  if (allow_spill && persist_ != nullptr && options_.persist_spill_on_evict &&
      it->second.partition != nullptr) {
    try {
      SpillPartitionLocked(it->first, it->second);
    } catch (const std::exception&) {
      // A spill that cannot even be attempted (allocation) degrades to a
      // plain eviction; the entry recomputes cold like any evicted one.
      ++stats_.persist_fallbacks;
    }
  }
  RemovePartitionLocked(it);
  ++stats_.evictions;
}

void EntropyEngine::SpillPartitionLocked(AttrSet attrs,
                                         const CachedPartition& cp) {
  // Only current-generation entries go down: a superseded row tag would
  // persist an entry no restart could use past the next catch-up anyway.
  if (cp.rows !=
      std::atomic_load_explicit(&stamp_, std::memory_order_relaxed)->rows) {
    return;
  }
  PersistedEntryMeta meta;
  meta.fingerprint = FingerprintFor(cp.rows);  // fp_mu_ is a leaf under mu_
  meta.attrs = attrs;
  meta.rows = cp.rows;
  meta.chain = cp.chain;
  meta.last_col_card = cp.last_col_card;
  auto eit = entropies_.find(attrs);
  if (eit != entropies_.end() && eit->second.rows == cp.rows) {
    meta.has_entropy = true;
    meta.entropy = eit->second.h;
  }
  PartitionPayload payload;
  cp.partition->FlattenStripped(&payload.rows, &payload.offsets);
  if (persist_->Put(meta, &payload).ok()) ++stats_.persist_spills;
}

void EntropyEngine::DropPartitionForArbiter(AttrSet attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(attrs);
  if (it == partitions_.end()) return;
  // An arbiter victim is a cold-ish but current entry: demote it to disk.
  EvictPartitionLocked(it, /*allow_spill=*/true);
}

bool EntropyEngine::ParallelBatches() const {
  return (options_.num_threads != 0
              ? options_.num_threads
              : std::max(1u, std::thread::hardware_concurrency())) > 1;
}

uint32_t EntropyEngine::PoolSizeFor(size_t n) const {
  // Demand a few misses per participant: waking the pool for a handful of
  // terms costs more in wakeup latency and cache-mutex contention than the
  // misses themselves (hill-climb sweeps re-batch mostly-warm
  // neighborhoods).
  constexpr size_t kMinMissesPerWorker = 4;
  if (n < 2 * kMinMissesPerWorker) return 1;
  uint32_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<uint32_t>(
      std::min<size_t>(threads, n / kMinMissesPerWorker));
}

uint32_t EntropyEngine::RefineThreadsFor(uint64_t mass) const {
  uint32_t threads = options_.refine_threads != 0 ? options_.refine_threads
                     : options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  if (threads <= 1 || mass < kShardedRefineMinMass) return 1;
  // One thread per shard's worth of rows: below that a shard finishes
  // faster than the fan-out costs (PlanShardCount in the kernels clamps
  // identically; clamping here too keeps the resolved count honest for
  // observers).
  const uint64_t by_mass = mass / kShardedRefineShardMass;
  if (by_mass < threads) threads = static_cast<uint32_t>(by_mass);
  return threads < 1 ? 1 : threads;
}

void EntropyEngine::BatchEntropy(const AttrSet* sets, size_t n, double* out) {
  CatchUp();
  // ONE pin for the whole batch: every term is evaluated over the same
  // pinned prefix, so the batch is internally consistent even if appends
  // land mid-flight.
  const EpochPin pin = Pin();
  // Size the pool by *distinct misses*, not batch size: waking workers to
  // service cache hits costs more than the hits themselves (the miner
  // re-batches mostly-warm term lists every split round), and dispatching
  // duplicate sets to the pool would compute the same refinement chain
  // once per copy (the cache dedups only at the final insert).
  std::vector<AttrSet> misses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (sets[i].Empty()) continue;
      auto it = entropies_.find(sets[i]);
      if (it == entropies_.end() || it->second.rows != pin.rows) {
        misses.push_back(sets[i]);
      }
    }
  }
  std::sort(misses.begin(), misses.end());
  misses.erase(std::unique(misses.begin(), misses.end()), misses.end());
  const uint32_t pool = pin.rows == 0 ? 1 : PoolSizeFor(misses.size());
  if (pool > 1) {
    // Fill the cache from the deduped miss list in parallel, then read the
    // whole batch out of it below.
    std::function<void(size_t)> fn = [this, &misses, pin](size_t i) {
      AJD_INJECT_FAULT(failpoints::kEngineBatchTask);
      ComputeEntropy(misses[i], pin);
    };
    pool_->Run(misses.size(), pool, fn);
  }
  for (size_t i = 0; i < n; ++i) out[i] = EntropyAt(sets[i], pin);
}

std::vector<double> EntropyEngine::BatchEntropy(
    const std::vector<AttrSet>& sets) {
  std::vector<double> out(sets.size());
  BatchEntropy(sets.data(), sets.size(), out.data());
  return out;
}

void EntropyEngine::WarmEntropies(const std::vector<AttrSet>& sets) {
  CatchUp();
  const EpochPin pin = Pin();
  if (pin.rows == 0) return;
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (s.Empty()) continue;
      auto it = entropies_.find(s);
      if (it == entropies_.end() || it->second.rows != pin.rows) {
        need.push_back(s);
      }
    }
  }
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;
  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s, pin);
    return;
  }
  std::function<void(size_t)> fn = [this, &need, pin](size_t i) {
    ComputeEntropy(need[i], pin);
  };
  pool_->Run(need.size(), pool, fn);
}

void EntropyEngine::PrewarmSubsets(const std::vector<AttrSet>& sets) {
  CatchUp();
  const EpochPin pin = Pin();
  if (pin.rows == 0) return;
  // Only sets without a pin-current materialized partition need work;
  // sorting the survivors makes the serial fill order (and thus the exact
  // cached values) independent of the caller's enumeration order.
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (s.Empty()) continue;
      AJD_CHECK(s.IsSubsetOf(relation().schema().AllAttrs()));
      auto it = partitions_.find(s);
      if (it == partitions_.end() || it->second.rows != pin.rows) {
        need.push_back(s);
      }
    }
  }
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;

  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s, pin, /*materialize_final=*/true);
    return;
  }
  std::function<void(size_t)> fn = [this, &need, pin](size_t i) {
    ComputeEntropy(need[i], pin, /*materialize_final=*/true);
  };
  pool_->Run(need.size(), pool, fn);
}

double EntropyEngine::ConditionalEntropy(AttrSet a, AttrSet c) {
  return Entropy(a.Union(c)) - Entropy(c);
}

double EntropyEngine::ConditionalMutualInformation(AttrSet a, AttrSet b,
                                                   AttrSet c) {
  double h_ac = Entropy(a.Union(c));
  double h_bc = Entropy(b.Union(c));
  double h_abc = Entropy(a.Union(b).Union(c));
  double h_c = Entropy(c);
  double cmi = h_ac + h_bc - h_abc - h_c;
  // Clamp tiny negative values from floating-point cancellation.
  return cmi < 0.0 && cmi > -1e-9 ? 0.0 : cmi;
}

double EntropyEngine::MutualInformation(AttrSet a, AttrSet b) {
  return ConditionalMutualInformation(a, b, AttrSet());
}

uint64_t EntropyEngine::FingerprintFor(uint64_t rows) {
  std::lock_guard<std::mutex> lock(fp_mu_);
  return fp_->At(rows);
}

bool EntropyEngine::TryServeFromDisk(AttrSet attrs, const EpochPin& pin,
                                     bool materialize_final, double* h_out) {
  {
    // The entropy VALUE can miss while the partition itself is resident at
    // the pinned row count (a catch-up sweeps entropies_ but revalidates
    // partitions_ in place). Recomputing from the in-memory partition is
    // strictly cheaper than a disk round-trip, so only a true double miss
    // probes the store.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = partitions_.find(attrs);
    if (it != partitions_.end() && it->second.rows == pin.rows) return false;
  }
  {
    // A pin behind the tracker is a superseded generation mid-catch-up:
    // probing it would pay a full O(pin.rows) fingerprint recompute per
    // miss (the tracker only moves forward). Stale pins are transient —
    // they just compute cold.
    std::lock_guard<std::mutex> lock(fp_mu_);
    if (pin.rows < fp_->rows()) return false;
  }
  const uint64_t fp = FingerprintFor(pin.rows);
  PersistedEntryMeta meta;
  if (!persist_->LookupExact(fp, attrs, pin.rows, &meta)) return false;

  if (!meta.has_payload) {
    // Value-only entry: the stored H (its journal record is CRC-verified,
    // and the fingerprint key pins the exact relation content it was
    // computed over). Useless when the caller needs the partition itself.
    if (!meta.has_entropy || materialize_final) return false;
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.persist_hits;
    if (pin.rows ==
        std::atomic_load_explicit(&stamp_, std::memory_order_relaxed)
            ->rows) {
      entropies_[attrs] = CachedEntropy{meta.entropy, pin.rows};
    }
    *h_out = meta.entropy;
    return true;
  }

  // The recorded chain must be a permutation of exactly this attribute
  // set — anything else is a stale or foreign producer's record, and a
  // partition admitted under the wrong recipe would extend incorrectly at
  // the next catch-up.
  AttrSet chain_set;
  bool chain_ok =
      !meta.chain.empty() && meta.chain.size() == attrs.Count();
  for (uint32_t a : meta.chain) {
    if (!chain_ok) break;
    if (a >= kMaxAttrs || chain_set.Contains(a)) {
      chain_ok = false;
      break;
    }
    chain_set.Add(a);
  }
  if (!chain_ok || chain_set != attrs) {
    (void)persist_->Erase(fp, attrs, pin.rows);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.persist_fallbacks;
    return false;
  }
  Result<PartitionPayload> loaded = persist_->LoadPayload(meta);
  if (!loaded.ok()) {
    // Corrupt or vanished blob: the store quarantined it; compute cold.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.persist_fallbacks;
    return false;
  }
  Result<Partition> rebuilt = Partition::FromStripped(
      std::move(loaded.value().rows), std::move(loaded.value().offsets),
      pin.rows);
  if (!rebuilt.ok()) {
    // Checksum-clean but structurally invalid (stale producer): the entry
    // can never serve, so drop it rather than re-failing every miss.
    (void)persist_->Erase(fp, attrs, pin.rows);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.persist_fallbacks;
    return false;
  }
  auto p = std::make_shared<const Partition>(std::move(rebuilt).value());
  // H derives from the VALIDATED partition, not the stored double: the
  // partition is the entry's load-bearing content, and EntropyNats runs
  // the same XLogX block-order accumulation the engine uses everywhere.
  const double h = p->EntropyNats(pin.rows);
  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.persist_hits;
    ++stats_.persist_reloads;
    if (pin.rows ==
        std::atomic_load_explicit(&stamp_, std::memory_order_relaxed)
            ->rows) {
      entropies_[attrs] = CachedEntropy{h, pin.rows};
    }
    bytes = InsertPartitionLocked(attrs, p, std::move(meta.chain),
                                  meta.last_col_card, pin.rows,
                                  PartitionDelta{});
  }
  if (arbiter_ != nullptr && bytes > 0) {
    std::vector<std::pair<AttrSet, size_t>> charged{{attrs, bytes}};
    arbiter_->Charge(this, charged);
  }
  *h_out = h;
  return true;
}

void EntropyEngine::WarmStartFromPersist() {
  const uint64_t now = store_.SyncedRows();
  const std::vector<PersistedEntryMeta> all = persist_->AllEntries();

  // Fingerprints of every persisted prefix length, computed ascending so
  // the tracker extends incrementally — one O(now) hashing pass total.
  std::vector<uint64_t> row_counts;
  for (const PersistedEntryMeta& e : all) {
    if (e.rows > 0 && e.rows <= now) row_counts.push_back(e.rows);
  }
  std::sort(row_counts.begin(), row_counts.end());
  row_counts.erase(std::unique(row_counts.begin(), row_counts.end()),
                   row_counts.end());
  std::unordered_map<uint64_t, uint64_t> fp_at;
  for (uint64_t m : row_counts) fp_at.emplace(m, FingerprintFor(m));
  // Leave the tracker at the current row count: the miss-path probe and
  // spills read it from here on.
  (void)FingerprintFor(now);

  // Per attribute set, the deepest usable prefix entry: content-verified
  // (its fingerprint matches OUR relation at its recorded row count —
  // entries of other relations sharing the store simply never match) and
  // longest, payload-carrying entries preferred on ties.
  std::unordered_map<AttrSet, const PersistedEntryMeta*, AttrSetHash> best;
  for (const PersistedEntryMeta& e : all) {
    if (e.rows == 0 || e.rows > now) continue;
    auto fit = fp_at.find(e.rows);
    if (fit == fp_at.end() || fit->second != e.fingerprint) continue;
    auto [bit, inserted] = best.emplace(e.attrs, &e);
    if (!inserted && (e.rows > bit->second->rows ||
                      (e.rows == bit->second->rows && e.has_payload &&
                       !bit->second->has_payload))) {
      bit->second = &e;
    }
  }
  if (best.empty()) return;

  // Chain length ascending, so every entry's direct parent (a strict chain
  // prefix, hence a smaller set) is reloaded and extended before the entry
  // needs it — the same order catch-up extends in.
  std::vector<const PersistedEntryMeta*> picked;
  picked.reserve(best.size());
  for (const auto& kv : best) picked.push_back(kv.second);
  std::sort(picked.begin(), picked.end(),
            [](const PersistedEntryMeta* a, const PersistedEntryMeta* b) {
              if (a->attrs.Count() != b->attrs.Count()) {
                return a->attrs.Count() < b->attrs.Count();
              }
              return a->attrs < b->attrs;
            });

  struct Reloaded {
    std::shared_ptr<const Partition> original;  // at meta->rows
    std::shared_ptr<const Partition> final;     // extended to `now`
    const PersistedEntryMeta* meta = nullptr;
    PartitionDelta delta;  // emitted by the extension, when one ran
  };
  std::unordered_map<AttrSet, Reloaded, AttrSetHash> ready;
  uint64_t reloads = 0, extended = 0, fallbacks = 0, value_hits = 0;

  for (const PersistedEntryMeta* e : picked) {
    if (!e->has_payload) continue;  // value-only entries handled below
    // Same recipe sanity as the miss path.
    AttrSet chain_set;
    bool chain_ok =
        !e->chain.empty() && e->chain.size() == e->attrs.Count();
    for (uint32_t a : e->chain) {
      if (!chain_ok) break;
      if (a >= kMaxAttrs || chain_set.Contains(a)) {
        chain_ok = false;
        break;
      }
      chain_set.Add(a);
    }
    if (!chain_ok || chain_set != e->attrs) {
      ++fallbacks;
      continue;
    }
    Result<PartitionPayload> loaded = persist_->LoadPayload(*e);
    if (!loaded.ok()) {
      ++fallbacks;
      continue;
    }
    Result<Partition> rebuilt = Partition::FromStripped(
        std::move(loaded.value().rows), std::move(loaded.value().offsets),
        e->rows);
    if (!rebuilt.ok()) {
      (void)persist_->Erase(e->fingerprint, e->attrs, e->rows);
      ++fallbacks;
      continue;
    }
    Reloaded r;
    r.meta = e;
    r.original =
        std::make_shared<const Partition>(std::move(rebuilt).value());
    ++reloads;
    const uint64_t m = e->rows;
    if (m == now) {
      r.final = r.original;
    } else if (e->chain.size() == 1) {
      // Root of a chain: the single-column extension needs no parent.
      const Column col = store_.ColumnAt(e->chain[0], now);
      r.final = std::make_shared<const Partition>(
          r.original->ExtendedOfColumn(col, m));
      ++extended;
    } else {
      // Deeper entry: the delta path needs the direct parent both in its
      // persisted form (at the same row count — the block correspondence
      // seed) and already extended to `now`. Entries that can't extend
      // cheaply are SKIPPED, not replayed: a warm restart that silently
      // replays chains cold costs more than the cold start it replaces.
      AttrSet parent_set;
      for (size_t j = 0; j + 1 < e->chain.size(); ++j) {
        parent_set.Add(e->chain[j]);
      }
      auto pit = ready.find(parent_set);
      const Column col = store_.ColumnAt(e->chain.back(), now);
      const bool parent_usable =
          pit != ready.end() && pit->second.final != nullptr &&
          pit->second.meta->rows == m &&
          pit->second.meta->chain.size() + 1 == e->chain.size() &&
          std::equal(pit->second.meta->chain.begin(),
                     pit->second.meta->chain.end(), e->chain.begin());
      const bool kernel_stable =
          parent_usable &&
          ChooseRefineKernel(col.cardinality,
                             pit->second.final->NumStrippedRows()) ==
              ChooseRefineKernel(e->last_col_card,
                                 pit->second.final->NumStrippedRows());
      if (!parent_usable || !kernel_stable) {
        ++fallbacks;
        continue;
      }
      r.final = std::make_shared<const Partition>(r.original->ExtendedBy(
          pit->second.original.get(), *pit->second.final, col, m, nullptr,
          &r.delta));
      ++extended;
    }
    ready.emplace(e->attrs, std::move(r));
  }

  std::vector<std::pair<AttrSet, size_t>> charged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& kv : ready) {
      Reloaded& r = kv.second;
      const uint32_t last_col_card =
          store_.ColumnAt(r.meta->chain.back(), now).cardinality;
      const size_t bytes = InsertPartitionLocked(
          kv.first, r.final, r.meta->chain, last_col_card, now,
          std::move(r.delta));
      if (arbiter_ != nullptr && bytes > 0) {
        charged.emplace_back(kv.first, bytes);
      }
      // A stored H is only current when the entry needed no extension.
      if (r.meta->rows == now && r.meta->has_entropy) {
        entropies_[kv.first] = CachedEntropy{r.meta->entropy, now};
        ++value_hits;
      }
    }
    for (const PersistedEntryMeta* e : picked) {
      if (e->has_payload || !e->has_entropy || e->rows != now) continue;
      entropies_[e->attrs] = CachedEntropy{e->entropy, now};
      ++value_hits;
    }
    stats_.persist_reloads += reloads;
    stats_.persist_extended += extended;
    stats_.persist_fallbacks += fallbacks;
    stats_.persist_hits += value_hits;
  }
  if (arbiter_ != nullptr && !charged.empty()) {
    arbiter_->Charge(this, charged);
  }
}

Status EntropyEngine::PersistCache() {
  if (persist_ == nullptr) {
    return Status::FailedPrecondition(
        "no persistent store attached (EngineOptions::persist_store)");
  }
  CatchUp();
  struct Item {
    AttrSet set;
    std::shared_ptr<const Partition> partition;
    std::vector<uint32_t> chain;
    uint32_t last_col_card = 0;
    bool has_entropy = false;
    double h = 0.0;
  };
  std::vector<Item> items;
  uint64_t rows_now = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows_now =
        std::atomic_load_explicit(&stamp_, std::memory_order_relaxed)->rows;
    for (const auto& kv : partitions_) {
      if (kv.second.rows != rows_now || kv.second.partition == nullptr) {
        continue;
      }
      Item item;
      item.set = kv.first;
      item.partition = kv.second.partition;
      item.chain = kv.second.chain;
      item.last_col_card = kv.second.last_col_card;
      auto eit = entropies_.find(kv.first);
      if (eit != entropies_.end() && eit->second.rows == rows_now) {
        item.has_entropy = true;
        item.h = eit->second.h;
      }
      items.push_back(std::move(item));
    }
    // Entropy-only terms (the common case: final chain steps take the
    // fused counting pass and never materialize) persist as value-only
    // records — 16 bytes of journal each, no blob.
    for (const auto& kv : entropies_) {
      if (kv.second.rows != rows_now) continue;
      if (partitions_.find(kv.first) != partitions_.end()) continue;
      Item item;
      item.set = kv.first;
      item.has_entropy = true;
      item.h = kv.second.h;
      items.push_back(std::move(item));
    }
  }
  if (rows_now == 0 || items.empty()) return Status::OK();
  const uint64_t fp = FingerprintFor(rows_now);
  Status first = Status::OK();
  uint64_t spilled = 0;
  for (const Item& item : items) {
    PersistedEntryMeta meta;
    meta.fingerprint = fp;
    meta.attrs = item.set;
    meta.rows = rows_now;
    meta.has_entropy = item.has_entropy;
    meta.entropy = item.h;
    meta.chain = item.chain;
    meta.last_col_card = item.last_col_card;
    Status s;
    if (item.partition != nullptr) {
      PartitionPayload payload;
      item.partition->FlattenStripped(&payload.rows, &payload.offsets);
      s = persist_->Put(meta, &payload);
    } else {
      s = persist_->Put(meta, nullptr);
    }
    if (s.ok()) {
      ++spilled;
    } else if (first.ok()) {
      first = s;  // keep going: persist everything that still can be
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.persist_spills += spilled;
  }
  return first;
}

size_t EntropyEngine::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entropies_.size();
}

size_t EntropyEngine::PartitionCacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_.size();
}

size_t EntropyEngine::PartitionBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_bytes_;
}

EngineStats EntropyEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ajd
