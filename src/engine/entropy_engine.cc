#include "engine/entropy_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "engine/cache_arbiter.h"
#include "engine/refine_kernels.h"
#include "engine/worker_pool.h"
#include "relation/row_hash.h"

namespace ajd {

namespace {

// Fused refinement applies at most this many missing columns in one
// composite pass. Deeper tails are rare (the cost model usually finds a
// close cached base) and would dilute the intermediate-partition reuse the
// cache lives on.
constexpr size_t kMaxFuseColumns = 4;

}  // namespace

EntropyEngine::EntropyEngine(const Relation* r, EngineOptions options)
    : store_(r),
      options_(options),
      fingerprint_(RelationFingerprint(*r)),
      pool_(options.worker_pool != nullptr ? options.worker_pool
                                           : WorkerPool::Shared()),
      arbiter_(options.cache_arbiter),
      keys_by_count_(kMaxAttrs + 1) {
  if (arbiter_ != nullptr) {
    // No other thread can reach this engine yet, so registering before the
    // body finishes cannot race a Charge.
    arbiter_->RegisterEngine(
        this, [this](AttrSet attrs) { DropPartitionForArbiter(attrs); });
  }
}

EntropyEngine::~EntropyEngine() {
  if (arbiter_ != nullptr) {
    // Discharges this engine's whole footprint in O(its entries) — the
    // fast path behind AnalysisSession::Release on short-lived relations.
    arbiter_->ReleaseEngine(this);
  }
}

uint64_t EntropyEngine::RelationFingerprint(const Relation& r) {
  uint64_t h =
      Mix64(r.NumRows() ^ (static_cast<uint64_t>(r.NumAttrs()) << 32));
  for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
    h = Mix64(h ^ r.schema().attr(a).domain_size);
    h = Mix64(h ^ std::hash<std::string>{}(r.schema().attr(a).name));
  }
  const uint64_t n = r.NumRows();
  if (n > 0) {
    // Sample three full rows; enough to catch realistic address reuse
    // without an O(N) pass per session lookup.
    for (uint64_t i : {uint64_t{0}, n / 2, n - 1}) {
      const uint32_t* row = r.Row(i);
      for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
        h = Mix64(h ^ ((i << 32) | row[a]));
      }
    }
  }
  return h;
}

double EntropyEngine::Entropy(AttrSet attrs) {
  AJD_CHECK(attrs.IsSubsetOf(relation().schema().AllAttrs()));
  if (attrs.Empty() || relation().NumRows() == 0) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = entropies_.find(attrs);
    if (it != entropies_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  return ComputeEntropy(attrs);
}

double EntropyEngine::ComputeEntropy(AttrSet attrs, bool materialize_final) {
  const uint64_t n = relation().NumRows();

  // Best cached base under the refinement cost model: each remaining step
  // scans at most the base's stripped rows, so refining base T costs about
  // NumStrippedRows(T) * |attrs \ T|, against N * |attrs| for a build from
  // a raw column. This prefers the largest cached subset when masses are
  // comparable, but lets a sharply refined smaller subset (e.g. a cached
  // near-key whose stripped partition is tiny) win over a barely refined
  // big one. Levels are scanned descending, so on a cost tie the first
  // (highest) level wins and within a level the smaller mask does — the
  // choice is deterministic given the cache contents.
  std::shared_ptr<const Partition> base;
  AttrSet base_set;
  // Partition-cache pressure: evictions have happened and the cache sits
  // near its budget, so intermediates cached now are unlikely to survive
  // until a reuse — the signal that lets the fused path run (below)
  // without starving future base lookups. Under an arbiter the pressure is
  // global; it is sampled BEFORE taking mu_ because the engine must never
  // wait on the arbiter while holding its own mutex (lock order is
  // arbiter -> engine, see engine/cache_arbiter.h).
  bool cache_pressure =
      arbiter_ != nullptr && arbiter_->UnderPressure();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (arbiter_ == nullptr) {
      cache_pressure = stats_.evictions > 0 &&
                       partition_bytes_ * 4 >= options_.cache_budget_bytes * 3;
    }
    double best_cost = static_cast<double>(n) *
                       std::max<uint32_t>(attrs.Count(), 1);  // from scratch
    uint32_t best_level = 0;
    for (uint32_t level = attrs.Count(); level >= 1 && best_cost > 0.0;
         --level) {
      // A zero-cost base (an all-singleton subset partition: H is already
      // ln N) cannot be beaten; stop scanning the lattice the moment one
      // appears, or misses over a cache full of collapsed partitions turn
      // the scan itself into the bottleneck.
      for (const KeyEntry& entry : keys_by_count_[level]) {
        if (!entry.set.IsSubsetOf(attrs)) continue;
        const uint32_t steps = attrs.Count() - level;
        const double cost = static_cast<double>(entry.mass) *
                            std::max<uint32_t>(steps, 1);
        const bool better =
            cost < best_cost ||
            (cost == best_cost &&
             (best_level == 0 ||
              (level == best_level && entry.set < base_set)));
        if (better) {
          best_cost = cost;
          best_level = level;
          base_set = entry.set;
          if (best_cost == 0.0) break;
        }
      }
    }
    if (best_level != 0) {
      auto it = partitions_.find(base_set);
      base = it->second.partition;
      it->second.last_used = ++tick_;
      ++stats_.base_reuses;
    }
  }
  if (arbiter_ != nullptr && base != nullptr) {
    // Recency signal for the global LRU; outside mu_ per the lock order.
    arbiter_->Touch(this, base_set);
  }

  // Refine by the missing attributes in order of estimated block-splitting
  // power: the sampled distinct sketch's show-up rate at the current
  // stripped mass (NOT the global cardinality — on skewed data a wide but
  // head-heavy column splits far worse than its cardinality suggests).
  // Early on this is roughly descending cardinality (wide columns shatter
  // blocks fastest); once the mass has collapsed, every saturated column
  // splits equally well and the cheapest one — smallest counting-scratch
  // footprint — goes first. When fusion policy allows (see
  // EngineOptions::max_fuse_columns) and the remaining columns'
  // cardinality product fits the fuse budget, they are applied as ONE
  // composite pass, bit-identical to a chain applied in the same (frozen)
  // column order; an unfused chain may re-rank mid-way as the mass
  // shrinks, so the two can differ by fp accumulation noise.
  std::vector<uint32_t> missing = attrs.Minus(base_set).ToIndices();

  uint64_t builds = 0;
  uint64_t refinements = 0;
  uint64_t fused = 0;
  std::vector<std::pair<AttrSet, std::shared_ptr<const Partition>>> fresh;
  std::shared_ptr<const Partition> cur = std::move(base);
  AttrSet cur_set = base_set;
  double h = 0.0;
  bool have_h = false;
  size_t i = 0;
  while (i < missing.size()) {
    const uint64_t mass = cur == nullptr ? n : cur->NumStrippedRows();
    // Order the remaining columns: max estimated splitting power, narrowest
    // column then index as deterministic tie-breaks (the sketch is itself
    // deterministic, so serial and threaded runs order identically).
    struct ColRank {
      double power;
      uint32_t cardinality;
      uint32_t attr;
    };
    ColRank ranks[kMaxAttrs];
    const size_t tail = missing.size() - i;
    for (size_t j = 0; j < tail; ++j) {
      const uint32_t a = missing[i + j];
      const Column& col = store_.column(a);
      // Quantized to whole distinct values: sampling noise below one value
      // must not reorder columns on unskewed data, where every column ties
      // and the cardinality/index tie-breaks keep the old deterministic
      // order. Genuine skew shifts the estimate by many values and wins.
      const double p = std::floor(std::min(
          store_.sketch(a).EstimateDistinct(mass, col.cardinality),
          static_cast<double>(mass)));
      ranks[j] = {p, col.cardinality, a};
    }
    std::sort(ranks, ranks + tail, [](const ColRank& x, const ColRank& y) {
      if (x.power != y.power) return x.power > y.power;
      if (x.cardinality != y.cardinality) return x.cardinality < y.cardinality;
      return x.attr < y.attr;
    });
    for (size_t j = 0; j < tail; ++j) missing[i + j] = ranks[j].attr;

    // Fused tail: apply every remaining column in one composite pass when
    // policy allows and the code space fits the budget. Fusing skips
    // materializing AND caching the chain's intermediate partitions — the
    // most-refined, smallest-mass entries, i.e. precisely the best future
    // bases — so on reuse-heavy workloads (the miner's overlapping term
    // sets) it loses more downstream than the skipped passes save, and it
    // only runs when those intermediates would not survive anyway (cache
    // pressure) or the caller forced it (max_fuse_columns >= 2).
    const size_t remaining = tail;
    const uint32_t fuse_limit =
        options_.max_fuse_columns == 0
            ? (cache_pressure ? kMaxFuseColumns : 1)
            : std::min<uint32_t>(options_.max_fuse_columns, kMaxFuseColumns);
    if (cur != nullptr && remaining >= 2 && remaining <= fuse_limit) {
      const Column* cols[kMaxFuseColumns];
      for (size_t j = 0; j < remaining; ++j) {
        cols[j] = &store_.column(missing[i + j]);
      }
      const uint64_t composite_card =
          FusedCardinality(cols, remaining, FuseBudget(mass));
      if (composite_card > 0) {
        refinements += remaining;
        ++fused;
        if (!materialize_final) {
          h = cur->RefinedEntropyAll(
              cols, remaining, static_cast<uint32_t>(composite_card), n);
          have_h = true;
          break;
        }
        cur = std::make_shared<Partition>(cur->RefinedByAll(
            cols, remaining, static_cast<uint32_t>(composite_card)));
        cur_set = attrs;
        fresh.emplace_back(cur_set, cur);
        i = missing.size();
        break;
      }
    }

    const uint32_t a = missing[i];
    const Column& col = store_.column(a);
    if (cur == nullptr) {
      cur = std::make_shared<Partition>(Partition::OfColumn(col));
      ++builds;
    } else if (!materialize_final && i + 1 == missing.size()) {
      // Last step: only H is needed, so run the fused counting pass and
      // skip materializing the final partition. If a later query wants it
      // as a base, it refines from the cached prefix at one step's cost.
      h = cur->RefinedEntropy(col, n);
      have_h = true;
      ++refinements;
      break;
    } else {
      cur = std::make_shared<Partition>(cur->RefinedBy(col));
      ++refinements;
    }
    cur_set.Add(a);
    fresh.emplace_back(cur_set, cur);
    ++i;
    // All rows already unique: every superset partition is all-singletons
    // too, so H(attrs) = ln N and the remaining refinements are no-ops.
    if (cur->NumStrippedRows() == 0) {
      if (cur_set != attrs) {
        // The full set's stripped partition is empty too; cache a fresh
        // empty instance rather than aliasing cur, so the byte accounting
        // doesn't count one allocation twice.
        fresh.emplace_back(attrs, std::make_shared<Partition>());
      }
      break;
    }
  }
  if (!have_h) {
    AJD_CHECK(cur != nullptr);
    h = cur->EntropyNats(n);
  }

  std::vector<std::pair<AttrSet, size_t>> charged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.partition_builds += builds;
    stats_.refinements += refinements;
    stats_.fused_refinements += fused;
    entropies_.emplace(attrs, h);
    for (auto& entry : fresh) {
      const AttrSet set = entry.first;
      const size_t bytes =
          InsertPartitionLocked(set, std::move(entry.second));
      if (arbiter_ != nullptr && bytes > 0) charged.emplace_back(set, bytes);
    }
  }
  if (arbiter_ != nullptr && !charged.empty()) {
    // Charge outside mu_: the arbiter may evict — from this engine or any
    // other on the same budget — and its evict callbacks re-take engine
    // mutexes (arbiter -> engine order only).
    arbiter_->Charge(this, charged);
  }
  return h;
}

size_t EntropyEngine::InsertPartitionLocked(
    AttrSet attrs, std::shared_ptr<const Partition> p) {
  size_t inserted_bytes = 0;
  auto [it, inserted] = partitions_.emplace(attrs, CachedPartition{});
  if (inserted) {
    inserted_bytes = p->MemoryBytes();
    partition_bytes_ += inserted_bytes;
    keys_by_count_[attrs.Count()].push_back({attrs, p->NumStrippedRows()});
    it->second.partition = std::move(p);
  }
  it->second.last_used = ++tick_;
  // With a shared arbiter attached, eviction is global and happens when the
  // caller charges the arbiter after releasing mu_; the private budget is
  // inert.
  if (arbiter_ != nullptr) return inserted_bytes;
  // Evict least-recently-used partitions past the budget, sparing the entry
  // just touched. Linear scans are fine: the cache holds at most a few
  // hundred lattice points in practice.
  while (partition_bytes_ > options_.cache_budget_bytes &&
         partitions_.size() > 1) {
    auto victim = partitions_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto jt = partitions_.begin(); jt != partitions_.end(); ++jt) {
      if (jt->first == attrs) continue;
      if (jt->second.last_used < oldest) {
        oldest = jt->second.last_used;
        victim = jt;
      }
    }
    if (victim == partitions_.end()) break;
    EvictPartitionLocked(victim);
  }
  return inserted_bytes;
}

void EntropyEngine::EvictPartitionLocked(
    std::unordered_map<AttrSet, CachedPartition, AttrSetHash>::iterator it) {
  const AttrSet attrs = it->first;
  partition_bytes_ -= it->second.partition->MemoryBytes();
  std::vector<KeyEntry>& bucket = keys_by_count_[attrs.Count()];
  auto pos =
      std::find_if(bucket.begin(), bucket.end(),
                   [&](const KeyEntry& e) { return e.set == attrs; });
  AJD_CHECK(pos != bucket.end());
  *pos = bucket.back();
  bucket.pop_back();
  partitions_.erase(it);
  ++stats_.evictions;
}

void EntropyEngine::DropPartitionForArbiter(AttrSet attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(attrs);
  if (it == partitions_.end()) return;
  EvictPartitionLocked(it);
}

bool EntropyEngine::ParallelBatches() const {
  return (options_.num_threads != 0
              ? options_.num_threads
              : std::max(1u, std::thread::hardware_concurrency())) > 1;
}

uint32_t EntropyEngine::PoolSizeFor(size_t n) const {
  // Demand a few misses per participant: waking the pool for a handful of
  // terms costs more in wakeup latency and cache-mutex contention than the
  // misses themselves (hill-climb sweeps re-batch mostly-warm
  // neighborhoods).
  constexpr size_t kMinMissesPerWorker = 4;
  if (n < 2 * kMinMissesPerWorker) return 1;
  uint32_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<uint32_t>(
      std::min<size_t>(threads, n / kMinMissesPerWorker));
}

void EntropyEngine::BatchEntropy(const AttrSet* sets, size_t n, double* out) {
  // Size the pool by *distinct misses*, not batch size: waking workers to
  // service cache hits costs more than the hits themselves (the miner
  // re-batches mostly-warm term lists every split round), and dispatching
  // duplicate sets to the pool would compute the same refinement chain
  // once per copy (the cache dedups only at the final insert).
  std::vector<AttrSet> misses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (!sets[i].Empty() &&
          entropies_.find(sets[i]) == entropies_.end()) {
        misses.push_back(sets[i]);
      }
    }
  }
  std::sort(misses.begin(), misses.end());
  misses.erase(std::unique(misses.begin(), misses.end()), misses.end());
  const uint32_t pool = PoolSizeFor(misses.size());
  if (pool > 1) {
    // Fill the cache from the deduped miss list in parallel, then read the
    // whole batch out of it below.
    std::function<void(size_t)> fn = [this, &misses](size_t i) {
      ComputeEntropy(misses[i]);
    };
    pool_->Run(misses.size(), pool, fn);
  }
  for (size_t i = 0; i < n; ++i) out[i] = Entropy(sets[i]);
}

std::vector<double> EntropyEngine::BatchEntropy(
    const std::vector<AttrSet>& sets) {
  std::vector<double> out(sets.size());
  BatchEntropy(sets.data(), sets.size(), out.data());
  return out;
}

void EntropyEngine::WarmEntropies(const std::vector<AttrSet>& sets) {
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (!s.Empty() && entropies_.find(s) == entropies_.end()) {
        need.push_back(s);
      }
    }
  }
  if (relation().NumRows() == 0) return;
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;
  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s);
    return;
  }
  std::function<void(size_t)> fn = [this, &need](size_t i) {
    ComputeEntropy(need[i]);
  };
  pool_->Run(need.size(), pool, fn);
}

void EntropyEngine::PrewarmSubsets(const std::vector<AttrSet>& sets) {
  // Only sets without a materialized partition need work; sorting the
  // survivors makes the serial fill order (and thus the exact cached
  // values) independent of the caller's enumeration order.
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (s.Empty()) continue;
      AJD_CHECK(s.IsSubsetOf(relation().schema().AllAttrs()));
      if (partitions_.find(s) == partitions_.end()) need.push_back(s);
    }
  }
  if (relation().NumRows() == 0) return;
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;

  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s, /*materialize_final=*/true);
    return;
  }
  std::function<void(size_t)> fn = [this, &need](size_t i) {
    ComputeEntropy(need[i], /*materialize_final=*/true);
  };
  pool_->Run(need.size(), pool, fn);
}

double EntropyEngine::ConditionalEntropy(AttrSet a, AttrSet c) {
  return Entropy(a.Union(c)) - Entropy(c);
}

double EntropyEngine::ConditionalMutualInformation(AttrSet a, AttrSet b,
                                                   AttrSet c) {
  double h_ac = Entropy(a.Union(c));
  double h_bc = Entropy(b.Union(c));
  double h_abc = Entropy(a.Union(b).Union(c));
  double h_c = Entropy(c);
  double cmi = h_ac + h_bc - h_abc - h_c;
  // Clamp tiny negative values from floating-point cancellation.
  return cmi < 0.0 && cmi > -1e-9 ? 0.0 : cmi;
}

double EntropyEngine::MutualInformation(AttrSet a, AttrSet b) {
  return ConditionalMutualInformation(a, b, AttrSet());
}

size_t EntropyEngine::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entropies_.size();
}

size_t EntropyEngine::PartitionCacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_.size();
}

size_t EntropyEngine::PartitionBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_bytes_;
}

EngineStats EntropyEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ajd
