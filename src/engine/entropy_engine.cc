#include "engine/entropy_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "relation/row_hash.h"

namespace ajd {

EntropyEngine::EntropyEngine(const Relation* r, EngineOptions options)
    : store_(r),
      options_(options),
      fingerprint_(RelationFingerprint(*r)),
      keys_by_count_(kMaxAttrs + 1) {}

EntropyEngine::~EntropyEngine() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_shutdown_ = true;
  }
  pool_wake_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
}

uint64_t EntropyEngine::RelationFingerprint(const Relation& r) {
  uint64_t h =
      Mix64(r.NumRows() ^ (static_cast<uint64_t>(r.NumAttrs()) << 32));
  for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
    h = Mix64(h ^ r.schema().attr(a).domain_size);
    h = Mix64(h ^ std::hash<std::string>{}(r.schema().attr(a).name));
  }
  const uint64_t n = r.NumRows();
  if (n > 0) {
    // Sample three full rows; enough to catch realistic address reuse
    // without an O(N) pass per session lookup.
    for (uint64_t i : {uint64_t{0}, n / 2, n - 1}) {
      const uint32_t* row = r.Row(i);
      for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
        h = Mix64(h ^ ((i << 32) | row[a]));
      }
    }
  }
  return h;
}

double EntropyEngine::Entropy(AttrSet attrs) {
  AJD_CHECK(attrs.IsSubsetOf(relation().schema().AllAttrs()));
  if (attrs.Empty() || relation().NumRows() == 0) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = entropies_.find(attrs);
    if (it != entropies_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  return ComputeEntropy(attrs);
}

double EntropyEngine::ComputeEntropy(AttrSet attrs, bool materialize_final) {
  const uint64_t n = relation().NumRows();

  // Best cached base under the refinement cost model: each remaining step
  // scans at most the base's stripped rows, so refining base T costs about
  // NumStrippedRows(T) * |attrs \ T|, against N * |attrs| for a build from
  // a raw column. This prefers the largest cached subset when masses are
  // comparable, but lets a sharply refined smaller subset (e.g. a cached
  // near-key whose stripped partition is tiny) win over a barely refined
  // big one. Levels are scanned descending, so on a cost tie the first
  // (highest) level wins and within a level the smaller mask does — the
  // choice is deterministic given the cache contents.
  std::shared_ptr<const Partition> base;
  AttrSet base_set;
  {
    std::lock_guard<std::mutex> lock(mu_);
    double best_cost = static_cast<double>(n) *
                       std::max<uint32_t>(attrs.Count(), 1);  // from scratch
    uint32_t best_level = 0;
    for (uint32_t level = attrs.Count(); level >= 1 && best_cost > 0.0;
         --level) {
      // A zero-cost base (an all-singleton subset partition: H is already
      // ln N) cannot be beaten; stop scanning the lattice the moment one
      // appears, or misses over a cache full of collapsed partitions turn
      // the scan itself into the bottleneck.
      for (AttrSet key : keys_by_count_[level]) {
        if (!key.IsSubsetOf(attrs)) continue;
        auto it = partitions_.find(key);
        const uint64_t mass = it->second.partition->NumStrippedRows();
        const uint32_t steps = attrs.Count() - level;
        const double cost = static_cast<double>(mass) *
                            std::max<uint32_t>(steps, 1);
        const bool better =
            cost < best_cost ||
            (cost == best_cost &&
             (base == nullptr ||
              (level == best_level && key < base_set)));
        if (better) {
          best_cost = cost;
          best_level = level;
          base_set = key;
          base = it->second.partition;
          if (best_cost == 0.0) break;
        }
      }
    }
    if (base != nullptr) {
      auto it = partitions_.find(base_set);
      it->second.last_used = ++tick_;
      ++stats_.base_reuses;
    }
  }

  // Refine by the missing attributes in order of estimated block-splitting
  // power: a column's distinct count saturated at the current stripped
  // mass. Early on this is plain descending cardinality (wide columns
  // shatter blocks fastest); once the mass has collapsed below the widest
  // cardinalities, every saturated column splits equally well and the
  // cheapest one — smallest counting-scratch footprint — goes first.
  std::vector<uint32_t> missing = attrs.Minus(base_set).ToIndices();

  uint64_t builds = 0;
  uint64_t refinements = 0;
  std::vector<std::pair<AttrSet, std::shared_ptr<const Partition>>> fresh;
  std::shared_ptr<const Partition> cur = std::move(base);
  AttrSet cur_set = base_set;
  double h = 0.0;
  bool have_h = false;
  for (size_t i = 0; i < missing.size(); ++i) {
    const uint64_t mass = cur == nullptr ? n : cur->NumStrippedRows();
    // Pick the next column adaptively: max saturated splitting power,
    // cheapest (narrowest) column among the saturated, index as the final
    // deterministic tie-break.
    size_t pick = i;
    auto power = [&](uint32_t a) {
      return std::min<uint64_t>(store_.column(a).cardinality, mass);
    };
    for (size_t j = i + 1; j < missing.size(); ++j) {
      const uint64_t pj = power(missing[j]);
      const uint64_t pp = power(missing[pick]);
      const uint32_t cj = store_.column(missing[j]).cardinality;
      const uint32_t cp = store_.column(missing[pick]).cardinality;
      if (pj > pp || (pj == pp && (cj < cp || (cj == cp && missing[j] <
                                                              missing[pick]))))
        pick = j;
    }
    std::swap(missing[i], missing[pick]);

    const uint32_t a = missing[i];
    const Column& col = store_.column(a);
    if (cur == nullptr) {
      cur = std::make_shared<Partition>(Partition::OfColumn(col));
      ++builds;
    } else if (!materialize_final && i + 1 == missing.size()) {
      // Last step: only H is needed, so run the fused counting pass and
      // skip materializing the final partition. If a later query wants it
      // as a base, it refines from the cached prefix at one step's cost.
      h = cur->RefinedEntropy(col, n);
      have_h = true;
      ++refinements;
      break;
    } else {
      cur = std::make_shared<Partition>(cur->RefinedBy(col));
      ++refinements;
    }
    cur_set.Add(a);
    fresh.emplace_back(cur_set, cur);
    // All rows already unique: every superset partition is all-singletons
    // too, so H(attrs) = ln N and the remaining refinements are no-ops.
    if (cur->NumStrippedRows() == 0) {
      if (cur_set != attrs) {
        // The full set's stripped partition is empty too; cache a fresh
        // empty instance rather than aliasing cur, so the byte accounting
        // doesn't count one allocation twice.
        fresh.emplace_back(attrs, std::make_shared<Partition>());
      }
      break;
    }
  }
  if (!have_h) {
    AJD_CHECK(cur != nullptr);
    h = cur->EntropyNats(n);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.partition_builds += builds;
    stats_.refinements += refinements;
    entropies_.emplace(attrs, h);
    for (auto& entry : fresh) {
      InsertPartitionLocked(entry.first, std::move(entry.second));
    }
  }
  return h;
}

void EntropyEngine::InsertPartitionLocked(
    AttrSet attrs, std::shared_ptr<const Partition> p) {
  auto [it, inserted] = partitions_.emplace(attrs, CachedPartition{});
  if (inserted) {
    partition_bytes_ += p->MemoryBytes();
    it->second.partition = std::move(p);
    keys_by_count_[attrs.Count()].push_back(attrs);
  }
  it->second.last_used = ++tick_;
  // Evict least-recently-used partitions past the budget, sparing the entry
  // just touched. Linear scans are fine: the cache holds at most a few
  // hundred lattice points in practice.
  while (partition_bytes_ > options_.partition_budget_bytes &&
         partitions_.size() > 1) {
    auto victim = partitions_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto jt = partitions_.begin(); jt != partitions_.end(); ++jt) {
      if (jt->first == attrs) continue;
      if (jt->second.last_used < oldest) {
        oldest = jt->second.last_used;
        victim = jt;
      }
    }
    if (victim == partitions_.end()) break;
    partition_bytes_ -= victim->second.partition->MemoryBytes();
    std::vector<AttrSet>& bucket = keys_by_count_[victim->first.Count()];
    auto pos = std::find(bucket.begin(), bucket.end(), victim->first);
    AJD_CHECK(pos != bucket.end());
    *pos = bucket.back();
    bucket.pop_back();
    partitions_.erase(victim);
    ++stats_.evictions;
  }
}

bool EntropyEngine::ParallelBatches() const {
  return (options_.num_threads != 0
              ? options_.num_threads
              : std::max(1u, std::thread::hardware_concurrency())) > 1;
}

uint32_t EntropyEngine::PoolSizeFor(size_t n) const {
  // Demand a few misses per participant: waking the pool for a handful of
  // terms costs more in wakeup latency and cache-mutex contention than the
  // misses themselves (hill-climb sweeps re-batch mostly-warm
  // neighborhoods).
  constexpr size_t kMinMissesPerWorker = 4;
  if (n < 2 * kMinMissesPerWorker) return 1;
  uint32_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<uint32_t>(
      std::min<size_t>(threads, n / kMinMissesPerWorker));
}

void EntropyEngine::RunOnPool(size_t n, uint32_t workers,
                              const std::function<void(size_t)>& fn) {
  std::lock_guard<std::mutex> submit(pool_submit_mu_);
  auto batch = std::make_shared<PoolBatch>();
  batch->fn = &fn;
  batch->n = n;
  batch->max_helpers = workers - 1;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    while (pool_.size() + 1 < workers) {
      pool_.emplace_back([this] { PoolWorkerLoop(); });
    }
    pool_batch_ = batch;
    ++pool_epoch_;
  }
  pool_wake_cv_.notify_all();
  TakeBatchShare(batch.get());
  std::unique_lock<std::mutex> lock(pool_mu_);
  pool_done_cv_.wait(lock, [&] { return batch->completed.load() == n; });
}

void EntropyEngine::TakeBatchShare(PoolBatch* batch) {
  const size_t n = batch->n;
  while (true) {
    size_t i = batch->next.fetch_add(1);
    if (i >= n) return;
    (*batch->fn)(i);
    if (batch->completed.fetch_add(1) + 1 == n) {
      // Notify under the waiter's mutex so the wakeup cannot be missed.
      std::lock_guard<std::mutex> lock(pool_mu_);
      pool_done_cv_.notify_all();
    }
  }
}

void EntropyEngine::PoolWorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(pool_mu_);
  while (true) {
    pool_wake_cv_.wait(
        lock, [&] { return pool_shutdown_ || pool_epoch_ != seen; });
    if (pool_shutdown_) return;
    seen = pool_epoch_;
    // Snapshot the batch under the lock: a worker waking after this batch
    // already finished (and a new one started) must share in the state its
    // epoch observation belongs to, never a recycled slot.
    std::shared_ptr<PoolBatch> batch = pool_batch_;
    lock.unlock();
    if (batch->helpers.fetch_add(1) < batch->max_helpers) {
      TakeBatchShare(batch.get());
    }
    lock.lock();
  }
}

void EntropyEngine::BatchEntropy(const AttrSet* sets, size_t n, double* out) {
  // Size the pool by *distinct misses*, not batch size: waking workers to
  // service cache hits costs more than the hits themselves (the miner
  // re-batches mostly-warm term lists every split round), and dispatching
  // duplicate sets to the pool would compute the same refinement chain
  // once per copy (the cache dedups only at the final insert).
  std::vector<AttrSet> misses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (!sets[i].Empty() &&
          entropies_.find(sets[i]) == entropies_.end()) {
        misses.push_back(sets[i]);
      }
    }
  }
  std::sort(misses.begin(), misses.end());
  misses.erase(std::unique(misses.begin(), misses.end()), misses.end());
  const uint32_t pool = PoolSizeFor(misses.size());
  if (pool > 1) {
    // Fill the cache from the deduped miss list in parallel, then read the
    // whole batch out of it below.
    std::function<void(size_t)> fn = [this, &misses](size_t i) {
      ComputeEntropy(misses[i]);
    };
    RunOnPool(misses.size(), pool, fn);
  }
  for (size_t i = 0; i < n; ++i) out[i] = Entropy(sets[i]);
}

std::vector<double> EntropyEngine::BatchEntropy(
    const std::vector<AttrSet>& sets) {
  std::vector<double> out(sets.size());
  BatchEntropy(sets.data(), sets.size(), out.data());
  return out;
}

void EntropyEngine::WarmEntropies(const std::vector<AttrSet>& sets) {
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (!s.Empty() && entropies_.find(s) == entropies_.end()) {
        need.push_back(s);
      }
    }
  }
  if (relation().NumRows() == 0) return;
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;
  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s);
    return;
  }
  std::function<void(size_t)> fn = [this, &need](size_t i) {
    ComputeEntropy(need[i]);
  };
  RunOnPool(need.size(), pool, fn);
}

void EntropyEngine::PrewarmSubsets(const std::vector<AttrSet>& sets) {
  // Only sets without a materialized partition need work; sorting the
  // survivors makes the serial fill order (and thus the exact cached
  // values) independent of the caller's enumeration order.
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (s.Empty()) continue;
      AJD_CHECK(s.IsSubsetOf(relation().schema().AllAttrs()));
      if (partitions_.find(s) == partitions_.end()) need.push_back(s);
    }
  }
  if (relation().NumRows() == 0) return;
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;

  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s, /*materialize_final=*/true);
    return;
  }
  std::function<void(size_t)> fn = [this, &need](size_t i) {
    ComputeEntropy(need[i], /*materialize_final=*/true);
  };
  RunOnPool(need.size(), pool, fn);
}

double EntropyEngine::ConditionalEntropy(AttrSet a, AttrSet c) {
  return Entropy(a.Union(c)) - Entropy(c);
}

double EntropyEngine::ConditionalMutualInformation(AttrSet a, AttrSet b,
                                                   AttrSet c) {
  double h_ac = Entropy(a.Union(c));
  double h_bc = Entropy(b.Union(c));
  double h_abc = Entropy(a.Union(b).Union(c));
  double h_c = Entropy(c);
  double cmi = h_ac + h_bc - h_abc - h_c;
  // Clamp tiny negative values from floating-point cancellation.
  return cmi < 0.0 && cmi > -1e-9 ? 0.0 : cmi;
}

double EntropyEngine::MutualInformation(AttrSet a, AttrSet b) {
  return ConditionalMutualInformation(a, b, AttrSet());
}

size_t EntropyEngine::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entropies_.size();
}

size_t EntropyEngine::PartitionCacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_.size();
}

size_t EntropyEngine::PartitionBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_bytes_;
}

EngineStats EntropyEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ajd
