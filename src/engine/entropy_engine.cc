#include "engine/entropy_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "relation/row_hash.h"

namespace ajd {

EntropyEngine::EntropyEngine(const Relation* r, EngineOptions options)
    : store_(r),
      options_(options),
      fingerprint_(RelationFingerprint(*r)),
      keys_by_count_(kMaxAttrs + 1) {}

uint64_t EntropyEngine::RelationFingerprint(const Relation& r) {
  uint64_t h =
      Mix64(r.NumRows() ^ (static_cast<uint64_t>(r.NumAttrs()) << 32));
  for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
    h = Mix64(h ^ r.schema().attr(a).domain_size);
    h = Mix64(h ^ std::hash<std::string>{}(r.schema().attr(a).name));
  }
  const uint64_t n = r.NumRows();
  if (n > 0) {
    // Sample three full rows; enough to catch realistic address reuse
    // without an O(N) pass per session lookup.
    for (uint64_t i : {uint64_t{0}, n / 2, n - 1}) {
      const uint32_t* row = r.Row(i);
      for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
        h = Mix64(h ^ ((i << 32) | row[a]));
      }
    }
  }
  return h;
}

double EntropyEngine::Entropy(AttrSet attrs) {
  AJD_CHECK(attrs.IsSubsetOf(relation().schema().AllAttrs()));
  if (attrs.Empty() || relation().NumRows() == 0) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = entropies_.find(attrs);
    if (it != entropies_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  return ComputeEntropy(attrs);
}

double EntropyEngine::ComputeEntropy(AttrSet attrs) {
  const uint64_t n = relation().NumRows();

  // Best cached base: the largest subset of attrs with a live partition;
  // ties go to the partition with fewer stripped rows (more refined, so
  // less downstream work).
  std::shared_ptr<const Partition> base;
  AttrSet base_set;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t level = attrs.Count(); level >= 1 && base == nullptr;
         --level) {
      // Within the first level that contains a subset, prefer the most
      // refined partition (fewest stripped rows): less downstream work.
      uint64_t best_rows = UINT64_MAX;
      for (AttrSet key : keys_by_count_[level]) {
        if (!key.IsSubsetOf(attrs)) continue;
        auto it = partitions_.find(key);
        uint64_t stripped = it->second.partition->NumStrippedRows();
        if (stripped < best_rows) {
          best_rows = stripped;
          base_set = key;
        }
      }
      if (best_rows != UINT64_MAX) {
        auto it = partitions_.find(base_set);
        base = it->second.partition;
        it->second.last_used = ++tick_;
        ++stats_.base_reuses;
      }
    }
  }

  // Refine by the missing attributes, widest columns first: high-cardinality
  // columns shatter blocks fastest, shrinking later refinement passes.
  std::vector<uint32_t> missing = attrs.Minus(base_set).ToIndices();
  std::sort(missing.begin(), missing.end(), [this](uint32_t a, uint32_t b) {
    return store_.column(a).cardinality > store_.column(b).cardinality;
  });

  uint64_t builds = 0;
  uint64_t refinements = 0;
  std::vector<std::pair<AttrSet, std::shared_ptr<const Partition>>> fresh;
  std::shared_ptr<const Partition> cur = std::move(base);
  AttrSet cur_set = base_set;
  double h = 0.0;
  bool have_h = false;
  for (size_t i = 0; i < missing.size(); ++i) {
    const uint32_t a = missing[i];
    const Column& col = store_.column(a);
    if (cur == nullptr) {
      cur = std::make_shared<Partition>(Partition::OfColumn(col));
      ++builds;
    } else if (i + 1 == missing.size()) {
      // Last step: only H is needed, so run the fused counting pass and
      // skip materializing the final partition. If a later query wants it
      // as a base, it refines from the cached prefix at one step's cost.
      h = cur->RefinedEntropy(col, n);
      have_h = true;
      ++refinements;
      break;
    } else {
      cur = std::make_shared<Partition>(cur->RefinedBy(col));
      ++refinements;
    }
    cur_set.Add(a);
    fresh.emplace_back(cur_set, cur);
    // All rows already unique: every superset partition is all-singletons
    // too, so H(attrs) = ln N and the remaining refinements are no-ops.
    if (cur->NumStrippedRows() == 0) {
      if (cur_set != attrs) {
        // The full set's stripped partition is empty too; cache a fresh
        // empty instance rather than aliasing cur, so the byte accounting
        // doesn't count one allocation twice.
        fresh.emplace_back(attrs, std::make_shared<Partition>());
      }
      break;
    }
  }
  if (!have_h) {
    AJD_CHECK(cur != nullptr);
    h = cur->EntropyNats(n);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.partition_builds += builds;
    stats_.refinements += refinements;
    entropies_.emplace(attrs, h);
    for (auto& entry : fresh) {
      InsertPartitionLocked(entry.first, std::move(entry.second));
    }
  }
  return h;
}

void EntropyEngine::InsertPartitionLocked(
    AttrSet attrs, std::shared_ptr<const Partition> p) {
  auto [it, inserted] = partitions_.emplace(attrs, CachedPartition{});
  if (inserted) {
    partition_bytes_ += p->MemoryBytes();
    it->second.partition = std::move(p);
    keys_by_count_[attrs.Count()].push_back(attrs);
  }
  it->second.last_used = ++tick_;
  // Evict least-recently-used partitions past the budget, sparing the entry
  // just touched. Linear scans are fine: the cache holds at most a few
  // hundred lattice points in practice.
  while (partition_bytes_ > options_.partition_budget_bytes &&
         partitions_.size() > 1) {
    auto victim = partitions_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto jt = partitions_.begin(); jt != partitions_.end(); ++jt) {
      if (jt->first == attrs) continue;
      if (jt->second.last_used < oldest) {
        oldest = jt->second.last_used;
        victim = jt;
      }
    }
    if (victim == partitions_.end()) break;
    partition_bytes_ -= victim->second.partition->MemoryBytes();
    std::vector<AttrSet>& bucket = keys_by_count_[victim->first.Count()];
    auto pos = std::find(bucket.begin(), bucket.end(), victim->first);
    AJD_CHECK(pos != bucket.end());
    *pos = bucket.back();
    bucket.pop_back();
    partitions_.erase(victim);
    ++stats_.evictions;
  }
}

bool EntropyEngine::ParallelBatches() const {
  return (options_.num_threads != 0
              ? options_.num_threads
              : std::max(1u, std::thread::hardware_concurrency())) > 1;
}

uint32_t EntropyEngine::PoolSizeFor(size_t n) const {
  if (n < 4) return 1;  // a thread per trivial batch costs more than it buys
  uint32_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<uint32_t>(
      std::min<size_t>(threads, n));
}

void EntropyEngine::BatchEntropy(const AttrSet* sets, size_t n, double* out) {
  // Size the pool by expected *misses*, not batch size: spawning threads to
  // service cache hits costs more than the hits themselves (the miner
  // re-batches mostly-warm term lists every split round).
  size_t misses = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (!sets[i].Empty() &&
          entropies_.find(sets[i]) == entropies_.end()) {
        ++misses;
      }
    }
  }
  const uint32_t pool = PoolSizeFor(misses);
  if (pool <= 1) {
    for (size_t i = 0; i < n; ++i) out[i] = Entropy(sets[i]);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    while (true) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      out[i] = Entropy(sets[i]);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(pool - 1);
  for (uint32_t t = 0; t + 1 < pool; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& th : threads) th.join();
}

std::vector<double> EntropyEngine::BatchEntropy(
    const std::vector<AttrSet>& sets) {
  std::vector<double> out(sets.size());
  BatchEntropy(sets.data(), sets.size(), out.data());
  return out;
}

double EntropyEngine::ConditionalEntropy(AttrSet a, AttrSet c) {
  return Entropy(a.Union(c)) - Entropy(c);
}

double EntropyEngine::ConditionalMutualInformation(AttrSet a, AttrSet b,
                                                   AttrSet c) {
  double h_ac = Entropy(a.Union(c));
  double h_bc = Entropy(b.Union(c));
  double h_abc = Entropy(a.Union(b).Union(c));
  double h_c = Entropy(c);
  double cmi = h_ac + h_bc - h_abc - h_c;
  // Clamp tiny negative values from floating-point cancellation.
  return cmi < 0.0 && cmi > -1e-9 ? 0.0 : cmi;
}

double EntropyEngine::MutualInformation(AttrSet a, AttrSet b) {
  return ConditionalMutualInformation(a, b, AttrSet());
}

size_t EntropyEngine::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entropies_.size();
}

size_t EntropyEngine::PartitionCacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_.size();
}

size_t EntropyEngine::PartitionBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_bytes_;
}

EngineStats EntropyEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ajd
