#include "engine/entropy_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <thread>
#include <utility>

#include "engine/cache_arbiter.h"
#include "engine/refine_kernels.h"
#include "engine/worker_pool.h"
#include "relation/row_hash.h"

namespace ajd {

namespace {

// Fused refinement applies at most this many missing columns in one
// composite pass. Deeper tails are rare (the cost model usually finds a
// close cached base) and would dilute the intermediate-partition reuse the
// cache lives on.
constexpr size_t kMaxFuseColumns = 4;

}  // namespace

EntropyEngine::EntropyEngine(const Relation* r, EngineOptions options)
    : store_(r),
      options_(options),
      relation_uid_(r->uid()),
      synced_epoch_(r->epoch()),
      pool_(options.worker_pool != nullptr ? options.worker_pool
                                           : WorkerPool::Shared()),
      arbiter_(options.cache_arbiter),
      keys_by_count_(kMaxAttrs + 1) {
  if (arbiter_ != nullptr) {
    // No other thread can reach this engine yet, so registering before the
    // body finishes cannot race a Charge.
    arbiter_->RegisterEngine(
        this, [this](AttrSet attrs) { DropPartitionForArbiter(attrs); });
  }
}

EntropyEngine::~EntropyEngine() {
  if (arbiter_ != nullptr) {
    // Discharges this engine's whole footprint in O(its entries) — the
    // fast path behind AnalysisSession::Release on short-lived relations.
    arbiter_->ReleaseEngine(this);
  }
}

void EntropyEngine::CatchUp() {
  if (relation().epoch() == synced_epoch_.load(std::memory_order_acquire)) {
    return;
  }
  std::vector<std::pair<AttrSet, size_t>> resized;
  std::vector<AttrSet> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (relation().epoch() ==
        synced_epoch_.load(std::memory_order_relaxed)) {
      return;  // another thread completed the catch-up first
    }
    CatchUpLocked(&resized, &dropped);
  }
  if (arbiter_ != nullptr) {
    // Settle with the arbiter outside mu_: it may evict (from this engine
    // or any other on the budget), and evict callbacks re-take engine
    // mutexes — arbiter -> engine is the only permitted order.
    if (!dropped.empty()) arbiter_->Discharge(this, dropped);
    if (!resized.empty()) arbiter_->Resize(this, resized);
  }
}

void EntropyEngine::CatchUpLocked(
    std::vector<std::pair<AttrSet, size_t>>* resized,
    std::vector<AttrSet>* dropped) {
  const uint64_t old_rows = store_.SyncedRows();
  store_.CatchUp();
  const uint64_t epoch = relation().epoch();
  ++stats_.epoch_catchups;

  // Every cached entropy VALUE is stale at the new epoch (H moves with the
  // data); partitions, by contrast, extend. Values recompute on demand
  // from the extended partitions via the same XLogX-table accumulation the
  // cold kernels use, so post-catch-up reads match the cold chain replay
  // bit-for-bit.
  entropies_.clear();

  // Generational revalidation: extension costs O(mass) per partition, so
  // paying it for entries nothing touched during the entire previous epoch
  // — one-shot chain intermediates from a miner run, say — would turn
  // catch-up into the O(cache) rebuild it exists to avoid. Entries used
  // since the last catch-up stay, AND so do their chain ancestors: a hot
  // entry's next extension is a cheap delta only while its recipe's
  // prefixes survive (a base lookup touches just the LONGEST prefix, so
  // without the closure the shorter ones would go idle, get dropped, and
  // force a full replay of every hot chain each epoch). Everything else is
  // dropped (an always-safe cache decision) and its bytes return to the
  // budget.
  std::unordered_map<AttrSet, bool, AttrSetHash> keep;
  keep.reserve(partitions_.size());
  for (const auto& entry : partitions_) {
    if (entry.second.last_used <= last_catchup_tick_) continue;
    keep.emplace(entry.first, true);
    AttrSet prefix;
    const std::vector<uint32_t>& chain = entry.second.chain;
    for (size_t j = 0; j + 1 < chain.size(); ++j) {
      prefix.Add(chain[j]);
      auto pit = partitions_.find(prefix);
      if (pit != partitions_.end() && pit->second.chain.size() == j + 1 &&
          std::equal(pit->second.chain.begin(), pit->second.chain.end(),
                     chain.begin())) {
        keep.emplace(prefix, true);
      }
    }
  }
  std::vector<AttrSet> stale;
  for (const auto& entry : partitions_) {
    if (keep.find(entry.first) == keep.end()) stale.push_back(entry.first);
  }
  for (AttrSet key : stale) {
    EvictPartitionLocked(partitions_.find(key));
    if (arbiter_ != nullptr) dropped->push_back(key);
  }

  // Extend the survivors in ascending set size: a chain's proper prefixes
  // are strictly smaller sets, so every ancestor is extended before its
  // descendants need it. Old forms are kept aside for the parent-block
  // correspondence the delta path walks — but ONLY for entries some child
  // will actually use as a direct parent: pinning every old partition
  // until the end of catch-up would double peak memory and, worse, starve
  // the allocator of the just-freed buffers the next extension would
  // otherwise reuse (measurably slower on large caches).
  std::unordered_map<AttrSet, std::shared_ptr<const Partition>, AttrSetHash>
      old_parts;
  old_parts.reserve(partitions_.size());
  for (const auto& entry : partitions_) {
    const std::vector<uint32_t>& chain = entry.second.chain;
    if (chain.size() < 2) continue;
    if (!entry.second.delta.run_lengths.empty() &&
        entry.second.delta.run_lengths.size() ==
            entry.second.delta.parent_first_rows.size()) {
      // Scan-free child: its recorded correspondence replaces the old
      // parent entirely, so the parent stays unpinned (and therefore
      // eligible for in-place extension itself).
      continue;
    }
    AttrSet parent;
    for (size_t j = 0; j + 1 < chain.size(); ++j) parent.Add(chain[j]);
    auto pit = partitions_.find(parent);
    if (pit != partitions_.end() &&
        pit->second.chain.size() + 1 == chain.size() &&
        std::equal(pit->second.chain.begin(), pit->second.chain.end(),
                   chain.begin())) {
      old_parts.emplace(parent, pit->second.partition);
    }
  }
  for (uint32_t level = 1; level <= kMaxAttrs; ++level) {
    for (KeyEntry& key : keys_by_count_[level]) {
      auto it = partitions_.find(key.set);
      AJD_CHECK(it != partitions_.end());
      CachedPartition& cp = it->second;
      const std::vector<uint32_t>& chain = cp.chain;
      AJD_CHECK(!chain.empty());

      // Deepest cached ancestor whose recorded chain is a strict prefix of
      // this one (set equality alone is not enough: the same AttrSet can
      // have been rebuilt through a different column order after an
      // eviction, and the block correspondence is chain-specific).
      std::shared_ptr<const Partition> parent_new;
      std::shared_ptr<const Partition> parent_old;
      size_t ancestor_len = 0;
      AttrSet prefix_sets[kMaxAttrs];
      AttrSet acc;
      for (size_t j = 0; j + 1 < chain.size(); ++j) {
        acc.Add(chain[j]);
        prefix_sets[j] = acc;  // prefix of length j+1
      }
      for (size_t len = chain.size() - 1; len >= 1; --len) {
        auto pit = partitions_.find(prefix_sets[len - 1]);
        if (pit == partitions_.end()) continue;
        if (pit->second.chain.size() != len ||
            !std::equal(pit->second.chain.begin(), pit->second.chain.end(),
                        chain.begin())) {
          continue;
        }
        parent_new = pit->second.partition;  // extended already (smaller set)
        if (len + 1 == chain.size()) {
          // Only a DIRECT parent's old form matters (the delta path walks
          // its block correspondence); deeper ancestors feed the replay
          // path, which reads just the extended form.
          auto oit = old_parts.find(prefix_sets[len - 1]);
          if (oit != old_parts.end()) parent_old = oit->second;
        }
        ancestor_len = len;
        break;
      }

      std::shared_ptr<const Partition> np;
      // Captured BEFORE extension: the in-place path mutates the cached
      // object, so its post-extension MemoryBytes is the NEW size.
      const size_t old_bytes = cp.partition->MemoryBytes();
      const Column& last_col = store_.column(chain.back());
      // Scan-free correspondence from the previous extension, if intact.
      const bool meta_ok =
          !cp.delta.run_lengths.empty() &&
          cp.delta.run_lengths.size() == cp.delta.parent_first_rows.size();
      const bool kernel_stable =
          parent_new != nullptr &&
          ChooseRefineKernel(last_col.cardinality,
                             parent_new->NumStrippedRows()) ==
              ChooseRefineKernel(cp.last_col_card,
                                 parent_new->NumStrippedRows());
      if (ancestor_len + 1 == chain.size() && kernel_stable &&
          (meta_ok || parent_old != nullptr)) {
        // Direct parent cached with the same chain and the kernel choice
        // did not move: the O(delta + touched blocks) path — scan-free
        // when the previous extension's metadata survived (steady state),
        // seeding that metadata from the retained old parent otherwise. A
        // sole-owner entry (nothing else aliases it — in particular it is
        // nobody's retained old parent) extends IN PLACE: the bit-identical
        // prefix before the first affected block is never copied, which is
        // what makes catch-up track the changed region on locality-friendly
        // streams instead of the partition's whole mass.
        const PartitionDelta* meta = meta_ok ? &cp.delta : nullptr;
        const Partition* old_parent_ptr =
            meta_ok ? nullptr : parent_old.get();
        PartitionDelta next;
        if (cp.partition.use_count() == 1) {
          std::const_pointer_cast<Partition>(cp.partition)
              ->ExtendInPlaceBy(old_parent_ptr, *parent_new, last_col,
                                old_rows, meta, &next);
          np = cp.partition;
        } else {
          np = std::make_shared<Partition>(
              cp.partition->ExtendedBy(old_parent_ptr, *parent_new,
                                       last_col, old_rows, meta, &next));
        }
        cp.delta = std::move(next);
        ++stats_.partitions_extended;
      } else if (chain.size() == 1) {
        np = std::make_shared<Partition>(
            cp.partition->ExtendedOfColumn(last_col, old_rows));
        ++stats_.partitions_extended;
      } else {
        // Fused gap, evicted ancestor, divergent chain, or a column whose
        // cardinality crossed its kernel-selection threshold: replay the
        // remaining chain cold from the deepest extended ancestor (bit-
        // identical to the delta path by kernel reproducibility).
        Partition cur;
        const Partition* base = parent_new.get();
        size_t j = ancestor_len;
        if (base == nullptr) {
          cur = Partition::OfColumn(store_.column(chain[0]));
          base = &cur;
          j = 1;
        }
        for (; j < chain.size(); ++j) {
          cur = base->RefinedBy(store_.column(chain[j]));
          base = &cur;
        }
        np = std::make_shared<Partition>(std::move(cur));
        cp.delta.run_lengths.clear();
        cp.delta.parent_first_rows.clear();
        ++stats_.partitions_replayed;
      }

      const size_t new_bytes = np->MemoryBytes();
      partition_bytes_ += new_bytes;
      partition_bytes_ -= old_bytes;
      key.mass = np->NumStrippedRows();
      cp.partition = std::move(np);
      cp.epoch = epoch;
      cp.last_col_card = last_col.cardinality;
      if (arbiter_ != nullptr) resized->emplace_back(key.set, new_bytes);
    }
  }
  if (arbiter_ == nullptr) EvictToPrivateBudgetLocked(AttrSet());
  last_catchup_tick_ = tick_;
  synced_epoch_.store(epoch, std::memory_order_release);
}

bool EntropyEngine::CachedPartitionInfo(
    AttrSet attrs, std::vector<uint32_t>* chain,
    std::shared_ptr<const Partition>* partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(attrs);
  if (it == partitions_.end()) return false;
  if (chain != nullptr) *chain = it->second.chain;
  if (partition != nullptr) *partition = it->second.partition;
  return true;
}

double EntropyEngine::Entropy(AttrSet attrs) {
  AJD_CHECK(attrs.IsSubsetOf(relation().schema().AllAttrs()));
  CatchUp();
  if (attrs.Empty() || store_.NumRows() == 0) return 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.queries;
    auto it = entropies_.find(attrs);
    if (it != entropies_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  return ComputeEntropy(attrs);
}

double EntropyEngine::ComputeEntropy(AttrSet attrs, bool materialize_final) {
  // The SYNCED row count, not the live one: columns and partitions cover
  // exactly store_.NumRows() rows, and mixing a newer N into the entropy
  // formula would silently skew every value if an append raced the
  // single-writer contract instead of just serving consistently stale
  // answers.
  const uint64_t n = store_.NumRows();

  // Best cached base under the refinement cost model: each remaining step
  // scans at most the base's stripped rows, so refining base T costs about
  // NumStrippedRows(T) * |attrs \ T|, against N * |attrs| for a build from
  // a raw column. This prefers the largest cached subset when masses are
  // comparable, but lets a sharply refined smaller subset (e.g. a cached
  // near-key whose stripped partition is tiny) win over a barely refined
  // big one. Levels are scanned descending, so on a cost tie the first
  // (highest) level wins and within a level the smaller mask does — the
  // choice is deterministic given the cache contents.
  std::shared_ptr<const Partition> base;
  AttrSet base_set;
  // The base's recorded build recipe; every partition cached below extends
  // it, so catch-up can replay (or delta-extend) the exact chain later.
  std::vector<uint32_t> cur_chain;
  // Partition-cache pressure: evictions have happened and the cache sits
  // near its budget, so intermediates cached now are unlikely to survive
  // until a reuse — the signal that lets the fused path run (below)
  // without starving future base lookups. Under an arbiter the pressure is
  // global; it is sampled BEFORE taking mu_ because the engine must never
  // wait on the arbiter while holding its own mutex (lock order is
  // arbiter -> engine, see engine/cache_arbiter.h).
  bool cache_pressure =
      arbiter_ != nullptr && arbiter_->UnderPressure();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (arbiter_ == nullptr) {
      cache_pressure = stats_.evictions > 0 &&
                       partition_bytes_ * 4 >= options_.cache_budget_bytes * 3;
    }
    double best_cost = static_cast<double>(n) *
                       std::max<uint32_t>(attrs.Count(), 1);  // from scratch
    uint32_t best_level = 0;
    for (uint32_t level = attrs.Count(); level >= 1 && best_cost > 0.0;
         --level) {
      // A zero-cost base (an all-singleton subset partition: H is already
      // ln N) cannot be beaten; stop scanning the lattice the moment one
      // appears, or misses over a cache full of collapsed partitions turn
      // the scan itself into the bottleneck.
      for (const KeyEntry& entry : keys_by_count_[level]) {
        if (!entry.set.IsSubsetOf(attrs)) continue;
        const uint32_t steps = attrs.Count() - level;
        const double cost = static_cast<double>(entry.mass) *
                            std::max<uint32_t>(steps, 1);
        const bool better =
            cost < best_cost ||
            (cost == best_cost &&
             (best_level == 0 ||
              (level == best_level && entry.set < base_set)));
        if (better) {
          best_cost = cost;
          best_level = level;
          base_set = entry.set;
          if (best_cost == 0.0) break;
        }
      }
    }
    if (best_level != 0) {
      auto it = partitions_.find(base_set);
      base = it->second.partition;
      cur_chain = it->second.chain;
      it->second.last_used = ++tick_;
      ++stats_.base_reuses;
    }
  }
  if (arbiter_ != nullptr && base != nullptr) {
    // Recency signal for the global LRU; outside mu_ per the lock order.
    arbiter_->Touch(this, base_set);
  }

  // Refine by the missing attributes in order of estimated block-splitting
  // power: the sampled distinct sketch's show-up rate at the current
  // stripped mass (NOT the global cardinality — on skewed data a wide but
  // head-heavy column splits far worse than its cardinality suggests).
  // Early on this is roughly descending cardinality (wide columns shatter
  // blocks fastest); once the mass has collapsed, every saturated column
  // splits equally well and the cheapest one — smallest counting-scratch
  // footprint — goes first. When fusion policy allows (see
  // EngineOptions::max_fuse_columns) and the remaining columns'
  // cardinality product fits the fuse budget, they are applied as ONE
  // composite pass, bit-identical to a chain applied in the same (frozen)
  // column order; an unfused chain may re-rank mid-way as the mass
  // shrinks, so the two can differ by fp accumulation noise.
  std::vector<uint32_t> missing = attrs.Minus(base_set).ToIndices();

  uint64_t builds = 0;
  uint64_t refinements = 0;
  uint64_t fused = 0;
  struct FreshEntry {
    AttrSet set;
    std::shared_ptr<const Partition> partition;
    std::vector<uint32_t> chain;
    uint32_t last_col_card = 0;
  };
  std::vector<FreshEntry> fresh;
  std::shared_ptr<const Partition> cur = std::move(base);
  AttrSet cur_set = base_set;
  double h = 0.0;
  bool have_h = false;
  size_t i = 0;
  while (i < missing.size()) {
    const uint64_t mass = cur == nullptr ? n : cur->NumStrippedRows();
    // Order the remaining columns: max estimated splitting power, narrowest
    // column then index as deterministic tie-breaks (the sketch is itself
    // deterministic, so serial and threaded runs order identically).
    struct ColRank {
      double power;
      uint32_t cardinality;
      uint32_t attr;
    };
    ColRank ranks[kMaxAttrs];
    const size_t tail = missing.size() - i;
    for (size_t j = 0; j < tail; ++j) {
      const uint32_t a = missing[i + j];
      const Column& col = store_.column(a);
      // Quantized to whole distinct values: sampling noise below one value
      // must not reorder columns on unskewed data, where every column ties
      // and the cardinality/index tie-breaks keep the old deterministic
      // order. Genuine skew shifts the estimate by many values and wins.
      const double p = std::floor(std::min(
          store_.sketch(a).EstimateDistinct(mass, col.cardinality),
          static_cast<double>(mass)));
      ranks[j] = {p, col.cardinality, a};
    }
    std::sort(ranks, ranks + tail, [](const ColRank& x, const ColRank& y) {
      if (x.power != y.power) return x.power > y.power;
      if (x.cardinality != y.cardinality) return x.cardinality < y.cardinality;
      return x.attr < y.attr;
    });
    for (size_t j = 0; j < tail; ++j) missing[i + j] = ranks[j].attr;

    // Fused tail: apply every remaining column in one composite pass when
    // policy allows and the code space fits the budget. Fusing skips
    // materializing AND caching the chain's intermediate partitions — the
    // most-refined, smallest-mass entries, i.e. precisely the best future
    // bases — so on reuse-heavy workloads (the miner's overlapping term
    // sets) it loses more downstream than the skipped passes save, and it
    // only runs when those intermediates would not survive anyway (cache
    // pressure) or the caller forced it (max_fuse_columns >= 2).
    const size_t remaining = tail;
    const uint32_t fuse_limit =
        options_.max_fuse_columns == 0
            ? (cache_pressure ? kMaxFuseColumns : 1)
            : std::min<uint32_t>(options_.max_fuse_columns, kMaxFuseColumns);
    if (cur != nullptr && remaining >= 2 && remaining <= fuse_limit) {
      const Column* cols[kMaxFuseColumns];
      for (size_t j = 0; j < remaining; ++j) {
        cols[j] = &store_.column(missing[i + j]);
      }
      const uint64_t composite_card =
          FusedCardinality(cols, remaining, FuseBudget(mass));
      if (composite_card > 0) {
        refinements += remaining;
        ++fused;
        if (!materialize_final) {
          h = cur->RefinedEntropyAll(
              cols, remaining, static_cast<uint32_t>(composite_card), n);
          have_h = true;
          break;
        }
        cur = std::make_shared<Partition>(cur->RefinedByAll(
            cols, remaining, static_cast<uint32_t>(composite_card)));
        cur_set = attrs;
        // A fused pass is bit-identical to the chain in the same column
        // order, so the recipe records the columns flat.
        for (size_t j = 0; j < remaining; ++j) {
          cur_chain.push_back(missing[i + j]);
        }
        fresh.push_back({cur_set, cur, cur_chain,
                         cols[remaining - 1]->cardinality});
        i = missing.size();
        break;
      }
    }

    const uint32_t a = missing[i];
    const Column& col = store_.column(a);
    if (cur == nullptr) {
      cur = std::make_shared<Partition>(Partition::OfColumn(col));
      ++builds;
    } else if (!materialize_final && i + 1 == missing.size()) {
      // Last step: only H is needed, so run the fused counting pass and
      // skip materializing the final partition. If a later query wants it
      // as a base, it refines from the cached prefix at one step's cost.
      h = cur->RefinedEntropy(col, n);
      have_h = true;
      ++refinements;
      break;
    } else {
      cur = std::make_shared<Partition>(cur->RefinedBy(col));
      ++refinements;
    }
    cur_set.Add(a);
    cur_chain.push_back(a);
    fresh.push_back({cur_set, cur, cur_chain, col.cardinality});
    ++i;
    // All rows already unique: every superset partition is all-singletons
    // too, so H(attrs) = ln N and the remaining refinements are no-ops.
    if (cur->NumStrippedRows() == 0) {
      if (cur_set != attrs) {
        // The full set's stripped partition is empty too; cache a fresh
        // empty instance rather than aliasing cur, so the byte accounting
        // doesn't count one allocation twice. Its recipe extends the
        // current chain by the never-applied columns (any order induces
        // the same empty grouping NOW; the recorded order pins the replay
        // after future appends un-singleton it).
        std::vector<uint32_t> rest_chain = cur_chain;
        for (size_t j = i; j < missing.size(); ++j) {
          rest_chain.push_back(missing[j]);
        }
        const uint32_t rest_card =
            store_.column(rest_chain.back()).cardinality;
        fresh.push_back({attrs, std::make_shared<Partition>(),
                         std::move(rest_chain), rest_card});
      }
      break;
    }
  }
  if (!have_h) {
    AJD_CHECK(cur != nullptr);
    h = cur->EntropyNats(n);
  }

  std::vector<std::pair<AttrSet, size_t>> charged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.partition_builds += builds;
    stats_.refinements += refinements;
    stats_.fused_refinements += fused;
    entropies_.emplace(attrs, h);
    for (auto& entry : fresh) {
      const AttrSet set = entry.set;
      const size_t bytes =
          InsertPartitionLocked(set, std::move(entry.partition),
                                std::move(entry.chain), entry.last_col_card);
      if (arbiter_ != nullptr && bytes > 0) charged.emplace_back(set, bytes);
    }
  }
  if (arbiter_ != nullptr && !charged.empty()) {
    // Charge outside mu_: the arbiter may evict — from this engine or any
    // other on the same budget — and its evict callbacks re-take engine
    // mutexes (arbiter -> engine order only).
    arbiter_->Charge(this, charged);
  }
  return h;
}

size_t EntropyEngine::InsertPartitionLocked(AttrSet attrs,
                                            std::shared_ptr<const Partition> p,
                                            std::vector<uint32_t> chain,
                                            uint32_t last_col_card) {
  size_t inserted_bytes = 0;
  auto [it, inserted] = partitions_.emplace(attrs, CachedPartition{});
  if (inserted) {
    inserted_bytes = p->MemoryBytes();
    partition_bytes_ += inserted_bytes;
    keys_by_count_[attrs.Count()].push_back({attrs, p->NumStrippedRows()});
    it->second.partition = std::move(p);
    it->second.chain = std::move(chain);
    it->second.last_col_card = last_col_card;
    it->second.epoch = synced_epoch_.load(std::memory_order_relaxed);
  }
  it->second.last_used = ++tick_;
  // With a shared arbiter attached, eviction is global and happens when the
  // caller charges the arbiter after releasing mu_; the private budget is
  // inert.
  if (arbiter_ != nullptr) return inserted_bytes;
  EvictToPrivateBudgetLocked(attrs);
  return inserted_bytes;
}

void EntropyEngine::EvictToPrivateBudgetLocked(AttrSet spare) {
  // Evict least-recently-used partitions past the budget, sparing the entry
  // just touched. Linear scans are fine: the cache holds at most a few
  // hundred lattice points in practice.
  while (partition_bytes_ > options_.cache_budget_bytes &&
         partitions_.size() > 1) {
    auto victim = partitions_.end();
    uint64_t oldest = UINT64_MAX;
    for (auto jt = partitions_.begin(); jt != partitions_.end(); ++jt) {
      if (jt->first == spare) continue;
      if (jt->second.last_used < oldest) {
        oldest = jt->second.last_used;
        victim = jt;
      }
    }
    if (victim == partitions_.end()) break;
    EvictPartitionLocked(victim);
  }
}

void EntropyEngine::EvictPartitionLocked(
    std::unordered_map<AttrSet, CachedPartition, AttrSetHash>::iterator it) {
  const AttrSet attrs = it->first;
  partition_bytes_ -= it->second.partition->MemoryBytes();
  std::vector<KeyEntry>& bucket = keys_by_count_[attrs.Count()];
  auto pos =
      std::find_if(bucket.begin(), bucket.end(),
                   [&](const KeyEntry& e) { return e.set == attrs; });
  AJD_CHECK(pos != bucket.end());
  *pos = bucket.back();
  bucket.pop_back();
  partitions_.erase(it);
  ++stats_.evictions;
}

void EntropyEngine::DropPartitionForArbiter(AttrSet attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(attrs);
  if (it == partitions_.end()) return;
  EvictPartitionLocked(it);
}

bool EntropyEngine::ParallelBatches() const {
  return (options_.num_threads != 0
              ? options_.num_threads
              : std::max(1u, std::thread::hardware_concurrency())) > 1;
}

uint32_t EntropyEngine::PoolSizeFor(size_t n) const {
  // Demand a few misses per participant: waking the pool for a handful of
  // terms costs more in wakeup latency and cache-mutex contention than the
  // misses themselves (hill-climb sweeps re-batch mostly-warm
  // neighborhoods).
  constexpr size_t kMinMissesPerWorker = 4;
  if (n < 2 * kMinMissesPerWorker) return 1;
  uint32_t threads = options_.num_threads != 0
                         ? options_.num_threads
                         : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<uint32_t>(
      std::min<size_t>(threads, n / kMinMissesPerWorker));
}

void EntropyEngine::BatchEntropy(const AttrSet* sets, size_t n, double* out) {
  CatchUp();
  // Size the pool by *distinct misses*, not batch size: waking workers to
  // service cache hits costs more than the hits themselves (the miner
  // re-batches mostly-warm term lists every split round), and dispatching
  // duplicate sets to the pool would compute the same refinement chain
  // once per copy (the cache dedups only at the final insert).
  std::vector<AttrSet> misses;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      if (!sets[i].Empty() &&
          entropies_.find(sets[i]) == entropies_.end()) {
        misses.push_back(sets[i]);
      }
    }
  }
  std::sort(misses.begin(), misses.end());
  misses.erase(std::unique(misses.begin(), misses.end()), misses.end());
  const uint32_t pool = PoolSizeFor(misses.size());
  if (pool > 1) {
    // Fill the cache from the deduped miss list in parallel, then read the
    // whole batch out of it below.
    std::function<void(size_t)> fn = [this, &misses](size_t i) {
      ComputeEntropy(misses[i]);
    };
    pool_->Run(misses.size(), pool, fn);
  }
  for (size_t i = 0; i < n; ++i) out[i] = Entropy(sets[i]);
}

std::vector<double> EntropyEngine::BatchEntropy(
    const std::vector<AttrSet>& sets) {
  std::vector<double> out(sets.size());
  BatchEntropy(sets.data(), sets.size(), out.data());
  return out;
}

void EntropyEngine::WarmEntropies(const std::vector<AttrSet>& sets) {
  CatchUp();
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (!s.Empty() && entropies_.find(s) == entropies_.end()) {
        need.push_back(s);
      }
    }
  }
  if (store_.NumRows() == 0) return;
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;
  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s);
    return;
  }
  std::function<void(size_t)> fn = [this, &need](size_t i) {
    ComputeEntropy(need[i]);
  };
  pool_->Run(need.size(), pool, fn);
}

void EntropyEngine::PrewarmSubsets(const std::vector<AttrSet>& sets) {
  CatchUp();
  // Only sets without a materialized partition need work; sorting the
  // survivors makes the serial fill order (and thus the exact cached
  // values) independent of the caller's enumeration order.
  std::vector<AttrSet> need;
  need.reserve(sets.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (AttrSet s : sets) {
      if (s.Empty()) continue;
      AJD_CHECK(s.IsSubsetOf(relation().schema().AllAttrs()));
      if (partitions_.find(s) == partitions_.end()) need.push_back(s);
    }
  }
  if (store_.NumRows() == 0) return;
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  if (need.empty()) return;

  const uint32_t pool = PoolSizeFor(need.size());
  if (pool <= 1) {
    for (AttrSet s : need) ComputeEntropy(s, /*materialize_final=*/true);
    return;
  }
  std::function<void(size_t)> fn = [this, &need](size_t i) {
    ComputeEntropy(need[i], /*materialize_final=*/true);
  };
  pool_->Run(need.size(), pool, fn);
}

double EntropyEngine::ConditionalEntropy(AttrSet a, AttrSet c) {
  return Entropy(a.Union(c)) - Entropy(c);
}

double EntropyEngine::ConditionalMutualInformation(AttrSet a, AttrSet b,
                                                   AttrSet c) {
  double h_ac = Entropy(a.Union(c));
  double h_bc = Entropy(b.Union(c));
  double h_abc = Entropy(a.Union(b).Union(c));
  double h_c = Entropy(c);
  double cmi = h_ac + h_bc - h_abc - h_c;
  // Clamp tiny negative values from floating-point cancellation.
  return cmi < 0.0 && cmi > -1e-9 ? 0.0 : cmi;
}

double EntropyEngine::MutualInformation(AttrSet a, AttrSet b) {
  return ConditionalMutualInformation(a, b, AttrSet());
}

size_t EntropyEngine::CacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entropies_.size();
}

size_t EntropyEngine::PartitionCacheSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitions_.size();
}

size_t EntropyEngine::PartitionBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return partition_bytes_;
}

EngineStats EntropyEngine::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ajd
