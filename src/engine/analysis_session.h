// AnalysisSession: one handle owning a ColumnStore + EntropyEngine per
// relation, so that analysis-after-mining (or any sequence of library calls
// over the same relation) reuses every cached entropy and partition.
//
//   AnalysisSession session;
//   auto mined = MineJoinTree(&session, r);            // warms the caches
//   auto report = AnalyzeAjd(&session, r, mined->tree); // hits them
//
// Relations are identified by address + uid: callers must keep a relation
// alive and at a stable address for as long as the session serves queries
// on it. Relations may GROW under the session (Relation::AppendBatch): the
// engine observes the epoch bump and catches up incrementally on the next
// query (engine/entropy_engine.h). If a relation dies and a different one
// reuses its address, the uid mismatch makes EngineFor rebuild the engine
// transparently instead of serving stale values (Release remains the tidy
// way to drop an engine early and return its cache bytes). The session is
// safe to share across threads, INCLUDING concurrently with appends to its
// relations: there is no quiescence rule. A reader pins the (rows, epoch)
// stamp it starts with and computes the cold answer over that prefix while
// batches land; the first reader of a new epoch (or a dedicated
// engine/maintenance.h thread) runs the engine's catch-up while everyone
// else keeps serving the previous stamp. The only remaining single-writer
// requirement is the append side itself: one appender per relation at a
// time (relation/relation.h).
//
// The session is SHARDED across relations: all of its engines share one
// WorkerPool (batches serialize instead of oversubscribing cores) and, by
// default, one CacheArbiter (engine/cache_arbiter.h) holding a single
// partition-cache byte budget, evicted globally-LRU across relations. A
// sweep over dozens of relations therefore spends its memory on whichever
// relations are actually reusing partitions, instead of provisioning an
// even slice per relation.
#ifndef AJD_ENGINE_ANALYSIS_SESSION_H_
#define AJD_ENGINE_ANALYSIS_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "engine/cache_arbiter.h"
#include "engine/entropy_engine.h"
#include "engine/worker_pool.h"
#include "relation/relation.h"

namespace ajd {

/// Session-level tuning: per-engine knobs plus the global cache budget.
struct SessionOptions {
  /// The options every engine of the session is created with. Its
  /// `worker_pool` and `cache_arbiter` are resolved once at session scope
  /// so all engines share one of each; an arbiter injected here is kept
  /// as-is (several sessions can then share ONE budget — in which case
  /// the two budget fields below are ignored), otherwise the session
  /// builds its own from `cache_budget_bytes`. `refine_threads` (intra-op
  /// sharding of ONE large refinement, bit-identical to serial at any
  /// thread count) rides through here too and fans out on the same shared
  /// pool; nested submission from a batch task degrades to serial via the
  /// pool's busy-inline fallback, so enabling both never deadlocks.
  EngineOptions engine;

  /// The session-global partition-cache budget. Unset (the default)
  /// promotes `engine.cache_budget_bytes` from a per-engine cap to ONE
  /// cap shared by every relation. Any explicit value — including
  /// SIZE_MAX for "never evict" — overrides it. 0 disables the shared
  /// arbiter entirely: each engine keeps its private LRU budget (the
  /// legacy, unsharded behavior).
  std::optional<size_t> cache_budget_bytes;

  /// Per-engine eviction floor under the shared budget: an engine at or
  /// below this footprint is never an eviction victim, so one hot relation
  /// cannot starve the others to zero. Self-clamps to budget / num_engines.
  size_t cache_floor_bytes = size_t{1} << 20;
};

/// Owns one EntropyEngine per relation, created lazily on first use.
///
/// The session also owns the two resources its engines share:
///   - the batch pool (EngineOptions::worker_pool, resolved once to the
///     process-wide WorkerPool::Shared() by default), which SERIALIZES
///     batches so a many-relation sweep never runs relations x threads;
///   - the cache arbiter (SessionOptions::cache_budget_bytes), which holds
///     one partition byte budget for all relations and evicts the globally
///     coldest entry, with a per-engine floor.
class AnalysisSession {
 public:
  explicit AnalysisSession(SessionOptions options);
  /// Legacy-shaped constructor: per-engine options with the default
  /// session sharding (the engine budget becomes the session budget).
  explicit AnalysisSession(EngineOptions options = {});

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  /// The engine for `r`, building its ColumnStore on first use. The
  /// returned reference stays valid until Release(r) or the session's
  /// destruction.
  EntropyEngine& EngineFor(const Relation& r);

  /// Drops the engine (and every cached term) for `r`, if any; returns
  /// whether one existed — false for a relation the session never served
  /// (including a second Release of the same relation, which is a no-op).
  /// Call before destroying a relation when the session outlives it —
  /// e.g. experiment sweeps that draw a fresh relation per trial — so the
  /// dead relation's cache bytes return to the budget immediately rather
  /// than when a new relation's uid mismatch rebuilds the engine at that
  /// address. Under the shared arbiter this
  /// discharges the engine's whole accounted footprint in O(its entries),
  /// returning those bytes to the relations that remain. Any EntropyEngine
  /// references previously returned for `r` are invalidated.
  bool Release(const Relation& r);

  /// Writes every engine's current cache generation down to its disk tier
  /// (EntropyEngine::PersistCache) — the planned-shutdown hook that makes
  /// the next process's sessions warm-start. A no-op OK without a
  /// persistent store (EngineOptions::persist_store); otherwise returns the
  /// first failure, after attempting every engine.
  Status PersistAll();

  /// Number of relations with a live engine.
  size_t NumRelations() const;

  /// Aggregated counters across all engines.
  EngineStats TotalStats() const;

  /// The options new engines are created with (worker_pool and
  /// cache_arbiter resolved).
  const EngineOptions& options() const { return engine_options_; }

  /// The batch pool shared by all of this session's engines.
  WorkerPool& worker_pool() const { return *engine_options_.worker_pool; }

  /// The shared cache budget, or nullptr when the session was built with
  /// cache_budget_bytes == 0 (private per-engine budgets).
  CacheArbiter* cache_arbiter() const {
    return engine_options_.cache_arbiter.get();
  }

  /// Bytes currently accounted by the shared budget (0 when unsharded).
  size_t CacheBytes() const;

 private:
  EngineOptions engine_options_;
  mutable std::mutex mu_;
  std::unordered_map<const Relation*, std::unique_ptr<EntropyEngine>>
      engines_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_ANALYSIS_SESSION_H_
