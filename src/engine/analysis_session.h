// AnalysisSession: one handle owning a ColumnStore + EntropyEngine per
// relation, so that analysis-after-mining (or any sequence of library calls
// over the same relation) reuses every cached entropy and partition.
//
//   AnalysisSession session;
//   auto mined = MineJoinTree(&session, r);            // warms the caches
//   auto report = AnalyzeAjd(&session, r, mined->tree); // hits them
//
// Relations are identified by address: callers must keep a relation alive
// and at a stable address for as long as the session serves queries on it.
// The session is safe to share across threads.
#ifndef AJD_ENGINE_ANALYSIS_SESSION_H_
#define AJD_ENGINE_ANALYSIS_SESSION_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "engine/entropy_engine.h"
#include "engine/worker_pool.h"
#include "relation/relation.h"

namespace ajd {

/// Owns one EntropyEngine per relation, created lazily on first use.
///
/// The session also owns the batch pool its engines fan out on: the
/// constructor resolves EngineOptions::worker_pool once (defaulting to the
/// process-wide WorkerPool::Shared()), so every engine of the session —
/// and, by default, every session in the process — submits batches to ONE
/// pool that serializes them, instead of each engine spawning its own
/// threads and oversubscribing the machine on many-relation sweeps.
class AnalysisSession {
 public:
  explicit AnalysisSession(EngineOptions options = {});

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  /// The engine for `r`, building its ColumnStore on first use. The
  /// returned reference stays valid for the session's lifetime.
  EntropyEngine& EngineFor(const Relation& r);

  /// Drops the engine (and every cached term) for `r`, if any; returns
  /// whether one existed. Call before destroying a relation when the
  /// session outlives it — e.g. experiment sweeps that draw a fresh
  /// relation per trial — so a later relation reusing the address gets a
  /// fresh engine instead of tripping the fingerprint guard. Any
  /// EntropyEngine references previously returned for `r` are invalidated.
  bool Release(const Relation& r);

  /// Number of relations with a live engine.
  size_t NumRelations() const;

  /// Aggregated counters across all engines.
  EngineStats TotalStats() const;

  /// The options new engines are created with (worker_pool resolved).
  const EngineOptions& options() const { return options_; }

  /// The batch pool shared by all of this session's engines.
  WorkerPool& worker_pool() const { return *options_.worker_pool; }

 private:
  EngineOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<const Relation*, std::unique_ptr<EntropyEngine>>
      engines_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_ANALYSIS_SESSION_H_
