// ColumnStore: a column-major, dense-coded view of a Relation, shared by
// every entropy computation over that relation.
//
// The row-major Relation is ideal for projection and joins, but entropy
// workloads (J-measure, Theorem 2.2 sandwiches, miner split scoring) touch
// one attribute at a time across ALL rows. The store transposes the data
// and remaps each attribute's value codes to a dense range [0, cardinality)
// so that partition refinement (engine/partition.h) can use counting-sort
// style scratch arrays instead of hashing.
//
// The store is EPOCH-AWARE: relations grow by batch appends
// (relation/relation.h), and the store follows without rebuilding. It
// serves columns as of its synced row count; CatchUp() advances that count
// to the relation's current size, after which each built column extends
// itself by densifying only the appended rows (the per-column raw->dense
// remap survives across epochs, so catch-up is O(delta) per column, not
// O(N)). Dense codes are assigned in first-occurrence order, so the
// extended column is bit-identical to a cold densification of the full
// relation — the property every incremental result above this layer
// bottoms out in.
#ifndef AJD_ENGINE_COLUMN_STORE_H_
#define AJD_ENGINE_COLUMN_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relation/relation.h"

namespace ajd {

/// One dense-coded column: codes[i] in [0, cardinality) for every row i.
/// Dense codes are assigned in first-occurrence order; they preserve
/// equality (two rows share a dense code iff they share the raw value),
/// which is all entropy computations need.
struct Column {
  std::vector<uint32_t> codes;
  uint32_t cardinality = 0;
  /// first_row[c] = the row at which dense code c first appeared. Filled by
  /// the store's densification (incremental extension keeps it current);
  /// left EMPTY by ComposeColumns (a composite's cardinality can be far
  /// larger than the row count). Partition delta-extension reads it to
  /// locate the lone old row of a group a new row just joined.
  std::vector<uint32_t> first_row;
};

/// Sampled distinct-count curve of one column: how many distinct values
/// appear among the first 1, 2, 4, ... sampled rows (rows sampled evenly
/// across the relation, deterministically). Global cardinality says how
/// many values EXIST; this curve says how fast they SHOW UP — on a skewed
/// column the two diverge sharply, and it is the show-up rate that predicts
/// how well refining by the column splits a partition of a given stripped
/// mass.
struct DistinctSketch {
  /// Rows sampled per column (capped by the row count).
  static constexpr uint32_t kMaxSamples = 1024;

  /// distinct_at[i] = distinct values among the first prefix_at[i] sampled
  /// rows. Prefix sizes are 1, 2, 4, ... and finally sample_size.
  std::vector<uint32_t> prefix_at;
  std::vector<uint32_t> distinct_at;
  uint32_t sample_size = 0;

  /// Estimated number of distinct values among `m` rows of the column
  /// (the splitting power against a stripped block of m rows). Piecewise
  /// linear over the curve below the sample size, linear extrapolation
  /// clamped to `cardinality` above it. Monotone in m.
  double EstimateDistinct(uint64_t m, uint32_t cardinality) const;
};

/// Column-major view of a Relation. The relation must outlive the store.
///
/// Columns densify lazily on first touch (thread-safe), so constructing a
/// store — and thus a throwaway EntropyCalculator — costs nothing for the
/// attributes a workload never asks about.
///
/// Epoch contract: column()/sketch() serve data as of SyncedRows(), even if
/// the relation has grown since — concurrent readers keep a consistent
/// view. CatchUp() advances the synced count; it requires external
/// quiescence (no concurrent column()/sketch() calls), which the engine's
/// own catch-up barrier provides. The relation must never shrink.
class ColumnStore {
 public:
  explicit ColumnStore(const Relation* r);

  /// The underlying relation.
  const Relation& relation() const { return *r_; }

  /// Number of rows in the synced view (<= relation().NumRows() between an
  /// append and the next CatchUp).
  uint64_t NumRows() const { return synced_rows_; }

  /// Rows the store has synced to (== NumRows(); spelled out for callers
  /// reasoning about epochs).
  uint64_t SyncedRows() const { return synced_rows_; }

  /// Number of attributes (== relation().NumAttrs()).
  uint32_t NumAttrs() const { return r_->NumAttrs(); }

  /// Advances the synced row count to the relation's current size. Built
  /// columns and sketches extend lazily on their next access. Requires no
  /// concurrent column()/sketch() calls; aborts if the relation shrank
  /// (destroying a relation out from under its store is the bug this
  /// catches).
  void CatchUp();

  /// The dense column for attribute `pos`, built on first use and extended
  /// to the synced row count after a CatchUp. Thread-safe.
  const Column& column(uint32_t pos) const;

  /// The sampled distinct sketch for attribute `pos`, built on first use
  /// (densifies the column if needed) and refreshed after a CatchUp:
  /// extended in place while every row is sampled (n <= kMaxSamples, where
  /// the sample is the identity prefix), resampled at constant cost above
  /// that. Either way the result is bit-identical to a cold BuildSketch of
  /// the full column. Thread-safe.
  const DistinctSketch& sketch(uint32_t pos) const;

  /// Materializes the mixed-radix composition of the given attributes'
  /// columns into one temporary column: codes are
  /// ((c0 * card1 + c1) * card2 + c2)..., cardinality the product (which
  /// must fit uint32). Two rows share a composite code iff they agree on
  /// every listed attribute, so the composite column induces the same
  /// grouping as refining by the columns in sequence.
  Column ComposeColumns(const std::vector<uint32_t>& attrs) const;

 private:
  /// Everything one column needs to grow across epochs: the dense codes,
  /// the surviving raw->dense remap (direct table while the raw code range
  /// stays comparable to the row count, hash map past that), and the
  /// sketch with its retained sample set.
  struct ColumnState {
    mutable std::mutex mu;
    Column col;
    /// Rows densified so far; the lock-free fast path compares it to the
    /// synced count (release store after the codes are fully written).
    std::atomic<uint64_t> built_rows{0};
    bool ever_built = false;
    std::vector<uint32_t> direct_remap;  // raw -> dense, UINT32_MAX = unseen
    std::unordered_map<uint32_t, uint32_t> hash_remap;
    bool use_direct = false;

    DistinctSketch sketch;
    std::atomic<uint64_t> sketch_rows{0};  // rows the sketch covers
    bool sketch_built = false;
    /// Distinct codes among sampled rows, retained only while the sample is
    /// the identity prefix (n <= kMaxSamples) so the curve can extend
    /// without re-reading old rows.
    std::unordered_set<uint32_t> sketch_seen;
  };

  /// Densifies rows [st.built_rows, target) into st.col. Requires st.mu.
  void ExtendColumnLocked(ColumnState& st, uint32_t pos,
                          uint64_t target) const;

  /// Builds or extends the sketch to cover `target` rows. Requires st.mu
  /// and st.col built to target.
  void RefreshSketchLocked(ColumnState& st, uint64_t target) const;

  const Relation* r_;
  uint64_t synced_rows_ = 0;
  std::unique_ptr<ColumnState[]> states_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_COLUMN_STORE_H_
