// ColumnStore: a column-major, dense-coded view of a Relation, built once
// and shared by every entropy computation over that relation.
//
// The row-major Relation is ideal for projection and joins, but entropy
// workloads (J-measure, Theorem 2.2 sandwiches, miner split scoring) touch
// one attribute at a time across ALL rows. The store transposes the data
// and remaps each attribute's value codes to a dense range [0, cardinality)
// so that partition refinement (engine/partition.h) can use counting-sort
// style scratch arrays instead of hashing.
#ifndef AJD_ENGINE_COLUMN_STORE_H_
#define AJD_ENGINE_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "relation/relation.h"

namespace ajd {

/// One dense-coded column: codes[i] in [0, cardinality) for every row i.
/// Dense codes are assigned in first-occurrence order; they preserve
/// equality (two rows share a dense code iff they share the raw value),
/// which is all entropy computations need.
struct Column {
  std::vector<uint32_t> codes;
  uint32_t cardinality = 0;
};

/// Sampled distinct-count curve of one column: how many distinct values
/// appear among the first 1, 2, 4, ... sampled rows (rows sampled evenly
/// across the relation, deterministically). Global cardinality says how
/// many values EXIST; this curve says how fast they SHOW UP — on a skewed
/// column the two diverge sharply, and it is the show-up rate that predicts
/// how well refining by the column splits a partition of a given stripped
/// mass.
struct DistinctSketch {
  /// Rows sampled per column (capped by the row count).
  static constexpr uint32_t kMaxSamples = 1024;

  /// distinct_at[i] = distinct values among the first prefix_at[i] sampled
  /// rows. Prefix sizes are 1, 2, 4, ... and finally sample_size.
  std::vector<uint32_t> prefix_at;
  std::vector<uint32_t> distinct_at;
  uint32_t sample_size = 0;

  /// Estimated number of distinct values among `m` rows of the column
  /// (the splitting power against a stripped block of m rows). Piecewise
  /// linear over the curve below the sample size, linear extrapolation
  /// clamped to `cardinality` above it. Monotone in m.
  double EstimateDistinct(uint64_t m, uint32_t cardinality) const;
};

/// Column-major view of a Relation. The relation must outlive the store.
///
/// Columns densify lazily on first touch (thread-safe), so constructing a
/// store — and thus a throwaway EntropyCalculator — costs nothing for the
/// attributes a workload never asks about.
class ColumnStore {
 public:
  explicit ColumnStore(const Relation* r);

  /// The underlying relation.
  const Relation& relation() const { return *r_; }

  /// Number of rows (== relation().NumRows()).
  uint64_t NumRows() const { return r_->NumRows(); }

  /// Number of attributes (== relation().NumAttrs()).
  uint32_t NumAttrs() const { return r_->NumAttrs(); }

  /// The dense column for attribute `pos`, built on first use.
  const Column& column(uint32_t pos) const;

  /// The sampled distinct sketch for attribute `pos`, built on first use
  /// (densifies the column if needed). Thread-safe.
  const DistinctSketch& sketch(uint32_t pos) const;

  /// Materializes the mixed-radix composition of the given attributes'
  /// columns into one temporary column: codes are
  /// ((c0 * card1 + c1) * card2 + c2)..., cardinality the product (which
  /// must fit uint32). Two rows share a composite code iff they agree on
  /// every listed attribute, so the composite column induces the same
  /// grouping as refining by the columns in sequence.
  Column ComposeColumns(const std::vector<uint32_t>& attrs) const;

 private:
  const Relation* r_;
  mutable std::vector<Column> columns_;
  mutable std::unique_ptr<std::once_flag[]> built_;
  mutable std::vector<DistinctSketch> sketches_;
  mutable std::unique_ptr<std::once_flag[]> sketch_built_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_COLUMN_STORE_H_
