// ColumnStore: a column-major, dense-coded view of a Relation, built once
// and shared by every entropy computation over that relation.
//
// The row-major Relation is ideal for projection and joins, but entropy
// workloads (J-measure, Theorem 2.2 sandwiches, miner split scoring) touch
// one attribute at a time across ALL rows. The store transposes the data
// and remaps each attribute's value codes to a dense range [0, cardinality)
// so that partition refinement (engine/partition.h) can use counting-sort
// style scratch arrays instead of hashing.
#ifndef AJD_ENGINE_COLUMN_STORE_H_
#define AJD_ENGINE_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "relation/relation.h"

namespace ajd {

/// One dense-coded column: codes[i] in [0, cardinality) for every row i.
/// Dense codes are assigned in first-occurrence order; they preserve
/// equality (two rows share a dense code iff they share the raw value),
/// which is all entropy computations need.
struct Column {
  std::vector<uint32_t> codes;
  uint32_t cardinality = 0;
};

/// Column-major view of a Relation. The relation must outlive the store.
///
/// Columns densify lazily on first touch (thread-safe), so constructing a
/// store — and thus a throwaway EntropyCalculator — costs nothing for the
/// attributes a workload never asks about.
class ColumnStore {
 public:
  explicit ColumnStore(const Relation* r);

  /// The underlying relation.
  const Relation& relation() const { return *r_; }

  /// Number of rows (== relation().NumRows()).
  uint64_t NumRows() const { return r_->NumRows(); }

  /// Number of attributes (== relation().NumAttrs()).
  uint32_t NumAttrs() const { return r_->NumAttrs(); }

  /// The dense column for attribute `pos`, built on first use.
  const Column& column(uint32_t pos) const;

 private:
  const Relation* r_;
  mutable std::vector<Column> columns_;
  mutable std::unique_ptr<std::once_flag[]> built_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_COLUMN_STORE_H_
