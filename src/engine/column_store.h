// ColumnStore: a column-major, dense-coded view of a Relation, shared by
// every entropy computation over that relation.
//
// The row-major Relation is ideal for projection and joins, but entropy
// workloads (J-measure, Theorem 2.2 sandwiches, miner split scoring) touch
// one attribute at a time across ALL rows. The store transposes the data
// and remaps each attribute's value codes to a dense range [0, cardinality)
// so that partition refinement (engine/partition.h) can use counting-sort
// style scratch arrays instead of hashing.
//
// The store is EPOCH-AWARE: relations grow by batch appends
// (relation/relation.h), and the store follows without rebuilding. It
// serves columns as of its synced row count; CatchUp()/CatchUpTo() advance
// that count, after which each built column extends itself by densifying
// only the appended rows (the per-column raw->dense remap survives across
// epochs, so catch-up is O(delta) per column, not O(N)). Dense codes are
// assigned in first-occurrence order, so the extended column is
// bit-identical to a cold densification of the full relation — the
// property every incremental result above this layer bottoms out in.
//
// CONCURRENCY: columns and sketches are served as immutable VIEWS published
// RCU-style. Extension writes the new tail into growable owner-side
// buffers (never mutating bytes a published view can see; regrows move to
// a fresh buffer kept alive by the old views) and then publishes a new
// frozen view with an atomic shared_ptr store. Readers pinned at an older
// row count keep reading their prefix concurrently with extension —
// ColumnAt()/SketchAt() derive a consistent prefix view for ANY pinned row
// count from the same grown buffers, because first-occurrence ordering
// makes every prefix of the grown codes exactly the cold densification of
// that prefix.
#ifndef AJD_ENGINE_COLUMN_STORE_H_
#define AJD_ENGINE_COLUMN_STORE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relation/relation.h"

namespace ajd {

/// Borrowed, immutable view of a code array (a frozen prefix of a column's
/// grown storage). Size and bytes never change for the lifetime of the
/// view; the owning Column's `owner` field keeps the storage alive.
class CodeSpan {
 public:
  CodeSpan() = default;
  CodeSpan(const uint32_t* data, size_t size) : data_(data), size_(size) {}

  const uint32_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t operator[](size_t i) const { return data_[i]; }
  const uint32_t* begin() const { return data_; }
  const uint32_t* end() const { return data_ + size_; }

  /// Deep element-wise equality (mirrors the std::vector comparisons the
  /// view replaced; tests compare incremental views against cold ones).
  friend bool operator==(const CodeSpan& a, const CodeSpan& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const CodeSpan& a, const CodeSpan& b) {
    return !(a == b);
  }
  friend std::ostream& operator<<(std::ostream& os, const CodeSpan& s) {
    os << "CodeSpan{";
    for (size_t i = 0; i < s.size_ && i < 16; ++i) {
      if (i > 0) os << ", ";
      os << s.data_[i];
    }
    if (s.size_ > 16) os << ", ...";
    return os << "} (" << s.size_ << " codes)";
  }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
};

/// One dense-coded column: codes[i] in [0, cardinality) for every row i.
/// Dense codes are assigned in first-occurrence order; they preserve
/// equality (two rows share a dense code iff they share the raw value),
/// which is all entropy computations need.
///
/// A Column is a cheap VALUE: two spans, a cardinality frozen at the
/// column's row count, and a shared_ptr keeping the underlying storage
/// alive. Copy it freely; the bytes it views are immutable.
struct Column {
  CodeSpan codes;
  uint32_t cardinality = 0;
  /// first_row[c] = the row at which dense code c first appeared (strictly
  /// ascending — which is also what lets the store derive the cardinality
  /// of ANY prefix by binary search). Filled by the store's densification;
  /// left EMPTY by ComposeColumns / MakeOwnedColumn-without-first_row (a
  /// composite's cardinality can be far larger than the row count).
  /// Partition delta-extension reads it to locate the lone old row of a
  /// group a new row just joined.
  CodeSpan first_row;
  /// Keeps the viewed storage alive; opaque to readers.
  std::shared_ptr<const void> owner;
};

/// Builds a self-owning Column from materialized vectors. The standalone
/// construction path for tests, benchmarks, and composite columns.
Column MakeOwnedColumn(std::vector<uint32_t> codes, uint32_t cardinality,
                       std::vector<uint32_t> first_row = {});

/// Sampled distinct-count curve of one column: how many distinct values
/// appear among the first 1, 2, 4, ... sampled rows (rows sampled evenly
/// across the relation, deterministically). Global cardinality says how
/// many values EXIST; this curve says how fast they SHOW UP — on a skewed
/// column the two diverge sharply, and it is the show-up rate that predicts
/// how well refining by the column splits a partition of a given stripped
/// mass.
struct DistinctSketch {
  /// Rows sampled per column (capped by the row count).
  static constexpr uint32_t kMaxSamples = 1024;

  /// distinct_at[i] = distinct values among the first prefix_at[i] sampled
  /// rows. Prefix sizes are 1, 2, 4, ... and finally sample_size.
  std::vector<uint32_t> prefix_at;
  std::vector<uint32_t> distinct_at;
  uint32_t sample_size = 0;

  /// Estimated number of distinct values among `m` rows of the column
  /// (the splitting power against a stripped block of m rows). Piecewise
  /// linear over the curve below the sample size, linear extrapolation
  /// clamped to `cardinality` above it. Monotone in m.
  double EstimateDistinct(uint64_t m, uint32_t cardinality) const;
};

/// Column-major view of a Relation. The relation must outlive the store.
///
/// Columns densify lazily on first touch (thread-safe), so constructing a
/// store — and thus a throwaway EntropyCalculator — costs nothing for the
/// attributes a workload never asks about.
///
/// Epoch contract: column()/sketch() serve data as of SyncedRows(), even if
/// the relation has grown since. ColumnAt()/SketchAt() serve a view pinned
/// at ANY row count <= relation().NumRows(), concurrently with extension:
/// readers of an old pin and the catch-up extending toward a new one never
/// block each other or race on bytes. CatchUpTo() only advances the synced
/// frontier (a single release store); the engine's catch-up owner calls it.
/// The relation must never shrink.
class ColumnStore {
 public:
  explicit ColumnStore(const Relation* r);

  /// The underlying relation.
  const Relation& relation() const { return *r_; }

  /// Number of rows in the synced view (<= relation().NumRows() between an
  /// append and the next CatchUp).
  uint64_t NumRows() const {
    return synced_rows_.load(std::memory_order_acquire);
  }

  /// Rows the store has synced to (== NumRows(); spelled out for callers
  /// reasoning about epochs).
  uint64_t SyncedRows() const { return NumRows(); }

  /// Number of attributes (== relation().NumAttrs()).
  uint32_t NumAttrs() const { return r_->NumAttrs(); }

  /// Advances the synced row count to the relation's current size. Built
  /// columns and sketches extend lazily on their next access. Safe to call
  /// while readers hold pinned views (they keep their pins); only one
  /// catch-up owner should call it at a time (the engine's catch-up mutex
  /// provides that). Aborts if the relation shrank (destroying a relation
  /// out from under its store is the bug this catches).
  void CatchUp();

  /// Advances the synced row count to `rows` (no-op when already past it).
  /// Same ownership rules as CatchUp().
  void CatchUpTo(uint64_t rows);

  /// The dense column for attribute `pos` as of the synced row count,
  /// built on first use and extended after a CatchUp. Thread-safe; the
  /// returned value stays consistent no matter what the store does next.
  Column column(uint32_t pos) const;

  /// The dense column for attribute `pos` pinned at exactly `rows` rows
  /// (`rows` <= relation().NumRows()). Bit-identical to a cold
  /// densification of the first `rows` rows. Thread-safe and safe
  /// concurrently with extension toward any other row count.
  Column ColumnAt(uint32_t pos, uint64_t rows) const;

  /// The sampled distinct sketch for attribute `pos` as of the synced row
  /// count, built on first use (densifies the column if needed) and
  /// refreshed after a CatchUp: extended copy-on-write while every row is
  /// sampled (n <= kMaxSamples, where the sample is the identity prefix),
  /// resampled at constant cost above that. Either way the result is
  /// bit-identical to a cold BuildSketch of the full column. Thread-safe;
  /// the reference stays valid until the store next refreshes this
  /// attribute's sketch (quiesced and steady-state callers; concurrent
  /// readers use SketchAt, which hands out a keepalive).
  const DistinctSketch& sketch(uint32_t pos) const;

  /// The sketch for attribute `pos` pinned at exactly `rows` rows,
  /// bit-identical to BuildSketch over the first `rows` rows. The returned
  /// pointer keeps the sketch alive independent of later refreshes.
  std::shared_ptr<const DistinctSketch> SketchAt(uint32_t pos,
                                                 uint64_t rows) const;

  /// Materializes the mixed-radix composition of the given attributes'
  /// columns into one temporary column: codes are
  /// ((c0 * card1 + c1) * card2 + c2)..., cardinality the product (which
  /// must fit uint32). Two rows share a composite code iff they agree on
  /// every listed attribute, so the composite column induces the same
  /// grouping as refining by the columns in sequence.
  Column ComposeColumns(const std::vector<uint32_t>& attrs) const;

 private:
  /// Growable owner-side storage one column's views alias into. In-place
  /// growth only ever writes past the longest published prefix; when
  /// capacity runs out the storage moves to a fresh ColumnBuffers and old
  /// views keep the old one alive through their Column::owner.
  struct ColumnBuffers {
    std::vector<uint32_t> codes;
    std::vector<uint32_t> first_row;
  };

  /// An immutable sketch together with the row count it covers.
  struct SketchBox {
    DistinctSketch sketch;
    uint64_t rows = 0;
  };

  /// Everything one column needs to grow across epochs: the growable
  /// buffers, the surviving raw->dense remap (direct table while the raw
  /// code range stays comparable to the row count, hash map past that),
  /// the published frozen views, and the sketch state.
  struct ColumnState {
    mutable std::mutex mu;
    /// Owner-side storage (guarded by mu for growth).
    std::shared_ptr<ColumnBuffers> buffers;
    /// Distinct codes among the built rows; mirrors the published view's
    /// cardinality. Guarded by mu.
    uint32_t cardinality = 0;
    /// Rows densified so far; release-stored after the codes are fully
    /// written and the view republished.
    std::atomic<uint64_t> built_rows{0};
    bool ever_built = false;
    std::vector<uint32_t> direct_remap;  // raw -> dense, UINT32_MAX = unseen
    std::unordered_map<uint32_t, uint32_t> hash_remap;
    bool use_direct = false;

    /// Published frozen view over the built rows (std::atomic_load/store
    /// access only outside mu).
    std::shared_ptr<const Column> view;
    /// One-slot cache of the most recently derived pinned-prefix view
    /// (atomic access). Keeps steady single-pin readers allocation-free.
    mutable std::shared_ptr<const Column> pinned_view;

    /// Published sketch (atomic access) + one-slot pinned-derivation cache.
    std::shared_ptr<const SketchBox> sketch;
    mutable std::shared_ptr<const SketchBox> pinned_sketch;
    /// Distinct codes among sampled rows, retained only while the sample is
    /// the identity prefix (n <= kMaxSamples) so the curve can extend
    /// without re-reading old rows. Owner-side, guarded by mu.
    std::unordered_set<uint32_t> sketch_seen;
    bool sketch_built = false;
  };

  /// Densifies rows [st.built_rows, target) into st.buffers and publishes
  /// a new frozen view. Requires st.mu.
  void ExtendColumnLocked(ColumnState& st, uint32_t pos,
                          uint64_t target) const;

  /// Builds or extends the published sketch (copy-on-write) to cover
  /// `target` rows of `col` (a view over exactly `target` rows). Requires
  /// st.mu.
  void RefreshSketchLocked(ColumnState& st, const Column& col,
                           uint64_t target) const;

  /// The frozen view for `pos` covering exactly `rows` rows, building or
  /// extending the column as needed and deriving a prefix view when the
  /// built frontier is past `rows`.
  std::shared_ptr<const Column> ViewAt(uint32_t pos, uint64_t rows) const;

  /// The sketch box for `pos` covering exactly `rows` rows.
  std::shared_ptr<const SketchBox> SketchBoxAt(uint32_t pos,
                                               uint64_t rows) const;

  const Relation* r_;
  std::atomic<uint64_t> synced_rows_{0};
  std::unique_ptr<ColumnState[]> states_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_COLUMN_STORE_H_
