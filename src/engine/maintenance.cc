#include "engine/maintenance.h"

#include "engine/entropy_engine.h"

namespace ajd {

EpochMaintenance::EpochMaintenance(EntropyEngine* engine,
                                   std::chrono::microseconds poll)
    : engine_(engine), poll_(poll), thread_([this] { Loop(); }) {}

EpochMaintenance::~EpochMaintenance() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void EpochMaintenance::Poke() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pokes_;
  }
  cv_.notify_all();
}

void EpochMaintenance::Loop() {
  uint64_t seen_pokes = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Wait for a poke, a stop, or the poll interval — whichever first.
      // Missing a wakeup is harmless (the next poll catches up); the poke
      // counter just keeps bursts from coalescing into a sleep.
      cv_.wait_for(lock, poll_,
                   [&] { return stop_ || pokes_ != seen_pokes; });
      if (stop_) return;
      seen_pokes = pokes_;
    }
    // Outside mu_: CatchUp can run long, and Poke must never block on it.
    // A no-op when already synced (one atomic compare), so polling is
    // cheap; when an epoch is pending this thread usually wins the
    // catch-up try-lock simply because it gets there first, and readers
    // keep serving the previous stamp throughout.
    try {
      engine_->CatchUp();
    } catch (...) {
      // CatchUp swallows its own failures, but this thread's top frame
      // must still never unwind — a dead maintenance thread would silently
      // stop epoch syncs (and an escaped exception would terminate the
      // process). The next poll simply retries.
    }
  }
}

}  // namespace ajd
