// WorkerPool: a persistent, lazily-spawned batch-work pool shared across
// EntropyEngines.
//
// Every engine used to own a private pool, so a many-relation sweep (one
// engine per relation, all batching at once) oversubscribed the machine:
// R relations x T threads each. The pool is now owned at session scope —
// AnalysisSession resolves one pool for all of its engines, and the
// process-wide default pool is shared by everything that doesn't ask for
// its own — and SERIALIZES batches: one batch runs at a time, so the
// thread roster is bounded by the widest single batch, never by the number
// of engines.
//
// Workers are spawned lazily on first use and parked between batches (the
// miner submits one small batch per hill-climb sweep, so per-batch thread
// spawns would dominate the work).
//
// A submitter that finds the pool busy does NOT wait: it processes its own
// batch inline on the calling thread. Sharded sessions batch from several
// engines at once (engine/cache_arbiter.h charges concurrently either
// way), and head-of-line blocking behind another relation's fan-out would
// waste exactly the thread the submitter already owns. The same fallback
// makes NESTED submission safe: a pool task that itself calls Run() (the
// sharded refine kernels do, when a batched query crosses the intra-op
// threshold) finds submit_mu_ held by its own enclosing batch and degrades
// to the inline loop — serial on that task's thread, never a deadlock.
//
// Workers shed oversized thread-local kernel scratch (refine_kernels.h's
// ShedOversizedRefineScratch) each time they park: ScratchGuard polices a
// single call's spike, but its keep allowance would otherwise linger on
// every pool thread for the pool's lifetime.
//
// Failure semantics: a task that throws is CONTAINED. The exception never
// reaches a pool thread's top frame (no std::terminate) and never strands
// the batch latch — every index of the batch is still claimed and counted,
// remaining tasks run to completion, and the FIRST exception (in completion
// order) is rethrown on the submitting thread after the batch drains. The
// workers<=1 and busy-pool inline fallbacks behave identically: finish the
// whole index range, then rethrow the first failure. The pool itself stays
// healthy across a throwing batch (basic guarantee for the pool, and the
// submitter sees exactly one exception per failed batch).
#ifndef AJD_ENGINE_WORKER_POOL_H_
#define AJD_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ajd {

/// Shared batch pool. Thread-safe; concurrent Run() calls from different
/// engines queue behind one another instead of fighting for cores.
class WorkerPool {
 public:
  WorkerPool();
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(0..n-1) with up to `workers` total participants (the calling
  /// thread included), blocking until every index is processed. With
  /// workers <= 1 — or when another submitter's batch currently owns the
  /// pool — the calling thread simply loops; no pool involvement, no
  /// waiting behind the other batch.
  ///
  /// If any fn(i) throws, every remaining index still runs, the batch
  /// completes, and the first exception raised is rethrown here on the
  /// calling thread. Pool threads survive.
  void Run(size_t n, uint32_t workers, const std::function<void(size_t)>& fn);

  /// Number of parked worker threads currently spawned.
  size_t NumThreads() const;

  /// The process-wide default pool: what every AnalysisSession (and every
  /// stand-alone engine) uses unless EngineOptions::worker_pool injects a
  /// different one.
  static const std::shared_ptr<WorkerPool>& Shared();

 private:
  /// One batch in flight. Heap-held via shared_ptr so a worker waking late
  /// for an already-finished batch touches valid (exhausted) state instead
  /// of a reused slot. `fn` points into the submitting frame; it is only
  /// dereferenced for claimed indexes < n, all of which are processed
  /// before the submitter returns.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    /// Parked workers beyond this many skip the batch: notify_all wakes
    /// the whole roster, but a batch sized for fewer participants must not
    /// pay the contention of all of them.
    uint32_t max_helpers = 0;
    std::atomic<uint32_t> helpers{0};
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    /// First exception thrown by any task of this batch (completion
    /// order); rethrown on the submitter once the batch drains. Guarded by
    /// err_mu; the submitter reads it only after observing completed == n.
    std::mutex err_mu;
    std::exception_ptr first_error;
  };

  /// Claims and processes indexes of `batch` until none remain; notifies
  /// the submitter when the last index completes.
  void TakeBatchShare(Batch* batch);

  /// The parked worker loop: wait for a new batch epoch, share in it,
  /// repeat until shutdown.
  void WorkerLoop();

  /// Serializes batches across submitters (one batch at a time); mu_
  /// guards the worker roster, the current-batch slot, and the epoch
  /// counter the parked workers watch.
  std::mutex submit_mu_;
  mutable std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  std::shared_ptr<Batch> batch_;
  uint64_t epoch_ = 0;
  bool shutdown_ = false;
};

}  // namespace ajd

#endif  // AJD_ENGINE_WORKER_POOL_H_
