#include "engine/worker_pool.h"

#include "engine/refine_kernels.h"

namespace ajd {

WorkerPool::WorkerPool() = default;

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

namespace {

// Inline fallback shared by the workers<=1 and busy-pool paths: run every
// index even if one throws, then surface the first failure — identical
// semantics to a pool-run batch.
void RunInlineContained(size_t n, const std::function<void(size_t)>& fn) {
  std::exception_ptr first_error;
  for (size_t i = 0; i < n; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

// True while this thread is inside a Run() it submitted or is helping
// with: a nested Run from such a frame must not touch submit_mu_ at all
// (the submitter's own frame already OWNS it, and try_lock on a mutex the
// thread holds is undefined for std::mutex) — it degrades straight to the
// inline loop, which is the documented nested-submission contract.
thread_local bool t_in_batch = false;

}  // namespace

void WorkerPool::Run(size_t n, uint32_t workers,
                     const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers <= 1 || t_in_batch) {
    RunInlineContained(n, fn);
    return;
  }
  std::unique_lock<std::mutex> submit(submit_mu_, std::try_to_lock);
  if (!submit.owns_lock()) {
    // Another engine's batch owns the pool. Parking here would serialize
    // cross-engine fan-outs end to end — with one session sharding many
    // relations, a sweep's second engine would idle behind the first's
    // whole batch. The calling thread exists either way, so spend it:
    // process this batch inline and leave the roster to the batch that
    // got there first. Values land in the same caches either way (the
    // engine documents pool-vs-serial agreement to fp accumulation
    // noise).
    RunInlineContained(n, fn);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  batch->max_helpers = workers - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (threads_.size() + 1 < workers) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
    batch_ = batch;
    ++epoch_;
  }
  wake_cv_.notify_all();
  TakeBatchShare(batch.get());
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch->completed.load() == n; });
  }
  // All tasks finished (completed == n observed above), so first_error is
  // final; the lock orders its write with this read.
  std::exception_ptr first_error;
  {
    std::lock_guard<std::mutex> elock(batch->err_mu);
    first_error = batch->first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

size_t WorkerPool::NumThreads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

const std::shared_ptr<WorkerPool>& WorkerPool::Shared() {
  static const std::shared_ptr<WorkerPool> pool =
      std::make_shared<WorkerPool>();
  return pool;
}

void WorkerPool::TakeBatchShare(Batch* batch) {
  const size_t n = batch->n;
  // Mark the thread batch-bound for the duration: a task that submits a
  // nested Run is routed straight to the inline loop (see t_in_batch).
  const bool was_in_batch = t_in_batch;
  t_in_batch = true;
  while (true) {
    size_t i = batch->next.fetch_add(1);
    if (i >= n) {
      t_in_batch = was_in_batch;
      return;
    }
    try {
      (*batch->fn)(i);
    } catch (...) {
      // Contain the failure: record the first one for the submitter and
      // keep counting this index as completed so the batch latch can
      // never deadlock and no pool thread unwinds into std::terminate.
      std::lock_guard<std::mutex> elock(batch->err_mu);
      if (!batch->first_error) batch->first_error = std::current_exception();
    }
    if (batch->completed.fetch_add(1) + 1 == n) {
      // Notify under the waiter's mutex so the wakeup cannot be missed.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    wake_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
    if (shutdown_) return;
    seen = epoch_;
    // Snapshot the batch under the lock: a worker waking after this batch
    // already finished (and a new one started) must share in the state its
    // epoch observation belongs to, never a recycled slot.
    std::shared_ptr<Batch> batch = batch_;
    lock.unlock();
    if (batch->helpers.fetch_add(1) < batch->max_helpers) {
      TakeBatchShare(batch.get());
    }
    // About to park: shed any kernel scratch this batch spiked on this
    // thread. ScratchGuard's end-of-call shed polices a single refinement,
    // but its steady-state keep allowance would otherwise linger on every
    // pool thread for the pool's lifetime — N threads x keep-sized buffers
    // held by a pool that may see no refinement work for hours. Outside
    // the lock: shedding is thread-local and must not extend the roster's
    // critical section.
    ShedOversizedRefineScratch();
    lock.lock();
  }
}

}  // namespace ajd
