#include "engine/refine_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "engine/worker_pool.h"
#include "util/check.h"
#include "util/math.h"

#if defined(__x86_64__) && !defined(AJD_DISABLE_SIMD)
#include <immintrin.h>
#define AJD_SIMD_AVX2 1
#elif defined(__ARM_NEON) && !defined(AJD_DISABLE_SIMD)
#include <arm_neon.h>
#define AJD_SIMD_NEON 1
#endif

namespace ajd {

namespace {

// Thread-local scratch shared by every kernel. Invariant: `count` is
// all-zero between blocks and between calls — every user resets exactly the
// entries it touched.
struct RefineScratch {
  std::vector<uint32_t> count;      // code -> multiplicity within the block
  std::vector<uint32_t> offset;     // code -> write cursor (materializing)
  std::vector<uint32_t> touched;    // codes seen in the current block
  std::vector<uint32_t> first_pos;  // finale: per-group emit-slot flags
  std::vector<uint32_t> comp;       // fused: composite code per block row
  std::vector<uint64_t> pairs;      // sort: (code << 32) | row
  std::vector<uint64_t> pairs_tmp;  // sort: radix ping-pong buffer
  std::vector<uint32_t> groups;     // sort/fused: flat group/leaf workspace
  std::vector<uint32_t> leaf_keys;  // fused: (k-1) chain-order keys per leaf
  // Fused-path per-prefix-level state (FusedTally/ChainOrderLeaves):
  std::vector<uint32_t> lvl_seq;     // arena: prefix slot -> block rank
  std::vector<uint32_t> lvl_touched; // arena slots to reset next block
  // Chain-finale (RefineByColumnWithEntropy) per-c1-group state:
  std::vector<uint32_t> count1;     // c1 code -> multiplicity within block
  std::vector<uint32_t> seq1;       // c1 code -> index into touched1
  std::vector<uint32_t> touched1;   // c1 codes seen, first-occurrence order
  std::vector<uint32_t> leaf_group; // leaf -> its c1 group's seq, + cursors
  // Output staging: kernels build the refined partition here (reused
  // across calls, so no per-call allocation or zero-fill) and copy the
  // exact-size result out once at the end — the cached partition then
  // holds no dead capacity at all.
  std::vector<uint32_t> stage_rows;
  std::vector<uint32_t> stage_starts;
  size_t block_watermark = 0;       // largest block touched this call
  size_t stage_watermark = 0;       // largest staged mass this call
};

RefineScratch& LocalScratch() {
  static thread_local RefineScratch scratch;
  return scratch;
}

// c ln c for small integer counts, which is nearly every stripped block:
// entropy passes call it once per distinct group, and std::log costs more
// than the whole tally of a tiny block. Entries are XLogX(c) verbatim, so
// substituting the table is bit-identical.
constexpr uint32_t kXLogXTableSize = 1024;

}  // namespace

double XLogXCount(uint32_t c) {
  static const std::vector<double>& table = *[] {
    auto* t = new std::vector<double>(kXLogXTableSize);
    for (uint32_t i = 0; i < kXLogXTableSize; ++i) {
      (*t)[i] = XLogX(static_cast<double>(i));
    }
    return t;
  }();
  return c < kXLogXTableSize ? table[c] : XLogX(static_cast<double>(c));
}

namespace {

// Releases pathologically large scratch when the guarded call finishes: a
// single refinement against a near-key column (or a wide composite) sizes
// the code-indexed arrays to that cardinality, and without the guard every
// worker thread would pin that allocation for the rest of the process. The
// sort buffers are sized by the largest block instead and shed by the same
// spike rule.
class ScratchGuard {
 public:
  // cardinality == 0 means the call needs no code-indexed arrays (sort
  // path); they are left untouched and only the block-sized buffers are
  // policed.
  ScratchGuard(RefineScratch* scratch, uint64_t cardinality)
      : scratch_(scratch), cardinality_(cardinality) {
    scratch_->block_watermark = 0;
    scratch_->stage_watermark = 0;
    if (cardinality_ > 0 && scratch_->count.size() < cardinality_) {
      scratch_->count.resize(cardinality_, 0);
      scratch_->offset.resize(cardinality_);
    }
  }

  ScratchGuard(const ScratchGuard&) = delete;
  ScratchGuard& operator=(const ScratchGuard&) = delete;

  ~ScratchGuard() {
    static constexpr size_t kKeepEntries = size_t{1} << 16;
    const size_t cap = scratch_->count.capacity();
    // cardinality_ == 0 (sort path) never touched the counter arrays, so
    // it must not judge — or shed — them.
    if (cardinality_ > 0 && cap > kKeepEntries && cap / 4 > cardinality_) {
      // This call was a spike relative to the steady state; drop the
      // buffers entirely (the next call re-sizes to what it needs). The
      // fused level arenas are sized by prefix-cardinality sums bounded by
      // the same composite cardinality, so they follow the same rule.
      std::vector<uint32_t>().swap(scratch_->count);
      std::vector<uint32_t>().swap(scratch_->offset);
      std::vector<uint32_t>().swap(scratch_->touched);
      std::vector<uint32_t>().swap(scratch_->lvl_seq);
      scratch_->lvl_touched.clear();
      // The finale's c1-group arrays are bounded by the same composite
      // cardinality that spiked; shed them with the counters.
      std::vector<uint32_t>().swap(scratch_->count1);
      std::vector<uint32_t>().swap(scratch_->seq1);
    }
    const size_t sort_cap = scratch_->pairs.capacity();
    if (sort_cap > kKeepEntries && sort_cap / 4 > scratch_->block_watermark) {
      std::vector<uint64_t>().swap(scratch_->pairs);
      std::vector<uint64_t>().swap(scratch_->pairs_tmp);
    }
    // Block-sized buffers (largest block seen): same spike rule as pairs.
    const size_t comp_cap = scratch_->comp.capacity();
    if (comp_cap > kKeepEntries && comp_cap / 4 > scratch_->block_watermark) {
      std::vector<uint32_t>().swap(scratch_->comp);
      std::vector<uint32_t>().swap(scratch_->leaf_keys);
      std::vector<uint32_t>().swap(scratch_->touched);
    }
    const size_t stage_cap = scratch_->stage_rows.capacity();
    if (stage_cap > kKeepEntries && stage_cap / 4 > scratch_->stage_watermark) {
      std::vector<uint32_t>().swap(scratch_->stage_rows);
      std::vector<uint32_t>().swap(scratch_->stage_starts);
    }
  }

 private:
  RefineScratch* scratch_;
  uint64_t cardinality_;
};

// ---------------------------------------------------------------------------
// Counting tallies. Each fills scratch->count for the block and records the
// first occurrence of every code in scratch->touched[0..t), returning t.
// All variants tally in block-scan order, so the touched order — and with
// it every downstream output — is identical across them.
// ---------------------------------------------------------------------------

// The branchless counting tally. `hard_end` is the end of the WHOLE
// partition's row array, not the block: blocks are contiguous slices of
// it, so the gather prefetch runs against the global end and keeps the
// pipeline primed across block boundaries — the case that matters, since
// refined partitions shatter into blocks far shorter than any useful
// prefetch distance. kPrefetchCounts (the kMid variant) additionally
// prefetches the count[code] line close ahead, for cardinalities whose
// counter array no longer sits in cache; at dense cardinalities it is
// pure overhead. kKeepCodes streams every gathered code into
// s->comp[0..m), so a following scatter pass re-reads codes sequentially
// from L1 instead of re-gathering — the gather is the dominant cost of a
// refinement once the column outgrows L1.
template <bool kPrefetchCounts, bool kKeepCodes>
size_t Tally(const uint32_t* begin, const uint32_t* end,
             const uint32_t* hard_end, const uint32_t* codes,
             RefineScratch* s) {
  const size_t m = static_cast<size_t>(end - begin);
  if (m > s->block_watermark) s->block_watermark = m;
  uint32_t* comp = nullptr;
  if (kKeepCodes) {
    if (s->comp.size() < m) s->comp.resize(m);
    comp = s->comp.data();
  }
  if (s->touched.size() < m) s->touched.resize(m);
  uint32_t* touched = s->touched.data();
  uint32_t* count = s->count.data();
  constexpr size_t kGatherAhead = 16;
  constexpr size_t kCountAhead = 4;
  size_t t = 0;
  for (size_t i = 0; i < m; ++i) {
    if (begin + i + kGatherAhead < hard_end) {
      __builtin_prefetch(&codes[begin[i + kGatherAhead]]);
    }
    if (kPrefetchCounts && i + kCountAhead < m) {
      __builtin_prefetch(&count[codes[begin[i + kCountAhead]]]);
    }
    const uint32_t c = codes[begin[i]];
    if (kKeepCodes) comp[i] = c;
    touched[t] = c;
    t += (count[c] == 0);
    ++count[c];
  }
  return t;
}

#if defined(AJD_SIMD_AVX2)
// AVX2 tally: the codes[row] gather runs 8 lanes wide; the tally itself
// stays scalar and in lane order, so touched order (and every bit of
// downstream output) matches the scalar kernels exactly.
__attribute__((target("avx2"))) size_t SimdTally(const uint32_t* begin,
                                                 const uint32_t* end,
                                                 const uint32_t* codes,
                                                 RefineScratch* s) {
  const size_t m = static_cast<size_t>(end - begin);
  if (m > s->block_watermark) s->block_watermark = m;
  if (s->touched.size() < m) s->touched.resize(m);
  uint32_t* touched = s->touched.data();
  uint32_t* count = s->count.data();
  size_t t = 0;
  size_t i = 0;
  alignas(32) uint32_t buf[8];
  for (; i + 8 <= m; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(begin + i));
    const __m256i gathered = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(codes), idx, sizeof(uint32_t));
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), gathered);
    for (int j = 0; j < 8; ++j) {
      const uint32_t c = buf[j];
      touched[t] = c;
      t += (count[c] == 0);
      ++count[c];
    }
  }
  for (; i < m; ++i) {
    const uint32_t c = codes[begin[i]];
    touched[t] = c;
    t += (count[c] == 0);
    ++count[c];
  }
  return t;
}

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}
#elif defined(AJD_SIMD_NEON)
// AArch64 has no gather; the NEON variant loads row indexes vector-wide and
// keeps four scalar gather+tally chains in flight per iteration.
size_t SimdTally(const uint32_t* begin, const uint32_t* end,
                 const uint32_t* codes, RefineScratch* s) {
  const size_t m = static_cast<size_t>(end - begin);
  if (m > s->block_watermark) s->block_watermark = m;
  if (s->touched.size() < m) s->touched.resize(m);
  uint32_t* touched = s->touched.data();
  uint32_t* count = s->count.data();
  size_t t = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    if (i + 16 < m) __builtin_prefetch(&codes[begin[i + 16]]);
    const uint32x4_t idx = vld1q_u32(begin + i);
    const uint32_t c0 = codes[vgetq_lane_u32(idx, 0)];
    const uint32_t c1 = codes[vgetq_lane_u32(idx, 1)];
    const uint32_t c2 = codes[vgetq_lane_u32(idx, 2)];
    const uint32_t c3 = codes[vgetq_lane_u32(idx, 3)];
    touched[t] = c0; t += (count[c0] == 0); ++count[c0];
    touched[t] = c1; t += (count[c1] == 0); ++count[c1];
    touched[t] = c2; t += (count[c2] == 0); ++count[c2];
    touched[t] = c3; t += (count[c3] == 0); ++count[c3];
  }
  for (; i < m; ++i) {
    const uint32_t c = codes[begin[i]];
    touched[t] = c;
    t += (count[c] == 0);
    ++count[c];
  }
  return t;
}
#endif

// The SIMD tally needs enough rows per block to amortize its vector setup
// (and on gather-slow microarchitectures, to win at all); below this the
// scalar kernels are faster. Measured on the perf_partition sweep.
constexpr ptrdiff_t kSimdMinBlock = 256;

// Picks the tally for a count-only (entropy) pass.
size_t EntropyTally(const uint32_t* begin, const uint32_t* end,
                    const uint32_t* hard_end, const uint32_t* codes,
                    RefineKernel kernel, RefineScratch* s) {
#if defined(AJD_SIMD_AVX2)
  if (CpuHasAvx2() && end - begin >= kSimdMinBlock) {
    return SimdTally(begin, end, codes, s);
  }
#elif defined(AJD_SIMD_NEON)
  if (end - begin >= kSimdMinBlock) return SimdTally(begin, end, codes, s);
#endif
  return kernel == RefineKernel::kMid
             ? Tally<true, false>(begin, end, hard_end, codes, s)
             : Tally<false, false>(begin, end, hard_end, codes, s);
}

// ---------------------------------------------------------------------------
// Tiny-block path. Real partitions are dominated by blocks of a handful of
// rows (a half-refined relation shatters into thousands of 2-16 row
// blocks), where the counting kernels' per-block costs — scratch resets,
// touched bookkeeping, output resizing — dwarf the row work itself. Blocks
// this small are grouped by direct comparison over a register-resident
// buffer instead: no code-indexed scratch is read OR written, so the path
// is also immune to the cardinality.
// ---------------------------------------------------------------------------

// Must stay <= 32 (group membership lives in a uint32 bitmask).
constexpr size_t kTinyBlockMax = 4;

// Refines one tiny block, appending sub-blocks (first-occurrence order,
// rows ascending — identical to the counting path) at out_rows[total...].
// Returns the new total.
inline uint32_t TinyBlockRefine(const uint32_t* begin, size_t m,
                                const uint32_t* codes, uint32_t* out_rows,
                                uint32_t total, uint32_t* out_starts,
                                uint32_t* num_out) {
  uint32_t buf[kTinyBlockMax];
  for (size_t i = 0; i < m; ++i) buf[i] = codes[begin[i]];
  uint32_t done = 0;
  for (size_t i = 0; i < m; ++i) {
    if ((done >> i) & 1) continue;
    const uint32_t c = buf[i];
    uint32_t members = uint32_t{1} << i;
    uint32_t cnt = 1;
    for (size_t j = i + 1; j < m; ++j) {
      if (buf[j] == c) {
        members |= uint32_t{1} << j;
        ++cnt;
      }
    }
    done |= members;
    if (cnt >= 2) {
      for (size_t j = i; j < m; ++j) {
        if ((members >> j) & 1) out_rows[total++] = begin[j];
      }
      out_starts[(*num_out)++] = total;
    }
  }
  return total;
}

// Count-only form: adds the tiny block's c ln c terms (first-occurrence
// order; singleton groups contribute an exact 0, so skipping them leaves
// the accumulation bit-identical to the counting path).
inline double TinyBlockEntropy(const uint32_t* begin, size_t m,
                               const uint32_t* codes) {
  uint32_t buf[kTinyBlockMax];
  for (size_t i = 0; i < m; ++i) buf[i] = codes[begin[i]];
  uint32_t done = 0;
  double sum = 0.0;
  for (size_t i = 0; i < m; ++i) {
    if ((done >> i) & 1) continue;
    const uint32_t c = buf[i];
    uint32_t members = uint32_t{1} << i;
    uint32_t cnt = 1;
    for (size_t j = i + 1; j < m; ++j) {
      if (buf[j] == c) {
        members |= uint32_t{1} << j;
        ++cnt;
      }
    }
    done |= members;
    if (cnt >= 2) sum += XLogXCount(cnt);
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Sort path: per-block radix sort of (code << 32) | row. Scratch is sized
// by the block, never the cardinality.
// ---------------------------------------------------------------------------

// Blocks at or below this size use std::sort; the radix histograms cost
// more than a comparison sort on tiny inputs.
constexpr size_t kSortSmallBlock = 64;

// LSD radix sort of pairs[0..m) by the code (high 32 bits), one 8-bit digit
// per pass, only as many passes as max_code needs. Stable, so the row order
// within equal codes — ascending, the block invariant — is preserved.
void RadixSortByCode(RefineScratch* s, size_t m, uint32_t max_code) {
  uint64_t* a = s->pairs.data();
  uint64_t* b = s->pairs_tmp.data();
  uint32_t hist[256];
  for (uint32_t shift = 32; max_code != 0; shift += 8, max_code >>= 8) {
    std::memset(hist, 0, sizeof(hist));
    for (size_t i = 0; i < m; ++i) ++hist[(a[i] >> shift) & 0xff];
    uint32_t sum = 0;
    for (uint32_t d = 0; d < 256; ++d) {
      const uint32_t c = hist[d];
      hist[d] = sum;
      sum += c;
    }
    for (size_t i = 0; i < m; ++i) b[hist[(a[i] >> shift) & 0xff]++] = a[i];
    std::swap(a, b);
  }
  if (a != s->pairs.data()) {
    std::memcpy(s->pairs.data(), a, m * sizeof(uint64_t));
  }
}

// Sorts one block's (code, row) pairs into scratch->pairs and appends the
// [start, len] descriptors of every size >= 2 run (code-ascending order) to
// scratch->groups as flat pairs. Returns the number of such groups.
size_t SortBlockIntoGroups(const uint32_t* begin, const uint32_t* end,
                           const uint32_t* codes, uint32_t cardinality,
                           RefineScratch* s) {
  const size_t m = static_cast<size_t>(end - begin);
  if (m > s->block_watermark) s->block_watermark = m;
  if (s->pairs.size() < m) {
    s->pairs.resize(m);
    s->pairs_tmp.resize(m);
  }
  uint64_t* pairs = s->pairs.data();
  for (size_t i = 0; i < m; ++i) {
    const uint32_t r = begin[i];
    pairs[i] = (static_cast<uint64_t>(codes[r]) << 32) | r;
  }
  if (m <= kSortSmallBlock) {
    // Full-key sort: rows ascend within a block, so ordering by
    // (code, row) equals the stable-by-code order.
    std::sort(pairs, pairs + m);
  } else {
    RadixSortByCode(s, m, cardinality == 0 ? 0 : cardinality - 1);
  }
  s->groups.clear();
  size_t num_groups = 0;
  size_t run = 0;
  for (size_t i = 1; i <= m; ++i) {
    if (i == m || (pairs[i] >> 32) != (pairs[run] >> 32)) {
      if (i - run >= 2) {
        s->groups.push_back(static_cast<uint32_t>(run));
        s->groups.push_back(static_cast<uint32_t>(i - run));
        ++num_groups;
      }
      run = i;
    }
  }
  return num_groups;
}

// Reorders the flat [start, len] group list by each group's first row —
// which, rows ascending within the block, is its first-occurrence position,
// i.e. exactly the order the counting kernels' touched list would emit.
void OrderGroupsByFirstRow(RefineScratch* s, size_t num_groups) {
  struct GroupRef {
    uint32_t first_row;
    uint32_t start;
    uint32_t len;
  };
  static thread_local std::vector<GroupRef> refs;
  refs.clear();
  refs.reserve(num_groups);
  const uint64_t* pairs = s->pairs.data();
  for (size_t g = 0; g < num_groups; ++g) {
    const uint32_t start = s->groups[2 * g];
    const uint32_t len = s->groups[2 * g + 1];
    refs.push_back({static_cast<uint32_t>(pairs[start]), start, len});
  }
  std::sort(refs.begin(), refs.end(),
            [](const GroupRef& a, const GroupRef& b) {
              return a.first_row < b.first_row;  // first rows are distinct
            });
  for (size_t g = 0; g < num_groups; ++g) {
    s->groups[2 * g] = refs[g].start;
    s->groups[2 * g + 1] = refs[g].len;
  }
}

// ---------------------------------------------------------------------------
// Fused (composite) kernels.
// ---------------------------------------------------------------------------

// Tallies one block's composite codes (storing them in scratch->comp for a
// later scatter when `keep_codes`), recording each distinct code in
// scratch->touched in first-occurrence order. Alongside, every leaf
// remembers the first-occurrence RANK of each of its nested column
// prefixes within this block (leaf_keys, k-1 ranks per leaf; rank arenas
// in lvl_seq with per-level offsets, reset lazily via lvl_touched), and
// lvl_ng[l] counts the distinct level-(l+1) prefixes seen. Those ranks
// are everything ChainOrderLeaves needs. Returns the touched count.
//
// The caller must size s->count (ScratchGuard over the composite
// cardinality) and reset the touched counts afterwards; the level arenas
// reset themselves at the next call.
size_t FusedTally(const uint32_t* begin, const uint32_t* end,
                  const Column* const* cols, size_t k, bool keep_codes,
                  RefineScratch* s, uint32_t* lvl_ng) {
  const size_t m = static_cast<size_t>(end - begin);
  if (m > s->block_watermark) s->block_watermark = m;
  s->touched.clear();
  if (keep_codes && s->comp.size() < m) s->comp.resize(m);
  // Per-level rank arenas: level l (prefix of the first l+1 columns) gets
  // a slab of prefix-cardinality slots; the slabs sum to less than the
  // composite cardinality, so the same guard budget covers them.
  const size_t levels = k - 1;
  uint64_t lvl_off[kMaxAttrs];
  uint64_t arena = 0;
  {
    uint64_t prefix_card = 1;
    for (size_t l = 0; l < levels; ++l) {
      prefix_card *= cols[l]->cardinality;
      lvl_off[l] = arena;
      arena += prefix_card;
    }
  }
  if (s->lvl_seq.size() < arena) s->lvl_seq.resize(arena, UINT32_MAX);
  // Reset the PREVIOUS block's slots (cheap: one write per touched prefix).
  for (uint32_t slot : s->lvl_touched) s->lvl_seq[slot] = UINT32_MAX;
  s->lvl_touched.clear();
  for (size_t l = 0; l < levels; ++l) lvl_ng[l] = 0;
  if (s->leaf_keys.size() < m * levels) s->leaf_keys.resize(m * levels);
  uint32_t* count = s->count.data();
  uint32_t* lvl_seq = s->lvl_seq.data();
  uint32_t* keys = s->leaf_keys.data();

  // The common miner shape (k == 2, one prefix level) gets a dedicated
  // loop; the generic one costs a branch per column per row.
  if (k == 2) {
    const uint32_t* codes0 = cols[0]->codes.data();
    const uint32_t* codes1 = cols[1]->codes.data();
    const uint32_t card1 = cols[1]->cardinality;
    for (size_t i = 0; i < m; ++i) {
      const uint32_t r = begin[i];
      const uint32_t a = codes0[r];
      const uint32_t c = a * card1 + codes1[r];
      if (keep_codes) s->comp[i] = c;
      uint32_t rank = lvl_seq[a];
      if (rank == UINT32_MAX) {
        rank = lvl_ng[0]++;
        lvl_seq[a] = rank;
        s->lvl_touched.push_back(a);
      }
      if (count[c]++ == 0) {
        keys[s->touched.size()] = rank;
        s->touched.push_back(c);
      }
    }
  } else {
    for (size_t i = 0; i < m; ++i) {
      const uint32_t r = begin[i];
      uint64_t pref = 0;
      uint32_t ranks[kMaxAttrs];
      for (size_t l = 0; l < levels; ++l) {
        pref = pref * cols[l]->cardinality + cols[l]->codes[r];
        const uint32_t slot = static_cast<uint32_t>(lvl_off[l] + pref);
        uint32_t rank = lvl_seq[slot];
        if (rank == UINT32_MAX) {
          rank = lvl_ng[l]++;
          lvl_seq[slot] = rank;
          s->lvl_touched.push_back(slot);
        }
        ranks[l] = rank;
      }
      const uint32_t c = static_cast<uint32_t>(
          pref * cols[k - 1]->cardinality + cols[k - 1]->codes[r]);
      if (keep_codes) s->comp[i] = c;
      if (count[c]++ == 0) {
        for (size_t l = 0; l < levels; ++l) {
          keys[s->touched.size() * levels + l] = ranks[l];
        }
        s->touched.push_back(c);
      }
    }
  }
  return s->touched.size();
}

// Orders the block's touched composite codes exactly as the k-step
// RefinedBy chain would emit the corresponding sub-blocks, leaving the
// permutation (indexes into touched) in scratch->groups.
//
// Why this works: within one input block, the chain emits leaves sorted
// lexicographically by the first-occurrence positions of their nested
// prefix groups — level l compares by the earliest block-scan position at
// which the leaf's first l columns' value combination appears. (A chained
// refinement splits a block in first-occurrence order of the new column,
// and a sub-block's scan order is a subsequence of its parent's, so "first
// occurrence within the sub-block" and "first occurrence within the
// original block" order prefix groups identically.) FusedTally already
// recorded each prefix's first-occurrence RANK — order-isomorphic to its
// position — so the sort is k-1 stable counting passes, least-significant
// level first, seeded by the touched list itself (leaf first-occurrence
// order). No comparisons anywhere.
void ChainOrderLeaves(size_t k, size_t t, const uint32_t* lvl_ng,
                      RefineScratch* s) {
  if (s->groups.size() < t) s->groups.resize(t);
  uint32_t* a = s->groups.data();
  for (size_t i = 0; i < t; ++i) a[i] = static_cast<uint32_t>(i);
  if (k < 2 || t < 2) return;
  const size_t levels = k - 1;
  if (s->leaf_group.size() < t) s->leaf_group.resize(t);
  uint32_t* b = s->leaf_group.data();
  const uint32_t* keys = s->leaf_keys.data();
  for (size_t l = levels; l-- > 0;) {
    const uint32_t ng = lvl_ng[l];
    s->touched1.assign(ng + 1, 0);
    uint32_t* hist = s->touched1.data();
    for (size_t i = 0; i < t; ++i) ++hist[keys[a[i] * levels + l]];
    uint32_t sum = 0;
    for (uint32_t d = 0; d < ng; ++d) {
      const uint32_t c = hist[d];
      hist[d] = sum;
      sum += c;
    }
    for (size_t i = 0; i < t; ++i) {
      b[hist[keys[a[i] * levels + l]]++] = a[i];
    }
    std::swap(a, b);
  }
  if (a != s->groups.data()) {
    std::memcpy(s->groups.data(), a, t * sizeof(uint32_t));
  }
}

}  // namespace

RefineKernel ChooseRefineKernel(uint32_t cardinality,
                                uint64_t stripped_rows) {
  // The sort path exists to avoid cardinality-sized scratch, so it only
  // pays once that scratch is genuinely large: below the ScratchGuard's
  // keep threshold the counter arrays stay allocated and cache-warm across
  // calls, and counting beats sorting at every block size (perf_partition
  // sweep). Past it, the counting pass walks a counter array it can never
  // keep cached (and a near-key refinement would allocate, touch, and shed
  // megabytes per call just to strip almost every row); the measured
  // crossover sits near cardinality ~ half the stripped mass.
  if (cardinality > kSortMinCardinality &&
      cardinality >= stripped_rows / 2) {
    return RefineKernel::kSort;
  }
  if (cardinality <= kDenseCardinalityMax) return RefineKernel::kDense;
  return RefineKernel::kMid;
}

bool SimdTallyEnabled() {
#if defined(AJD_SIMD_AVX2)
  return CpuHasAvx2();
#elif defined(AJD_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

uint64_t FusedCardinality(const Column* const* cols, size_t k,
                          uint64_t budget) {
  uint64_t product = 1;
  for (size_t j = 0; j < k; ++j) {
    product *= cols[j]->cardinality;
    if (cols[j]->cardinality == 0 || product > budget) return 0;
  }
  return product;
}

void RefineByColumn(const PartitionView& in, const Column& col,
                    RefineKernel kernel, const PartitionBuild& out,
                    PartitionDelta* delta_out) {
  out.rows->clear();
  out.starts->clear();
  uint32_t in_blocks = 0;
  for (uint32_t r = 0; r < in.num_runs; ++r) {
    in_blocks += in.runs[r].num_blocks;
  }
  if (delta_out != nullptr) {
    delta_out->run_lengths.clear();
    delta_out->run_lengths.reserve(in_blocks);
    delta_out->parent_first_rows.clear();
    delta_out->parent_first_rows.reserve(in_blocks);
  }
  if (in_blocks == 0) return;
  const uint64_t mass = in.mass;
  if (kernel == RefineKernel::kAuto) {
    kernel = ChooseRefineKernel(col.cardinality, mass);
  }
  RefineScratch& scratch = LocalScratch();
  const uint32_t* codes = col.codes.data();
  // The guard must be constructed BEFORE `stage_watermark = mass` below:
  // its constructor resets the shed watermarks, so the reverse order would
  // zero the recorded mass and let the destructor (at function exit) shed
  // staging capacity this call legitimately used — and a nested guard
  // inside a branch would do the same mid-call, freeing the staging
  // buffers before the final copy-out reads them (ASan caught exactly
  // that during development).
  ScratchGuard guard(&scratch,
                     kernel == RefineKernel::kSort ? 0 : col.cardinality);
  // Build into the reusable staging buffers (no per-call allocation or
  // zero-fill; raw-pointer writes per block — partitions shatter into
  // thousands of tiny blocks, and a resize call per block would cost more
  // than the row work), then copy the exact-size result out once at the
  // end: the cached partition holds no dead capacity at all.
  if (scratch.stage_rows.size() < mass) scratch.stage_rows.resize(mass);
  if (scratch.stage_starts.size() < mass + 1) {
    scratch.stage_starts.resize(mass + 1);
  }
  scratch.stage_watermark = mass;
  uint32_t* out_rows = scratch.stage_rows.data();
  uint32_t* out_starts = scratch.stage_starts.data();
  uint32_t total = 0;
  uint32_t num_out = 0;
  out_starts[num_out++] = 0;
  // Build-time delta: one (parent first row, emitted sub-blocks) entry per
  // input block, in block order — zero-count entries included, which is
  // exactly the correspondence Partition::ExtendedBy consumes scan-free.
  auto emit_delta = [&](const uint32_t* begin, uint32_t emitted) {
    if (delta_out != nullptr) {
      delta_out->parent_first_rows.push_back(begin[0]);
      delta_out->run_lengths.push_back(emitted);
    }
  };

  if (kernel == RefineKernel::kSort) {
    for (uint32_t r = 0; r < in.num_runs; ++r) {
      const PartitionRun& run = in.runs[r];
      for (uint32_t b = 0; b < run.num_blocks; ++b) {
        const uint32_t* begin = run.rows + run.starts[b];
        const uint32_t* end = run.rows + run.starts[b + 1];
        const size_t m = static_cast<size_t>(end - begin);
        const uint32_t before = num_out;
        if (m <= kTinyBlockMax) {
          total = TinyBlockRefine(begin, m, codes, out_rows, total, out_starts,
                                  &num_out);
          emit_delta(begin, num_out - before);
          continue;
        }
        const size_t num_groups =
            SortBlockIntoGroups(begin, end, codes, col.cardinality, &scratch);
        OrderGroupsByFirstRow(&scratch, num_groups);
        const uint64_t* pairs = scratch.pairs.data();
        for (size_t g = 0; g < num_groups; ++g) {
          const uint32_t start = scratch.groups[2 * g];
          const uint32_t len = scratch.groups[2 * g + 1];
          for (uint32_t i = 0; i < len; ++i) {
            out_rows[total++] = static_cast<uint32_t>(pairs[start + i]);
          }
          out_starts[num_out++] = total;
        }
        emit_delta(begin, num_out - before);
      }
    }
  } else {
    for (uint32_t r = 0; r < in.num_runs; ++r) {
      const PartitionRun& run = in.runs[r];
      // The gather-prefetch lookahead may cross block boundaries, but
      // never the run's contiguous row storage.
      const uint32_t* hard_end = run.rows + run.starts[run.num_blocks];
      for (uint32_t b = 0; b < run.num_blocks; ++b) {
        const uint32_t* begin = run.rows + run.starts[b];
        const uint32_t* end = run.rows + run.starts[b + 1];
        const size_t m = static_cast<size_t>(end - begin);
        const uint32_t before = num_out;
        if (m <= kTinyBlockMax) {
          total = TinyBlockRefine(begin, m, codes, out_rows, total, out_starts,
                                  &num_out);
          emit_delta(begin, num_out - before);
          continue;
        }
        const size_t t =
            kernel == RefineKernel::kMid
                ? Tally<true, true>(begin, end, hard_end, codes, &scratch)
                : Tally<false, true>(begin, end, hard_end, codes, &scratch);
        // The two degenerate outcomes dominate real chains and need no
        // emit/scatter: a fully-shattered block (every row its own code)
        // emits nothing, and an unsplit block (one code) is copied verbatim.
        if (t == m) {
          for (size_t j = 0; j < t; ++j) scratch.count[scratch.touched[j]] = 0;
          emit_delta(begin, 0);
          continue;
        }
        if (t == 1) {
          std::memcpy(out_rows + total, begin, m * sizeof(uint32_t));
          total += static_cast<uint32_t>(m);
          out_starts[num_out++] = total;
          scratch.count[scratch.touched[0]] = 0;
          emit_delta(begin, 1);
          continue;
        }
        const uint32_t base = total;
        uint32_t pos = 0;
        for (size_t j = 0; j < t; ++j) {
          const uint32_t c = scratch.touched[j];
          if (scratch.count[c] >= 2) {
            scratch.offset[c] = base + pos;
            pos += scratch.count[c];
            out_starts[num_out++] = base + pos;
          } else {
            scratch.offset[c] = UINT32_MAX;
          }
        }
        total = base + pos;
        const uint32_t* comp = scratch.comp.data();
        for (size_t i2 = 0; i2 < m; ++i2) {
          const uint32_t c = comp[i2];
          if (scratch.offset[c] != UINT32_MAX) {
            out_rows[scratch.offset[c]++] = begin[i2];
          }
        }
        // Reset touched counters once per block (t entries), not per row.
        for (size_t j = 0; j < t; ++j) scratch.count[scratch.touched[j]] = 0;
        emit_delta(begin, num_out - before);
      }
    }
  }
  out.rows->assign(out_rows, out_rows + total);
  if (num_out > 1) {
    out.starts->assign(out_starts, out_starts + num_out);
  }
}

namespace {

// The body of RefineEntropy, parameterized on the accumulator: `emit` is
// called once per PARTIAL — exactly the operand sequence the serial
// accumulation adds, in emission order (one c ln c term per emitted group,
// one pre-reduced term per tiny block). The serial wrapper reduces on the
// fly; the sharded wrapper records each shard's partials and reduces them
// left-to-right afterwards, which is the same reduction in the same order
// — the mechanism behind the bit-identical-at-any-thread-count contract.
// `kernel` must be concrete (kAuto resolved by the caller, from the FULL
// view's mass so shard sub-views never flip the choice).
template <typename Emit>
void RefineEntropyScan(const PartitionView& in, const Column& col,
                       RefineKernel kernel, Emit&& emit) {
  RefineScratch& scratch = LocalScratch();
  const uint32_t* codes = col.codes.data();

  if (kernel == RefineKernel::kSort) {
    ScratchGuard guard(&scratch, /*cardinality=*/0);
    for (uint32_t r = 0; r < in.num_runs; ++r) {
      const PartitionRun& run = in.runs[r];
      for (uint32_t b = 0; b < run.num_blocks; ++b) {
        const uint32_t* begin = run.rows + run.starts[b];
        const uint32_t* end = run.rows + run.starts[b + 1];
        const size_t m = static_cast<size_t>(end - begin);
        if (m <= kTinyBlockMax) {
          emit(TinyBlockEntropy(begin, m, codes));
          continue;
        }
        const size_t num_groups =
            SortBlockIntoGroups(begin, end, codes, col.cardinality, &scratch);
        // Singleton groups contribute XLogX(1) = 0 exactly, so summing only
        // the size >= 2 groups — in first-occurrence order, like the counting
        // kernels' touched list — is bit-identical to the scalar path.
        OrderGroupsByFirstRow(&scratch, num_groups);
        for (size_t g = 0; g < num_groups; ++g) {
          emit(XLogXCount(scratch.groups[2 * g + 1]));
        }
      }
    }
  } else {
    ScratchGuard guard(&scratch, col.cardinality);
    for (uint32_t r = 0; r < in.num_runs; ++r) {
      const PartitionRun& run = in.runs[r];
      // The gather-prefetch lookahead may cross block boundaries, but
      // never the run's contiguous row storage.
      const uint32_t* hard_end = run.rows + run.starts[run.num_blocks];
      for (uint32_t b = 0; b < run.num_blocks; ++b) {
        const uint32_t* begin = run.rows + run.starts[b];
        const uint32_t* end = run.rows + run.starts[b + 1];
        const size_t m = static_cast<size_t>(end - begin);
        if (m <= kTinyBlockMax) {
          emit(TinyBlockEntropy(begin, m, codes));
          continue;
        }
        const size_t t =
            EntropyTally(begin, end, hard_end, codes, kernel, &scratch);
        if (t == 1) {
          // Unsplit block: one group of m rows.
          emit(XLogXCount(static_cast<uint32_t>(m)));
          scratch.count[scratch.touched[0]] = 0;
          continue;
        }
        if (t == m) {
          // Fully shattered: every group is a sub-singleton, contributing
          // an exact 0 apiece.
          for (size_t j = 0; j < t; ++j) scratch.count[scratch.touched[j]] = 0;
          continue;
        }
        for (size_t j = 0; j < t; ++j) {
          const uint32_t c = scratch.touched[j];
          // XLogX(1) == 0: sub-singletons vanish, exactly as if stripped.
          emit(XLogXCount(scratch.count[c]));
          scratch.count[c] = 0;
        }
      }
    }
  }
}

}  // namespace

double RefineEntropy(const PartitionView& in, const Column& col,
                     RefineKernel kernel, uint64_t num_rows) {
  if (kernel == RefineKernel::kAuto) {
    kernel = ChooseRefineKernel(col.cardinality, in.mass);
  }
  double sum_clogc = 0.0;
  RefineEntropyScan(in, col, kernel, [&](double v) { sum_clogc += v; });
  const double n = static_cast<double>(num_rows);
  return std::log(n) - sum_clogc / n;
}

void RefineByComposite(const PartitionView& in, const Column* const* cols,
                       size_t k, uint32_t composite_card,
                       const PartitionBuild& out) {
  AJD_CHECK(k >= 2 && composite_card > 0);
  out.rows->clear();
  out.starts->clear();
  if (in.num_runs == 0) return;
  RefineScratch& scratch = LocalScratch();
  ScratchGuard guard(&scratch, composite_card);
  out.rows->reserve(in.mass);
  out.starts->push_back(0);
  uint32_t lvl_ng[kMaxAttrs];
  for (uint32_t r = 0; r < in.num_runs; ++r) {
    const PartitionRun& run = in.runs[r];
    for (uint32_t b = 0; b < run.num_blocks; ++b) {
      const uint32_t* begin = run.rows + run.starts[b];
      const uint32_t* end = run.rows + run.starts[b + 1];
      const size_t t = FusedTally(begin, end, cols, k, /*keep_codes=*/true,
                                  &scratch, lvl_ng);
      ChainOrderLeaves(k, t, lvl_ng, &scratch);
      const uint32_t base = static_cast<uint32_t>(out.rows->size());
      uint32_t pos = 0;
      for (size_t j = 0; j < t; ++j) {
        const uint32_t c = scratch.touched[scratch.groups[j]];
        if (scratch.count[c] >= 2) {
          scratch.offset[c] = base + pos;
          pos += scratch.count[c];
          out.starts->push_back(base + pos);
        } else {
          scratch.offset[c] = UINT32_MAX;
        }
      }
      out.rows->resize(base + pos);
      const size_t m = static_cast<size_t>(end - begin);
      for (size_t i = 0; i < m; ++i) {
        const uint32_t c = scratch.comp[i];
        if (scratch.offset[c] != UINT32_MAX) {
          (*out.rows)[scratch.offset[c]++] = begin[i];
        }
        scratch.count[c] = 0;
      }
    }
  }
  if (out.starts->size() == 1) out.starts->clear();
}

namespace {

// RefineCompositeEntropy's body, parameterized on the accumulator exactly
// like RefineEntropyScan (one emitted partial per leaf, in chain order).
template <typename Emit>
void RefineCompositeEntropyScan(const PartitionView& in,
                                const Column* const* cols, size_t k,
                                uint32_t composite_card, Emit&& emit) {
  RefineScratch& scratch = LocalScratch();
  ScratchGuard guard(&scratch, composite_card);
  uint32_t lvl_ng[kMaxAttrs];
  for (uint32_t r = 0; r < in.num_runs; ++r) {
    const PartitionRun& run = in.runs[r];
    for (uint32_t b = 0; b < run.num_blocks; ++b) {
      const uint32_t* begin = run.rows + run.starts[b];
      const uint32_t* end = run.rows + run.starts[b + 1];
      const size_t t = FusedTally(begin, end, cols, k, /*keep_codes=*/false,
                                  &scratch, lvl_ng);
      // The chain's final count-only pass visits leaves in chain order;
      // summing in that order keeps the accumulation bit-identical to it.
      ChainOrderLeaves(k, t, lvl_ng, &scratch);
      for (size_t j = 0; j < t; ++j) {
        const uint32_t c = scratch.touched[scratch.groups[j]];
        emit(XLogXCount(scratch.count[c]));
        scratch.count[c] = 0;
      }
    }
  }
}

}  // namespace

double RefineCompositeEntropy(const PartitionView& in,
                              const Column* const* cols, size_t k,
                              uint32_t composite_card, uint64_t num_rows) {
  AJD_CHECK(k >= 2 && composite_card > 0);
  double sum_clogc = 0.0;
  RefineCompositeEntropyScan(in, cols, k, composite_card,
                             [&](double v) { sum_clogc += v; });
  const double n = static_cast<double>(num_rows);
  return std::log(n) - sum_clogc / n;
}

namespace {

// RefineByColumnWithEntropy's body, parameterized on the entropy
// accumulator (one emitted partial per leaf of the final c2 split, in
// chain order). Builds the c1 refinement into `out` either way.
template <typename Emit>
void RefineByColumnWithEntropyScan(const PartitionView& in, const Column& c1,
                                   const Column& c2, uint32_t composite_card,
                                   const PartitionBuild& out, Emit&& emit) {
  out.rows->clear();
  out.starts->clear();
  if (in.num_runs > 0) {
    RefineScratch& scratch = LocalScratch();
    ScratchGuard guard(&scratch, composite_card);
    if (scratch.count1.size() < c1.cardinality) {
      scratch.count1.resize(c1.cardinality, 0);
      scratch.seq1.resize(c1.cardinality);
    }
    const uint32_t* codes1 = c1.codes.data();
    const uint32_t* codes2 = c2.codes.data();
    const uint32_t card2 = c2.cardinality;
    uint32_t* count = scratch.count.data();
    uint32_t* count1 = scratch.count1.data();
    uint32_t* seq1 = scratch.seq1.data();
    out.rows->resize(in.mass);
    uint32_t* out_rows = out.rows->data();
    uint32_t total = 0;
    out.starts->push_back(0);
    for (uint32_t r = 0; r < in.num_runs; ++r) {
      const PartitionRun& run = in.runs[r];
      for (uint32_t b = 0; b < run.num_blocks; ++b) {
        const uint32_t* begin = run.rows + run.starts[b];
        const uint32_t* end = run.rows + run.starts[b + 1];
        const size_t m = static_cast<size_t>(end - begin);
        if (m > scratch.block_watermark) scratch.block_watermark = m;
        if (scratch.comp.size() < m) scratch.comp.resize(m);
        uint32_t* comp1 = scratch.comp.data();  // c1 code per block row
        // Tally composite (c1, c2) pairs and c1 groups in one scan. Every
        // leaf (distinct pair) remembers which c1 group it belongs to;
        // groups and leaves are both recorded in first-occurrence order.
        scratch.touched.clear();    // leaf -> composite code
        scratch.leaf_group.clear(); // leaf -> c1 group sequence number
        scratch.touched1.clear();   // group -> c1 code
        for (size_t i = 0; i < m; ++i) {
          const uint32_t r = begin[i];
          const uint32_t a = codes1[r];
          const uint32_t code = a * card2 + codes2[r];
          comp1[i] = a;
          if (count1[a]++ == 0) {
            seq1[a] = static_cast<uint32_t>(scratch.touched1.size());
            scratch.touched1.push_back(a);
          }
          if (count[code]++ == 0) {
            scratch.touched.push_back(code);
            scratch.leaf_group.push_back(seq1[a]);
          }
        }
        const size_t t = scratch.touched.size();
        const size_t g = scratch.touched1.size();
        // Emit the c1 sub-blocks in group order (identical to RefinedBy(c1))
        // and accumulate the final c2 split's c ln c terms in chain order:
        // group by group, and within a group in leaf first-occurrence order
        // — exactly the order the chain's last count-only pass visits them.
        // A c1-singleton group is stripped before the chain would refine it
        // by c2; its lone leaf contributes an exact 0, so skipping it keeps
        // the accumulation bit-identical. Within-group leaf order is
        // recovered stably by a counting pass over the leaves (first_pos
        // reused as per-group cursors).
        if (scratch.first_pos.size() < g) scratch.first_pos.resize(g);
        uint32_t* cursor = scratch.first_pos.data();
        const uint32_t base = total;
        uint32_t pos = 0;
        for (size_t s = 0; s < g; ++s) {
          const uint32_t a = scratch.touched1[s];
          cursor[s] = UINT32_MAX;  // becomes the group's emit slot below
          if (count1[a] >= 2) {
            scratch.offset[a] = base + pos;
            pos += count1[a];
            out.starts->push_back(base + pos);
            cursor[s] = 0;
          } else {
            scratch.offset[a] = UINT32_MAX;
          }
          count1[a] = 0;
        }
        total = base + pos;
        // Chain-order entropy: leaves sit in GLOBAL first-occurrence order,
        // but the chain's last pass visits them group by group (groups in
        // first-occurrence order, leaves within a group in first-occurrence
        // order). A stable counting regroup recovers that order in O(t + g):
        // count leaves per group, prefix-sum, place.
        if (g == 1) {
          // One c1 group: global leaf order IS chain order.
          if (cursor[0] != UINT32_MAX) {
            for (size_t l = 0; l < t; ++l) {
              emit(XLogXCount(count[scratch.touched[l]]));
            }
          }
          for (size_t l = 0; l < t; ++l) count[scratch.touched[l]] = 0;
        } else {
          scratch.groups.assign(g + 1, 0);
          for (size_t l = 0; l < t; ++l) ++scratch.groups[scratch.leaf_group[l]];
          uint32_t run = 0;
          for (size_t s = 0; s < g; ++s) {
            const uint32_t len = scratch.groups[s];
            scratch.groups[s] = run;
            run += len;
          }
          if (scratch.leaf_keys.size() < t) scratch.leaf_keys.resize(t);
          uint32_t* ordered = scratch.leaf_keys.data();
          for (size_t l = 0; l < t; ++l) {
            ordered[scratch.groups[scratch.leaf_group[l]]++] = static_cast<uint32_t>(l);
          }
          // groups[s] now holds each group's END slot; walk groups in order,
          // skipping stripped (singleton) ones — their lone leaf's XLogX(1)
          // is an exact 0, so the sum stays bit-identical to the chain.
          uint32_t start = 0;
          for (size_t s = 0; s < g; ++s) {
            const uint32_t stop = scratch.groups[s];
            if (cursor[s] != UINT32_MAX) {
              for (uint32_t idx = start; idx < stop; ++idx) {
                emit(XLogXCount(count[scratch.touched[ordered[idx]]]));
              }
            }
            start = stop;
          }
          for (size_t l = 0; l < t; ++l) count[scratch.touched[l]] = 0;
        }
        // Scatter rows into their c1 sub-blocks (scan order = ascending).
        for (size_t i = 0; i < m; ++i) {
          const uint32_t a = comp1[i];
          if (scratch.offset[a] != UINT32_MAX) {
            out_rows[scratch.offset[a]++] = begin[i];
          }
        }
      }
    }
    out.rows->resize(total);
    if (out.starts->size() == 1) out.starts->clear();
  }
}

}  // namespace

double RefineByColumnWithEntropy(const PartitionView& in, const Column& c1,
                                 const Column& c2, uint32_t composite_card,
                                 uint64_t num_rows,
                                 const PartitionBuild& out) {
  AJD_CHECK(composite_card > 0);
  double sum_clogc = 0.0;
  RefineByColumnWithEntropyScan(in, c1, c2, composite_card, out,
                                [&](double v) { sum_clogc += v; });
  const double n = static_cast<double>(num_rows);
  return std::log(n) - sum_clogc / n;
}

void SortPartitionOfColumn(const Column& col, const PartitionBuild& out) {
  const size_t n = col.codes.size();
  out.rows->clear();
  out.starts->clear();
  if (n == 0) return;
  RefineScratch& scratch = LocalScratch();
  ScratchGuard guard(&scratch, /*cardinality=*/0);
  if (n > scratch.block_watermark) scratch.block_watermark = n;
  if (scratch.pairs.size() < n) {
    scratch.pairs.resize(n);
    scratch.pairs_tmp.resize(n);
  }
  uint64_t* pairs = scratch.pairs.data();
  const uint32_t* codes = col.codes.data();
  for (size_t i = 0; i < n; ++i) {
    pairs[i] = (static_cast<uint64_t>(codes[i]) << 32) | i;
  }
  if (n <= kSortSmallBlock) {
    std::sort(pairs, pairs + n);
  } else {
    RadixSortByCode(&scratch, n, col.cardinality == 0 ? 0
                                                      : col.cardinality - 1);
  }
  // OfColumn emits blocks in ascending CODE order (not first-occurrence
  // order), so the code-sorted runs are emitted as-is.
  out.starts->push_back(0);
  size_t run = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || (pairs[i] >> 32) != (pairs[run] >> 32)) {
      if (i - run >= 2) {
        for (size_t j = run; j < i; ++j) {
          out.rows->push_back(static_cast<uint32_t>(pairs[j]));
        }
        out.starts->push_back(static_cast<uint32_t>(out.rows->size()));
      }
      run = i;
    }
  }
  if (out.starts->size() == 1) out.starts->clear();
}

// ---------------------------------------------------------------------------
// Sharded (intra-operation parallel) entry points. See the header contract:
// shards are contiguous block ranges of the input view, each processed by
// the unchanged serial kernel, outputs concatenated in shard (= block)
// order; entropy partials are reduced strictly left-to-right in global
// emission order, so every result is byte/bit-identical to the serial
// kernel at any shard count.
// ---------------------------------------------------------------------------

namespace {

// How many shards a view of this mass supports at this thread budget:
// never more than `threads`, never so many that a shard falls below
// kShardedRefineShardMass rows (a shard that small finishes faster than
// the fan-out costs).
uint32_t PlanShardCount(uint64_t mass, uint32_t threads) {
  if (threads <= 1) return 1;
  const uint64_t by_mass = mass / kShardedRefineShardMass;
  const uint64_t n = by_mass < threads ? by_mass : threads;
  return n < 1 ? 1 : static_cast<uint32_t>(n);
}

// Per-shard output for the materializing paths; concatenated in shard
// order after the batch drains.
struct ShardOut {
  std::vector<uint32_t> rows;
  std::vector<uint32_t> starts;
  PartitionDelta delta;
  std::vector<double> partials;  // entropy terms, in shard emission order
};

// Concatenates per-shard refinement outputs into `out` (and `delta_out`
// when non-null) in shard order. Shard row indices are partition-global
// already (kernels copy parent rows through), so only the block-boundary
// offsets need rebasing.
void ConcatShardOutputs(const std::vector<ShardOut>& parts,
                        const PartitionBuild& out,
                        PartitionDelta* delta_out) {
  size_t total_rows = 0;
  size_t total_blocks = 0;
  size_t total_delta = 0;
  for (const ShardOut& p : parts) {
    total_rows += p.rows.size();
    if (!p.starts.empty()) total_blocks += p.starts.size() - 1;
    total_delta += p.delta.run_lengths.size();
  }
  // The row-rebase offset below accumulates in a uint32_t (rows and starts
  // are uint32-indexed throughout); make the no-wrap invariant explicit
  // rather than relying on callers never exceeding it.
  AJD_CHECK(total_rows <= UINT32_MAX);
  out.rows->clear();
  out.starts->clear();
  out.rows->resize(total_rows);
  if (total_blocks > 0) {
    out.starts->reserve(total_blocks + 1);
    out.starts->push_back(0);
  }
  if (delta_out != nullptr) {
    delta_out->run_lengths.clear();
    delta_out->parent_first_rows.clear();
    delta_out->run_lengths.reserve(total_delta);
    delta_out->parent_first_rows.reserve(total_delta);
  }
  uint32_t off = 0;
  uint32_t* dst = out.rows->data();
  for (const ShardOut& p : parts) {
    if (!p.rows.empty()) {
      std::memcpy(dst + off, p.rows.data(), p.rows.size() * sizeof(uint32_t));
    }
    for (size_t j = 1; j < p.starts.size(); ++j) {
      out.starts->push_back(p.starts[j] + off);
    }
    off += static_cast<uint32_t>(p.rows.size());
    if (delta_out != nullptr) {
      delta_out->run_lengths.insert(delta_out->run_lengths.end(),
                                    p.delta.run_lengths.begin(),
                                    p.delta.run_lengths.end());
      delta_out->parent_first_rows.insert(delta_out->parent_first_rows.end(),
                                          p.delta.parent_first_rows.begin(),
                                          p.delta.parent_first_rows.end());
    }
  }
}

// Reduces per-shard entropy partials strictly left-to-right in global
// emission order — the exact operand sequence the serial accumulation
// adds, in the exact order it adds them.
double ReduceEntropyPartials(const std::vector<ShardOut>& parts,
                             uint64_t num_rows) {
  double sum_clogc = 0.0;
  for (const ShardOut& p : parts) {
    for (const double v : p.partials) sum_clogc += v;
  }
  const double n = static_cast<double>(num_rows);
  return std::log(n) - sum_clogc / n;
}

}  // namespace

uint32_t SplitViewForRefine(const PartitionView& in, uint32_t max_shards,
                            std::vector<PartitionRun>* runs_scratch,
                            std::vector<PartitionView>* shards) {
  runs_scratch->clear();
  shards->clear();
  if (in.mass == 0 || in.num_runs == 0) return 0;
  if (max_shards < 1) max_shards = 1;
  // Pass 1: record each shard's sub-runs into runs_scratch plus per-shard
  // run counts and masses. Views are materialized only after the scratch
  // vector stops growing — growth would invalidate their run pointers.
  std::vector<uint32_t> shard_runs;
  std::vector<uint64_t> shard_mass;
  const uint64_t total = in.mass;
  uint64_t cum = 0;       // mass assigned so far, across all shards
  uint32_t cur_runs = 0;  // sub-runs in the currently-open shard
  uint64_t cur_mass = 0;  // mass in the currently-open shard
  for (uint32_t r = 0; r < in.num_runs; ++r) {
    const PartitionRun& run = in.runs[r];
    uint32_t sub_begin = 0;
    for (uint32_t b = 0; b < run.num_blocks; ++b) {
      const uint64_t block = run.starts[b + 1] - run.starts[b];
      cum += block;
      cur_mass += block;
      // Cut after this block once the open shard reaches its proportional
      // share of the total mass (cum >= total * (closed+1) / max_shards,
      // kept in integers). The last shard stays open for the remainder, so
      // every closed shard holds at least one block and the shard count
      // never exceeds max_shards.
      const uint32_t closed = static_cast<uint32_t>(shard_runs.size());
      if (closed + 1 < max_shards &&
          cum * max_shards >= total * (closed + 1)) {
        runs_scratch->push_back(
            PartitionRun{run.rows, run.starts + sub_begin, b + 1 - sub_begin});
        ++cur_runs;
        shard_runs.push_back(cur_runs);
        shard_mass.push_back(cur_mass);
        cur_runs = 0;
        cur_mass = 0;
        sub_begin = b + 1;
      }
    }
    if (sub_begin < run.num_blocks) {
      runs_scratch->push_back(PartitionRun{run.rows, run.starts + sub_begin,
                                           run.num_blocks - sub_begin});
      ++cur_runs;
    }
  }
  if (cur_runs > 0) {
    shard_runs.push_back(cur_runs);
    shard_mass.push_back(cur_mass);
  }
  size_t off = 0;
  for (size_t s = 0; s < shard_runs.size(); ++s) {
    shards->push_back(PartitionView{runs_scratch->data() + off, shard_runs[s],
                                    shard_mass[s]});
    off += shard_runs[s];
  }
  return static_cast<uint32_t>(shards->size());
}

void RefineByColumnSharded(const PartitionView& in, const Column& col,
                           RefineKernel kernel, uint32_t threads,
                           WorkerPool* pool, const PartitionBuild& out,
                           PartitionDelta* delta_out) {
  // Resolve kAuto from the FULL view's mass before sharding: a shard
  // sub-view's smaller mass could flip the kSort choice and change which
  // kernel runs — harmless for correctness (all kernels agree bitwise)
  // but it would make the sharded path exercise different code than the
  // serial one it must mirror.
  if (kernel == RefineKernel::kAuto) {
    kernel = ChooseRefineKernel(col.cardinality, in.mass);
  }
  const uint32_t want = PlanShardCount(in.mass, threads);
  if (want <= 1 || pool == nullptr) {
    RefineByColumn(in, col, kernel, out, delta_out);
    return;
  }
  std::vector<PartitionRun> runs;
  std::vector<PartitionView> shards;
  const uint32_t ns = SplitViewForRefine(in, want, &runs, &shards);
  if (ns <= 1) {
    RefineByColumn(in, col, kernel, out, delta_out);
    return;
  }
  std::vector<ShardOut> parts(ns);
  pool->Run(ns, ns, [&](size_t i) {
    RefineByColumn(shards[i], col, kernel,
                   PartitionBuild{&parts[i].rows, &parts[i].starts},
                   delta_out != nullptr ? &parts[i].delta : nullptr);
  });
  ConcatShardOutputs(parts, out, delta_out);
}

double RefineEntropySharded(const PartitionView& in, const Column& col,
                            RefineKernel kernel, uint64_t num_rows,
                            uint32_t threads, WorkerPool* pool) {
  if (kernel == RefineKernel::kAuto) {
    kernel = ChooseRefineKernel(col.cardinality, in.mass);
  }
  const uint32_t want = PlanShardCount(in.mass, threads);
  if (want <= 1 || pool == nullptr) {
    return RefineEntropy(in, col, kernel, num_rows);
  }
  std::vector<PartitionRun> runs;
  std::vector<PartitionView> shards;
  const uint32_t ns = SplitViewForRefine(in, want, &runs, &shards);
  if (ns <= 1) return RefineEntropy(in, col, kernel, num_rows);
  std::vector<ShardOut> parts(ns);
  pool->Run(ns, ns, [&](size_t i) {
    std::vector<double>& partials = parts[i].partials;
    RefineEntropyScan(shards[i], col, kernel,
                      [&partials](double v) { partials.push_back(v); });
  });
  return ReduceEntropyPartials(parts, num_rows);
}

void RefineByCompositeSharded(const PartitionView& in,
                              const Column* const* cols, size_t k,
                              uint32_t composite_card, uint32_t threads,
                              WorkerPool* pool, const PartitionBuild& out) {
  AJD_CHECK(k >= 2 && composite_card > 0);
  const uint32_t want = PlanShardCount(in.mass, threads);
  if (want <= 1 || pool == nullptr) {
    RefineByComposite(in, cols, k, composite_card, out);
    return;
  }
  std::vector<PartitionRun> runs;
  std::vector<PartitionView> shards;
  const uint32_t ns = SplitViewForRefine(in, want, &runs, &shards);
  if (ns <= 1) {
    RefineByComposite(in, cols, k, composite_card, out);
    return;
  }
  std::vector<ShardOut> parts(ns);
  pool->Run(ns, ns, [&](size_t i) {
    RefineByComposite(shards[i], cols, k, composite_card,
                      PartitionBuild{&parts[i].rows, &parts[i].starts});
  });
  ConcatShardOutputs(parts, out, /*delta_out=*/nullptr);
}

double RefineCompositeEntropySharded(const PartitionView& in,
                                     const Column* const* cols, size_t k,
                                     uint32_t composite_card,
                                     uint64_t num_rows, uint32_t threads,
                                     WorkerPool* pool) {
  AJD_CHECK(k >= 2 && composite_card > 0);
  const uint32_t want = PlanShardCount(in.mass, threads);
  if (want <= 1 || pool == nullptr) {
    return RefineCompositeEntropy(in, cols, k, composite_card, num_rows);
  }
  std::vector<PartitionRun> runs;
  std::vector<PartitionView> shards;
  const uint32_t ns = SplitViewForRefine(in, want, &runs, &shards);
  if (ns <= 1) {
    return RefineCompositeEntropy(in, cols, k, composite_card, num_rows);
  }
  std::vector<ShardOut> parts(ns);
  pool->Run(ns, ns, [&](size_t i) {
    std::vector<double>& partials = parts[i].partials;
    RefineCompositeEntropyScan(shards[i], cols, k, composite_card,
                               [&partials](double v) { partials.push_back(v); });
  });
  return ReduceEntropyPartials(parts, num_rows);
}

double RefineByColumnWithEntropySharded(const PartitionView& in,
                                        const Column& c1, const Column& c2,
                                        uint32_t composite_card,
                                        uint64_t num_rows, uint32_t threads,
                                        WorkerPool* pool,
                                        const PartitionBuild& out) {
  AJD_CHECK(composite_card > 0);
  const uint32_t want = PlanShardCount(in.mass, threads);
  if (want <= 1 || pool == nullptr) {
    return RefineByColumnWithEntropy(in, c1, c2, composite_card, num_rows,
                                     out);
  }
  std::vector<PartitionRun> runs;
  std::vector<PartitionView> shards;
  const uint32_t ns = SplitViewForRefine(in, want, &runs, &shards);
  if (ns <= 1) {
    return RefineByColumnWithEntropy(in, c1, c2, composite_card, num_rows,
                                     out);
  }
  std::vector<ShardOut> parts(ns);
  pool->Run(ns, ns, [&](size_t i) {
    std::vector<double>& partials = parts[i].partials;
    RefineByColumnWithEntropyScan(
        shards[i], c1, c2, composite_card,
        PartitionBuild{&parts[i].rows, &parts[i].starts},
        [&partials](double v) { partials.push_back(v); });
  });
  ConcatShardOutputs(parts, out, /*delta_out=*/nullptr);
  return ReduceEntropyPartials(parts, num_rows);
}

size_t ShedOversizedRefineScratch() {
  RefineScratch& s = LocalScratch();
  // Same keep threshold as ScratchGuard: steady-state capacity stays, only
  // spikes are released.
  constexpr size_t kKeepEntries = size_t{1} << 16;
  size_t freed = 0;
  const auto shed32 = [&freed](std::vector<uint32_t>& v) {
    if (v.capacity() > kKeepEntries) {
      freed += v.capacity() * sizeof(uint32_t);
      std::vector<uint32_t>().swap(v);
    }
  };
  // Buffers that are resized as a pair under a size check on the FIRST
  // member (count/offset, count1/seq1, pairs/pairs_tmp) must shed as a
  // pair too: dropping only the second would leave it undersized behind a
  // check that no longer fires.
  const auto shed_pair32 = [&freed, kKeepEntries](std::vector<uint32_t>& a,
                                                  std::vector<uint32_t>& b) {
    if (a.capacity() > kKeepEntries || b.capacity() > kKeepEntries) {
      freed += (a.capacity() + b.capacity()) * sizeof(uint32_t);
      std::vector<uint32_t>().swap(a);
      std::vector<uint32_t>().swap(b);
    }
  };
  shed_pair32(s.count, s.offset);
  shed_pair32(s.count1, s.seq1);
  if (s.pairs.capacity() > kKeepEntries ||
      s.pairs_tmp.capacity() > kKeepEntries) {
    freed += (s.pairs.capacity() + s.pairs_tmp.capacity()) * sizeof(uint64_t);
    std::vector<uint64_t>().swap(s.pairs);
    std::vector<uint64_t>().swap(s.pairs_tmp);
  }
  shed32(s.touched);
  shed32(s.first_pos);
  shed32(s.comp);
  shed32(s.groups);
  shed32(s.leaf_keys);
  // FusedTally resets the previous block's lvl_seq slots lazily via
  // lvl_touched, so the two buffers are a unit: a dirty arena is only safe
  // while its pending reset list survives, and a reset list is only valid
  // against the arena it indexes. ScratchGuard's spike shed can leave them
  // in a split state (arena swapped away, reset list merely clear()ed but
  // still holding its capacity), so judging either buffer's capacity alone
  // could drop the pending resets while KEEPING the dirty arena — the next
  // fused call would then read stale ranks. Shed them as a pair: dropping
  // lvl_seq makes the dropped resets moot (a fresh resize re-fills
  // UINT32_MAX), and dropping lvl_touched is safe only because the arena
  // it indexed goes with it.
  shed_pair32(s.lvl_seq, s.lvl_touched);
  shed32(s.touched1);
  shed32(s.leaf_group);
  shed32(s.stage_rows);
  shed32(s.stage_starts);
  return freed;
}

size_t RefineScratchBytes() {
  const RefineScratch& s = LocalScratch();
  size_t bytes = 0;
  const auto add32 = [&bytes](const std::vector<uint32_t>& v) {
    bytes += v.capacity() * sizeof(uint32_t);
  };
  const auto add64 = [&bytes](const std::vector<uint64_t>& v) {
    bytes += v.capacity() * sizeof(uint64_t);
  };
  add32(s.count);
  add32(s.offset);
  add32(s.touched);
  add32(s.first_pos);
  add32(s.comp);
  add64(s.pairs);
  add64(s.pairs_tmp);
  add32(s.groups);
  add32(s.leaf_keys);
  add32(s.lvl_seq);
  add32(s.lvl_touched);
  add32(s.count1);
  add32(s.seq1);
  add32(s.touched1);
  add32(s.leaf_group);
  add32(s.stage_rows);
  add32(s.stage_starts);
  return bytes;
}

}  // namespace ajd
