// Partition: a stripped partition (position-list index, PLI) — the grouping
// of row indices induced by an attribute set, with singleton groups dropped.
//
// This is the representation behind fast FD/entropy discovery (Huhtala et
// al.'s TANE, Papenbrock's Metanome): refining a cached partition of A by
// the dense column of attribute b yields the partition of A u {b} touching
// only the rows that still share an A-value, instead of re-hashing all
// N * |A u {b}| words. Singleton groups carry no information for entropy
// (c ln c = 0 for c = 1) and no refinement work, so they are never stored.
//
// H(attrs) = ln N - (1/N) * sum over stripped blocks of c ln c,
// matching the formula in info/entropy.cc exactly.
#ifndef AJD_ENGINE_PARTITION_H_
#define AJD_ENGINE_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/column_store.h"
#include "engine/refine_kernels.h"
#include "util/status.h"

namespace ajd {

// PartitionDelta (the cross-epoch correspondence metadata consumed by the
// delta-extension methods below) lives in engine/refine_kernels.h: the
// refinement kernels emit it at build time, so the first catch-up after a
// cold build is scan-free.

/// A stripped partition of row indices. Value type; refinement returns a
/// fresh partition and never mutates its input, so cached partitions can be
/// shared across threads read-only.
///
/// Invariant: rows within every block are in ascending order (every factory
/// scans rows ascending, and refinement preserves relative order). The
/// sort-based refinement kernel relies on it.
class Partition {
 public:
  /// The trivial partition {all rows}: what the empty attribute set induces.
  static Partition Trivial(uint64_t num_rows);

  /// The partition induced by one dense column. Counting sort (O(N + card))
  /// while the cardinality is below the row count; a row-sized sort path
  /// past that, so near-key columns stop allocating two cardinality-sized
  /// vectors just to strip almost every row.
  static Partition OfColumn(const Column& col);

  /// The partition induced by this partition's attribute set plus the
  /// column's attribute: splits every block by the column's dense codes.
  /// The refinement kernel is chosen per call from the column cardinality
  /// and the stripped mass (engine/refine_kernels.h); every kernel yields
  /// bit-identical output. The two-argument form forces a kernel (tests
  /// and benches).
  Partition RefinedBy(const Column& col) const {
    return RefinedBy(col, RefineKernel::kAuto);
  }
  Partition RefinedBy(const Column& col, RefineKernel kernel) const {
    return RefinedBy(col, kernel, nullptr);
  }
  /// Three-argument form additionally emits the parent->child
  /// PartitionDelta at build time (one entry per block of `this`, in block
  /// order), making the FIRST epoch catch-up of the result scan-free.
  Partition RefinedBy(const Column& col, RefineKernel kernel,
                      PartitionDelta* delta_out) const;

  /// H of the refined grouping WITHOUT materializing it: a single fused
  /// counting pass over the stripped rows. Equivalent to
  /// RefinedBy(col).EntropyNats(num_rows) at roughly half the cost — the
  /// right call for the last step of a refinement chain, where only the
  /// entropy (not a reusable partition) is needed.
  double RefinedEntropy(const Column& col, uint64_t num_rows) const {
    return RefinedEntropy(col, num_rows, RefineKernel::kAuto);
  }
  double RefinedEntropy(const Column& col, uint64_t num_rows,
                        RefineKernel kernel) const;

  /// Fused multi-column refinement: identical output (block boundaries,
  /// block order, row order) to RefinedBy(cols[0]).RefinedBy(cols[1])...,
  /// in ONE pass over the stripped rows. `composite_card` must be the
  /// product of the columns' cardinalities (see FusedCardinality), which
  /// bounds the counting scratch.
  Partition RefinedByAll(const Column* const* cols, size_t k,
                         uint32_t composite_card) const;

  /// Count-only form of RefinedByAll: bit-identical to chaining k-1
  /// RefinedBy steps and one final RefinedEntropy.
  double RefinedEntropyAll(const Column* const* cols, size_t k,
                           uint32_t composite_card, uint64_t num_rows) const;

  /// Chain finale: materializes RefinedBy(c1) into *out AND returns
  /// RefinedBy(c1).RefinedEntropy(c2, num_rows) — both bit-identical to
  /// the two-step chain — in one fused pass over this partition's rows.
  /// The last count-only pass of a refinement chain re-gathers almost the
  /// mass the penultimate step just scanned; here it dissolves into that
  /// step's tally. `composite_card` must be the two cardinalities'
  /// product (see FusedCardinality).
  double RefinedByWithEntropy(const Column& c1, const Column& c2,
                              uint32_t composite_card, uint64_t num_rows,
                              Partition* out) const;

  /// H over the empirical distribution whose grouping this partition is,
  /// in nats: ln n - (1/n) sum_blocks c ln c. `num_rows` is |R| (the
  /// stripped representation does not know how many singletons exist).
  /// Accumulates through the same XLogX table as the refinement kernels,
  /// in block order, so the value is bit-identical to the count-only
  /// kernel that would have produced this partition's grouping.
  double EntropyNats(uint64_t num_rows) const;

  // --- Delta extension (epoch catch-up) ---------------------------------
  //
  // Relations grow by appends only (relation/relation.h), so a partition
  // computed over the first `old_rows` rows remains a valid grouping of
  // those rows forever; extension folds the appended suffix in without
  // re-deriving the prefix. Both methods are BIT-IDENTICAL — block
  // boundaries, block order, row order — to the cold factory applied to
  // the grown column(s), which is what makes incremental catch-up
  // indistinguishable from a full rebuild (tests/epoch_test.cc).

  /// Extension of a single-column partition: `this` must equal
  /// OfColumn(col restricted to the first old_rows rows); returns
  /// OfColumn(col) over all rows, computed by tallying only the appended
  /// rows against the old code->block layout (old blocks keep their
  /// ascending-code positions; codes promoted out of singledom or newly
  /// appeared are merged in code order). Requires col.first_row (store
  /// densification) to locate the lone old row of a promoted singleton.
  Partition ExtendedOfColumn(const Column& col, uint64_t old_rows) const;

  /// Extension one refinement step up a chain: `this` is the old child
  /// (the chain's grouping over the first old_rows rows) and `parent_new`
  /// that chain-minus-`col` parent already extended over all rows. Returns
  /// parent_new.RefinedBy(col) bit-identically, but touches only the
  /// parent blocks that received appended rows — untouched blocks'
  /// sub-blocks are copied verbatim, and the leading output blocks BEFORE
  /// the first affected parent block are not even walked (blocks hold row
  /// ids, not positions, so the old prefix is already bit-exact).
  ///
  /// The parent-block correspondence comes from ONE of:
  ///   - `meta`, the PartitionDelta this partition's previous extension
  ///     emitted (the scan-free steady-state path), or
  ///   - `parent_old`, the pre-extension parent partition (the seeding
  ///     path: first extension after a cold build, evicted metadata).
  /// At least one must be non-null. `delta_out`, when given, receives the
  /// metadata for the NEXT extension.
  Partition ExtendedBy(const Partition* parent_old,
                       const Partition& parent_new, const Column& col,
                       uint64_t old_rows, const PartitionDelta* meta,
                       PartitionDelta* delta_out) const;

  /// Convenience form for the seeding path (tests, one-shot callers).
  Partition ExtendedBy(const Partition& parent_old,
                       const Partition& parent_new, const Column& col,
                       uint64_t old_rows) const {
    return ExtendedBy(&parent_old, parent_new, col, old_rows, nullptr,
                      nullptr);
  }

  /// In-place form of ExtendedBy for a sole-owner partition (the engine's
  /// epoch catch-up on entries nothing else aliases): the identical prefix
  /// is left untouched and only the suffix after the first affected parent
  /// block is rewritten, with geometric capacity growth so repeated
  /// batch extensions stop reallocating (and re-copying the prefix) every
  /// time. On streams with temporal key locality — appends touch recent
  /// values, old blocks go quiet — this is what makes catch-up scale with
  /// the CHANGED region rather than the partition's whole mass.
  void ExtendInPlaceBy(const Partition* parent_old,
                       const Partition& parent_new, const Column& col,
                       uint64_t old_rows, const PartitionDelta* meta,
                       PartitionDelta* delta_out);

  /// Number of stripped (size >= 2) blocks.
  uint32_t NumBlocks() const {
    return starts_.empty() ? 0 : static_cast<uint32_t>(starts_.size() - 1);
  }

  /// Total rows across stripped blocks. 0 means every row is unique under
  /// this grouping (and under any refinement of it).
  uint64_t NumStrippedRows() const { return rows_.size(); }

  /// Rows of block `b` as [begin, end) into RowData().
  const uint32_t* BlockBegin(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return rows_.data() + starts_[b];
  }
  const uint32_t* BlockEnd(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return rows_.data() + starts_[b + 1];
  }
  uint32_t BlockSize(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return starts_[b + 1] - starts_[b];
  }

  // --- Raw stripped representation (persistence tier) -------------------
  //
  // The persistent cache store (persist/persistent_store.h) serializes a
  // partition as exactly these two arrays and rebuilds it through
  // FromStripped. The accessors expose the internal vectors read-only; the
  // factory VALIDATES, because its input crossed a process boundary — a
  // checksum catches torn bytes, not a stale file written by a buggy or
  // hostile producer, and a malformed partition admitted to the cache
  // could corrupt served answers rather than just wasting time.

  /// Concatenated members of the stripped blocks, in block order.
  const std::vector<uint32_t>& RawRows() const { return rows_; }

  /// Block-boundary offsets into RawRows(): block b spans
  /// [offsets[b], offsets[b+1]). Empty (like RawRows()) for the empty
  /// stripped partition.
  const std::vector<uint32_t>& RawBlockOffsets() const { return starts_; }

  /// Rebuilds a partition from a deserialized raw representation.
  /// InvalidArgument unless the shape is one the factories could have
  /// produced: offsets start at 0, strictly increase, and end at
  /// rows.size(); every block has >= 2 members; rows are strictly
  /// ascending within each block; every row id is < row_bound and appears
  /// in at most one block. (Both arrays empty is the valid empty
  /// partition.)
  static Result<Partition> FromStripped(std::vector<uint32_t> rows,
                                        std::vector<uint32_t> offsets,
                                        uint64_t row_bound);

  /// Heap bytes held (for the engine's cache budget accounting).
  size_t MemoryBytes() const {
    return rows_.capacity() * sizeof(uint32_t) +
           starts_.capacity() * sizeof(uint32_t);
  }

 private:
  /// Outcome of the shared extension walk (partition.cc): the first
  /// `prefix_blocks` output blocks are bit-identical to this partition's
  /// own leading blocks (and are not staged); everything after them sits
  /// in the walk's thread-local staging buffers at absolute offsets.
  struct ExtendStaged {
    uint32_t prefix_blocks = 0;
    uint64_t prefix_rows = 0;
    uint64_t total_rows = 0;    ///< prefix + staged suffix rows.
    uint32_t staged_starts = 0; ///< block ends staged after the prefix.
  };

  /// The walk behind ExtendedBy / ExtendInPlaceBy. Requires
  /// parent_new.NumBlocks() > 0 and (parent_old || meta).
  ExtendStaged ExtendStageBy(const Partition* parent_old,
                             const Partition& parent_new, const Column& col,
                             uint64_t old_rows, const PartitionDelta* meta,
                             PartitionDelta* delta_out) const;

  std::vector<uint32_t> rows_;    // concatenated members of stripped blocks
  std::vector<uint32_t> starts_;  // block b spans [starts_[b], starts_[b+1])
};

}  // namespace ajd

#endif  // AJD_ENGINE_PARTITION_H_
