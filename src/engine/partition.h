// Partition: a stripped partition (position-list index, PLI) — the grouping
// of row indices induced by an attribute set, with singleton groups dropped.
//
// This is the representation behind fast FD/entropy discovery (Huhtala et
// al.'s TANE, Papenbrock's Metanome): refining a cached partition of A by
// the dense column of attribute b yields the partition of A u {b} touching
// only the rows that still share an A-value, instead of re-hashing all
// N * |A u {b}| words. Singleton groups carry no information for entropy
// (c ln c = 0 for c = 1) and no refinement work, so they are never stored.
//
// H(attrs) = ln N - (1/N) * sum over stripped blocks of c ln c,
// matching the formula in info/entropy.cc exactly.
#ifndef AJD_ENGINE_PARTITION_H_
#define AJD_ENGINE_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/column_store.h"

namespace ajd {

/// A stripped partition of row indices. Value type; refinement returns a
/// fresh partition and never mutates its input, so cached partitions can be
/// shared across threads read-only.
class Partition {
 public:
  /// The trivial partition {all rows}: what the empty attribute set induces.
  static Partition Trivial(uint64_t num_rows);

  /// The partition induced by one dense column (counting sort, O(N + card)).
  static Partition OfColumn(const Column& col);

  /// The partition induced by this partition's attribute set plus the
  /// column's attribute: splits every block by the column's dense codes.
  /// O(stripped rows + cardinality).
  Partition RefinedBy(const Column& col) const;

  /// H of the refined grouping WITHOUT materializing it: a single fused
  /// counting pass over the stripped rows. Equivalent to
  /// RefinedBy(col).EntropyNats(num_rows) at roughly half the cost — the
  /// right call for the last step of a refinement chain, where only the
  /// entropy (not a reusable partition) is needed.
  double RefinedEntropy(const Column& col, uint64_t num_rows) const;

  /// H over the empirical distribution whose grouping this partition is,
  /// in nats: ln n - (1/n) sum_blocks c ln c. `num_rows` is |R| (the
  /// stripped representation does not know how many singletons exist).
  double EntropyNats(uint64_t num_rows) const;

  /// Number of stripped (size >= 2) blocks.
  uint32_t NumBlocks() const {
    return starts_.empty() ? 0 : static_cast<uint32_t>(starts_.size() - 1);
  }

  /// Total rows across stripped blocks. 0 means every row is unique under
  /// this grouping (and under any refinement of it).
  uint64_t NumStrippedRows() const { return rows_.size(); }

  /// Rows of block `b` as [begin, end) into RowData().
  const uint32_t* BlockBegin(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return rows_.data() + starts_[b];
  }
  const uint32_t* BlockEnd(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return rows_.data() + starts_[b + 1];
  }
  uint32_t BlockSize(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return starts_[b + 1] - starts_[b];
  }

  /// Heap bytes held (for the engine's cache budget accounting).
  size_t MemoryBytes() const {
    return rows_.capacity() * sizeof(uint32_t) +
           starts_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint32_t> rows_;    // concatenated members of stripped blocks
  std::vector<uint32_t> starts_;  // block b spans [starts_[b], starts_[b+1])
};

}  // namespace ajd

#endif  // AJD_ENGINE_PARTITION_H_
