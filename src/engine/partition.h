// Partition: a stripped partition (position-list index, PLI) — the grouping
// of row indices induced by an attribute set, with singleton groups dropped.
//
// This is the representation behind fast FD/entropy discovery (Huhtala et
// al.'s TANE, Papenbrock's Metanome): refining a cached partition of A by
// the dense column of attribute b yields the partition of A u {b} touching
// only the rows that still share an A-value, instead of re-hashing all
// N * |A u {b}| words. Singleton groups carry no information for entropy
// (c ln c = 0 for c = 1) and no refinement work, so they are never stored.
//
// H(attrs) = ln N - (1/N) * sum over stripped blocks of c ln c,
// matching the formula in info/entropy.cc exactly.
#ifndef AJD_ENGINE_PARTITION_H_
#define AJD_ENGINE_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/column_store.h"
#include "engine/refine_kernels.h"

namespace ajd {

/// A stripped partition of row indices. Value type; refinement returns a
/// fresh partition and never mutates its input, so cached partitions can be
/// shared across threads read-only.
///
/// Invariant: rows within every block are in ascending order (every factory
/// scans rows ascending, and refinement preserves relative order). The
/// sort-based refinement kernel relies on it.
class Partition {
 public:
  /// The trivial partition {all rows}: what the empty attribute set induces.
  static Partition Trivial(uint64_t num_rows);

  /// The partition induced by one dense column. Counting sort (O(N + card))
  /// while the cardinality is below the row count; a row-sized sort path
  /// past that, so near-key columns stop allocating two cardinality-sized
  /// vectors just to strip almost every row.
  static Partition OfColumn(const Column& col);

  /// The partition induced by this partition's attribute set plus the
  /// column's attribute: splits every block by the column's dense codes.
  /// The refinement kernel is chosen per call from the column cardinality
  /// and the stripped mass (engine/refine_kernels.h); every kernel yields
  /// bit-identical output. The two-argument form forces a kernel (tests
  /// and benches).
  Partition RefinedBy(const Column& col) const {
    return RefinedBy(col, RefineKernel::kAuto);
  }
  Partition RefinedBy(const Column& col, RefineKernel kernel) const;

  /// H of the refined grouping WITHOUT materializing it: a single fused
  /// counting pass over the stripped rows. Equivalent to
  /// RefinedBy(col).EntropyNats(num_rows) at roughly half the cost — the
  /// right call for the last step of a refinement chain, where only the
  /// entropy (not a reusable partition) is needed.
  double RefinedEntropy(const Column& col, uint64_t num_rows) const {
    return RefinedEntropy(col, num_rows, RefineKernel::kAuto);
  }
  double RefinedEntropy(const Column& col, uint64_t num_rows,
                        RefineKernel kernel) const;

  /// Fused multi-column refinement: identical output (block boundaries,
  /// block order, row order) to RefinedBy(cols[0]).RefinedBy(cols[1])...,
  /// in ONE pass over the stripped rows. `composite_card` must be the
  /// product of the columns' cardinalities (see FusedCardinality), which
  /// bounds the counting scratch.
  Partition RefinedByAll(const Column* const* cols, size_t k,
                         uint32_t composite_card) const;

  /// Count-only form of RefinedByAll: bit-identical to chaining k-1
  /// RefinedBy steps and one final RefinedEntropy.
  double RefinedEntropyAll(const Column* const* cols, size_t k,
                           uint32_t composite_card, uint64_t num_rows) const;

  /// Chain finale: materializes RefinedBy(c1) into *out AND returns
  /// RefinedBy(c1).RefinedEntropy(c2, num_rows) — both bit-identical to
  /// the two-step chain — in one fused pass over this partition's rows.
  /// The last count-only pass of a refinement chain re-gathers almost the
  /// mass the penultimate step just scanned; here it dissolves into that
  /// step's tally. `composite_card` must be the two cardinalities'
  /// product (see FusedCardinality).
  double RefinedByWithEntropy(const Column& c1, const Column& c2,
                              uint32_t composite_card, uint64_t num_rows,
                              Partition* out) const;

  /// H over the empirical distribution whose grouping this partition is,
  /// in nats: ln n - (1/n) sum_blocks c ln c. `num_rows` is |R| (the
  /// stripped representation does not know how many singletons exist).
  double EntropyNats(uint64_t num_rows) const;

  /// Number of stripped (size >= 2) blocks.
  uint32_t NumBlocks() const {
    return starts_.empty() ? 0 : static_cast<uint32_t>(starts_.size() - 1);
  }

  /// Total rows across stripped blocks. 0 means every row is unique under
  /// this grouping (and under any refinement of it).
  uint64_t NumStrippedRows() const { return rows_.size(); }

  /// Rows of block `b` as [begin, end) into RowData().
  const uint32_t* BlockBegin(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return rows_.data() + starts_[b];
  }
  const uint32_t* BlockEnd(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return rows_.data() + starts_[b + 1];
  }
  uint32_t BlockSize(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    return starts_[b + 1] - starts_[b];
  }

  /// Heap bytes held (for the engine's cache budget accounting).
  size_t MemoryBytes() const {
    return rows_.capacity() * sizeof(uint32_t) +
           starts_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<uint32_t> rows_;    // concatenated members of stripped blocks
  std::vector<uint32_t> starts_;  // block b spans [starts_[b], starts_[b+1])
};

}  // namespace ajd

#endif  // AJD_ENGINE_PARTITION_H_
