// Partition: a stripped partition (position-list index, PLI) — the grouping
// of row indices induced by an attribute set, with singleton groups dropped.
//
// This is the representation behind fast FD/entropy discovery (Huhtala et
// al.'s TANE, Papenbrock's Metanome): refining a cached partition of A by
// the dense column of attribute b yields the partition of A u {b} touching
// only the rows that still share an A-value, instead of re-hashing all
// N * |A u {b}| words. Singleton groups carry no information for entropy
// (c ln c = 0 for c = 1) and no refinement work, so they are never stored.
//
// H(attrs) = ln N - (1/N) * sum over stripped blocks of c ln c,
// matching the formula in info/entropy.cc exactly.
#ifndef AJD_ENGINE_PARTITION_H_
#define AJD_ENGINE_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/column_store.h"
#include "engine/refine_kernels.h"
#include "util/status.h"

namespace ajd {

// PartitionDelta (the cross-epoch correspondence metadata consumed by the
// delta-extension methods below) lives in engine/refine_kernels.h: the
// refinement kernels emit it at build time, so the first catch-up after a
// cold build is scan-free.

/// A stripped partition of row indices. Value type; refinement returns a
/// fresh partition and never mutates its input, so cached partitions can be
/// shared across threads read-only.
///
/// Invariant: rows within every block are in ascending order (every factory
/// scans rows ascending, and refinement preserves relative order). The
/// sort-based refinement kernel relies on it.
///
/// --- Storage: flat vs chunked -------------------------------------------
///
/// Two physical layouts back the same logical partition:
///
///   flat    — one rows array plus block-boundary offsets, exact-sized with
///             zero slack. Every factory (Trivial/OfColumn/RefinedBy*/
///             FromStripped) and every copy-form extension produces this:
///             refinement stages into thread-local buffers and copies out
///             exact-sized, so cached partitions carry no dead capacity and
///             the arbiter's byte accounting charges only live rows.
///   chunked — entered the first time a partition is extended IN PLACE.
///             Rows live in append-only chunks (each chunk's storage is
///             allocated once and never moves, so block pointers stay
///             stable); each block is described by a 20-byte header
///             (chunk, offset, size, cap) kept in a dense side array in
///             logical block order. A block's chunk region reserves
///             cap >= size words — the header plus implicitly reserved
///             trailing storage, capacity fixed at allocation time, the
///             classic inline-capacity allocation shape — so appended rows
///             land in the existing tail slack and extension writes only
///             the changed region, no matter how the append stream is
///             distributed over the key space.
///
/// Tail-slack policy: adoption from flat lays every block out with its full
/// slack up front (cap = size + size/2 + 2 — one organized O(mass) copy, so
/// a uniform first batch doesn't relocate every block at once); a block
/// that later outgrows its cap relocates within the chunks to the same
/// geometric cap, so a repeatedly-growing block relocates O(log growth)
/// times total. Relocation strands the old region; once strands push the
/// held words past twice the live mass BEYOND the freshly-adopted baseline
/// (~1.5x mass + 2 words/block) the partition drops back to the canonical
/// flat layout (copy-out staging reclaims all slack at once), and the next
/// in-place extension re-adopts chunked form. MemoryBytes() always reports
/// the true footprint, slack and strands included, so the cache arbiter
/// charges what is actually held.
///
/// Kernels never see the layout: View() materializes the partition as
/// maximal contiguous runs of blocks (a flat partition is one run aliasing
/// its own arrays at zero cost), and the refinement kernels iterate runs
/// outer / blocks inner, emitting exactly the flat iteration's output.
class Partition {
 public:
  /// The trivial partition {all rows}: what the empty attribute set induces.
  static Partition Trivial(uint64_t num_rows);

  /// The partition induced by one dense column. Counting sort (O(N + card))
  /// while the cardinality is below the row count; a row-sized sort path
  /// past that, so near-key columns stop allocating two cardinality-sized
  /// vectors just to strip almost every row.
  static Partition OfColumn(const Column& col);

  /// The partition induced by this partition's attribute set plus the
  /// column's attribute: splits every block by the column's dense codes.
  /// The refinement kernel is chosen per call from the column cardinality
  /// and the stripped mass (engine/refine_kernels.h); every kernel yields
  /// bit-identical output. The two-argument form forces a kernel (tests
  /// and benches).
  Partition RefinedBy(const Column& col) const {
    return RefinedBy(col, RefineKernel::kAuto);
  }
  Partition RefinedBy(const Column& col, RefineKernel kernel) const {
    return RefinedBy(col, kernel, nullptr);
  }
  /// Three-argument form additionally emits the parent->child
  /// PartitionDelta at build time (one entry per block of `this`, in block
  /// order), making the FIRST epoch catch-up of the result scan-free.
  Partition RefinedBy(const Column& col, RefineKernel kernel,
                      PartitionDelta* delta_out) const;

  /// H of the refined grouping WITHOUT materializing it: a single fused
  /// counting pass over the stripped rows. Equivalent to
  /// RefinedBy(col).EntropyNats(num_rows) at roughly half the cost — the
  /// right call for the last step of a refinement chain, where only the
  /// entropy (not a reusable partition) is needed.
  double RefinedEntropy(const Column& col, uint64_t num_rows) const {
    return RefinedEntropy(col, num_rows, RefineKernel::kAuto);
  }
  double RefinedEntropy(const Column& col, uint64_t num_rows,
                        RefineKernel kernel) const;

  /// Fused multi-column refinement: identical output (block boundaries,
  /// block order, row order) to RefinedBy(cols[0]).RefinedBy(cols[1])...,
  /// in ONE pass over the stripped rows. `composite_card` must be the
  /// product of the columns' cardinalities (see FusedCardinality), which
  /// bounds the counting scratch.
  Partition RefinedByAll(const Column* const* cols, size_t k,
                         uint32_t composite_card) const;

  /// Count-only form of RefinedByAll: bit-identical to chaining k-1
  /// RefinedBy steps and one final RefinedEntropy.
  double RefinedEntropyAll(const Column* const* cols, size_t k,
                           uint32_t composite_card, uint64_t num_rows) const;

  /// Chain finale: materializes RefinedBy(c1) into *out AND returns
  /// RefinedBy(c1).RefinedEntropy(c2, num_rows) — both bit-identical to
  /// the two-step chain — in one fused pass over this partition's rows.
  /// The last count-only pass of a refinement chain re-gathers almost the
  /// mass the penultimate step just scanned; here it dissolves into that
  /// step's tally. `composite_card` must be the two cardinalities'
  /// product (see FusedCardinality).
  double RefinedByWithEntropy(const Column& c1, const Column& c2,
                              uint32_t composite_card, uint64_t num_rows,
                              Partition* out) const;

  /// Sharded (intra-operation parallel) forms of the five refinement
  /// entry points above: the view is split into contiguous mass-balanced
  /// block ranges, each shard runs the unchanged serial kernel on the
  /// pool, and outputs are concatenated in block order. Results are
  /// IDENTICAL to the serial methods at any thread count — byte-identical
  /// blocks/rows/delta, bit-identical entropies (refine_kernels.h
  /// documents the left-to-right partial reduction behind the entropy
  /// contract). threads <= 1, a null pool, or a view below the shard-mass
  /// floor degrade to the serial call; nested submission from a pool task
  /// degrades to serial via the pool's busy-inline fallback.
  Partition RefinedBySharded(const Column& col, RefineKernel kernel,
                             uint32_t threads, WorkerPool* pool,
                             PartitionDelta* delta_out = nullptr) const;
  double RefinedEntropySharded(const Column& col, uint64_t num_rows,
                               RefineKernel kernel, uint32_t threads,
                               WorkerPool* pool) const;
  Partition RefinedByAllSharded(const Column* const* cols, size_t k,
                                uint32_t composite_card, uint32_t threads,
                                WorkerPool* pool) const;
  double RefinedEntropyAllSharded(const Column* const* cols, size_t k,
                                  uint32_t composite_card, uint64_t num_rows,
                                  uint32_t threads, WorkerPool* pool) const;
  double RefinedByWithEntropySharded(const Column& c1, const Column& c2,
                                     uint32_t composite_card,
                                     uint64_t num_rows, uint32_t threads,
                                     WorkerPool* pool, Partition* out) const;

  /// H over the empirical distribution whose grouping this partition is,
  /// in nats: ln n - (1/n) sum_blocks c ln c. `num_rows` is |R| (the
  /// stripped representation does not know how many singletons exist).
  /// Accumulates through the same XLogX table as the refinement kernels,
  /// in block order, so the value is bit-identical to the count-only
  /// kernel that would have produced this partition's grouping.
  double EntropyNats(uint64_t num_rows) const;

  // --- Delta extension (epoch catch-up) ---------------------------------
  //
  // Relations grow by appends only (relation/relation.h), so a partition
  // computed over the first `old_rows` rows remains a valid grouping of
  // those rows forever; extension folds the appended suffix in without
  // re-deriving the prefix. Both methods are BIT-IDENTICAL — block
  // boundaries, block order, row order — to the cold factory applied to
  // the grown column(s), which is what makes incremental catch-up
  // indistinguishable from a full rebuild (tests/epoch_test.cc).

  /// Extension of a single-column partition: `this` must equal
  /// OfColumn(col restricted to the first old_rows rows); returns
  /// OfColumn(col) over all rows, computed by tallying only the appended
  /// rows against the old code->block layout (old blocks keep their
  /// ascending-code positions; codes promoted out of singledom or newly
  /// appeared are merged in code order). Requires col.first_row (store
  /// densification) to locate the lone old row of a promoted singleton.
  Partition ExtendedOfColumn(const Column& col, uint64_t old_rows) const;

  /// In-place form of ExtendedOfColumn for a sole-owner partition: adopts
  /// the chunked layout on first use and then touches only the blocks that
  /// actually received appended rows — grown blocks append into their tail
  /// slack (relocating within the chunks when it runs out), promoted
  /// singletons and brand-new codes splice fresh blocks into the ascending
  /// code order in O(blocks) header moves, and a pure tail-growth batch
  /// rewrites nothing else at all. Bit-identical to ExtendedOfColumn.
  void ExtendOfColumnInPlace(const Column& col, uint64_t old_rows);

  /// Extension one refinement step up a chain: `this` is the old child
  /// (the chain's grouping over the first old_rows rows) and `parent_new`
  /// that chain-minus-`col` parent already extended over all rows. Returns
  /// parent_new.RefinedBy(col) bit-identically, but touches only the
  /// parent blocks that received appended rows — untouched blocks'
  /// sub-blocks are copied verbatim, and the leading output blocks BEFORE
  /// the first affected parent block are not even walked (blocks hold row
  /// ids, not positions, so the old prefix is already bit-exact).
  ///
  /// The parent-block correspondence comes from ONE of:
  ///   - `meta`, the PartitionDelta this partition's previous extension
  ///     emitted (the scan-free steady-state path), or
  ///   - `parent_old`, the pre-extension parent partition (the seeding
  ///     path: first extension after a cold build, evicted metadata).
  /// At least one must be non-null. `delta_out`, when given, receives the
  /// metadata for the NEXT extension.
  Partition ExtendedBy(const Partition* parent_old,
                       const Partition& parent_new, const Column& col,
                       uint64_t old_rows, const PartitionDelta* meta,
                       PartitionDelta* delta_out) const;

  /// Convenience form for the seeding path (tests, one-shot callers).
  Partition ExtendedBy(const Partition& parent_old,
                       const Partition& parent_new, const Column& col,
                       uint64_t old_rows) const {
    return ExtendedBy(&parent_old, parent_new, col, old_rows, nullptr,
                      nullptr);
  }

  /// In-place form of ExtendedBy for a sole-owner partition (the engine's
  /// epoch catch-up on entries nothing else aliases): adopts the chunked
  /// layout on first use, then rewrites only the sub-block runs under
  /// parent blocks that received appended rows — grown sub-blocks append
  /// into tail slack, re-shattered runs get fresh chunk regions, and
  /// untouched runs keep their storage (their headers move in O(blocks)
  /// only when the block STRUCTURE changes). Unlike the flat suffix
  /// rewrite this stays O(changed region) even when appends spray across
  /// the whole key space — chunk metadata IS the delta, so no suffix copy
  /// and no locality assumption.
  void ExtendInPlaceBy(const Partition* parent_old,
                       const Partition& parent_new, const Column& col,
                       uint64_t old_rows, const PartitionDelta* meta,
                       PartitionDelta* delta_out);

  /// Number of stripped (size >= 2) blocks.
  uint32_t NumBlocks() const {
    if (chunked_) return static_cast<uint32_t>(blocks_.size());
    return starts_.empty() ? 0 : static_cast<uint32_t>(starts_.size() - 1);
  }

  /// Total rows across stripped blocks. 0 means every row is unique under
  /// this grouping (and under any refinement of it).
  uint64_t NumStrippedRows() const {
    return chunked_ ? mass_ : rows_.size();
  }

  /// Rows of block `b` as [begin, end); contiguous per block in BOTH
  /// layouts (a block never straddles a chunk boundary).
  const uint32_t* BlockBegin(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    if (chunked_) {
      const BlockRef& r = blocks_[b];
      return chunks_[r.chunk].data.data() + r.offset;
    }
    return rows_.data() + starts_[b];
  }
  const uint32_t* BlockEnd(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    if (chunked_) {
      const BlockRef& r = blocks_[b];
      return chunks_[r.chunk].data.data() + r.offset + r.size;
    }
    return rows_.data() + starts_[b + 1];
  }
  uint32_t BlockSize(uint32_t b) const {
    AJD_CHECK(b < NumBlocks());
    if (chunked_) return blocks_[b].size;
    return starts_[b + 1] - starts_[b];
  }

  /// Materializes the kernel-facing run view into `scratch` (grow-only,
  /// reusable). Flat: one run aliasing the partition's own arrays, zero
  /// copies. Chunked: one run per maximal contiguous stretch of blocks,
  /// with per-run block offsets rebased into the scratch — O(blocks), no
  /// row copies. The view (and the runs it points at) stays valid only
  /// while both the partition and the scratch are unmodified.
  PartitionView View(PartitionViewScratch* scratch) const;

  // --- Canonical flat representation (persistence tier) -----------------
  //
  // The persistent cache store (persist/persistent_store.h) serializes a
  // partition as the two flat arrays FlattenStripped produces and rebuilds
  // it through FromStripped. Flattening is the canonical form: a chunked
  // partition serializes exactly like the flat partition a cold build
  // would have produced, so persisted blobs round-trip the layout change
  // unseen. The factory VALIDATES, because its input crossed a process
  // boundary — a checksum catches torn bytes, not a stale file written by
  // a buggy or hostile producer, and a malformed partition admitted to
  // the cache could corrupt served answers rather than just wasting time.

  /// Writes the canonical flat form: concatenated block members in block
  /// order into *rows, block-boundary offsets into *offsets (block b spans
  /// [offsets[b], offsets[b+1]); both empty for the empty partition).
  /// Identical output in both layouts.
  void FlattenStripped(std::vector<uint32_t>* rows,
                       std::vector<uint32_t>* offsets) const;

  /// Rebuilds a partition from a deserialized raw representation.
  /// InvalidArgument unless the shape is one the factories could have
  /// produced: offsets start at 0, strictly increase, and end at
  /// rows.size(); every block has >= 2 members; rows are strictly
  /// ascending within each block; every row id is < row_bound and appears
  /// in at most one block. (Both arrays empty is the valid empty
  /// partition.)
  static Result<Partition> FromStripped(std::vector<uint32_t> rows,
                                        std::vector<uint32_t> offsets,
                                        uint64_t row_bound);

  /// Heap bytes held (for the engine's cache budget accounting). Chunked
  /// partitions report chunks, slack and block headers included — the
  /// arbiter must charge what the process actually holds, not the live
  /// mass.
  size_t MemoryBytes() const {
    size_t bytes = rows_.capacity() * sizeof(uint32_t) +
                   starts_.capacity() * sizeof(uint32_t) +
                   blocks_.capacity() * sizeof(BlockRef);
    for (const Chunk& c : chunks_) {
      bytes += c.data.capacity() * sizeof(uint32_t);
    }
    return bytes;
  }

 private:
  /// Outcome of the shared extension walk (partition.cc): the first
  /// `prefix_blocks` output blocks are bit-identical to this partition's
  /// own leading blocks (and are not staged); everything after them sits
  /// in the walk's thread-local staging buffers at absolute offsets.
  struct ExtendStaged {
    uint32_t prefix_blocks = 0;
    uint64_t prefix_rows = 0;
    uint64_t total_rows = 0;    ///< prefix + staged suffix rows.
    uint32_t staged_starts = 0; ///< block ends staged after the prefix.
  };

  /// The walk behind the copy-form ExtendedBy. Requires a FLAT `this`,
  /// parent_new.NumBlocks() > 0 and (parent_old || meta).
  ExtendStaged ExtendStageBy(const Partition* parent_old,
                             const Partition& parent_new, const Column& col,
                             uint64_t old_rows, const PartitionDelta* meta,
                             PartitionDelta* delta_out) const;

  /// One append-only row arena. `data` is sized once at construction and
  /// never resized, so pointers into it stay stable for the partition's
  /// lifetime (readers hold BlockBegin pointers across view builds).
  struct Chunk {
    std::vector<uint32_t> data;
    uint32_t used = 0;  ///< words handed out; data[used..) is virgin.
  };

  /// Block header: rows live at chunks_[chunk].data[offset .. offset+size),
  /// with [offset+size, offset+cap) reserved tail slack.
  ///
  /// `code` memoizes the block's value code under the column that refines
  /// this partition (every row of a block shares it, and column codes are
  /// append-only so it never goes stale; in-place extension always extends
  /// along the same chain position, which is what makes the cache sound).
  /// kNoCode until the first extension walk visits the block — adoption
  /// from flat has no column in hand — after which the walks read block
  /// codes sequentially from the headers instead of re-gathering
  /// codes[first row] through two levels of indirection per block per
  /// batch.
  static constexpr uint32_t kNoCode = UINT32_MAX;
  struct BlockRef {
    uint32_t chunk = 0;
    uint32_t offset = 0;
    uint32_t size = 0;
    uint32_t cap = 0;
    uint32_t code = kNoCode;
  };

  /// Flat -> chunked: copies every block into chunk regions with its full
  /// tail slack (cap = GrowCap(size)) and builds the block headers.
  void AdoptChunked();

  /// Chunked -> flat canonical form (slack and strands reclaimed).
  void FlattenInPlace();

  /// Reclamation policy: once held words exceed 3x the live mass plus the
  /// per-block slack allowance (plus a one-chunk grace so small partitions
  /// don't thrash between layouts), drop back to flat; the next in-place
  /// extension re-adopts. Called at the end of every in-place extension.
  void MaybeReclaim();

  /// Reserves a cap-word region in the chunks (appending a new chunk when
  /// the tail chunk is full) and returns its header with size 0.
  BlockRef AllocRegion(uint32_t cap);

  uint32_t* MutableBlockRows(const BlockRef& r) {
    return chunks_[r.chunk].data.data() + r.offset;
  }

  // Flat layout (chunked_ == false):
  std::vector<uint32_t> rows_;    // concatenated members of stripped blocks
  std::vector<uint32_t> starts_;  // block b spans [starts_[b], starts_[b+1])
  // Chunked layout (chunked_ == true; rows_/starts_ empty):
  std::vector<Chunk> chunks_;
  std::vector<BlockRef> blocks_;  // logical block order
  uint64_t mass_ = 0;             // total stripped rows across blocks_
  bool chunked_ = false;
};

}  // namespace ajd

#endif  // AJD_ENGINE_PARTITION_H_
