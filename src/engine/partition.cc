#include "engine/partition.h"

#include <cmath>

#include "util/math.h"

namespace ajd {

Partition Partition::Trivial(uint64_t num_rows) {
  AJD_CHECK(num_rows < UINT32_MAX);
  Partition out;
  if (num_rows < 2) return out;  // a lone row is a singleton: stripped away
  out.rows_.resize(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    out.rows_[i] = static_cast<uint32_t>(i);
  }
  out.starts_ = {0, static_cast<uint32_t>(num_rows)};
  return out;
}

Partition Partition::OfColumn(const Column& col) {
  const size_t n = col.codes.size();
  AJD_CHECK(n < UINT32_MAX);
  Partition out;
  if (n == 0) return out;
  std::vector<uint32_t> count(col.cardinality, 0);
  for (uint32_t c : col.codes) ++count[c];
  std::vector<uint32_t> offset(col.cardinality, UINT32_MAX);
  uint32_t total = 0;
  for (uint32_t c = 0; c < col.cardinality; ++c) {
    if (count[c] >= 2) {
      offset[c] = total;
      total += count[c];
      out.starts_.push_back(total);  // ends; start sentinel inserted below
    }
  }
  if (total == 0) {
    out.starts_.clear();
    return out;
  }
  out.starts_.insert(out.starts_.begin(), 0);
  out.rows_.resize(total);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = col.codes[i];
    if (offset[c] != UINT32_MAX) out.rows_[offset[c]++] = i;
  }
  return out;
}

Partition Partition::RefinedBy(const Column& col) const {
  Partition out;
  if (NumBlocks() == 0) return out;
  // Scratch over dense codes, reused across calls (refinement is the hot
  // loop of every entropy miss). Invariant: `count` is all-zero on entry
  // and on exit — the emission pass below resets every touched entry.
  static thread_local std::vector<uint32_t> count;
  static thread_local std::vector<uint32_t> offset;
  static thread_local std::vector<uint32_t> touched;
  if (count.size() < col.cardinality) {
    count.resize(col.cardinality, 0);
    offset.resize(col.cardinality);
  }
  out.rows_.reserve(rows_.size());
  out.starts_.push_back(0);
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    const uint32_t* begin = BlockBegin(b);
    const uint32_t* end = BlockEnd(b);
    touched.clear();
    for (const uint32_t* p = begin; p != end; ++p) {
      uint32_t c = col.codes[*p];
      if (count[c]++ == 0) touched.push_back(c);
    }
    const uint32_t base = static_cast<uint32_t>(out.rows_.size());
    uint32_t pos = 0;
    for (uint32_t c : touched) {
      if (count[c] >= 2) {
        offset[c] = base + pos;
        pos += count[c];
        out.starts_.push_back(base + pos);
      } else {
        offset[c] = UINT32_MAX;
      }
    }
    out.rows_.resize(base + pos);
    for (const uint32_t* p = begin; p != end; ++p) {
      uint32_t c = col.codes[*p];
      if (offset[c] != UINT32_MAX) out.rows_[offset[c]++] = *p;
      count[c] = 0;
    }
  }
  if (out.starts_.size() == 1) out.starts_.clear();
  // Drop reserve slack before the caller caches the result: the engine's
  // budget counts capacity, and a sharply-shrinking refinement would
  // otherwise pin parent-sized dead allocations in the cache.
  if (out.rows_.capacity() > out.rows_.size() + out.rows_.size() / 2) {
    out.rows_.shrink_to_fit();
  }
  return out;
}

double Partition::RefinedEntropy(const Column& col,
                                 uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  static thread_local std::vector<uint32_t> count;
  static thread_local std::vector<uint32_t> touched;
  if (count.size() < col.cardinality) count.resize(col.cardinality, 0);
  double sum_clogc = 0.0;
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    const uint32_t* begin = BlockBegin(b);
    const uint32_t* end = BlockEnd(b);
    touched.clear();
    for (const uint32_t* p = begin; p != end; ++p) {
      uint32_t c = col.codes[*p];
      if (count[c]++ == 0) touched.push_back(c);
    }
    for (uint32_t c : touched) {
      // XLogX(1) == 0: sub-singletons vanish, exactly as if stripped.
      sum_clogc += XLogX(static_cast<double>(count[c]));
      count[c] = 0;
    }
  }
  const double n = static_cast<double>(num_rows);
  return std::log(n) - sum_clogc / n;
}

double Partition::EntropyNats(uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  const double n = static_cast<double>(num_rows);
  double sum_clogc = 0.0;
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    sum_clogc += XLogX(static_cast<double>(BlockSize(b)));
  }
  return std::log(n) - sum_clogc / n;
}

}  // namespace ajd
