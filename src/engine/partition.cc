#include "engine/partition.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/math.h"

namespace ajd {

namespace {

// Thread-local scratch shared by the two block-scan loops (RefinedBy and
// RefinedEntropy): code-indexed counters plus the list of codes touched in
// the current block. Invariant: `count` is all-zero between blocks and
// between calls — every user resets exactly the entries it touched.
struct RefineScratch {
  std::vector<uint32_t> count;    // code -> multiplicity within the block
  std::vector<uint32_t> offset;   // code -> write cursor (RefinedBy only)
  std::vector<uint32_t> touched;  // codes seen in the current block
};

RefineScratch& LocalScratch() {
  static thread_local RefineScratch scratch;
  return scratch;
}

// Releases pathologically large scratch when the guarded call finishes: a
// single refinement against a near-key column sizes the code-indexed arrays
// to that column's cardinality, and without the guard every worker thread
// would pin that allocation for the rest of the process.
class ScratchGuard {
 public:
  ScratchGuard(RefineScratch* scratch, uint32_t cardinality)
      : scratch_(scratch), cardinality_(cardinality) {
    if (scratch_->count.size() < cardinality_) {
      scratch_->count.resize(cardinality_, 0);
      scratch_->offset.resize(cardinality_);
    }
  }

  ScratchGuard(const ScratchGuard&) = delete;
  ScratchGuard& operator=(const ScratchGuard&) = delete;

  ~ScratchGuard() {
    static constexpr size_t kKeepEntries = size_t{1} << 16;
    const size_t cap = scratch_->count.capacity();
    if (cap > kKeepEntries && cap / 4 > cardinality_) {
      // This call was a spike relative to the steady state; drop the
      // buffers entirely (the next call re-sizes to what it needs).
      std::vector<uint32_t>().swap(scratch_->count);
      std::vector<uint32_t>().swap(scratch_->offset);
      std::vector<uint32_t>().swap(scratch_->touched);
    }
  }

 private:
  RefineScratch* scratch_;
  uint32_t cardinality_;
};

// The common counting pass: tallies the block's dense codes into
// scratch->count, recording each first-seen code in scratch->touched. The
// caller must zero the touched entries before the next block.
inline void CountBlockCodes(const uint32_t* begin, const uint32_t* end,
                            const std::vector<uint32_t>& codes,
                            RefineScratch* scratch) {
  scratch->touched.clear();
  for (const uint32_t* p = begin; p != end; ++p) {
    uint32_t c = codes[*p];
    if (scratch->count[c]++ == 0) scratch->touched.push_back(c);
  }
}

}  // namespace

Partition Partition::Trivial(uint64_t num_rows) {
  AJD_CHECK(num_rows < UINT32_MAX);
  Partition out;
  if (num_rows < 2) return out;  // a lone row is a singleton: stripped away
  out.rows_.resize(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    out.rows_[i] = static_cast<uint32_t>(i);
  }
  out.starts_ = {0, static_cast<uint32_t>(num_rows)};
  return out;
}

Partition Partition::OfColumn(const Column& col) {
  const size_t n = col.codes.size();
  AJD_CHECK(n < UINT32_MAX);
  Partition out;
  if (n == 0) return out;
  std::vector<uint32_t> count(col.cardinality, 0);
  for (uint32_t c : col.codes) ++count[c];
  std::vector<uint32_t> offset(col.cardinality, UINT32_MAX);
  uint32_t total = 0;
  for (uint32_t c = 0; c < col.cardinality; ++c) {
    if (count[c] >= 2) {
      offset[c] = total;
      total += count[c];
      out.starts_.push_back(total);  // ends; start sentinel inserted below
    }
  }
  if (total == 0) {
    out.starts_.clear();
    return out;
  }
  out.starts_.insert(out.starts_.begin(), 0);
  out.rows_.resize(total);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = col.codes[i];
    if (offset[c] != UINT32_MAX) out.rows_[offset[c]++] = i;
  }
  return out;
}

Partition Partition::RefinedBy(const Column& col) const {
  Partition out;
  if (NumBlocks() == 0) return out;
  // Scratch over dense codes, reused across calls (refinement is the hot
  // loop of every entropy miss); the guard sheds it again after a
  // high-cardinality spike.
  RefineScratch& scratch = LocalScratch();
  ScratchGuard guard(&scratch, col.cardinality);
  out.rows_.reserve(rows_.size());
  out.starts_.push_back(0);
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    const uint32_t* begin = BlockBegin(b);
    const uint32_t* end = BlockEnd(b);
    CountBlockCodes(begin, end, col.codes, &scratch);
    const uint32_t base = static_cast<uint32_t>(out.rows_.size());
    uint32_t pos = 0;
    for (uint32_t c : scratch.touched) {
      if (scratch.count[c] >= 2) {
        scratch.offset[c] = base + pos;
        pos += scratch.count[c];
        out.starts_.push_back(base + pos);
      } else {
        scratch.offset[c] = UINT32_MAX;
      }
    }
    out.rows_.resize(base + pos);
    for (const uint32_t* p = begin; p != end; ++p) {
      uint32_t c = col.codes[*p];
      if (scratch.offset[c] != UINT32_MAX) out.rows_[scratch.offset[c]++] = *p;
      scratch.count[c] = 0;
    }
  }
  if (out.starts_.size() == 1) out.starts_.clear();
  // Drop reserve slack before the caller caches the result: the engine's
  // budget counts capacity, and a sharply-shrinking refinement would
  // otherwise pin parent-sized dead allocations in the cache.
  if (out.rows_.capacity() > out.rows_.size() + out.rows_.size() / 2) {
    out.rows_.shrink_to_fit();
  }
  return out;
}

double Partition::RefinedEntropy(const Column& col,
                                 uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  RefineScratch& scratch = LocalScratch();
  ScratchGuard guard(&scratch, col.cardinality);
  double sum_clogc = 0.0;
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    CountBlockCodes(BlockBegin(b), BlockEnd(b), col.codes, &scratch);
    for (uint32_t c : scratch.touched) {
      // XLogX(1) == 0: sub-singletons vanish, exactly as if stripped.
      sum_clogc += XLogX(static_cast<double>(scratch.count[c]));
      scratch.count[c] = 0;
    }
  }
  const double n = static_cast<double>(num_rows);
  return std::log(n) - sum_clogc / n;
}

double Partition::EntropyNats(uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  const double n = static_cast<double>(num_rows);
  double sum_clogc = 0.0;
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    sum_clogc += XLogX(static_cast<double>(BlockSize(b)));
  }
  return std::log(n) - sum_clogc / n;
}

}  // namespace ajd
