#include "engine/partition.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/refine_kernels.h"
#include "util/math.h"

namespace ajd {

namespace {

// Scratch for the partition's own kernel calls: each view is consumed
// before the call that built it returns, and these methods never nest on
// one thread, so a single thread-local instance suffices.
thread_local PartitionViewScratch g_view_scratch;

// Tail-slack policy (see partition.h): a block that grows, or is freshly
// emitted by an in-place refinement, reserves cap = size + size/2 + 2 —
// geometric, so a steadily-growing block relocates O(log growth) times —
// clamped to keep the uint32 offset arithmetic safe.
uint32_t GrowCap(uint64_t size) {
  uint64_t cap = size + size / 2 + 2;
  if (cap > UINT32_MAX - 1) cap = UINT32_MAX - 1;
  return static_cast<uint32_t>(cap);
}

// Row -> old-parent-block index for the seeding (no-metadata) extension
// paths. NEVER cleared: every read indexes a child row, child rows are a
// subset of the old parent's stripped rows, and those are exactly the
// entries each seeding pass writes — stale values from earlier extensions
// are unreachable.
thread_local std::vector<uint32_t> g_row_to_op;

void SeedRowToBlock(const Partition& parent_old, uint64_t old_rows) {
  if (g_row_to_op.size() < old_rows) {
    g_row_to_op.resize(static_cast<size_t>(old_rows));
  }
  const uint32_t opn = parent_old.NumBlocks();
  for (uint32_t j = 0; j < opn; ++j) {
    const uint32_t* pb = parent_old.BlockBegin(j);
    const uint32_t* pe = parent_old.BlockEnd(j);
    for (const uint32_t* p = pb; p != pe; ++p) g_row_to_op[*p] = j;
  }
}

}  // namespace

PartitionView Partition::View(PartitionViewScratch* scratch) const {
  PartitionView v;
  if (!chunked_) {
    if (starts_.empty()) return v;
    scratch->runs.resize(1);
    scratch->runs[0] =
        PartitionRun{rows_.data(), starts_.data(),
                     static_cast<uint32_t>(starts_.size() - 1)};
    v.runs = scratch->runs.data();
    v.num_runs = 1;
    v.mass = rows_.size();
    return v;
  }
  const uint32_t nb = static_cast<uint32_t>(blocks_.size());
  if (nb == 0) return v;
  // A run breaks wherever the next block's rows do not start exactly at
  // the previous block's live end — slack, a relocation strand, or a chunk
  // boundary all break contiguity. Pass 1 counts runs so the scratch is
  // sized BEFORE any pointer into it is taken.
  auto breaks_run = [&](uint32_t b) {
    const BlockRef& prev = blocks_[b - 1];
    const BlockRef& cur = blocks_[b];
    return cur.chunk != prev.chunk ||
           cur.offset != prev.offset + prev.size;
  };
  uint32_t num_runs = 1;
  for (uint32_t b = 1; b < nb; ++b) {
    if (breaks_run(b)) ++num_runs;
  }
  if (scratch->runs.size() < num_runs) scratch->runs.resize(num_runs);
  if (scratch->starts.size() < nb + num_runs) {
    scratch->starts.resize(nb + num_runs);
  }
  PartitionRun* runs = scratch->runs.data();
  uint32_t* starts = scratch->starts.data();
  uint32_t run = 0;
  uint32_t run_first = 0;
  uint32_t start_base = 0;
  auto close_run = [&](uint32_t first, uint32_t past) {
    const BlockRef& head = blocks_[first];
    uint32_t* s = starts + start_base;
    uint32_t acc = 0;
    s[0] = 0;
    for (uint32_t b = first; b < past; ++b) {
      acc += blocks_[b].size;
      s[b - first + 1] = acc;
    }
    runs[run++] = PartitionRun{
        chunks_[head.chunk].data.data() + head.offset, s, past - first};
    start_base += past - first + 1;
  };
  for (uint32_t b = 1; b < nb; ++b) {
    if (breaks_run(b)) {
      close_run(run_first, b);
      run_first = b;
    }
  }
  close_run(run_first, nb);
  v.runs = runs;
  v.num_runs = num_runs;
  v.mass = mass_;
  return v;
}

void Partition::AdoptChunked() {
  AJD_CHECK(!chunked_);
  const uint32_t nb = NumBlocks();
  mass_ = rows_.size();
  blocks_.clear();
  blocks_.reserve(nb);
  chunks_.clear();
  // Every block is laid out with its full tail slack up front. Aliasing the
  // flat array in place (cap == size) would be free here, but then the
  // first uniform-stream batch — which touches every block — would relocate
  // ALL of them, stranding the entire old array at once; paying one
  // organized O(mass) copy now means subsequent appends land in slack no
  // matter which blocks a batch touches.
  for (uint32_t b = 0; b < nb; ++b) {
    const uint32_t size = starts_[b + 1] - starts_[b];
    BlockRef r = AllocRegion(GrowCap(size));
    r.size = size;
    std::copy(rows_.begin() + starts_[b], rows_.begin() + starts_[b + 1],
              MutableBlockRows(r));
    blocks_.push_back(r);
  }
  std::vector<uint32_t>().swap(rows_);
  std::vector<uint32_t>().swap(starts_);
  chunked_ = true;
}

Partition::BlockRef Partition::AllocRegion(uint32_t cap) {
  if (chunks_.empty() ||
      chunks_.back().data.size() - chunks_.back().used < cap) {
    // Fresh chunk: geometric in the partition's mass, clamped, never
    // smaller than the request.
    constexpr uint64_t kMinChunkWords = uint64_t{1} << 12;
    constexpr uint64_t kMaxChunkWords = uint64_t{1} << 20;
    uint64_t words = mass_ / 2;
    if (words < kMinChunkWords) words = kMinChunkWords;
    if (words > kMaxChunkWords) words = kMaxChunkWords;
    if (words < cap) words = cap;
    Chunk c;
    c.data.resize(words);
    chunks_.push_back(std::move(c));
  }
  Chunk& ch = chunks_.back();
  BlockRef r;
  r.chunk = static_cast<uint32_t>(chunks_.size() - 1);
  r.offset = ch.used;
  r.size = 0;
  r.cap = cap;
  ch.used += cap;
  return r;
}

void Partition::FlattenStripped(std::vector<uint32_t>* rows,
                                std::vector<uint32_t>* offsets) const {
  rows->clear();
  offsets->clear();
  const uint32_t nb = NumBlocks();
  if (nb == 0) return;
  if (!chunked_) {
    *rows = rows_;
    *offsets = starts_;
    return;
  }
  rows->reserve(mass_);
  offsets->reserve(nb + 1);
  offsets->push_back(0);
  for (uint32_t b = 0; b < nb; ++b) {
    rows->insert(rows->end(), BlockBegin(b), BlockEnd(b));
    offsets->push_back(static_cast<uint32_t>(rows->size()));
  }
}

void Partition::FlattenInPlace() {
  if (!chunked_) return;
  std::vector<uint32_t> rows;
  std::vector<uint32_t> offsets;
  FlattenStripped(&rows, &offsets);
  rows_ = std::move(rows);
  starts_ = std::move(offsets);
  chunks_.clear();
  chunks_.shrink_to_fit();
  blocks_.clear();
  blocks_.shrink_to_fit();
  mass_ = 0;
  chunked_ = false;
}

void Partition::MaybeReclaim() {
  if (!chunked_) return;
  uint64_t held = 0;
  for (const Chunk& c : chunks_) held += c.data.size();
  // A freshly adopted layout legitimately holds ~1.5x its mass plus two
  // words of slack per block (GrowCap) plus one partially-filled chunk
  // tail; only once relocation strands and re-refined runs push past twice
  // the live mass BEYOND that baseline is compaction worth an O(mass) copy
  // back to flat. The grace chunk keeps small partitions from thrashing
  // between layouts. A full relocation wave (every block outgrowing its
  // slack at once) lands just past this threshold, so the wave's own copy
  // and the flatten share one cache-hot pass through the data.
  const uint64_t baseline =
      3 * mass_ + 4 * static_cast<uint64_t>(blocks_.size());
  if (held > baseline + (uint64_t{1} << 12)) FlattenInPlace();
}

Partition Partition::Trivial(uint64_t num_rows) {
  AJD_CHECK(num_rows < UINT32_MAX);
  Partition out;
  if (num_rows < 2) return out;  // a lone row is a singleton: stripped away
  out.rows_.resize(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    out.rows_[i] = static_cast<uint32_t>(i);
  }
  out.starts_ = {0, static_cast<uint32_t>(num_rows)};
  return out;
}

Result<Partition> Partition::FromStripped(std::vector<uint32_t> rows,
                                          std::vector<uint32_t> offsets,
                                          uint64_t row_bound) {
  if (rows.empty() && offsets.empty()) return Partition();
  if (offsets.size() < 2 || offsets.front() != 0 ||
      offsets.back() != rows.size() || rows.size() >= UINT32_MAX) {
    return Status::InvalidArgument("stripped payload: bad offset frame");
  }
  for (size_t b = 0; b + 1 < offsets.size(); ++b) {
    if (offsets[b + 1] < offsets[b] + 2) {
      return Status::InvalidArgument(
          "stripped payload: block of size < 2 (singletons are never stored)");
    }
    for (uint32_t i = offsets[b]; i + 1 < offsets[b + 1]; ++i) {
      if (rows[i] >= rows[i + 1]) {
        return Status::InvalidArgument(
            "stripped payload: rows not ascending within a block");
      }
    }
  }
  // Row ids in range and in at most one block: a duplicated row would make
  // the partition over-count its own mass (and every entropy derived from
  // it wrong), so the O(row_bound) membership scratch is the price of
  // admitting foreign bytes into the cache.
  std::vector<bool> seen(row_bound, false);
  for (uint32_t r : rows) {
    if (r >= row_bound) {
      return Status::InvalidArgument("stripped payload: row id out of range");
    }
    if (seen[r]) {
      return Status::InvalidArgument(
          "stripped payload: row id appears in two blocks");
    }
    seen[r] = true;
  }
  Partition out;
  out.rows_ = std::move(rows);
  out.starts_ = std::move(offsets);
  return out;
}

Partition Partition::OfColumn(const Column& col) {
  const size_t n = col.codes.size();
  AJD_CHECK(n < UINT32_MAX);
  Partition out;
  if (n == 0) return out;
  if (col.cardinality >= n) {
    // Near-key column: the counting construction below would allocate two
    // cardinality-sized vectors (count + offset) to strip almost every
    // row. The sort path's scratch is row-sized and its output — blocks in
    // ascending code order, rows ascending — is identical.
    SortPartitionOfColumn(col, PartitionBuild{&out.rows_, &out.starts_});
    return out;
  }
  std::vector<uint32_t> count(col.cardinality, 0);
  for (uint32_t c : col.codes) ++count[c];
  std::vector<uint32_t> offset(col.cardinality, UINT32_MAX);
  uint32_t total = 0;
  for (uint32_t c = 0; c < col.cardinality; ++c) {
    if (count[c] >= 2) {
      offset[c] = total;
      total += count[c];
      out.starts_.push_back(total);  // ends; start sentinel inserted below
    }
  }
  if (total == 0) {
    out.starts_.clear();
    return out;
  }
  out.starts_.insert(out.starts_.begin(), 0);
  out.rows_.resize(total);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = col.codes[i];
    if (offset[c] != UINT32_MAX) out.rows_[offset[c]++] = i;
  }
  return out;
}

Partition Partition::RefinedBy(const Column& col, RefineKernel kernel,
                               PartitionDelta* delta_out) const {
  Partition out;
  // The kernel stages into thread-local scratch and copies out at exact
  // size, so the result carries no dead capacity into the engine's cache.
  RefineByColumn(View(&g_view_scratch), col, kernel,
                 PartitionBuild{&out.rows_, &out.starts_}, delta_out);
  return out;
}

double Partition::RefinedEntropy(const Column& col, uint64_t num_rows,
                                 RefineKernel kernel) const {
  if (num_rows == 0) return 0.0;
  return RefineEntropy(View(&g_view_scratch), col, kernel, num_rows);
}

Partition Partition::RefinedByAll(const Column* const* cols, size_t k,
                                  uint32_t composite_card) const {
  Partition out;
  RefineByComposite(View(&g_view_scratch), cols, k, composite_card,
                    PartitionBuild{&out.rows_, &out.starts_});
  if (out.rows_.capacity() > out.rows_.size() + out.rows_.size() / 2) {
    out.rows_.shrink_to_fit();
  }
  return out;
}

double Partition::RefinedEntropyAll(const Column* const* cols, size_t k,
                                    uint32_t composite_card,
                                    uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  return RefineCompositeEntropy(View(&g_view_scratch), cols, k,
                                composite_card, num_rows);
}

double Partition::RefinedByWithEntropy(const Column& c1, const Column& c2,
                                       uint32_t composite_card,
                                       uint64_t num_rows,
                                       Partition* out) const {
  if (num_rows == 0) {
    *out = RefinedBy(c1);
    return 0.0;
  }
  const double h = RefineByColumnWithEntropy(
      View(&g_view_scratch), c1, c2, composite_card, num_rows,
      PartitionBuild{&out->rows_, &out->starts_});
  if (out->rows_.capacity() > out->rows_.size() + out->rows_.size() / 2) {
    out->rows_.shrink_to_fit();
  }
  return h;
}

Partition Partition::RefinedBySharded(const Column& col, RefineKernel kernel,
                                      uint32_t threads, WorkerPool* pool,
                                      PartitionDelta* delta_out) const {
  Partition out;
  RefineByColumnSharded(View(&g_view_scratch), col, kernel, threads, pool,
                        PartitionBuild{&out.rows_, &out.starts_}, delta_out);
  return out;
}

double Partition::RefinedEntropySharded(const Column& col, uint64_t num_rows,
                                        RefineKernel kernel, uint32_t threads,
                                        WorkerPool* pool) const {
  if (num_rows == 0) return 0.0;
  return RefineEntropySharded(View(&g_view_scratch), col, kernel, num_rows,
                              threads, pool);
}

Partition Partition::RefinedByAllSharded(const Column* const* cols, size_t k,
                                         uint32_t composite_card,
                                         uint32_t threads,
                                         WorkerPool* pool) const {
  Partition out;
  RefineByCompositeSharded(View(&g_view_scratch), cols, k, composite_card,
                           threads, pool,
                           PartitionBuild{&out.rows_, &out.starts_});
  if (out.rows_.capacity() > out.rows_.size() + out.rows_.size() / 2) {
    out.rows_.shrink_to_fit();
  }
  return out;
}

double Partition::RefinedEntropyAllSharded(const Column* const* cols,
                                           size_t k, uint32_t composite_card,
                                           uint64_t num_rows, uint32_t threads,
                                           WorkerPool* pool) const {
  if (num_rows == 0) return 0.0;
  return RefineCompositeEntropySharded(View(&g_view_scratch), cols, k,
                                       composite_card, num_rows, threads,
                                       pool);
}

double Partition::RefinedByWithEntropySharded(const Column& c1,
                                              const Column& c2,
                                              uint32_t composite_card,
                                              uint64_t num_rows,
                                              uint32_t threads,
                                              WorkerPool* pool,
                                              Partition* out) const {
  if (num_rows == 0) {
    *out = RefinedBy(c1);
    return 0.0;
  }
  const double h = RefineByColumnWithEntropySharded(
      View(&g_view_scratch), c1, c2, composite_card, num_rows, threads, pool,
      PartitionBuild{&out->rows_, &out->starts_});
  if (out->rows_.capacity() > out->rows_.size() + out->rows_.size() / 2) {
    out->rows_.shrink_to_fit();
  }
  return h;
}

Partition Partition::ExtendedOfColumn(const Column& col,
                                      uint64_t old_rows) const {
  const uint64_t n = col.codes.size();
  AJD_CHECK(n >= old_rows && n < UINT32_MAX);
  if (n == old_rows) return *this;
  AJD_CHECK_MSG(col.first_row.size() == col.cardinality,
                "ExtendedOfColumn needs a store-densified column "
                "(first_row present)");

  // Tally the appended rows per code, collecting the touched codes; the
  // scatter below re-reads them grouped by code in ascending row order.
  // The code-indexed arrays are thread-local and grow-only (a fresh
  // O(cardinality) zero-fill per root partition per catch-up would bite
  // on near-key columns); the touched-entry resets at the end keep them
  // clean for the next call.
  static thread_local std::vector<uint32_t> count_new;
  static thread_local std::vector<uint32_t> cursor;
  if (count_new.size() < col.cardinality) {
    count_new.resize(col.cardinality, 0);
    cursor.resize(col.cardinality);
  }
  std::vector<uint32_t> new_codes;
  for (uint64_t i = old_rows; i < n; ++i) {
    const uint32_t c = col.codes[i];
    if (count_new[c]++ == 0) new_codes.push_back(c);
  }
  std::sort(new_codes.begin(), new_codes.end());
  uint32_t acc = 0;
  std::vector<uint32_t> bucket_start(new_codes.size() + 1, 0);
  for (size_t j = 0; j < new_codes.size(); ++j) {
    bucket_start[j] = acc;
    cursor[new_codes[j]] = acc;
    acc += count_new[new_codes[j]];
  }
  bucket_start[new_codes.size()] = acc;
  std::vector<uint32_t> delta_rows(acc);
  for (uint64_t i = old_rows; i < n; ++i) {
    delta_rows[cursor[col.codes[i]]++] = static_cast<uint32_t>(i);
  }
  for (uint32_t c : new_codes) count_new[c] = 0;  // scratch stays clean

  // Dense codes are assigned in first-occurrence order, so first_row is
  // strictly increasing: codes seen before the append are exactly those
  // below old_card.
  const uint32_t old_card = static_cast<uint32_t>(
      std::lower_bound(col.first_row.begin(), col.first_row.end(),
                       static_cast<uint32_t>(old_rows)) -
      col.first_row.begin());

  // Merge the old blocks (ascending code — OfColumn's emission order) with
  // the codes the appended rows touched, in ascending code order.
  Partition out;
  out.rows_.reserve(NumStrippedRows() + acc);
  out.starts_.push_back(0);
  uint32_t ob = 0;
  size_t nc = 0;
  const uint32_t num_old_blocks = NumBlocks();
  while (ob < num_old_blocks || nc < new_codes.size()) {
    const uint32_t old_code = ob < num_old_blocks
                                  ? col.codes[BlockBegin(ob)[0]]
                                  : UINT32_MAX;
    const uint32_t new_code =
        nc < new_codes.size() ? new_codes[nc] : UINT32_MAX;
    if (old_code < new_code) {
      // Untouched old block: copied verbatim.
      out.rows_.insert(out.rows_.end(), BlockBegin(ob), BlockEnd(ob));
      out.starts_.push_back(static_cast<uint32_t>(out.rows_.size()));
      ++ob;
    } else {
      const uint32_t c = new_code;
      const uint32_t added = bucket_start[nc + 1] - bucket_start[nc];
      if (old_code == new_code) {
        // Grown old block: old rows (ascending) then appended rows.
        out.rows_.insert(out.rows_.end(), BlockBegin(ob), BlockEnd(ob));
        ++ob;
      } else if (c < old_card) {
        // Promoted singleton: its lone pre-append row is the code's first
        // occurrence.
        out.rows_.push_back(col.first_row[c]);
      } else if (added < 2) {
        // Brand-new code appearing once: still a singleton, stripped.
        ++nc;
        continue;
      }
      out.rows_.insert(out.rows_.end(),
                       delta_rows.begin() + bucket_start[nc],
                       delta_rows.begin() + bucket_start[nc + 1]);
      out.starts_.push_back(static_cast<uint32_t>(out.rows_.size()));
      ++nc;
    }
  }
  if (out.starts_.size() == 1) out.starts_.clear();
  return out;
}

void Partition::ExtendOfColumnInPlace(const Column& col, uint64_t old_rows) {
  const uint64_t n = col.codes.size();
  AJD_CHECK(n >= old_rows && n < UINT32_MAX);
  if (n == old_rows) return;
  AJD_CHECK_MSG(col.first_row.size() == col.cardinality,
                "ExtendOfColumnInPlace needs a store-densified column "
                "(first_row present)");

  // Identical appended-row tally to ExtendedOfColumn's (same scratch
  // discipline; separate thread-locals so the two never alias).
  static thread_local std::vector<uint32_t> count_new;
  static thread_local std::vector<uint32_t> cursor;
  if (count_new.size() < col.cardinality) {
    count_new.resize(col.cardinality, 0);
    cursor.resize(col.cardinality);
  }
  std::vector<uint32_t> new_codes;
  for (uint64_t i = old_rows; i < n; ++i) {
    const uint32_t c = col.codes[i];
    if (count_new[c]++ == 0) new_codes.push_back(c);
  }
  std::sort(new_codes.begin(), new_codes.end());
  uint32_t acc = 0;
  std::vector<uint32_t> bucket_start(new_codes.size() + 1, 0);
  for (size_t j = 0; j < new_codes.size(); ++j) {
    bucket_start[j] = acc;
    cursor[new_codes[j]] = acc;
    acc += count_new[new_codes[j]];
  }
  bucket_start[new_codes.size()] = acc;
  std::vector<uint32_t> delta_rows(acc);
  for (uint64_t i = old_rows; i < n; ++i) {
    delta_rows[cursor[col.codes[i]]++] = static_cast<uint32_t>(i);
  }
  for (uint32_t c : new_codes) count_new[c] = 0;  // scratch stays clean

  const uint32_t old_card = static_cast<uint32_t>(
      std::lower_bound(col.first_row.begin(), col.first_row.end(),
                       static_cast<uint32_t>(old_rows)) -
      col.first_row.begin());

  if (!chunked_) AdoptChunked();
  const uint32_t old_nb = NumBlocks();
  // Merge in ascending code order, exactly ExtendedOfColumn's emission —
  // but untouched old blocks are never copied: grown blocks append into
  // their slack through their headers, and the header list is only rebuilt
  // (20-byte header copies, O(blocks)) once the first NEW block has to be
  // spliced in.
  static thread_local std::vector<BlockRef> staged;
  bool structural = false;
  uint32_t pb = 0;  // old-block cursor (ascending code order)
  // Header-memoized block codes (see BlockRef::code): the first walk after
  // adoption gathers codes[first row] once per probed block; later walks
  // read the header word.
  auto block_code = [&](uint32_t b) {
    uint32_t c = blocks_[b].code;
    if (c == kNoCode) {
      c = col.codes[*BlockBegin(b)];
      blocks_[b].code = c;
    }
    return c;
  };
  // First block in [lo, old_nb) whose code is >= c: blocks sit in
  // ascending code order, so gallop then binary-search — O(log gap) header
  // probes per touched code instead of a linear walk over every block.
  auto lower_block = [&](uint32_t lo, uint32_t c) {
    if (lo >= old_nb || block_code(lo) >= c) return lo;
    uint32_t step = 1;
    uint32_t prev = lo;  // invariant: block_code(prev) < c
    while (lo + step < old_nb && block_code(lo + step) < c) {
      prev = lo + step;
      step <<= 1;
    }
    uint32_t a = prev + 1;
    uint32_t b2 = lo + step < old_nb ? lo + step : old_nb;
    while (a < b2) {
      const uint32_t mid = a + (b2 - a) / 2;
      if (block_code(mid) < c) {
        a = mid + 1;
      } else {
        b2 = mid;
      }
    }
    return a;
  };
  for (size_t nc = 0; nc < new_codes.size(); ++nc) {
    const uint32_t c = new_codes[nc];
    const uint32_t added = bucket_start[nc + 1] - bucket_start[nc];
    const uint32_t pos = lower_block(pb, c);
    if (pos > pb) {
      if (structural) {
        staged.insert(staged.end(), blocks_.begin() + pb,
                      blocks_.begin() + pos);
      }
      pb = pos;
    }
    if (pb < old_nb && block_code(pb) == c) {
      // Grown old block: appended rows (already ascending) at its tail.
      BlockRef& r = blocks_[pb];
      if (r.size + added > r.cap) {
        const uint32_t* src = BlockBegin(pb);
        BlockRef moved = AllocRegion(GrowCap(uint64_t{r.size} + added));
        moved.size = r.size;
        moved.code = c;
        std::copy(src, src + r.size, MutableBlockRows(moved));
        r = moved;
      }
      std::copy(delta_rows.begin() + bucket_start[nc],
                delta_rows.begin() + bucket_start[nc + 1],
                MutableBlockRows(r) + r.size);
      r.size += added;
      mass_ += added;
      if (structural) staged.push_back(r);
      ++pb;
      continue;
    }
    if (c >= old_card && added < 2) continue;  // still a singleton
    // Promoted singleton (its lone pre-append row is the code's first
    // occurrence) or brand-new multi-row code: splice a fresh block in.
    if (!structural) {
      structural = true;
      staged.assign(blocks_.begin(), blocks_.begin() + pb);
    }
    const uint32_t promoted = c < old_card ? 1 : 0;
    BlockRef r = AllocRegion(GrowCap(uint64_t{added} + promoted));
    r.size = added + promoted;
    r.code = c;
    uint32_t* w = MutableBlockRows(r);
    if (promoted != 0) *w++ = col.first_row[c];
    std::copy(delta_rows.begin() + bucket_start[nc],
              delta_rows.begin() + bucket_start[nc + 1], w);
    staged.push_back(r);
    mass_ += r.size;
  }
  if (structural) {
    staged.insert(staged.end(), blocks_.begin() + pb, blocks_.end());
    blocks_.assign(staged.begin(), staged.end());
  }
  MaybeReclaim();
}

namespace {

// Warm thread-local staging for the extension walk (ExtendStageBy and its
// two wrappers live in this TU): a per-call resize would zero-fill the
// whole mass every batch, and per-block push_backs would pay a capacity
// check per tiny block. The arrays keep their pages across catch-ups.
// Staged rows sit at their ABSOLUTE output offsets (the identical prefix's
// slots are simply never written), so no index arithmetic differs between
// the staged and prefix regions.
thread_local std::vector<uint32_t> g_ext_rows;
thread_local std::vector<uint32_t> g_ext_starts;

}  // namespace

Partition::ExtendStaged Partition::ExtendStageBy(const Partition* parent_old,
                                                 const Partition& parent_new,
                                                 const Column& col,
                                                 uint64_t old_rows,
                                                 const PartitionDelta* meta,
                                                 PartitionDelta* delta_out) const {
  ExtendStaged res;
  AJD_CHECK(!chunked_);  // the staged walk reads the flat arrays directly
  const uint32_t nb = parent_new.NumBlocks();
  AJD_CHECK(nb > 0);
  AJD_CHECK(parent_old != nullptr || meta != nullptr);
  if (delta_out != nullptr) {
    delta_out->run_lengths.clear();
    delta_out->run_lengths.reserve(nb);
    delta_out->parent_first_rows.clear();
    delta_out->parent_first_rows.reserve(nb);
  }
  const uint64_t out_mass_bound = parent_new.NumStrippedRows();
  if (g_ext_rows.size() < out_mass_bound) g_ext_rows.resize(out_mass_bound);
  if (g_ext_starts.size() < out_mass_bound / 2 + 2) {
    g_ext_starts.resize(out_mass_bound / 2 + 2);
  }
  uint32_t* out_rows = g_ext_rows.data();
  uint32_t* out_starts = g_ext_starts.data();
  uint32_t num_starts = 0;
  uint32_t total = 0;
  // While true, every output block so far is bit-identical to this
  // partition's own leading blocks (ungrown matched parent blocks emit
  // their old child runs verbatim, and row IDS — not positions — are what
  // blocks hold), so nothing needs staging until the first affected
  // parent block. On streams with temporal locality that prefix is most
  // of the mass.
  bool in_prefix = true;

  // Parent-block correspondence. Steady state (`meta`): the previous
  // extension's run lengths and parent first rows make every decision an
  // array read — no scans at all. Seeding (`parent_old`): a thread-local
  // row -> old-parent-block index; the scratch is NEVER cleared, because
  // every read below indexes a child row, child rows are a subset of the
  // old parent's stripped rows, and those are exactly the entries this
  // call writes — stale values from earlier extensions are unreachable.
  // Seeding cost is O(parent mass); metadata-driven cost is O(parent
  // blocks).
  const bool scan_free = meta != nullptr;
  const uint32_t opn = scan_free
                           ? static_cast<uint32_t>(meta->run_lengths.size())
                           : parent_old->NumBlocks();
  AJD_CHECK(!scan_free ||
            meta->parent_first_rows.size() == meta->run_lengths.size());
  if (!scan_free) SeedRowToBlock(*parent_old, old_rows);
  // Scratch for the grown-block delta path: code -> run slot, per-run
  // new-row tallies, the grouped new rows, and the tally arrays of the
  // inline per-block refinement below. The code-indexed arrays are
  // thread-local and grow-only — a fresh O(cardinality) allocation +
  // zero-fill per cached partition per catch-up would dominate on
  // near-key columns — and they stay clean by discipline: every user
  // resets exactly the entries it touched (code_slot back to UINT32_MAX,
  // cnt back to 0), so only newly grown capacity ever needs filling.
  static thread_local std::vector<uint32_t> code_slot;
  static thread_local std::vector<uint32_t> cnt;
  static thread_local std::vector<uint32_t> off;
  if (code_slot.size() < col.cardinality) {
    code_slot.resize(col.cardinality, UINT32_MAX);
    cnt.resize(col.cardinality, 0);
    off.resize(col.cardinality);
  }
  std::vector<uint32_t> run_count;
  std::vector<uint32_t> run_offset;
  std::vector<uint32_t> grouped_tail;
  std::vector<uint32_t> touched;
  std::vector<uint32_t> block_codes;
  const uint32_t* codes = col.codes.data();
  const uint32_t* codes_end = codes + col.codes.size();
  // Refines one parent block from scratch, appending to the output.
  // Emission is identical to the kernels: sub-blocks in first-occurrence
  // order of the code, rows ascending, singletons dropped. Like the
  // kernels, the tally gathers with a software-prefetch lookahead and
  // keeps the gathered codes for the scatter pass — these blocks' rows
  // are scattered across the whole codes array, and a serial re-gather
  // would leave the pass memory-latency bound.
  auto refine_block = [&](const uint32_t* bb, const uint32_t* be) {
    const size_t m = static_cast<size_t>(be - bb);
    if (block_codes.size() < m) block_codes.resize(m);
    touched.clear();
    constexpr size_t kGatherAhead = 16;
    for (size_t i = 0; i < m; ++i) {
      if (i + kGatherAhead < m &&
          codes + bb[i + kGatherAhead] < codes_end) {
        __builtin_prefetch(&codes[bb[i + kGatherAhead]]);
      }
      const uint32_t c = codes[bb[i]];
      block_codes[i] = c;
      if (cnt[c]++ == 0) touched.push_back(c);
    }
    uint32_t pos = total;
    for (uint32_t c : touched) {
      if (cnt[c] >= 2) {
        off[c] = pos;
        pos += cnt[c];
        out_starts[num_starts++] = pos;
      } else {
        off[c] = UINT32_MAX;
      }
    }
    for (size_t i = 0; i < m; ++i) {
      const uint32_t c = block_codes[i];
      if (off[c] != UINT32_MAX) out_rows[off[c]++] = bb[i];
    }
    for (uint32_t c : touched) cnt[c] = 0;
    total = pos;
  };

  const uint32_t num_child = NumBlocks();
  const uint32_t* child_rows = rows_.data();
  uint32_t op = 0;  // old-parent block cursor
  uint32_t oc = 0;  // old-child block cursor
  // Finds the end of old parent block op's child run starting at oc.
  auto find_run_end = [&](uint32_t from) {
    if (scan_free) return from + meta->run_lengths[op];
    uint32_t j = from;
    while (j < num_child && g_row_to_op[child_rows[starts_[j]]] == op) {
      if (j + 8 < num_child) {
        __builtin_prefetch(&g_row_to_op[child_rows[starts_[j + 8]]]);
      }
      ++j;
    }
    return j;
  };
  auto emit_delta = [&](uint32_t first_row, uint32_t emitted) {
    if (delta_out != nullptr) {
      delta_out->parent_first_rows.push_back(first_row);
      delta_out->run_lengths.push_back(emitted);
    }
  };
  for (uint32_t b = 0; b < nb; ++b) {
    const uint32_t* begin = parent_new.BlockBegin(b);
    const uint32_t* end = parent_new.BlockEnd(b);
    // Old blocks reappear in the extended parent in their old relative
    // order with their first row unchanged (appends only ever add rows at
    // a block's tail), so a first-row match identifies the correspondence
    // — against the recorded first rows in the scan-free mode, against the
    // retained old parent otherwise.
    const uint32_t old_first =
        op >= opn ? UINT32_MAX
                  : (scan_free ? meta->parent_first_rows[op]
                               : parent_old->BlockBegin(op)[0]);
    const bool brand_new = old_first != begin[0];
    // Appended rows sort to the tail of a block, so the last row tells
    // whether a matched block grew. An ungrown block is row-for-row
    // identical to its old self, and its sub-blocks are exactly the old
    // child's run.
    const bool grew = end[-1] >= old_rows;
    if (in_prefix && !brand_new && !grew) {
      // Still inside the bit-identical prefix: consume the run without
      // copying anything.
      const uint32_t run = find_run_end(oc) - oc;
      emit_delta(begin[0], run);
      oc += run;
      ++op;
      continue;
    }
    if (in_prefix) {
      // First affected parent block: everything before it stays as-is.
      in_prefix = false;
      res.prefix_blocks = oc;
      res.prefix_rows = oc > 0 ? starts_[oc] : 0;
      total = static_cast<uint32_t>(res.prefix_rows);
    }
    if (brand_new) {
      // Brand-new parent block: a promoted parent-level singleton plus the
      // appended rows that joined it. No old child state exists; refine it
      // from scratch (bit-identical to the cold kernel on this block).
      const uint32_t before = num_starts;
      refine_block(begin, end);
      emit_delta(begin[0], num_starts - before);
      continue;
    }
    const uint32_t run_begin = oc;
    const uint32_t run_end = find_run_end(oc);
    oc = run_end;
    if (!grew) {
      // Ungrown matched block past the prefix: one bulk copy of the old
      // run, starts rebased by a constant.
      if (run_end > run_begin) {  // empty runs have no starts_ to index
        const uint32_t src = starts_[run_begin];
        const uint32_t len = starts_[run_end] - src;
        std::copy(child_rows + src, child_rows + src + len,
                  out_rows + total);
        const uint32_t rebase = total - src;
        for (uint32_t j = run_begin + 1; j <= run_end; ++j) {
          out_starts[num_starts++] = starts_[j] + rebase;
        }
        total += len;
      }
      emit_delta(begin[0], run_end - run_begin);
      ++op;
      continue;
    }
    // Grown block: the delta fast path. If every appended row's code
    // already owns a sub-block, the cold first-occurrence emission is
    // exactly the old run order with each sub-block's new rows appended
    // at its tail — no re-tally of the old rows at all. A code WITHOUT an
    // old sub-block (a promoted sub-singleton or a brand-new value)
    // interleaves by its first occurrence among the old rows, which only
    // a full per-block refinement reproduces; that fallback fades once a
    // column's value set stabilizes.
    const uint32_t runs = run_end - run_begin;
    for (uint32_t j = 0; j < runs; ++j) {
      code_slot[col.codes[child_rows[starts_[run_begin + j]]]] = j;
    }
    const uint32_t* tail =
        std::lower_bound(begin, end, static_cast<uint32_t>(old_rows));
    const size_t tail_len = static_cast<size_t>(end - tail);
    if (run_count.size() < runs) {
      run_count.resize(runs);
      run_offset.resize(runs);
    }
    std::fill(run_count.begin(), run_count.begin() + runs, 0);
    bool fast = true;
    for (const uint32_t* p = tail; p != end; ++p) {
      const uint32_t slot = code_slot[col.codes[*p]];
      if (slot == UINT32_MAX) {
        fast = false;
        break;
      }
      ++run_count[slot];
    }
    if (fast) {
      uint32_t acc = 0;
      for (uint32_t j = 0; j < runs; ++j) {
        run_offset[j] = acc;
        acc += run_count[j];
      }
      if (grouped_tail.size() < tail_len) grouped_tail.resize(tail_len);
      for (const uint32_t* p = tail; p != end; ++p) {
        grouped_tail[run_offset[code_slot[col.codes[*p]]]++] = *p;
      }
      uint32_t start = 0;
      for (uint32_t j = 0; j < runs; ++j) {
        const uint32_t src = starts_[run_begin + j];
        const uint32_t len = starts_[run_begin + j + 1] - src;
        std::copy(child_rows + src, child_rows + src + len,
                  out_rows + total);
        total += len;
        std::copy(grouped_tail.begin() + start,
                  grouped_tail.begin() + run_offset[j], out_rows + total);
        total += run_offset[j] - start;
        start = run_offset[j];
        out_starts[num_starts++] = total;
      }
      emit_delta(begin[0], runs);
    } else {
      const uint32_t before = num_starts;
      refine_block(begin, end);
      emit_delta(begin[0], num_starts - before);
    }
    for (uint32_t j = 0; j < runs; ++j) {
      code_slot[codes[child_rows[starts_[run_begin + j]]]] = UINT32_MAX;
    }
    ++op;
  }
  AJD_CHECK(op == opn && oc == num_child);
  if (in_prefix) {
    // No parent block was affected (every appended row is a parent-level
    // singleton): the extension IS the old partition, verbatim.
    res.prefix_blocks = num_child;
    res.prefix_rows = num_child > 0 ? starts_[num_child] : 0;
    total = static_cast<uint32_t>(res.prefix_rows);
  }
  res.total_rows = total;
  res.staged_starts = num_starts;
  return res;
}

Partition Partition::ExtendedBy(const Partition* parent_old,
                                const Partition& parent_new,
                                const Column& col, uint64_t old_rows,
                                const PartitionDelta* meta,
                                PartitionDelta* delta_out) const {
  Partition out;
  if (parent_new.NumBlocks() == 0) {
    if (delta_out != nullptr) {
      delta_out->run_lengths.clear();
      delta_out->parent_first_rows.clear();
    }
    return out;
  }
  if (chunked_) {
    // The staged walk wants a flat child (bulk run copies through the flat
    // offsets). This copy-form path only runs for reader-held entries, so
    // the one-off flatten is the cheap side of the trade.
    Partition flat;
    FlattenStripped(&flat.rows_, &flat.starts_);
    return flat.ExtendedBy(parent_old, parent_new, col, old_rows, meta,
                           delta_out);
  }
  const ExtendStaged st =
      ExtendStageBy(parent_old, parent_new, col, old_rows, meta, delta_out);
  out.rows_.reserve(st.total_rows);
  out.rows_.insert(out.rows_.end(), rows_.begin(),
                   rows_.begin() + st.prefix_rows);
  out.rows_.insert(out.rows_.end(), g_ext_rows.begin() + st.prefix_rows,
                   g_ext_rows.begin() + st.total_rows);
  const uint32_t blocks = st.prefix_blocks + st.staged_starts;
  if (blocks > 0) {
    out.starts_.reserve(blocks + 1);
    if (st.prefix_blocks > 0) {
      out.starts_.insert(out.starts_.end(), starts_.begin(),
                         starts_.begin() + st.prefix_blocks + 1);
    } else {
      out.starts_.push_back(0);
    }
    out.starts_.insert(out.starts_.end(), g_ext_starts.begin(),
                       g_ext_starts.begin() + st.staged_starts);
  }
  return out;
}

void Partition::ExtendInPlaceBy(const Partition* parent_old,
                                const Partition& parent_new,
                                const Column& col, uint64_t old_rows,
                                const PartitionDelta* meta,
                                PartitionDelta* delta_out) {
  const uint32_t nb = parent_new.NumBlocks();
  if (delta_out != nullptr) {
    delta_out->run_lengths.clear();
    delta_out->run_lengths.reserve(nb);
    delta_out->parent_first_rows.clear();
    delta_out->parent_first_rows.reserve(nb);
  }
  if (nb == 0) {
    // Refinement of an all-singleton parent is empty; canonical empty form
    // is flat.
    rows_.clear();
    starts_.clear();
    chunks_.clear();
    blocks_.clear();
    mass_ = 0;
    chunked_ = false;
    return;
  }
  AJD_CHECK(parent_old != nullptr || meta != nullptr);
  if (!chunked_) AdoptChunked();

  // Parent-block correspondence, exactly as in ExtendStageBy: metadata
  // makes every decision an array read; otherwise seed the row -> old
  // parent block scratch.
  const bool scan_free = meta != nullptr;
  const uint32_t opn = scan_free
                           ? static_cast<uint32_t>(meta->run_lengths.size())
                           : parent_old->NumBlocks();
  AJD_CHECK(!scan_free ||
            meta->parent_first_rows.size() == meta->run_lengths.size());
  if (!scan_free) SeedRowToBlock(*parent_old, old_rows);

  // Code-indexed scratch with the same grow-only, reset-what-you-touched
  // discipline as the staged walk's (see the comment there).
  static thread_local std::vector<uint32_t> code_slot;
  static thread_local std::vector<uint32_t> cnt;
  static thread_local std::vector<uint32_t> off;
  if (code_slot.size() < col.cardinality) {
    code_slot.resize(col.cardinality, UINT32_MAX);
    cnt.resize(col.cardinality, 0);
    off.resize(col.cardinality);
  }
  // Header staging: the header list only needs rebuilding when a parent
  // block's sub-block COUNT or placement changes (a brand-new block, or a
  // run re-refined into fresh regions). Until that first structural
  // change, grown blocks are patched through their headers in place and
  // nothing is copied; after it, untouched runs bulk-copy their 20-byte
  // headers — O(blocks), never O(mass).
  static thread_local std::vector<BlockRef> staged;
  bool structural = false;
  std::vector<uint32_t> grouped_tail;
  std::vector<uint32_t> touched;
  std::vector<uint32_t> tail_touched;
  std::vector<uint32_t> block_codes;
  std::vector<uint32_t*> write_cursor;
  const uint32_t* codes = col.codes.data();
  const uint32_t* codes_end = codes + col.codes.size();

  const uint32_t num_child = NumBlocks();
  uint32_t op = 0;  // old-parent block cursor
  uint32_t oc = 0;  // old-child block cursor

  auto structuralize = [&](uint32_t upto) {
    if (structural) return;
    structural = true;
    staged.assign(blocks_.begin(), blocks_.begin() + upto);
  };
  // Refines one parent block from scratch into fresh chunk regions —
  // sub-blocks in first-occurrence order of the code, rows ascending,
  // singletons dropped (the kernels' emission exactly) — appending the new
  // headers to the staging list. Returns the number of blocks emitted.
  // Same gather-prefetch lookahead rationale as the staged walk's.
  constexpr size_t kGatherAhead = 16;
  auto refine_block = [&](const uint32_t* bb, const uint32_t* be) {
    const size_t m = static_cast<size_t>(be - bb);
    if (block_codes.size() < m) block_codes.resize(m);
    touched.clear();
    for (size_t i = 0; i < m; ++i) {
      if (i + kGatherAhead < m &&
          codes + bb[i + kGatherAhead] < codes_end) {
        __builtin_prefetch(&codes[bb[i + kGatherAhead]]);
      }
      const uint32_t c = codes[bb[i]];
      block_codes[i] = c;
      if (cnt[c]++ == 0) touched.push_back(c);
    }
    uint32_t emitted = 0;
    write_cursor.clear();
    for (uint32_t c : touched) {
      if (cnt[c] >= 2) {
        BlockRef r = AllocRegion(GrowCap(cnt[c]));
        r.size = cnt[c];
        r.code = c;
        off[c] = static_cast<uint32_t>(write_cursor.size());
        write_cursor.push_back(MutableBlockRows(r));
        staged.push_back(r);
        mass_ += cnt[c];
        ++emitted;
      } else {
        off[c] = UINT32_MAX;
      }
    }
    for (size_t i = 0; i < m; ++i) {
      const uint32_t c = block_codes[i];
      if (off[c] != UINT32_MAX) *write_cursor[off[c]]++ = bb[i];
    }
    for (uint32_t c : touched) cnt[c] = 0;
    return emitted;
  };
  auto find_run_end = [&](uint32_t from) {
    if (scan_free) return from + meta->run_lengths[op];
    uint32_t j = from;
    // First rows never change across appends, so the seeded lookup works
    // on the chunked child exactly as it did on the flat one.
    while (j < num_child && g_row_to_op[*BlockBegin(j)] == op) ++j;
    return j;
  };
  auto emit_delta = [&](uint32_t first_row, uint32_t emitted) {
    if (delta_out != nullptr) {
      delta_out->parent_first_rows.push_back(first_row);
      delta_out->run_lengths.push_back(emitted);
    }
  };

  for (uint32_t b = 0; b < nb; ++b) {
    const uint32_t* begin = parent_new.BlockBegin(b);
    const uint32_t* end = parent_new.BlockEnd(b);
    const uint32_t old_first =
        op >= opn ? UINT32_MAX
                  : (scan_free ? meta->parent_first_rows[op]
                               : parent_old->BlockBegin(op)[0]);
    const bool brand_new = old_first != begin[0];
    if (brand_new) {
      // Promoted parent-level singleton plus the appended rows that joined
      // it: no old child state exists; refine it from scratch.
      structuralize(oc);
      emit_delta(begin[0], refine_block(begin, end));
      continue;
    }
    const uint32_t run_begin = oc;
    const uint32_t run_end = find_run_end(oc);
    const uint32_t runs = run_end - run_begin;
    oc = run_end;
    const bool grew = end[-1] >= old_rows;
    if (!grew) {
      // Row-for-row identical to its old self: its headers move only if a
      // structural change upstream is rebuilding the header list.
      if (structural) {
        staged.insert(staged.end(), blocks_.begin() + run_begin,
                      blocks_.begin() + run_end);
      }
      emit_delta(begin[0], runs);
      ++op;
      continue;
    }
    // Grown block: the delta fast path (same criterion as the staged
    // walk). When every appended row's code already owns a sub-block, the
    // cold emission is the old run order with each sub-block's new rows at
    // its tail — append into the block's slack, relocating it (once, with
    // fresh slack) only when the slack runs out. This is the path that
    // makes extension O(delta) regardless of which blocks the appended
    // rows land in.
    //
    // Tally the tail by code FIRST, then walk the run's sub-block first
    // rows once: a code owns at most one sub-block within a run, so the
    // single pass both finds every append target and decides fastness
    // (every tail code matched a sub-block) — no slot fill + reset pair
    // over all sub-blocks, and sub-blocks nothing landed in are touched
    // exactly once.
    const uint32_t* tail =
        std::lower_bound(begin, end, static_cast<uint32_t>(old_rows));
    const size_t tail_len = static_cast<size_t>(end - tail);
    // The tail's code gather is kept (block_codes) so the bucketing pass
    // below never re-gathers; the run walk pipelines its two-level
    // indirection (header -> first row -> code) with the same lookahead
    // the kernels use, or both loops sit memory-latency bound.
    if (block_codes.size() < tail_len) block_codes.resize(tail_len);
    tail_touched.clear();
    for (size_t i = 0; i < tail_len; ++i) {
      if (i + kGatherAhead < tail_len &&
          codes + tail[i + kGatherAhead] < codes_end) {
        __builtin_prefetch(&codes[tail[i + kGatherAhead]]);
      }
      const uint32_t c = codes[tail[i]];
      block_codes[i] = c;
      if (cnt[c]++ == 0) tail_touched.push_back(c);
    }
    size_t matched = 0;
    if (runs > 0 && blocks_[run_begin].code != kNoCode) {
      // Steady state: block codes sit memoized in the headers (runs are
      // stamped all-or-none — by the cold-fill pass below, by refine_block,
      // or left wholly unstamped by adoption), so the walk is a sequential
      // header scan with zero gathers.
      for (uint32_t j = 0; j < runs; ++j) {
        const uint32_t c = blocks_[run_begin + j].code;
        if (cnt[c] > 0) {
          code_slot[c] = j;
          ++matched;
        }
      }
    } else {
      // First walk since adoption: gather each sub-block's code through the
      // header indirection once — pipelined like the kernels' gathers — and
      // stamp it into the header for every later batch.
      for (uint32_t j = 0; j < runs; ++j) {
        if (j + 2 * kGatherAhead < runs) {
          const BlockRef& pre = blocks_[run_begin + j + 2 * kGatherAhead];
          __builtin_prefetch(chunks_[pre.chunk].data.data() + pre.offset);
        }
        if (j + kGatherAhead < runs) {
          __builtin_prefetch(
              &codes[*BlockBegin(run_begin + j + kGatherAhead)]);
        }
        const uint32_t c = codes[*BlockBegin(run_begin + j)];
        blocks_[run_begin + j].code = c;
        if (cnt[c] > 0) {
          code_slot[c] = j;
          ++matched;
        }
      }
    }
    if (matched == tail_touched.size()) {
      uint32_t acc = 0;
      for (uint32_t c : tail_touched) {
        off[c] = acc;
        acc += cnt[c];
      }
      if (grouped_tail.size() < tail_len) grouped_tail.resize(tail_len);
      for (size_t i = 0; i < tail_len; ++i) {
        grouped_tail[off[block_codes[i]]++] = tail[i];  // ends one past bucket
      }
      for (uint32_t c : tail_touched) {
        const uint32_t add = cnt[c];
        BlockRef& r = blocks_[run_begin + code_slot[c]];
        if (r.size + add > r.cap) {
          // Outgrew the slack: relocate once. The old region becomes a
          // strand, reclaimed by MaybeReclaim below. (chunks_ may
          // reallocate its Chunk objects, but each chunk's heap buffer
          // — where the rows live — never moves.)
          const uint32_t* src =
              chunks_[r.chunk].data.data() + r.offset;
          BlockRef moved = AllocRegion(GrowCap(uint64_t{r.size} + add));
          moved.size = r.size;
          moved.code = r.code;
          std::copy(src, src + r.size, MutableBlockRows(moved));
          r = moved;
        }
        std::copy(grouped_tail.begin() + off[c] - add,
                  grouped_tail.begin() + off[c],
                  MutableBlockRows(r) + r.size);
        r.size += add;
        mass_ += add;
        cnt[c] = 0;
        code_slot[c] = UINT32_MAX;
      }
      if (structural) {
        staged.insert(staged.end(), blocks_.begin() + run_begin,
                      blocks_.begin() + run_end);
      }
      emit_delta(begin[0], runs);
    } else {
      // A code without an old sub-block interleaves by first occurrence:
      // re-refine the whole parent block into fresh regions (the old run's
      // regions become strands). Fades once the column's value set
      // stabilizes. Scratch resets first — refine_block retallies cnt and
      // expects it clean.
      for (uint32_t c : tail_touched) {
        cnt[c] = 0;
        code_slot[c] = UINT32_MAX;
      }
      structuralize(run_begin);
      uint64_t old_run_mass = 0;
      for (uint32_t j = run_begin; j < run_end; ++j) {
        old_run_mass += blocks_[j].size;
      }
      mass_ -= old_run_mass;
      emit_delta(begin[0], refine_block(begin, end));
    }
    ++op;
  }
  AJD_CHECK(op == opn && oc == num_child);
  if (structural) blocks_.assign(staged.begin(), staged.end());
  MaybeReclaim();
}

double Partition::EntropyNats(uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  const double n = static_cast<double>(num_rows);
  double sum_clogc = 0.0;
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    sum_clogc += XLogXCount(BlockSize(b));
  }
  return std::log(n) - sum_clogc / n;
}

}  // namespace ajd
