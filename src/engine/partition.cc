#include "engine/partition.h"

#include <cmath>
#include <utility>
#include <vector>

#include "engine/refine_kernels.h"
#include "util/math.h"

namespace ajd {

Partition Partition::Trivial(uint64_t num_rows) {
  AJD_CHECK(num_rows < UINT32_MAX);
  Partition out;
  if (num_rows < 2) return out;  // a lone row is a singleton: stripped away
  out.rows_.resize(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    out.rows_[i] = static_cast<uint32_t>(i);
  }
  out.starts_ = {0, static_cast<uint32_t>(num_rows)};
  return out;
}

Partition Partition::OfColumn(const Column& col) {
  const size_t n = col.codes.size();
  AJD_CHECK(n < UINT32_MAX);
  Partition out;
  if (n == 0) return out;
  if (col.cardinality >= n) {
    // Near-key column: the counting construction below would allocate two
    // cardinality-sized vectors (count + offset) to strip almost every
    // row. The sort path's scratch is row-sized and its output — blocks in
    // ascending code order, rows ascending — is identical.
    SortPartitionOfColumn(col, PartitionBuild{&out.rows_, &out.starts_});
    return out;
  }
  std::vector<uint32_t> count(col.cardinality, 0);
  for (uint32_t c : col.codes) ++count[c];
  std::vector<uint32_t> offset(col.cardinality, UINT32_MAX);
  uint32_t total = 0;
  for (uint32_t c = 0; c < col.cardinality; ++c) {
    if (count[c] >= 2) {
      offset[c] = total;
      total += count[c];
      out.starts_.push_back(total);  // ends; start sentinel inserted below
    }
  }
  if (total == 0) {
    out.starts_.clear();
    return out;
  }
  out.starts_.insert(out.starts_.begin(), 0);
  out.rows_.resize(total);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t c = col.codes[i];
    if (offset[c] != UINT32_MAX) out.rows_[offset[c]++] = i;
  }
  return out;
}

Partition Partition::RefinedBy(const Column& col, RefineKernel kernel) const {
  Partition out;
  // The kernel stages into thread-local scratch and copies out at exact
  // size, so the result carries no dead capacity into the engine's cache.
  RefineByColumn(PartitionView{rows_.data(), starts_.data(), NumBlocks()},
                 col, kernel, PartitionBuild{&out.rows_, &out.starts_});
  return out;
}

double Partition::RefinedEntropy(const Column& col, uint64_t num_rows,
                                 RefineKernel kernel) const {
  if (num_rows == 0) return 0.0;
  return RefineEntropy(PartitionView{rows_.data(), starts_.data(),
                                     NumBlocks()},
                       col, kernel, num_rows);
}

Partition Partition::RefinedByAll(const Column* const* cols, size_t k,
                                  uint32_t composite_card) const {
  Partition out;
  RefineByComposite(PartitionView{rows_.data(), starts_.data(), NumBlocks()},
                    cols, k, composite_card,
                    PartitionBuild{&out.rows_, &out.starts_});
  if (out.rows_.capacity() > out.rows_.size() + out.rows_.size() / 2) {
    out.rows_.shrink_to_fit();
  }
  return out;
}

double Partition::RefinedEntropyAll(const Column* const* cols, size_t k,
                                    uint32_t composite_card,
                                    uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  return RefineCompositeEntropy(
      PartitionView{rows_.data(), starts_.data(), NumBlocks()}, cols, k,
      composite_card, num_rows);
}

double Partition::RefinedByWithEntropy(const Column& c1, const Column& c2,
                                       uint32_t composite_card,
                                       uint64_t num_rows,
                                       Partition* out) const {
  if (num_rows == 0) {
    *out = RefinedBy(c1);
    return 0.0;
  }
  const double h = RefineByColumnWithEntropy(
      PartitionView{rows_.data(), starts_.data(), NumBlocks()}, c1, c2,
      composite_card, num_rows, PartitionBuild{&out->rows_, &out->starts_});
  if (out->rows_.capacity() > out->rows_.size() + out->rows_.size() / 2) {
    out->rows_.shrink_to_fit();
  }
  return h;
}

double Partition::EntropyNats(uint64_t num_rows) const {
  if (num_rows == 0) return 0.0;
  const double n = static_cast<double>(num_rows);
  double sum_clogc = 0.0;
  for (uint32_t b = 0; b < NumBlocks(); ++b) {
    sum_clogc += XLogXCount(BlockSize(b));
  }
  return std::log(n) - sum_clogc / n;
}

}  // namespace ajd
