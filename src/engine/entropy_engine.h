// EntropyEngine: the shared, lattice-aware marginal-entropy oracle.
//
// Every quantity the paper computes — J(T) (Eq. 7), the Theorem 2.2
// sandwich, Lemma 4.1's loss bound, the miner's per-split CMIs — reduces to
// entropies H(attrs) over one relation's empirical distribution. The engine
// answers those queries out of an AttrSet-keyed cache of entropies AND
// stripped partitions (engine/partition.h): a miss for H(S) picks the
// cached subset T of S minimizing the modeled refinement cost (stripped
// rows of T times the number of missing columns) and refines T's partition
// by the dense columns of S \ T, instead of re-hashing N * |S| words from
// scratch. Missing columns are applied in order of estimated
// block-splitting power — the sampled distinct sketch's show-up rate at
// the current stripped mass (engine/column_store.h) — so the mass
// collapses as early as possible. When fusion policy allows
// (EngineOptions::max_fuse_columns) and the remaining columns' cardinality
// product fits the fuse budget, they are applied as ONE fused composite
// pass (engine/refine_kernels.h) instead of a refinement chain.
//
// Thread safety: all public methods are safe to call concurrently; the
// caches are guarded by a mutex and the heavy refinement work runs outside
// it. BatchEntropy evaluates independent terms on a WorkerPool
// (engine/worker_pool.h) shared across engines — the shape of the miner's
// candidate-split enumeration.
#ifndef AJD_ENGINE_ENTROPY_ENGINE_H_
#define AJD_ENGINE_ENTROPY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/column_store.h"
#include "engine/partition.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace ajd {

class CacheArbiter;  // engine/cache_arbiter.h
class WorkerPool;    // engine/worker_pool.h

/// Tuning knobs for an EntropyEngine.
struct EngineOptions {
  /// Cap on the total heap bytes of cached partitions. Entropy values
  /// themselves (16 bytes a term) are always cached; partitions are the
  /// bulky part and are evicted least-recently-used past this budget.
  /// Ignored when `cache_arbiter` is set: the arbiter's single global
  /// budget governs instead, evicting across every attached engine.
  size_t cache_budget_bytes = size_t{256} << 20;
  /// Threads for BatchEntropy/PrewarmSubsets; 0 means
  /// std::thread::hardware_concurrency(). Defaults to 1 (serial):
  /// concurrent workers race the partition cache, which perturbs fp
  /// accumulation order and costs seeded experiment drivers their
  /// bit-for-bit reproducibility (values still agree to ~1e-12, so
  /// rounded renderings like MinerReport::ToString stay byte-identical).
  /// MinerOptions::num_threads and AnalysisSession plumb this knob through
  /// to the mining hot path.
  uint32_t num_threads = 1;
  /// The batch pool to fan out on. nullptr = the process-wide shared pool
  /// (WorkerPool::Shared()). AnalysisSession resolves this once, so all of
  /// a session's engines share one pool and a many-relation sweep stops
  /// oversubscribing cores.
  std::shared_ptr<WorkerPool> worker_pool;
  /// Most missing columns a cache miss may apply as ONE fused composite
  /// pass (engine/refine_kernels.h) instead of a refinement chain. Fusing
  /// skips materializing and caching the chain's intermediate partitions —
  /// the smallest-mass, most-reusable future bases — so it trades future
  /// base reuse for present speed. 0 (default) is adaptive: fuse only
  /// while the partition cache is under eviction pressure, where
  /// intermediates would be evicted before reuse anyway. 1 disables
  /// fusion; 2..4 force fusing tails up to that length (the fit for
  /// one-shot, low-reuse workloads). A fused pass is bit-identical to a
  /// chain applied in the SAME column order; with 3+ columns the unfused
  /// engine may re-rank the remaining columns mid-chain as the mass
  /// shrinks, so toggling fusion can shift values within fp accumulation
  /// noise (~1e-15 relative) — the same class, and the same rounded-output
  /// guarantees, as the engine's documented serial-vs-threaded
  /// nondeterminism. It never changes results beyond that.
  uint32_t max_fuse_columns = 0;
  /// The shared cache budget to charge cached partitions against
  /// (engine/cache_arbiter.h). nullptr (the default) keeps the engine's
  /// private `cache_budget_bytes` LRU — standalone engines and legacy
  /// callers. AnalysisSession attaches one arbiter to all of its engines,
  /// so a many-relation sweep spends ONE budget where the reuse actually
  /// is, instead of slicing it evenly per relation.
  std::shared_ptr<CacheArbiter> cache_arbiter;
};

/// Monotonically increasing counters describing engine behavior. Hit rate
/// is the fraction of Entropy() queries answered from the entropy cache.
struct EngineStats {
  uint64_t queries = 0;          ///< Entropy() calls (incl. batch members).
  uint64_t hits = 0;             ///< answered from the entropy cache.
  uint64_t base_reuses = 0;      ///< misses that refined a cached partition.
  uint64_t partition_builds = 0; ///< partitions built from a raw column.
  uint64_t refinements = 0;      ///< single-column refinement steps applied
                                 ///< (fused steps count once per column).
  uint64_t fused_refinements = 0; ///< fused composite passes (each replaces
                                  ///< 2+ chained refinement steps).
  uint64_t evictions = 0;        ///< partitions dropped for the budget.

  double HitRate() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(queries);
  }
};

/// The per-relation entropy oracle. The relation must outlive the engine.
/// Not copyable; share one instance per relation (see AnalysisSession).
class EntropyEngine {
 public:
  explicit EntropyEngine(const Relation* r, EngineOptions options = {});
  ~EntropyEngine();

  EntropyEngine(const EntropyEngine&) = delete;
  EntropyEngine& operator=(const EntropyEngine&) = delete;

  /// H(attrs) in nats over the relation's empirical distribution.
  /// H(empty) = 0. Agrees with EntropyOf (info/entropy.h) up to
  /// floating-point accumulation order — the partition path sums c ln c
  /// in refinement order, which depends on prior query history, so expect
  /// ~1e-12 relative agreement, not bit identity.
  double Entropy(AttrSet attrs);

  /// Evaluates n independent entropy terms, writing out[i] = H(sets[i]).
  /// Runs on the engine's thread pool when it pays; safe to call while
  /// other threads query the engine.
  void BatchEntropy(const AttrSet* sets, size_t n, double* out);

  /// True when BatchEntropy can actually fan out (num_threads resolves to
  /// more than one worker). Callers that only batch to exploit
  /// parallelism — e.g. the miner's split enumeration — can skip building
  /// the batch otherwise.
  bool ParallelBatches() const;

  /// Convenience vector form of BatchEntropy.
  std::vector<double> BatchEntropy(const std::vector<AttrSet>& sets);

  /// Cache-warming form of BatchEntropy: computes and caches H(s) for
  /// every set not already cached (duplicates folded), fanning the misses
  /// out on the pool; returns nothing. The fit for callers that re-read
  /// the values through Entropy() afterwards — the miner's scoring loops —
  /// where a mostly-warm batch should cost one hash probe per term, not a
  /// full query round-trip.
  void WarmEntropies(const std::vector<AttrSet>& sets);

  /// Ensures the entropy AND the materialized partition of every given set
  /// are cached, fanning the misses out on the batch pool. Plain Entropy()
  /// skips materializing the final partition of a refinement chain (the
  /// fused counting pass is cheaper), so a caller about to issue a burst of
  /// superset queries — the miner's A u C / B u C terms over each separator
  /// C — seeds the shared ancestors here first and every burst member then
  /// resolves in single-step refinements. Empty sets are ignored.
  void PrewarmSubsets(const std::vector<AttrSet>& sets);

  /// H(a | c) = H(a u c) - H(c).
  double ConditionalEntropy(AttrSet a, AttrSet c);

  /// I(a ; b | c) = H(a u c) + H(b u c) - H(a u b u c) - H(c) (Eq. 4),
  /// with tiny negative fp noise clamped to 0 exactly as the legacy
  /// EntropyCalculator did.
  double ConditionalMutualInformation(AttrSet a, AttrSet b, AttrSet c);

  /// I(a ; b) = I(a ; b | empty).
  double MutualInformation(AttrSet a, AttrSet b);

  /// The relation being measured.
  const Relation& relation() const { return store_.relation(); }

  /// The shared column-major view.
  const ColumnStore& columns() const { return store_; }

  /// Number of distinct entropy terms cached so far.
  size_t CacheSize() const;

  /// Number of partitions currently cached.
  size_t PartitionCacheSize() const;

  /// Heap bytes held by cached partitions.
  size_t PartitionBytes() const;

  /// Snapshot of the counters.
  EngineStats Stats() const;

  /// Cheap content fingerprint of a relation (row/attr counts, schema,
  /// sampled data words). AnalysisSession compares it against the value
  /// captured at engine construction to catch a relation being destroyed
  /// and a different one reusing its address mid-session.
  static uint64_t RelationFingerprint(const Relation& r);

  /// The fingerprint captured at construction.
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  struct CachedPartition {
    std::shared_ptr<const Partition> partition;
    uint64_t last_used = 0;
  };

  /// Computes H(attrs) on a cache miss; called without holding mu_. When
  /// `materialize_final` is set, the last refinement step builds and caches
  /// the full partition of `attrs` instead of taking the fused
  /// entropy-only pass (the PrewarmSubsets path).
  double ComputeEntropy(AttrSet attrs, bool materialize_final = false);

  /// Inserts a partition; returns its heap bytes if actually inserted (0
  /// for duplicates). With no arbiter attached, also evicts private-LRU
  /// entries past cache_budget_bytes; with one, eviction is the arbiter's
  /// job and the caller charges it AFTER releasing mu_. Requires mu_ held.
  size_t InsertPartitionLocked(AttrSet attrs,
                               std::shared_ptr<const Partition> p);

  /// The arbiter's evict callback: drops one cached partition (if still
  /// present) and counts the eviction. Takes mu_; never calls the arbiter
  /// back, preserving the arbiter -> engine lock order.
  void DropPartitionForArbiter(AttrSet attrs);

  /// Removes one cached partition — map entry, popcount-bucket index
  /// entry, byte accounting — and counts the eviction. Requires mu_ held.
  void EvictPartitionLocked(
      std::unordered_map<AttrSet, CachedPartition, AttrSetHash>::iterator
          it);

  /// Resolved BatchEntropy pool size for a batch of n terms.
  uint32_t PoolSizeFor(size_t n) const;

  ColumnStore store_;
  EngineOptions options_;
  uint64_t fingerprint_ = 0;
  /// The shared batch pool (options_.worker_pool, or the process-wide
  /// default). Engines only ever submit batches; the pool owns the
  /// threads and serializes batches across engines.
  std::shared_ptr<WorkerPool> pool_;
  /// The shared cache budget, if any (options_.cache_arbiter). The engine
  /// registers at construction and releases its whole footprint at
  /// destruction. Arbiter calls are made only while mu_ is NOT held.
  std::shared_ptr<CacheArbiter> arbiter_;

  mutable std::mutex mu_;
  std::unordered_map<AttrSet, double, AttrSetHash> entropies_;
  std::unordered_map<AttrSet, CachedPartition, AttrSetHash> partitions_;
  /// One cached-partition index entry: the key and its (immutable)
  /// stripped mass, so the best-base scan prices candidates without a
  /// hash lookup per key.
  struct KeyEntry {
    AttrSet set;
    uint64_t mass;
  };
  /// Cached partition keys bucketed by popcount, so the best-base lookup
  /// scans the largest-subset levels first and stops at the first hit
  /// instead of walking the whole cache.
  std::vector<std::vector<KeyEntry>> keys_by_count_;
  size_t partition_bytes_ = 0;
  uint64_t tick_ = 0;
  EngineStats stats_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_ENTROPY_ENGINE_H_
