// EntropyEngine: the shared, lattice-aware marginal-entropy oracle.
//
// Every quantity the paper computes — J(T) (Eq. 7), the Theorem 2.2
// sandwich, Lemma 4.1's loss bound, the miner's per-split CMIs — reduces to
// entropies H(attrs) over one relation's empirical distribution. The engine
// answers those queries out of an AttrSet-keyed cache of entropies AND
// stripped partitions (engine/partition.h): a miss for H(S) picks the
// cached subset T of S minimizing the modeled refinement cost (stripped
// rows of T times the number of missing columns) and refines T's partition
// by the dense columns of S \ T, instead of re-hashing N * |S| words from
// scratch. Missing columns are applied in order of estimated
// block-splitting power — the sampled distinct sketch's show-up rate at
// the current stripped mass (engine/column_store.h) — so the mass
// collapses as early as possible. When fusion policy allows
// (EngineOptions::max_fuse_columns) and the remaining columns' cardinality
// product fits the fuse budget, they are applied as ONE fused composite
// pass (engine/refine_kernels.h) instead of a refinement chain.
//
// Thread safety: all public methods are safe to call concurrently — WHILE
// THE RELATION IS BEING APPENDED TO. There is no quiescence rule. Readers
// pin the (synced row count, epoch) pair they started with (Pin()) and
// never look past it: cached entropies and partitions are tagged with the
// row count they cover, pinned column/sketch views come from the column
// store's RCU publication, and a reader of epoch k computes exactly the
// cold answer over the first rows-at-k rows no matter how many epochs land
// meanwhile. The caches are guarded by a mutex and the heavy refinement
// work runs outside it. BatchEntropy evaluates independent terms on a
// WorkerPool (engine/worker_pool.h) shared across engines — the shape of
// the miner's candidate-split enumeration.
//
// Epochs: the engine follows its relation across batch appends
// (relation/relation.h). Every query entry point calls CatchUp() first
// (one atomic load when already synced). Catch-up is COOPERATIVE: the
// first reader of a new epoch that wins a try-lock runs it — or a
// dedicated maintenance thread does (engine/maintenance.h) — while every
// other reader keeps serving off the previous stamp concurrently. The
// catch-up owner CLAIMS the recently-used cached partitions (removing them
// from the visible cache under the mutex), extends each along its recorded
// chain OUTSIDE the mutex (Partition::ExtendedOfColumn / ExtendedBy
// reproduce the cold replay of that chain bit-for-bit; readers that still
// hold references force the copying path, sole-owner entries extend in
// place), then PUBLISHES the extended generation and the new stamp
// atomically. Partitions idle through the whole previous epoch are dropped
// instead (extension costs O(mass); paying it for a dead miner
// intermediate every batch would turn catch-up back into the O(cache)
// rebuild it replaces). Stale entropy values are swept by row-count tag;
// subsequent queries recompute them from the extended partitions through
// the same XLogX-table accumulation the cold kernels use.
//
// Failure semantics: no runtime failure aborts the process or corrupts a
// served answer.
//   - Query paths (Entropy/EntropyAt/BatchEntropy/Prewarm*) propagate
//     failures — allocation exhaustion, injected faults — to the CALLING
//     thread as exceptions, with no partial cache entries left behind; a
//     batch task that throws is contained by the WorkerPool (the batch
//     completes, the first error rethrows on the submitter —
//     engine/worker_pool.h). Retrying the same query is always safe.
//   - Catch-up DEGRADES instead of failing: a claimed entry whose
//     extension throws is dropped (EngineStats::catchup_dropped) and the
//     new epoch still publishes; dropped entries recompute cold — and
//     bitwise-correct — on next use, and arbiter settlement stays exact
//     (discharged at claim, simply never recharged). A failure after
//     extension but before publish abandons the attempt whole
//     (EngineStats::catchup_aborts) with the previous stamp intact:
//     readers keep serving that epoch's cold-correct answers and the
//     next query retries. CatchUp() itself never throws.
// The fault-injection soak (tests/fault_injection_test.cc, failpoints
// engine/compute_partition, engine/batch_task, engine/catchup_extend,
// engine/catchup_publish — util/failpoint.h) enforces all of this.
#ifndef AJD_ENGINE_ENTROPY_ENGINE_H_
#define AJD_ENGINE_ENTROPY_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/column_store.h"
#include "engine/partition.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace ajd {

class CacheArbiter;          // engine/cache_arbiter.h
class WorkerPool;            // engine/worker_pool.h
class PersistentCacheStore;  // persist/persistent_store.h
class FingerprintTracker;    // relation/fingerprint.h
struct PersistedEntryMeta;   // persist/persistent_store.h

/// A reader's pinned view of the relation: the synced row count and epoch
/// the engine's caches covered when the pin was taken. Every value
/// computed against a pin is the cold answer over the first `rows` rows —
/// regardless of how many appends land while the reader runs.
struct EpochPin {
  uint64_t rows = 0;
  uint64_t epoch = 0;
};

/// Tuning knobs for an EntropyEngine.
struct EngineOptions {
  /// Cap on the total heap bytes of cached partitions. Entropy values
  /// themselves (16 bytes a term) are always cached; partitions are the
  /// bulky part and are evicted least-recently-used past this budget.
  /// Ignored when `cache_arbiter` is set: the arbiter's single global
  /// budget governs instead, evicting across every attached engine.
  size_t cache_budget_bytes = size_t{256} << 20;
  /// Threads for BatchEntropy/PrewarmSubsets; 0 means
  /// std::thread::hardware_concurrency(). Defaults to 1 (serial):
  /// concurrent workers race the partition cache, which perturbs fp
  /// accumulation order and costs seeded experiment drivers their
  /// bit-for-bit reproducibility (values still agree to ~1e-12, so
  /// rounded renderings like MinerReport::ToString stay byte-identical).
  /// MinerOptions::num_threads and AnalysisSession plumb this knob through
  /// to the mining hot path.
  uint32_t num_threads = 1;
  /// The batch pool to fan out on. nullptr = the process-wide shared pool
  /// (WorkerPool::Shared()). AnalysisSession resolves this once, so all of
  /// a session's engines share one pool and a many-relation sweep stops
  /// oversubscribing cores.
  std::shared_ptr<WorkerPool> worker_pool;
  /// Most missing columns a cache miss may apply as ONE fused composite
  /// pass (engine/refine_kernels.h) instead of a refinement chain. Fusing
  /// skips materializing and caching the chain's intermediate partitions —
  /// the smallest-mass, most-reusable future bases — so it trades future
  /// base reuse for present speed. 0 (default) is adaptive: fuse only
  /// while the partition cache is under eviction pressure, where
  /// intermediates would be evicted before reuse anyway. 1 disables
  /// fusion; 2..4 force fusing tails up to that length (the fit for
  /// one-shot, low-reuse workloads). A fused pass is bit-identical to a
  /// chain applied in the SAME column order; with 3+ columns the unfused
  /// engine may re-rank the remaining columns mid-chain as the mass
  /// shrinks, so toggling fusion can shift values within fp accumulation
  /// noise (~1e-15 relative) — the same class, and the same rounded-output
  /// guarantees, as the engine's documented serial-vs-threaded
  /// nondeterminism. It never changes results beyond that.
  uint32_t max_fuse_columns = 0;
  /// The shared cache budget to charge cached partitions against
  /// (engine/cache_arbiter.h). nullptr (the default) keeps the engine's
  /// private `cache_budget_bytes` LRU — standalone engines and legacy
  /// callers. AnalysisSession attaches one arbiter to all of its engines,
  /// so a many-relation sweep spends ONE budget where the reuse actually
  /// is, instead of slicing it evenly per relation.
  std::shared_ptr<CacheArbiter> cache_arbiter;
  /// The crash-safe on-disk cache tier (persist/persistent_store.h), shared
  /// across engines and PROCESS LIFETIMES. When set, the engine consults it
  /// on a cache miss before computing cold (entries are keyed by relation
  /// content fingerprint, so a foreign or stale file can cost a probe,
  /// never change an answer), seeds its in-memory cache from it at
  /// construction (warm restart: persisted prefix partitions are reloaded
  /// and delta-extended to the current row count through the same
  /// bit-identical extension machinery catch-up uses), and publishes
  /// extended entries back down after each catch-up. nullptr (default): no
  /// disk tier.
  std::shared_ptr<PersistentCacheStore> persist_store;
  /// With a disk tier attached: spill a partition to disk when it is
  /// evicted from memory (budget pressure, generational idle drop), so the
  /// eviction demotes the entry a tier instead of discarding the work.
  /// Stale-generation sweeps never spill (their row tag is superseded).
  bool persist_spill_on_evict = true;
  /// With a disk tier attached: after each epoch catch-up, write the
  /// extended partitions back down so the disk tier tracks the current row
  /// count (and erase the superseded prefix entries they replace). Off, the
  /// disk tier only learns entries at eviction/PersistCache time.
  bool persist_on_catchup = true;
  /// Threads for ONE refinement (intra-operation sharding,
  /// engine/refine_kernels.h): a single large query or catch-up extension
  /// is split into mass-balanced block shards fanned out on the pool. 0
  /// (default) inherits the batch policy: num_threads, with num_threads'
  /// own 0 meaning hardware_concurrency(). 1 pins every refinement
  /// serial. The engine goes parallel only above a mass threshold
  /// (kShardedRefineMinMass), so small refinements keep their current
  /// nanosecond paths. Unlike cross-entry batching, intra-op sharding is
  /// BIT-IDENTICAL to serial at any thread count — same blocks, same
  /// rows, same entropies — so it never costs seeded drivers their
  /// reproducibility.
  uint32_t refine_threads = 0;
};

/// Monotonically increasing counters describing engine behavior. Hit rate
/// is the fraction of Entropy() queries answered from the entropy cache.
struct EngineStats {
  uint64_t queries = 0;          ///< Entropy() calls (incl. batch members).
  uint64_t hits = 0;             ///< answered from the entropy cache.
  uint64_t base_reuses = 0;      ///< misses that refined a cached partition.
  uint64_t partition_builds = 0; ///< partitions built from a raw column.
  uint64_t refinements = 0;      ///< single-column refinement steps applied
                                 ///< (fused steps count once per column).
  uint64_t fused_refinements = 0; ///< fused composite passes (each replaces
                                  ///< 2+ chained refinement steps).
  uint64_t evictions = 0;        ///< partitions dropped for the budget.
  uint64_t epoch_catchups = 0;   ///< relation-epoch synchronizations.
  uint64_t partitions_extended = 0; ///< cached partitions delta-extended
                                    ///< during catch-up (O(delta + touched
                                    ///< blocks) each).
  uint64_t partitions_replayed = 0; ///< cached partitions rebuilt by chain
                                    ///< replay instead (missing ancestor,
                                    ///< fused gap, or kernel-threshold
                                    ///< fallback).
  uint64_t catchup_dropped = 0;  ///< claimed entries dropped because their
                                 ///< extension failed mid-catch-up; later
                                 ///< reads recompute them cold.
  uint64_t catchup_aborts = 0;   ///< catch-up attempts abandoned whole by a
                                 ///< failure before publish; retried on the
                                 ///< next query.
  // Disk tier (EngineOptions::persist_store; all zero without one).
  uint64_t persist_hits = 0;     ///< misses answered from the disk tier.
  uint64_t persist_reloads = 0;  ///< partitions reloaded from disk (misses
                                 ///< and warm restart).
  uint64_t persist_extended = 0; ///< warm-restart reloads delta-extended
                                 ///< from their persisted row count to the
                                 ///< relation's current one.
  uint64_t persist_spills = 0;   ///< entries written down to the disk tier
                                 ///< (evictions, catch-up publish,
                                 ///< PersistCache).
  uint64_t persist_fallbacks = 0; ///< disk entries that failed to load or
                                  ///< validate; served cold instead (the
                                  ///< degrade-never-corrupt path).

  double HitRate() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(queries);
  }
};

/// The per-relation entropy oracle. The relation must outlive the engine.
/// Not copyable; share one instance per relation (see AnalysisSession).
class EntropyEngine {
 public:
  explicit EntropyEngine(const Relation* r, EngineOptions options = {});
  ~EntropyEngine();

  EntropyEngine(const EntropyEngine&) = delete;
  EntropyEngine& operator=(const EntropyEngine&) = delete;

  /// H(attrs) in nats over the relation's empirical distribution.
  /// H(empty) = 0. Agrees with EntropyOf (info/entropy.h) up to
  /// floating-point accumulation order — the partition path sums c ln c
  /// in refinement order, which depends on prior query history, so expect
  /// ~1e-12 relative agreement, not bit identity. Equivalent to
  /// CatchUp() + EntropyAt(attrs, Pin()).
  double Entropy(AttrSet attrs);

  /// The engine's current synchronized view: the row count and epoch a
  /// reader starting now would be pinned to. One atomic load; safe
  /// concurrently with appends and catch-ups.
  EpochPin Pin() const;

  /// H(attrs) over exactly the first pin.rows rows — the pinned-reader
  /// entry point. Does NOT catch up: a reader holding a pin taken before
  /// an append keeps getting the cold answer at its pinned epoch while
  /// later epochs are published concurrently. Values computed at a
  /// superseded pin bypass (and never pollute) the caches of newer pins.
  double EntropyAt(AttrSet attrs, const EpochPin& pin);

  /// Evaluates n independent entropy terms, writing out[i] = H(sets[i]).
  /// Runs on the engine's thread pool when it pays; safe to call while
  /// other threads query the engine.
  void BatchEntropy(const AttrSet* sets, size_t n, double* out);

  /// True when BatchEntropy can actually fan out (num_threads resolves to
  /// more than one worker). Callers that only batch to exploit
  /// parallelism — e.g. the miner's split enumeration — can skip building
  /// the batch otherwise.
  bool ParallelBatches() const;

  /// Convenience vector form of BatchEntropy.
  std::vector<double> BatchEntropy(const std::vector<AttrSet>& sets);

  /// Cache-warming form of BatchEntropy: computes and caches H(s) for
  /// every set not already cached (duplicates folded), fanning the misses
  /// out on the pool; returns nothing. The fit for callers that re-read
  /// the values through Entropy() afterwards — the miner's scoring loops —
  /// where a mostly-warm batch should cost one hash probe per term, not a
  /// full query round-trip.
  void WarmEntropies(const std::vector<AttrSet>& sets);

  /// Ensures the entropy AND the materialized partition of every given set
  /// are cached, fanning the misses out on the batch pool. Plain Entropy()
  /// skips materializing the final partition of a refinement chain (the
  /// fused counting pass is cheaper), so a caller about to issue a burst of
  /// superset queries — the miner's A u C / B u C terms over each separator
  /// C — seeds the shared ancestors here first and every burst member then
  /// resolves in single-step refinements. Empty sets are ignored.
  void PrewarmSubsets(const std::vector<AttrSet>& sets);

  /// H(a | c) = H(a u c) - H(c).
  double ConditionalEntropy(AttrSet a, AttrSet c);

  /// I(a ; b | c) = H(a u c) + H(b u c) - H(a u b u c) - H(c) (Eq. 4),
  /// with tiny negative fp noise clamped to 0 exactly as the legacy
  /// EntropyCalculator did.
  double ConditionalMutualInformation(AttrSet a, AttrSet b, AttrSet c);

  /// I(a ; b) = I(a ; b | empty).
  double MutualInformation(AttrSet a, AttrSet b);

  /// The relation being measured.
  const Relation& relation() const { return store_.relation(); }

  /// The shared column-major view.
  const ColumnStore& columns() const { return store_; }

  /// Number of distinct entropy terms cached so far.
  size_t CacheSize() const;

  /// Number of partitions currently cached.
  size_t PartitionCacheSize() const;

  /// Heap bytes held by cached partitions.
  size_t PartitionBytes() const;

  /// Snapshot of the counters.
  EngineStats Stats() const;

  /// The uid of the relation this engine was built for. AnalysisSession
  /// compares it against the relation currently at the registered address:
  /// a mismatch means the relation died and a different one reuses the
  /// address, and the session transparently rebuilds the engine (the
  /// replacement for the old abort-on-mutation fingerprint guard — epoch
  /// growth is now legitimate and handled by CatchUp).
  uint64_t relation_uid() const { return relation_uid_; }

  /// The relation epoch the caches are synchronized to.
  uint64_t synced_epoch() const {
    return synced_epoch_.load(std::memory_order_acquire);
  }

  /// Synchronizes the engine with the relation's current epoch: extends
  /// columns/sketches over the appended rows, delta-extends the
  /// recently-used cached partitions along their recorded chains, sweeps
  /// stale entropy values, and settles the bytes with the cache arbiter.
  /// Every query entry point calls this first (one atomic load when
  /// already synced). SAFE concurrently with queries and with appends:
  /// one caller wins the catch-up try-lock and becomes the owner; everyone
  /// else returns immediately and keeps serving the previous stamp. A
  /// dedicated maintenance thread (engine/maintenance.h) can call it
  /// periodically to take the work off the query path entirely.
  void CatchUp();

  /// Writes the current generation of the in-memory cache down to the disk
  /// tier: every cached partition (with payload and, when cached, its
  /// entropy value) and every value-only entropy term. The complement of
  /// the constructor's warm restart — call it before a planned shutdown so
  /// the next process starts where this one left off. Identical-content
  /// entries already on disk are skipped (the store dedups). Returns the
  /// first write failure (remaining entries are still attempted);
  /// FailedPrecondition without a disk tier.
  Status PersistCache();

  /// Test/introspection hook: the recorded build chain and current
  /// partition of a cached attribute set, if materialized. The chain lists
  /// the dense columns applied from scratch, in order — replaying it cold
  /// over the full relation must reproduce `partition` bit-for-bit
  /// (tests/epoch_test.cc enforces exactly that after catch-up).
  bool CachedPartitionInfo(AttrSet attrs, std::vector<uint32_t>* chain,
                           std::shared_ptr<const Partition>* partition) const;

 private:
  struct CachedPartition {
    std::shared_ptr<const Partition> partition;
    uint64_t last_used = 0;
    /// Relation epoch the partition covers (== the engine's synced epoch;
    /// catch-up revalidates entries in place rather than rebuilding them).
    uint64_t epoch = 0;
    /// Row count the partition covers — the generation tag. Readers pinned
    /// at a row count only consume entries with a matching tag; catch-up
    /// sweeps mismatched entries when publishing a new generation.
    uint64_t rows = 0;
    /// The full column-application recipe, from scratch: partition ==
    /// OfColumn(chain[0]).RefinedBy(chain[1])... (fused steps recorded
    /// flat — a fused pass is bit-identical to the chain in the same
    /// order). One entry per attribute of the key.
    std::vector<uint32_t> chain;
    /// Cardinality of chain.back()'s column when the partition was built;
    /// catch-up falls back from delta extension to a full recompute when
    /// the grown cardinality crosses a kernel-selection threshold.
    uint32_t last_col_card = 0;
    /// Parent-block correspondence emitted by the latest extension
    /// (engine/partition.h): makes the NEXT extension scan-free and frees
    /// catch-up from retaining the old parent partition. Empty until the
    /// first (seeding) extension, and after any replay.
    PartitionDelta delta;
  };

  /// Computes H(attrs) at `pin` on a cache miss; called without holding
  /// mu_. Reads only pin-consistent state: ColumnAt/SketchAt views frozen
  /// at pin.rows and cached entries whose row tag equals pin.rows. When
  /// `materialize_final` is set, the last refinement step builds and caches
  /// the full partition of `attrs` instead of taking the fused
  /// entropy-only pass (the PrewarmSubsets path).
  double ComputeEntropy(AttrSet attrs, const EpochPin& pin,
                        bool materialize_final = false);

  /// Inserts a partition with its build recipe and row tag; returns its
  /// heap bytes if actually inserted (0 for duplicates — an existing entry
  /// under the key, at any tag, is only touched, never replaced: the
  /// current generation's entry must not be clobbered by a stale-pin
  /// compute). With no arbiter attached, also evicts private-LRU entries
  /// past cache_budget_bytes; with one, eviction is the arbiter's job and
  /// the caller charges it AFTER releasing mu_. Requires mu_ held.
  size_t InsertPartitionLocked(AttrSet attrs,
                               std::shared_ptr<const Partition> p,
                               std::vector<uint32_t> chain,
                               uint32_t last_col_card, uint64_t rows,
                               PartitionDelta delta);

  /// Evicts private-LRU entries until partition_bytes_ fits the private
  /// budget, sparing `spare` (the entry just touched). Requires mu_ held
  /// and no arbiter attached.
  void EvictToPrivateBudgetLocked(AttrSet spare);

  /// The catch-up owner's body; runs with catchup_mu_ held and mu_ NOT
  /// held. Three phases: CLAIM (under mu_: remove the recently-used cached
  /// partitions from the visible cache, drop the generationally idle ones),
  /// EXTEND (no locks: delta-extend each claimed entry along its recorded
  /// chain against the target-rows column views), PUBLISH (under mu_:
  /// sweep every remaining stale-tagged partition/entropy entry, reinsert
  /// the extended generation, store the new stamp). Arbiter settlement —
  /// discharge at claim/sweep, charge at publish — happens outside mu_.
  void RunCatchUp(uint64_t target_epoch, uint64_t target_rows);

  /// The arbiter's evict callback: drops one cached partition (if still
  /// present) and counts the eviction. Takes mu_; never calls the arbiter
  /// back, preserving the arbiter -> engine lock order.
  void DropPartitionForArbiter(AttrSet attrs);

  /// Removes one cached partition — map entry, popcount-bucket index
  /// entry, byte accounting — WITHOUT counting an eviction (catch-up's
  /// claim step uses it: claimed entries come back at publish). Requires
  /// mu_ held.
  void RemovePartitionLocked(
      std::unordered_map<AttrSet, CachedPartition, AttrSetHash>::iterator
          it);

  /// RemovePartitionLocked plus the eviction counter — the true-eviction
  /// form (budget pressure, generational drop, stale-generation sweep).
  /// `allow_spill` additionally offers the entry to the disk tier first
  /// (EngineOptions::persist_spill_on_evict): true for evictions of
  /// current-generation entries (budget pressure, idle drop, arbiter
  /// victims), false for stale-generation sweeps. Requires mu_ held (the
  /// store is a leaf in the lock order, so the synchronous spill is legal).
  void EvictPartitionLocked(
      std::unordered_map<AttrSet, CachedPartition, AttrSetHash>::iterator it,
      bool allow_spill);

  /// The relation's content fingerprint over its first `rows` rows, via the
  /// incremental tracker (fp_mu_, a leaf: callable with or without mu_).
  uint64_t FingerprintFor(uint64_t rows);

  /// Miss-path probe of the disk tier: serves H(attrs) at `pin` from a
  /// persisted entry when one matches exactly, reloading (and caching) its
  /// partition. False on miss or any load/validation failure — the caller
  /// computes cold (counted in persist_fallbacks). Called without mu_.
  bool TryServeFromDisk(AttrSet attrs, const EpochPin& pin,
                        bool materialize_final, double* h_out);

  /// Offers one evicted current-generation entry to the disk tier (best
  /// effort; failures degrade to a plain eviction). Requires mu_ held.
  void SpillPartitionLocked(AttrSet attrs, const CachedPartition& cp);

  /// Constructor-time warm restart: reloads this relation's persisted
  /// entries (fingerprint-verified at their recorded row counts) and
  /// delta-extends them to the current row count through the engine's
  /// bit-identical extension machinery. Entries that cannot be extended
  /// cheaply (missing parent, kernel threshold crossed) are skipped, not
  /// replayed — warm restart must never cost more than a cold start.
  void WarmStartFromPersist();

  /// Resolved BatchEntropy pool size for a batch of n terms.
  uint32_t PoolSizeFor(size_t n) const;

  /// Resolved intra-operation shard thread count for ONE refinement over
  /// `mass` stripped rows: options_.refine_threads (0 inherits
  /// num_threads, whose own 0 means hardware_concurrency()), clamped to 1
  /// below kShardedRefineMinMass and to one thread per
  /// kShardedRefineShardMass rows above it. Returning 1 selects the
  /// serial kernel unchanged.
  uint32_t RefineThreadsFor(uint64_t mass) const;

  ColumnStore store_;
  EngineOptions options_;
  uint64_t relation_uid_ = 0;
  /// Relation epoch the caches cover; CatchUp's fast path is one acquire
  /// load of this against Relation::epoch().
  std::atomic<uint64_t> synced_epoch_{0};
  /// The shared batch pool (options_.worker_pool, or the process-wide
  /// default). Engines only ever submit batches; the pool owns the
  /// threads and serializes batches across engines.
  std::shared_ptr<WorkerPool> pool_;
  /// The shared cache budget, if any (options_.cache_arbiter). The engine
  /// registers at construction and releases its whole footprint at
  /// destruction. Arbiter calls are made only while mu_ is NOT held.
  std::shared_ptr<CacheArbiter> arbiter_;
  /// The disk tier, if any (options_.persist_store). A LEAF in the lock
  /// order (arbiter -> engine -> store): safe to call under mu_.
  std::shared_ptr<PersistentCacheStore> persist_;
  /// Incremental content fingerprint of the relation prefix (leaf mutex;
  /// only used with a disk tier attached).
  mutable std::mutex fp_mu_;
  std::unique_ptr<FingerprintTracker> fp_;

  /// Serializes catch-up owners. Acquired BEFORE mu_ (lock order:
  /// catchup_mu_ -> mu_, catchup_mu_ -> column-store internals; never the
  /// reverse) and held across the whole claim/extend/publish sequence;
  /// CatchUp() only try-locks it, so readers never block on a running
  /// catch-up.
  std::mutex catchup_mu_;
  /// The published stamp readers pin (atomic shared_ptr access). Written
  /// only by the catch-up owner, last step of publish.
  std::shared_ptr<const EpochPin> stamp_;

  mutable std::mutex mu_;
  /// One cached entropy value and the row count it was computed over.
  /// Lookups match the tag against the reader's pin; catch-up sweeps
  /// stale tags at publish.
  struct CachedEntropy {
    double h = 0.0;
    uint64_t rows = 0;
  };
  std::unordered_map<AttrSet, CachedEntropy, AttrSetHash> entropies_;
  std::unordered_map<AttrSet, CachedPartition, AttrSetHash> partitions_;
  /// One cached-partition index entry: the key, its (immutable at a given
  /// row tag) stripped mass, and the row tag, so the best-base scan prices
  /// pin-consistent candidates without a hash lookup per key.
  struct KeyEntry {
    AttrSet set;
    uint64_t mass;
    uint64_t rows;
  };
  /// Cached partition keys bucketed by popcount, so the best-base lookup
  /// scans the largest-subset levels first and stops at the first hit
  /// instead of walking the whole cache.
  std::vector<std::vector<KeyEntry>> keys_by_count_;
  size_t partition_bytes_ = 0;
  uint64_t tick_ = 0;
  /// tick_ at the end of the last catch-up: entries not touched since are
  /// dropped rather than extended at the next one (generational policy).
  uint64_t last_catchup_tick_ = 0;
  EngineStats stats_;
};

}  // namespace ajd

#endif  // AJD_ENGINE_ENTROPY_ENGINE_H_
