#include "engine/cache_arbiter.h"

#include <algorithm>

#include "util/check.h"

namespace ajd {

CacheArbiter::CacheArbiter(ArbiterOptions options) : options_(options) {}

void CacheArbiter::RegisterEngine(const void* engine, EvictFn evict) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = engines_.emplace(engine, EngineRecord{});
  AJD_CHECK_MSG(inserted, "engine %p registered twice", engine);
  it->second.evict = std::move(evict);
}

void CacheArbiter::ReleaseEngine(const void* engine) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  if (it == engines_.end()) return;
  AJD_CHECK(total_bytes_ >= it->second.bytes);
  total_bytes_ -= it->second.bytes;
  engines_.erase(it);
  UpdatePressureLocked();
}

void CacheArbiter::Charge(
    const void* engine,
    const std::vector<std::pair<AttrSet, size_t>>& entries) {
  if (entries.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  AJD_CHECK_MSG(it != engines_.end(), "charge from unregistered engine %p",
                engine);
  EngineRecord& rec = it->second;
  for (const auto& [key, bytes] : entries) {
    auto [et, inserted] = rec.entries.emplace(key, Entry{});
    if (inserted) {
      et->second.bytes = bytes;
      rec.bytes += bytes;
      total_bytes_ += bytes;
      ++stats_.charges;
    } else {
      // The engine dedups inserts under its own mutex, so a re-charge of a
      // live key only happens after the arbiter evicted it and the engine
      // recomputed — in which case it arrives as `inserted`. Anything else
      // is a recency signal.
      ++stats_.touches;
    }
    et->second.last_used = ++tick_;
  }
  EvictToBudgetLocked();
  UpdatePressureLocked();
}

void CacheArbiter::Touch(const void* engine, AttrSet key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  if (it == engines_.end()) return;
  auto et = it->second.entries.find(key);
  if (et == it->second.entries.end()) return;
  et->second.last_used = ++tick_;
  ++stats_.touches;
}

size_t CacheArbiter::EffectiveFloorLocked() const {
  if (engines_.empty()) return options_.engine_floor_bytes;
  return std::min(options_.engine_floor_bytes,
                  options_.budget_bytes / engines_.size());
}

void CacheArbiter::EvictToBudgetLocked() {
  // Victim scan: the globally-coldest entry among engines above the
  // effective floor. Linear over all entries — each engine caches at most a
  // few hundred lattice points, so even dozens of engines scan in the
  // microseconds an eviction's free() costs anyway.
  //
  // Termination: every iteration erases one entry. Progress past the
  // budget: whenever total > budget, some engine must sit above the floor
  // (sum of per-engine min(bytes, floor) <= num_engines * floor <= budget
  // by the floor clamp), so a victim always exists.
  const size_t floor = EffectiveFloorLocked();
  while (total_bytes_ > options_.budget_bytes) {
    EngineRecord* victim_rec = nullptr;
    std::unordered_map<AttrSet, Entry, AttrSetHash>::iterator victim_entry;
    uint64_t oldest = UINT64_MAX;
    for (auto& [engine, rec] : engines_) {
      (void)engine;
      if (rec.bytes <= floor) continue;
      for (auto et = rec.entries.begin(); et != rec.entries.end(); ++et) {
        if (et->second.last_used < oldest) {
          oldest = et->second.last_used;
          victim_rec = &rec;
          victim_entry = et;
        }
      }
    }
    if (victim_rec == nullptr) break;  // floors alone fit the budget
    const AttrSet key = victim_entry->first;
    const size_t bytes = victim_entry->second.bytes;
    AJD_CHECK(victim_rec->bytes >= bytes && total_bytes_ >= bytes);
    victim_rec->bytes -= bytes;
    total_bytes_ -= bytes;
    victim_rec->entries.erase(victim_entry);
    ++stats_.evictions;
    // Engine-side drop, under the arbiter -> engine lock order (see the
    // header's locking contract). The callback tolerates already-gone keys.
    victim_rec->evict(key);
  }
}

void CacheArbiter::UpdatePressureLocked() {
  pressure_.store(stats_.evictions > 0 &&
                      total_bytes_ * 4 >= options_.budget_bytes * 3,
                  std::memory_order_relaxed);
}

size_t CacheArbiter::AccountedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

size_t CacheArbiter::EngineBytes(const void* engine) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  return it == engines_.end() ? 0 : it->second.bytes;
}

size_t CacheArbiter::NumEngines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size();
}

ArbiterStats CacheArbiter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t CacheArbiter::EffectiveFloorBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EffectiveFloorLocked();
}

}  // namespace ajd
