#include "engine/cache_arbiter.h"

#include <algorithm>

#include "util/check.h"

namespace ajd {

CacheArbiter::CacheArbiter(ArbiterOptions options) : options_(options) {}

void CacheArbiter::RegisterEngine(const void* engine, EvictFn evict) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = engines_.emplace(engine, EngineRecord{});
  AJD_CHECK_MSG(inserted, "engine %p registered twice", engine);
  it->second.evict = std::move(evict);
}

void CacheArbiter::ReleaseEngine(const void* engine) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  if (it == engines_.end()) return;
  AJD_CHECK(total_bytes_ >= it->second.bytes);
  total_bytes_ -= it->second.bytes;
  for (auto& [key, entry] : it->second.entries) {
    (void)key;
    lru_.erase(entry.lru_it);
  }
  engines_.erase(it);
  UpdatePressureLocked();
}

void CacheArbiter::Charge(
    const void* engine,
    const std::vector<std::pair<AttrSet, size_t>>& entries) {
  if (entries.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  AJD_CHECK_MSG(it != engines_.end(), "charge from unregistered engine %p",
                engine);
  EngineRecord& rec = it->second;
  for (const auto& [key, bytes] : entries) {
    auto [et, inserted] = rec.entries.emplace(key, Entry{});
    if (inserted) {
      et->second.bytes = bytes;
      rec.bytes += bytes;
      total_bytes_ += bytes;
      lru_.push_front(LruKey{engine, key});
      et->second.lru_it = lru_.begin();
      ++stats_.charges;
    } else {
      // The engine dedups inserts under its own mutex, so a re-charge of a
      // live key only happens after the arbiter evicted it and the engine
      // recomputed — in which case it arrives as `inserted`. Anything else
      // is a recency signal.
      lru_.splice(lru_.begin(), lru_, et->second.lru_it);
      ++stats_.touches;
    }
  }
  EvictToBudgetLocked();
  UpdatePressureLocked();
}

void CacheArbiter::Touch(const void* engine, AttrSet key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  if (it == engines_.end()) return;
  auto et = it->second.entries.find(key);
  if (et == it->second.entries.end()) return;
  lru_.splice(lru_.begin(), lru_, et->second.lru_it);
  ++stats_.touches;
}

void CacheArbiter::Discharge(const void* engine,
                             const std::vector<AttrSet>& keys) {
  if (keys.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  if (it == engines_.end()) return;
  EngineRecord& rec = it->second;
  for (AttrSet key : keys) {
    auto et = rec.entries.find(key);
    if (et == rec.entries.end()) continue;
    AJD_CHECK(rec.bytes >= et->second.bytes &&
              total_bytes_ >= et->second.bytes);
    rec.bytes -= et->second.bytes;
    total_bytes_ -= et->second.bytes;
    lru_.erase(et->second.lru_it);
    rec.entries.erase(et);
  }
  UpdatePressureLocked();
}

size_t CacheArbiter::EffectiveFloorLocked() const {
  if (engines_.empty()) return options_.engine_floor_bytes;
  return std::min(options_.engine_floor_bytes,
                  options_.budget_bytes / engines_.size());
}

void CacheArbiter::EvictToBudgetLocked() {
  // One backward walk of the global LRU list: the tail is the coldest
  // accounted entry, and list order is exactly the order the old
  // linear-scan-by-tick selected victims in (every charge/touch both
  // splices to the front and bumps the tick, so position and tick are
  // order-isomorphic). Entries of engines at or below the floor are
  // skipped; engine bytes only shrink during the walk, so a skipped entry
  // never needs revisiting within the pass.
  //
  // Termination: every iteration either erases one entry or moves the
  // cursor one node toward the front. Progress past the budget: whenever
  // total > budget, some engine must sit above the floor (sum of
  // per-engine min(bytes, floor) <= num_engines * floor <= budget by the
  // floor clamp), so an evictable entry exists behind the cursor.
  const size_t floor = EffectiveFloorLocked();
  auto it = lru_.end();
  while (total_bytes_ > options_.budget_bytes && it != lru_.begin()) {
    auto cur = std::prev(it);
    auto rec_it = engines_.find(cur->engine);
    AJD_CHECK(rec_it != engines_.end());
    EngineRecord& rec = rec_it->second;
    if (rec.bytes <= floor) {
      it = cur;
      continue;
    }
    const AttrSet key = cur->key;
    auto et = rec.entries.find(key);
    AJD_CHECK(et != rec.entries.end());
    const size_t bytes = et->second.bytes;
    AJD_CHECK(rec.bytes >= bytes && total_bytes_ >= bytes);
    rec.bytes -= bytes;
    total_bytes_ -= bytes;
    rec.entries.erase(et);
    lru_.erase(cur);  // `it` stays valid: it never points at `cur`
    ++stats_.evictions;
    // Engine-side drop, under the arbiter -> engine lock order (see the
    // header's locking contract). The callback tolerates already-gone keys.
    rec.evict(key);
  }
}

void CacheArbiter::UpdatePressureLocked() {
  pressure_.store(stats_.evictions > 0 &&
                      total_bytes_ * 4 >= options_.budget_bytes * 3,
                  std::memory_order_relaxed);
}

size_t CacheArbiter::AccountedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

size_t CacheArbiter::EngineBytes(const void* engine) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = engines_.find(engine);
  return it == engines_.end() ? 0 : it->second.bytes;
}

size_t CacheArbiter::NumEngines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engines_.size();
}

ArbiterStats CacheArbiter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t CacheArbiter::EffectiveFloorBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EffectiveFloorLocked();
}

}  // namespace ajd
