// Cardinality-adaptive partition-refinement kernels.
//
// Every entropy the library computes bottoms out in refining a stripped
// partition by a dense column (engine/partition.h). One counting strategy
// cannot be right across the cardinality spectrum:
//
//   kDense — the classic counting pass over a code-indexed scratch array.
//            Unbeatable while the counter array stays cache-resident.
//   kMid   — the same counting pass, branchless and with software prefetch
//            of the codes[row] gather, for cardinalities where the scratch
//            misses cache and the gather dominates.
//   kSort  — a per-block radix sort of (code, row) pairs. Scratch is sized
//            by the BLOCK, not the cardinality, so a near-key column no
//            longer spikes a cardinality-sized allocation just to strip
//            almost everything.
//
// All three produce bit-identical partitions: blocks emitted per input
// block in first-occurrence order of the code, rows in ascending order
// (the library-wide invariant — every Partition factory scans rows in
// ascending order, so block members are always sorted).
//
// The fused kernels apply k columns in ONE pass by compositing their codes
// (code = ((c1*card2)+c2)*card3+c3...) and then emitting sub-blocks in
// exactly the order a k-step RefinedBy chain would have produced — see
// refine_kernels.cc for the ordering proof sketch. Fusing is the engine's
// common miss shape (2-3 attributes missing from the best cached base) and
// replaces k count+scatter passes with one.
//
// An optional SIMD tally (AVX2 on x86-64, NEON on arm; scalar fallback)
// accelerates the count-only entropy passes. It is compile-time guarded —
// -DAJD_DISABLE_SIMD removes it entirely — and on x86-64 additionally
// runtime-dispatched on cpuid, so the binary stays portable. The SIMD path
// only vectorizes the codes[row] gather; tallying stays scalar and in scan
// order, so touched-code order (and therefore output and fp accumulation
// order) is identical to the scalar kernels.
//
// --- Sharded (intra-operation parallel) entry points ----------------------
//
// Every kernel above is block-local: no state crosses an input-block
// boundary (the gather prefetch does, but it only affects timing, never
// output). Refinement is therefore embarrassingly parallel across parent
// blocks, and the *Sharded entry points exploit exactly that: the input
// view is split into contiguous, row-mass-balanced shard ranges
// (SplitViewForRefine), each shard runs the UNCHANGED serial kernel on a
// WorkerPool, and the per-shard outputs are concatenated in shard order.
// Because shards are contiguous block ranges in logical order, block
// order, row order, and the PartitionDelta come out identical to the
// serial kernel by construction — not within tolerance, byte-identical.
//
// Entropy accumulation is the one place parallelism could perturb output:
// float addition is not associative, so per-shard running sums would
// change the value with the thread count. The sharded entropy kernels
// instead record one PARTIAL SUM PER EMITTED BLOCK (exactly the operand
// sequence the serial accumulation adds, in emission order: one c ln c
// term per emitted group, one pre-reduced term per tiny block) and reduce
// the partials STRICTLY LEFT TO RIGHT in global emission order after all
// shards complete. The serial kernels are that same reduction at one
// shard, so every entropy is bit-identical at ANY thread count, including
// 1 — the thread-count-independence contract the engine's reproducibility
// guarantees (and the TSan equivalence suite) rest on.
//
// Nested submission is safe by the pool's busy-inline contract
// (engine/worker_pool.h): a sharded kernel invoked from inside a pool
// task finds the pool busy and degrades to running its shards serially
// inline — same bytes out, no deadlock.
#ifndef AJD_ENGINE_REFINE_KERNELS_H_
#define AJD_ENGINE_REFINE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/column_store.h"

namespace ajd {

class WorkerPool;  // engine/worker_pool.h

/// Refinement strategy. kAuto picks per call from the column cardinality
/// and the partition's stripped mass (thresholds below).
enum class RefineKernel : uint8_t { kAuto = 0, kDense, kMid, kSort };

/// kDense is used up to this cardinality (counter array ~16 KiB, safely
/// cache-resident); kMid beyond it.
inline constexpr uint32_t kDenseCardinalityMax = 4096;

/// kSort requires BOTH cardinality >= half the stripped mass (the
/// measured crossover: past it the code-indexed scratch costs as much as
/// the refinement itself) and cardinality above this floor — smaller
/// counter arrays stay resident across calls (the scratch guard keeps up
/// to 64Ki entries), where counting beats sorting at every block size.
inline constexpr uint32_t kSortMinCardinality = uint32_t{1} << 16;

RefineKernel ChooseRefineKernel(uint32_t cardinality, uint64_t stripped_rows);

/// Whether the SIMD tally is compiled in AND usable on this machine.
bool SimdTallyEnabled();

/// c ln c for an integer count, via a precomputed table for small counts
/// (bit-identical to XLogX(double(c)), which it falls back to). Entropy
/// passes pay one of these per distinct group — at tiny group sizes the
/// libm log call would outweigh the whole tally.
double XLogXCount(uint32_t c);

/// Fused-refinement budget: compositing k columns needs scratch sized by
/// the product of their cardinalities, so the product must stay close to
/// the stripped mass it will be scanned against.
inline constexpr uint64_t kFuseBudgetFloor = uint64_t{1} << 16;
inline constexpr uint64_t kFuseBudgetCap = uint64_t{1} << 22;
inline uint64_t FuseBudget(uint64_t stripped_rows) {
  const uint64_t by_mass = 4 * stripped_rows;
  const uint64_t budget = by_mass > kFuseBudgetFloor ? by_mass
                                                     : kFuseBudgetFloor;
  return budget < kFuseBudgetCap ? budget : kFuseBudgetCap;
}

/// Product of the columns' cardinalities if it fits `budget`, else 0.
uint64_t FusedCardinality(const Column* const* cols, size_t k,
                          uint64_t budget);

/// One maximal contiguous run of a stripped partition's storage: blocks
/// whose rows sit back to back in memory with no slack between them. A
/// flat partition is a single run over its whole row array; a chunked
/// partition (engine/partition.h) yields one run per contiguous stretch of
/// blocks inside its chunks.
struct PartitionRun {
  const uint32_t* rows = nullptr;    // concatenated block members
  const uint32_t* starts = nullptr;  // block b spans [starts[b], starts[b+1])
  uint32_t num_blocks = 0;
};

/// Read-only view of a stripped partition as an ordered sequence of runs.
/// Blocks keep their logical (emission) order across runs, so kernels that
/// iterate runs outer / blocks inner emit exactly what the flat iteration
/// emitted. `mass` is the total stripped row count (sum of all run spans).
/// Empty partition = all null/0. Produced by Partition::View(); the view
/// borrows the partition's storage and the scratch it was built into, so
/// neither may be mutated while the view is live.
struct PartitionView {
  const PartitionRun* runs = nullptr;
  uint32_t num_runs = 0;
  uint64_t mass = 0;
};

/// Caller-owned scratch a PartitionView is materialized into (grow-only;
/// reusable across calls). Flat partitions alias their own arrays and only
/// use `runs`; chunked partitions also rebase per-run block offsets into
/// `starts`.
struct PartitionViewScratch {
  std::vector<PartitionRun> runs;
  std::vector<uint32_t> starts;
};

/// Output arrays of a refinement (the caller owns the vectors; starts gets
/// the leading 0 sentinel iff any block is emitted).
struct PartitionBuild {
  std::vector<uint32_t>* rows = nullptr;
  std::vector<uint32_t>* starts = nullptr;
};

/// Cross-epoch correspondence metadata for delta extension, produced by a
/// refinement (at build time, see RefineByColumn) or by one extension and
/// consumed by the next (engine/entropy_engine.h keeps one per cached
/// partition). run_lengths[j] = how many of the partition's blocks came
/// from block j of its DIRECT parent; parent_first_rows[j] = that parent
/// block's first row (stable across appends, so it identifies the block in
/// the extended parent without touching the old parent at all). With this
/// in hand the next extension is SCAN-FREE: no row->block index to fill,
/// no per-sub-block membership test, and the old parent partition need not
/// even be retained — which in turn lets parents extend in place.
struct PartitionDelta {
  std::vector<uint32_t> run_lengths;
  std::vector<uint32_t> parent_first_rows;
};

/// Refines `in` by `col` with the chosen kernel (kAuto dispatches), writing
/// the result into `out` (cleared first). Output is identical across
/// kernels. When `delta_out` is non-null it receives the parent->child
/// correspondence (one entry per block of `in`, in block order, zero-count
/// entries included) so the FIRST catch-up after this cold build is
/// scan-free — costs one push_back pair per input block, nothing per row.
void RefineByColumn(const PartitionView& in, const Column& col,
                    RefineKernel kernel, const PartitionBuild& out,
                    PartitionDelta* delta_out = nullptr);

/// Entropy of the refinement WITHOUT materializing it: ln n - (1/n) sum of
/// c ln c over the refined blocks, accumulated in emission order (so the
/// value is bit-identical across kernels).
double RefineEntropy(const PartitionView& in, const Column& col,
                     RefineKernel kernel, uint64_t num_rows);

/// Fused k-column refinement: identical output (block boundaries, block
/// order, row order) to chaining RefineByColumn over cols[0..k-1] in that
/// order. `composite_card` must be the FusedCardinality product (> 0).
void RefineByComposite(const PartitionView& in, const Column* const* cols,
                       size_t k, uint32_t composite_card,
                       const PartitionBuild& out);

/// Fused count-only variant of RefineByComposite: bit-identical to chaining
/// k-1 RefineByColumn steps and one final RefineEntropy.
double RefineCompositeEntropy(const PartitionView& in,
                              const Column* const* cols, size_t k,
                              uint32_t composite_card, uint64_t num_rows);

/// The chain-finale kernel: materializes the refinement of `in` by `c1`
/// into `out` AND returns the entropy of refining that result by `c2` —
/// in ONE composite pass, with both outputs bit-identical to
/// RefineByColumn(in, c1) followed by RefineEntropy(<result>, c2). The
/// intermediate partition is still produced (and cacheable — no
/// base-reuse ecology is lost, unlike RefineCompositeEntropy); the
/// chain's separate count-only pass dissolves into the tally that was
/// already scanning the rows. When BOTH outputs are wanted this beats the
/// two-step chain on the perf_partition sweep (16 vs 24 ns/row at 1M
/// rows); the EntropyEngine nevertheless keeps the two-step chain on its
/// default path, because there the two thin passes measured faster than
/// one fat pass on a 1-core host — re-evaluate on wider machines before
/// wiring it in. `composite_card` must be c1.cardinality * c2.cardinality
/// (see FusedCardinality).
double RefineByColumnWithEntropy(const PartitionView& in, const Column& c1,
                                 const Column& c2, uint32_t composite_card,
                                 uint64_t num_rows,
                                 const PartitionBuild& out);

/// Sort-path construction of a column's partition (blocks in ascending code
/// order, identical to the counting construction in Partition::OfColumn)
/// with scratch sized by the row count, not the cardinality. Used for
/// near-key columns where cardinality >= rows.
void SortPartitionOfColumn(const Column& col, const PartitionBuild& out);

// --- Sharded (intra-operation parallel) entry points ----------------------
// Contract: each *Sharded function produces output BYTE-IDENTICAL to its
// serial counterpart above — block order, row order, PartitionDelta, and
// every entropy BIT — at any `threads` value, including 1 (see the header
// comment for why: contiguous row-mass-balanced shards over block-local
// kernels, plus strictly left-to-right reduction of per-emitted-block
// entropy partials in global emission order). With threads <= 1, a null
// pool, or fewer than two plannable shards, they simply call the serial
// kernel. Invoked from inside a pool task they degrade to serial via the
// pool's busy-inline fallback. kAuto is resolved ONCE from the full view's
// mass before sharding, so kernel choice never depends on the shard split.
//
// Memory note: the entropy-returning variants buffer one double per emitted
// group in per-shard partial vectors before the ordered reduction — an
// O(groups) transient (worst case ~8 bytes per stripped row, since
// singleton groups emit XLogX(1) == 0 terms too) that the serial O(1)
// accumulation never allocates. The terms must be kept individually because
// bit-identity requires adding them in exactly the serial emission order;
// dropping even exact-zero terms would have to be mirrored in a serial
// reduction that does not exist.

/// Row mass below which the engine keeps a refinement on the serial
/// nanosecond path: at ~5 ns/row a shard must amortize the pool wakeup
/// (tens of microseconds), measured on the perf_partition threads sweep.
inline constexpr uint64_t kShardedRefineMinMass = uint64_t{1} << 19;

/// Minimum row mass per shard: splitting finer than this loses more to
/// per-shard staging and wakeup than the extra core returns.
inline constexpr uint64_t kShardedRefineShardMass = uint64_t{1} << 17;

/// Splits `in` into at most `max_shards` contiguous, row-mass-balanced
/// shard sub-views (shard i covers the blocks up to the point where the
/// cumulative mass reaches i+1 shares). Blocks are the atomic unit — a
/// single huge block is never split — and every returned shard is
/// non-empty, so the count actually returned can be lower than requested.
/// The sub-views alias `in`'s row storage; `runs_scratch` backs their run
/// tables and must outlive them. Returns the shard count (0 iff `in` is
/// empty).
uint32_t SplitViewForRefine(const PartitionView& in, uint32_t max_shards,
                            std::vector<PartitionRun>* runs_scratch,
                            std::vector<PartitionView>* shards);

/// Sharded RefineByColumn: byte-identical output and delta at any thread
/// count.
void RefineByColumnSharded(const PartitionView& in, const Column& col,
                           RefineKernel kernel, uint32_t threads,
                           WorkerPool* pool, const PartitionBuild& out,
                           PartitionDelta* delta_out = nullptr);

/// Sharded RefineEntropy: bit-identical value at any thread count.
double RefineEntropySharded(const PartitionView& in, const Column& col,
                            RefineKernel kernel, uint64_t num_rows,
                            uint32_t threads, WorkerPool* pool);

/// Sharded RefineByComposite: byte-identical output at any thread count.
void RefineByCompositeSharded(const PartitionView& in,
                              const Column* const* cols, size_t k,
                              uint32_t composite_card, uint32_t threads,
                              WorkerPool* pool, const PartitionBuild& out);

/// Sharded RefineCompositeEntropy: bit-identical value at any thread count.
double RefineCompositeEntropySharded(const PartitionView& in,
                                     const Column* const* cols, size_t k,
                                     uint32_t composite_card,
                                     uint64_t num_rows, uint32_t threads,
                                     WorkerPool* pool);

/// Sharded RefineByColumnWithEntropy: byte-identical partition AND
/// bit-identical entropy at any thread count.
double RefineByColumnWithEntropySharded(const PartitionView& in,
                                        const Column& c1, const Column& c2,
                                        uint32_t composite_card,
                                        uint64_t num_rows, uint32_t threads,
                                        WorkerPool* pool,
                                        const PartitionBuild& out);

/// Frees this thread's kernel scratch buffers whose capacity exceeds the
/// ScratchGuard keep threshold (64Ki entries), returning the bytes freed.
/// The guard already sheds SPIKES relative to a call's own cardinality,
/// but deliberately keeps steady-state-sized buffers warm across calls —
/// right for an application thread, wrong for a pool worker that may park
/// indefinitely after one large refinement. WorkerPool calls this when a
/// worker parks between batches.
size_t ShedOversizedRefineScratch();

/// Heap bytes currently held by this thread's kernel scratch (test hook
/// for the park-shed policy above).
size_t RefineScratchBytes();

}  // namespace ajd

#endif  // AJD_ENGINE_REFINE_KERNELS_H_
