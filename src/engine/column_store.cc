#include "engine/column_store.h"

#include <algorithm>

#include "util/math.h"

namespace ajd {

ColumnStore::ColumnStore(const Relation* r)
    : r_(r),
      synced_rows_(r != nullptr ? r->NumRows() : 0),
      states_(std::make_unique<ColumnState[]>(
          r != nullptr ? r->NumAttrs() : 0)) {
  AJD_CHECK(r != nullptr);
}

void ColumnStore::CatchUp() {
  const uint64_t now = r_->NumRows();
  AJD_CHECK_MSG(now >= synced_rows_,
                "relation shrank from %llu to %llu rows under its "
                "ColumnStore; relations are append-only",
                static_cast<unsigned long long>(synced_rows_),
                static_cast<unsigned long long>(now));
  synced_rows_ = now;
}

// Densifies rows [st.built_rows, target): remaps each raw code to its dense
// first-occurrence code, reusing (and growing) the remap that survives from
// earlier epochs. First-occurrence assignment makes the result bit-identical
// to densifying the full prefix cold, whichever remap representation — or
// sequence of representations — was used along the way.
void ColumnStore::ExtendColumnLocked(ColumnState& st, uint32_t pos,
                                     uint64_t target) const {
  const uint64_t from = st.built_rows.load(std::memory_order_relaxed);
  Column& col = st.col;
  col.codes.resize(target);

  if (!st.ever_built) {
    // Pick the initial representation from the first chunk's raw range: a
    // direct-address table while raw codes are comparable to the row
    // count, a hash map otherwise (raw codes are arbitrary uint32 values
    // when relations are built from FromRows without dictionaries).
    uint32_t max_raw = 0;
    for (uint64_t i = from; i < target; ++i) {
      max_raw = std::max(max_raw, r_->At(i, pos));
    }
    const uint64_t direct_limit = 4 * (target - from) + 1024;
    st.use_direct = static_cast<uint64_t>(max_raw) < direct_limit;
    if (st.use_direct) {
      st.direct_remap.assign(static_cast<size_t>(max_raw) + 1, UINT32_MAX);
    } else {
      st.hash_remap.reserve(static_cast<size_t>(target - from));
    }
    st.ever_built = true;
  }

  for (uint64_t i = from; i < target; ++i) {
    const uint32_t raw = r_->At(i, pos);
    if (st.use_direct && static_cast<size_t>(raw) >= st.direct_remap.size()) {
      // The appended data outgrew the table. Keep growing while the range
      // stays comparable to the (current) row count; otherwise migrate the
      // surviving entries to the hash map once. Either way the dense codes
      // already assigned are untouched.
      if (static_cast<uint64_t>(raw) < 4 * target + 1024) {
        st.direct_remap.resize(static_cast<size_t>(raw) + 1, UINT32_MAX);
      } else {
        st.hash_remap.reserve(st.direct_remap.size());
        for (size_t v = 0; v < st.direct_remap.size(); ++v) {
          if (st.direct_remap[v] != UINT32_MAX) {
            st.hash_remap.emplace(static_cast<uint32_t>(v),
                                  st.direct_remap[v]);
          }
        }
        std::vector<uint32_t>().swap(st.direct_remap);
        st.use_direct = false;
      }
    }
    uint32_t dense;
    if (st.use_direct) {
      uint32_t& slot = st.direct_remap[raw];
      if (slot == UINT32_MAX) {
        slot = col.cardinality++;
        col.first_row.push_back(static_cast<uint32_t>(i));
      }
      dense = slot;
    } else {
      auto [it, inserted] = st.hash_remap.emplace(raw, col.cardinality);
      if (inserted) {
        ++col.cardinality;
        col.first_row.push_back(static_cast<uint32_t>(i));
      }
      dense = it->second;
    }
    col.codes[i] = dense;
  }
  st.built_rows.store(target, std::memory_order_release);
}

const Column& ColumnStore::column(uint32_t pos) const {
  AJD_CHECK(pos < r_->NumAttrs());
  ColumnState& st = states_[pos];
  const uint64_t target = synced_rows_;
  if (st.built_rows.load(std::memory_order_acquire) == target) {
    return st.col;
  }
  std::lock_guard<std::mutex> lock(st.mu);
  if (st.built_rows.load(std::memory_order_relaxed) != target) {
    ExtendColumnLocked(st, pos, target);
  }
  return st.col;
}

// Builds the sampled distinct curve for one dense column: sample_size rows
// spread evenly (and deterministically) across the relation, with distinct
// counts recorded at power-of-two prefixes. One pass over at most
// kMaxSamples rows, so sketching every column of a wide relation stays
// cheap next to a single refinement.
DistinctSketch BuildSketch(const Column& col) {
  DistinctSketch sketch;
  const uint64_t n = col.codes.size();
  if (n == 0) return sketch;
  const uint32_t s = static_cast<uint32_t>(
      std::min<uint64_t>(n, DistinctSketch::kMaxSamples));
  sketch.sample_size = s;
  std::unordered_set<uint32_t> seen;
  seen.reserve(s);
  uint32_t next_record = 1;
  for (uint32_t i = 0; i < s; ++i) {
    // i-th sample at floor(i * n / s): even coverage without an RNG, so
    // the sketch — and every ordering decision made from it — is
    // reproducible across runs and thread counts.
    seen.insert(col.codes[i * n / s]);
    if (i + 1 == next_record || i + 1 == s) {
      sketch.prefix_at.push_back(i + 1);
      sketch.distinct_at.push_back(static_cast<uint32_t>(seen.size()));
      while (next_record <= i + 1) next_record *= 2;
    }
  }
  return sketch;
}

// Rebuilds or extends st.sketch to cover `target` rows, bit-identical to
// BuildSketch over the full column either way. While every row is sampled
// (target <= kMaxSamples) the sample positions i*n/n == i form an identity
// prefix, so appended rows extend the retained seen-set and curve in place
// — the truly incremental path. Past the cap the sample positions stride
// differently at every size, so the sketch resamples: a constant-cost
// (kMaxSamples-row) pass, never O(N).
void ColumnStore::RefreshSketchLocked(ColumnState& st,
                                      uint64_t target) const {
  const uint64_t covered = st.sketch_rows.load(std::memory_order_relaxed);
  const bool incremental =
      st.sketch_built && covered > 0 &&
      covered <= DistinctSketch::kMaxSamples &&
      target <= DistinctSketch::kMaxSamples &&
      st.sketch.sample_size == covered && !st.sketch_seen.empty();
  if (!incremental) {
    st.sketch = BuildSketch(st.col);
    st.sketch_seen.clear();
    if (target <= DistinctSketch::kMaxSamples) {
      // Retain the sample set so later small-relation appends stay O(delta).
      for (uint64_t i = 0; i < target; ++i) {
        st.sketch_seen.insert(st.col.codes[i]);
      }
    }
  } else {
    DistinctSketch& sk = st.sketch;
    // Drop the trailing "final prefix" record unless it falls on a power of
    // two: the cold curve for the grown column records powers of two plus
    // the NEW final size only.
    auto is_pow2 = [](uint32_t v) { return v != 0 && (v & (v - 1)) == 0; };
    if (!sk.prefix_at.empty() && !is_pow2(sk.prefix_at.back())) {
      sk.prefix_at.pop_back();
      sk.distinct_at.pop_back();
    }
    uint32_t next_record = 1;
    while (next_record <= covered) next_record *= 2;
    const uint32_t s = static_cast<uint32_t>(target);
    for (uint32_t i = static_cast<uint32_t>(covered); i < s; ++i) {
      st.sketch_seen.insert(st.col.codes[i]);
      if (i + 1 == next_record || i + 1 == s) {
        sk.prefix_at.push_back(i + 1);
        sk.distinct_at.push_back(
            static_cast<uint32_t>(st.sketch_seen.size()));
        while (next_record <= i + 1) next_record *= 2;
      }
    }
    sk.sample_size = s;
  }
  st.sketch_built = true;
  st.sketch_rows.store(target, std::memory_order_release);
}

const DistinctSketch& ColumnStore::sketch(uint32_t pos) const {
  AJD_CHECK(pos < r_->NumAttrs());
  ColumnState& st = states_[pos];
  const uint64_t target = synced_rows_;
  if (st.sketch_rows.load(std::memory_order_acquire) == target &&
      st.sketch_built) {
    return st.sketch;
  }
  column(pos);  // ensure codes cover the synced rows
  std::lock_guard<std::mutex> lock(st.mu);
  if (st.sketch_rows.load(std::memory_order_relaxed) != target ||
      !st.sketch_built) {
    RefreshSketchLocked(st, target);
  }
  return st.sketch;
}

double DistinctSketch::EstimateDistinct(uint64_t m,
                                        uint32_t cardinality) const {
  if (m == 0 || sample_size == 0) return 0.0;
  const double card = static_cast<double>(cardinality);
  if (m >= sample_size) {
    // Beyond the sample, extrapolate the average show-up rate; the true
    // curve is concave, so this overestimates — but it is clamped by the
    // cardinality, and relative order among saturated columns is what the
    // caller needs.
    const double extrapolated = static_cast<double>(distinct_at.back()) *
                                static_cast<double>(m) /
                                static_cast<double>(sample_size);
    return std::min(extrapolated, card);
  }
  // Piecewise-linear interpolation between the recorded prefixes.
  size_t hi = 0;
  while (prefix_at[hi] < m) ++hi;
  if (prefix_at[hi] == m || hi == 0) {
    return std::min(static_cast<double>(distinct_at[hi]), card);
  }
  const double x0 = static_cast<double>(prefix_at[hi - 1]);
  const double x1 = static_cast<double>(prefix_at[hi]);
  const double y0 = static_cast<double>(distinct_at[hi - 1]);
  const double y1 = static_cast<double>(distinct_at[hi]);
  const double y =
      y0 + (y1 - y0) * (static_cast<double>(m) - x0) / (x1 - x0);
  return std::min(y, card);
}

Column ColumnStore::ComposeColumns(const std::vector<uint32_t>& attrs) const {
  AJD_CHECK(!attrs.empty());
  const uint64_t n = NumRows();
  Column out;
  uint64_t product = 1;
  for (uint32_t a : attrs) {
    product *= column(a).cardinality;
    AJD_CHECK(product <= UINT32_MAX);
  }
  out.cardinality = static_cast<uint32_t>(product);
  out.codes.resize(n);
  const Column& first = column(attrs[0]);
  for (uint64_t i = 0; i < n; ++i) out.codes[i] = first.codes[i];
  for (size_t j = 1; j < attrs.size(); ++j) {
    const Column& col = column(attrs[j]);
    const uint32_t card = col.cardinality;
    for (uint64_t i = 0; i < n; ++i) {
      out.codes[i] = out.codes[i] * card + col.codes[i];
    }
  }
  return out;
}

}  // namespace ajd
