#include "engine/column_store.h"

#include <unordered_map>

namespace ajd {

namespace {

// Remaps one attribute's raw codes to dense first-occurrence codes. Uses a
// direct-address table when the raw code range is comparable to the row
// count, a hash map otherwise (raw codes are arbitrary uint32 values when
// relations are built from FromRows without dictionaries).
Column DensifyColumn(const Relation& r, uint32_t pos) {
  const uint64_t n = r.NumRows();
  Column col;
  col.codes.resize(n);
  uint32_t max_raw = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t raw = r.At(i, pos);
    if (raw > max_raw) max_raw = raw;
    col.codes[i] = raw;  // staging; remapped below
  }
  const uint64_t direct_limit = 4 * n + 1024;
  if (static_cast<uint64_t>(max_raw) < direct_limit) {
    std::vector<uint32_t> remap(static_cast<size_t>(max_raw) + 1, UINT32_MAX);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t raw = col.codes[i];
      if (remap[raw] == UINT32_MAX) remap[raw] = col.cardinality++;
      col.codes[i] = remap[raw];
    }
  } else {
    std::unordered_map<uint32_t, uint32_t> remap;
    remap.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      auto [it, inserted] = remap.emplace(col.codes[i], col.cardinality);
      if (inserted) ++col.cardinality;
      col.codes[i] = it->second;
    }
  }
  return col;
}

}  // namespace

ColumnStore::ColumnStore(const Relation* r)
    : r_(r),
      columns_(r != nullptr ? r->NumAttrs() : 0),
      built_(std::make_unique<std::once_flag[]>(
          r != nullptr ? r->NumAttrs() : 0)) {
  AJD_CHECK(r != nullptr);
}

const Column& ColumnStore::column(uint32_t pos) const {
  AJD_CHECK(pos < columns_.size());
  std::call_once(built_[pos],
                 [this, pos] { columns_[pos] = DensifyColumn(*r_, pos); });
  return columns_[pos];
}

}  // namespace ajd
