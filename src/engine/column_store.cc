#include "engine/column_store.h"

#include <algorithm>

#include "util/math.h"

namespace ajd {

namespace {

/// Backing storage for MakeOwnedColumn.
struct OwnedColumnStorage {
  std::vector<uint32_t> codes;
  std::vector<uint32_t> first_row;
};

}  // namespace

Column MakeOwnedColumn(std::vector<uint32_t> codes, uint32_t cardinality,
                       std::vector<uint32_t> first_row) {
  auto storage = std::make_shared<OwnedColumnStorage>();
  storage->codes = std::move(codes);
  storage->first_row = std::move(first_row);
  Column out;
  out.codes = CodeSpan(storage->codes.data(), storage->codes.size());
  out.first_row =
      CodeSpan(storage->first_row.data(), storage->first_row.size());
  out.cardinality = cardinality;
  out.owner = std::move(storage);
  return out;
}

ColumnStore::ColumnStore(const Relation* r)
    : r_(r),
      synced_rows_(r != nullptr ? r->NumRows() : 0),
      states_(std::make_unique<ColumnState[]>(
          r != nullptr ? r->NumAttrs() : 0)) {
  AJD_CHECK(r != nullptr);
}

void ColumnStore::CatchUp() { CatchUpTo(r_->NumRows()); }

void ColumnStore::CatchUpTo(uint64_t rows) {
  const uint64_t synced = synced_rows_.load(std::memory_order_relaxed);
  const uint64_t now = r_->NumRows();
  AJD_CHECK_MSG(now >= synced,
                "relation shrank from %llu to %llu rows under its "
                "ColumnStore; relations are append-only",
                static_cast<unsigned long long>(synced),
                static_cast<unsigned long long>(now));
  if (rows <= synced) return;
  AJD_CHECK(rows <= now);
  synced_rows_.store(rows, std::memory_order_release);
}

// Densifies rows [st.built_rows, target) into st.buffers and publishes a
// fresh frozen view: remaps each raw code to its dense first-occurrence
// code, reusing (and growing) the remap that survives from earlier epochs.
// First-occurrence assignment makes the result bit-identical to densifying
// the full prefix cold, whichever remap representation — or sequence of
// representations — was used along the way.
//
// RCU discipline: rows [0, from) of the buffers are aliased by published
// views and never touched. Capacity for the worst case is ensured BEFORE
// any in-place write; if either vector would have to reallocate, the whole
// storage moves to a fresh ColumnBuffers (old views keep the old one alive
// through their owner pointer).
void ColumnStore::ExtendColumnLocked(ColumnState& st, uint32_t pos,
                                     uint64_t target) const {
  const uint64_t from = st.built_rows.load(std::memory_order_relaxed);
  const RowsSnapshot rows = r_->Snapshot();
  AJD_CHECK(rows.num_rows >= target);
  if (st.buffers == nullptr) st.buffers = std::make_shared<ColumnBuffers>();

  // Worst case every appended row introduces a new code.
  const uint64_t fr_need = st.cardinality + (target - from);
  if (target > st.buffers->codes.capacity() ||
      fr_need > st.buffers->first_row.capacity()) {
    auto grown = std::make_shared<ColumnBuffers>();
    grown->codes.reserve(
        std::max<uint64_t>(2 * st.buffers->codes.capacity(), target));
    grown->codes.assign(st.buffers->codes.begin(), st.buffers->codes.end());
    grown->first_row.reserve(
        std::max<uint64_t>(2 * st.buffers->first_row.capacity(), fr_need));
    grown->first_row.assign(st.buffers->first_row.begin(),
                            st.buffers->first_row.end());
    st.buffers = std::move(grown);
  }
  std::vector<uint32_t>& codes = st.buffers->codes;
  std::vector<uint32_t>& first_row = st.buffers->first_row;
  codes.resize(target);

  if (!st.ever_built) {
    // Pick the initial representation from the first chunk's raw range: a
    // direct-address table while raw codes are comparable to the row
    // count, a hash map otherwise (raw codes are arbitrary uint32 values
    // when relations are built from FromRows without dictionaries).
    uint32_t max_raw = 0;
    for (uint64_t i = from; i < target; ++i) {
      max_raw = std::max(max_raw, rows.At(i, pos));
    }
    const uint64_t direct_limit = 4 * (target - from) + 1024;
    st.use_direct = static_cast<uint64_t>(max_raw) < direct_limit;
    if (st.use_direct) {
      st.direct_remap.assign(static_cast<size_t>(max_raw) + 1, UINT32_MAX);
    } else {
      st.hash_remap.reserve(static_cast<size_t>(target - from));
    }
    st.ever_built = true;
  }

  for (uint64_t i = from; i < target; ++i) {
    const uint32_t raw = rows.At(i, pos);
    if (st.use_direct && static_cast<size_t>(raw) >= st.direct_remap.size()) {
      // The appended data outgrew the table. Keep growing while the range
      // stays comparable to the (current) row count; otherwise migrate the
      // surviving entries to the hash map once. Either way the dense codes
      // already assigned are untouched.
      if (static_cast<uint64_t>(raw) < 4 * target + 1024) {
        st.direct_remap.resize(static_cast<size_t>(raw) + 1, UINT32_MAX);
      } else {
        st.hash_remap.reserve(st.direct_remap.size());
        for (size_t v = 0; v < st.direct_remap.size(); ++v) {
          if (st.direct_remap[v] != UINT32_MAX) {
            st.hash_remap.emplace(static_cast<uint32_t>(v),
                                  st.direct_remap[v]);
          }
        }
        std::vector<uint32_t>().swap(st.direct_remap);
        st.use_direct = false;
      }
    }
    uint32_t dense;
    if (st.use_direct) {
      uint32_t& slot = st.direct_remap[raw];
      if (slot == UINT32_MAX) {
        slot = st.cardinality++;
        first_row.push_back(static_cast<uint32_t>(i));
      }
      dense = slot;
    } else {
      auto [it, inserted] = st.hash_remap.emplace(raw, st.cardinality);
      if (inserted) {
        ++st.cardinality;
        first_row.push_back(static_cast<uint32_t>(i));
      }
      dense = it->second;
    }
    codes[i] = dense;
  }

  auto view = std::make_shared<Column>();
  view->codes = CodeSpan(codes.data(), target);
  view->cardinality = st.cardinality;
  view->first_row = CodeSpan(first_row.data(), st.cardinality);
  view->owner = st.buffers;
  std::atomic_store_explicit(&st.view,
                             std::shared_ptr<const Column>(std::move(view)),
                             std::memory_order_release);
  st.built_rows.store(target, std::memory_order_release);
}

namespace {

/// Derives the view of the first `rows` rows from a longer frozen view:
/// the codes are a plain prefix, and because first_row is strictly
/// ascending, the prefix's cardinality is the number of first occurrences
/// below `rows`. Bit-identical to a cold densification of the prefix.
std::shared_ptr<const Column> DerivePrefix(
    const std::shared_ptr<const Column>& full, uint64_t rows) {
  auto out = std::make_shared<Column>();
  const uint32_t* fr = full->first_row.begin();
  const uint32_t card = static_cast<uint32_t>(
      std::lower_bound(fr, full->first_row.end(),
                       static_cast<uint32_t>(rows)) -
      fr);
  out->codes = CodeSpan(full->codes.data(), rows);
  out->first_row = CodeSpan(fr, card);
  out->cardinality = card;
  out->owner = full->owner;
  return out;
}

}  // namespace

std::shared_ptr<const Column> ColumnStore::ViewAt(uint32_t pos,
                                                  uint64_t rows) const {
  AJD_CHECK(pos < r_->NumAttrs());
  ColumnState& st = states_[pos];
  std::shared_ptr<const Column> v =
      std::atomic_load_explicit(&st.view, std::memory_order_acquire);
  if (v != nullptr && v->codes.size() >= rows) {
    if (v->codes.size() == rows) return v;
    std::shared_ptr<const Column> cached =
        std::atomic_load_explicit(&st.pinned_view, std::memory_order_acquire);
    if (cached != nullptr && cached->codes.size() == rows) return cached;
    std::shared_ptr<const Column> derived = DerivePrefix(v, rows);
    std::atomic_store_explicit(&st.pinned_view, derived,
                               std::memory_order_release);
    return derived;
  }
  std::lock_guard<std::mutex> lock(st.mu);
  if (st.built_rows.load(std::memory_order_relaxed) < rows) {
    ExtendColumnLocked(st, pos, rows);
  }
  v = std::atomic_load_explicit(&st.view, std::memory_order_relaxed);
  if (v->codes.size() == rows) return v;
  return DerivePrefix(v, rows);
}

Column ColumnStore::column(uint32_t pos) const {
  return *ViewAt(pos, NumRows());
}

Column ColumnStore::ColumnAt(uint32_t pos, uint64_t rows) const {
  return *ViewAt(pos, rows);
}

// Builds the sampled distinct curve for one dense column: sample_size rows
// spread evenly (and deterministically) across the relation, with distinct
// counts recorded at power-of-two prefixes. One pass over at most
// kMaxSamples rows, so sketching every column of a wide relation stays
// cheap next to a single refinement.
DistinctSketch BuildSketch(const Column& col) {
  DistinctSketch sketch;
  const uint64_t n = col.codes.size();
  if (n == 0) return sketch;
  const uint32_t s = static_cast<uint32_t>(
      std::min<uint64_t>(n, DistinctSketch::kMaxSamples));
  sketch.sample_size = s;
  std::unordered_set<uint32_t> seen;
  seen.reserve(s);
  uint32_t next_record = 1;
  for (uint32_t i = 0; i < s; ++i) {
    // i-th sample at floor(i * n / s): even coverage without an RNG, so
    // the sketch — and every ordering decision made from it — is
    // reproducible across runs and thread counts.
    seen.insert(col.codes[i * n / s]);
    if (i + 1 == next_record || i + 1 == s) {
      sketch.prefix_at.push_back(i + 1);
      sketch.distinct_at.push_back(static_cast<uint32_t>(seen.size()));
      while (next_record <= i + 1) next_record *= 2;
    }
  }
  return sketch;
}

// Rebuilds or extends the published sketch to cover `target` rows,
// bit-identical to BuildSketch over the full column either way. While
// every row is sampled (target <= kMaxSamples) the sample positions
// i*n/n == i form an identity prefix, so appended rows extend the retained
// seen-set and curve — COPY-ON-WRITE: the previous sketch is copied, the
// copy extended, and the result published with an atomic store, so readers
// holding the old sketch never see a mutation. Past the cap the sample
// positions stride differently at every size, so the sketch resamples: a
// constant-cost (kMaxSamples-row) pass, never O(N).
void ColumnStore::RefreshSketchLocked(ColumnState& st, const Column& col,
                                      uint64_t target) const {
  const std::shared_ptr<const SketchBox> cur =
      std::atomic_load_explicit(&st.sketch, std::memory_order_relaxed);
  const uint64_t covered = cur != nullptr ? cur->rows : 0;
  const bool incremental =
      st.sketch_built && covered > 0 &&
      covered <= DistinctSketch::kMaxSamples &&
      target <= DistinctSketch::kMaxSamples && cur != nullptr &&
      cur->sketch.sample_size == covered && !st.sketch_seen.empty();
  auto box = std::make_shared<SketchBox>();
  box->rows = target;
  if (!incremental) {
    box->sketch = BuildSketch(col);
    st.sketch_seen.clear();
    if (target <= DistinctSketch::kMaxSamples) {
      // Retain the sample set so later small-relation appends stay O(delta).
      for (uint64_t i = 0; i < target; ++i) {
        st.sketch_seen.insert(col.codes[i]);
      }
    }
  } else {
    box->sketch = cur->sketch;
    DistinctSketch& sk = box->sketch;
    // Drop the trailing "final prefix" record unless it falls on a power of
    // two: the cold curve for the grown column records powers of two plus
    // the NEW final size only.
    auto is_pow2 = [](uint32_t v) { return v != 0 && (v & (v - 1)) == 0; };
    if (!sk.prefix_at.empty() && !is_pow2(sk.prefix_at.back())) {
      sk.prefix_at.pop_back();
      sk.distinct_at.pop_back();
    }
    uint32_t next_record = 1;
    while (next_record <= covered) next_record *= 2;
    const uint32_t s = static_cast<uint32_t>(target);
    for (uint32_t i = static_cast<uint32_t>(covered); i < s; ++i) {
      st.sketch_seen.insert(col.codes[i]);
      if (i + 1 == next_record || i + 1 == s) {
        sk.prefix_at.push_back(i + 1);
        sk.distinct_at.push_back(
            static_cast<uint32_t>(st.sketch_seen.size()));
        while (next_record <= i + 1) next_record *= 2;
      }
    }
    sk.sample_size = s;
  }
  st.sketch_built = true;
  std::atomic_store_explicit(
      &st.sketch, std::shared_ptr<const SketchBox>(std::move(box)),
      std::memory_order_release);
}

std::shared_ptr<const ColumnStore::SketchBox> ColumnStore::SketchBoxAt(
    uint32_t pos, uint64_t rows) const {
  AJD_CHECK(pos < r_->NumAttrs());
  ColumnState& st = states_[pos];
  std::shared_ptr<const SketchBox> sk =
      std::atomic_load_explicit(&st.sketch, std::memory_order_acquire);
  if (sk != nullptr && sk->rows == rows) return sk;
  std::shared_ptr<const SketchBox> pinned = std::atomic_load_explicit(
      &st.pinned_sketch, std::memory_order_acquire);
  if (pinned != nullptr && pinned->rows == rows) return pinned;
  const std::shared_ptr<const Column> view = ViewAt(pos, rows);
  std::lock_guard<std::mutex> lock(st.mu);
  sk = std::atomic_load_explicit(&st.sketch, std::memory_order_relaxed);
  if (sk != nullptr && sk->rows == rows) return sk;
  const uint64_t frontier = st.built_rows.load(std::memory_order_relaxed);
  if (rows == frontier) {
    // The store's current frontier: refresh the published sketch (the
    // owner-side incremental path).
    RefreshSketchLocked(st, *view, rows);
    return std::atomic_load_explicit(&st.sketch, std::memory_order_relaxed);
  }
  // A pinned prefix behind the frontier: build cold off the pinned view
  // (O(kMaxSamples)) without disturbing the owner-side sketch state.
  auto box = std::make_shared<SketchBox>();
  box->sketch = BuildSketch(*view);
  box->rows = rows;
  std::atomic_store_explicit(&st.pinned_sketch,
                             std::shared_ptr<const SketchBox>(box),
                             std::memory_order_release);
  return box;
}

const DistinctSketch& ColumnStore::sketch(uint32_t pos) const {
  return SketchBoxAt(pos, NumRows())->sketch;
}

std::shared_ptr<const DistinctSketch> ColumnStore::SketchAt(
    uint32_t pos, uint64_t rows) const {
  std::shared_ptr<const SketchBox> box = SketchBoxAt(pos, rows);
  return std::shared_ptr<const DistinctSketch>(box, &box->sketch);
}

double DistinctSketch::EstimateDistinct(uint64_t m,
                                        uint32_t cardinality) const {
  if (m == 0 || sample_size == 0) return 0.0;
  const double card = static_cast<double>(cardinality);
  if (m >= sample_size) {
    // Beyond the sample, extrapolate the average show-up rate; the true
    // curve is concave, so this overestimates — but it is clamped by the
    // cardinality, and relative order among saturated columns is what the
    // caller needs.
    const double extrapolated = static_cast<double>(distinct_at.back()) *
                                static_cast<double>(m) /
                                static_cast<double>(sample_size);
    return std::min(extrapolated, card);
  }
  // Piecewise-linear interpolation between the recorded prefixes.
  size_t hi = 0;
  while (prefix_at[hi] < m) ++hi;
  if (prefix_at[hi] == m || hi == 0) {
    return std::min(static_cast<double>(distinct_at[hi]), card);
  }
  const double x0 = static_cast<double>(prefix_at[hi - 1]);
  const double x1 = static_cast<double>(prefix_at[hi]);
  const double y0 = static_cast<double>(distinct_at[hi - 1]);
  const double y1 = static_cast<double>(distinct_at[hi]);
  const double y =
      y0 + (y1 - y0) * (static_cast<double>(m) - x0) / (x1 - x0);
  return std::min(y, card);
}

Column ColumnStore::ComposeColumns(const std::vector<uint32_t>& attrs) const {
  AJD_CHECK(!attrs.empty());
  const uint64_t n = NumRows();
  uint64_t product = 1;
  for (uint32_t a : attrs) {
    product *= ColumnAt(a, n).cardinality;
    AJD_CHECK(product <= UINT32_MAX);
  }
  std::vector<uint32_t> codes(n);
  const Column first = ColumnAt(attrs[0], n);
  for (uint64_t i = 0; i < n; ++i) codes[i] = first.codes[i];
  for (size_t j = 1; j < attrs.size(); ++j) {
    const Column col = ColumnAt(attrs[j], n);
    const uint32_t card = col.cardinality;
    for (uint64_t i = 0; i < n; ++i) {
      codes[i] = codes[i] * card + col.codes[i];
    }
  }
  return MakeOwnedColumn(std::move(codes), static_cast<uint32_t>(product));
}

}  // namespace ajd
