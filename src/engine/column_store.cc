#include "engine/column_store.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/math.h"

namespace ajd {

namespace {

// Remaps one attribute's raw codes to dense first-occurrence codes. Uses a
// direct-address table when the raw code range is comparable to the row
// count, a hash map otherwise (raw codes are arbitrary uint32 values when
// relations are built from FromRows without dictionaries).
Column DensifyColumn(const Relation& r, uint32_t pos) {
  const uint64_t n = r.NumRows();
  Column col;
  col.codes.resize(n);
  uint32_t max_raw = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t raw = r.At(i, pos);
    if (raw > max_raw) max_raw = raw;
    col.codes[i] = raw;  // staging; remapped below
  }
  const uint64_t direct_limit = 4 * n + 1024;
  if (static_cast<uint64_t>(max_raw) < direct_limit) {
    std::vector<uint32_t> remap(static_cast<size_t>(max_raw) + 1, UINT32_MAX);
    for (uint64_t i = 0; i < n; ++i) {
      uint32_t raw = col.codes[i];
      if (remap[raw] == UINT32_MAX) remap[raw] = col.cardinality++;
      col.codes[i] = remap[raw];
    }
  } else {
    std::unordered_map<uint32_t, uint32_t> remap;
    remap.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      auto [it, inserted] = remap.emplace(col.codes[i], col.cardinality);
      if (inserted) ++col.cardinality;
      col.codes[i] = it->second;
    }
  }
  return col;
}

}  // namespace

// Builds the sampled distinct curve for one dense column: sample_size rows
// spread evenly (and deterministically) across the relation, with distinct
// counts recorded at power-of-two prefixes. One pass over at most
// kMaxSamples rows, so sketching every column of a wide relation stays
// cheap next to a single refinement.
DistinctSketch BuildSketch(const Column& col) {
  DistinctSketch sketch;
  const uint64_t n = col.codes.size();
  if (n == 0) return sketch;
  const uint32_t s = static_cast<uint32_t>(
      std::min<uint64_t>(n, DistinctSketch::kMaxSamples));
  sketch.sample_size = s;
  std::unordered_set<uint32_t> seen;
  seen.reserve(s);
  uint32_t next_record = 1;
  for (uint32_t i = 0; i < s; ++i) {
    // i-th sample at floor(i * n / s): even coverage without an RNG, so
    // the sketch — and every ordering decision made from it — is
    // reproducible across runs and thread counts.
    seen.insert(col.codes[i * n / s]);
    if (i + 1 == next_record || i + 1 == s) {
      sketch.prefix_at.push_back(i + 1);
      sketch.distinct_at.push_back(static_cast<uint32_t>(seen.size()));
      while (next_record <= i + 1) next_record *= 2;
    }
  }
  return sketch;
}

double DistinctSketch::EstimateDistinct(uint64_t m,
                                        uint32_t cardinality) const {
  if (m == 0 || sample_size == 0) return 0.0;
  const double card = static_cast<double>(cardinality);
  if (m >= sample_size) {
    // Beyond the sample, extrapolate the average show-up rate; the true
    // curve is concave, so this overestimates — but it is clamped by the
    // cardinality, and relative order among saturated columns is what the
    // caller needs.
    const double extrapolated = static_cast<double>(distinct_at.back()) *
                                static_cast<double>(m) /
                                static_cast<double>(sample_size);
    return std::min(extrapolated, card);
  }
  // Piecewise-linear interpolation between the recorded prefixes.
  size_t hi = 0;
  while (prefix_at[hi] < m) ++hi;
  if (prefix_at[hi] == m || hi == 0) {
    return std::min(static_cast<double>(distinct_at[hi]), card);
  }
  const double x0 = static_cast<double>(prefix_at[hi - 1]);
  const double x1 = static_cast<double>(prefix_at[hi]);
  const double y0 = static_cast<double>(distinct_at[hi - 1]);
  const double y1 = static_cast<double>(distinct_at[hi]);
  const double y =
      y0 + (y1 - y0) * (static_cast<double>(m) - x0) / (x1 - x0);
  return std::min(y, card);
}

ColumnStore::ColumnStore(const Relation* r)
    : r_(r),
      columns_(r != nullptr ? r->NumAttrs() : 0),
      built_(std::make_unique<std::once_flag[]>(
          r != nullptr ? r->NumAttrs() : 0)),
      sketches_(r != nullptr ? r->NumAttrs() : 0),
      sketch_built_(std::make_unique<std::once_flag[]>(
          r != nullptr ? r->NumAttrs() : 0)) {
  AJD_CHECK(r != nullptr);
}

const Column& ColumnStore::column(uint32_t pos) const {
  AJD_CHECK(pos < columns_.size());
  std::call_once(built_[pos],
                 [this, pos] { columns_[pos] = DensifyColumn(*r_, pos); });
  return columns_[pos];
}

const DistinctSketch& ColumnStore::sketch(uint32_t pos) const {
  AJD_CHECK(pos < sketches_.size());
  std::call_once(sketch_built_[pos],
                 [this, pos] { sketches_[pos] = BuildSketch(column(pos)); });
  return sketches_[pos];
}

Column ColumnStore::ComposeColumns(const std::vector<uint32_t>& attrs) const {
  AJD_CHECK(!attrs.empty());
  const uint64_t n = NumRows();
  Column out;
  uint64_t product = 1;
  for (uint32_t a : attrs) {
    product *= column(a).cardinality;
    AJD_CHECK(product <= UINT32_MAX);
  }
  out.cardinality = static_cast<uint32_t>(product);
  out.codes.resize(n);
  const Column& first = column(attrs[0]);
  for (uint64_t i = 0; i < n; ++i) out.codes[i] = first.codes[i];
  for (size_t j = 1; j < attrs.size(); ++j) {
    const Column& col = column(attrs[j]);
    const uint32_t card = col.cardinality;
    for (uint64_t i = 0; i < n; ++i) {
      out.codes[i] = out.codes[i] * card + col.codes[i];
    }
  }
  return out;
}

}  // namespace ajd
