// CacheArbiter: one partition-cache byte budget shared by many
// EntropyEngines.
//
// Each engine used to own a private LRU budget, so a session sweeping
// dozens of relations (the approximate-scheme-mining workload) split its
// memory evenly whether or not the reuse was even: a hot relation thrashed
// inside its slice while a cold one parked bytes it would never touch
// again. The arbiter lifts the budget to session scope — engines register
// at construction, charge every cached partition they insert, and the
// arbiter evicts the GLOBALLY least-recently-used entry whenever the
// accounted total passes the budget, so bytes flow to whichever relation is
// actually reusing them. A per-engine floor keeps a hot relation from
// starving a warm one to zero: an engine at or below the floor is never
// picked as a victim (the floor self-clamps to budget / num_engines so the
// floors can always be honored while staying within budget).
//
// Locking contract (the reason cross-engine eviction cannot deadlock):
//   - Engines call the arbiter ONLY while holding no engine mutex.
//   - The arbiter invokes an engine's evict callback while holding its own
//     mutex; the callback takes that engine's mutex.
// So the only lock order that ever occurs is arbiter -> engine, never the
// reverse. The accounted total therefore never exceeds the budget after any
// Charge() returns, no matter how many engines charge concurrently.
//
// Victim selection is an intrusive LRU list threaded through every
// accounted entry (front = most recent): charges and touches splice to the
// front in O(1), and eviction walks from the tail, skipping entries of
// engines at or below the floor. One EvictToBudget pass therefore costs
// O(evicted + skipped) instead of the old O(all entries) scan per victim —
// the order of victims is IDENTICAL to that scan (list position is
// order-isomorphic to the last-used tick the scan minimized), which
// tests/cache_arbiter_test.cc pins against a recorded trace.
#ifndef AJD_ENGINE_CACHE_ARBITER_H_
#define AJD_ENGINE_CACHE_ARBITER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relation/attr_set.h"

namespace ajd {

/// Tuning for a CacheArbiter.
struct ArbiterOptions {
  /// The single byte budget shared by every registered engine's cached
  /// partitions. 0 means "cache nothing": every charged entry is evicted
  /// before Charge() returns (engines still compute correctly — they just
  /// never find a cached base).
  size_t budget_bytes = size_t{256} << 20;
  /// An engine whose accounted footprint is at or below this floor is never
  /// selected as an eviction victim, so a burst from one hot relation
  /// cannot drain a warm relation's working set to zero. Self-clamps to
  /// budget_bytes / num_engines, which keeps "respect every floor" and
  /// "stay within budget" simultaneously satisfiable.
  size_t engine_floor_bytes = size_t{1} << 20;
};

/// Counters describing arbiter behavior (monotone, snapshot via Stats()).
struct ArbiterStats {
  uint64_t charges = 0;    ///< entries charged by engines.
  uint64_t touches = 0;    ///< LRU touches (cached-base reuses).
  uint64_t evictions = 0;  ///< entries evicted for the budget.
};

/// The shared budget. Thread-safe; typically owned by an AnalysisSession
/// and attached to its engines via EngineOptions::cache_arbiter.
class CacheArbiter {
 public:
  /// Drops one cached entry engine-side. Called by the arbiter with its
  /// own mutex held; the callback may take the engine's mutex (see the
  /// locking contract above) but must not call back into the arbiter.
  using EvictFn = std::function<void(AttrSet)>;

  explicit CacheArbiter(ArbiterOptions options = {});

  CacheArbiter(const CacheArbiter&) = delete;
  CacheArbiter& operator=(const CacheArbiter&) = delete;

  /// Registers an engine and its evict callback. `engine` is an opaque
  /// identity token (the engine's address); it must stay registered until
  /// ReleaseEngine.
  void RegisterEngine(const void* engine, EvictFn evict);

  /// Discharges the engine's whole accounted footprint and forgets it, in
  /// O(its entries). Called from the engine's destructor — the path behind
  /// AnalysisSession::Release(r). No evict callbacks are invoked (the
  /// engine is tearing down its own cache).
  void ReleaseEngine(const void* engine);

  /// Charges freshly cached entries to `engine` and evicts globally-LRU
  /// entries (possibly from OTHER engines, possibly these very entries
  /// when the budget is tiny) until the accounted total fits the budget
  /// again. Entries are (key, heap bytes) pairs; keys already accounted
  /// for this engine are treated as touches.
  void Charge(const void* engine,
              const std::vector<std::pair<AttrSet, size_t>>& entries);

  /// Marks an accounted entry most-recently-used (a cached-base reuse).
  /// Unknown keys are ignored (the entry may have been evicted since the
  /// engine looked it up — the reuse already happened engine-side via the
  /// shared_ptr, only the recency signal is lost).
  void Touch(const void* engine, AttrSet key);

  /// Engine-initiated discharge of specific entries the engine already
  /// dropped on its side (catch-up's generational policy evicts partitions
  /// that sat idle through a whole epoch rather than paying to extend
  /// them). No evict callbacks run — the entries are already gone — and
  /// unknown keys are ignored.
  void Discharge(const void* engine, const std::vector<AttrSet>& keys);

  /// True while the arbiter has evicted before and sits near its budget —
  /// the signal EntropyEngine's adaptive fusion policy keys on (fused
  /// misses skip caching intermediates that would not survive anyway).
  /// Lock-free (a relaxed atomic maintained by Charge/ReleaseEngine):
  /// every cache miss polls this, and the poll must not serialize the
  /// engines' parallel fan-outs on the arbiter mutex.
  bool UnderPressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }

  /// Bytes currently accounted across all engines. Never exceeds
  /// budget_bytes() after any public call returns.
  size_t AccountedBytes() const;

  /// Bytes currently accounted to one engine (0 if unknown).
  size_t EngineBytes(const void* engine) const;

  /// Number of registered engines.
  size_t NumEngines() const;

  /// Counter snapshot.
  ArbiterStats Stats() const;

  size_t budget_bytes() const { return options_.budget_bytes; }

  /// The floor actually enforced right now: min(engine_floor_bytes,
  /// budget_bytes / num_engines).
  size_t EffectiveFloorBytes() const;

 private:
  /// One LRU-list node: enough to find the owning engine's record and the
  /// entry inside it from a list position alone.
  struct LruKey {
    const void* engine = nullptr;
    AttrSet key;
  };
  struct Entry {
    size_t bytes = 0;
    /// This entry's node in lru_ (front = most recently used); the list
    /// position IS the recency — no per-entry tick survives the old scan.
    std::list<LruKey>::iterator lru_it;
  };
  struct EngineRecord {
    EvictFn evict;
    size_t bytes = 0;
    std::unordered_map<AttrSet, Entry, AttrSetHash> entries;
  };

  size_t EffectiveFloorLocked() const;

  /// Evicts globally-coldest entries from above-floor engines until the
  /// total fits the budget: one backward walk of the LRU list, skipping
  /// floored engines' entries (an engine's bytes only shrink during the
  /// walk, so a skip stays valid for the rest of the pass). Requires mu_
  /// held; invokes evict callbacks.
  void EvictToBudgetLocked();

  /// Recomputes the cached pressure flag. Requires mu_ held.
  void UpdatePressureLocked();

  ArbiterOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<const void*, EngineRecord> engines_;
  /// Global recency order across every accounted entry; front = MRU.
  std::list<LruKey> lru_;
  size_t total_bytes_ = 0;
  ArbiterStats stats_;
  std::atomic<bool> pressure_{false};
};

}  // namespace ajd

#endif  // AJD_ENGINE_CACHE_ARBITER_H_
