// EpochMaintenance: a dedicated catch-up thread for serve-while-ingest
// deployments.
//
// EntropyEngine::CatchUp is cooperative by default — the first reader of a
// new epoch that wins the catch-up try-lock pays the extension cost while
// everyone else keeps serving the previous stamp. That is the right default
// for single-threaded and bursty workloads, but under a steady query load
// it taxes one unlucky reader per batch with the whole catch-up latency.
// This helper moves that work OFF the query path: a background thread polls
// the relation's epoch (and can be Poke()d by the appender right after a
// batch lands) and runs the catch-up itself, so readers only ever take the
// fast path — one atomic epoch compare, then a failed try_lock at worst.
//
// Everything here is plain composition of the engine's public, concurrency-
// safe surface: the thread simply calls CatchUp() like any reader would,
// and the engine's internal claim/extend/publish protocol does the rest.
// One instance per engine; the engine (and its relation) must outlive it.
#ifndef AJD_ENGINE_MAINTENANCE_H_
#define AJD_ENGINE_MAINTENANCE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace ajd {

class EntropyEngine;  // engine/entropy_engine.h

class EpochMaintenance {
 public:
  /// Starts the maintenance thread. `poll` bounds how stale the engine can
  /// go without a Poke (the thread re-checks the epoch at least this
  /// often); appenders that Poke() after every batch can use a long poll.
  explicit EpochMaintenance(
      EntropyEngine* engine,
      std::chrono::microseconds poll = std::chrono::microseconds(200));

  /// Stops and joins the thread. Pending catch-up work is finished by the
  /// next query's cooperative catch-up, so destruction never loses epochs.
  ~EpochMaintenance();

  EpochMaintenance(const EpochMaintenance&) = delete;
  EpochMaintenance& operator=(const EpochMaintenance&) = delete;

  /// Wakes the thread now — the appender's post-batch nudge, turning the
  /// poll interval into a worst-case bound instead of the common case.
  void Poke();

 private:
  void Loop();

  EntropyEngine* engine_;
  const std::chrono::microseconds poll_;
  std::mutex mu_;
  std::condition_variable cv_;
  uint64_t pokes_ = 0;   // guarded by mu_; counts wake requests
  bool stop_ = false;    // guarded by mu_
  std::thread thread_;   // started last, joined in the destructor
};

}  // namespace ajd

#endif  // AJD_ENGINE_MAINTENANCE_H_
