// Hypergeometric distribution Hypergeometric(L, M, l): the number of
// successes when drawing l items without replacement from a population of
// size L containing M successes. This is the law of the per-group sizes
// N_S(l) and of Z_S(i) in the paper's random relation model (Section 5.2.2,
// Lemma C.1), together with Serfling's inequality (Lemma D.7).
#ifndef AJD_STATS_HYPERGEOMETRIC_H_
#define AJD_STATS_HYPERGEOMETRIC_H_

#include <cstdint>

#include "random/rng.h"

namespace ajd {

/// Hypergeometric(L, M, l) with population L, successes M, draws l.
class Hypergeometric {
 public:
  /// Requires M <= L and l <= L.
  Hypergeometric(uint64_t population, uint64_t successes, uint64_t draws);

  uint64_t population() const { return population_; }
  uint64_t successes() const { return successes_; }
  uint64_t draws() const { return draws_; }

  /// Smallest value with positive probability: max(0, l - (L - M)).
  uint64_t SupportMin() const;

  /// Largest value with positive probability: min(M, l).
  uint64_t SupportMax() const;

  /// E[Y] = l * M / L.
  double Mean() const;

  /// Var[Y] = l * (M/L) * (1 - M/L) * (L - l) / (L - 1).
  double Variance() const;

  /// ln P[Y = k]; -inf outside the support.
  double LogPmf(uint64_t k) const;

  /// P[Y = k].
  double Pmf(uint64_t k) const;

  /// P[Y <= k] by summation over the support.
  double Cdf(uint64_t k) const;

  /// Draws a sample by sequential (urn) simulation, O(draws).
  uint64_t Sample(Rng* rng) const;

 private:
  uint64_t population_;
  uint64_t successes_;
  uint64_t draws_;
};

/// Serfling's inequality, simplified form (Lemma D.7):
///   P[Y - E[Y] >= eps] <= exp(-2 eps^2 / (l (1 - (l-1)/L)))
/// for Y ~ Hypergeometric(L, K, l). `sharp` selects the (tighter) version
/// with the finite-population factor; otherwise the plain exp(-2 eps^2 / l).
double SerflingTailBound(uint64_t population, uint64_t draws, double eps,
                         bool sharp = true);

}  // namespace ajd

#endif  // AJD_STATS_HYPERGEOMETRIC_H_
