#include "stats/hypergeometric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math.h"

namespace ajd {

Hypergeometric::Hypergeometric(uint64_t population, uint64_t successes,
                               uint64_t draws)
    : population_(population), successes_(successes), draws_(draws) {
  AJD_CHECK(successes <= population);
  AJD_CHECK(draws <= population);
}

uint64_t Hypergeometric::SupportMin() const {
  uint64_t failures = population_ - successes_;
  return draws_ > failures ? draws_ - failures : 0;
}

uint64_t Hypergeometric::SupportMax() const {
  return std::min(successes_, draws_);
}

double Hypergeometric::Mean() const {
  return static_cast<double>(draws_) * static_cast<double>(successes_) /
         static_cast<double>(population_);
}

double Hypergeometric::Variance() const {
  if (population_ <= 1) return 0.0;
  double p = static_cast<double>(successes_) / static_cast<double>(population_);
  double l = static_cast<double>(draws_);
  double fpc = (static_cast<double>(population_) - l) /
               (static_cast<double>(population_) - 1.0);
  return l * p * (1.0 - p) * fpc;
}

double Hypergeometric::LogPmf(uint64_t k) const {
  if (k < SupportMin() || k > SupportMax()) {
    return -std::numeric_limits<double>::infinity();
  }
  return LogBinomial(successes_, k) +
         LogBinomial(population_ - successes_, draws_ - k) -
         LogBinomial(population_, draws_);
}

double Hypergeometric::Pmf(uint64_t k) const { return std::exp(LogPmf(k)); }

double Hypergeometric::Cdf(uint64_t k) const {
  double total = 0.0;
  uint64_t hi = std::min(k, SupportMax());
  for (uint64_t i = SupportMin(); i <= hi; ++i) total += Pmf(i);
  return std::min(total, 1.0);
}

uint64_t Hypergeometric::Sample(Rng* rng) const {
  // Sequential urn simulation: at each of the `draws_` steps, the next item
  // is a success with probability (remaining successes / remaining items).
  uint64_t remaining_successes = successes_;
  uint64_t remaining_population = population_;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < draws_; ++i) {
    uint64_t pick = rng->UniformU64(remaining_population);
    if (pick < remaining_successes) {
      ++hits;
      --remaining_successes;
    }
    --remaining_population;
  }
  return hits;
}

double SerflingTailBound(uint64_t population, uint64_t draws, double eps,
                         bool sharp) {
  AJD_CHECK(draws >= 1);
  double l = static_cast<double>(draws);
  double denom = l;
  if (sharp) {
    denom = l * (1.0 - (l - 1.0) / static_cast<double>(population));
    if (denom <= 0.0) return 0.0;  // drew the whole population: no deviation
  }
  return std::exp(-2.0 * eps * eps / denom);
}

}  // namespace ajd
