// The scalar special functions used in the proofs of Section 5 / Appendix B:
// the Lipschitz surrogates of g(t) = -t ln t, the Poissonization constant,
// and small helpers. These are exposed so the benchmark harness can validate
// the analytic machinery numerically.
#ifndef AJD_STATS_SPECIAL_H_
#define AJD_STATS_SPECIAL_H_

#include <cstdint>

namespace ajd {

/// ghat_zeta(t), Eq. (209): the Lipschitz modification of g(t) = -t ln t,
///   ghat(t) = t ln(zeta/e) + 1/zeta  for 0 <= t <= 1/zeta,
///   ghat(t) = -t ln t                for t >= 1/zeta.
/// Requires zeta >= e. On [0,1] it is ln(zeta/e)-Lipschitz and
/// sup |ghat - g| = 1/zeta (Eq. 210).
double GHat(double t, double zeta);

/// gtilde_eta(t), Eq. (219): GHat capped at its maximum,
///   gtilde(t) = ghat_eta(t)      for 0 <= t <= 1/e,
///   gtilde(t) = ghat_eta(1/e)    for t > 1/e.
double GTilde(double t, double eta);

/// f_zeta(w), Eq. (261): f(0) = 1/zeta, f(w) = w for w >= 1 (zeta > 2).
double FZeta(uint64_t w, double zeta);

/// The Poissonization pre-factor of Lemma B.4: P[Z = b] <= 21 dA^2 P[W = b]
/// for hypergeometric Z and Poisson W with matched means.
double PoissonizationFactor(double d_a);

/// The Lipschitz semi-norm of ghat_eta on [0, 1]: ln(eta / e).
double GHatLipschitzConstant(double eta);

/// max_t |ghat_zeta(t) - g(t)| = 1/zeta on [0, 1] (Eq. 210).
double GHatApproxError(double zeta);

}  // namespace ajd

#endif  // AJD_STATS_SPECIAL_H_
