#include "stats/poisson.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ajd {

Poisson::Poisson(double lambda) : lambda_(lambda) {
  AJD_CHECK(lambda > 0.0);
}

double Poisson::LogPmf(uint64_t k) const {
  return static_cast<double>(k) * std::log(lambda_) - lambda_ -
         LogFactorial(k);
}

double Poisson::Pmf(uint64_t k) const { return std::exp(LogPmf(k)); }

double Poisson::Cdf(uint64_t k) const {
  // Stable forward recursion on the pmf.
  double term = std::exp(-lambda_);
  double total = term;
  for (uint64_t i = 1; i <= k; ++i) {
    term *= lambda_ / static_cast<double>(i);
    total += term;
  }
  return std::min(total, 1.0);
}

namespace {

// Knuth's product method; valid while exp(-lambda) does not underflow.
uint64_t SampleSmall(double lambda, Rng* rng) {
  const double threshold = std::exp(-lambda);
  uint64_t k = 0;
  double p = 1.0;
  while (true) {
    p *= rng->NextDouble();
    if (p <= threshold) return k;
    ++k;
  }
}

}  // namespace

uint64_t Poisson::Sample(Rng* rng) const {
  // Split large lambda into halves (Poisson additivity) until the product
  // method is numerically safe.
  double remaining = lambda_;
  uint64_t total = 0;
  while (remaining > 500.0) {
    total += SampleSmall(250.0, rng);
    remaining -= 250.0;
  }
  return total + SampleSmall(remaining, rng);
}

double PoissonChernoffBound(double lambda, double alpha) {
  AJD_CHECK(alpha > 3.0 * std::exp(1.0));
  return std::exp(-lambda) *
         std::exp(alpha * lambda * (1.0 - std::log(alpha)));
}

double PoissonLipschitzTailBound(double lambda, double t) {
  AJD_CHECK(t > 0.0);
  return std::exp(-(t / 4.0) * std::log1p(t / (2.0 * lambda)));
}

double PoissonExpectedInverseOnePlus(double lambda) {
  return (1.0 - std::exp(-lambda)) / lambda;
}

}  // namespace ajd
