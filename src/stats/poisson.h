// Poisson distribution and the Poisson concentration tools of Appendix D:
// Chernoff's bound (Lemma D.3) and concentration of Lipschitz functions
// (Lemma D.4), used in the proof of Proposition 5.5 after Poissonization.
#ifndef AJD_STATS_POISSON_H_
#define AJD_STATS_POISSON_H_

#include <cstdint>

#include "random/rng.h"

namespace ajd {

/// Poisson(lambda), lambda > 0.
class Poisson {
 public:
  explicit Poisson(double lambda);

  double lambda() const { return lambda_; }

  double Mean() const { return lambda_; }
  double Variance() const { return lambda_; }

  /// ln P[W = k] = k ln(lambda) - lambda - ln(k!).
  double LogPmf(uint64_t k) const;

  /// P[W = k].
  double Pmf(uint64_t k) const;

  /// P[W <= k] by summation.
  double Cdf(uint64_t k) const;

  /// Draws a sample. Inversion-by-search for small lambda; for large lambda
  /// the sum-of-halves recursion keeps the per-sample work O(lambda) with
  /// small constants (adequate for test/bench workloads).
  uint64_t Sample(Rng* rng) const;

 private:
  double lambda_;
};

/// Chernoff bound for Poisson (Lemma D.3): for alpha > 3e,
///   P[X >= alpha * lambda] <= e^{-lambda} (e/alpha)^{alpha lambda}
///                          <= e^{-alpha lambda}.
/// Returns the middle (tighter) expression.
double PoissonChernoffBound(double lambda, double alpha);

/// Concentration of 1-Lipschitz functions of a Poisson (Lemma D.4):
///   P[f(W) - E f(W) > t] <= exp(-(t/4) ln(1 + t/(2 lambda))).
double PoissonLipschitzTailBound(double lambda, double t);

/// E[1/(1+W)] for W ~ Poisson(lambda): (1 - e^-lambda)/lambda (Eq. 280).
double PoissonExpectedInverseOnePlus(double lambda);

}  // namespace ajd

#endif  // AJD_STATS_POISSON_H_
