#include "stats/inequalities.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math.h"

namespace ajd {

LogSumSides LogSumInequality(const std::vector<double>& a,
                             const std::vector<double>& b) {
  AJD_CHECK(a.size() == b.size());
  double sum_a = 0.0;
  double sum_b = 0.0;
  double rhs = 0.0;
  bool rhs_infinite = false;
  for (size_t i = 0; i < a.size(); ++i) {
    AJD_CHECK(a[i] >= 0.0 && b[i] >= 0.0);
    sum_a += a[i];
    sum_b += b[i];
    if (a[i] > 0.0) {
      if (b[i] == 0.0) {
        rhs_infinite = true;
      } else {
        rhs += a[i] * std::log(a[i] / b[i]);
      }
    }
  }
  LogSumSides out;
  out.lhs = (sum_a > 0.0 && sum_b > 0.0) ? sum_a * std::log(sum_a / sum_b)
                                         : 0.0;
  out.rhs = rhs_infinite ? std::numeric_limits<double>::infinity() : rhs;
  return out;
}

double NegTLogTChordBound(double s, double t) {
  AJD_CHECK(s >= 0.0 && s <= 1.0 && t >= 0.0 && t <= 1.0);
  return 2.0 * NegTLogT(std::fabs(s - t));
}

double LemmaD6Threshold(double y) {
  AJD_CHECK(y >= std::exp(1.0));
  // 2 y ln y, not the paper's y ln y — see the header's erratum note.
  return 2.0 * y * std::log(y);
}

}  // namespace ajd
