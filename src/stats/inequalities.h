// The auxiliary inequalities of Appendix D that are not tied to a single
// distribution: the log sum inequality (Lemma D.8), the chord bound for
// g(t) = -t ln t (Lemma D.2, second part), and Lemma D.6.
#ifndef AJD_STATS_INEQUALITIES_H_
#define AJD_STATS_INEQUALITIES_H_

#include <vector>

namespace ajd {

/// Both sides of the log sum inequality (Lemma D.8) for nonnegative a_i,
/// b_i:  sum a_i ln(sum a / sum b)  <=  sum a_i ln(a_i / b_i).
struct LogSumSides {
  double lhs = 0.0;
  double rhs = 0.0;
};

/// Evaluates both sides; terms with a_i = 0 contribute 0 to the rhs, and a
/// positive a_i with b_i = 0 makes the rhs +infinity.
LogSumSides LogSumInequality(const std::vector<double>& a,
                             const std::vector<double>& b);

/// The chord bound |g(t) - g(s)| <= 2 g(|s - t|) for g(t) = -t ln t and
/// s, t in [0, 1] (Lemma D.2). Returns the bound 2 g(|s - t|).
double NegTLogTChordBound(double s, double t);

/// Lemma D.6 (corrected): returns a threshold x0 such that x >= x0 implies
/// x / ln x >= y, for y >= e.
///
/// ERRATUM NOTE: the paper states the threshold as x0 = y ln y, but that
/// does not suffice for y > e: at x = y ln y one gets
/// x / ln x = y ln y / (ln y + ln ln y) < y whenever ln ln y > 0. The
/// standard threshold x0 = 2 y ln y does suffice (for all y >= e), and the
/// factor 2 is absorbed by the paper's generous constant in condition (40).
/// See EXPERIMENTS.md, "Paper discrepancies".
double LemmaD6Threshold(double y);

}  // namespace ajd

#endif  // AJD_STATS_INEQUALITIES_H_
