#include "stats/binomial.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/math.h"

namespace ajd {

Binomial::Binomial(uint64_t n, double p) : n_(n), p_(p) {
  AJD_CHECK(p >= 0.0 && p <= 1.0);
}

double Binomial::LogPmf(uint64_t k) const {
  if (k > n_) return -std::numeric_limits<double>::infinity();
  if (p_ == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  if (p_ == 1.0) {
    return k == n_ ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return LogBinomial(n_, k) + static_cast<double>(k) * std::log(p_) +
         static_cast<double>(n_ - k) * std::log1p(-p_);
}

double Binomial::Pmf(uint64_t k) const { return std::exp(LogPmf(k)); }

double Binomial::Cdf(uint64_t k) const {
  double total = 0.0;
  uint64_t hi = std::min(k, n_);
  for (uint64_t i = 0; i <= hi; ++i) total += Pmf(i);
  return std::min(total, 1.0);
}

uint64_t Binomial::Sample(Rng* rng) const {
  uint64_t hits = 0;
  for (uint64_t i = 0; i < n_; ++i) {
    if (rng->Bernoulli(p_)) ++hits;
  }
  return hits;
}

double BinomialRelativeChernoffBound(uint64_t n, double p, double xi) {
  AJD_CHECK(xi >= 0.0 && xi <= 1.0);
  return 2.0 * std::exp(-xi * xi * p * static_cast<double>(n) / 3.0);
}

}  // namespace ajd
