#include "stats/functional_entropy.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ajd {

double FunctionalEntropy(const std::vector<double>& values,
                         const std::vector<double>& probs) {
  AJD_CHECK(values.size() == probs.size());
  double e_xlogx = 0.0;
  double e_x = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    AJD_CHECK(values[i] >= 0.0);
    e_xlogx += probs[i] * XLogX(values[i]);
    e_x += probs[i] * values[i];
  }
  return e_xlogx - XLogX(e_x);
}

double FunctionalEntropyOfSamples(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double e_xlogx = 0.0;
  double e_x = 0.0;
  const double w = 1.0 / static_cast<double>(samples.size());
  for (double x : samples) {
    AJD_CHECK(x >= 0.0);
    e_xlogx += w * XLogX(x);
    e_x += w * x;
  }
  return e_xlogx - XLogX(e_x);
}

double BernoulliLsiCoefficient(double p) {
  AJD_CHECK(p > 0.0 && p < 1.0);
  if (std::fabs(p - 0.5) < 1e-9) return 2.0;
  return std::log((1.0 - p) / p) / (1.0 - 2.0 * p);
}

double EfronSteinVariance(
    const std::function<double(const std::vector<int>&)>& g, uint32_t d,
    double p, Rng* rng, uint32_t mc_samples) {
  AJD_CHECK(d >= 1);
  AJD_CHECK(p > 0.0 && p < 1.0);
  auto sq_flip_sum = [&](std::vector<int>* r) {
    double base = g(*r);
    double sum = 0.0;
    for (uint32_t j = 0; j < d; ++j) {
      (*r)[j] = -(*r)[j];
      double flipped = g(*r);
      (*r)[j] = -(*r)[j];
      double diff = base - flipped;
      sum += diff * diff;
    }
    return sum;
  };

  double expectation = 0.0;
  if (d <= 20) {
    // Exact enumeration over all 2^d sign vectors.
    std::vector<int> r(d, -1);
    const uint64_t total = uint64_t{1} << d;
    for (uint64_t mask = 0; mask < total; ++mask) {
      double prob = 1.0;
      uint32_t ones = 0;
      for (uint32_t j = 0; j < d; ++j) {
        r[j] = (mask >> j) & 1 ? 1 : -1;
        if (r[j] == 1) ++ones;
      }
      prob = std::pow(p, ones) * std::pow(1.0 - p, d - ones);
      expectation += prob * sq_flip_sum(&r);
    }
  } else {
    std::vector<int> r(d);
    for (uint32_t s = 0; s < mc_samples; ++s) {
      for (uint32_t j = 0; j < d; ++j) r[j] = rng->Bernoulli(p) ? 1 : -1;
      expectation += sq_flip_sum(&r);
    }
    expectation /= static_cast<double>(mc_samples);
  }
  return p * (1.0 - p) * expectation;
}

double LemmaB2EntBound(double rho, double d_b) {
  AJD_CHECK(rho > 0.0 && rho < 1.0);
  return 2.0 * rho * std::log(1.0 / rho) / (1.0 - rho) / d_b;
}

double LemmaB3CouplingBound(double d_b) {
  AJD_CHECK(d_b > 0.0);
  double l = std::log(d_b);
  return std::sqrt(2.0 * l * l / d_b);
}

double PoissonEntUpperBound() { return 4.0; }

}  // namespace ajd
