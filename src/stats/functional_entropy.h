// Functional entropy Ent(X) = E[X ln X] - E[X] ln E[X] (Eq. 53) and the
// logarithmic-Sobolev machinery of Section 5.2.1: the Bernoulli LSI
// coefficient (Lemma D.1), Efron-Stein variance estimation, and the paper's
// closed-form bound on Ent(Ytilde) (Lemma B.2).
#ifndef AJD_STATS_FUNCTIONAL_ENTROPY_H_
#define AJD_STATS_FUNCTIONAL_ENTROPY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "random/rng.h"

namespace ajd {

/// Ent(X) for a discrete nonnegative random variable given as support
/// values and probabilities: E[X ln X] - E[X] ln E[X]. Nonnegative by
/// Jensen (t ln t is convex). Values must be >= 0; probabilities must sum
/// to ~1 (not enforced).
double FunctionalEntropy(const std::vector<double>& values,
                         const std::vector<double>& probs);

/// Empirical Ent over equally weighted samples.
double FunctionalEntropyOfSamples(const std::vector<double>& samples);

/// The LSI coefficient of Lemma D.1 for Bernoulli(p) variables:
///   c(p) = (1 / (1 - 2p)) ln((1-p)/p),
/// continuously extended to c(1/2) = 2. The LSI is Ent(g^2) <= c(p) E(g).
double BernoulliLsiCoefficient(double p);

/// Monte-Carlo estimate of the Efron-Stein variance E(g) of Eq. (340) for a
/// function g over d i.i.d. {-1,+1} variables with P[+1] = p:
///   E(g) = p(1-p) E[ sum_j (g(R) - g(R with R_j flipped))^2 ].
/// Exact enumeration when d <= 20 (2^d evaluations), Monte Carlo otherwise.
double EfronSteinVariance(
    const std::function<double(const std::vector<int>&)>& g, uint32_t d,
    double p, Rng* rng, uint32_t mc_samples = 20000);

/// The paper's closed-form bound on Ent(Ytilde) (Lemma B.2):
///   Ent(Ytilde) <= 2 rho ln(1/rho) / (1 - rho) * (1/d_b),
/// where rho = d_a d_b / eta - 1 in (0, 1). Requires rho in (0, 1).
double LemmaB2EntBound(double rho, double d_b);

/// The bound on |Ent(Y_S) - Ent(Ytilde)| of Lemma B.3:
///   sqrt(2 ln^2(d_b) / d_b).
double LemmaB3CouplingBound(double d_b);

/// Ent(W) <= 4 for any Poisson W with mean > 1 (proof of Lemma B.5,
/// Eq. 281). Exposed as the constant for bench validation.
double PoissonEntUpperBound();

}  // namespace ajd

#endif  // AJD_STATS_FUNCTIONAL_ENTROPY_H_
