#include "stats/special.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ajd {

double GHat(double t, double zeta) {
  AJD_CHECK(zeta >= std::exp(1.0));
  AJD_CHECK(t >= 0.0);
  if (t <= 1.0 / zeta) {
    return t * std::log(zeta / std::exp(1.0)) + 1.0 / zeta;
  }
  return NegTLogT(t);
}

double GTilde(double t, double eta) {
  const double inv_e = std::exp(-1.0);
  if (t <= inv_e) return GHat(t, eta);
  return GHat(inv_e, eta);
}

double FZeta(uint64_t w, double zeta) {
  AJD_CHECK(zeta > 2.0);
  return w == 0 ? 1.0 / zeta : static_cast<double>(w);
}

double PoissonizationFactor(double d_a) { return 21.0 * d_a * d_a; }

double GHatLipschitzConstant(double eta) {
  return std::log(eta / std::exp(1.0));
}

double GHatApproxError(double zeta) { return 1.0 / zeta; }

}  // namespace ajd
