// Binomial distribution and the relative Chernoff bound (Lemma D.2), used
// for the event A in the proof of Proposition 5.4.
#ifndef AJD_STATS_BINOMIAL_H_
#define AJD_STATS_BINOMIAL_H_

#include <cstdint>

#include "random/rng.h"

namespace ajd {

/// Binomial(n, p).
class Binomial {
 public:
  Binomial(uint64_t n, double p);

  uint64_t n() const { return n_; }
  double p() const { return p_; }

  double Mean() const { return static_cast<double>(n_) * p_; }
  double Variance() const {
    return static_cast<double>(n_) * p_ * (1.0 - p_);
  }

  /// ln P[X = k].
  double LogPmf(uint64_t k) const;

  /// P[X = k].
  double Pmf(uint64_t k) const;

  /// P[X <= k] by summation.
  double Cdf(uint64_t k) const;

  /// Draws a sample (sum of Bernoullis; O(n)).
  uint64_t Sample(Rng* rng) const;

 private:
  uint64_t n_;
  double p_;
};

/// Relative Chernoff bound (Lemma D.2): for i.i.d. Bernoulli(p) B_1..B_n and
/// any xi in [0,1],
///   P[ |(1/n) sum B_i - p| >= xi p ] <= 2 exp(-xi^2 p n / 3).
double BinomialRelativeChernoffBound(uint64_t n, double p, double xi);

}  // namespace ajd

#endif  // AJD_STATS_BINOMIAL_H_
