// The loss of a schema with respect to a relation instance (Eq. 1):
//
//   rho(R, S) = (|join_i R[Omega_i]| - |R|) / |R|,
//
// and the per-MVD loss rho(R, phi) of Eq. (28). The join size is evaluated
// by count propagation (never materialized).
#ifndef AJD_CORE_LOSS_H_
#define AJD_CORE_LOSS_H_

#include <cstdint>
#include <optional>

#include "jointree/join_tree.h"
#include "jointree/mvd.h"
#include "relation/acyclic_join.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// The loss of an acyclic schema w.r.t. a relation.
struct LossReport {
  uint64_t num_tuples = 0;            ///< N = |R|
  double join_size = 0.0;             ///< |R'| (exact below 2^53)
  std::optional<uint64_t> join_size_exact;  ///< |R'| when it fits in uint64
  double rho = 0.0;                   ///< rho(R, S)
  double log1p_rho = 0.0;             ///< ln(1 + rho), nats
};

/// Computes rho(R, S) for the schema of `tree` via Yannakakis counting.
/// Requires a non-empty relation whose attributes include chi(T).
Result<LossReport> ComputeLoss(const Relation& r, const JoinTree& tree);

/// The per-MVD loss rho(R, phi) of Eq. (28):
///   (|Pi_{side_a}(R) join Pi_{side_b}(R)| - |R|) / |R|.
/// The join is the natural join of the two projections (on all shared
/// attributes). Computed by group counting; never materialized.
Result<LossReport> ComputeMvdLoss(const Relation& r, const Mvd& mvd);

}  // namespace ajd

#endif  // AJD_CORE_LOSS_H_
