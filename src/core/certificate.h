// High-probability loss certificates: the user-facing assembly of the
// paper's Section 5 machinery. Given a relation (assumed drawn from the
// random relation model), an acyclic schema, and a confidence delta, the
// certificate states:
//
//   "with probability >= 1 - delta (over the draw of R),
//        ln(1 + rho(R, S)) <= sum_i [ I_i + eps_i ]"
//
// where the sum runs over the support MVDs (Prop 5.3 composed with
// Theorem 5.1, splitting delta as delta/(m-1) per MVD), together with an
// applicability verdict: every MVD must satisfy the qualifying condition
// (37) and the per-group Lemma C.1 condition for the statement to carry
// the paper's guarantee. When conditions fail, the certificate is still
// assembled but flagged advisory.
//
// NOTE: the composition step inherits the Proposition 5.1 caveat recorded
// in EXPERIMENTS.md (the stated product decomposition is typical-case).
// The certificate reports this explicitly.
#ifndef AJD_CORE_CERTIFICATE_H_
#define AJD_CORE_CERTIFICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "jointree/join_tree.h"
#include "jointree/mvd.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

class AnalysisSession;  // engine/analysis_session.h

/// Per-MVD ingredient of a certificate.
struct MvdCertificate {
  Mvd mvd;
  double cmi = 0.0;           ///< I(side_a; side_b | lhs), nats
  uint64_t d_a = 1, d_b = 1, d_c = 1;  ///< active-domain sizes
  double epsilon = 0.0;       ///< eps*(phi, N, delta/(m-1)), Eq. (38)
  bool qualifies_37 = false;  ///< N >= Eq. (37) threshold
  bool qualifies_c1 = false;  ///< min C-group >= Lemma C.1 threshold
  uint64_t min_group = 0;     ///< smallest C-group observed
};

/// The assembled certificate.
struct LossCertificate {
  double delta = 0.0;           ///< requested confidence parameter
  uint64_t n = 0;               ///< |R|
  std::vector<MvdCertificate> mvds;
  double bound_nats = 0.0;      ///< sum_i (cmi_i + eps_i)
  double bound_rho = 0.0;       ///< e^bound - 1: certified spurious fraction
  /// True iff every MVD passes (37) and Lemma C.1 — the paper's guarantee
  /// regime. Otherwise the bound is advisory (constants not yet binding).
  bool fully_qualified = false;

  /// Human-readable rendering.
  std::string ToString() const;
};

/// Assembles the certificate for (r, tree) at confidence `delta`.
/// Requirements: non-empty relation, tree covering its attributes,
/// delta in (0,1), and at least 2 bags.
Result<LossCertificate> CertifyLoss(const Relation& r, const JoinTree& tree,
                                    double delta = 0.05);

/// Session-sharing variant: certifying a mined tree right after
/// MineJoinTree(session, r, ...) answers the per-MVD CMIs (and the
/// groupwise Lemma C.1 scans) from the session's warmed cache.
Result<LossCertificate> CertifyLoss(AnalysisSession* session,
                                    const Relation& r, const JoinTree& tree,
                                    double delta = 0.05);

/// Planning helper: the smallest N for which Theorem 5.1's qualifying
/// condition (37) holds AND eps*(phi, N, delta) <= `target_eps`, for an
/// MVD with the given domain sizes. Returns OutOfRange if no N below
/// `n_cap` suffices. (eps* is monotone decreasing in N, so this is a
/// binary search.)
Result<uint64_t> PlanSampleSize(uint64_t d_a, uint64_t d_b, uint64_t d_c,
                                double delta, double target_eps,
                                uint64_t n_cap = uint64_t{1} << 50);

}  // namespace ajd

#endif  // AJD_CORE_CERTIFICATE_H_
