#include "core/mvd_check.h"

#include "core/loss.h"
#include "relation/row_hash.h"

namespace ajd {

Result<bool> SatisfiesMvd(const Relation& r, const Mvd& mvd) {
  Result<LossReport> loss = ComputeMvdLoss(r, mvd);
  if (!loss.ok()) return loss.status();
  return loss.value().rho == 0.0;
}

Result<bool> SatisfiesAjd(const Relation& r, const JoinTree& tree) {
  if (tree.AllAttrs() != r.schema().AllAttrs()) {
    return Status::InvalidArgument(
        "AJD check requires the tree to cover all attributes");
  }
  Result<LossReport> loss = ComputeLoss(r, tree);
  if (!loss.ok()) return loss.status();
  return loss.value().rho == 0.0;
}

Result<bool> SatisfiesFd(const Relation& r, AttrSet lhs, AttrSet rhs) {
  if (!lhs.Union(rhs).IsSubsetOf(r.schema().AllAttrs())) {
    return Status::InvalidArgument(
        "FD references attributes outside the relation");
  }
  if (rhs.Empty()) return true;
  // Group rows by lhs; within a group, all rhs values must coincide.
  std::vector<uint32_t> lhs_pos = lhs.ToIndices();
  std::vector<uint32_t> rhs_pos = rhs.ToIndices();
  TupleCounter groups(std::max<size_t>(lhs_pos.size(), 1), r.NumRows());
  // First rhs tuple seen per group, stored flat.
  std::vector<uint32_t> first_rhs;
  std::vector<uint32_t> lhs_key(std::max<size_t>(lhs_pos.size(), 1), 0);
  std::vector<uint32_t> rhs_key(rhs_pos.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    const uint32_t* row = r.Row(i);
    for (size_t k = 0; k < lhs_pos.size(); ++k) lhs_key[k] = row[lhs_pos[k]];
    for (size_t k = 0; k < rhs_pos.size(); ++k) rhs_key[k] = row[rhs_pos[k]];
    uint32_t idx = groups.Find(lhs_key.data());
    if (idx == UINT32_MAX) {
      idx = groups.Add(lhs_key.data());
      first_rhs.insert(first_rhs.end(), rhs_key.begin(), rhs_key.end());
      continue;
    }
    const uint32_t* stored = first_rhs.data() +
                             static_cast<size_t>(idx) * rhs_pos.size();
    for (size_t k = 0; k < rhs_pos.size(); ++k) {
      if (stored[k] != rhs_key[k]) return false;
    }
  }
  return true;
}

Result<bool> SatisfiesAllSupportMvds(const Relation& r,
                                     const JoinTree& tree) {
  for (const Mvd& mvd : tree.SupportMvds()) {
    Result<bool> ok = SatisfiesMvd(r, mvd);
    if (!ok.ok()) return ok.status();
    if (!ok.value()) return false;
  }
  return true;
}

}  // namespace ajd
