// Monte-Carlo experiment drivers regenerating the paper's evaluation
// artifacts (see DESIGN.md experiment index):
//
//  * RunFig1            — Figure 1: MI scattering vs ln(1 + rho_bar) under
//                         the random relation model with d_C = 1,
//                         d_A = d_B = d.
//  * RunMvdDeviation    — Theorem 5.1: distribution of
//                         ln(1 + rho(R,phi)) - I(A;B|C) vs eps*.
//  * RunEntropyDeviation— Theorem 5.2 / Prop 5.4: distribution of
//                         ln d_A - H(A_S) vs the confidence bound.
//
// Every driver is deterministic given the config seed.
#ifndef AJD_CORE_EXPERIMENT_H_
#define AJD_CORE_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace ajd {

class AnalysisSession;  // engine/analysis_session.h

/// Summary statistics of a sample.
struct SampleSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double q50 = 0.0;
  double q90 = 0.0;
  double q99 = 0.0;
};

/// Computes summary statistics (empty input gives zeros).
SampleSummary Summarize(const std::vector<double>& xs);

// ---------------------------------------------------------------------------
// Figure 1.
// ---------------------------------------------------------------------------

/// Protocol of Figure 1: for each d in [d_min, d_max] step d_step, fix the
/// target spurious fraction rho_bar, set N = round(d^2 / (1 + rho_bar)),
/// draw `trials` relations from the random relation model over [d] x [d],
/// and record I(A_S; B_S).
struct Fig1Config {
  double rho_bar = 0.10;     ///< Paper's y-range ~[0.094, 0.0955] nats.
  uint64_t d_min = 100;
  uint64_t d_max = 1000;
  uint64_t d_step = 100;
  uint32_t trials = 5;
  uint64_t seed = 42;
};

/// One Figure-1 point set (one value of d).
struct Fig1Row {
  uint64_t d = 0;
  uint64_t n = 0;                  ///< N = round(d^2/(1+rho_bar))
  double rho_bar_realized = 0.0;   ///< d^2/N - 1 after rounding
  double target = 0.0;             ///< ln(1 + rho_bar_realized)
  std::vector<double> mi_samples;  ///< I(A_S;B_S) per trial, nats
  SampleSummary mi;
};

/// Runs the Figure 1 protocol.
Result<std::vector<Fig1Row>> RunFig1(const Fig1Config& config);

/// Session-sharing variant: trial relations are served through `session`
/// (its EngineOptions — e.g. num_threads — govern the entropy evaluation)
/// and released again before each trial relation is destroyed.
Result<std::vector<Fig1Row>> RunFig1(AnalysisSession* session,
                                     const Fig1Config& config);

// ---------------------------------------------------------------------------
// Theorem 5.1 (per-MVD deviation).
// ---------------------------------------------------------------------------

/// Monte-Carlo study of the Theorem 5.1 deviation for one MVD C ->> A | B
/// over domains [d_a] x [d_b] x [d_c] with N tuples.
struct MvdDeviationConfig {
  uint64_t d_a = 32, d_b = 32, d_c = 4;
  uint64_t n = 1 << 14;
  double delta = 0.05;
  uint32_t trials = 50;
  uint64_t seed = 7;
};

struct MvdDeviationResult {
  std::vector<double> deviations;  ///< ln(1+rho) - I(A;B|C) per trial
  SampleSummary dev;
  double eps_star = 0.0;           ///< Eq. (38)
  double min_n = 0.0;              ///< Eq. (37)
  bool thm51_applies = false;
  double frac_within = 0.0;        ///< fraction of trials <= eps_star
};

Result<MvdDeviationResult> RunMvdDeviation(const MvdDeviationConfig& config);

/// Session-sharing variant (see RunFig1).
Result<MvdDeviationResult> RunMvdDeviation(AnalysisSession* session,
                                           const MvdDeviationConfig& config);

// ---------------------------------------------------------------------------
// Theorem 5.2 (entropy deviation, degenerate C).
// ---------------------------------------------------------------------------

/// Monte-Carlo study of ln d_A - H(A_S) for the random relation model over
/// [d] x [d] with eta tuples.
struct EntropyDeviationConfig {
  uint64_t d = 64;
  uint64_t eta = 1 << 16;
  double delta = 0.05;
  uint32_t trials = 50;
  uint64_t seed = 11;
};

struct EntropyDeviationResult {
  std::vector<double> gaps;    ///< ln d - H(A_S) per trial
  SampleSummary gap;
  double thm52_bound = 0.0;    ///< Eq. (41) deviation
  double prop54_bound = 0.0;   ///< C(d_B), Eq. (46): bound on the MEAN gap
  bool eta_qualifies = false;  ///< Eq. (40)
  double frac_within = 0.0;    ///< fraction of trials <= thm52_bound
};

Result<EntropyDeviationResult> RunEntropyDeviation(
    const EntropyDeviationConfig& config);

/// Session-sharing variant (see RunFig1).
Result<EntropyDeviationResult> RunEntropyDeviation(
    AnalysisSession* session, const EntropyDeviationConfig& config);

}  // namespace ajd

#endif  // AJD_CORE_EXPERIMENT_H_
