// AnalyzeAjd: the one-call entry point of the library. Given a relation and
// an acyclic schema (join tree), computes every quantity the paper relates:
// the loss rho, the J-measure (three ways), the KL-divergence
// characterization (Theorem 3.2), the Theorem 2.2 sandwich, the per-MVD
// support statistics, and the Section 4/5 bounds with their applicability.
#ifndef AJD_CORE_ANALYSIS_H_
#define AJD_CORE_ANALYSIS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/loss.h"
#include "jointree/join_tree.h"
#include "jointree/mvd.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

class AnalysisSession;  // engine/analysis_session.h

/// Statistics for one MVD in the support of the schema.
struct MvdStat {
  Mvd mvd;
  double cmi = 0.0;          ///< I(side_a; side_b | lhs), nats.
  double rho = 0.0;          ///< rho(R, phi), Eq. (28).
  double log1p_rho = 0.0;    ///< ln(1 + rho(R, phi)).
  /// Active-domain sizes entering Theorem 5.1: d_A = |Pi_{A \ C}(R)|,
  /// d_B = |Pi_{B \ C}(R)|, d_C = |Pi_C(R)| (1 when C is empty).
  uint64_t d_a = 0, d_b = 0, d_c = 0;
  double epsilon_star = 0.0;  ///< eps*(phi, N, delta), Eq. (38).
  bool thm51_applies = false;  ///< Qualifying condition (37).
};

/// Everything the library can say about (R, S).
struct AjdAnalysis {
  uint64_t n = 0;                 ///< |R|
  LossReport loss;                ///< rho(R, S) via Yannakakis counting.
  double j = 0.0;                 ///< J-measure, Eq. (7).
  double kl = 0.0;                ///< D(P || P^T); == j by Theorem 3.2.
  double chain_rule_j = 0.0;      ///< sum_i I(prefix; bag | delta); == j.
  /// Theorem 2.2 lower side, realized through the edge-support CMIs
  /// max_i I(chi(Tu); chi(Tv) | Delta): provably <= J (coarsening).
  double max_support_cmi = 0.0;
  /// max_i I(Omega_{1:i-1}; Omega_{i:m} | Delta_i) for the DFS rooted at 0.
  /// CAUTION: the paper's Theorem 2.2 states this is <= J, but for DFS
  /// enumerations whose prefix and suffix share attributes outside Delta_i
  /// it can EXCEED J (see EXPERIMENTS.md, "Paper discrepancies"). Exposed
  /// for diagnostics.
  double max_dfs_cmi = 0.0;
  double sum_dfs_cmi = 0.0;       ///< Theorem 2.2 upper side (always valid).
  double rho_lower_bound = 0.0;   ///< Lemma 4.1: e^J - 1 <= rho.
  /// Prop 5.1's claimed upper bound sum_i ln(1+rho_i). CAUTION: the paper's
  /// proposition admits counterexamples (see MakeProp51Counterexample and
  /// EXPERIMENTS.md); treat as a typical-case estimate, not a guarantee.
  double prop51_bound = 0.0;
  std::vector<MvdStat> support;   ///< Per support MVD (edge MVDs).
  double delta = 0.0;             ///< Confidence parameter used below.
  /// Prop 5.3 (Eq. 33): sum_i (cmi_i + eps_i); meaningful when every
  /// support MVD satisfies (37) — see prop53_valid.
  double prop53_upper = 0.0;
  bool prop53_valid = false;
  /// True iff R |= AJD(S) (rho == 0, equivalently J == 0 by Thm 2.1).
  bool lossless = false;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Runs the full analysis. `delta` is the confidence parameter for the
/// Section 5 bounds. The KL computation and support losses are linear-ish
/// in |R| times the number of bags; nothing is materialized.
Result<AjdAnalysis> AnalyzeAjd(const Relation& r, const JoinTree& tree,
                               double delta = 0.05);

/// Session-sharing variant: every entropy term (bags, separators, DFS
/// sandwich, support CMIs) is answered by the session's engine for `r`, so
/// analysis after mining — or repeated analyses of candidate trees over the
/// same relation — reuses all cached work.
Result<AjdAnalysis> AnalyzeAjd(AnalysisSession* session, const Relation& r,
                               const JoinTree& tree, double delta = 0.05);

}  // namespace ajd

#endif  // AJD_CORE_ANALYSIS_H_
