// AJD_GCC12_O3: gcc 12's -O3 inliner follows vector::operator=({...}) into
// the empty-initializer branch and reports memmove(nullptr) as -Wnonnull,
// a libstdc++ false positive (the branch guards the call at runtime).
// Suppressed for this TU only so the rest of the build keeps the
// diagnostic, and pinned to gcc 12 exactly so the workaround self-retires
// — a newer gcc reporting -Wnonnull here is a real finding, not this one.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ == 12
#pragma GCC diagnostic ignored "-Wnonnull"
#endif

#include "core/experiment.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "core/loss.h"
#include "engine/analysis_session.h"
#include "info/entropy.h"
#include "random/random_relation.h"
#include "random/rng.h"
#include "util/math.h"

namespace ajd {

SampleSummary Summarize(const std::vector<double>& xs) {
  SampleSummary s;
  if (xs.empty()) return s;
  s.mean = Mean(xs);
  s.stddev = SampleStdDev(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.q50 = Quantile(xs, 0.50);
  s.q90 = Quantile(xs, 0.90);
  s.q99 = Quantile(xs, 0.99);
  return s;
}

// The convenience overloads below run each sweep through one sharded
// session: every trial relation's engine charges the SAME cache budget
// (SessionOptions defaults -> a session-global CacheArbiter), and the
// per-trial Release discharges a dead trial's whole footprint in O(its
// entries), so memory follows whichever trials are live instead of being
// provisioned per relation.
Result<std::vector<Fig1Row>> RunFig1(const Fig1Config& config) {
  AnalysisSession session{SessionOptions{}};
  return RunFig1(&session, config);
}

Result<std::vector<Fig1Row>> RunFig1(AnalysisSession* session,
                                     const Fig1Config& config) {
  if (config.rho_bar <= 0.0) {
    return Status::InvalidArgument("rho_bar must be positive");
  }
  if (config.d_min == 0 || config.d_step == 0 ||
      config.d_min > config.d_max) {
    return Status::InvalidArgument("invalid d range");
  }
  Rng rng(config.seed);
  std::vector<Fig1Row> rows;
  for (uint64_t d = config.d_min; d <= config.d_max; d += config.d_step) {
    Fig1Row row;
    row.d = d;
    const double domain = static_cast<double>(d) * static_cast<double>(d);
    row.n = static_cast<uint64_t>(
        std::llround(domain / (1.0 + config.rho_bar)));
    if (row.n == 0 || row.n > d * d) {
      return Status::OutOfRange("rho_bar incompatible with domain size");
    }
    row.rho_bar_realized = domain / static_cast<double>(row.n) - 1.0;
    row.target = std::log1p(row.rho_bar_realized);
    for (uint32_t t = 0; t < config.trials; ++t) {
      RandomRelationSpec spec;
      spec.domain_sizes = {d, d};
      spec.num_tuples = row.n;
      spec.attr_names = {"A", "B"};
      Result<Relation> r = SampleRandomRelation(spec, &rng);
      if (!r.ok()) return r.status();
      EntropyCalculator calc(session, &r.value());
      row.mi_samples.push_back(
          calc.MutualInformation(AttrSet{0}, AttrSet{1}));
      // The trial relation dies with this iteration; drop its engine so a
      // later trial reusing the address gets a fresh one.
      session->Release(r.value());
    }
    row.mi = Summarize(row.mi_samples);
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<MvdDeviationResult> RunMvdDeviation(const MvdDeviationConfig& config) {
  AnalysisSession session{SessionOptions{}};
  return RunMvdDeviation(&session, config);
}

Result<MvdDeviationResult> RunMvdDeviation(AnalysisSession* session,
                                           const MvdDeviationConfig& config) {
  Rng rng(config.seed);
  MvdDeviationResult out;
  out.eps_star = EpsilonStarMvd(config.d_a, config.d_b, config.d_c, config.n,
                                config.delta);
  out.min_n =
      Theorem51MinN(config.d_a, config.d_b, config.d_c, config.delta);
  out.thm51_applies = Theorem51Applies(config.d_a, config.d_b, config.d_c,
                                       config.n, config.delta);
  // Attributes ordered (A, B, C) = positions (0, 1, 2).
  const AttrSet a{0}, b{1}, c{2};
  Mvd mvd = MakeMvd(c, a, b);
  uint32_t within = 0;
  for (uint32_t t = 0; t < config.trials; ++t) {
    RandomRelationSpec spec;
    spec.domain_sizes = {config.d_a, config.d_b, config.d_c};
    spec.num_tuples = config.n;
    spec.attr_names = {"A", "B", "C"};
    Result<Relation> r = SampleRandomRelation(spec, &rng);
    if (!r.ok()) return r.status();
    Result<LossReport> loss = ComputeMvdLoss(r.value(), mvd);
    if (!loss.ok()) return loss.status();
    EntropyCalculator calc(session, &r.value());
    double cmi = calc.ConditionalMutualInformation(a, b, c);
    session->Release(r.value());
    double deviation = loss.value().log1p_rho - cmi;
    if (deviation <= out.eps_star) ++within;
    out.deviations.push_back(deviation);
  }
  out.dev = Summarize(out.deviations);
  out.frac_within = config.trials == 0
                        ? 0.0
                        : static_cast<double>(within) / config.trials;
  return out;
}

Result<EntropyDeviationResult> RunEntropyDeviation(
    const EntropyDeviationConfig& config) {
  AnalysisSession session{SessionOptions{}};
  return RunEntropyDeviation(&session, config);
}

Result<EntropyDeviationResult> RunEntropyDeviation(
    AnalysisSession* session, const EntropyDeviationConfig& config) {
  Rng rng(config.seed);
  EntropyDeviationResult out;
  out.thm52_bound =
      Theorem52EntropyDeviation(config.d, config.eta, config.delta);
  out.prop54_bound = Proposition54ExpectedEntropyGap(config.d);
  out.eta_qualifies =
      Theorem52Applies(config.d, config.d, config.eta, config.delta);
  const double log_d = std::log(static_cast<double>(config.d));
  uint32_t within = 0;
  for (uint32_t t = 0; t < config.trials; ++t) {
    RandomRelationSpec spec;
    spec.domain_sizes = {config.d, config.d};
    spec.num_tuples = config.eta;
    spec.attr_names = {"A", "B"};
    Result<Relation> r = SampleRandomRelation(spec, &rng);
    if (!r.ok()) return r.status();
    EntropyCalculator calc(session, &r.value());
    double h = calc.Entropy(AttrSet{0});
    session->Release(r.value());
    double gap = log_d - h;
    if (gap <= out.thm52_bound) ++within;
    out.gaps.push_back(gap);
  }
  out.gap = Summarize(out.gaps);
  out.frac_within = config.trials == 0
                        ? 0.0
                        : static_cast<double>(within) / config.trials;
  return out;
}

}  // namespace ajd
