#include "core/bounds.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ajd {

double RhoLowerBoundFromJ(double j) {
  AJD_CHECK(j >= 0.0);
  return std::expm1(j);
}

double JUpperBoundFromRho(double rho) {
  AJD_CHECK(rho >= 0.0);
  return std::log1p(rho);
}

double Proposition51ProductBound(const std::vector<double>& mvd_losses) {
  double sum = 0.0;
  for (double rho : mvd_losses) {
    AJD_CHECK(rho >= -1e-12);
    sum += std::log1p(std::max(rho, 0.0));
  }
  return sum;
}

namespace {

// Theorem 5.1 assumes w.l.o.g. dA >= dB; callers pass the raw domain sizes
// and we apply the swap here.
void SwapForWlog(uint64_t* d_a, uint64_t* d_b) {
  if (*d_a < *d_b) std::swap(*d_a, *d_b);
}

}  // namespace

double EpsilonStarMvd(uint64_t d_a, uint64_t d_b, uint64_t d_c, uint64_t n,
                      double delta) {
  AJD_CHECK(delta > 0.0 && delta < 1.0);
  AJD_CHECK(n > 0);
  SwapForWlog(&d_a, &d_b);
  const double d = static_cast<double>(std::max(d_a, d_c));
  const double da = static_cast<double>(d_a);
  const double nn = static_cast<double>(n);
  const double log_term =
      std::log(6.0 * nn * static_cast<double>(d_c) / delta);
  return 60.0 * std::sqrt(da * d * log_term * log_term * log_term / nn);
}

double Theorem51MinN(uint64_t d_a, uint64_t d_b, uint64_t d_c, double delta) {
  AJD_CHECK(delta > 0.0 && delta < 1.0);
  SwapForWlog(&d_a, &d_b);
  const double d = static_cast<double>(std::max(d_a, d_c));
  return 256.0 * static_cast<double>(d_a) * d * std::log(384.0 * d / delta);
}

bool Theorem51Applies(uint64_t d_a, uint64_t d_b, uint64_t d_c, uint64_t n,
                      double delta) {
  return static_cast<double>(n) >= Theorem51MinN(d_a, d_b, d_c, delta);
}

SchemaUpperBound Proposition53Bound(const std::vector<double>& cmis,
                                    const std::vector<double>& epsilons,
                                    double j) {
  AJD_CHECK(cmis.size() == epsilons.size());
  SchemaUpperBound out;
  double sum_eps = 0.0;
  for (size_t i = 0; i < cmis.size(); ++i) {
    out.sum_cmi_plus_eps += cmis[i] + epsilons[i];
    sum_eps += epsilons[i];
  }
  out.via_j = static_cast<double>(cmis.size()) * j + sum_eps;
  return out;
}

double Theorem52EntropyDeviation(uint64_t d_a, uint64_t eta, double delta) {
  AJD_CHECK(delta > 0.0 && delta < 1.0);
  AJD_CHECK(eta > 0);
  const double log_term = std::log(static_cast<double>(eta) / delta);
  return 20.0 * std::sqrt(static_cast<double>(d_a) * log_term * log_term *
                          log_term / static_cast<double>(eta));
}

double Theorem52MinEta(uint64_t d_a, double delta) {
  AJD_CHECK(delta > 0.0 && delta < 1.0);
  const double da = static_cast<double>(d_a);
  return 128.0 * da * std::log(128.0 * da / delta);
}

bool Theorem52Applies(uint64_t d_a, uint64_t d_b, uint64_t eta,
                      double delta) {
  if (d_a < d_b) std::swap(d_a, d_b);
  return static_cast<double>(eta) >= Theorem52MinEta(d_a, delta);
}

double Corollary521Deviation(uint64_t d_a, uint64_t eta, double delta) {
  AJD_CHECK(delta > 0.0 && delta < 1.0);
  const double log_term = std::log(2.0 * static_cast<double>(eta) / delta);
  return 40.0 * std::sqrt(static_cast<double>(d_a) * log_term * log_term *
                          log_term / static_cast<double>(eta));
}

double Proposition54ExpectedEntropyGap(uint64_t d_b) {
  return EntropySlackC(static_cast<double>(d_b));
}

double Proposition55TailBound(uint64_t d_a, uint64_t d_b, uint64_t eta,
                              double t) {
  AJD_CHECK(t >= 0.0);
  const double da = static_cast<double>(d_a);
  const double e = static_cast<double>(eta);
  // Eq. (59): r = max(0, t - 8 dA/eta - C(dB)).
  const double r = std::max(
      0.0, t - 8.0 * da / e - EntropySlackC(static_cast<double>(d_b)));
  // Eq. (58).
  const double first = 0.5 * std::exp(-e / 12.0);
  const double log_eta_over_e = std::log(e / std::exp(1.0));
  const double h = TLog1p(r / (2.0 * log_eta_over_e));
  const double second =
      0.5 * std::exp(-(e / (2.0 * da)) * h + 4.0 * std::log(e));
  return first + second;
}

}  // namespace ajd
