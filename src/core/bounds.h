// The paper's quantitative bounds, each tagged with its equation/claim:
//
//  * Lemma 4.1       — deterministic lower bound: J <= ln(1 + rho), hence
//                      rho >= e^J - 1.
//  * Proposition 5.1 — ln(1 + rho(R,S)) <= sum_i ln(1 + rho(R, phi_i)).
//  * Theorem 5.1     — high-probability per-MVD upper bound with deviation
//                      eps*(phi, N, delta) (Eq. 38) under condition (37).
//  * Proposition 5.3 — schema-level high-probability upper bound assembled
//                      from the per-MVD bounds (Eqs. 33-34).
//  * Theorem 5.2     — entropy confidence interval (Eq. 41) under (40).
//  * Corollary 5.2.1 — MI lower bound for the degenerate-C model (Eq. 42).
//  * Proposition 5.4 — expected-entropy gap bound C(d_B) (Eq. 46).
//  * Proposition 5.5 — concentration tail for H(A_S) (Eqs. 58-59).
//
// All information quantities in nats.
#ifndef AJD_CORE_BOUNDS_H_
#define AJD_CORE_BOUNDS_H_

#include <cstdint>
#include <vector>

namespace ajd {

// ---------------------------------------------------------------------------
// Section 4: deterministic lower bound.
// ---------------------------------------------------------------------------

/// Lemma 4.1 rearranged: any relation with J-measure `j` has
/// rho >= e^j - 1. Returns that lower bound on rho.
double RhoLowerBoundFromJ(double j);

/// Lemma 4.1 as stated: J <= ln(1 + rho). Returns the upper bound on J.
double JUpperBoundFromRho(double rho);

// ---------------------------------------------------------------------------
// Section 5: high-probability upper bound.
// ---------------------------------------------------------------------------

/// Proposition 5.1: ln(1 + rho(R,S)) <= sum_i ln(1 + rho(R, phi_i)).
/// Input: per-MVD losses rho(R, phi_i). Returns the right-hand side.
double Proposition51ProductBound(const std::vector<double>& mvd_losses);

/// Theorem 5.1, Eq. (38): the deviation term
///   eps*(phi, N, delta) = 60 sqrt( dA * d * ln^3(6 N dC / delta) / N ),
/// where (w.l.o.g.) dA >= dB is enforced by swapping, and
/// d = max(dA, dC).
double EpsilonStarMvd(uint64_t d_a, uint64_t d_b, uint64_t d_c, uint64_t n,
                      double delta);

/// Theorem 5.1, Eq. (37): the qualifying sample size
///   N >= 256 dA d ln(384 d / delta), d = max(dA, dC), after the
/// dA >= dB swap.
double Theorem51MinN(uint64_t d_a, uint64_t d_b, uint64_t d_c, double delta);

/// True iff (37) holds for these parameters.
bool Theorem51Applies(uint64_t d_a, uint64_t d_b, uint64_t d_c, uint64_t n,
                      double delta);

/// Proposition 5.3 assembled bound: given per-MVD conditional mutual
/// informations and deviations, returns
///   sum_i (cmi_i + eps_i)                      (Eq. 33)
/// and, given J, the weaker (m-1) J + sum_i eps_i (Eq. 34).
struct SchemaUpperBound {
  double sum_cmi_plus_eps = 0.0;  ///< Eq. (33) right-hand side.
  double via_j = 0.0;             ///< Eq. (34) right-hand side.
};
SchemaUpperBound Proposition53Bound(const std::vector<double>& cmis,
                                    const std::vector<double>& epsilons,
                                    double j);

// ---------------------------------------------------------------------------
// Section 5.2 / Appendix B: entropy confidence machinery (degenerate C).
// ---------------------------------------------------------------------------

/// Theorem 5.2, Eq. (41): with probability 1 - delta,
///   ln dA >= H(A_S) >= ln dA - 20 sqrt( dA ln^3(eta/delta) / eta ).
/// Returns the deviation 20 sqrt(...).
double Theorem52EntropyDeviation(uint64_t d_a, uint64_t eta, double delta);

/// Theorem 5.2, Eq. (40): qualifying eta >= 128 dA ln(128 dA / delta).
double Theorem52MinEta(uint64_t d_a, double delta);

/// True iff (40) holds.
bool Theorem52Applies(uint64_t d_a, uint64_t d_b, uint64_t eta, double delta);

/// Corollary 5.2.1, Eq. (42) deviation: 40 sqrt(dA ln^3(2 eta/delta)/eta).
/// With probability 1 - delta,
///   I(A_S; B_S) >= ln(1 + rho_bar) - deviation, rho_bar = dA dB/eta - 1.
double Corollary521Deviation(uint64_t d_a, uint64_t eta, double delta);

/// Proposition 5.4, Eq. (46): 0 <= ln dA - E[H(A_S)] <= C(dB), with
/// C(d) = 2 ln(d)/sqrt(d). Returns C(dB). Requires eta >= 60 dA.
double Proposition54ExpectedEntropyGap(uint64_t d_b);

/// Proposition 5.5, Eqs. (58)-(59): the two-term tail bound on
/// P[|H(A_S) - E H(A_S)| > t]. Returns the bound value.
double Proposition55TailBound(uint64_t d_a, uint64_t d_b, uint64_t eta,
                              double t);

}  // namespace ajd

#endif  // AJD_CORE_BOUNDS_H_
