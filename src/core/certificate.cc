#include "core/certificate.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "core/groupwise.h"
#include "engine/analysis_session.h"
#include "info/entropy.h"
#include "relation/ops.h"
#include "util/string_util.h"

namespace ajd {

Result<LossCertificate> CertifyLoss(const Relation& r, const JoinTree& tree,
                                    double delta) {
  AnalysisSession session;
  return CertifyLoss(&session, r, tree, delta);
}

Result<LossCertificate> CertifyLoss(AnalysisSession* session,
                                    const Relation& r, const JoinTree& tree,
                                    double delta) {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (r.NumRows() == 0) {
    return Status::FailedPrecondition("empty relation");
  }
  if (!tree.AllAttrs().IsSubsetOf(r.schema().AllAttrs())) {
    return Status::InvalidArgument(
        "join tree references attributes outside the relation");
  }
  if (tree.NumNodes() < 2) {
    return Status::InvalidArgument(
        "a certificate needs at least two bags (one MVD)");
  }

  LossCertificate cert;
  cert.delta = delta;
  cert.n = r.NumRows();
  const std::vector<Mvd> support = tree.SupportMvds();
  const double per_mvd_delta = delta / static_cast<double>(support.size());

  EntropyCalculator calc(session, &r);
  bool all_qualified = true;
  for (const Mvd& mvd : support) {
    MvdCertificate mc;
    mc.mvd = mvd;
    mc.cmi =
        calc.ConditionalMutualInformation(mvd.side_a, mvd.side_b, mvd.lhs);
    AttrSet a_branch = mvd.side_a.Minus(mvd.lhs);
    AttrSet b_branch = mvd.side_b.Minus(mvd.lhs);
    mc.d_a = a_branch.Empty() ? 1 : CountDistinct(r, a_branch);
    mc.d_b = b_branch.Empty() ? 1 : CountDistinct(r, b_branch);
    mc.d_c = mvd.lhs.Empty() ? 1 : CountDistinct(r, mvd.lhs);
    mc.epsilon =
        EpsilonStarMvd(mc.d_a, mc.d_b, mc.d_c, cert.n, per_mvd_delta);
    mc.qualifies_37 =
        Theorem51Applies(mc.d_a, mc.d_b, mc.d_c, cert.n, per_mvd_delta);
    // Lemma C.1 group condition via the groupwise analyzer (branches must
    // be disjoint for it; support MVDs satisfy this by RIP).
    Result<GroupwiseMvdReport> group = AnalyzeMvdGroupwise(
        session, r, a_branch.Empty() ? mvd.side_a : a_branch,
        b_branch.Empty() ? mvd.side_b : b_branch, mvd.lhs, per_mvd_delta);
    if (group.ok()) {
      mc.min_group = group.value().min_group;
      mc.qualifies_c1 = group.value().lemma_c1_holds;
    }
    all_qualified = all_qualified && mc.qualifies_37 && mc.qualifies_c1;
    cert.bound_nats += mc.cmi + mc.epsilon;
    cert.mvds.push_back(std::move(mc));
  }
  cert.bound_rho = std::expm1(cert.bound_nats);
  cert.fully_qualified = all_qualified;
  return cert;
}

std::string LossCertificate::ToString() const {
  std::string s = "Loss certificate (delta = " + FormatDouble(delta) +
                  ", N = " + std::to_string(n) + ")\n";
  for (const MvdCertificate& mc : mvds) {
    s += "  " + mc.mvd.ToString() + ": CMI = " + FormatDouble(mc.cmi) +
         ", eps = " + FormatDouble(mc.epsilon, 4) +
         (mc.qualifies_37 ? ", (37) ok" : ", (37) FAILS") +
         (mc.qualifies_c1 ? ", C.1 ok" : ", C.1 FAILS (min group " +
                                             std::to_string(mc.min_group) +
                                             ")") +
         "\n";
  }
  s += "  => w.p. >= " + FormatDouble(1.0 - delta) +
       ": ln(1+rho) <= " + FormatDouble(bound_nats) +
       "  (rho <= " + FormatDouble(bound_rho, 4) + ")\n";
  s += fully_qualified
           ? "  status: FULLY QUALIFIED (paper guarantee regime)\n"
           : "  status: ADVISORY (qualifying conditions not met at this "
             "scale;\n          see EXPERIMENTS.md for the Prop 5.1 "
             "composition caveat)\n";
  return s;
}

Result<uint64_t> PlanSampleSize(uint64_t d_a, uint64_t d_b, uint64_t d_c,
                                double delta, double target_eps,
                                uint64_t n_cap) {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (target_eps <= 0.0) {
    return Status::InvalidArgument("target_eps must be positive");
  }
  auto good = [&](uint64_t n) {
    return Theorem51Applies(d_a, d_b, d_c, n, delta) &&
           EpsilonStarMvd(d_a, d_b, d_c, n, delta) <= target_eps;
  };
  if (!good(n_cap)) {
    return Status::OutOfRange("no N <= n_cap achieves the target epsilon");
  }
  uint64_t lo = 1, hi = n_cap;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (good(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ajd
