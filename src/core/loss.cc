#include "core/loss.h"

#include <cmath>

#include "relation/row_hash.h"
#include "util/math.h"

namespace ajd {

Result<LossReport> ComputeLoss(const Relation& r, const JoinTree& tree) {
  if (r.NumRows() == 0) {
    return Status::FailedPrecondition("loss is undefined for |R| = 0");
  }
  if (!tree.AllAttrs().IsSubsetOf(r.schema().AllAttrs())) {
    return Status::InvalidArgument(
        "join tree references attributes outside the relation");
  }
  AcyclicJoinCount count = CountAcyclicJoin(r, tree);
  LossReport report;
  report.num_tuples = r.NumRows();
  report.join_size = count.approx;
  report.join_size_exact = count.exact;
  const double n = static_cast<double>(r.NumRows());
  report.rho = (count.approx - n) / n;
  // R is contained in R' whenever chi(T) covers R's attributes; guard
  // against tiny negative values from floating point accumulation.
  if (report.rho < 0.0 && report.rho > -1e-9) report.rho = 0.0;
  report.log1p_rho = std::log1p(report.rho);
  return report;
}

Result<LossReport> ComputeMvdLoss(const Relation& r, const Mvd& mvd) {
  if (r.NumRows() == 0) {
    return Status::FailedPrecondition("loss is undefined for |R| = 0");
  }
  if (!mvd.Universe().IsSubsetOf(r.schema().AllAttrs())) {
    return Status::InvalidArgument(
        "MVD references attributes outside the relation");
  }
  if (!mvd.WellFormed()) {
    return Status::InvalidArgument("malformed MVD: " + mvd.ToString());
  }
  // Natural-join key = all shared attributes of the two sides.
  AttrSet key_attrs = mvd.side_a.Intersect(mvd.side_b);
  std::vector<uint32_t> a_pos = mvd.side_a.ToIndices();
  std::vector<uint32_t> b_pos = mvd.side_b.ToIndices();
  std::vector<uint32_t> key_pos = key_attrs.ToIndices();

  // Count distinct side tuples grouped by the join key. A side tuple embeds
  // its key, so it suffices to dedupe side tuples and bump per-key counts;
  // the join size is then sum_k cntA(k) * cntB(k).
  uint64_t join_size = 0;
  if (key_pos.empty()) {
    // Cross product of the distinct side tuples.
    uint64_t a_count = 0;
    uint64_t b_count = 0;
    {
      TupleCounter side(a_pos.size(), r.NumRows());
      std::vector<uint32_t> t(a_pos.size());
      for (uint64_t i = 0; i < r.NumRows(); ++i) {
        for (size_t k = 0; k < a_pos.size(); ++k) t[k] = r.Row(i)[a_pos[k]];
        side.Add(t.data());
      }
      a_count = side.NumDistinct();
    }
    {
      TupleCounter side(b_pos.size(), r.NumRows());
      std::vector<uint32_t> t(b_pos.size());
      for (uint64_t i = 0; i < r.NumRows(); ++i) {
        for (size_t k = 0; k < b_pos.size(); ++k) t[k] = r.Row(i)[b_pos[k]];
        side.Add(t.data());
      }
      b_count = side.NumDistinct();
    }
    join_size = a_count * b_count;
  } else {
    auto group = [&r](const std::vector<uint32_t>& side_pos,
                      const std::vector<uint32_t>& key_pos_global,
                      TupleCounter* keys, std::vector<uint64_t>* counts) {
      TupleCounter side(side_pos.size(), r.NumRows());
      std::vector<uint32_t> side_t(side_pos.size());
      std::vector<uint32_t> key_t(key_pos_global.size());
      for (uint64_t i = 0; i < r.NumRows(); ++i) {
        const uint32_t* row = r.Row(i);
        for (size_t k = 0; k < side_pos.size(); ++k) {
          side_t[k] = row[side_pos[k]];
        }
        if (side.Find(side_t.data()) != UINT32_MAX) continue;
        side.Add(side_t.data());
        for (size_t k = 0; k < key_pos_global.size(); ++k) {
          key_t[k] = row[key_pos_global[k]];
        }
        uint32_t idx = keys->Add(key_t.data());
        if (idx >= counts->size()) counts->resize(idx + 1, 0);
        ++(*counts)[idx];
      }
    };
    TupleCounter a_keys(key_pos.size(), r.NumRows());
    std::vector<uint64_t> a_counts;
    group(a_pos, key_pos, &a_keys, &a_counts);
    TupleCounter b_keys(key_pos.size(), r.NumRows());
    std::vector<uint64_t> b_counts;
    group(b_pos, key_pos, &b_keys, &b_counts);
    for (uint32_t i = 0; i < a_keys.NumDistinct(); ++i) {
      uint32_t j = b_keys.Find(a_keys.TupleAt(i));
      if (j != UINT32_MAX) join_size += a_counts[i] * b_counts[j];
    }
  }

  LossReport report;
  report.num_tuples = r.NumRows();
  report.join_size = static_cast<double>(join_size);
  report.join_size_exact = join_size;
  const double n = static_cast<double>(r.NumRows());
  report.rho = (static_cast<double>(join_size) - n) / n;
  if (report.rho < 0.0 && report.rho > -1e-9) report.rho = 0.0;
  report.log1p_rho = std::log1p(report.rho);
  return report;
}

}  // namespace ajd
