// Per-group decomposition of an MVD C ->> A | B, mirroring the structure of
// the proof of Theorem 5.1 (Section 5.1 / Appendix C):
//
//  * per C-group statistics: group size N(c), per-group loss, per-group
//    mutual information I(A;B | C=c);
//  * the exact mixture identity I(A;B|C) = sum_c P(c) I(A;B|C=c) (Eq. 336);
//  * the log-sum-based inequality of Eq. (44):
//      ln(1 + rho(R, phi)) <= ln d_C - H(C) + sum_c P(c) ln(1 + rhobar(c)),
//    where rhobar(c) = d_A d_B / N(c) - 1 uses the FULL domain sizes (the
//    proof bounds per-group join sizes by d_A d_B);
//  * the Lemma C.1 qualifying check: every group large enough for the
//    Corollary 5.2.1 machinery, with the Serfling-based failure bound.
#ifndef AJD_CORE_GROUPWISE_H_
#define AJD_CORE_GROUPWISE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/attr_set.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

class AnalysisSession;  // engine/analysis_session.h

/// Statistics of one C-group.
struct GroupStat {
  std::vector<uint32_t> c_value;  ///< the group's C tuple
  uint64_t n = 0;                 ///< N(c): rows in the group
  uint64_t distinct_a = 0;        ///< |Pi_A(R_c)|
  uint64_t distinct_b = 0;        ///< |Pi_B(R_c)|
  double rho = 0.0;               ///< per-group loss (active counts)
  double mi = 0.0;                ///< I(A;B | C=c), nats
};

/// Groupwise analysis of a (disjoint) MVD C ->> A | B.
struct GroupwiseMvdReport {
  std::vector<GroupStat> groups;
  uint64_t n = 0;            ///< |R|
  uint64_t d_a = 1;          ///< full domain product of A (schema sizes)
  uint64_t d_b = 1;          ///< full domain product of B
  uint64_t d_c = 1;          ///< full domain product of C
  double h_c = 0.0;          ///< H(C), nats
  double cmi = 0.0;          ///< I(A;B|C), nats
  double mixture_cmi = 0.0;  ///< sum_c P(c) I(A;B|C=c); == cmi (Eq. 336)
  double log1p_rho = 0.0;    ///< ln(1 + rho(R, phi))
  double eq44_rhs = 0.0;     ///< the Eq. (44) right-hand side
  uint64_t min_group = 0;    ///< min_c N(c)
  double lemma_c1_threshold = 0.0;  ///< 128 d_A ln(128 d_A / delta)
  bool lemma_c1_holds = false;      ///< min_group >= threshold

  std::string ToString() const;
};

/// Computes the groupwise report for the MVD with determinant `c_attrs`
/// and branches `a_attrs`, `b_attrs` (pairwise disjoint, jointly covering
/// a subset of R's attributes). `delta` feeds the Lemma C.1 threshold.
/// Requires a non-empty relation and non-empty a/b branches; `c_attrs` may
/// be empty (single group).
Result<GroupwiseMvdReport> AnalyzeMvdGroupwise(const Relation& r,
                                               AttrSet a_attrs,
                                               AttrSet b_attrs,
                                               AttrSet c_attrs,
                                               double delta = 0.05);

/// Session-sharing variant: same report, but additionally evaluates the
/// Eq. (4) terms H(AC), H(BC), H(ABC), H(C) through the session's engine
/// for `r`, leaving them cached for any subsequent analysis over the same
/// relation (the engine-side CMI equals the mixture by Eq. 336).
Result<GroupwiseMvdReport> AnalyzeMvdGroupwise(AnalysisSession* session,
                                               const Relation& r,
                                               AttrSet a_attrs,
                                               AttrSet b_attrs,
                                               AttrSet c_attrs,
                                               double delta = 0.05);

}  // namespace ajd

#endif  // AJD_CORE_GROUPWISE_H_
