#include "core/worstcase.h"

#include <unordered_set>

#include "relation/row_hash.h"
#include "util/math.h"

namespace ajd {

Result<Instance> MakeDiagonalInstance(uint64_t n) {
  if (n == 0) return Status::InvalidArgument("n must be >= 1");
  if (n > UINT32_MAX) return Status::CapacityExceeded("n must fit in uint32");
  Result<Schema> schema = Schema::MakeUniform({"A", "B"}, n);
  if (!schema.ok()) return schema.status();
  RelationBuilder b(std::move(schema).value());
  b.Reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    b.AddRow({static_cast<uint32_t>(i), static_cast<uint32_t>(i)});
  }
  Relation r = std::move(b).Build(/*dedupe=*/false);
  Result<JoinTree> tree =
      JoinTree::Make({AttrSet{0}, AttrSet{1}}, {{0, 1}});
  if (!tree.ok()) return tree.status();
  return Instance{std::move(r), std::move(tree).value()};
}

Result<Instance> MakeLosslessMvdInstance(uint64_t d_a, uint64_t d_b,
                                         uint64_t d_c, uint64_t per_group_a,
                                         uint64_t per_group_b, Rng* rng) {
  if (d_a == 0 || d_b == 0 || d_c == 0) {
    return Status::InvalidArgument("domain sizes must be >= 1");
  }
  if (per_group_a == 0 || per_group_a > d_a || per_group_b == 0 ||
      per_group_b > d_b) {
    return Status::InvalidArgument(
        "per-group sizes must be in [1, domain size]");
  }
  Result<Schema> schema = Schema::Make(
      {{"A", d_a}, {"B", d_b}, {"C", d_c}});
  if (!schema.ok()) return schema.status();
  RelationBuilder b(std::move(schema).value());
  // For each c in [d_c], choose per_group_a values of A and per_group_b
  // values of B and emit their full cross product: within every C-group the
  // relation is a product, so C ->> A | B holds exactly.
  std::vector<uint32_t> a_vals;
  std::vector<uint32_t> b_vals;
  for (uint64_t c = 0; c < d_c; ++c) {
    a_vals.clear();
    b_vals.clear();
    std::unordered_set<uint64_t> seen;
    while (a_vals.size() < per_group_a) {
      uint64_t v = rng->UniformU64(d_a);
      if (seen.insert(v).second) a_vals.push_back(static_cast<uint32_t>(v));
    }
    seen.clear();
    while (b_vals.size() < per_group_b) {
      uint64_t v = rng->UniformU64(d_b);
      if (seen.insert(v).second) b_vals.push_back(static_cast<uint32_t>(v));
    }
    for (uint32_t a : a_vals) {
      for (uint32_t bb : b_vals) {
        b.AddRow({a, bb, static_cast<uint32_t>(c)});
      }
    }
  }
  Relation r = std::move(b).Build(/*dedupe=*/false);
  // Tree {A,C} - {B,C} (separator {C}).
  Result<JoinTree> tree =
      JoinTree::Make({AttrSet{0, 2}, AttrSet{1, 2}}, {{0, 1}});
  if (!tree.ok()) return tree.status();
  return Instance{std::move(r), std::move(tree).value()};
}

Result<Instance> MakeThm22DfsCounterexample() {
  Result<Schema> schema =
      Schema::Make({{"X", 2}, {"Y", 1}, {"Z", 2}, {"W", 2}});
  if (!schema.ok()) return schema.status();
  RelationBuilder b(std::move(schema).value());
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t z = 0; z < 2; ++z) b.AddRow({x, 0, z, x});
  }
  Relation r = std::move(b).Build(/*dedupe=*/false);
  Result<JoinTree> tree = JoinTree::Make(
      {AttrSet{0, 1}, AttrSet{1, 2}, AttrSet{0, 3}}, {{0, 1}, {0, 2}});
  if (!tree.ok()) return tree.status();
  return Instance{std::move(r), std::move(tree).value()};
}

Result<Instance> MakeProp51Counterexample() {
  Result<Schema> schema = Schema::Make({{"A", 4}, {"B", 2}, {"D", 4}});
  if (!schema.ok()) return schema.status();
  RelationBuilder b(std::move(schema).value());
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t d = 0; d < 3; ++d) b.AddRow({a, 0, d});
  }
  b.AddRow({3, 1, 3});
  Relation r = std::move(b).Build(/*dedupe=*/false);
  Result<JoinTree> tree =
      JoinTree::Path({AttrSet{0}, AttrSet{1}, AttrSet{2}});
  if (!tree.ok()) return tree.status();
  return Instance{std::move(r), std::move(tree).value()};
}

Result<Relation> AddNoiseTuples(const Relation& r, uint64_t extra, Rng* rng) {
  const uint32_t width = r.NumAttrs();
  if (width == 0) return Status::InvalidArgument("relation has no attributes");
  std::vector<uint64_t> dims;
  for (uint32_t a = 0; a < width; ++a) {
    dims.push_back(r.schema().attr(a).domain_size);
  }
  auto capacity = CheckedProduct(dims);
  if (!capacity || *capacity < r.NumRows() + extra) {
    return Status::OutOfRange(
        "domain too small to host the requested noise tuples");
  }
  TupleCounter existing(width, r.NumRows() + extra);
  for (uint64_t i = 0; i < r.NumRows(); ++i) existing.Add(r.Row(i));

  RelationBuilder b(r.schema());
  b.Reserve(r.NumRows() + extra);
  for (uint64_t i = 0; i < r.NumRows(); ++i) b.AddRowPtr(r.Row(i));
  std::vector<uint32_t> row(width);
  uint64_t added = 0;
  while (added < extra) {
    for (uint32_t a = 0; a < width; ++a) {
      row[a] = static_cast<uint32_t>(rng->UniformU64(dims[a]));
    }
    if (existing.Find(row.data()) != UINT32_MAX) continue;
    existing.Add(row.data());
    b.AddRow(row);
    ++added;
  }
  return std::move(b).Build(/*dedupe=*/false);
}

}  // namespace ajd
