// Decision procedures for the dependencies themselves:
//   R |= MVD (X ->> Y1 | Y2)     via the join-size criterion (Eq. 28 = 0),
//   R |= AJD(S)                  via Yannakakis counting (rho = 0),
//   and the Beeri et al. equivalence R |= AJD(S) <=> R satisfies every
//   support MVD, exposed so downstream code can verify either side.
#ifndef AJD_CORE_MVD_CHECK_H_
#define AJD_CORE_MVD_CHECK_H_

#include "jointree/join_tree.h"
#include "jointree/mvd.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// True iff R satisfies the MVD: |Pi_a(R) join Pi_b(R)| == |R|.
Result<bool> SatisfiesMvd(const Relation& r, const Mvd& mvd);

/// True iff R satisfies the acyclic join dependency of `tree`:
/// |join_i R[Omega_i]| == |R|. Requires chi(T) == attrs(R).
Result<bool> SatisfiesAjd(const Relation& r, const JoinTree& tree);

/// True iff R satisfies the functional dependency lhs -> rhs, i.e. no two
/// rows agree on lhs but differ on rhs. FDs are the 1-tuple-branch special
/// case of MVDs (Section 1). lhs may be empty (then rhs must be constant).
Result<bool> SatisfiesFd(const Relation& r, AttrSet lhs, AttrSet rhs);

/// The Beeri et al. check: evaluates every support MVD of `tree`
/// individually; returns true iff all hold. Equivalent to SatisfiesAjd by
/// [3, Thm 8.8] — the test suite asserts the equivalence on random inputs.
Result<bool> SatisfiesAllSupportMvds(const Relation& r,
                                     const JoinTree& tree);

}  // namespace ajd

#endif  // AJD_CORE_MVD_CHECK_H_
