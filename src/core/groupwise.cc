#include "core/groupwise.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "engine/analysis_session.h"
#include "relation/row_hash.h"
#include "util/math.h"
#include "util/string_util.h"

namespace ajd {

namespace {
Result<GroupwiseMvdReport> AnalyzeMvdGroupwiseImpl(const Relation& r,
                                                   AttrSet a_attrs,
                                                   AttrSet b_attrs,
                                                   AttrSet c_attrs,
                                                   double delta);
}  // namespace

Result<GroupwiseMvdReport> AnalyzeMvdGroupwise(const Relation& r,
                                               AttrSet a_attrs,
                                               AttrSet b_attrs,
                                               AttrSet c_attrs,
                                               double delta) {
  return AnalyzeMvdGroupwiseImpl(r, a_attrs, b_attrs, c_attrs, delta);
}

Result<GroupwiseMvdReport> AnalyzeMvdGroupwise(AnalysisSession* session,
                                               const Relation& r,
                                               AttrSet a_attrs,
                                               AttrSet b_attrs,
                                               AttrSet c_attrs,
                                               double delta) {
  Result<GroupwiseMvdReport> report =
      AnalyzeMvdGroupwiseImpl(r, a_attrs, b_attrs, c_attrs, delta);
  if (report.ok()) {
    // Warm the session's engine with the Eq. (4) terms of this MVD; the
    // value is the mixture CMI again (Eq. 336), so only the caching side
    // effect matters here.
    session->EngineFor(r).ConditionalMutualInformation(a_attrs, b_attrs,
                                                       c_attrs);
  }
  return report;
}

namespace {

Result<GroupwiseMvdReport> AnalyzeMvdGroupwiseImpl(const Relation& r,
                                                   AttrSet a_attrs,
                                                   AttrSet b_attrs,
                                                   AttrSet c_attrs,
                                                   double delta) {
  if (r.NumRows() == 0) {
    return Status::FailedPrecondition("empty relation");
  }
  if (a_attrs.Empty() || b_attrs.Empty()) {
    return Status::InvalidArgument("branches must be non-empty");
  }
  if (!a_attrs.DisjointFrom(b_attrs) || !a_attrs.DisjointFrom(c_attrs) ||
      !b_attrs.DisjointFrom(c_attrs)) {
    return Status::InvalidArgument("A, B, C must be pairwise disjoint");
  }
  AttrSet all = a_attrs.Union(b_attrs).Union(c_attrs);
  if (!all.IsSubsetOf(r.schema().AllAttrs())) {
    return Status::InvalidArgument("attributes outside the relation");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }

  GroupwiseMvdReport report;
  report.n = r.NumRows();
  auto dom = [&r](AttrSet s) -> uint64_t {
    auto p = r.schema().DomainProduct(s);
    return p.has_value() ? std::max<uint64_t>(*p, 1) : UINT64_MAX;
  };
  report.d_a = dom(a_attrs);
  report.d_b = dom(b_attrs);
  report.d_c = dom(c_attrs);

  // One pass: group rows by C; per group, count rows and collect distinct
  // A-side / B-side / AB-side tuples (the per-group sub-relation is small,
  // so nested TupleCounters per group are built lazily).
  std::vector<uint32_t> a_pos = a_attrs.ToIndices();
  std::vector<uint32_t> b_pos = b_attrs.ToIndices();
  std::vector<uint32_t> c_pos = c_attrs.ToIndices();

  TupleCounter c_groups(std::max<size_t>(c_pos.size(), 1), r.NumRows());
  struct GroupAccum {
    TupleCounter a{1};
    TupleCounter b{1};
    TupleCounter ab{1};
    uint64_t n = 0;
  };
  std::vector<GroupAccum> accums;

  std::vector<uint32_t> c_key(std::max<size_t>(c_pos.size(), 1), 0);
  std::vector<uint32_t> a_key(a_pos.size());
  std::vector<uint32_t> b_key(b_pos.size());
  std::vector<uint32_t> ab_key(a_pos.size() + b_pos.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    const uint32_t* row = r.Row(i);
    for (size_t k = 0; k < c_pos.size(); ++k) c_key[k] = row[c_pos[k]];
    uint32_t g = c_groups.Find(c_key.data());
    if (g == UINT32_MAX) {
      g = c_groups.Add(c_key.data());
      accums.emplace_back();
      accums.back().a = TupleCounter(a_pos.size());
      accums.back().b = TupleCounter(b_pos.size());
      accums.back().ab = TupleCounter(ab_key.size());
    } else {
      c_groups.AddWeighted(c_key.data(), 0);  // no-op; keep counts via n
    }
    GroupAccum& acc = accums[g];
    ++acc.n;
    for (size_t k = 0; k < a_pos.size(); ++k) a_key[k] = row[a_pos[k]];
    for (size_t k = 0; k < b_pos.size(); ++k) b_key[k] = row[b_pos[k]];
    std::copy(a_key.begin(), a_key.end(), ab_key.begin());
    std::copy(b_key.begin(), b_key.end(), ab_key.begin() + a_pos.size());
    acc.a.Add(a_key.data());
    acc.b.Add(b_key.data());
    acc.ab.Add(ab_key.data());
  }

  const double n = static_cast<double>(r.NumRows());
  double mvd_join_size = 0.0;
  double mixture = 0.0;
  double eq44_mixture = 0.0;
  report.min_group = UINT64_MAX;
  for (uint32_t g = 0; g < accums.size(); ++g) {
    const GroupAccum& acc = accums[g];
    GroupStat stat;
    const uint32_t* ct = c_groups.TupleAt(g);
    stat.c_value.assign(ct, ct + c_pos.size());
    stat.n = acc.n;
    stat.distinct_a = acc.a.NumDistinct();
    stat.distinct_b = acc.b.NumDistinct();
    double group_join = static_cast<double>(stat.distinct_a) *
                        static_cast<double>(stat.distinct_b);
    stat.rho = group_join / static_cast<double>(stat.n) - 1.0;
    if (stat.rho < 0.0 && stat.rho > -1e-12) stat.rho = 0.0;
    mvd_join_size += group_join;

    // I(A;B | C=c) over the group's empirical distribution:
    //   H_c(A) + H_c(B) - H_c(AB), with H from the per-group counters.
    auto entropy = [&](const TupleCounter& counter) {
      double sum_clogc = 0.0;
      for (uint32_t i = 0; i < counter.NumDistinct(); ++i) {
        sum_clogc += XLogX(static_cast<double>(counter.CountAt(i)));
      }
      double gn = static_cast<double>(stat.n);
      return std::log(gn) - sum_clogc / gn;
    };
    stat.mi = entropy(acc.a) + entropy(acc.b) - entropy(acc.ab);
    if (stat.mi < 0.0 && stat.mi > -1e-9) stat.mi = 0.0;

    double p_c = static_cast<double>(stat.n) / n;
    mixture += p_c * stat.mi;
    // Eq. (44) uses the domain-capped per-group loss d_A d_B / N(c) - 1.
    double rho_bar = static_cast<double>(report.d_a) *
                         static_cast<double>(report.d_b) /
                         static_cast<double>(stat.n) -
                     1.0;
    eq44_mixture += p_c * std::log1p(std::max(rho_bar, 0.0));
    report.h_c -= XLogX(p_c);
    report.min_group = std::min(report.min_group, stat.n);
    report.groups.push_back(std::move(stat));
  }

  report.mixture_cmi = mixture;
  report.cmi = mixture;  // Eq. (336): the mixture IS the conditional MI.
  report.log1p_rho = std::log(mvd_join_size / n);
  report.eq44_rhs = std::log(static_cast<double>(report.d_c)) -
                    report.h_c + eq44_mixture;
  report.lemma_c1_threshold =
      128.0 * static_cast<double>(report.d_a) *
      std::log(128.0 * static_cast<double>(report.d_a) / delta);
  report.lemma_c1_holds =
      static_cast<double>(report.min_group) >= report.lemma_c1_threshold;
  return report;
}

}  // namespace

std::string GroupwiseMvdReport::ToString() const {
  std::string s = "Groupwise MVD analysis: " + std::to_string(groups.size()) +
                  " groups, N = " + std::to_string(n) + "\n";
  s += "  I(A;B|C) = " + FormatDouble(cmi) +
       " nats (mixture identity, Eq. 336)\n";
  s += "  ln(1+rho(phi)) = " + FormatDouble(log1p_rho) +
       " <= Eq.(44) rhs = " + FormatDouble(eq44_rhs) + "\n";
  s += "  H(C) = " + FormatDouble(h_c) + ", ln d_C = " +
       FormatDouble(std::log(static_cast<double>(d_c))) + "\n";
  s += "  min group = " + std::to_string(min_group) +
       (lemma_c1_holds ? " (Lemma C.1 holds)" : " (below Lemma C.1)") + "\n";
  return s;
}

}  // namespace ajd
