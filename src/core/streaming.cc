#include "core/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "info/entropy.h"
#include "info/j_measure.h"
#include "io/csv.h"
#include "util/check.h"
#include "util/failpoint.h"

namespace ajd {

namespace {

std::string JsonDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string StreamingPoint::ToJsonLine() const {
  std::string out = "{\"epoch\":" + std::to_string(epoch) +
                    ",\"rows\":" + std::to_string(rows) +
                    ",\"batch_rows\":" + std::to_string(batch_rows) +
                    ",\"j\":" + JsonDouble(j) +
                    ",\"rho_lower_bound\":" + JsonDouble(rho_lower_bound);
  if (rho.has_value()) out += ",\"rho\":" + JsonDouble(*rho);
  out += std::string(",\"remined\":") + (remined ? "true" : "false");
  if (j_after_remine.has_value()) {
    out += ",\"j_after_remine\":" + JsonDouble(*j_after_remine);
  }
  out += "}";
  return out;
}

StreamingLossMonitor::StreamingLossMonitor(Relation* r, JoinTree tree,
                                           StreamingOptions options)
    : r_(r),
      tree_(std::move(tree)),
      options_(std::move(options)),
      session_(std::make_unique<AnalysisSession>(options_.session)),
      observed_rows_(r != nullptr ? r->NumRows() : 0) {
  AJD_CHECK(r_ != nullptr);
  AJD_CHECK_MSG(
      tree_.AllAttrs().IsSubsetOf(r_->schema().AllAttrs()),
      "monitored tree mentions attributes outside the relation's schema");
  j_at_mine_ = CurrentJ(tree_);
}

Result<StreamingLossMonitor> StreamingLossMonitor::Create(
    Relation* r, JoinTree tree, StreamingOptions options) {
  if (r == nullptr) {
    return Status::InvalidArgument(
        "StreamingLossMonitor: relation must be non-null");
  }
  if (!tree.AllAttrs().IsSubsetOf(r->schema().AllAttrs())) {
    return Status::InvalidArgument(
        "StreamingLossMonitor: monitored tree mentions attributes outside "
        "the relation's schema");
  }
  return StreamingLossMonitor(r, std::move(tree), std::move(options));
}

Result<StreamingLossMonitor> StreamingLossMonitor::WithMinedTree(
    Relation* r, StreamingOptions options) {
  if (r == nullptr) {
    return Status::InvalidArgument(
        "StreamingLossMonitor: relation must be non-null");
  }
  // Start from the trivial one-bag tree (J = 0 by construction), then mine
  // through the monitor's own session so the miner's terms pre-warm the
  // monitoring cache.
  Result<JoinTree> trivial =
      JoinTree::Path({r->schema().AllAttrs()});
  if (!trivial.ok()) return trivial.status();
  StreamingLossMonitor monitor(r, std::move(trivial).value(),
                               std::move(options));
  Result<MinerReport> mined =
      MineJoinTree(&monitor.session(), *r, monitor.options_.miner);
  if (!mined.ok()) return mined.status();
  monitor.tree_ = std::move(mined).value().tree;
  monitor.j_at_mine_ = monitor.CurrentJ(monitor.tree_);
  return monitor;
}

double StreamingLossMonitor::CurrentJ(const JoinTree& tree) {
  // The calculator shares the session's engine for r_, which catches up to
  // the relation's epoch on the first call — the incremental hot path.
  EntropyCalculator calc(session_.get(), r_);
  // Materialize every term's partition (bags, separators, chi(T)). A
  // count-only final pass would re-tally O(mass) rows per term per batch;
  // a materialized partition instead delta-extends at catch-up and its H
  // is one XLogX sweep over the stored blocks. The prewarm is a no-op on
  // every batch after the first (the partitions stay cached and hot).
  std::vector<AttrSet> terms;
  terms.reserve(2 * tree.NumNodes());
  for (AttrSet bag : tree.bags()) terms.push_back(bag);
  for (const auto& [u, v] : tree.Edges()) {
    terms.push_back(tree.bag(u).Intersect(tree.bag(v)));
  }
  terms.push_back(tree.AllAttrs());
  calc.engine().PrewarmSubsets(terms);
  return JMeasureDetailed(&calc, tree).j;
}

Result<StreamingPoint> StreamingLossMonitor::Observe() {
  const uint64_t rows_now = r_->NumRows();
  if (rows_now < observed_rows_) {
    // User-reachable (hand a monitor a relation that was moved-from or
    // restored), so an error, not a CHECK: the monitor's incremental
    // caches are only sound over append-only growth.
    return Status::FailedPrecondition(
        "monitored relation shrank; relations are append-only");
  }
  StreamingPoint point;
  point.epoch = r_->epoch();
  point.rows = rows_now;
  point.batch_rows = rows_now - observed_rows_;
  const uint32_t batches_since = batches_since_remine_ + 1;
  JoinTree remined_tree = tree_;
  std::optional<double> j_after_remine;
  // Every fallible step — entropy terms, exact loss, re-mining — runs
  // BEFORE any monitor state moves, and exceptions (allocation failure,
  // injected faults in the engine) convert to Status here: on error the
  // appended rows simply remain unobserved, and the next Observe folds
  // them into its batch instead of dropping a trajectory point.
  try {
    point.j = CurrentJ(tree_);
    point.rho_lower_bound = std::expm1(point.j);
    if (options_.compute_exact_loss) {
      Result<LossReport> loss = ComputeLoss(*r_, tree_);
      if (!loss.ok()) return loss.status();
      point.rho = loss.value().rho;
    }
    // The drift margin the trigger compares against: plain nats under
    // kAbsolute; a baseline-scaled fraction with an absolute floor under
    // kRelative (scale-free across trees of very different J magnitudes,
    // with the floor absorbing noise around a near-zero baseline).
    const double margin =
        options_.drift_policy == DriftPolicy::kRelative
            ? std::max(options_.drift_threshold * std::abs(j_at_mine_),
                       options_.drift_floor_nats)
            : options_.drift_threshold;
    const bool drifted = options_.drift_threshold > 0.0 &&
                         point.j - j_at_mine_ > margin;
    if (drifted && batches_since >= options_.min_batches_between_remines &&
        r_->NumAttrs() >= 2 && rows_now >= 1) {
      Result<MinerReport> mined =
          MineJoinTree(session_.get(), *r_, options_.miner);
      if (!mined.ok()) return mined.status();
      remined_tree = std::move(mined).value().tree;
      point.remined = true;
      j_after_remine = CurrentJ(remined_tree);
    }
  } catch (const std::exception& e) {
    return Status::CapacityExceeded(
        std::string("observe failed; rows remain unobserved: ") + e.what());
  }

  // Commit: everything fallible succeeded.
  observed_rows_ = rows_now;
  batches_since_remine_ = point.remined ? 0 : batches_since;
  if (point.remined) {
    tree_ = std::move(remined_tree);
    ++remines_;
    point.j_after_remine = j_after_remine;
    j_at_mine_ = *point.j_after_remine;
  }
  trajectory_.push_back(point);
  return point;
}

Result<StreamingPoint> StreamingLossMonitor::IngestWith(
    const std::function<Status()>& append) {
  const BatchFaultPolicy policy = options_.batch_fault_policy;
  const bool retry = policy == BatchFaultPolicy::kRetryThenFail ||
                     policy == BatchFaultPolicy::kRetryThenSkip;
  const bool skip = policy == BatchFaultPolicy::kRetryThenSkip ||
                    policy == BatchFaultPolicy::kSkip;
  const uint32_t attempts = 1 + (retry ? options_.max_batch_retries : 0);
  Status last = Status::OK();
  for (uint32_t a = 0; a < attempts; ++a) {
    last = append();
    if (last.ok()) return Observe();
  }
  if (!skip) return last;
  // Quarantine: the append rolled the relation back (all-or-nothing), so
  // dropping the batch leaves everything consistent; record it and keep
  // the stream alive with a no-op point.
  ++quarantined_batches_;
  last_quarantine_error_ = last;
  return Observe();
}

Result<StreamingPoint> StreamingLossMonitor::IngestBatch(
    const std::vector<std::vector<uint32_t>>& rows, bool dedupe) {
  return IngestWith([&] {
    if (AJD_FAILPOINT(failpoints::kStreamingIngestBatch)) {
      return Status::Internal("injected fault: streaming/ingest_batch");
    }
    return r_->AppendBatch(rows, dedupe);
  });
}

Result<StreamingPoint> StreamingLossMonitor::IngestStringBatch(
    const std::vector<std::vector<std::string>>& rows, bool dedupe) {
  return IngestWith([&] {
    if (AJD_FAILPOINT(failpoints::kStreamingIngestBatch)) {
      return Status::Internal("injected fault: streaming/ingest_batch");
    }
    return r_->AppendStringBatch(rows, dedupe);
  });
}

Status IngestCsvStream(StreamingLossMonitor* monitor, std::istream& in,
                       uint64_t batch_rows, bool has_header, char separator,
                       bool dedupe) {
  if (monitor == nullptr) {
    return Status::InvalidArgument("IngestCsvStream: monitor is null");
  }
  CsvOptions csv;
  csv.separator = separator;
  csv.has_header = has_header;
  return ReadCsvBatches(
      in, csv, batch_rows,
      [monitor, has_header,
       dedupe](const std::vector<std::string>& header,
               std::vector<std::vector<std::string>> batch) {
        Status ok = ValidateCsvHeader(
            header, monitor->relation().schema(), has_header);
        if (!ok.ok()) return ok;
        if (batch.empty()) return Status::OK();
        Result<StreamingPoint> point =
            monitor->IngestStringBatch(batch, dedupe);
        return point.ok() ? Status::OK() : point.status();
      });
}

Status IngestCsvFile(StreamingLossMonitor* monitor, const std::string& path,
                     uint64_t batch_rows, bool has_header, char separator,
                     bool dedupe) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return IngestCsvStream(monitor, in, batch_rows, has_header, separator,
                         dedupe);
}

}  // namespace ajd
