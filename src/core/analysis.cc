#include "core/analysis.h"

#include <algorithm>
#include <cmath>

#include "core/bounds.h"
#include "engine/analysis_session.h"
#include "info/entropy.h"
#include "info/factorized.h"
#include "info/j_measure.h"
#include "relation/ops.h"
#include "util/string_util.h"

namespace ajd {

Result<AjdAnalysis> AnalyzeAjd(const Relation& r, const JoinTree& tree,
                               double delta) {
  AnalysisSession session;
  return AnalyzeAjd(&session, r, tree, delta);
}

Result<AjdAnalysis> AnalyzeAjd(AnalysisSession* session, const Relation& r,
                               const JoinTree& tree, double delta) {
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  Result<LossReport> loss = ComputeLoss(r, tree);
  if (!loss.ok()) return loss.status();

  AjdAnalysis out;
  out.n = r.NumRows();
  out.loss = loss.value();
  out.delta = delta;

  // One calculator backed by the session's engine serves every entropy
  // term below — J, the chain rule, the sandwich, and the support CMIs all
  // walk overlapping sublattices of the same attribute lattice.
  EntropyCalculator calc(session, &r);
  out.j = JMeasure(&calc, tree);
  FactorizedDistribution pt(r, tree);
  out.kl = pt.KlFromEmpirical();
  out.chain_rule_j = JMeasureViaChainRule(&calc, tree);
  SandwichBounds sandwich = DfsSandwich(&calc, tree);
  out.max_dfs_cmi = sandwich.max_cmi;
  out.sum_dfs_cmi = sandwich.sum_cmi;

  out.rho_lower_bound = RhoLowerBoundFromJ(out.j);
  std::vector<double> losses;
  std::vector<double> cmis;
  std::vector<double> epsilons;
  bool all_apply = true;
  for (const Mvd& mvd : tree.SupportMvds()) {
    MvdStat stat;
    stat.mvd = mvd;
    stat.cmi = calc.ConditionalMutualInformation(mvd.side_a, mvd.side_b,
                                                 mvd.lhs);
    Result<LossReport> mvd_loss = ComputeMvdLoss(r, mvd);
    if (!mvd_loss.ok()) return mvd_loss.status();
    stat.rho = mvd_loss.value().rho;
    stat.log1p_rho = mvd_loss.value().log1p_rho;
    AttrSet a_branch = mvd.side_a.Minus(mvd.lhs);
    AttrSet b_branch = mvd.side_b.Minus(mvd.lhs);
    stat.d_a = a_branch.Empty() ? 1 : CountDistinct(r, a_branch);
    stat.d_b = b_branch.Empty() ? 1 : CountDistinct(r, b_branch);
    stat.d_c = mvd.lhs.Empty() ? 1 : CountDistinct(r, mvd.lhs);
    stat.epsilon_star =
        EpsilonStarMvd(stat.d_a, stat.d_b, stat.d_c, out.n, delta);
    stat.thm51_applies =
        Theorem51Applies(stat.d_a, stat.d_b, stat.d_c, out.n, delta);
    all_apply = all_apply && stat.thm51_applies;
    losses.push_back(stat.rho);
    cmis.push_back(stat.cmi);
    epsilons.push_back(stat.epsilon_star);
    out.max_support_cmi = std::max(out.max_support_cmi, stat.cmi);
    out.support.push_back(std::move(stat));
  }
  out.prop51_bound = Proposition51ProductBound(losses);
  SchemaUpperBound prop53 = Proposition53Bound(cmis, epsilons, out.j);
  out.prop53_upper = prop53.sum_cmi_plus_eps;
  out.prop53_valid = all_apply && !out.support.empty();
  out.lossless = out.loss.rho == 0.0;
  return out;
}

std::string AjdAnalysis::ToString() const {
  std::string s;
  s += "AJD loss analysis\n";
  s += "  N = " + std::to_string(n) +
       ", |R'| = " + FormatDouble(loss.join_size) +
       ", rho = " + FormatDouble(loss.rho) +
       ", ln(1+rho) = " + FormatDouble(loss.log1p_rho) + " nats\n";
  s += "  J-measure    = " + FormatDouble(j) + " nats (Eq. 7)\n";
  s += "  D(P || P^T)  = " + FormatDouble(kl) + " nats (Theorem 3.2: == J)\n";
  s += "  chain-rule J = " + FormatDouble(chain_rule_j) + " nats\n";
  s += "  Thm 2.2 sandwich: max support CMI = " +
       FormatDouble(max_support_cmi) +
       " <= J <= sum DFS CMI = " + FormatDouble(sum_dfs_cmi) + "\n";
  s += "  Lemma 4.1: rho >= e^J - 1 = " + FormatDouble(rho_lower_bound) +
       "\n";
  s += "  Prop 5.1:  ln(1+rho) <= " + FormatDouble(prop51_bound) + "\n";
  s += "  support (" + std::to_string(support.size()) + " MVDs):\n";
  for (const MvdStat& m : support) {
    s += "    " + m.mvd.ToString() + ": CMI = " + FormatDouble(m.cmi) +
         ", rho = " + FormatDouble(m.rho) +
         ", eps* = " + FormatDouble(m.epsilon_star) +
         (m.thm51_applies ? " (Thm 5.1 applies)" : " (Thm 5.1 N too small)") +
         "\n";
  }
  if (prop53_valid) {
    s += "  Prop 5.3 (delta = " + FormatDouble(delta) +
         "): ln(1+rho) <= " + FormatDouble(prop53_upper) + " w.h.p.\n";
  }
  s += lossless ? "  => R |= AJD(S): the decomposition is lossless\n"
                : "  => lossy decomposition\n";
  return s;
}

}  // namespace ajd
