// StreamingLossMonitor: tracks how close a growing relation stays to an
// acyclic join dependency, batch by batch.
//
// The paper's headline quantities (the loss rho, its J-measure
// characterization, Lemma 4.1's e^J - 1 lower bound) are defined over a
// frozen relation; this driver serves the setting where the data ARRIVES —
// the "mining approximate acyclic schemes from evolving tables" workload
// the ROADMAP calls streaming monitoring. Every ingested batch appends to
// the monitored relation (one epoch bump, relation/relation.h), and the
// J-measure of the monitored join tree is re-evaluated through one
// AnalysisSession whose engine catches up INCREMENTALLY: dense columns
// extend over the appended rows, cached partitions (the tree's bag and
// separator terms — the same sets every batch) delta-extend instead of
// rebuilding, so the per-batch cost is O(delta), not O(N).
//
// Drift policy: the tree being monitored goes stale as the distribution
// shifts. When J(T) rises sufficiently above its value at the last
// (re)mine — by an absolute nat margin (DriftPolicy::kAbsolute, default)
// or by a fraction of the baseline with an absolute floor
// (DriftPolicy::kRelative, the scale-free choice when trees of very
// different J magnitudes are monitored with one config) — the monitor
// re-mines a tree on the data so far, through the same session, so the
// miner's thousands of entropy terms reuse everything the monitoring
// already cached, and continues with it.
//
// Threading: the monitor's own state (trajectory, tree, baselines) is
// single-writer — call Ingest*/Observe from one thread at a time. The
// underlying session and engine, however, are safe to QUERY from other
// threads concurrently with ingestion: readers pin the epoch they start
// with and keep computing over that prefix while a batch lands
// (engine/entropy_engine.h). There is no quiescence requirement anymore.
#ifndef AJD_CORE_STREAMING_H_
#define AJD_CORE_STREAMING_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/loss.h"
#include "discovery/miner.h"
#include "engine/analysis_session.h"
#include "jointree/join_tree.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// How `drift_threshold` is interpreted when deciding to re-mine.
enum class DriftPolicy : uint8_t {
  /// Trigger when J - baseline > drift_threshold nats. Simple and
  /// predictable; the right default when the monitored J's magnitude is
  /// roughly known.
  kAbsolute = 0,
  /// Trigger when J - baseline > max(drift_threshold * |baseline|,
  /// drift_floor_nats). Scale-free: a 10% drift means the same thing for a
  /// tree at J = 0.05 as for one at J = 5.0, while the floor keeps noise
  /// from re-mining a near-perfect tree (|baseline| ~ 0) every batch.
  kRelative = 1,
};

/// What an Ingest* call does with a batch whose append FAILS (allocation
/// failure, injected fault — the relation itself rolls back either way,
/// see Relation::AppendBatch's all-or-nothing contract).
enum class BatchFaultPolicy : uint8_t {
  /// Return the error to the caller immediately. The monitor stays
  /// consistent and the batch can be re-submitted (the default).
  kFail = 0,
  /// Retry the append up to max_batch_retries times, then fail.
  kRetryThenFail = 1,
  /// Retry up to max_batch_retries times, then QUARANTINE: drop the batch,
  /// record it (NumQuarantinedBatches / LastQuarantineError), and keep the
  /// stream going with a no-op trajectory point.
  kRetryThenSkip = 2,
  /// Quarantine immediately, no retries.
  kSkip = 3,
};

/// Tuning for a StreamingLossMonitor.
struct StreamingOptions {
  /// Re-mine when J(T) exceeds its last-mined value by this margin —
  /// absolute nats under DriftPolicy::kAbsolute, a fraction of the
  /// baseline under kRelative; <= 0 disables re-mining (pure fixed-tree
  /// monitoring).
  double drift_threshold = 0.1;
  /// How drift_threshold is interpreted (see DriftPolicy).
  DriftPolicy drift_policy = DriftPolicy::kAbsolute;
  /// Minimum absolute drift (nats) that can trigger a kRelative re-mine:
  /// the floor under drift_threshold * |baseline| when the baseline is
  /// near zero. Ignored under kAbsolute.
  double drift_floor_nats = 0.01;
  /// Minimum batches between re-mines. The default 1 allows a re-mine on
  /// the very next drifted batch (immediate re-tracking of a sustained
  /// shift); raise it to amortize the miner against drift spikes.
  uint32_t min_batches_between_remines = 1;
  /// Also compute the exact loss rho (Yannakakis counting) per batch.
  /// O(N) per batch with no incremental reuse — the J-trajectory is the
  /// cheap default; flip this on when the exact join-size blowup matters.
  bool compute_exact_loss = false;
  /// Poison-batch handling for IngestBatch/IngestStringBatch (and the CSV
  /// ingest built on them): one bad batch need not kill a stream.
  BatchFaultPolicy batch_fault_policy = BatchFaultPolicy::kFail;
  /// Append retries before the policy's terminal action (kRetryThen*).
  uint32_t max_batch_retries = 2;
  /// Miner configuration for WithMinedTree and every re-mine.
  MinerOptions miner;
  /// Session tuning (cache budget, threads, shared pool/arbiter).
  SessionOptions session;
};

/// One point of the loss trajectory: the monitored quantities right after
/// a batch landed.
struct StreamingPoint {
  uint64_t epoch = 0;       ///< relation epoch after the batch.
  uint64_t rows = 0;        ///< |R| after the batch.
  uint64_t batch_rows = 0;  ///< rows this batch actually appended.
  double j = 0.0;           ///< J(T) of the monitored tree, nats.
  double rho_lower_bound = 0.0;  ///< Lemma 4.1: e^J - 1 <= rho.
  /// Exact rho (when compute_exact_loss; otherwise unset).
  std::optional<double> rho;
  bool remined = false;     ///< the tree was re-mined after this batch.
  /// J of the NEW tree when remined (the next baseline).
  std::optional<double> j_after_remine;

  /// One JSON object per point, for trajectory tooling:
  /// {"epoch":..,"rows":..,"j":..,...}.
  std::string ToJsonLine() const;
};

/// Monitors one caller-owned relation. The relation must outlive the
/// monitor and must only grow through it (or at least: between Ingest
/// calls, not during them).
/// Failure semantics: every Ingest*/Observe call returns Status through
/// Result — an error never aborts the process and never leaves the monitor
/// half-updated (trajectory, baselines, and observed-row watermark only
/// move after every fallible step succeeded; rows appended before a failed
/// Observe simply stay unobserved and fold into the next point). The
/// constructor CHECK-aborts on invalid arguments (programmer contract);
/// user input should flow through Create/WithMinedTree, which validate and
/// return InvalidArgument instead.
class StreamingLossMonitor {
 public:
  /// Monitors `r` against a fixed starting tree. The tree's attributes
  /// must be covered by r's schema — CHECKED (aborts on violation); use
  /// Create() when the tree or relation comes from user input.
  StreamingLossMonitor(Relation* r, JoinTree tree,
                       StreamingOptions options = {});

  /// Validating form of the constructor: InvalidArgument on a null
  /// relation or a tree mentioning attributes outside its schema.
  static Result<StreamingLossMonitor> Create(Relation* r, JoinTree tree,
                                             StreamingOptions options = {});

  /// Mines the starting tree from the relation's current contents (which
  /// must satisfy the miner's preconditions: >= 2 attributes, >= 1 row).
  /// InvalidArgument on a null relation.
  static Result<StreamingLossMonitor> WithMinedTree(
      Relation* r, StreamingOptions options = {});

  StreamingLossMonitor(StreamingLossMonitor&&) = default;
  StreamingLossMonitor& operator=(StreamingLossMonitor&&) = delete;

  /// Appends a batch of code rows and records a trajectory point. A batch
  /// whose append fails is handled per options().batch_fault_policy:
  /// failed, retried, or quarantined (the stream continues with a no-op
  /// point). The relation is never left half-appended either way.
  Result<StreamingPoint> IngestBatch(
      const std::vector<std::vector<uint32_t>>& rows, bool dedupe = false);

  /// Appends a batch of string rows (dictionary-interned) and records a
  /// trajectory point. Same fault policy as IngestBatch.
  Result<StreamingPoint> IngestStringBatch(
      const std::vector<std::vector<std::string>>& rows,
      bool dedupe = false);

  /// Records a trajectory point for rows the CALLER already appended to
  /// the relation (e.g. io/csv.h's AppendCsvBatches feeding AppendBatch
  /// directly). A no-op point results if nothing was appended.
  /// FailedPrecondition if the relation shrank (relations are append-only);
  /// on any error no monitor state moves — the rows stay unobserved and
  /// fold into the next successful Observe.
  Result<StreamingPoint> Observe();

  /// Batches dropped by a kSkip/kRetryThenSkip fault policy so far.
  uint64_t NumQuarantinedBatches() const { return quarantined_batches_; }

  /// The error that quarantined the most recent dropped batch (OK when
  /// nothing was ever quarantined).
  const Status& LastQuarantineError() const { return last_quarantine_error_; }

  /// The tree currently monitored (the latest re-mine's output, or the
  /// constructor's tree).
  const JoinTree& tree() const { return tree_; }

  /// Every recorded point, oldest first.
  const std::vector<StreamingPoint>& trajectory() const {
    return trajectory_;
  }

  /// Number of drift-triggered re-mines so far.
  uint32_t NumRemines() const { return remines_; }

  /// J(T) at the last (re)mine — the drift baseline.
  double BaselineJ() const { return j_at_mine_; }

  /// The session serving every entropy term (exposed so callers can run
  /// further analyses — AnalyzeAjd, CertifyLoss — against the same warm
  /// caches).
  AnalysisSession& session() { return *session_; }

  /// The monitored relation.
  const Relation& relation() const { return *r_; }

 private:
  /// J(`tree`) via the session's (epoch-caught-up) engine.
  double CurrentJ(const JoinTree& tree);

  /// Shared Ingest* body: runs `append` under the batch fault policy
  /// (retry/quarantine), then Observes.
  Result<StreamingPoint> IngestWith(const std::function<Status()>& append);

  Relation* r_;
  JoinTree tree_;
  StreamingOptions options_;
  /// Owned behind a pointer so the monitor stays movable (AnalysisSession
  /// holds a mutex).
  std::unique_ptr<AnalysisSession> session_;
  std::vector<StreamingPoint> trajectory_;
  double j_at_mine_ = 0.0;
  uint32_t remines_ = 0;
  uint32_t batches_since_remine_ = 0;
  uint64_t observed_rows_ = 0;  ///< rows covered by the last point.
  uint64_t quarantined_batches_ = 0;
  Status last_quarantine_error_;
};

/// Ingests a CSV stream into the monitor's relation in `batch_rows`-sized
/// chunks (io/csv.h ReadCsvBatches -> Relation::AppendStringBatch),
/// recording one trajectory point per chunk. The CSV header must match
/// the relation's schema (width always; names too when has_header).
/// `dedupe` drops rows already present (set semantics), matching
/// AppendCsvBatches' CsvOptions::dedupe.
Status IngestCsvStream(StreamingLossMonitor* monitor, std::istream& in,
                       uint64_t batch_rows, bool has_header = true,
                       char separator = ',', bool dedupe = false);

/// File form of IngestCsvStream.
Status IngestCsvFile(StreamingLossMonitor* monitor, const std::string& path,
                     uint64_t batch_rows, bool has_header = true,
                     char separator = ',', bool dedupe = false);

}  // namespace ajd

#endif  // AJD_CORE_STREAMING_H_
