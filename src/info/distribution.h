// SparseDistribution: a discrete probability distribution over fixed-arity
// uint32 tuples, stored sparsely (support only). This is the concrete
// representation of the paper's empirical distributions and their marginals
// (Section 2.2).
#ifndef AJD_INFO_DISTRIBUTION_H_
#define AJD_INFO_DISTRIBUTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relation/attr_set.h"
#include "relation/relation.h"
#include "relation/row_hash.h"

namespace ajd {

/// A sparse distribution: tuple -> probability mass.
class SparseDistribution {
 public:
  /// Creates an empty distribution over tuples of `arity` words.
  /// Arity 0 is allowed and represents the distribution of an empty
  /// variable set (a single point of mass once Add'ed).
  explicit SparseDistribution(size_t arity);

  /// The empirical marginal distribution of `r` over `attrs`:
  /// P(y) = |{rows i : row_i[attrs] = y}| / N. `attrs` may be empty (point
  /// mass). Multiset relations are weighted by multiplicity.
  static SparseDistribution Empirical(const Relation& r, AttrSet attrs);

  /// Accumulates `prob` mass on `tuple` (arity words; ignored for arity 0).
  void Add(const uint32_t* tuple, double prob);

  /// Tuple arity.
  size_t arity() const { return arity_; }

  /// Number of support points.
  size_t SupportSize() const { return probs_.size(); }

  /// The i-th support tuple (arity words; nullptr semantics for arity 0).
  const uint32_t* TupleAt(uint32_t i) const {
    return arity_ == 0 ? nullptr : keys_.TupleAt(i);
  }

  /// The probability of the i-th support point.
  double ProbAt(uint32_t i) const { return probs_[i]; }

  /// The probability of `tuple` (0 when outside the support).
  double Prob(const uint32_t* tuple) const;

  /// Total mass (1.0 for a proper distribution, up to rounding).
  double TotalMass() const;

  /// Shannon entropy in nats: -sum p ln p over the support.
  double Entropy() const;

  /// Marginal over `local_positions` (positions within the tuple). The
  /// positions must be strictly increasing and < arity().
  SparseDistribution Marginal(
      const std::vector<uint32_t>& local_positions) const;

 private:
  size_t arity_;
  TupleCounter keys_;          // tuple -> dense index (counts unused)
  std::vector<double> probs_;  // probability per dense index
  double mass0_ = 0.0;         // mass for arity 0
};

/// KL divergence D(p || q) in nats. Requires both to have the same arity.
/// Returns +infinity if p puts mass outside q's support.
double KlDivergence(const SparseDistribution& p, const SparseDistribution& q);

/// Total variation distance (1/2) sum |p - q| over the union of supports.
double TotalVariation(const SparseDistribution& p,
                      const SparseDistribution& q);

}  // namespace ajd

#endif  // AJD_INFO_DISTRIBUTION_H_
