#include "info/j_measure.h"

#include <algorithm>

namespace ajd {

double JMeasure(const Relation& r, const JoinTree& tree) {
  EntropyCalculator calc(&r);
  return JMeasure(&calc, tree);
}

double JMeasure(EntropyCalculator* calc, const JoinTree& tree) {
  double j = 0.0;
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    j += calc->Entropy(tree.bag(v));
  }
  for (const auto& [u, v] : tree.Edges()) {
    j -= calc->Entropy(tree.bag(u).Intersect(tree.bag(v)));
  }
  j -= calc->Entropy(tree.AllAttrs());
  // J >= 0 always (Theorem 3.2: it is a KL divergence); clamp fp noise.
  return j < 0.0 && j > -1e-9 ? 0.0 : j;
}

JMeasureBreakdown JMeasureDetailed(const Relation& r, const JoinTree& tree) {
  EntropyCalculator calc(&r);
  return JMeasureDetailed(&calc, tree);
}

JMeasureBreakdown JMeasureDetailed(EntropyCalculator* calc,
                                   const JoinTree& tree) {
  JMeasureBreakdown out;
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    out.sum_bag_entropies += calc->Entropy(tree.bag(v));
  }
  for (const auto& [u, v] : tree.Edges()) {
    out.sum_sep_entropies +=
        calc->Entropy(tree.bag(u).Intersect(tree.bag(v)));
  }
  out.total_entropy = calc->Entropy(tree.AllAttrs());
  out.j = out.sum_bag_entropies - out.sum_sep_entropies - out.total_entropy;
  if (out.j < 0.0 && out.j > -1e-9) out.j = 0.0;
  return out;
}

SandwichBounds DfsSandwich(const Relation& r, const JoinTree& tree,
                           uint32_t root) {
  EntropyCalculator calc(&r);
  return DfsSandwich(&calc, tree, root);
}

SandwichBounds DfsSandwich(EntropyCalculator* calc, const JoinTree& tree,
                           uint32_t root) {
  DfsDecomposition dec = tree.Decompose(root);
  SandwichBounds out;
  for (const DfsStep& s : dec.steps) {
    double cmi =
        calc->ConditionalMutualInformation(s.prefix, s.suffix, s.delta);
    out.per_step_cmi.push_back(cmi);
    out.max_cmi = std::max(out.max_cmi, cmi);
    out.sum_cmi += cmi;
  }
  return out;
}

double JMeasureViaChainRule(const Relation& r, const JoinTree& tree,
                            uint32_t root) {
  EntropyCalculator calc(&r);
  return JMeasureViaChainRule(&calc, tree, root);
}

double JMeasureViaChainRule(EntropyCalculator* calc, const JoinTree& tree,
                            uint32_t root) {
  DfsDecomposition dec = tree.Decompose(root);
  double sum = 0.0;
  for (const DfsStep& s : dec.steps) {
    sum += calc->ConditionalMutualInformation(s.prefix, s.bag, s.delta);
  }
  return sum;
}

std::vector<double> SupportCmis(const Relation& r, const JoinTree& tree) {
  EntropyCalculator calc(&r);
  return SupportCmis(&calc, tree);
}

std::vector<double> SupportCmis(EntropyCalculator* calc,
                                const JoinTree& tree) {
  std::vector<double> out;
  for (const Mvd& mvd : tree.SupportMvds()) {
    out.push_back(
        calc->ConditionalMutualInformation(mvd.side_a, mvd.side_b, mvd.lhs));
  }
  return out;
}

}  // namespace ajd
