// The J-measure of Lee (Eq. 7) and its companions:
//
//   J(T) = sum_v H(chi(v)) - sum_(u,v) H(chi(u) cap chi(v)) - H(chi(T)),
//
// computed over the empirical distribution of a relation; the Theorem 2.2
// sandwich (max/sum of the DFS-order conditional mutual informations); the
// exact chain-rule decomposition J = sum_i I(Omega_{1:i-1}; Omega_i | Delta_i);
// and the per-edge support CMIs. All in nats.
#ifndef AJD_INFO_J_MEASURE_H_
#define AJD_INFO_J_MEASURE_H_

#include <cstdint>
#include <vector>

#include "info/entropy.h"
#include "jointree/join_tree.h"
#include "relation/relation.h"

namespace ajd {

/// J(T) per Eq. (7), in nats. Zero iff R |= AJD(S) (Theorem 2.1).
double JMeasure(const Relation& r, const JoinTree& tree);

/// J(T) evaluated through a shared entropy cache (for batch workloads).
double JMeasure(EntropyCalculator* calc, const JoinTree& tree);

/// The three components of Eq. (7).
struct JMeasureBreakdown {
  double sum_bag_entropies = 0.0;   ///< sum_v H(chi(v))
  double sum_sep_entropies = 0.0;   ///< sum_edges H(chi(u) cap chi(v))
  double total_entropy = 0.0;       ///< H(chi(T))
  double j = 0.0;                   ///< the J-measure
};

/// J(T) with its breakdown.
JMeasureBreakdown JMeasureDetailed(const Relation& r, const JoinTree& tree);

/// J(T) with its breakdown, through a shared entropy cache.
JMeasureBreakdown JMeasureDetailed(EntropyCalculator* calc,
                                   const JoinTree& tree);

/// Theorem 2.2 quantities for the DFS enumeration rooted at `root`:
/// per-step CMIs I(Omega_{1:i-1}; Omega_{i:m} | Delta_i), their max and sum.
/// The theorem asserts max <= J <= sum.
struct SandwichBounds {
  std::vector<double> per_step_cmi;
  double max_cmi = 0.0;
  double sum_cmi = 0.0;
};

/// Computes the Theorem 2.2 sandwich for `tree` rooted at `root`.
SandwichBounds DfsSandwich(const Relation& r, const JoinTree& tree,
                           uint32_t root = 0);

/// The sandwich through a shared entropy cache.
SandwichBounds DfsSandwich(EntropyCalculator* calc, const JoinTree& tree,
                           uint32_t root = 0);

/// The exact chain-rule identity: J(T) = sum_{i=2}^m
/// I(Omega_{1:i-1}; Omega_i | Delta_i) for any DFS enumeration. Returns the
/// sum; equals JMeasure up to floating point. (This is the telescoping
/// identity behind Theorem 2.2; see DESIGN.md.)
double JMeasureViaChainRule(const Relation& r, const JoinTree& tree,
                            uint32_t root = 0);

/// The chain-rule identity through a shared entropy cache.
double JMeasureViaChainRule(EntropyCalculator* calc, const JoinTree& tree,
                            uint32_t root = 0);

/// Per-edge support CMIs: for each support MVD chi(u) cap chi(v) ->>
/// chi(Tu) | chi(Tv), the value I(chi(Tu); chi(Tv) | chi(u) cap chi(v)).
/// Order matches tree.SupportMvds().
std::vector<double> SupportCmis(const Relation& r, const JoinTree& tree);

/// Support CMIs through a shared entropy cache.
std::vector<double> SupportCmis(EntropyCalculator* calc,
                                const JoinTree& tree);

}  // namespace ajd

#endif  // AJD_INFO_J_MEASURE_H_
