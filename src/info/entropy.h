// Entropies and (conditional) mutual information over the empirical
// distribution of a relation (Section 2.2, Eqs. 2-4). All values in nats.
//
// EntropyCalculator keeps its historical API but delegates to the shared
// columnar EntropyEngine (engine/entropy_engine.h): entropies are answered
// from an AttrSet-keyed cache backed by partition refinement instead of
// re-scanning the row-major data per call. Construct it with an
// AnalysisSession to share one engine (and every cached term) across the
// J-measure, the Theorem 2.2 sandwiches, and the schema miner.
#ifndef AJD_INFO_ENTROPY_H_
#define AJD_INFO_ENTROPY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/entropy_engine.h"
#include "relation/attr_set.h"
#include "relation/relation.h"

namespace ajd {

class AnalysisSession;  // engine/analysis_session.h

/// H(attrs) over the empirical distribution of r, in nats. H(empty) = 0.
/// For a duplicate-free relation, H(all attrs) = ln N.
///
/// This is the legacy single-shot path: it re-scans the relation on every
/// call. Use EntropyCalculator (or an AnalysisSession-backed engine) for
/// anything that evaluates more than one term.
double EntropyOf(const Relation& r, AttrSet attrs);

/// Memoizing entropy oracle over one relation, backed by an EntropyEngine.
///
/// The relation must outlive the calculator; when constructed from an
/// AnalysisSession, the session must outlive it too.
class EntropyCalculator {
 public:
  /// Stand-alone calculator owning a private engine for `r` (default
  /// EngineOptions: serial batches, process-shared worker pool).
  explicit EntropyCalculator(const Relation* r);

  /// Stand-alone calculator with explicit engine tuning (cache budget,
  /// batch threads, worker pool).
  EntropyCalculator(const Relation* r, const EngineOptions& options);

  /// Calculator sharing the session's engine for `r`: terms cached by any
  /// other consumer of the session are visible here and vice versa.
  EntropyCalculator(AnalysisSession* session, const Relation* r);

  /// H(attrs) in nats, memoized.
  double Entropy(AttrSet attrs);

  /// Batch form: out[i] = H(sets[i]), evaluated on the engine's thread
  /// pool when the batch is large enough to pay for it.
  std::vector<double> BatchEntropy(const std::vector<AttrSet>& sets);

  /// H(a | c) = H(a u c) - H(c).
  double ConditionalEntropy(AttrSet a, AttrSet c);

  /// I(a ; b | c) = H(a u c) + H(b u c) - H(a u b u c) - H(c)  (Eq. 4).
  /// The sets may overlap; overlapping variables contribute their
  /// conditional entropy, matching the paper's usage.
  double ConditionalMutualInformation(AttrSet a, AttrSet b, AttrSet c);

  /// I(a ; b) = I(a ; b | empty).
  double MutualInformation(AttrSet a, AttrSet b);

  /// The relation being measured.
  const Relation& relation() const { return engine_->relation(); }

  /// The backing engine (shared when session-constructed).
  EntropyEngine& engine() { return *engine_; }

  /// Number of distinct entropy terms cached so far in the backing engine.
  size_t CacheSize() const { return engine_->CacheSize(); }

 private:
  std::unique_ptr<EntropyEngine> owned_;  // null when session-backed
  EntropyEngine* engine_;
};

}  // namespace ajd

#endif  // AJD_INFO_ENTROPY_H_
