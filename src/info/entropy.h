// Entropies and (conditional) mutual information over the empirical
// distribution of a relation (Section 2.2, Eqs. 2-4). All values in nats.
//
// EntropyCalculator memoizes per-attribute-set entropies: the J-measure,
// Theorem 2.2 sandwiches, and the schema miner all evaluate many overlapping
// entropy terms over the same relation.
#ifndef AJD_INFO_ENTROPY_H_
#define AJD_INFO_ENTROPY_H_

#include <unordered_map>

#include "relation/attr_set.h"
#include "relation/relation.h"

namespace ajd {

/// H(attrs) over the empirical distribution of r, in nats. H(empty) = 0.
/// For a duplicate-free relation, H(all attrs) = ln N.
double EntropyOf(const Relation& r, AttrSet attrs);

/// Memoizing entropy oracle over one relation.
///
/// The relation must outlive the calculator.
class EntropyCalculator {
 public:
  explicit EntropyCalculator(const Relation* r) : r_(r) {}

  /// H(attrs) in nats, memoized.
  double Entropy(AttrSet attrs);

  /// H(a | c) = H(a u c) - H(c).
  double ConditionalEntropy(AttrSet a, AttrSet c);

  /// I(a ; b | c) = H(a u c) + H(b u c) - H(a u b u c) - H(c)  (Eq. 4).
  /// The sets may overlap; overlapping variables contribute their
  /// conditional entropy, matching the paper's usage.
  double ConditionalMutualInformation(AttrSet a, AttrSet b, AttrSet c);

  /// I(a ; b) = I(a ; b | empty).
  double MutualInformation(AttrSet a, AttrSet b);

  /// The relation being measured.
  const Relation& relation() const { return *r_; }

  /// Number of distinct entropy terms computed so far (cache size).
  size_t CacheSize() const { return cache_.size(); }

 private:
  const Relation* r_;
  std::unordered_map<AttrSet, double, AttrSetHash> cache_;
};

}  // namespace ajd

#endif  // AJD_INFO_ENTROPY_H_
