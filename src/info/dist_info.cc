#include "info/dist_info.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace ajd {

double MarginalEntropy(const SparseDistribution& p, AttrSet attrs) {
  std::vector<uint32_t> positions = attrs.ToIndices();
  for (uint32_t pos : positions) AJD_CHECK(pos < p.arity());
  return p.Marginal(positions).Entropy();
}

double JMeasureOfDistribution(const SparseDistribution& p,
                              const JoinTree& tree) {
  AJD_CHECK(tree.AllAttrs().IsSubsetOf(AttrSet::Range(
      static_cast<uint32_t>(p.arity()))));
  double j = 0.0;
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    j += MarginalEntropy(p, tree.bag(v));
  }
  for (const auto& [u, v] : tree.Edges()) {
    j -= MarginalEntropy(p, tree.bag(u).Intersect(tree.bag(v)));
  }
  j -= MarginalEntropy(p, tree.AllAttrs());
  return j < 0.0 && j > -1e-9 ? 0.0 : j;
}

DistFactorized::DistFactorized(const SparseDistribution& p,
                               const JoinTree& tree, uint32_t root)
    : p_(&p) {
  DfsDecomposition dec = tree.Decompose(root);
  auto make_factor = [&p](AttrSet attrs) {
    Factor f;
    f.positions = attrs.ToIndices();
    f.marginal = p.Marginal(f.positions);
    return f;
  };
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    bag_factors_.push_back(make_factor(tree.bag(v)));
  }
  for (const DfsStep& s : dec.steps) {
    sep_factors_.push_back(make_factor(s.delta));
  }
}

double DistFactorized::FactorProb(const Factor& f,
                                  const uint32_t* tuple) const {
  if (f.positions.empty()) return 1.0;
  uint32_t key[kMaxAttrs];
  for (size_t k = 0; k < f.positions.size(); ++k) {
    key[k] = tuple[f.positions[k]];
  }
  return f.marginal.Prob(key);
}

double DistFactorized::Density(const uint32_t* tuple) const {
  double num = 1.0;
  for (const Factor& f : bag_factors_) {
    double p = FactorProb(f, tuple);
    if (p == 0.0) return 0.0;
    num *= p;
  }
  double den = 1.0;
  for (const Factor& f : sep_factors_) {
    double p = FactorProb(f, tuple);
    AJD_CHECK(p > 0.0);
    den *= p;
  }
  return num / den;
}

double DistFactorized::KlFromSource() const {
  double kl = 0.0;
  for (uint32_t i = 0; i < p_->SupportSize(); ++i) {
    double pi = p_->ProbAt(i);
    if (pi <= 0.0) continue;
    double qi = Density(p_->TupleAt(i));
    AJD_CHECK_MSG(qi > 0.0, "P^T must dominate P on its support");
    kl += pi * std::log(pi / qi);
  }
  return kl < 0.0 && kl > -1e-9 ? 0.0 : kl;
}

double KlToFactorizedOf(const SparseDistribution& p,
                        const SparseDistribution& q, const JoinTree& tree) {
  AJD_CHECK(p.arity() == q.arity());
  DistFactorized qt(q, tree);
  double kl = 0.0;
  for (uint32_t i = 0; i < p.SupportSize(); ++i) {
    double pi = p.ProbAt(i);
    if (pi <= 0.0) continue;
    double qi = qt.Density(p.TupleAt(i));
    if (qi <= 0.0) return std::numeric_limits<double>::infinity();
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

}  // namespace ajd
