#include "info/entropy.h"

#include <cmath>

#include "engine/analysis_session.h"
#include "relation/row_hash.h"
#include "util/math.h"

namespace ajd {

double EntropyOf(const Relation& r, AttrSet attrs) {
  AJD_CHECK(attrs.IsSubsetOf(r.schema().AllAttrs()));
  if (attrs.Empty() || r.NumRows() == 0) return 0.0;
  std::vector<uint32_t> positions = attrs.ToIndices();
  TupleCounter counter(positions.size(), r.NumRows());
  std::vector<uint32_t> key(positions.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    const uint32_t* row = r.Row(i);
    for (size_t k = 0; k < positions.size(); ++k) key[k] = row[positions[k]];
    counter.Add(key.data());
  }
  // H = ln N - (1/N) sum_y c_y ln c_y, numerically stabler than summing
  // p ln p for large N.
  const double n = static_cast<double>(r.NumRows());
  double sum_clogc = 0.0;
  for (uint32_t i = 0; i < counter.NumDistinct(); ++i) {
    sum_clogc += XLogX(static_cast<double>(counter.CountAt(i)));
  }
  return std::log(n) - sum_clogc / n;
}

EntropyCalculator::EntropyCalculator(const Relation* r)
    : owned_(std::make_unique<EntropyEngine>(r)), engine_(owned_.get()) {}

EntropyCalculator::EntropyCalculator(const Relation* r,
                                     const EngineOptions& options)
    : owned_(std::make_unique<EntropyEngine>(r, options)),
      engine_(owned_.get()) {}

EntropyCalculator::EntropyCalculator(AnalysisSession* session,
                                     const Relation* r)
    : engine_(&session->EngineFor(*r)) {}

double EntropyCalculator::Entropy(AttrSet attrs) {
  return engine_->Entropy(attrs);
}

std::vector<double> EntropyCalculator::BatchEntropy(
    const std::vector<AttrSet>& sets) {
  return engine_->BatchEntropy(sets);
}

double EntropyCalculator::ConditionalEntropy(AttrSet a, AttrSet c) {
  return engine_->ConditionalEntropy(a, c);
}

double EntropyCalculator::ConditionalMutualInformation(AttrSet a, AttrSet b,
                                                       AttrSet c) {
  return engine_->ConditionalMutualInformation(a, b, c);
}

double EntropyCalculator::MutualInformation(AttrSet a, AttrSet b) {
  return engine_->MutualInformation(a, b);
}

}  // namespace ajd
