#include "info/entropy.h"

#include <cmath>

#include "relation/row_hash.h"
#include "util/math.h"

namespace ajd {

double EntropyOf(const Relation& r, AttrSet attrs) {
  AJD_CHECK(attrs.IsSubsetOf(r.schema().AllAttrs()));
  if (attrs.Empty() || r.NumRows() == 0) return 0.0;
  std::vector<uint32_t> positions = attrs.ToIndices();
  TupleCounter counter(positions.size(), r.NumRows());
  std::vector<uint32_t> key(positions.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    const uint32_t* row = r.Row(i);
    for (size_t k = 0; k < positions.size(); ++k) key[k] = row[positions[k]];
    counter.Add(key.data());
  }
  // H = ln N - (1/N) sum_y c_y ln c_y, numerically stabler than summing
  // p ln p for large N.
  const double n = static_cast<double>(r.NumRows());
  double sum_clogc = 0.0;
  for (uint32_t i = 0; i < counter.NumDistinct(); ++i) {
    sum_clogc += XLogX(static_cast<double>(counter.CountAt(i)));
  }
  return std::log(n) - sum_clogc / n;
}

double EntropyCalculator::Entropy(AttrSet attrs) {
  if (attrs.Empty()) return 0.0;
  auto it = cache_.find(attrs);
  if (it != cache_.end()) return it->second;
  double h = EntropyOf(*r_, attrs);
  cache_.emplace(attrs, h);
  return h;
}

double EntropyCalculator::ConditionalEntropy(AttrSet a, AttrSet c) {
  return Entropy(a.Union(c)) - Entropy(c);
}

double EntropyCalculator::ConditionalMutualInformation(AttrSet a, AttrSet b,
                                                       AttrSet c) {
  double h_ac = Entropy(a.Union(c));
  double h_bc = Entropy(b.Union(c));
  double h_abc = Entropy(a.Union(b).Union(c));
  double h_c = Entropy(c);
  double cmi = h_ac + h_bc - h_abc - h_c;
  // Clamp tiny negative values from floating-point cancellation.
  return cmi < 0.0 && cmi > -1e-9 ? 0.0 : cmi;
}

double EntropyCalculator::MutualInformation(AttrSet a, AttrSet b) {
  return ConditionalMutualInformation(a, b, AttrSet());
}

}  // namespace ajd
