// FactorizedDistribution: the distribution P^T of Proposition 3.1 / Eq. (10),
//
//   P^T(x) = prod_i P[Omega_i](x[Omega_i]) / prod_i P[Delta_i](x[Delta_i]),
//
// where P is the empirical distribution of a relation and (T, chi) a join
// tree. P^T is the KL-projection of P onto the distributions that model T
// (Lemma 3.4), and Theorem 3.2 states J(T) = D_KL(P || P^T).
#ifndef AJD_INFO_FACTORIZED_H_
#define AJD_INFO_FACTORIZED_H_

#include <cstdint>
#include <vector>

#include "info/distribution.h"
#include "jointree/join_tree.h"
#include "relation/relation.h"

namespace ajd {

/// The factorized distribution P^T induced by a relation and a join tree.
class FactorizedDistribution {
 public:
  /// Builds P^T from the empirical distribution of `r` and `tree`. The
  /// separators Delta_i are those of the DFS decomposition rooted at `root`
  /// (the value of P^T does not depend on the root; see Section 2.2).
  FactorizedDistribution(const Relation& r, const JoinTree& tree,
                         uint32_t root = 0);

  /// P^T evaluated at a full row over r's schema (r.NumAttrs() codes).
  /// Returns 0 when any bag marginal of the row is 0.
  double Density(const uint32_t* full_row) const;

  /// D_KL(P || P^T) in nats, where P is the empirical distribution of the
  /// source relation. Finite by construction (P << P^T on R's support).
  /// By Theorem 3.2 this equals J(T).
  double KlFromEmpirical() const;

  /// sum of Density over the (distinct) rows of `support`. When `support`
  /// contains the support of P^T (e.g. the materialized acyclic join R'),
  /// this is 1 up to rounding — P^T is a probability distribution.
  double TotalMassOver(const Relation& support) const;

  /// Marginal of P^T over `attrs`, obtained by summing Density over the
  /// rows of `support` (which must contain the support of P^T). Used to
  /// verify Lemma 3.3: P^T[Omega_i] == P[Omega_i].
  SparseDistribution MarginalOver(const Relation& support,
                                  AttrSet attrs) const;

  /// The attribute sets of the numerator factors (bags).
  const std::vector<AttrSet>& BagSets() const { return bag_sets_; }

  /// The attribute sets of the denominator factors (separators).
  const std::vector<AttrSet>& SeparatorSets() const { return sep_sets_; }

 private:
  struct Factor {
    std::vector<uint32_t> positions;   // schema positions, ascending
    SparseDistribution marginal{0};
  };

  double FactorProb(const Factor& f, const uint32_t* full_row) const;

  const Relation* r_;
  std::vector<AttrSet> bag_sets_;
  std::vector<AttrSet> sep_sets_;
  std::vector<Factor> bag_factors_;
  std::vector<Factor> sep_factors_;
};

}  // namespace ajd

#endif  // AJD_INFO_FACTORIZED_H_
