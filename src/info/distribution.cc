#include "info/distribution.h"

#include <cmath>
#include <limits>

#include "util/math.h"

namespace ajd {

SparseDistribution::SparseDistribution(size_t arity)
    : arity_(arity), keys_(std::max<size_t>(arity, 1)) {}

SparseDistribution SparseDistribution::Empirical(const Relation& r,
                                                 AttrSet attrs) {
  AJD_CHECK(attrs.IsSubsetOf(r.schema().AllAttrs()));
  std::vector<uint32_t> positions = attrs.ToIndices();
  SparseDistribution dist(positions.size());
  if (r.NumRows() == 0) return dist;
  const double w = 1.0 / static_cast<double>(r.NumRows());
  if (positions.empty()) {
    for (uint64_t i = 0; i < r.NumRows(); ++i) dist.Add(nullptr, w);
    return dist;
  }
  std::vector<uint32_t> key(positions.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    const uint32_t* row = r.Row(i);
    for (size_t k = 0; k < positions.size(); ++k) key[k] = row[positions[k]];
    dist.Add(key.data(), w);
  }
  return dist;
}

void SparseDistribution::Add(const uint32_t* tuple, double prob) {
  if (arity_ == 0) {
    mass0_ += prob;
    return;
  }
  uint32_t idx = keys_.Find(tuple);
  if (idx == UINT32_MAX) {
    idx = keys_.Add(tuple);
    probs_.push_back(0.0);
  }
  probs_[idx] += prob;
}

double SparseDistribution::Prob(const uint32_t* tuple) const {
  if (arity_ == 0) return mass0_;
  uint32_t idx = keys_.Find(tuple);
  return idx == UINT32_MAX ? 0.0 : probs_[idx];
}

double SparseDistribution::TotalMass() const {
  if (arity_ == 0) return mass0_;
  double total = 0.0;
  for (double p : probs_) total += p;
  return total;
}

double SparseDistribution::Entropy() const {
  if (arity_ == 0) return 0.0;
  double h = 0.0;
  for (double p : probs_) h -= XLogX(p);
  return h;
}

SparseDistribution SparseDistribution::Marginal(
    const std::vector<uint32_t>& local_positions) const {
  for (size_t k = 0; k < local_positions.size(); ++k) {
    AJD_CHECK(local_positions[k] < arity_);
    if (k > 0) AJD_CHECK(local_positions[k] > local_positions[k - 1]);
  }
  SparseDistribution out(local_positions.size());
  if (arity_ == 0) {
    out.mass0_ = mass0_;
    return out;
  }
  std::vector<uint32_t> key(local_positions.size());
  for (uint32_t i = 0; i < probs_.size(); ++i) {
    const uint32_t* t = keys_.TupleAt(i);
    for (size_t k = 0; k < local_positions.size(); ++k) {
      key[k] = t[local_positions[k]];
    }
    out.Add(local_positions.empty() ? nullptr : key.data(), probs_[i]);
  }
  return out;
}

double KlDivergence(const SparseDistribution& p, const SparseDistribution& q) {
  AJD_CHECK(p.arity() == q.arity());
  if (p.arity() == 0) return 0.0;
  double kl = 0.0;
  for (uint32_t i = 0; i < p.SupportSize(); ++i) {
    double pi = p.ProbAt(i);
    if (pi <= 0.0) continue;
    double qi = q.Prob(p.TupleAt(i));
    if (qi <= 0.0) return std::numeric_limits<double>::infinity();
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

double TotalVariation(const SparseDistribution& p,
                      const SparseDistribution& q) {
  AJD_CHECK(p.arity() == q.arity());
  if (p.arity() == 0) return 0.5 * std::fabs(p.TotalMass() - q.TotalMass());
  double sum = 0.0;
  for (uint32_t i = 0; i < p.SupportSize(); ++i) {
    sum += std::fabs(p.ProbAt(i) - q.Prob(p.TupleAt(i)));
  }
  // Mass of q outside p's support.
  for (uint32_t i = 0; i < q.SupportSize(); ++i) {
    if (p.Prob(q.TupleAt(i)) == 0.0) sum += q.ProbAt(i);
  }
  return 0.5 * sum;
}

}  // namespace ajd
