#include "info/factorized.h"

#include <cmath>

#include "relation/row_hash.h"
#include "util/check.h"

namespace ajd {

FactorizedDistribution::FactorizedDistribution(const Relation& r,
                                               const JoinTree& tree,
                                               uint32_t root)
    : r_(&r) {
  AJD_CHECK(tree.AllAttrs().IsSubsetOf(r.schema().AllAttrs()));
  DfsDecomposition dec = tree.Decompose(root);
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    bag_sets_.push_back(tree.bag(v));
  }
  for (const DfsStep& s : dec.steps) sep_sets_.push_back(s.delta);

  auto make_factor = [&r](AttrSet attrs) {
    Factor f;
    f.positions = attrs.ToIndices();
    f.marginal = SparseDistribution::Empirical(r, attrs);
    return f;
  };
  for (AttrSet b : bag_sets_) bag_factors_.push_back(make_factor(b));
  for (AttrSet s : sep_sets_) sep_factors_.push_back(make_factor(s));
}

double FactorizedDistribution::FactorProb(const Factor& f,
                                          const uint32_t* full_row) const {
  if (f.positions.empty()) return 1.0;
  // Gather the factor's attributes from the full row.
  uint32_t key[kMaxAttrs];
  for (size_t k = 0; k < f.positions.size(); ++k) {
    key[k] = full_row[f.positions[k]];
  }
  return f.marginal.Prob(key);
}

double FactorizedDistribution::Density(const uint32_t* full_row) const {
  double num = 1.0;
  for (const Factor& f : bag_factors_) {
    double p = FactorProb(f, full_row);
    if (p == 0.0) return 0.0;
    num *= p;
  }
  double den = 1.0;
  for (const Factor& f : sep_factors_) {
    double p = FactorProb(f, full_row);
    // A zero separator marginal with nonzero bag marginals cannot happen:
    // each separator is contained in a bag.
    AJD_CHECK(p > 0.0);
    den *= p;
  }
  return num / den;
}

double FactorizedDistribution::KlFromEmpirical() const {
  const Relation& r = *r_;
  if (r.NumRows() == 0) return 0.0;
  // Group identical rows (multiset support) and accumulate P ln(P / P^T).
  const uint32_t width = r.NumAttrs();
  TupleCounter counter(width, r.NumRows());
  for (uint64_t i = 0; i < r.NumRows(); ++i) counter.Add(r.Row(i));
  const double n = static_cast<double>(r.NumRows());
  double kl = 0.0;
  for (uint32_t i = 0; i < counter.NumDistinct(); ++i) {
    const uint32_t* row = counter.TupleAt(i);
    double p = static_cast<double>(counter.CountAt(i)) / n;
    double q = Density(row);
    AJD_CHECK_MSG(q > 0.0, "P^T must dominate P on R's support");
    kl += p * std::log(p / q);
  }
  // KL >= 0; clamp floating-point cancellation noise.
  return kl < 0.0 && kl > -1e-9 ? 0.0 : kl;
}

double FactorizedDistribution::TotalMassOver(const Relation& support) const {
  double total = 0.0;
  for (uint64_t i = 0; i < support.NumRows(); ++i) {
    total += Density(support.Row(i));
  }
  return total;
}

SparseDistribution FactorizedDistribution::MarginalOver(
    const Relation& support, AttrSet attrs) const {
  std::vector<uint32_t> positions = attrs.ToIndices();
  SparseDistribution out(positions.size());
  std::vector<uint32_t> key(positions.size());
  for (uint64_t i = 0; i < support.NumRows(); ++i) {
    const uint32_t* row = support.Row(i);
    double d = Density(row);
    if (d == 0.0) continue;
    for (size_t k = 0; k < positions.size(); ++k) key[k] = row[positions[k]];
    out.Add(positions.empty() ? nullptr : key.data(), d);
  }
  return out;
}

}  // namespace ajd
