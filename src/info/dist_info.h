// Distribution-level information machinery: Theorem 3.2 holds for ANY
// joint probability distribution P, not only the empirical distribution of
// a relation. This module evaluates, over a SparseDistribution whose tuple
// positions are the attribute positions of a join tree:
//
//   * marginal entropies and the J-measure J(T) (Eq. 7),
//   * the factorized distribution P^T (Eq. 10) pointwise,
//   * D_KL(P || P^T), which Theorem 3.2 says equals J(T),
//   * D_KL(P || Q) against any other tree-factorized Q (Lemma 3.4 says the
//     minimum over Q |= T is attained at Q = P^T).
//
// The test suite uses this to verify Theorem 3.2 and Lemma 3.4 on random
// NON-UNIFORM distributions — a strictly stronger check than the
// relation-level one.
#ifndef AJD_INFO_DIST_INFO_H_
#define AJD_INFO_DIST_INFO_H_

#include <cstdint>
#include <vector>

#include "info/distribution.h"
#include "jointree/join_tree.h"

namespace ajd {

/// Entropy (nats) of the marginal of `p` over attribute positions `attrs`
/// (positions index into the tuple; must be < p.arity()).
double MarginalEntropy(const SparseDistribution& p, AttrSet attrs);

/// J(T) of Eq. (7) over an arbitrary joint distribution `p` whose tuple
/// positions 0..arity-1 carry the join tree's attributes. chi(T) must be a
/// subset of the positions.
double JMeasureOfDistribution(const SparseDistribution& p,
                              const JoinTree& tree);

/// P^T evaluated over the support of `p` plus the factor tables, for
/// arbitrary `p` (Eq. 10). Lightweight: holds the bag and separator
/// marginals of `p`.
class DistFactorized {
 public:
  DistFactorized(const SparseDistribution& p, const JoinTree& tree,
                 uint32_t root = 0);

  /// P^T(x) for a full tuple over p's positions.
  double Density(const uint32_t* tuple) const;

  /// D_KL(p || P^T) in nats; equals J(T) by Theorem 3.2.
  double KlFromSource() const;

 private:
  struct Factor {
    std::vector<uint32_t> positions;
    SparseDistribution marginal{0};
  };
  double FactorProb(const Factor& f, const uint32_t* tuple) const;

  const SparseDistribution* p_;
  std::vector<Factor> bag_factors_;
  std::vector<Factor> sep_factors_;
};

/// D_KL(p || q^T) where q^T is the factorized distribution of ANOTHER
/// distribution `q` over the same positions and the same tree — used to
/// verify Lemma 3.4: the KL projection onto {Q : Q |= T} is p^T itself,
/// i.e. KL(p || p^T) <= KL(p || q^T) for every q.
double KlToFactorizedOf(const SparseDistribution& p,
                        const SparseDistribution& q, const JoinTree& tree);

}  // namespace ajd

#endif  // AJD_INFO_DIST_INFO_H_
