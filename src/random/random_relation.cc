#include "random/random_relation.h"

#include <algorithm>
#include <unordered_set>

#include "util/math.h"

namespace ajd {

namespace {

constexpr uint64_t kShuffleMaxDomain = uint64_t{1} << 27;

std::vector<uint64_t> FloydSample(uint64_t domain, uint64_t n, Rng* rng) {
  // Robert Floyd's algorithm: iterate j over the last n positions; insert a
  // uniform draw from [0, j], falling back to j itself on collision. The
  // result is a uniform random n-subset using exactly n draws.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(n * 2);
  for (uint64_t j = domain - n; j < domain; ++j) {
    uint64_t t = rng->UniformU64(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> RejectionSample(uint64_t domain, uint64_t n, Rng* rng) {
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(n * 2);
  while (chosen.size() < n) chosen.insert(rng->UniformU64(domain));
  std::vector<uint64_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint64_t> ShuffleSample(uint64_t domain, uint64_t n, Rng* rng) {
  std::vector<uint64_t> pool(domain);
  for (uint64_t i = 0; i < domain; ++i) pool[i] = i;
  // Partial Fisher-Yates: after i swaps, pool[0..i) is a uniform prefix.
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t j = i + rng->UniformU64(domain - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(n);
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace

Result<std::vector<uint64_t>> SampleDistinctIndices(uint64_t domain,
                                                    uint64_t n, Rng* rng,
                                                    SampleStrategy strategy) {
  if (n > domain) {
    return Status::OutOfRange("cannot sample " + std::to_string(n) +
                              " distinct indices from a domain of " +
                              std::to_string(domain));
  }
  if (n == 0) return std::vector<uint64_t>{};

  if (strategy == SampleStrategy::kAuto) {
    const bool dense = n > domain / 2;
    if (dense && domain <= kShuffleMaxDomain) {
      strategy = SampleStrategy::kShuffle;
    } else if (n <= domain / 16) {
      strategy = SampleStrategy::kRejection;
    } else {
      strategy = SampleStrategy::kFloyd;
    }
  }
  switch (strategy) {
    case SampleStrategy::kFloyd:
      return FloydSample(domain, n, rng);
    case SampleStrategy::kRejection:
      return RejectionSample(domain, n, rng);
    case SampleStrategy::kShuffle:
      if (domain > kShuffleMaxDomain) {
        return Status::CapacityExceeded(
            "kShuffle requires the domain to fit in memory (<= 2^27)");
      }
      return ShuffleSample(domain, n, rng);
    case SampleStrategy::kAuto:
      break;
  }
  return Status::Internal("unhandled sampling strategy");
}

Result<Relation> SampleRandomRelation(const RandomRelationSpec& spec,
                                      Rng* rng, SampleStrategy strategy) {
  if (spec.domain_sizes.empty()) {
    return Status::InvalidArgument("need at least one attribute");
  }
  for (uint64_t d : spec.domain_sizes) {
    if (d == 0) return Status::InvalidArgument("domain sizes must be >= 1");
    if (d > UINT32_MAX) {
      return Status::CapacityExceeded(
          "per-attribute domain sizes must fit in uint32");
    }
  }
  MixedRadixCodec codec(spec.domain_sizes);
  if (!codec.Valid()) {
    return Status::CapacityExceeded("product domain exceeds uint64");
  }
  if (spec.num_tuples == 0 || spec.num_tuples > codec.Size()) {
    return Status::OutOfRange(
        "num_tuples must satisfy 0 < N <= prod(domain sizes)");
  }

  Result<std::vector<uint64_t>> indices =
      SampleDistinctIndices(codec.Size(), spec.num_tuples, rng, strategy);
  if (!indices.ok()) return indices.status();

  Result<Schema> schema =
      spec.attr_names.empty()
          ? Schema::MakeSynthetic(spec.domain_sizes)
          : [&]() -> Result<Schema> {
              if (spec.attr_names.size() != spec.domain_sizes.size()) {
                return Status::InvalidArgument(
                    "attr_names size must match domain_sizes size");
              }
              std::vector<Attribute> attrs;
              for (size_t i = 0; i < spec.attr_names.size(); ++i) {
                attrs.push_back({spec.attr_names[i], spec.domain_sizes[i]});
              }
              return Schema::Make(std::move(attrs));
            }();
  if (!schema.ok()) return schema.status();

  RelationBuilder b(std::move(schema).value());
  b.Reserve(spec.num_tuples);
  std::vector<uint32_t> row;
  for (uint64_t index : indices.value()) {
    codec.Decode(index, &row);
    b.AddRowPtr(row.data());
  }
  // Rows are distinct by construction; skip the dedupe pass.
  return std::move(b).Build(/*dedupe=*/false);
}

}  // namespace ajd
