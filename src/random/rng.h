// Deterministic pseudo-random number generator (xoshiro256++ seeded via
// splitmix64). All experiments in this library are reproducible from a
// 64-bit seed; the paper's random relation model (Definition 5.2) is driven
// exclusively through this class.
#ifndef AJD_RANDOM_RNG_H_
#define AJD_RANDOM_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ajd {

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words from `seed` via splitmix64.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// UniformRandomBitGenerator interface.
  result_type operator()() { return NextU64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform integer in [0, bound); bound must be positive. Unbiased
  /// (Lemire's multiply-shift with rejection).
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Bernoulli(p) draw.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller (fresh pair each call; no caching so
  /// the stream stays simple to reason about).
  double NextGaussian();

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator (for parallel trials).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace ajd

#endif  // AJD_RANDOM_RNG_H_
