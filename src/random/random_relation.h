// The random relation model of Definition 5.2: a relation of exactly N
// tuples drawn uniformly at random, WITHOUT replacement, from the product
// domain [d_1] x ... x [d_n].
//
// Sampling strategies (selected automatically by density N/D):
//  * kFloyd     — Robert Floyd's algorithm: exactly N uniform draws plus a
//                 hash set; works for any domain size D that fits in uint64.
//  * kRejection — repeated uniform draws until N distinct indices; fast
//                 when N << D.
//  * kShuffle   — partial Fisher-Yates over a materialized [0, D) array;
//                 best when N is a large fraction of a small D.
#ifndef AJD_RANDOM_RANDOM_RELATION_H_
#define AJD_RANDOM_RANDOM_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "random/rng.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// Strategy for sampling N distinct indices from [0, D).
enum class SampleStrategy {
  kAuto,
  kFloyd,
  kRejection,
  kShuffle,
};

/// Parameters of the random relation model.
struct RandomRelationSpec {
  /// Per-attribute domain sizes d_1..d_n (all >= 1). The product D must fit
  /// in uint64.
  std::vector<uint64_t> domain_sizes;
  /// Number of tuples N, 0 < N <= D.
  uint64_t num_tuples = 0;
  /// Optional attribute names; defaults to X0..X{n-1}.
  std::vector<std::string> attr_names;
};

/// Samples `n` distinct indices uniformly from [0, domain). The result is
/// sorted ascending (the draw is a uniform random *set*; order carries no
/// information). OutOfRange if n > domain; kShuffle additionally requires
/// domain <= 2^27 (memory).
Result<std::vector<uint64_t>> SampleDistinctIndices(
    uint64_t domain, uint64_t n, Rng* rng,
    SampleStrategy strategy = SampleStrategy::kAuto);

/// Samples a relation from the random relation model. The schema is
/// synthetic (names X0.. or spec.attr_names) with the given domain sizes.
Result<Relation> SampleRandomRelation(
    const RandomRelationSpec& spec, Rng* rng,
    SampleStrategy strategy = SampleStrategy::kAuto);

}  // namespace ajd

#endif  // AJD_RANDOM_RANDOM_RELATION_H_
