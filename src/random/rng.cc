#include "random/rng.h"

#include <cmath>

namespace ajd {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  AJD_CHECK(bound > 0);
  // Lemire's method with rejection for exact uniformity.
  while (true) {
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low >= bound || low >= (-bound) % bound) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  AJD_CHECK(lo <= hi);
  uint64_t span = hi - lo + 1;
  if (span == 0) return NextU64();  // full range
  return lo + UniformU64(span);
}

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xda3e39cb94b95bdbULL); }

}  // namespace ajd
