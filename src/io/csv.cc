#include "io/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/failpoint.h"
#include "util/string_util.h"

namespace ajd {

namespace {

// Splits one CSV line honoring double-quoted fields with doubled quotes.
std::vector<std::string> SplitCsvLine(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool NeedsQuoting(const std::string& s, char sep) {
  return s.find(sep) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& s, char sep) {
  if (!NeedsQuoting(s, sep)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Relation> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::string line;
  std::vector<std::string> header;
  bool have_header = false;
  std::vector<std::vector<std::string>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.separator);
    if (!have_header) {
      if (options.has_header) {
        header = std::move(fields);
        have_header = true;
        continue;
      }
      header.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        header.push_back("col" + std::to_string(i));
      }
      have_header = true;
    }
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "ragged CSV row: expected " + std::to_string(header.size()) +
          " fields, got " + std::to_string(fields.size()));
    }
    rows.push_back(std::move(fields));
  }
  if (!have_header) return Status::InvalidArgument("empty CSV input");

  Result<Schema> schema = Schema::MakeUniform(header, 0);
  if (!schema.ok()) return schema.status();
  RelationBuilder b(std::move(schema).value());
  b.Reserve(rows.size());
  for (const auto& row : rows) b.AddStringRow(row);
  return std::move(b).Build(options.dedupe);
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadCsv(in, options);
}

Status ReadCsvBatches(
    std::istream& in, const CsvOptions& options, uint64_t batch_rows,
    const std::function<Status(const std::vector<std::string>& header,
                               std::vector<std::vector<std::string>> batch)>&
        sink) {
  if (batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  std::string line;
  std::vector<std::string> header;
  bool have_header = false;
  std::vector<std::vector<std::string>> batch;
  bool delivered = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.separator);
    if (!have_header) {
      if (options.has_header) {
        header = std::move(fields);
        have_header = true;
        continue;
      }
      header.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        header.push_back("col" + std::to_string(i));
      }
      have_header = true;
    }
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "ragged CSV row: expected " + std::to_string(header.size()) +
          " fields, got " + std::to_string(fields.size()));
    }
    batch.push_back(std::move(fields));
    if (batch.size() >= batch_rows) {
      Status s = sink(header, std::move(batch));
      if (!s.ok()) return s;
      delivered = true;
      batch.clear();
    }
  }
  if (!have_header) return Status::InvalidArgument("empty CSV input");
  if (!batch.empty() || !delivered) {
    // Flush the tail — or, for a header-only file, one empty batch so the
    // sink still learns the schema.
    Status s = sink(header, std::move(batch));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ReadCsvFileBatches(
    const std::string& path, const CsvOptions& options, uint64_t batch_rows,
    const std::function<Status(const std::vector<std::string>& header,
                               std::vector<std::vector<std::string>> batch)>&
        sink) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadCsvBatches(in, options, batch_rows, sink);
}

Status ValidateCsvHeader(const std::vector<std::string>& header,
                         const Schema& schema, bool names_meaningful) {
  if (header.size() != schema.size()) {
    return Status::InvalidArgument(
        "CSV width " + std::to_string(header.size()) +
        " does not match relation width " + std::to_string(schema.size()));
  }
  if (!names_meaningful) return Status::OK();  // synthetic colN names
  // Matching width alone would let a column-reordered file append values
  // into the wrong attributes silently; with a real header the names must
  // line up positionally.
  for (uint32_t a = 0; a < schema.size(); ++a) {
    if (header[a] != schema.attr(a).name) {
      return Status::InvalidArgument(
          "CSV column " + std::to_string(a) + " is named '" + header[a] +
          "' but the relation attribute is '" + schema.attr(a).name + "'");
    }
  }
  return Status::OK();
}

Status AppendCsvBatches(std::istream& in, Relation* r,
                        const CsvOptions& options, uint64_t batch_rows,
                        CsvIngestSummary* summary) {
  if (r == nullptr) {
    return Status::InvalidArgument("AppendCsvBatches: relation is null");
  }
  CsvIngestSummary local;
  CsvIngestSummary* out = summary != nullptr ? summary : &local;
  *out = CsvIngestSummary{};
  return ReadCsvBatches(
      in, options, batch_rows,
      [r, &in, &options, out](const std::vector<std::string>& header,
                              std::vector<std::vector<std::string>> batch) {
        Status ok =
            ValidateCsvHeader(header, r->schema(), options.has_header);
        if (!ok.ok()) return ok;
        if (AJD_FAILPOINT(failpoints::kCsvBatch)) {
          return Status::IoError("injected fault: io/csv_batch");
        }
        if (!batch.empty()) {
          const uint64_t before = r->NumRows();
          Status append = r->AppendStringBatch(batch, options.dedupe);
          if (!append.ok()) return append;
          out->rows_read += batch.size();
          out->rows_appended += r->NumRows() - before;
          ++out->batches_committed;
        }
        // The sink runs immediately after getline consumed the batch's
        // last row, so tellg() here is the offset just past that row. At
        // the tail flush the stream sits at EOF (tellg = -1): clearing
        // eofbit first yields the end-of-file offset, and the read loop
        // has already finished, so the cleared state is never re-read.
        std::streampos pos = in.tellg();
        if (pos == std::streampos(-1) && in.eof()) {
          in.clear();
          pos = in.tellg();
        }
        if (pos != std::streampos(-1)) {
          out->resume_offset = static_cast<int64_t>(pos);
        }
        return Status::OK();
      });
}

Status ResumeCsvIngest(std::istream& in, Relation* r,
                       const CsvOptions& options, uint64_t batch_rows,
                       int64_t resume_offset, CsvIngestSummary* summary) {
  if (r == nullptr) {
    return Status::InvalidArgument("ResumeCsvIngest: relation is null");
  }
  if (resume_offset < 0) {
    return Status::InvalidArgument(
        "ResumeCsvIngest: negative resume offset (the failed ingest "
        "reported the stream as not resumable)");
  }
  // The failed pass may have left the stream failed or at EOF; both must
  // clear before seekg can position it.
  in.clear();
  in.seekg(static_cast<std::streamoff>(resume_offset));
  if (!in) {
    return Status::IoError("ResumeCsvIngest: cannot seek to offset " +
                           std::to_string(resume_offset));
  }
  // The header row (if the file had one) lies BEFORE the resume offset —
  // the original pass consumed and validated it — so the continuation
  // parses data rows only. Width validation still applies per batch.
  CsvOptions resumed = options;
  resumed.has_header = false;
  return AppendCsvBatches(in, r, resumed, batch_rows, summary);
}

Status WriteCsv(const Relation& r, std::ostream& out, char separator) {
  for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
    if (a > 0) out << separator;
    out << QuoteField(r.schema().attr(a).name, separator);
  }
  out << '\n';
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
      if (a > 0) out << separator;
      uint32_t code = r.At(i, a);
      const Dictionary* d = r.dict(a);
      if (d != nullptr) {
        out << QuoteField(d->ValueOf(code), separator);
      } else {
        out << code;
      }
    }
    out << '\n';
  }
  if (!out) return Status::IoError("stream write failure");
  return Status::OK();
}

Status WriteCsvFile(const Relation& r, const std::string& path,
                    char separator) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteCsv(r, out, separator);
}

}  // namespace ajd
