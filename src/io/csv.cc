#include "io/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/string_util.h"

namespace ajd {

namespace {

// Splits one CSV line honoring double-quoted fields with doubled quotes.
std::vector<std::string> SplitCsvLine(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool NeedsQuoting(const std::string& s, char sep) {
  return s.find(sep) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& s, char sep) {
  if (!NeedsQuoting(s, sep)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Relation> ReadCsv(std::istream& in, const CsvOptions& options) {
  std::string line;
  std::vector<std::string> header;
  bool have_header = false;
  std::vector<std::vector<std::string>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.separator);
    if (!have_header) {
      if (options.has_header) {
        header = std::move(fields);
        have_header = true;
        continue;
      }
      header.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        header.push_back("col" + std::to_string(i));
      }
      have_header = true;
    }
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "ragged CSV row: expected " + std::to_string(header.size()) +
          " fields, got " + std::to_string(fields.size()));
    }
    rows.push_back(std::move(fields));
  }
  if (!have_header) return Status::InvalidArgument("empty CSV input");

  Result<Schema> schema = Schema::MakeUniform(header, 0);
  if (!schema.ok()) return schema.status();
  RelationBuilder b(std::move(schema).value());
  b.Reserve(rows.size());
  for (const auto& row : rows) b.AddStringRow(row);
  return std::move(b).Build(options.dedupe);
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadCsv(in, options);
}

Status WriteCsv(const Relation& r, std::ostream& out, char separator) {
  for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
    if (a > 0) out << separator;
    out << QuoteField(r.schema().attr(a).name, separator);
  }
  out << '\n';
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
      if (a > 0) out << separator;
      uint32_t code = r.At(i, a);
      const Dictionary* d = r.dict(a);
      if (d != nullptr) {
        out << QuoteField(d->ValueOf(code), separator);
      } else {
        out << code;
      }
    }
    out << '\n';
  }
  if (!out) return Status::IoError("stream write failure");
  return Status::OK();
}

Status WriteCsvFile(const Relation& r, const std::string& path,
                    char separator) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteCsv(r, out, separator);
}

}  // namespace ajd
