// CSV input/output for relations. All columns are dictionary-encoded
// strings; the first row may carry attribute names. Minimal quoting support
// (double quotes, embedded commas, doubled quotes).
#ifndef AJD_IO_CSV_H_
#define AJD_IO_CSV_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// Options for CSV parsing.
struct CsvOptions {
  char separator = ',';
  bool has_header = true;   ///< First row holds attribute names.
  bool dedupe = true;       ///< Build a set (drop duplicate rows).
};

/// Parses a relation from a stream. Without a header, attributes are named
/// "col0".."col{k-1}". Ragged rows yield InvalidArgument.
Result<Relation> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Parses a relation from a file.
Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Streaming chunked reader: parses `in` at most `batch_rows` rows at a
/// time and hands each chunk (raw string fields) to `sink` along with the
/// header names. The whole file is never materialized — the path that lets
/// the streaming loss monitor (core/streaming.h) follow files larger than
/// memory. Stops at the first non-OK sink status and returns it; ragged
/// rows and empty input yield InvalidArgument. The sink also runs (with an
/// empty batch) for a header-only file, so callers always learn the schema.
Status ReadCsvBatches(
    std::istream& in, const CsvOptions& options, uint64_t batch_rows,
    const std::function<Status(const std::vector<std::string>& header,
                               std::vector<std::vector<std::string>> batch)>&
        sink);

/// File form of ReadCsvBatches.
Status ReadCsvFileBatches(
    const std::string& path, const CsvOptions& options, uint64_t batch_rows,
    const std::function<Status(const std::vector<std::string>& header,
                               std::vector<std::vector<std::string>> batch)>&
        sink);

/// Validates a CSV header against a relation schema: the widths must
/// match, and — when `names_meaningful` (the file had a real header row) —
/// so must the column names, positionally, or a reordered file would
/// silently append values into the wrong attributes.
Status ValidateCsvHeader(const std::vector<std::string>& header,
                         const Schema& schema, bool names_meaningful);

/// What a chunked CSV ingestion actually committed — filled in even when
/// the overall Status is an error, so a caller can resume after a mid-file
/// failure instead of guessing how much landed.
struct CsvIngestSummary {
  /// Data rows handed to the relation by committed batches (including
  /// rows dedupe then dropped).
  uint64_t rows_read = 0;
  /// Rows that actually landed in the relation (NumRows() delta).
  uint64_t rows_appended = 0;
  /// Batches fully committed (each bumped the epoch unless empty/all-dup).
  uint64_t batches_committed = 0;
  /// Stream offset just past the last committed batch — seek here (and
  /// set has_header=false) to resume after a mid-file failure. -1 when the
  /// stream is not seekable or nothing committed.
  int64_t resume_offset = -1;
};

/// Chunked ingestion into an existing relation: validates the header
/// (width always; names too when options.has_header) and feeds every
/// chunk straight to Relation::AppendStringBatch (one epoch bump per
/// non-empty chunk). `options.dedupe` maps to the append's dedupe flag.
///
/// Failure semantics: each batch commits atomically (AppendStringBatch's
/// all-or-nothing contract), so a mid-file failure — ragged row, header
/// mismatch, allocation failure — leaves the relation holding exactly the
/// batches committed before it. `summary` (optional) reports how many
/// rows/batches landed and the byte offset to resume from; it is filled
/// on both success and failure.
Status AppendCsvBatches(std::istream& in, Relation* r,
                        const CsvOptions& options, uint64_t batch_rows,
                        CsvIngestSummary* summary = nullptr);

/// Resumes a previously failed AppendCsvBatches from the offset its summary
/// reported: seeks `in` to `resume_offset` and continues batch ingestion of
/// the REMAINING rows into `r` (header already consumed by the original
/// pass, so options.has_header is ignored and no header row is expected at
/// the offset). The committed result of a failed ingest plus a successful
/// resume is bit-identical to one uninterrupted ingest of the whole stream
/// — batches commit atomically and the offset sits exactly past the last
/// committed batch. InvalidArgument when `resume_offset` is negative (the
/// original summary said "not resumable"); IoError when the stream cannot
/// seek there.
Status ResumeCsvIngest(std::istream& in, Relation* r,
                       const CsvOptions& options, uint64_t batch_rows,
                       int64_t resume_offset,
                       CsvIngestSummary* summary = nullptr);

/// Writes a relation as CSV (header + rows; dictionary values when
/// available, otherwise numeric codes).
Status WriteCsv(const Relation& r, std::ostream& out, char separator = ',');

/// Writes a relation to a file.
Status WriteCsvFile(const Relation& r, const std::string& path,
                    char separator = ',');

}  // namespace ajd

#endif  // AJD_IO_CSV_H_
