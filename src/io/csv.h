// CSV input/output for relations. All columns are dictionary-encoded
// strings; the first row may carry attribute names. Minimal quoting support
// (double quotes, embedded commas, doubled quotes).
#ifndef AJD_IO_CSV_H_
#define AJD_IO_CSV_H_

#include <istream>
#include <ostream>
#include <string>

#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// Options for CSV parsing.
struct CsvOptions {
  char separator = ',';
  bool has_header = true;   ///< First row holds attribute names.
  bool dedupe = true;       ///< Build a set (drop duplicate rows).
};

/// Parses a relation from a stream. Without a header, attributes are named
/// "col0".."col{k-1}". Ragged rows yield InvalidArgument.
Result<Relation> ReadCsv(std::istream& in, const CsvOptions& options = {});

/// Parses a relation from a file.
Result<Relation> ReadCsvFile(const std::string& path,
                             const CsvOptions& options = {});

/// Writes a relation as CSV (header + rows; dictionary values when
/// available, otherwise numeric codes).
Status WriteCsv(const Relation& r, std::ostream& out, char separator = ',');

/// Writes a relation to a file.
Status WriteCsvFile(const Relation& r, const std::string& path,
                    char separator = ',');

}  // namespace ajd

#endif  // AJD_IO_CSV_H_
