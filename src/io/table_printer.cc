#include "io/table_printer.h"

#include <algorithm>

#include "util/check.h"

namespace ajd {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  AJD_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(rule_len, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace ajd
