// Fixed-width console tables for the benchmark harness and examples.
#ifndef AJD_IO_TABLE_PRINTER_H_
#define AJD_IO_TABLE_PRINTER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace ajd {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; its width must match the header width.
  void AddRow(std::vector<std::string> cells);

  /// Renders headers, a rule, and all rows with right-padded columns.
  std::string Render() const;

  /// Number of data rows.
  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ajd

#endif  // AJD_IO_TABLE_PRINTER_H_
