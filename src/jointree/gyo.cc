#include "jointree/gyo.h"

#include <algorithm>

#include "util/check.h"

namespace ajd {

namespace {

// Number of active bags containing each attribute.
std::vector<uint32_t> AttrOccurrences(const std::vector<AttrSet>& bags,
                                      const std::vector<bool>& active) {
  std::vector<uint32_t> occ(kMaxAttrs, 0);
  for (uint32_t i = 0; i < bags.size(); ++i) {
    if (!active[i]) continue;
    bags[i].ForEach([&](uint32_t a) { ++occ[a]; });
  }
  return occ;
}

}  // namespace

Result<GyoResult> RunGyo(const std::vector<AttrSet>& bags) {
  if (bags.empty()) {
    return Status::InvalidArgument("GYO needs at least one bag");
  }
  const uint32_t m = static_cast<uint32_t>(bags.size());
  std::vector<bool> active(m, true);
  uint32_t num_active = m;
  std::vector<std::pair<uint32_t, uint32_t>> edges;  // (ear, witness)

  bool progress = true;
  while (num_active > 1 && progress) {
    progress = false;
    std::vector<uint32_t> occ = AttrOccurrences(bags, active);
    for (uint32_t i = 0; i < m && num_active > 1; ++i) {
      if (!active[i]) continue;
      // The attributes of bag i that also occur in some other active bag.
      AttrSet shared;
      bags[i].ForEach([&](uint32_t a) {
        if (occ[a] > 1) shared.Add(a);
      });
      // Bag i is an ear iff `shared` is contained in a single other active
      // bag (the witness). An all-exclusive bag (shared empty) is an ear
      // with any other active bag as witness.
      uint32_t witness = UINT32_MAX;
      for (uint32_t j = 0; j < m; ++j) {
        if (j == i || !active[j]) continue;
        if (shared.IsSubsetOf(bags[j])) {
          witness = j;
          break;
        }
      }
      if (witness == UINT32_MAX) continue;
      // Remove the ear.
      active[i] = false;
      --num_active;
      edges.emplace_back(i, witness);
      bags[i].ForEach([&](uint32_t a) { --occ[a]; });
      progress = true;
    }
  }

  GyoResult result;
  if (num_active > 1) {
    result.acyclic = false;
    for (uint32_t i = 0; i < m; ++i) {
      if (active[i]) result.residual.push_back(i);
    }
    return result;
  }

  result.acyclic = true;
  Result<JoinTree> tree = JoinTree::Make(bags, std::move(edges));
  AJD_CHECK_MSG(tree.ok(), "GYO built an invalid join tree: %s",
                tree.status().ToString().c_str());
  result.tree = std::move(tree).value();
  return result;
}

bool IsAcyclicSchema(const std::vector<AttrSet>& bags) {
  Result<GyoResult> r = RunGyo(bags);
  return r.ok() && r.value().acyclic;
}

Result<JoinTree> BuildJoinTree(const std::vector<AttrSet>& bags) {
  Result<GyoResult> r = RunGyo(bags);
  if (!r.ok()) return r.status();
  if (!r.value().acyclic) {
    return Status::FailedPrecondition("schema is cyclic");
  }
  return std::move(r.value().tree.value());
}

}  // namespace ajd
