#include "jointree/join_tree.h"

#include <algorithm>

#include "util/check.h"

namespace ajd {

Result<JoinTree> JoinTree::Make(
    std::vector<AttrSet> bags,
    std::vector<std::pair<uint32_t, uint32_t>> edges) {
  if (bags.empty()) {
    return Status::InvalidArgument("join tree needs at least one bag");
  }
  const uint32_t m = static_cast<uint32_t>(bags.size());
  if (edges.size() != m - 1) {
    return Status::InvalidArgument("a tree over " + std::to_string(m) +
                                   " nodes needs exactly " +
                                   std::to_string(m - 1) + " edges, got " +
                                   std::to_string(edges.size()));
  }
  std::vector<std::vector<uint32_t>> adj(m);
  for (auto& [u, v] : edges) {
    if (u >= m || v >= m) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (u == v) return Status::InvalidArgument("self-loop edge");
    if (u > v) std::swap(u, v);
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  // Connectivity check (m-1 edges + connected => tree).
  std::vector<bool> seen(m, false);
  std::vector<uint32_t> stack = {0};
  seen[0] = true;
  uint32_t visited = 1;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t w : adj[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  if (visited != m) {
    return Status::InvalidArgument("edges do not form a connected tree");
  }
  if (!SatisfiesRunningIntersection(bags, adj)) {
    return Status::InvalidArgument(
        "bags violate the running intersection property");
  }
  JoinTree t;
  t.bags_ = std::move(bags);
  t.adj_ = std::move(adj);
  t.edges_ = std::move(edges);
  for (AttrSet b : t.bags_) t.all_attrs_ = t.all_attrs_.Union(b);
  for (auto& nbrs : t.adj_) std::sort(nbrs.begin(), nbrs.end());
  return t;
}

Result<JoinTree> JoinTree::Path(std::vector<AttrSet> bags) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < bags.size(); ++i) edges.emplace_back(i - 1, i);
  return Make(std::move(bags), std::move(edges));
}

Result<JoinTree> JoinTree::FromMvdPartition(AttrSet x,
                                            std::vector<AttrSet> branches) {
  if (branches.empty()) {
    return Status::InvalidArgument("MVD needs at least one branch");
  }
  AttrSet seen = x;
  std::vector<AttrSet> bags;
  for (AttrSet y : branches) {
    if (!y.DisjointFrom(seen)) {
      return Status::InvalidArgument(
          "MVD branches must be pairwise disjoint and disjoint from X");
    }
    seen = seen.Union(y);
    bags.push_back(x.Union(y));
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i < bags.size(); ++i) edges.emplace_back(0, i);
  return Make(std::move(bags), std::move(edges));
}

bool JoinTree::SchemaIsReduced() const {
  for (uint32_t i = 0; i < NumNodes(); ++i) {
    for (uint32_t j = 0; j < NumNodes(); ++j) {
      if (i != j && bags_[i].IsSubsetOf(bags_[j])) return false;
    }
  }
  return true;
}

bool JoinTree::SatisfiesRunningIntersection(
    const std::vector<AttrSet>& bags,
    const std::vector<std::vector<uint32_t>>& adj) {
  AttrSet all;
  for (AttrSet b : bags) all = all.Union(b);
  // For each attribute, the nodes containing it must induce a connected
  // subtree: BFS restricted to nodes containing the attribute must reach
  // all of them from the first one.
  bool ok = true;
  all.ForEach([&](uint32_t attr) {
    if (!ok) return;
    std::vector<uint32_t> holders;
    for (uint32_t v = 0; v < bags.size(); ++v) {
      if (bags[v].Contains(attr)) holders.push_back(v);
    }
    if (holders.size() <= 1) return;
    std::vector<bool> seen(bags.size(), false);
    std::vector<uint32_t> stack = {holders[0]};
    seen[holders[0]] = true;
    size_t reached = 1;
    while (!stack.empty()) {
      uint32_t v = stack.back();
      stack.pop_back();
      for (uint32_t w : adj[v]) {
        if (!seen[w] && bags[w].Contains(attr)) {
          seen[w] = true;
          ++reached;
          stack.push_back(w);
        }
      }
    }
    if (reached != holders.size()) ok = false;
  });
  return ok;
}

DfsDecomposition JoinTree::Decompose(uint32_t root) const {
  AJD_CHECK(root < NumNodes());
  const uint32_t m = NumNodes();
  DfsDecomposition out;
  out.root = root;
  out.order.reserve(m);

  std::vector<uint32_t> parent(m, UINT32_MAX);
  std::vector<bool> seen(m, false);
  // Iterative DFS visiting children in ascending node-id order.
  std::vector<uint32_t> stack = {root};
  seen[root] = true;
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    out.order.push_back(v);
    // Push in descending order so that the smallest id pops first.
    std::vector<uint32_t> kids;
    for (uint32_t w : adj_[v]) {
      if (!seen[w]) kids.push_back(w);
    }
    std::sort(kids.begin(), kids.end(), std::greater<uint32_t>());
    for (uint32_t w : kids) {
      seen[w] = true;
      parent[w] = v;
      stack.push_back(w);
    }
  }
  AJD_CHECK(out.order.size() == m);

  // Subtree attribute unions, bottom-up over the DFS order.
  std::vector<AttrSet> subtree(m);
  for (uint32_t v = 0; v < m; ++v) subtree[v] = bags_[v];
  for (size_t i = m; i-- > 1;) {
    uint32_t v = out.order[i];
    subtree[parent[v]] = subtree[parent[v]].Union(subtree[v]);
  }

  // Suffix unions Omega_{i:m}: computed backwards over the order.
  std::vector<AttrSet> suffix(m);
  AttrSet acc;
  for (size_t i = m; i-- > 0;) {
    acc = acc.Union(bags_[out.order[i]]);
    suffix[i] = acc;
  }

  AttrSet prefix = bags_[root];
  out.steps.reserve(m - 1);
  for (size_t i = 1; i < m; ++i) {
    uint32_t v = out.order[i];
    DfsStep step;
    step.node = v;
    step.parent = parent[v];
    step.bag = bags_[v];
    step.delta = bags_[v].Intersect(bags_[parent[v]]);
    step.prefix = prefix;
    step.suffix = suffix[i];
    step.subtree = subtree[v];
    out.steps.push_back(step);
    prefix = prefix.Union(bags_[v]);
  }
  return out;
}

std::vector<Mvd> JoinTree::SupportMvds() const {
  // For each edge (u,v): removing it splits the node set into the component
  // of u and the component of v; the MVD sides are the attribute unions of
  // the two components.
  std::vector<Mvd> support;
  support.reserve(edges_.size());
  for (const auto& [u, v] : edges_) {
    // Attributes of the component containing v when edge (u,v) is removed.
    AttrSet side_v;
    std::vector<bool> seen(NumNodes(), false);
    std::vector<uint32_t> stack = {v};
    seen[v] = true;
    seen[u] = true;  // block traversal through u
    while (!stack.empty()) {
      uint32_t w = stack.back();
      stack.pop_back();
      side_v = side_v.Union(bags_[w]);
      for (uint32_t x : adj_[w]) {
        if (!seen[x]) {
          seen[x] = true;
          stack.push_back(x);
        }
      }
    }
    AttrSet side_u = AttrSet();
    for (uint32_t w = 0; w < NumNodes(); ++w) {
      if (!seen[w] || w == u) side_u = side_u.Union(bags_[w]);
    }
    Mvd mvd;
    mvd.lhs = bags_[u].Intersect(bags_[v]);
    mvd.side_a = side_u;
    mvd.side_b = side_v;
    support.push_back(mvd);
  }
  return support;
}

std::vector<Mvd> JoinTree::DfsMvds(uint32_t root) const {
  DfsDecomposition dec = Decompose(root);
  std::vector<Mvd> out;
  out.reserve(dec.steps.size());
  for (const DfsStep& s : dec.steps) {
    Mvd mvd;
    mvd.lhs = s.delta;
    mvd.side_a = s.prefix;
    mvd.side_b = s.suffix;
    out.push_back(mvd);
  }
  return out;
}

std::string JoinTree::ToString() const {
  std::string out = "JoinTree(bags:";
  for (uint32_t v = 0; v < NumNodes(); ++v) {
    out += " " + std::to_string(v) + "=" + bags_[v].ToString();
  }
  out += "; edges:";
  for (const auto& [u, v] : edges_) {
    out += " (" + std::to_string(u) + "," + std::to_string(v) + ")";
  }
  out += ")";
  return out;
}

}  // namespace ajd
