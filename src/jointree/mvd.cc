#include "jointree/mvd.h"

namespace ajd {

Mvd MakeMvd(AttrSet x, AttrSet y1, AttrSet y2) {
  Mvd mvd;
  mvd.lhs = x;
  mvd.side_a = x.Union(y1);
  mvd.side_b = x.Union(y2);
  return mvd;
}

}  // namespace ajd
