// GYO reduction (Graham / Yu-Ozsoyoglu): decides whether a schema (a set of
// attribute bags) is acyclic, and if so constructs a join tree for it.
//
// An "ear" is a bag whose attributes are each either exclusive to it or
// contained in a single witness bag. Repeatedly removing ears empties the
// schema iff it is acyclic; recording ear -> witness edges yields a join
// tree satisfying the running intersection property.
#ifndef AJD_JOINTREE_GYO_H_
#define AJD_JOINTREE_GYO_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "jointree/join_tree.h"
#include "relation/attr_set.h"
#include "util/status.h"

namespace ajd {

/// Outcome of a GYO reduction.
struct GyoResult {
  /// True iff the input schema is acyclic.
  bool acyclic = false;
  /// When acyclic: a join tree whose bags are exactly the input bags (same
  /// indexes). Unset otherwise.
  std::optional<JoinTree> tree;
  /// When cyclic: indexes of the bags remaining after exhaustive reduction
  /// (the cyclic core).
  std::vector<uint32_t> residual;
};

/// Runs GYO reduction on `bags`. Returns InvalidArgument for an empty
/// schema. Duplicate or contained bags are permitted (a contained bag is an
/// ear with its container as witness).
Result<GyoResult> RunGyo(const std::vector<AttrSet>& bags);

/// Convenience: true iff `bags` form an acyclic schema.
bool IsAcyclicSchema(const std::vector<AttrSet>& bags);

/// Convenience: join tree for an acyclic schema; FailedPrecondition if the
/// schema is cyclic.
Result<JoinTree> BuildJoinTree(const std::vector<AttrSet>& bags);

}  // namespace ajd

#endif  // AJD_JOINTREE_GYO_H_
