// Mvd: a multivalued dependency X ->> Y1 | Y2, represented by the two sides
// (each *including* the determinant X) as attribute sets.
//
// In this library MVDs arise as the support of a join tree: removing edge
// (u,v) splits the tree into components Tu, Tv, and the associated MVD is
// chi(u) cap chi(v) ->> chi(Tu) | chi(Tv)  (Section 2.1 of the paper).
#ifndef AJD_JOINTREE_MVD_H_
#define AJD_JOINTREE_MVD_H_

#include <string>
#include <vector>

#include "relation/attr_set.h"

namespace ajd {

/// A two-branch multivalued dependency over an attribute universe.
struct Mvd {
  /// The determinant X (always = side_a cap side_b for support MVDs).
  AttrSet lhs;
  /// First side, X u Y1.
  AttrSet side_a;
  /// Second side, X u Y2.
  AttrSet side_b;

  /// The full attribute universe covered, side_a u side_b.
  AttrSet Universe() const { return side_a.Union(side_b); }

  /// True iff the MVD is structurally well-formed: lhs is contained in both
  /// sides and neither side is contained in the other's complement trivially
  /// (both sides non-empty beyond lhs is not required; degenerate MVDs with
  /// an empty branch hold vacuously).
  bool WellFormed() const {
    return lhs.IsSubsetOf(side_a) && lhs.IsSubsetOf(side_b);
  }

  /// "{C} ->> {A}|{B}" rendering with attribute positions.
  std::string ToString() const {
    return lhs.ToString() + " ->> " + side_a.Minus(lhs).ToString() + "|" +
           side_b.Minus(lhs).ToString();
  }

  bool operator==(const Mvd& o) const {
    return lhs == o.lhs && side_a == o.side_a && side_b == o.side_b;
  }
};

/// Builds the MVD X ->> Y1 | Y2 from the determinant and the two (disjoint
/// from X) branches.
Mvd MakeMvd(AttrSet x, AttrSet y1, AttrSet y2);

}  // namespace ajd

#endif  // AJD_JOINTREE_MVD_H_
