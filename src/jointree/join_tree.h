// JoinTree (a.k.a. junction tree, Definition 2.1): an undirected tree whose
// nodes carry attribute-set bags satisfying the running intersection
// property. The bags form the acyclic schema S = {Omega_1, ..., Omega_m}.
//
// Provides the derived objects the paper works with:
//  * DFS enumerations u_1..u_m with separators Delta_i = chi(parent) cap
//    chi(u_i), prefix unions Omega_{1:i-1}, suffix unions Omega_{i:m}, and
//    subtree unions chi(T_i) (Section 2.3).
//  * The MVD support: one MVD per edge, chi(u) cap chi(v) ->> chi(Tu)|chi(Tv)
//    (Beeri et al., Section 2.1).
#ifndef AJD_JOINTREE_JOIN_TREE_H_
#define AJD_JOINTREE_JOIN_TREE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "jointree/mvd.h"
#include "relation/attr_set.h"
#include "util/status.h"

namespace ajd {

/// One step of a rooted DFS enumeration (positions 2..m in paper numbering).
struct DfsStep {
  uint32_t node = 0;     ///< Node id u_i.
  uint32_t parent = 0;   ///< Node id of parent(u_i).
  AttrSet bag;           ///< Omega_i = chi(u_i).
  AttrSet delta;         ///< Delta_i = chi(parent(u_i)) cap chi(u_i).
  AttrSet prefix;        ///< Omega_{1:i-1}, union of bags enumerated before.
  AttrSet suffix;        ///< Omega_{i:m}, union of bags from u_i onward.
  AttrSet subtree;       ///< chi(T_i), union of bags in the subtree of u_i.
};

/// A rooted DFS enumeration of a join tree plus the paper's per-step sets.
struct DfsDecomposition {
  uint32_t root = 0;
  std::vector<uint32_t> order;  ///< Node ids u_1..u_m (order[0] == root).
  std::vector<DfsStep> steps;   ///< Steps for u_2..u_m (size m-1).
};

/// An undirected tree of attribute bags satisfying running intersection.
class JoinTree {
 public:
  /// Validates and builds a join tree from bags and edges (node ids index
  /// `bags`). Requirements: at least one node; edges form a tree (connected,
  /// exactly m-1 edges, no self-loops/duplicates); the running intersection
  /// property holds. Bags are NOT required to be pairwise incomparable
  /// (GYO intermediate trees may have comparable bags), but
  /// SchemaIsReduced() reports whether they are.
  static Result<JoinTree> Make(std::vector<AttrSet> bags,
                               std::vector<std::pair<uint32_t, uint32_t>> edges);

  /// A path tree bag_0 - bag_1 - ... - bag_{k-1}.
  static Result<JoinTree> Path(std::vector<AttrSet> bags);

  /// A star tree with bags {X u Y_i} for the MVD X ->> Y1 | ... | Yk,
  /// centered on the first bag. The Y_i must be disjoint and disjoint
  /// from X; k >= 1.
  static Result<JoinTree> FromMvdPartition(AttrSet x,
                                           std::vector<AttrSet> branches);

  /// Number of nodes m.
  uint32_t NumNodes() const { return static_cast<uint32_t>(bags_.size()); }

  /// Bag of node `v`.
  AttrSet bag(uint32_t v) const { return bags_[v]; }

  /// All bags, indexed by node id (the acyclic schema S, possibly with
  /// comparable bags).
  const std::vector<AttrSet>& bags() const { return bags_; }

  /// Neighbors of node `v`.
  const std::vector<uint32_t>& Neighbors(uint32_t v) const {
    return adj_[v];
  }

  /// The edges as (u, v) pairs with u < v.
  const std::vector<std::pair<uint32_t, uint32_t>>& Edges() const {
    return edges_;
  }

  /// Union of all bags, chi(T) = Omega.
  AttrSet AllAttrs() const { return all_attrs_; }

  /// True iff no bag is contained in another (the paper's schema
  /// requirement Omega_i !subset Omega_j).
  bool SchemaIsReduced() const;

  /// Rooted DFS enumeration with the paper's per-step attribute sets.
  /// Children are visited in ascending node-id order (deterministic).
  DfsDecomposition Decompose(uint32_t root = 0) const;

  /// The MVD support (Section 2.1): one MVD per edge (u,v), namely
  /// chi(u) cap chi(v) ->> chi(Tu) | chi(Tv). Size m-1.
  std::vector<Mvd> SupportMvds() const;

  /// The DFS-order MVDs of Theorem 2.2 / Eq. (9): for i in [2, m],
  /// Delta_i ->> Omega_{1:i-1} | Omega_{i:m}.
  std::vector<Mvd> DfsMvds(uint32_t root = 0) const;

  /// Verifies the running intersection property (always true for a
  /// successfully built tree; exposed for testing foreign constructions).
  static bool SatisfiesRunningIntersection(
      const std::vector<AttrSet>& bags,
      const std::vector<std::vector<uint32_t>>& adj);

  /// "bags: ...; edges: ..." rendering.
  std::string ToString() const;

 private:
  JoinTree() = default;

  std::vector<AttrSet> bags_;
  std::vector<std::vector<uint32_t>> adj_;
  std::vector<std::pair<uint32_t, uint32_t>> edges_;
  AttrSet all_attrs_;
};

}  // namespace ajd

#endif  // AJD_JOINTREE_JOIN_TREE_H_
