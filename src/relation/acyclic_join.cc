#include "relation/acyclic_join.h"

#include <algorithm>
#include <cmath>

#include "relation/full_reducer.h"
#include "relation/ops.h"
#include "relation/row_hash.h"
#include "util/math.h"

namespace ajd {

namespace {

// Distinct projection of r onto the (ascending) positions of `attrs`,
// held as a TupleCounter (counts are 1 per distinct tuple here).
TupleCounter DistinctProjection(const Relation& r, AttrSet attrs) {
  std::vector<uint32_t> positions = attrs.ToIndices();
  TupleCounter counter(positions.size(), r.NumRows());
  std::vector<uint32_t> key(positions.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    const uint32_t* row = r.Row(i);
    for (size_t k = 0; k < positions.size(); ++k) key[k] = row[positions[k]];
    // Count each distinct projected tuple once.
    if (counter.Find(key.data()) == UINT32_MAX) counter.Add(key.data());
  }
  return counter;
}

// Positions (within the ascending index list of `bag`) of the attributes in
// `subset` (a subset of bag), in ascending attribute order.
std::vector<uint32_t> LocalPositions(AttrSet bag, AttrSet subset) {
  AJD_CHECK(subset.IsSubsetOf(bag));
  std::vector<uint32_t> bag_idx = bag.ToIndices();
  std::vector<uint32_t> out;
  out.reserve(subset.Count());
  for (uint32_t i = 0; i < bag_idx.size(); ++i) {
    if (subset.Contains(bag_idx[i])) out.push_back(i);
  }
  return out;
}

// A message from a child node to its parent: for each separator tuple, the
// total weight (number of join results in the child's subtree consistent
// with that separator value).
struct Message {
  // Separator width 0 means the message is a scalar (stored in
  // scalar_approx / scalar_exact).
  TupleCounter keys{1};
  std::vector<double> approx;
  std::vector<uint64_t> exact;
  bool exact_valid = true;
  double scalar_approx = 0.0;
  std::optional<uint64_t> scalar_exact = 0;  // nullopt once overflowed
  size_t sep_width = 0;
};

}  // namespace

AcyclicJoinCount CountAcyclicJoin(const Relation& r, const JoinTree& tree) {
  AJD_CHECK(tree.AllAttrs().IsSubsetOf(r.schema().AllAttrs()));
  DfsDecomposition dec = tree.Decompose(0);
  const uint32_t m = tree.NumNodes();

  // Projections of r onto each bag.
  std::vector<TupleCounter> proj;
  proj.reserve(m);
  for (uint32_t v = 0; v < m; ++v) {
    proj.push_back(DistinctProjection(r, tree.bag(v)));
  }

  // Children of each node under the DFS rooting.
  std::vector<std::vector<uint32_t>> children(m);
  std::vector<AttrSet> sep(m);  // separator with parent, for non-roots
  for (const DfsStep& s : dec.steps) {
    children[s.parent].push_back(s.node);
    sep[s.node] = s.delta;
  }

  // Process nodes in reverse DFS order (leaves first).
  std::vector<Message> messages(m);
  for (size_t oi = dec.order.size(); oi-- > 0;) {
    uint32_t v = dec.order[oi];
    AttrSet bag = tree.bag(v);
    std::vector<uint32_t> bag_positions = bag.ToIndices();

    // For each child, where its separator lives inside this bag's tuple.
    struct ChildRef {
      const Message* msg;
      std::vector<uint32_t> local;  // positions within v's tuple
    };
    std::vector<ChildRef> child_refs;
    child_refs.reserve(children[v].size());
    for (uint32_t c : children[v]) {
      child_refs.push_back({&messages[c], LocalPositions(bag, sep[c])});
    }

    const bool is_root = (v == dec.order[0]);
    AttrSet up_sep = is_root ? AttrSet() : sep[v];
    std::vector<uint32_t> up_local = LocalPositions(bag, up_sep);

    Message msg;
    msg.sep_width = up_local.size();
    msg.keys = TupleCounter(std::max<size_t>(msg.sep_width, 1),
                            proj[v].NumDistinct());
    double total_approx = 0.0;
    uint64_t total_exact = 0;
    bool total_exact_valid = true;

    std::vector<uint32_t> child_key;
    std::vector<uint32_t> up_key(std::max<size_t>(msg.sep_width, 1));
    for (uint32_t t = 0; t < proj[v].NumDistinct(); ++t) {
      const uint32_t* tuple = proj[v].TupleAt(t);
      double w_approx = 1.0;
      uint64_t w_exact = 1;
      bool w_exact_valid = true;
      bool dangling = false;
      for (const ChildRef& cr : child_refs) {
        double child_approx;
        std::optional<uint64_t> child_exact;
        if (cr.msg->sep_width == 0) {
          child_approx = cr.msg->scalar_approx;
          child_exact = cr.msg->scalar_exact;
        } else {
          child_key.resize(cr.local.size());
          for (size_t k = 0; k < cr.local.size(); ++k) {
            child_key[k] = tuple[cr.local[k]];
          }
          uint32_t idx = cr.msg->keys.Find(child_key.data());
          if (idx == UINT32_MAX) {
            dangling = true;
            break;
          }
          child_approx = cr.msg->approx[idx];
          if (cr.msg->exact_valid) child_exact = cr.msg->exact[idx];
        }
        w_approx *= child_approx;
        if (w_exact_valid && child_exact.has_value()) {
          auto prod = CheckedMul(w_exact, *child_exact);
          if (prod) {
            w_exact = *prod;
          } else {
            w_exact_valid = false;
          }
        } else {
          w_exact_valid = false;
        }
      }
      if (dangling) continue;

      if (is_root) {
        total_approx += w_approx;
        if (total_exact_valid && w_exact_valid) {
          auto sum = CheckedAdd(total_exact, w_exact);
          if (sum) {
            total_exact = *sum;
          } else {
            total_exact_valid = false;
          }
        } else {
          total_exact_valid = false;
        }
        continue;
      }

      if (msg.sep_width == 0) {
        msg.scalar_approx += w_approx;
        if (msg.scalar_exact.has_value() && w_exact_valid) {
          auto sum = CheckedAdd(*msg.scalar_exact, w_exact);
          msg.scalar_exact = sum;  // nullopt on overflow
        } else {
          msg.scalar_exact = std::nullopt;
        }
        continue;
      }

      for (size_t k = 0; k < up_local.size(); ++k) {
        up_key[k] = tuple[up_local[k]];
      }
      uint32_t idx = msg.keys.Find(up_key.data());
      if (idx == UINT32_MAX) {
        idx = msg.keys.Add(up_key.data());
        msg.approx.push_back(0.0);
        msg.exact.push_back(0);
      }
      msg.approx[idx] += w_approx;
      if (msg.exact_valid && w_exact_valid) {
        auto sum = CheckedAdd(msg.exact[idx], w_exact);
        if (sum) {
          msg.exact[idx] = *sum;
        } else {
          msg.exact_valid = false;
        }
      } else {
        msg.exact_valid = false;
      }
    }

    if (is_root) {
      AcyclicJoinCount out;
      out.approx = total_approx;
      if (total_exact_valid) out.exact = total_exact;
      return out;
    }
    if (msg.sep_width == 0 && !msg.scalar_exact.has_value()) {
      msg.exact_valid = false;
    }
    messages[v] = std::move(msg);
  }
  AJD_CHECK_MSG(false, "unreachable: root not processed");
  return {};
}

Result<Relation> MaterializeAcyclicJoin(const Relation& r,
                                        const JoinTree& tree) {
  AJD_CHECK(tree.AllAttrs().IsSubsetOf(r.schema().AllAttrs()));
  // Yannakakis: full-reduce the projections first so that every
  // intermediate join result extends to a final result (no transient
  // blow-up beyond the output size), then fold joins in DFS order.
  Result<ReducedProjections> reduced = FullReduce(r, tree);
  if (!reduced.ok()) return reduced.status();
  DfsDecomposition dec = tree.Decompose(0);
  Relation acc = std::move(reduced.value().per_node[dec.order[0]]);
  for (size_t i = 1; i < dec.order.size(); ++i) {
    Result<Relation> joined =
        NaturalJoin(acc, reduced.value().per_node[dec.order[i]]);
    if (!joined.ok()) return joined.status();
    acc = std::move(joined).value();
  }
  // Reorder columns to r's attribute order restricted to chi(T).
  std::vector<std::string> names = r.schema().NamesOf(tree.AllAttrs());
  return ReorderColumns(acc, names);
}

Result<Relation> SpuriousTuples(const Relation& r, const JoinTree& tree) {
  if (tree.AllAttrs() != r.schema().AllAttrs()) {
    return Status::InvalidArgument(
        "SpuriousTuples requires the tree to cover all attributes");
  }
  Result<Relation> joined = MaterializeAcyclicJoin(r, tree);
  if (!joined.ok()) return joined.status();
  return Difference(joined.value(), r);
}

Result<Relation> ReorderColumns(const Relation& r,
                                const std::vector<std::string>& names) {
  std::vector<uint32_t> positions;
  std::vector<Attribute> attrs;
  positions.reserve(names.size());
  for (const std::string& n : names) {
    auto pos = r.schema().Find(n);
    if (!pos) return Status::NotFound("no attribute named '" + n + "'");
    positions.push_back(*pos);
    attrs.push_back(r.schema().attr(*pos));
  }
  Result<Schema> schema = Schema::Make(std::move(attrs));
  if (!schema.ok()) return schema.status();
  RelationBuilder b(std::move(schema).value());
  b.Reserve(r.NumRows());
  std::vector<uint32_t> row(positions.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    const uint32_t* src = r.Row(i);
    for (size_t k = 0; k < positions.size(); ++k) row[k] = src[positions[k]];
    b.AddRow(row);
  }
  Relation out = std::move(b).Build(/*dedupe=*/false);
  for (size_t k = 0; k < positions.size(); ++k) {
    const Dictionary* d = r.dict(positions[k]);
    if (d != nullptr) out.SetDict(static_cast<uint32_t>(k), *d);
  }
  return out;
}

}  // namespace ajd
