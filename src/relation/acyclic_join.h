// The acyclic join of a relation's bag projections, R' = join_i R[Omega_i],
// which defines the loss rho(R, S) = (|R'| - |R|) / |R| (Eq. 1).
//
// Two evaluation modes:
//  * CountAcyclicJoin: |R'| WITHOUT materializing, via Yannakakis-style
//    count propagation over the join tree (messages from leaves to root).
//    Linear in the sizes of the projections; never enumerates R'.
//  * MaterializeAcyclicJoin: R' itself, by folding hash joins in DFS order.
//    Exponential output in the worst case; intended for tests, spurious-
//    tuple extraction, and small instances.
#ifndef AJD_RELATION_ACYCLIC_JOIN_H_
#define AJD_RELATION_ACYCLIC_JOIN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "jointree/join_tree.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// Size of an acyclic join, tracked both in floating point (always valid;
/// exact below 2^53) and as uint64 when it does not overflow.
struct AcyclicJoinCount {
  /// |R'| as a double. Exact when |R'| < 2^53.
  double approx = 0.0;
  /// |R'| as an exact integer, when representable in uint64.
  std::optional<uint64_t> exact;
};

/// Computes |join_i R[Omega_i]| for the bags of `tree` by count propagation.
/// Requires tree's attributes to be a subset of r's attributes. The bags of
/// the tree need not cover all of r's attributes: the join (and hence the
/// count) is over chi(T) only.
AcyclicJoinCount CountAcyclicJoin(const Relation& r, const JoinTree& tree);

/// Materializes R' = join_i R[Omega_i], with columns reordered to r's
/// attribute order restricted to chi(T). Intended for small instances.
Result<Relation> MaterializeAcyclicJoin(const Relation& r,
                                        const JoinTree& tree);

/// The spurious tuples R' \ R (requires chi(T) == all attributes of r).
/// Intended for small instances (materializes R').
Result<Relation> SpuriousTuples(const Relation& r, const JoinTree& tree);

/// Reorders/selects columns of `r` to the named attribute order `names`
/// (each name must exist in r). Rows are preserved (no dedup).
Result<Relation> ReorderColumns(const Relation& r,
                                const std::vector<std::string>& names);

}  // namespace ajd

#endif  // AJD_RELATION_ACYCLIC_JOIN_H_
