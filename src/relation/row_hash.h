// TupleCounter: an open-addressing hash table over fixed-arity uint32 tuples.
//
// This is the workhorse behind projections, group-bys, hash joins, and
// empirical-distribution counting. Distinct tuples are stored contiguously in
// an arena; each entry carries an occurrence count and an optional postings
// payload managed by the caller via the returned dense index.
#ifndef AJD_RELATION_ROW_HASH_H_
#define AJD_RELATION_ROW_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ajd {

/// Mixes a 64-bit value (splitmix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hashes `arity` uint32 words.
inline uint64_t HashTuple(const uint32_t* tuple, size_t arity) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (arity * 0xff51afd7ed558ccdULL);
  size_t i = 0;
  for (; i + 2 <= arity; i += 2) {
    uint64_t w = static_cast<uint64_t>(tuple[i]) |
                 (static_cast<uint64_t>(tuple[i + 1]) << 32);
    h = Mix64(h ^ w);
  }
  if (i < arity) h = Mix64(h ^ tuple[i]);
  return h;
}

/// Counts occurrences of fixed-arity uint32 tuples and assigns each distinct
/// tuple a dense index in insertion order.
class TupleCounter {
 public:
  /// Creates a counter for tuples of `arity` words, pre-sized for about
  /// `expected` distinct tuples.
  explicit TupleCounter(size_t arity, size_t expected = 16)
      : arity_(arity) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_.assign(cap, kEmpty);
  }

  /// Number of uint32 words per tuple.
  size_t arity() const { return arity_; }

  /// Number of distinct tuples inserted so far.
  size_t NumDistinct() const { return counts_.size(); }

  /// Total count over all tuples.
  uint64_t TotalCount() const { return total_; }

  /// Inserts one occurrence of `tuple` (arity() words); returns its dense
  /// index (stable across calls).
  uint32_t Add(const uint32_t* tuple) { return AddWeighted(tuple, 1); }

  /// Inserts `weight` occurrences of `tuple`; returns its dense index.
  uint32_t AddWeighted(const uint32_t* tuple, uint64_t weight) {
    if (counts_.size() * 2 >= slots_.size()) Grow();
    uint64_t h = HashTuple(tuple, arity_);
    size_t mask = slots_.size() - 1;
    size_t pos = static_cast<size_t>(h) & mask;
    while (true) {
      uint32_t slot = slots_[pos];
      if (slot == kEmpty) {
        uint32_t idx = static_cast<uint32_t>(counts_.size());
        slots_[pos] = idx;
        arena_.insert(arena_.end(), tuple, tuple + arity_);
        counts_.push_back(weight);
        total_ += weight;
        return idx;
      }
      if (Equals(slot, tuple)) {
        counts_[slot] += weight;
        total_ += weight;
        return slot;
      }
      pos = (pos + 1) & mask;
    }
  }

  /// Looks up `tuple`; returns its dense index or UINT32_MAX if absent.
  uint32_t Find(const uint32_t* tuple) const {
    uint64_t h = HashTuple(tuple, arity_);
    size_t mask = slots_.size() - 1;
    size_t pos = static_cast<size_t>(h) & mask;
    while (true) {
      uint32_t slot = slots_[pos];
      if (slot == kEmpty) return UINT32_MAX;
      if (Equals(slot, tuple)) return slot;
      pos = (pos + 1) & mask;
    }
  }

  /// The distinct tuple with dense index `idx` (arity() words).
  const uint32_t* TupleAt(uint32_t idx) const {
    AJD_CHECK(idx < counts_.size());
    return arena_.data() + static_cast<size_t>(idx) * arity_;
  }

  /// Occurrence count of the tuple with dense index `idx`.
  uint64_t CountAt(uint32_t idx) const {
    AJD_CHECK(idx < counts_.size());
    return counts_[idx];
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;

  bool Equals(uint32_t idx, const uint32_t* tuple) const {
    const uint32_t* stored = arena_.data() + static_cast<size_t>(idx) * arity_;
    return std::memcmp(stored, tuple, arity_ * sizeof(uint32_t)) == 0;
  }

  void Grow() {
    std::vector<uint32_t> fresh(slots_.size() * 2, kEmpty);
    size_t mask = fresh.size() - 1;
    for (uint32_t idx = 0; idx < counts_.size(); ++idx) {
      const uint32_t* t = arena_.data() + static_cast<size_t>(idx) * arity_;
      size_t pos = static_cast<size_t>(HashTuple(t, arity_)) & mask;
      while (fresh[pos] != kEmpty) pos = (pos + 1) & mask;
      fresh[pos] = idx;
    }
    slots_ = std::move(fresh);
  }

  size_t arity_;
  std::vector<uint32_t> slots_;   // open-addressing table of dense indexes
  std::vector<uint32_t> arena_;   // distinct tuples, arity_ words each
  std::vector<uint64_t> counts_;  // per-distinct-tuple occurrence counts
  uint64_t total_ = 0;
};

}  // namespace ajd

#endif  // AJD_RELATION_ROW_HASH_H_
