// Yannakakis' full reducer (VLDB 1981, the paper's reference [26]): a
// two-pass semijoin program over a join tree that removes every dangling
// tuple from the bag projections. After reduction, each remaining tuple of
// each projection participates in at least one result of the acyclic join,
// and the join can be enumerated with no intermediate blow-up.
//
// In this library the reducer serves two roles: it is the substrate that
// makes "acyclic schemas enable efficient query evaluation" concrete, and
// it powers the factorized-storage examples (reduced projections are the
// minimal lossless factorized representation of R' restricted to R's
// projections).
#ifndef AJD_RELATION_FULL_REDUCER_H_
#define AJD_RELATION_FULL_REDUCER_H_

#include <cstdint>
#include <vector>

#include "jointree/join_tree.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// The reduced projections, indexed by tree node id.
struct ReducedProjections {
  std::vector<Relation> per_node;
  /// Tuples removed per node by the semijoin passes (diagnostics).
  std::vector<uint64_t> removed;
  /// Total removed across nodes.
  uint64_t total_removed = 0;
};

/// Projects `r` onto every bag of `tree` and runs the full reducer
/// (leaf-to-root semijoins, then root-to-leaf semijoins). Requires the
/// tree's attributes to be a subset of r's.
///
/// Guarantees, verified by the test suite:
///  * joining the reduced projections yields exactly the acyclic join of
///    the unreduced projections (no result is lost);
///  * every tuple of every reduced projection extends to at least one full
///    join result (global consistency).
Result<ReducedProjections> FullReduce(const Relation& r,
                                      const JoinTree& tree);

/// Runs the full reducer over externally supplied per-node relations (one
/// per bag, matching the tree's bags by attribute NAME). Use this when the
/// projections are stored separately (factorized storage) rather than
/// derived from a universal relation.
Result<ReducedProjections> FullReduceRelations(
    std::vector<Relation> per_node, const JoinTree& tree);

}  // namespace ajd

#endif  // AJD_RELATION_FULL_REDUCER_H_
