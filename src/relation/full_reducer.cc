#include "relation/full_reducer.h"

#include "relation/ops.h"

namespace ajd {

namespace {

// Semijoin-reduces node `v` against node `w` in place; returns the number
// of tuples removed from v.
Result<uint64_t> ReduceAgainst(std::vector<Relation>* per_node, uint32_t v,
                               uint32_t w) {
  uint64_t before = (*per_node)[v].NumRows();
  Result<Relation> reduced = SemiJoin((*per_node)[v], (*per_node)[w]);
  if (!reduced.ok()) return reduced.status();
  (*per_node)[v] = std::move(reduced).value();
  return before - (*per_node)[v].NumRows();
}

}  // namespace

Result<ReducedProjections> FullReduce(const Relation& r,
                                      const JoinTree& tree) {
  if (!tree.AllAttrs().IsSubsetOf(r.schema().AllAttrs())) {
    return Status::InvalidArgument(
        "join tree references attributes outside the relation");
  }
  std::vector<Relation> per_node;
  per_node.reserve(tree.NumNodes());
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    per_node.push_back(Project(r, tree.bag(v)));
  }
  return FullReduceRelations(std::move(per_node), tree);
}

Result<ReducedProjections> FullReduceRelations(
    std::vector<Relation> per_node, const JoinTree& tree) {
  if (per_node.size() != tree.NumNodes()) {
    return Status::InvalidArgument(
        "need exactly one relation per tree node");
  }
  ReducedProjections out;
  out.removed.assign(tree.NumNodes(), 0);

  DfsDecomposition dec = tree.Decompose(0);

  // Pass 1 (leaf to root): each node is semijoin-reduced against its
  // children, in reverse DFS order, so parents see fully reduced subtrees.
  for (size_t i = dec.order.size(); i-- > 1;) {
    uint32_t v = dec.order[i];
    uint32_t p = dec.steps[i - 1].parent;
    Result<uint64_t> removed = ReduceAgainst(&per_node, p, v);
    if (!removed.ok()) return removed.status();
    out.removed[p] += removed.value();
  }

  // Pass 2 (root to leaf): each node is reduced against its parent, in DFS
  // order, propagating global consistency downward.
  for (size_t i = 1; i < dec.order.size(); ++i) {
    uint32_t v = dec.order[i];
    uint32_t p = dec.steps[i - 1].parent;
    Result<uint64_t> removed = ReduceAgainst(&per_node, v, p);
    if (!removed.ok()) return removed.status();
    out.removed[v] += removed.value();
  }

  for (uint64_t c : out.removed) out.total_removed += c;
  out.per_node = std::move(per_node);
  return out;
}

}  // namespace ajd
