// AttrSet: a set of attribute positions represented as a 64-bit bitmask.
//
// Attribute positions index into a Schema (relation/schema.h). The 64-attr
// capacity matches the scale of schema-design workloads (the paper's schemas
// have m <= |Omega| <= 64 attributes by a wide margin).
#ifndef AJD_RELATION_ATTR_SET_H_
#define AJD_RELATION_ATTR_SET_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace ajd {

/// Maximum number of attributes an AttrSet can hold.
inline constexpr uint32_t kMaxAttrs = 64;

/// A set of attribute positions (0..63) backed by a single uint64 bitmask.
/// Value type: cheap to copy, totally ordered (by mask) for use in maps.
class AttrSet {
 public:
  /// The empty set.
  constexpr AttrSet() : mask_(0) {}

  /// The set containing exactly the given positions.
  AttrSet(std::initializer_list<uint32_t> positions) : mask_(0) {
    for (uint32_t p : positions) Add(p);
  }

  /// Builds a set from a raw bitmask.
  static constexpr AttrSet FromMask(uint64_t mask) { return AttrSet(mask); }

  /// The singleton {pos}.
  static AttrSet Singleton(uint32_t pos) {
    AJD_CHECK(pos < kMaxAttrs);
    return AttrSet(uint64_t{1} << pos);
  }

  /// The set {0, 1, ..., n-1}.
  static AttrSet Range(uint32_t n) {
    AJD_CHECK(n <= kMaxAttrs);
    return AttrSet(n == kMaxAttrs ? ~uint64_t{0} : (uint64_t{1} << n) - 1);
  }

  /// The set containing the listed positions.
  static AttrSet FromIndices(const std::vector<uint32_t>& positions) {
    AttrSet s;
    for (uint32_t p : positions) s.Add(p);
    return s;
  }

  /// Raw bitmask.
  constexpr uint64_t mask() const { return mask_; }

  /// Number of attributes in the set.
  uint32_t Count() const {
    return static_cast<uint32_t>(__builtin_popcountll(mask_));
  }

  /// True iff the set is empty.
  constexpr bool Empty() const { return mask_ == 0; }

  /// True iff `pos` is in the set.
  bool Contains(uint32_t pos) const {
    AJD_CHECK(pos < kMaxAttrs);
    return (mask_ >> pos) & 1;
  }

  /// Adds `pos` to the set.
  void Add(uint32_t pos) {
    AJD_CHECK(pos < kMaxAttrs);
    mask_ |= uint64_t{1} << pos;
  }

  /// Removes `pos` from the set (no-op if absent).
  void Remove(uint32_t pos) {
    AJD_CHECK(pos < kMaxAttrs);
    mask_ &= ~(uint64_t{1} << pos);
  }

  /// True iff this is a subset of `other` (improper subsets allowed).
  constexpr bool IsSubsetOf(AttrSet other) const {
    return (mask_ & ~other.mask_) == 0;
  }

  /// True iff the two sets share no attribute.
  constexpr bool DisjointFrom(AttrSet other) const {
    return (mask_ & other.mask_) == 0;
  }

  /// Set union.
  constexpr AttrSet Union(AttrSet other) const {
    return AttrSet(mask_ | other.mask_);
  }

  /// Set intersection.
  constexpr AttrSet Intersect(AttrSet other) const {
    return AttrSet(mask_ & other.mask_);
  }

  /// Set difference (this \ other).
  constexpr AttrSet Minus(AttrSet other) const {
    return AttrSet(mask_ & ~other.mask_);
  }

  /// The positions in ascending order.
  std::vector<uint32_t> ToIndices() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    uint64_t m = mask_;
    while (m != 0) {
      uint32_t pos = static_cast<uint32_t>(__builtin_ctzll(m));
      out.push_back(pos);
      m &= m - 1;
    }
    return out;
  }

  /// Calls `fn(pos)` for each position in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t m = mask_;
    while (m != 0) {
      fn(static_cast<uint32_t>(__builtin_ctzll(m)));
      m &= m - 1;
    }
  }

  /// The lowest position; set must be non-empty.
  uint32_t First() const {
    AJD_CHECK(mask_ != 0);
    return static_cast<uint32_t>(__builtin_ctzll(mask_));
  }

  /// "{0,2,5}" style rendering (positions).
  std::string ToString() const;

  friend constexpr bool operator==(AttrSet a, AttrSet b) {
    return a.mask_ == b.mask_;
  }
  friend constexpr bool operator!=(AttrSet a, AttrSet b) {
    return a.mask_ != b.mask_;
  }
  friend constexpr bool operator<(AttrSet a, AttrSet b) {
    return a.mask_ < b.mask_;
  }

 private:
  explicit constexpr AttrSet(uint64_t mask) : mask_(mask) {}

  uint64_t mask_;
};

/// Hash functor for AttrSet (for unordered containers).
struct AttrSetHash {
  size_t operator()(AttrSet s) const {
    uint64_t x = s.mask();
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

/// Enumerates all subsets of `universe` of size exactly `k`, invoking
/// `fn(subset)`. Intended for small universes (miner separator search).
template <typename Fn>
void ForEachSubsetOfSize(AttrSet universe, uint32_t k, Fn&& fn) {
  std::vector<uint32_t> idx = universe.ToIndices();
  if (k > idx.size()) return;
  std::vector<uint32_t> pick(k);
  // Standard lexicographic combination enumeration.
  for (uint32_t i = 0; i < k; ++i) pick[i] = i;
  while (true) {
    AttrSet s;
    for (uint32_t i = 0; i < k; ++i) s.Add(idx[pick[i]]);
    fn(s);
    if (k == 0) return;
    // Advance.
    int32_t i = static_cast<int32_t>(k) - 1;
    while (i >= 0 && pick[i] == idx.size() - k + static_cast<uint32_t>(i)) {
      --i;
    }
    if (i < 0) return;
    ++pick[i];
    for (uint32_t j = static_cast<uint32_t>(i) + 1; j < k; ++j) {
      pick[j] = pick[j - 1] + 1;
    }
  }
}

}  // namespace ajd

#endif  // AJD_RELATION_ATTR_SET_H_
