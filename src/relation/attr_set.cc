#include "relation/attr_set.h"

namespace ajd {

std::string AttrSet::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEach([&](uint32_t pos) {
    if (!first) out += ",";
    first = false;
    out += std::to_string(pos);
  });
  out += "}";
  return out;
}

}  // namespace ajd
