// Schema: the ordered attribute header of a relation (names + domain sizes).
//
// Attribute *positions* (0-based indexes into a Schema) are what AttrSet
// holds; names exist for I/O and natural joins across relations.
#ifndef AJD_RELATION_SCHEMA_H_
#define AJD_RELATION_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/attr_set.h"
#include "util/status.h"

namespace ajd {

/// One attribute: a name and the size of its active domain.
///
/// `domain_size` is the number of distinct value codes this attribute may
/// take (values are codes in [0, domain_size)). For data loaded from files
/// the dictionary defines the codes; for synthetic domains [d] the codes are
/// the values themselves.
struct Attribute {
  std::string name;
  uint64_t domain_size = 0;
};

/// An ordered list of attributes with unique names.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from attributes; returns InvalidArgument on duplicate
  /// names, empty names, or more than kMaxAttrs attributes.
  static Result<Schema> Make(std::vector<Attribute> attrs);

  /// Convenience: attributes named from `names`, all with `domain_size`.
  static Result<Schema> MakeUniform(const std::vector<std::string>& names,
                                    uint64_t domain_size);

  /// Convenience for synthetic experiments: n attributes "X0".."X{n-1}"
  /// with the given per-attribute domain sizes.
  static Result<Schema> MakeSynthetic(const std::vector<uint64_t>& dims);

  /// Number of attributes.
  uint32_t size() const { return static_cast<uint32_t>(attrs_.size()); }

  /// The attribute at `pos`.
  const Attribute& attr(uint32_t pos) const { return attrs_[pos]; }

  /// Position of the attribute named `name`, if present.
  std::optional<uint32_t> Find(const std::string& name) const;

  /// Position of `name`; aborts if absent (for tests/examples where the
  /// name is known statically).
  uint32_t PositionOf(const std::string& name) const;

  /// The set of all positions, {0..size-1}.
  AttrSet AllAttrs() const { return AttrSet::Range(size()); }

  /// AttrSet of the named attributes; NotFound if any is missing.
  Result<AttrSet> SetOf(const std::vector<std::string>& names) const;

  /// Product of domain sizes over `attrs`, or nullopt on uint64 overflow.
  std::optional<uint64_t> DomainProduct(AttrSet attrs) const;

  /// Names of the attributes in `attrs`, ascending by position.
  std::vector<std::string> NamesOf(AttrSet attrs) const;

  /// Grows attribute `pos`'s domain to at least `size`.
  void EnsureDomainSize(uint32_t pos, uint64_t size);

  /// "name:domain_size, ..." rendering.
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace ajd

#endif  // AJD_RELATION_SCHEMA_H_
