// Relational-algebra operators over Relation: projection, selection,
// natural join, semijoin, and difference. These are exactly the operators
// the paper's loss definition (Eq. 1) is built from.
#ifndef AJD_RELATION_OPS_H_
#define AJD_RELATION_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "relation/attr_set.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// Projection with set semantics: Pi_attrs(r) = distinct rows of r restricted
/// to `attrs` (ascending position order). `attrs` must be a non-empty subset
/// of r's attributes.
Relation Project(const Relation& r, AttrSet attrs);

/// Number of distinct tuples in Pi_attrs(r) without materializing.
uint64_t CountDistinct(const Relation& r, AttrSet attrs);

/// Selection: rows where attribute `pos` equals `value`.
Relation Select(const Relation& r, uint32_t pos, uint32_t value);

/// Selection by arbitrary predicate over the raw row.
Relation SelectWhere(const Relation& r,
                     const std::function<bool(const uint32_t*)>& pred);

/// Natural join: matches attributes *by name* across the two schemas. The
/// output schema is left's attributes followed by right's non-shared
/// attributes; domain sizes are merged. Dictionary-encoded inputs must use
/// consistent dictionaries (joins in this library are over projections of a
/// single universal relation, so this holds by construction); a shared
/// attribute with mismatched dictionaries yields InvalidArgument.
Result<Relation> NaturalJoin(const Relation& left, const Relation& right);

/// Size of NaturalJoin(left, right) without materializing the output.
Result<uint64_t> NaturalJoinSize(const Relation& left, const Relation& right);

/// Semijoin: rows of `left` that have a matching row in `right` on the
/// shared (by-name) attributes.
Result<Relation> SemiJoin(const Relation& left, const Relation& right);

/// Set difference left \ right; schemas must be identical.
Result<Relation> Difference(const Relation& left, const Relation& right);

/// True iff the two relations are equal as sets of tuples (schemas must
/// match attribute-for-attribute).
bool SetEquals(const Relation& a, const Relation& b);

}  // namespace ajd

#endif  // AJD_RELATION_OPS_H_
