// Content fingerprint of a relation prefix: the 64-bit key that lets the
// persistent cache tier (persist/persistent_store.h) recognize "this is the
// same data" across process lifetimes, where the in-process uid cannot.
//
// The fingerprint of the first `rows` rows is a CHAINED hash — width mixed
// in first, then each row's HashTuple folded in, in row order:
//
//   h_0        = Mix64(seed ^ width)
//   h_{i+1}    = Mix64(h_i ^ HashTuple(row_i, width))
//
// Chaining is what makes it fit the epoch design: relations grow by appends
// only, so fingerprint(N) extends fingerprint(M) for every M <= N by hashing
// just rows [M, N) — the FingerprintTracker below advances incrementally and
// each row is hashed exactly once over the relation's lifetime. A persisted
// cache entry keyed by (fingerprint at M, attrs, M) therefore stays
// addressable forever: a restarted process re-deriving fingerprint(M) over
// its first M rows gets the same key and can delta-extend the payload.
//
// The hash covers the dense CODES, not the strings behind them. That is
// sound for entropy payloads — H(attrs) depends only on the code-level
// grouping — and deterministic across restarts because dictionary codes are
// assigned densely in first-occurrence intern order: re-ingesting the same
// tuples in the same order reproduces the same codes (relation/relation.h).
// Ingesting the same SET of rows in a different order produces a different
// fingerprint and simply misses the cache — a performance event, never a
// correctness one.
#ifndef AJD_RELATION_FINGERPRINT_H_
#define AJD_RELATION_FINGERPRINT_H_

#include <cstdint>

#include "relation/relation.h"

namespace ajd {

/// The chain's initial state for a relation of `width` attributes (the
/// fingerprint of the empty prefix).
uint64_t FingerprintSeed(uint32_t width);

/// Folds rows [from_row, to_row) of row-major `data` (width codes per row)
/// into chain state `h`.
uint64_t FingerprintExtend(uint64_t h, const uint32_t* data, uint32_t width,
                           uint64_t from_row, uint64_t to_row);

/// Fingerprint of the first `rows` rows of `r`, computed from scratch.
/// `rows` must not exceed r.NumRows(). Safe concurrently with appends
/// (reads through Snapshot()).
uint64_t FingerprintAt(const Relation& r, uint64_t rows);

/// Incremental fingerprint chain over one relation: At(rows) hashes only
/// the rows appended since the previous call, so a consumer that follows
/// the relation's growth (the engine's persist tier) pays O(total rows)
/// hashing over the relation's whole lifetime, not per epoch.
///
/// NOT thread-safe; the engine guards its tracker with a private mutex.
/// The relation must outlive the tracker.
class FingerprintTracker {
 public:
  explicit FingerprintTracker(const Relation* r);

  /// The fingerprint of the first `rows` rows. Advances the chain when
  /// `rows` is at or past the current position; falls back to a cold
  /// O(rows) recompute (without disturbing the chain) when asked about an
  /// earlier prefix. `rows` must not exceed r->NumRows().
  uint64_t At(uint64_t rows);

  /// The chain's current position (rows covered by the cached state).
  uint64_t rows() const { return rows_; }

 private:
  const Relation* r_;
  uint64_t rows_ = 0;
  uint64_t hash_;
};

}  // namespace ajd

#endif  // AJD_RELATION_FINGERPRINT_H_
