// Relation: an in-memory relation instance — a set of tuples over a Schema.
//
// Values are uint32 codes; string data is dictionary-encoded per attribute
// (see Dictionary). Rows are stored row-major for cache-friendly projection
// and hashing. Relation instances are *sets*: builders deduplicate unless
// multiset semantics is requested explicitly (the paper's empirical
// distribution also covers multisets, so both are supported).
//
// Relations are VERSIONED: every instance carries an epoch counter bumped
// by the batch-append API (AppendBatch / AppendStringBatch). Appends are
// strictly additive — existing rows never move, change value, or disappear
// — so everything derived from the first NumRows() rows at epoch e stays
// valid at every later epoch, and epoch-aware consumers (engine/
// column_store.h, engine/entropy_engine.h) can catch up by processing only
// the appended suffix. A process-unique id (uid) distinguishes "the same
// relation, grown" from "a different relation that happens to reuse the
// address" (engine/analysis_session.h keys engines by address).
//
// CONCURRENCY: appends publish RCU-style, so readers never quiesce.
// Committed row bytes are immutable — the single appender writes only past
// the committed prefix, and when capacity runs out the data moves to a NEW
// buffer published with an atomic pointer store (readers pin the old one
// alive through Snapshot()). Publication order is: row bytes, then
// NumRows() (release), then epoch() (release). A reader that loads the
// epoch FIRST and the row count second therefore sees at least every row
// of that epoch, and rows [0, NumRows()) are always fully written.
// Appends themselves are single-writer (one appending thread at a time);
// dictionaries, schema domain sizes, and the dedupe index are
// appender-side state with no reader-safe access.
#ifndef AJD_RELATION_RELATION_H_
#define AJD_RELATION_RELATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relation/attr_set.h"
#include "relation/row_hash.h"
#include "relation/schema.h"
#include "util/status.h"

namespace ajd {

/// A pinned, immutable view of a relation's committed rows, safe to read
/// while the appender keeps appending. `keepalive` holds the storage alive
/// across buffer regrows; `data`/`num_rows` never change after the snapshot
/// is taken, and every row in [0, num_rows) is fully written.
struct RowsSnapshot {
  std::shared_ptr<const std::vector<uint32_t>> keepalive;
  const uint32_t* data = nullptr;
  uint64_t num_rows = 0;
  uint32_t width = 0;

  const uint32_t* Row(uint64_t i) const { return data + i * width; }
  uint32_t At(uint64_t i, uint32_t pos) const { return Row(i)[pos]; }
};

/// Per-attribute dictionary mapping string values to dense codes.
class Dictionary {
 public:
  /// Returns the code for `value`, inserting it if new.
  uint32_t Intern(const std::string& value);

  /// Drops every value with code >= `size` (appender-side rollback after a
  /// failed batch: codes are assigned densely in intern order, so the
  /// entries staged by the failed batch are exactly the tail). No-op when
  /// `size` >= size().
  void TruncateTo(uint32_t size);

  /// Returns the code for `value` if already interned.
  std::optional<uint32_t> Lookup(const std::string& value) const;

  /// The string for `code`; aborts if out of range.
  const std::string& ValueOf(uint32_t code) const;

  /// Number of interned values.
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// A relation instance: Schema + N rows of uint32 codes.
class Relation {
 public:
  Relation();

  /// Copies get a FRESH uid: the copy's future appends diverge from the
  /// source's, so sharing identity would let a snapshot restored at a
  /// served address (same uid, same epoch count, different rows) silently
  /// pass the session's identity check and serve stale caches. A copy is
  /// a new relation. (The dedupe row index is not copied; it rebuilds
  /// lazily on the next deduped append.)
  Relation(const Relation& other);
  Relation& operator=(const Relation& other);

  /// Moves carry the uid with the data; the moved-from husk gets a FRESH
  /// uid (and epoch 0), so a session engine keyed to the husk's address can
  /// never mistake it for the relation that moved away.
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  /// Builds a relation from rows (each of schema.size() codes).
  /// Deduplicates rows when `dedupe` (set semantics; the default matches the
  /// paper's relation instances). Domain sizes in the schema are grown to
  /// cover the data.
  static Result<Relation> FromRows(Schema schema,
                                   std::vector<std::vector<uint32_t>> rows,
                                   bool dedupe = true);

  /// The schema.
  const Schema& schema() const { return schema_; }

  /// Number of committed rows, N = |R| (acquire: every row below the
  /// returned count is fully written, even when read concurrently with an
  /// append).
  uint64_t NumRows() const { return num_rows_.load(std::memory_order_acquire); }

  /// Number of attributes.
  uint32_t NumAttrs() const { return schema_.size(); }

  /// Pointer to row `i` (NumAttrs() codes). APPENDER-SIDE / quiesced use
  /// only: the backing buffer can move under a concurrent append. Threads
  /// racing with an appender must read rows through Snapshot().
  const uint32_t* Row(uint64_t i) const {
    return data_->data() + i * NumAttrs();
  }

  /// Value of attribute `pos` in row `i` (same caveat as Row()).
  uint32_t At(uint64_t i, uint32_t pos) const { return Row(i)[pos]; }

  /// Raw row-major data (NumRows() * NumAttrs() codes; same caveat as
  /// Row()).
  const std::vector<uint32_t>& data() const { return *data_; }

  /// Pins the current committed rows for concurrent reading. The snapshot
  /// is immutable: its row count and bytes never change while held, no
  /// matter how many appends land after it is taken.
  RowsSnapshot Snapshot() const;

  /// Data version: 0 at construction, +1 per batch append that actually
  /// added rows. Epoch-aware consumers compare this against the epoch they
  /// last synced to and process only the appended suffix. Published with
  /// release semantics AFTER NumRows(): a reader that loads the epoch first
  /// and the row count second sees at least every row of that epoch.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Process-unique identity of this relation's content lineage (stable
  /// across appends; fresh for every newly built relation). Used by
  /// AnalysisSession to detect a dead relation's address being reused by a
  /// different one.
  uint64_t uid() const { return uid_; }

  /// Appends a batch of code rows, bumping the epoch when at least one row
  /// lands. Existing rows are never touched (the append-only contract that
  /// makes epoch catch-up sound). Domain sizes grow to cover new codes.
  /// With `dedupe`, rows equal to an existing row (or an earlier row of the
  /// same batch) are dropped — set semantics; the membership index is built
  /// on first deduped append (O(N)) and maintained incrementally after.
  /// InvalidArgument if any row's width mismatches the schema.
  ///
  /// ALL-OR-NOTHING (strong guarantee): on ANY failure — width mismatch,
  /// allocation failure mid-batch, injected fault — the relation is
  /// bit-identical to before the call: same rows, same NumRows(), same
  /// epoch, same domain sizes. Allocation failures surface as
  /// CapacityExceeded, never as an exception. (The lazily built dedupe
  /// membership index may be dropped on failure; it rebuilds on the next
  /// deduped append and is not observable through any read API.)
  Status AppendBatch(const std::vector<std::vector<uint32_t>>& rows,
                     bool dedupe = false);

  /// String form of AppendBatch: each value is interned into the
  /// attribute's dictionary, exactly as RelationBuilder::AddStringRow
  /// does. Dictionaries are created on first use only while the relation
  /// is EMPTY; a non-empty relation whose attribute holds raw codes (no
  /// dictionary) rejects string appends with InvalidArgument — freshly
  /// interned codes would alias the existing code space.
  ///
  /// Same ALL-OR-NOTHING contract as AppendBatch, including the
  /// dictionaries: entries interned by a failed batch are truncated back
  /// out, so a failed call leaves every dictionary bit-identical too. (On
  /// SUCCESS, dedupe-dropped rows may still leave their values interned —
  /// that only grows a dictionary, never the relation's data.)
  Status AppendStringBatch(const std::vector<std::vector<std::string>>& rows,
                           bool dedupe = false);

  /// True iff some row appears more than once (multiset data).
  bool HasDuplicateRows() const;

  /// Number of distinct rows.
  uint64_t NumDistinctRows() const;

  /// True iff row `r` (NumAttrs() codes) is present.
  bool ContainsRow(const uint32_t* row) const;

  /// Per-attribute dictionaries (empty for purely numeric relations).
  /// dict(i) may be nullptr when attribute i was never interned.
  const Dictionary* dict(uint32_t pos) const {
    return pos < dicts_.size() && dicts_[pos].has_value() ? &*dicts_[pos]
                                                          : nullptr;
  }

  /// Installs (or replaces) the dictionary for attribute `pos`. Used by
  /// operators to propagate dictionaries to derived relations.
  void SetDict(uint32_t pos, Dictionary d);

  /// Renders row `i` using dictionaries when available.
  std::string RowToString(uint64_t i) const;

  /// Multi-line preview of up to `max_rows` rows for debugging/examples.
  std::string ToString(uint64_t max_rows = 20) const;

 private:
  friend class RelationBuilder;

  /// Appends pre-validated code rows (flat, width-checked by the callers),
  /// handling dedupe, domain growth, and the epoch bump. Strong guarantee:
  /// a mid-batch failure truncates staged bytes back to the committed
  /// prefix (never published) and returns CapacityExceeded.
  Status AppendCodesUnchecked(const std::vector<uint32_t>& flat,
                              uint64_t rows, bool dedupe);

  Schema schema_;
  /// Row-major code storage behind a shared pointer so concurrent readers
  /// can pin the buffer across capacity regrows: the appender writes new
  /// rows in place while capacity lasts (committed bytes are never
  /// touched), and publishes a NEW buffer with std::atomic_store when it
  /// must regrow. Never null.
  std::shared_ptr<std::vector<uint32_t>> data_;
  std::atomic<uint64_t> num_rows_{0};
  std::vector<std::optional<Dictionary>> dicts_;
  std::atomic<uint64_t> epoch_{0};
  uint64_t uid_ = 0;
  /// Exact row-membership index for deduped appends; built lazily on the
  /// first AppendBatch(dedupe=true) and maintained incrementally after.
  std::unique_ptr<TupleCounter> row_index_;
};

/// Incremental construction of a Relation.
///
///   RelationBuilder b(schema);
///   b.AddRow({0, 1, 2});
///   b.AddStringRow({"ann", "db", "ta"});   // dictionary-encodes
///   Relation r = std::move(b).Build(/*dedupe=*/true);
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema);

  /// Appends a row of codes; aborts if the width mismatches the schema.
  void AddRow(const std::vector<uint32_t>& row);

  /// Appends a row of codes from a raw pointer (schema width codes).
  void AddRowPtr(const uint32_t* row);

  /// Appends a row of strings, interning each into its dictionary.
  void AddStringRow(const std::vector<std::string>& row);

  /// Number of rows added so far.
  uint64_t NumRows() const { return num_rows_; }

  /// Reserves space for `rows` rows.
  void Reserve(uint64_t rows);

  /// Finalizes. Deduplicates when `dedupe`. Grows schema domain sizes to
  /// cover observed codes.
  Relation Build(bool dedupe = true) &&;

 private:
  Schema schema_;
  std::vector<uint32_t> data_;
  uint64_t num_rows_ = 0;
  std::vector<std::optional<Dictionary>> dicts_;
};

}  // namespace ajd

#endif  // AJD_RELATION_RELATION_H_
