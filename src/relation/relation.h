// Relation: an in-memory relation instance — a set of tuples over a Schema.
//
// Values are uint32 codes; string data is dictionary-encoded per attribute
// (see Dictionary). Rows are stored row-major for cache-friendly projection
// and hashing. Relation instances are *sets*: builders deduplicate unless
// multiset semantics is requested explicitly (the paper's empirical
// distribution also covers multisets, so both are supported).
#ifndef AJD_RELATION_RELATION_H_
#define AJD_RELATION_RELATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relation/attr_set.h"
#include "relation/schema.h"
#include "util/status.h"

namespace ajd {

/// Per-attribute dictionary mapping string values to dense codes.
class Dictionary {
 public:
  /// Returns the code for `value`, inserting it if new.
  uint32_t Intern(const std::string& value);

  /// Returns the code for `value` if already interned.
  std::optional<uint32_t> Lookup(const std::string& value) const;

  /// The string for `code`; aborts if out of range.
  const std::string& ValueOf(uint32_t code) const;

  /// Number of interned values.
  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// A relation instance: Schema + N rows of uint32 codes.
class Relation {
 public:
  Relation() = default;

  /// Builds a relation from rows (each of schema.size() codes).
  /// Deduplicates rows when `dedupe` (set semantics; the default matches the
  /// paper's relation instances). Domain sizes in the schema are grown to
  /// cover the data.
  static Result<Relation> FromRows(Schema schema,
                                   std::vector<std::vector<uint32_t>> rows,
                                   bool dedupe = true);

  /// The schema.
  const Schema& schema() const { return schema_; }

  /// Number of rows, N = |R|.
  uint64_t NumRows() const { return num_rows_; }

  /// Number of attributes.
  uint32_t NumAttrs() const { return schema_.size(); }

  /// Pointer to row `i` (NumAttrs() codes).
  const uint32_t* Row(uint64_t i) const {
    return data_.data() + i * NumAttrs();
  }

  /// Value of attribute `pos` in row `i`.
  uint32_t At(uint64_t i, uint32_t pos) const { return Row(i)[pos]; }

  /// Raw row-major data (NumRows() * NumAttrs() codes).
  const std::vector<uint32_t>& data() const { return data_; }

  /// True iff some row appears more than once (multiset data).
  bool HasDuplicateRows() const;

  /// Number of distinct rows.
  uint64_t NumDistinctRows() const;

  /// True iff row `r` (NumAttrs() codes) is present.
  bool ContainsRow(const uint32_t* row) const;

  /// Per-attribute dictionaries (empty for purely numeric relations).
  /// dict(i) may be nullptr when attribute i was never interned.
  const Dictionary* dict(uint32_t pos) const {
    return pos < dicts_.size() && dicts_[pos].has_value() ? &*dicts_[pos]
                                                          : nullptr;
  }

  /// Installs (or replaces) the dictionary for attribute `pos`. Used by
  /// operators to propagate dictionaries to derived relations.
  void SetDict(uint32_t pos, Dictionary d);

  /// Renders row `i` using dictionaries when available.
  std::string RowToString(uint64_t i) const;

  /// Multi-line preview of up to `max_rows` rows for debugging/examples.
  std::string ToString(uint64_t max_rows = 20) const;

 private:
  friend class RelationBuilder;

  Schema schema_;
  std::vector<uint32_t> data_;
  uint64_t num_rows_ = 0;
  std::vector<std::optional<Dictionary>> dicts_;
};

/// Incremental construction of a Relation.
///
///   RelationBuilder b(schema);
///   b.AddRow({0, 1, 2});
///   b.AddStringRow({"ann", "db", "ta"});   // dictionary-encodes
///   Relation r = std::move(b).Build(/*dedupe=*/true);
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema);

  /// Appends a row of codes; aborts if the width mismatches the schema.
  void AddRow(const std::vector<uint32_t>& row);

  /// Appends a row of codes from a raw pointer (schema width codes).
  void AddRowPtr(const uint32_t* row);

  /// Appends a row of strings, interning each into its dictionary.
  void AddStringRow(const std::vector<std::string>& row);

  /// Number of rows added so far.
  uint64_t NumRows() const { return num_rows_; }

  /// Reserves space for `rows` rows.
  void Reserve(uint64_t rows);

  /// Finalizes. Deduplicates when `dedupe`. Grows schema domain sizes to
  /// cover observed codes.
  Relation Build(bool dedupe = true) &&;

 private:
  Schema schema_;
  std::vector<uint32_t> data_;
  uint64_t num_rows_ = 0;
  std::vector<std::optional<Dictionary>> dicts_;
};

}  // namespace ajd

#endif  // AJD_RELATION_RELATION_H_
