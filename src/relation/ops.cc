#include "relation/ops.h"

#include <algorithm>
#include <string>

#include "relation/row_hash.h"

namespace ajd {

namespace {

// Copies the values of `positions` from `row` into `out`.
inline void GatherInto(const uint32_t* row, const std::vector<uint32_t>& positions,
                       uint32_t* out) {
  for (size_t i = 0; i < positions.size(); ++i) out[i] = row[positions[i]];
}

// Positions (in each relation) of the attributes shared by name.
struct SharedAttrs {
  std::vector<uint32_t> left_pos;
  std::vector<uint32_t> right_pos;
  std::vector<uint32_t> right_only_pos;
};

SharedAttrs FindShared(const Relation& left, const Relation& right) {
  SharedAttrs shared;
  for (uint32_t rp = 0; rp < right.NumAttrs(); ++rp) {
    auto lp = left.schema().Find(right.schema().attr(rp).name);
    if (lp.has_value()) {
      shared.left_pos.push_back(*lp);
      shared.right_pos.push_back(rp);
    } else {
      shared.right_only_pos.push_back(rp);
    }
  }
  return shared;
}

Status CheckDictCompatible(const Relation& left, const Relation& right,
                           const SharedAttrs& shared) {
  for (size_t i = 0; i < shared.left_pos.size(); ++i) {
    const Dictionary* ld = left.dict(shared.left_pos[i]);
    const Dictionary* rd = right.dict(shared.right_pos[i]);
    if ((ld == nullptr) != (rd == nullptr)) {
      return Status::InvalidArgument(
          "shared attribute '" +
          left.schema().attr(shared.left_pos[i]).name +
          "' is dictionary-encoded on one side only");
    }
    if (ld != nullptr && rd != nullptr && ld->size() != rd->size()) {
      return Status::InvalidArgument(
          "shared attribute '" +
          left.schema().attr(shared.left_pos[i]).name +
          "' has mismatched dictionaries");
    }
  }
  return Status::OK();
}

}  // namespace

Relation Project(const Relation& r, AttrSet attrs) {
  AJD_CHECK_MSG(!attrs.Empty(), "projection onto empty attribute set");
  AJD_CHECK(attrs.IsSubsetOf(r.schema().AllAttrs()));
  std::vector<uint32_t> positions = attrs.ToIndices();
  const size_t width = positions.size();

  std::vector<Attribute> out_attrs;
  out_attrs.reserve(width);
  for (uint32_t p : positions) out_attrs.push_back(r.schema().attr(p));
  Result<Schema> schema = Schema::Make(std::move(out_attrs));
  AJD_CHECK(schema.ok());

  TupleCounter counter(width, r.NumRows());
  std::vector<uint32_t> key(width);
  RelationBuilder b(std::move(schema).value());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    GatherInto(r.Row(i), positions, key.data());
    size_t before = counter.NumDistinct();
    counter.Add(key.data());
    if (counter.NumDistinct() > before) b.AddRowPtr(key.data());
  }
  Relation out = std::move(b).Build(/*dedupe=*/false);
  // Propagate dictionaries of the projected attributes.
  for (size_t i = 0; i < positions.size(); ++i) {
    const Dictionary* d = r.dict(positions[i]);
    if (d != nullptr) out.SetDict(static_cast<uint32_t>(i), *d);
  }
  return out;
}

uint64_t CountDistinct(const Relation& r, AttrSet attrs) {
  AJD_CHECK(!attrs.Empty());
  AJD_CHECK(attrs.IsSubsetOf(r.schema().AllAttrs()));
  std::vector<uint32_t> positions = attrs.ToIndices();
  TupleCounter counter(positions.size(), r.NumRows());
  std::vector<uint32_t> key(positions.size());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    GatherInto(r.Row(i), positions, key.data());
    counter.Add(key.data());
  }
  return counter.NumDistinct();
}

Relation Select(const Relation& r, uint32_t pos, uint32_t value) {
  return SelectWhere(r, [pos, value](const uint32_t* row) {
    return row[pos] == value;
  });
}

Relation SelectWhere(const Relation& r,
                     const std::function<bool(const uint32_t*)>& pred) {
  RelationBuilder b(r.schema());
  for (uint64_t i = 0; i < r.NumRows(); ++i) {
    if (pred(r.Row(i))) b.AddRowPtr(r.Row(i));
  }
  Relation out = std::move(b).Build(/*dedupe=*/false);
  for (uint32_t a = 0; a < r.NumAttrs(); ++a) {
    const Dictionary* d = r.dict(a);
    if (d != nullptr) out.SetDict(a, *d);
  }
  return out;
}

Result<Relation> NaturalJoin(const Relation& left, const Relation& right) {
  SharedAttrs shared = FindShared(left, right);
  Status st = CheckDictCompatible(left, right, shared);
  if (!st.ok()) return st;

  // Output schema: all of left, then right-only attributes.
  std::vector<Attribute> out_attrs;
  for (uint32_t a = 0; a < left.NumAttrs(); ++a) {
    out_attrs.push_back(left.schema().attr(a));
  }
  for (uint32_t rp : shared.right_only_pos) {
    out_attrs.push_back(right.schema().attr(rp));
  }
  // Merge domain sizes for shared attributes.
  for (size_t i = 0; i < shared.left_pos.size(); ++i) {
    out_attrs[shared.left_pos[i]].domain_size =
        std::max(out_attrs[shared.left_pos[i]].domain_size,
                 right.schema().attr(shared.right_pos[i]).domain_size);
  }
  Result<Schema> out_schema = Schema::Make(std::move(out_attrs));
  if (!out_schema.ok()) return out_schema.status();

  const size_t key_width = shared.left_pos.size();
  RelationBuilder b(std::move(out_schema).value());

  if (key_width == 0) {
    // Cross product.
    std::vector<uint32_t> row(left.NumAttrs() + right.NumAttrs());
    for (uint64_t i = 0; i < left.NumRows(); ++i) {
      std::copy(left.Row(i), left.Row(i) + left.NumAttrs(), row.begin());
      for (uint64_t j = 0; j < right.NumRows(); ++j) {
        for (size_t k = 0; k < shared.right_only_pos.size(); ++k) {
          row[left.NumAttrs() + k] = right.Row(j)[shared.right_only_pos[k]];
        }
        b.AddRow(row);
      }
    }
  } else {
    // Hash join: build postings on the right, probe with the left.
    TupleCounter keys(key_width, right.NumRows());
    std::vector<std::vector<uint64_t>> postings;
    std::vector<uint32_t> key(key_width);
    for (uint64_t j = 0; j < right.NumRows(); ++j) {
      GatherInto(right.Row(j), shared.right_pos, key.data());
      uint32_t idx = keys.Add(key.data());
      if (idx == postings.size()) postings.emplace_back();
      postings[idx].push_back(j);
    }
    std::vector<uint32_t> row(left.NumAttrs() + shared.right_only_pos.size());
    for (uint64_t i = 0; i < left.NumRows(); ++i) {
      GatherInto(left.Row(i), shared.left_pos, key.data());
      uint32_t idx = keys.Find(key.data());
      if (idx == UINT32_MAX) continue;
      std::copy(left.Row(i), left.Row(i) + left.NumAttrs(), row.begin());
      for (uint64_t j : postings[idx]) {
        for (size_t k = 0; k < shared.right_only_pos.size(); ++k) {
          row[left.NumAttrs() + k] = right.Row(j)[shared.right_only_pos[k]];
        }
        b.AddRow(row);
      }
    }
  }

  Relation out = std::move(b).Build(/*dedupe=*/false);
  for (uint32_t a = 0; a < left.NumAttrs(); ++a) {
    const Dictionary* d = left.dict(a);
    if (d != nullptr) out.SetDict(a, *d);
  }
  for (size_t k = 0; k < shared.right_only_pos.size(); ++k) {
    const Dictionary* d = right.dict(shared.right_only_pos[k]);
    if (d != nullptr) out.SetDict(left.NumAttrs() + static_cast<uint32_t>(k), *d);
  }
  return out;
}

Result<uint64_t> NaturalJoinSize(const Relation& left, const Relation& right) {
  SharedAttrs shared = FindShared(left, right);
  Status st = CheckDictCompatible(left, right, shared);
  if (!st.ok()) return st;
  const size_t key_width = shared.left_pos.size();
  if (key_width == 0) return left.NumRows() * right.NumRows();

  TupleCounter right_counts(key_width, right.NumRows());
  std::vector<uint32_t> key(key_width);
  for (uint64_t j = 0; j < right.NumRows(); ++j) {
    GatherInto(right.Row(j), shared.right_pos, key.data());
    right_counts.Add(key.data());
  }
  uint64_t total = 0;
  for (uint64_t i = 0; i < left.NumRows(); ++i) {
    GatherInto(left.Row(i), shared.left_pos, key.data());
    uint32_t idx = right_counts.Find(key.data());
    if (idx != UINT32_MAX) total += right_counts.CountAt(idx);
  }
  return total;
}

Result<Relation> SemiJoin(const Relation& left, const Relation& right) {
  SharedAttrs shared = FindShared(left, right);
  Status st = CheckDictCompatible(left, right, shared);
  if (!st.ok()) return st;
  const size_t key_width = shared.left_pos.size();
  if (key_width == 0) {
    return right.NumRows() > 0 ? left : SelectWhere(left, [](const uint32_t*) {
      return false;
    });
  }
  TupleCounter keys(key_width, right.NumRows());
  std::vector<uint32_t> key(key_width);
  for (uint64_t j = 0; j < right.NumRows(); ++j) {
    GatherInto(right.Row(j), shared.right_pos, key.data());
    keys.Add(key.data());
  }
  const std::vector<uint32_t> left_pos = shared.left_pos;
  return SelectWhere(left, [&keys, &left_pos, &key](const uint32_t* row) {
    GatherInto(row, left_pos, key.data());
    return keys.Find(key.data()) != UINT32_MAX;
  });
}

namespace {

// Same attribute names in the same order (domain sizes may differ, e.g.
// between a base relation and a join output with merged domains).
bool SameAttrNames(const Relation& a, const Relation& b) {
  if (a.NumAttrs() != b.NumAttrs()) return false;
  for (uint32_t i = 0; i < a.NumAttrs(); ++i) {
    if (a.schema().attr(i).name != b.schema().attr(i).name) return false;
  }
  return true;
}

}  // namespace

Result<Relation> Difference(const Relation& left, const Relation& right) {
  if (!SameAttrNames(left, right)) {
    return Status::InvalidArgument(
        "Difference requires identical attribute lists");
  }
  const uint32_t width = left.NumAttrs();
  TupleCounter rows(width, right.NumRows());
  for (uint64_t j = 0; j < right.NumRows(); ++j) rows.Add(right.Row(j));
  return SelectWhere(left, [&rows](const uint32_t* row) {
    return rows.Find(row) == UINT32_MAX;
  });
}

bool SetEquals(const Relation& a, const Relation& b) {
  if (!SameAttrNames(a, b)) return false;
  if (a.NumDistinctRows() != b.NumDistinctRows()) return false;
  const uint32_t width = a.NumAttrs();
  TupleCounter rows(width, b.NumRows());
  for (uint64_t j = 0; j < b.NumRows(); ++j) rows.Add(b.Row(j));
  for (uint64_t i = 0; i < a.NumRows(); ++i) {
    if (rows.Find(a.Row(i)) == UINT32_MAX) return false;
  }
  return true;
}

}  // namespace ajd
