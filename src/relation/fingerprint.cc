#include "relation/fingerprint.h"

#include "relation/row_hash.h"
#include "util/check.h"

namespace ajd {

uint64_t FingerprintSeed(uint32_t width) {
  // Any fixed constant works; this one just keeps the empty-prefix states
  // of different widths distinct from each other and from zero.
  return Mix64(0x414A4446'50525354ULL ^ width);
}

uint64_t FingerprintExtend(uint64_t h, const uint32_t* data, uint32_t width,
                           uint64_t from_row, uint64_t to_row) {
  for (uint64_t i = from_row; i < to_row; ++i) {
    h = Mix64(h ^ HashTuple(data + i * width, width));
  }
  return h;
}

uint64_t FingerprintAt(const Relation& r, uint64_t rows) {
  const RowsSnapshot snap = r.Snapshot();
  AJD_CHECK(rows <= snap.num_rows);
  return FingerprintExtend(FingerprintSeed(snap.width), snap.data, snap.width,
                           0, rows);
}

FingerprintTracker::FingerprintTracker(const Relation* r)
    : r_(r), hash_(FingerprintSeed(r->NumAttrs())) {}

uint64_t FingerprintTracker::At(uint64_t rows) {
  if (rows < rows_) return FingerprintAt(*r_, rows);
  if (rows > rows_) {
    const RowsSnapshot snap = r_->Snapshot();
    AJD_CHECK(rows <= snap.num_rows);
    hash_ = FingerprintExtend(hash_, snap.data, snap.width, rows_, rows);
    rows_ = rows;
  }
  return hash_;
}

}  // namespace ajd
