#include "relation/relation.h"

#include <algorithm>

#include "relation/row_hash.h"

namespace ajd {

uint32_t Dictionary::Intern(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

std::optional<uint32_t> Dictionary::Lookup(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::ValueOf(uint32_t code) const {
  AJD_CHECK(code < values_.size());
  return values_[code];
}

Result<Relation> Relation::FromRows(Schema schema,
                                    std::vector<std::vector<uint32_t>> rows,
                                    bool dedupe) {
  const uint32_t width = schema.size();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
  }
  RelationBuilder b(std::move(schema));
  b.Reserve(rows.size());
  for (const auto& row : rows) b.AddRow(row);
  return std::move(b).Build(dedupe);
}

bool Relation::HasDuplicateRows() const {
  return NumDistinctRows() != num_rows_;
}

uint64_t Relation::NumDistinctRows() const {
  if (num_rows_ == 0) return 0;
  TupleCounter counter(NumAttrs(), num_rows_);
  for (uint64_t i = 0; i < num_rows_; ++i) counter.Add(Row(i));
  return counter.NumDistinct();
}

bool Relation::ContainsRow(const uint32_t* row) const {
  const uint32_t width = NumAttrs();
  for (uint64_t i = 0; i < num_rows_; ++i) {
    if (std::memcmp(Row(i), row, width * sizeof(uint32_t)) == 0) return true;
  }
  return false;
}

void Relation::SetDict(uint32_t pos, Dictionary d) {
  AJD_CHECK(pos < NumAttrs());
  if (dicts_.size() < NumAttrs()) dicts_.resize(NumAttrs());
  dicts_[pos] = std::move(d);
}

std::string Relation::RowToString(uint64_t i) const {
  std::string out = "(";
  for (uint32_t a = 0; a < NumAttrs(); ++a) {
    if (a > 0) out += ", ";
    uint32_t code = At(i, a);
    const Dictionary* d = dict(a);
    out += d != nullptr ? d->ValueOf(code) : std::to_string(code);
  }
  out += ")";
  return out;
}

std::string Relation::ToString(uint64_t max_rows) const {
  std::string out = "Relation[" + schema_.ToString() + "] N=" +
                    std::to_string(num_rows_) + "\n";
  uint64_t shown = std::min(num_rows_, max_rows);
  for (uint64_t i = 0; i < shown; ++i) {
    out += "  " + RowToString(i) + "\n";
  }
  if (shown < num_rows_) {
    out += "  ... (" + std::to_string(num_rows_ - shown) + " more)\n";
  }
  return out;
}

RelationBuilder::RelationBuilder(Schema schema)
    : schema_(std::move(schema)) {
  dicts_.resize(schema_.size());
}

void RelationBuilder::AddRow(const std::vector<uint32_t>& row) {
  AJD_CHECK_MSG(row.size() == schema_.size(),
                "row width %zu != schema width %u", row.size(),
                schema_.size());
  data_.insert(data_.end(), row.begin(), row.end());
  ++num_rows_;
}

void RelationBuilder::AddRowPtr(const uint32_t* row) {
  data_.insert(data_.end(), row, row + schema_.size());
  ++num_rows_;
}

void RelationBuilder::AddStringRow(const std::vector<std::string>& row) {
  AJD_CHECK_MSG(row.size() == schema_.size(),
                "row width %zu != schema width %u", row.size(),
                schema_.size());
  for (uint32_t a = 0; a < schema_.size(); ++a) {
    if (!dicts_[a].has_value()) dicts_[a].emplace();
    data_.push_back(dicts_[a]->Intern(row[a]));
  }
  ++num_rows_;
}

void RelationBuilder::Reserve(uint64_t rows) {
  data_.reserve(data_.size() + rows * schema_.size());
}

Relation RelationBuilder::Build(bool dedupe) && {
  Relation r;
  r.schema_ = std::move(schema_);
  r.dicts_ = std::move(dicts_);
  const uint32_t width = r.schema_.size();
  if (dedupe && num_rows_ > 0 && width > 0) {
    TupleCounter counter(width, num_rows_);
    std::vector<uint32_t> unique;
    unique.reserve(data_.size());
    for (uint64_t i = 0; i < num_rows_; ++i) {
      const uint32_t* row = data_.data() + i * width;
      size_t before = counter.NumDistinct();
      counter.Add(row);
      if (counter.NumDistinct() > before) {
        unique.insert(unique.end(), row, row + width);
      }
    }
    r.data_ = std::move(unique);
    r.num_rows_ = r.data_.size() / width;
  } else {
    r.data_ = std::move(data_);
    r.num_rows_ = num_rows_;
  }
  // Grow domain sizes to cover observed codes.
  for (uint32_t a = 0; a < width; ++a) {
    uint64_t max_code = 0;
    for (uint64_t i = 0; i < r.num_rows_; ++i) {
      max_code = std::max<uint64_t>(max_code, r.Row(i)[a]);
    }
    if (r.num_rows_ > 0) r.schema_.EnsureDomainSize(a, max_code + 1);
  }
  return r;
}

}  // namespace ajd
