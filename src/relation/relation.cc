#include "relation/relation.h"

#include <algorithm>
#include <atomic>

#include "relation/row_hash.h"
#include "util/failpoint.h"

namespace ajd {

namespace {

// Process-unique relation ids. 0 is never handed out, so a moved-from husk
// reset here can never collide with a live relation.
uint64_t NextRelationUid() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Relation::Relation()
    : data_(std::make_shared<std::vector<uint32_t>>()),
      uid_(NextRelationUid()) {}

// Copies and moves are quiesced-context operations (no concurrent appender
// on `other`): they read the counters with plain loads and the buffer
// non-atomically. A copy deep-copies the buffer so the source's future
// in-place appends can never bleed into the copy.
Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      data_(std::make_shared<std::vector<uint32_t>>(*other.data_)),
      num_rows_(other.num_rows_.load(std::memory_order_relaxed)),
      dicts_(other.dicts_),
      epoch_(other.epoch_.load(std::memory_order_relaxed)),
      uid_(NextRelationUid()) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  data_ = std::make_shared<std::vector<uint32_t>>(*other.data_);
  num_rows_.store(other.num_rows_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  dicts_ = other.dicts_;
  epoch_.store(other.epoch_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  uid_ = NextRelationUid();
  row_index_.reset();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      data_(std::move(other.data_)),
      num_rows_(other.num_rows_.load(std::memory_order_relaxed)),
      dicts_(std::move(other.dicts_)),
      epoch_(other.epoch_.load(std::memory_order_relaxed)),
      uid_(other.uid_),
      row_index_(std::move(other.row_index_)) {
  other.data_ = std::make_shared<std::vector<uint32_t>>();
  other.num_rows_.store(0, std::memory_order_relaxed);
  other.epoch_.store(0, std::memory_order_relaxed);
  other.uid_ = 0;  // husk; see header. (0 is never a live uid.)
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  data_ = std::move(other.data_);
  num_rows_.store(other.num_rows_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  dicts_ = std::move(other.dicts_);
  epoch_.store(other.epoch_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  uid_ = other.uid_;
  row_index_ = std::move(other.row_index_);
  other.data_ = std::make_shared<std::vector<uint32_t>>();
  other.num_rows_.store(0, std::memory_order_relaxed);
  other.epoch_.store(0, std::memory_order_relaxed);
  other.uid_ = 0;
  return *this;
}

RowsSnapshot Relation::Snapshot() const {
  RowsSnapshot snap;
  // Order matters: the row count is loaded FIRST (acquire), the buffer
  // second. The buffer pointer only ever moves forward (regrows copy the
  // full committed prefix), so the buffer loaded after the count is the
  // same or newer and contains at least `num_rows` committed rows.
  snap.num_rows = num_rows_.load(std::memory_order_acquire);
  snap.keepalive = std::atomic_load_explicit(&data_, std::memory_order_acquire);
  snap.data = snap.keepalive->data();
  snap.width = NumAttrs();
  return snap;
}

uint32_t Dictionary::Intern(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

void Dictionary::TruncateTo(uint32_t size) {
  if (size >= values_.size()) return;
  for (uint32_t code = size; code < values_.size(); ++code) {
    index_.erase(values_[code]);
  }
  values_.resize(size);
}

std::optional<uint32_t> Dictionary::Lookup(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::ValueOf(uint32_t code) const {
  AJD_CHECK(code < values_.size());
  return values_[code];
}

Result<Relation> Relation::FromRows(Schema schema,
                                    std::vector<std::vector<uint32_t>> rows,
                                    bool dedupe) {
  const uint32_t width = schema.size();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
  }
  RelationBuilder b(std::move(schema));
  b.Reserve(rows.size());
  for (const auto& row : rows) b.AddRow(row);
  return std::move(b).Build(dedupe);
}

Status Relation::AppendCodesUnchecked(const std::vector<uint32_t>& flat,
                                      uint64_t rows, bool dedupe) {
  const uint32_t width = NumAttrs();
  if (rows == 0 || width == 0) return Status::OK();
  const uint64_t committed = num_rows_.load(std::memory_order_relaxed);
  uint64_t appended = 0;
  try {
    AJD_INJECT_BAD_ALLOC(failpoints::kRelationAppendReserve);
    if (dedupe && row_index_ == nullptr) {
      // First deduped append: index every existing row once (O(N)); later
      // appends pay only their own rows.
      row_index_ = std::make_unique<TupleCounter>(width, committed + rows);
      for (uint64_t i = 0; i < committed; ++i) row_index_->Add(Row(i));
    }
    // RCU storage discipline: concurrent readers hold RowsSnapshot pins
    // into the current buffer, so committed bytes are immutable. Reserve
    // the worst-case capacity UP FRONT — if the current buffer can't hold
    // the whole batch, the committed prefix is copied into a fresh buffer
    // published with an atomic store (pinned readers keep the old one
    // alive) and every per-row insert below is then guaranteed in place.
    const uint64_t need = (committed + rows) * static_cast<uint64_t>(width);
    std::vector<uint32_t>* buf = data_.get();
    if (need > buf->capacity()) {
      auto grown = std::make_shared<std::vector<uint32_t>>();
      grown->reserve(std::max<uint64_t>(2 * buf->capacity(), need));
      grown->insert(grown->end(), buf->begin(), buf->end());
      buf = grown.get();
      std::atomic_store_explicit(&data_, std::move(grown),
                                 std::memory_order_release);
    }
    std::vector<uint64_t> max_code(width, 0);
    for (uint64_t i = 0; i < rows; ++i) {
      AJD_INJECT_BAD_ALLOC(failpoints::kRelationAppendStage);
      const uint32_t* row = flat.data() + i * width;
      if (dedupe) {
        const size_t before = row_index_->NumDistinct();
        row_index_->Add(row);
        if (row_index_->NumDistinct() == before) continue;  // already present
      } else if (row_index_ != nullptr) {
        // Keep a previously built index exact across multiset appends too.
        row_index_->Add(row);
      }
      buf->insert(buf->end(), row, row + width);
      ++appended;
      for (uint32_t a = 0; a < width; ++a) {
        max_code[a] = std::max<uint64_t>(max_code[a], row[a]);
      }
    }
    if (appended == 0) return Status::OK();
    // Domain sizes grow before the rows publish so a reader that sees the
    // new rows also sees domains covering them. (Schema counters are
    // appender-side state; concurrent readers only use the attribute
    // count, which never changes.)
    for (uint32_t a = 0; a < width; ++a) {
      schema_.EnsureDomainSize(a, max_code[a] + 1);
    }
  } catch (const std::exception& e) {
    // All-or-nothing rollback. Nothing was published (num_rows_/epoch_
    // advance only below), so readers never saw the staged rows; truncate
    // them out of the active buffer (shrinking resize: no reallocation, no
    // throw, committed bytes untouched) and drop the dedupe index, which
    // may hold rows from the failed batch — it rebuilds lazily on the next
    // deduped append. A mid-batch regrow needs no undo: the fresh buffer
    // holds the full committed prefix and truncates identically.
    data_->resize(committed * static_cast<size_t>(width));
    row_index_.reset();
    return Status::CapacityExceeded(
        std::string("append failed mid-batch; relation rolled back: ") +
        e.what());
  }
  // Publication order: row bytes are fully written above; release the row
  // count, then release the epoch. Readers pair acquire loads in the
  // opposite order (epoch first), so a reader at epoch e sees at least the
  // rows of epoch e. Stores cannot fail: the batch is committed.
  num_rows_.store(committed + appended, std::memory_order_release);
  epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  return Status::OK();
}

Status Relation::AppendBatch(const std::vector<std::vector<uint32_t>>& rows,
                             bool dedupe) {
  const uint32_t width = NumAttrs();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "append row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
  }
  try {
    std::vector<uint32_t> flat;
    flat.reserve(rows.size() * width);
    for (const auto& row : rows) {
      flat.insert(flat.end(), row.begin(), row.end());
    }
    return AppendCodesUnchecked(flat, rows.size(), dedupe);
  } catch (const std::exception& e) {
    // Flattening failed before any relation state was touched.
    return Status::CapacityExceeded(
        std::string("append failed staging the batch: ") + e.what());
  }
}

Status Relation::AppendStringBatch(
    const std::vector<std::vector<std::string>>& rows, bool dedupe) {
  const uint32_t width = NumAttrs();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "append row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
  }
  // A non-empty relation built from raw codes has no dictionary to intern
  // into: inventing one here would assign fresh codes starting at 0, which
  // ALIAS the existing raw code space — silent corruption, not an append.
  if (NumRows() > 0) {
    for (uint32_t a = 0; a < width; ++a) {
      if (a >= dicts_.size() || !dicts_[a].has_value()) {
        return Status::InvalidArgument(
            "attribute " + std::to_string(a) +
            " holds raw codes (no dictionary); string appends require a "
            "dictionary-encoded relation (or an empty one)");
      }
    }
  }
  // Interning may create dictionary entries for rows that dedupe then
  // drops; that only grows a dictionary, never the relation's data, so the
  // append-only contract holds either way. On FAILURE, though, the batch's
  // entries are rolled back below so the call leaves the dictionaries
  // bit-identical: record each dictionary's pre-batch size (UINT32_MAX =
  // "did not exist") before interning anything.
  if (dicts_.size() < width) dicts_.resize(width);
  std::vector<uint32_t> dict_sizes(width, UINT32_MAX);
  for (uint32_t a = 0; a < width; ++a) {
    if (dicts_[a].has_value()) dict_sizes[a] = dicts_[a]->size();
  }
  auto roll_back_dicts = [&] {
    for (uint32_t a = 0; a < width; ++a) {
      if (dict_sizes[a] == UINT32_MAX) {
        dicts_[a].reset();  // created by this batch
      } else {
        dicts_[a]->TruncateTo(dict_sizes[a]);
      }
    }
  };
  Status append;
  try {
    std::vector<uint32_t> flat;
    flat.reserve(rows.size() * width);
    for (const auto& row : rows) {
      for (uint32_t a = 0; a < width; ++a) {
        AJD_INJECT_BAD_ALLOC(failpoints::kRelationIntern);
        if (!dicts_[a].has_value()) dicts_[a].emplace();
        flat.push_back(dicts_[a]->Intern(row[a]));
      }
    }
    append = AppendCodesUnchecked(flat, rows.size(), dedupe);
  } catch (const std::exception& e) {
    roll_back_dicts();
    return Status::CapacityExceeded(
        std::string("string append failed interning; rolled back: ") +
        e.what());
  }
  if (!append.ok()) roll_back_dicts();
  return append;
}

bool Relation::HasDuplicateRows() const {
  return NumDistinctRows() != NumRows();
}

uint64_t Relation::NumDistinctRows() const {
  const uint64_t n = NumRows();
  if (n == 0) return 0;
  TupleCounter counter(NumAttrs(), n);
  for (uint64_t i = 0; i < n; ++i) counter.Add(Row(i));
  return counter.NumDistinct();
}

bool Relation::ContainsRow(const uint32_t* row) const {
  const uint32_t width = NumAttrs();
  const uint64_t n = NumRows();
  for (uint64_t i = 0; i < n; ++i) {
    if (std::memcmp(Row(i), row, width * sizeof(uint32_t)) == 0) return true;
  }
  return false;
}

void Relation::SetDict(uint32_t pos, Dictionary d) {
  AJD_CHECK(pos < NumAttrs());
  if (dicts_.size() < NumAttrs()) dicts_.resize(NumAttrs());
  dicts_[pos] = std::move(d);
}

std::string Relation::RowToString(uint64_t i) const {
  std::string out = "(";
  for (uint32_t a = 0; a < NumAttrs(); ++a) {
    if (a > 0) out += ", ";
    uint32_t code = At(i, a);
    const Dictionary* d = dict(a);
    out += d != nullptr ? d->ValueOf(code) : std::to_string(code);
  }
  out += ")";
  return out;
}

std::string Relation::ToString(uint64_t max_rows) const {
  const uint64_t n = NumRows();
  std::string out = "Relation[" + schema_.ToString() + "] N=" +
                    std::to_string(n) + "\n";
  uint64_t shown = std::min(n, max_rows);
  for (uint64_t i = 0; i < shown; ++i) {
    out += "  " + RowToString(i) + "\n";
  }
  if (shown < n) {
    out += "  ... (" + std::to_string(n - shown) + " more)\n";
  }
  return out;
}

RelationBuilder::RelationBuilder(Schema schema)
    : schema_(std::move(schema)) {
  dicts_.resize(schema_.size());
}

void RelationBuilder::AddRow(const std::vector<uint32_t>& row) {
  AJD_CHECK_MSG(row.size() == schema_.size(),
                "row width %zu != schema width %u", row.size(),
                schema_.size());
  data_.insert(data_.end(), row.begin(), row.end());
  ++num_rows_;
}

void RelationBuilder::AddRowPtr(const uint32_t* row) {
  data_.insert(data_.end(), row, row + schema_.size());
  ++num_rows_;
}

void RelationBuilder::AddStringRow(const std::vector<std::string>& row) {
  AJD_CHECK_MSG(row.size() == schema_.size(),
                "row width %zu != schema width %u", row.size(),
                schema_.size());
  for (uint32_t a = 0; a < schema_.size(); ++a) {
    if (!dicts_[a].has_value()) dicts_[a].emplace();
    data_.push_back(dicts_[a]->Intern(row[a]));
  }
  ++num_rows_;
}

void RelationBuilder::Reserve(uint64_t rows) {
  data_.reserve(data_.size() + rows * schema_.size());
}

Relation RelationBuilder::Build(bool dedupe) && {
  Relation r;
  r.schema_ = std::move(schema_);
  r.dicts_ = std::move(dicts_);
  const uint32_t width = r.schema_.size();
  if (dedupe && num_rows_ > 0 && width > 0) {
    TupleCounter counter(width, num_rows_);
    std::vector<uint32_t> unique;
    unique.reserve(data_.size());
    for (uint64_t i = 0; i < num_rows_; ++i) {
      const uint32_t* row = data_.data() + i * width;
      size_t before = counter.NumDistinct();
      counter.Add(row);
      if (counter.NumDistinct() > before) {
        unique.insert(unique.end(), row, row + width);
      }
    }
    r.data_ = std::make_shared<std::vector<uint32_t>>(std::move(unique));
    r.num_rows_.store(r.data_->size() / width, std::memory_order_relaxed);
  } else {
    r.data_ = std::make_shared<std::vector<uint32_t>>(std::move(data_));
    r.num_rows_.store(num_rows_, std::memory_order_relaxed);
  }
  // Grow domain sizes to cover observed codes.
  const uint64_t built_rows = r.NumRows();
  for (uint32_t a = 0; a < width; ++a) {
    uint64_t max_code = 0;
    for (uint64_t i = 0; i < built_rows; ++i) {
      max_code = std::max<uint64_t>(max_code, r.Row(i)[a]);
    }
    if (built_rows > 0) r.schema_.EnsureDomainSize(a, max_code + 1);
  }
  return r;
}

}  // namespace ajd
