#include "relation/relation.h"

#include <algorithm>
#include <atomic>

#include "relation/row_hash.h"

namespace ajd {

namespace {

// Process-unique relation ids. 0 is never handed out, so a moved-from husk
// reset here can never collide with a live relation.
uint64_t NextRelationUid() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Relation::Relation() : uid_(NextRelationUid()) {}

Relation::Relation(const Relation& other)
    : schema_(other.schema_),
      data_(other.data_),
      num_rows_(other.num_rows_),
      dicts_(other.dicts_),
      epoch_(other.epoch_),
      uid_(NextRelationUid()) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  data_ = other.data_;
  num_rows_ = other.num_rows_;
  dicts_ = other.dicts_;
  epoch_ = other.epoch_;
  uid_ = NextRelationUid();
  row_index_.reset();
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      data_(std::move(other.data_)),
      num_rows_(other.num_rows_),
      dicts_(std::move(other.dicts_)),
      epoch_(other.epoch_),
      uid_(other.uid_),
      row_index_(std::move(other.row_index_)) {
  other.num_rows_ = 0;
  other.epoch_ = 0;
  other.uid_ = 0;  // husk; see header. (0 is never a live uid.)
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  data_ = std::move(other.data_);
  num_rows_ = other.num_rows_;
  dicts_ = std::move(other.dicts_);
  epoch_ = other.epoch_;
  uid_ = other.uid_;
  row_index_ = std::move(other.row_index_);
  other.num_rows_ = 0;
  other.epoch_ = 0;
  other.uid_ = 0;
  return *this;
}

uint32_t Dictionary::Intern(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

std::optional<uint32_t> Dictionary::Lookup(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::ValueOf(uint32_t code) const {
  AJD_CHECK(code < values_.size());
  return values_[code];
}

Result<Relation> Relation::FromRows(Schema schema,
                                    std::vector<std::vector<uint32_t>> rows,
                                    bool dedupe) {
  const uint32_t width = schema.size();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
  }
  RelationBuilder b(std::move(schema));
  b.Reserve(rows.size());
  for (const auto& row : rows) b.AddRow(row);
  return std::move(b).Build(dedupe);
}

void Relation::AppendCodesUnchecked(const std::vector<uint32_t>& flat,
                                    uint64_t rows, bool dedupe) {
  const uint32_t width = NumAttrs();
  if (rows == 0 || width == 0) return;
  if (dedupe && row_index_ == nullptr) {
    // First deduped append: index every existing row once (O(N)); later
    // appends pay only their own rows.
    row_index_ = std::make_unique<TupleCounter>(width, num_rows_ + rows);
    for (uint64_t i = 0; i < num_rows_; ++i) row_index_->Add(Row(i));
  }
  uint64_t appended = 0;
  std::vector<uint64_t> max_code(width, 0);
  for (uint64_t i = 0; i < rows; ++i) {
    const uint32_t* row = flat.data() + i * width;
    if (dedupe) {
      const size_t before = row_index_->NumDistinct();
      row_index_->Add(row);
      if (row_index_->NumDistinct() == before) continue;  // already present
    } else if (row_index_ != nullptr) {
      // Keep a previously built index exact across multiset appends too.
      row_index_->Add(row);
    }
    data_.insert(data_.end(), row, row + width);
    ++appended;
    for (uint32_t a = 0; a < width; ++a) {
      max_code[a] = std::max<uint64_t>(max_code[a], row[a]);
    }
  }
  if (appended == 0) return;
  num_rows_ += appended;
  for (uint32_t a = 0; a < width; ++a) {
    schema_.EnsureDomainSize(a, max_code[a] + 1);
  }
  ++epoch_;
}

Status Relation::AppendBatch(const std::vector<std::vector<uint32_t>>& rows,
                             bool dedupe) {
  const uint32_t width = NumAttrs();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "append row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
  }
  std::vector<uint32_t> flat;
  flat.reserve(rows.size() * width);
  for (const auto& row : rows) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  AppendCodesUnchecked(flat, rows.size(), dedupe);
  return Status::OK();
}

Status Relation::AppendStringBatch(
    const std::vector<std::vector<std::string>>& rows, bool dedupe) {
  const uint32_t width = NumAttrs();
  for (const auto& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument(
          "append row width " + std::to_string(row.size()) +
          " does not match schema width " + std::to_string(width));
    }
  }
  // A non-empty relation built from raw codes has no dictionary to intern
  // into: inventing one here would assign fresh codes starting at 0, which
  // ALIAS the existing raw code space — silent corruption, not an append.
  if (num_rows_ > 0) {
    for (uint32_t a = 0; a < width; ++a) {
      if (a >= dicts_.size() || !dicts_[a].has_value()) {
        return Status::InvalidArgument(
            "attribute " + std::to_string(a) +
            " holds raw codes (no dictionary); string appends require a "
            "dictionary-encoded relation (or an empty one)");
      }
    }
  }
  // Interning may create dictionary entries for rows that dedupe then
  // drops; that only grows a dictionary, never the relation's data, so the
  // append-only contract holds either way.
  if (dicts_.size() < width) dicts_.resize(width);
  std::vector<uint32_t> flat;
  flat.reserve(rows.size() * width);
  for (const auto& row : rows) {
    for (uint32_t a = 0; a < width; ++a) {
      if (!dicts_[a].has_value()) dicts_[a].emplace();
      flat.push_back(dicts_[a]->Intern(row[a]));
    }
  }
  AppendCodesUnchecked(flat, rows.size(), dedupe);
  return Status::OK();
}

bool Relation::HasDuplicateRows() const {
  return NumDistinctRows() != num_rows_;
}

uint64_t Relation::NumDistinctRows() const {
  if (num_rows_ == 0) return 0;
  TupleCounter counter(NumAttrs(), num_rows_);
  for (uint64_t i = 0; i < num_rows_; ++i) counter.Add(Row(i));
  return counter.NumDistinct();
}

bool Relation::ContainsRow(const uint32_t* row) const {
  const uint32_t width = NumAttrs();
  for (uint64_t i = 0; i < num_rows_; ++i) {
    if (std::memcmp(Row(i), row, width * sizeof(uint32_t)) == 0) return true;
  }
  return false;
}

void Relation::SetDict(uint32_t pos, Dictionary d) {
  AJD_CHECK(pos < NumAttrs());
  if (dicts_.size() < NumAttrs()) dicts_.resize(NumAttrs());
  dicts_[pos] = std::move(d);
}

std::string Relation::RowToString(uint64_t i) const {
  std::string out = "(";
  for (uint32_t a = 0; a < NumAttrs(); ++a) {
    if (a > 0) out += ", ";
    uint32_t code = At(i, a);
    const Dictionary* d = dict(a);
    out += d != nullptr ? d->ValueOf(code) : std::to_string(code);
  }
  out += ")";
  return out;
}

std::string Relation::ToString(uint64_t max_rows) const {
  std::string out = "Relation[" + schema_.ToString() + "] N=" +
                    std::to_string(num_rows_) + "\n";
  uint64_t shown = std::min(num_rows_, max_rows);
  for (uint64_t i = 0; i < shown; ++i) {
    out += "  " + RowToString(i) + "\n";
  }
  if (shown < num_rows_) {
    out += "  ... (" + std::to_string(num_rows_ - shown) + " more)\n";
  }
  return out;
}

RelationBuilder::RelationBuilder(Schema schema)
    : schema_(std::move(schema)) {
  dicts_.resize(schema_.size());
}

void RelationBuilder::AddRow(const std::vector<uint32_t>& row) {
  AJD_CHECK_MSG(row.size() == schema_.size(),
                "row width %zu != schema width %u", row.size(),
                schema_.size());
  data_.insert(data_.end(), row.begin(), row.end());
  ++num_rows_;
}

void RelationBuilder::AddRowPtr(const uint32_t* row) {
  data_.insert(data_.end(), row, row + schema_.size());
  ++num_rows_;
}

void RelationBuilder::AddStringRow(const std::vector<std::string>& row) {
  AJD_CHECK_MSG(row.size() == schema_.size(),
                "row width %zu != schema width %u", row.size(),
                schema_.size());
  for (uint32_t a = 0; a < schema_.size(); ++a) {
    if (!dicts_[a].has_value()) dicts_[a].emplace();
    data_.push_back(dicts_[a]->Intern(row[a]));
  }
  ++num_rows_;
}

void RelationBuilder::Reserve(uint64_t rows) {
  data_.reserve(data_.size() + rows * schema_.size());
}

Relation RelationBuilder::Build(bool dedupe) && {
  Relation r;
  r.schema_ = std::move(schema_);
  r.dicts_ = std::move(dicts_);
  const uint32_t width = r.schema_.size();
  if (dedupe && num_rows_ > 0 && width > 0) {
    TupleCounter counter(width, num_rows_);
    std::vector<uint32_t> unique;
    unique.reserve(data_.size());
    for (uint64_t i = 0; i < num_rows_; ++i) {
      const uint32_t* row = data_.data() + i * width;
      size_t before = counter.NumDistinct();
      counter.Add(row);
      if (counter.NumDistinct() > before) {
        unique.insert(unique.end(), row, row + width);
      }
    }
    r.data_ = std::move(unique);
    r.num_rows_ = r.data_.size() / width;
  } else {
    r.data_ = std::move(data_);
    r.num_rows_ = num_rows_;
  }
  // Grow domain sizes to cover observed codes.
  for (uint32_t a = 0; a < width; ++a) {
    uint64_t max_code = 0;
    for (uint64_t i = 0; i < r.num_rows_; ++i) {
      max_code = std::max<uint64_t>(max_code, r.Row(i)[a]);
    }
    if (r.num_rows_ > 0) r.schema_.EnsureDomainSize(a, max_code + 1);
  }
  return r;
}

}  // namespace ajd
