#include "relation/schema.h"

#include <algorithm>

#include "util/math.h"

namespace ajd {

Result<Schema> Schema::Make(std::vector<Attribute> attrs) {
  if (attrs.size() > kMaxAttrs) {
    return Status::CapacityExceeded("schema has more than 64 attributes");
  }
  Schema s;
  for (uint32_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    auto [it, inserted] = s.index_.emplace(attrs[i].name, i);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("duplicate attribute name: " +
                                     attrs[i].name);
    }
  }
  s.attrs_ = std::move(attrs);
  return s;
}

Result<Schema> Schema::MakeUniform(const std::vector<std::string>& names,
                                   uint64_t domain_size) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) attrs.push_back({n, domain_size});
  return Make(std::move(attrs));
}

Result<Schema> Schema::MakeSynthetic(const std::vector<uint64_t>& dims) {
  std::vector<Attribute> attrs;
  attrs.reserve(dims.size());
  for (size_t i = 0; i < dims.size(); ++i) {
    attrs.push_back({"X" + std::to_string(i), dims[i]});
  }
  return Make(std::move(attrs));
}

std::optional<uint32_t> Schema::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

uint32_t Schema::PositionOf(const std::string& name) const {
  auto pos = Find(name);
  AJD_CHECK_MSG(pos.has_value(), "no attribute named '%s'", name.c_str());
  return *pos;
}

Result<AttrSet> Schema::SetOf(const std::vector<std::string>& names) const {
  AttrSet s;
  for (const auto& n : names) {
    auto pos = Find(n);
    if (!pos) return Status::NotFound("no attribute named '" + n + "'");
    s.Add(*pos);
  }
  return s;
}

std::optional<uint64_t> Schema::DomainProduct(AttrSet attrs) const {
  uint64_t prod = 1;
  bool overflow = false;
  attrs.ForEach([&](uint32_t pos) {
    AJD_CHECK(pos < size());
    auto next = CheckedMul(prod, attrs_[pos].domain_size);
    if (!next) {
      overflow = true;
    } else {
      prod = *next;
    }
  });
  if (overflow) return std::nullopt;
  return prod;
}

std::vector<std::string> Schema::NamesOf(AttrSet attrs) const {
  std::vector<std::string> names;
  attrs.ForEach([&](uint32_t pos) {
    AJD_CHECK(pos < size());
    names.push_back(attrs_[pos].name);
  });
  return names;
}

void Schema::EnsureDomainSize(uint32_t pos, uint64_t size) {
  AJD_CHECK(pos < this->size());
  attrs_[pos].domain_size = std::max(attrs_[pos].domain_size, size);
}

std::string Schema::ToString() const {
  std::string out;
  for (uint32_t i = 0; i < size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name + ":" + std::to_string(attrs_[i].domain_size);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (attrs_.size() != other.attrs_.size()) return false;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != other.attrs_[i].name ||
        attrs_[i].domain_size != other.attrs_[i].domain_size) {
      return false;
    }
  }
  return true;
}

}  // namespace ajd
