#include "discovery/normalize.h"

#include <algorithm>

#include "util/check.h"

namespace ajd {

AttrSet Closure(AttrSet attrs, const std::vector<Fd>& fds) {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (fd.lhs.IsSubsetOf(closure) && !closure.Contains(fd.rhs)) {
        closure.Add(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool Implies(const std::vector<Fd>& fds, AttrSet lhs, AttrSet rhs) {
  return rhs.IsSubsetOf(Closure(lhs, fds));
}

Result<std::vector<AttrSet>> CandidateKeys(AttrSet universe,
                                           const std::vector<Fd>& fds) {
  if (universe.Count() > 20) {
    return Status::CapacityExceeded(
        "candidate-key search is exponential; 20 attributes max");
  }
  std::vector<AttrSet> keys;
  // Enumerate subsets by increasing size; a set is a candidate key iff its
  // closure is the universe and no smaller key is contained in it.
  for (uint32_t size = 0; size <= universe.Count(); ++size) {
    ForEachSubsetOfSize(universe, size, [&](AttrSet s) {
      for (AttrSet k : keys) {
        if (k.IsSubsetOf(s)) return;  // superset of a key: not minimal
      }
      if (Closure(s, fds).IsSubsetOf(universe) &&
          universe.IsSubsetOf(Closure(s, fds))) {
        keys.push_back(s);
      }
    });
  }
  return keys;
}

BcnfViolation FindBcnfViolation(AttrSet bag, const std::vector<Fd>& fds) {
  BcnfViolation out;
  // A violation is a set X inside the bag whose closure gains some bag
  // attribute beyond X but does not reach the whole bag. Searching subsets
  // by increasing size finds the most "local" violation first.
  const uint32_t n = bag.Count();
  for (uint32_t size = 1; size < n && !out.found; ++size) {
    ForEachSubsetOfSize(bag, size, [&](AttrSet x) {
      if (out.found) return;
      AttrSet closure_in_bag = Closure(x, fds).Intersect(bag);
      if (closure_in_bag == x) return;            // nothing gained
      if (bag.IsSubsetOf(closure_in_bag)) return;  // X is a superkey: fine
      out.found = true;
      out.lhs = x;
      out.closure_in_bag = closure_in_bag;
    });
  }
  return out;
}

bool IsBcnf(AttrSet bag, const std::vector<Fd>& fds) {
  return !FindBcnfViolation(bag, fds).found;
}

Result<std::vector<AttrSet>> BcnfDecompose(AttrSet universe,
                                           const std::vector<Fd>& fds) {
  if (universe.Count() > 20) {
    return Status::CapacityExceeded(
        "BCNF decomposition search is exponential; 20 attributes max");
  }
  std::vector<AttrSet> work = {universe};
  std::vector<AttrSet> done;
  while (!work.empty()) {
    AttrSet bag = work.back();
    work.pop_back();
    BcnfViolation violation = FindBcnfViolation(bag, fds);
    if (!violation.found) {
      done.push_back(bag);
      continue;
    }
    // Split on X -> (closure cap bag): one bag holds X with everything it
    // determines inside the bag, the other keeps X plus the remainder.
    AttrSet with_closure = violation.closure_in_bag;
    AttrSet remainder =
        bag.Minus(violation.closure_in_bag).Union(violation.lhs);
    AJD_CHECK(with_closure != bag && remainder != bag);
    work.push_back(with_closure);
    work.push_back(remainder);
  }
  // Drop bags contained in others (keep the schema reduced).
  std::vector<AttrSet> reduced;
  for (AttrSet b : done) {
    bool contained = false;
    for (AttrSet other : done) {
      if (other != b && b.IsSubsetOf(other)) {
        contained = true;
        break;
      }
    }
    if (!contained) reduced.push_back(b);
  }
  // Deduplicate identical bags.
  std::sort(reduced.begin(), reduced.end());
  reduced.erase(std::unique(reduced.begin(), reduced.end()), reduced.end());
  return reduced;
}

}  // namespace ajd
