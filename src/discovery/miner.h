// Approximate acyclic-schema miner, in the spirit of Kenig et al. (SIGMOD
// 2020) — the motivating application of the paper (Section 1).
//
// Strategy: start from the trivial one-bag tree and repeatedly split bags.
// A split of bag Omega_v picks a separator C and a bipartition A | B of the
// remaining attributes minimizing the empirical conditional mutual
// information I(A; B | C); the bag is replaced by two bags (A u C), (B u C)
// joined by an edge, and existing neighbors re-attach to the side containing
// their separator (preserving the running intersection property by
// construction). Splitting continues while bags exceed `max_bag_size`, or
// while a split below `cmi_threshold` exists.
//
// Because every split adds I(A;B|C) to the chain-rule decomposition of the
// J-measure, the sum of accepted split scores upper-bounds J(T), which in
// turn lower-bounds the loss via Lemma 4.1 — the miner reports both.
#ifndef AJD_DISCOVERY_MINER_H_
#define AJD_DISCOVERY_MINER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "jointree/join_tree.h"
#include "random/rng.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

class AnalysisSession;  // engine/analysis_session.h
class WorkerPool;       // engine/worker_pool.h

/// Tuning knobs for the miner.
struct MinerOptions {
  /// Maximum separator size |C| considered per split.
  uint32_t max_separator_size = 2;
  /// Bags of at most this many attributes are never forced to split.
  uint32_t max_bag_size = 3;
  /// Accept a split only when its CMI (nats) is at most this threshold —
  /// unless the bag exceeds max_bag_size, in which case the best split is
  /// forced regardless.
  double cmi_threshold = 1e-9;
  /// Number of hill-climb restarts when the bipartition search space is too
  /// large to enumerate.
  uint32_t hill_climb_restarts = 4;
  /// Seed for hill-climb randomization.
  uint64_t seed = 1234;
  /// Engine threads for batched entropy scoring in the convenience overload
  /// (0 = all hardware threads). The default 1 keeps the fully serial
  /// engine. The mined tree and scores are the same either way — candidate
  /// scoring batches fan the entropy misses out, and selection happens
  /// after each batch completes, in deterministic mask order — so threads
  /// buy wall clock, not different answers. The session overload uses the
  /// session's own EngineOptions instead.
  uint32_t num_threads = 1;
  /// Batch pool for the convenience overload's session. nullptr = the
  /// process-wide shared pool; inject one to isolate a miner run's
  /// threading from the rest of the process. The session overload uses the
  /// session's pool instead.
  std::shared_ptr<WorkerPool> worker_pool;
};

/// One accepted split, for diagnostics.
struct SplitRecord {
  AttrSet separator;
  AttrSet side_a;   ///< A u C
  AttrSet side_b;   ///< B u C
  double cmi = 0.0;
};

/// Miner output: the discovered join tree and quality metrics. Every field
/// but the tree carries a member default — construct from the tree and
/// assign the metrics by name, so adding a field can never silently shift
/// positional initializers onto the wrong members.
struct MinerReport {
  explicit MinerReport(JoinTree t) : tree(std::move(t)) {}

  JoinTree tree;
  std::vector<SplitRecord> splits;
  double sum_split_cmi = 0.0;   ///< Upper-bounds J(T) (chain rule).
  double j = 0.0;               ///< Exact J-measure of the result.
  double rho_lower_bound = 0.0; ///< Lemma 4.1: e^J - 1.

  std::string ToString(const Schema& schema) const;
};

/// Mines a join tree for `r`. The relation must have at least 2 attributes
/// and at least 1 row.
Result<MinerReport> MineJoinTree(const Relation& r,
                                 const MinerOptions& options = {});

/// Session-sharing variant: the thousands of overlapping entropy terms the
/// split search evaluates are cached in the session's engine for `r`, so a
/// subsequent AnalyzeAjd(session, r, mined_tree) answers mostly from cache.
///
/// The reuse extends ACROSS EPOCHS: after Relation::AppendBatch grows `r`,
/// re-mining through the same session first catches the engine up
/// incrementally (cached partitions delta-extend over the appended rows,
/// engine/entropy_engine.h), so the re-mine pays O(delta) maintenance plus
/// the search — not a cold rebuild of every term. core/streaming.h's
/// re-mine-on-drift policy is built on exactly this path.
Result<MinerReport> MineJoinTree(AnalysisSession* session, const Relation& r,
                                 const MinerOptions& options = {});

}  // namespace ajd

#endif  // AJD_DISCOVERY_MINER_H_
