#include "discovery/fd.h"

#include <algorithm>

#include "engine/analysis_session.h"

namespace ajd {

namespace {

Result<std::vector<Fd>> DiscoverFdsImpl(EntropyCalculator* calc,
                                        const Relation& r,
                                        const FdDiscoveryOptions& options);

}  // namespace

double FdError(EntropyCalculator* calc, AttrSet lhs, uint32_t rhs) {
  double err = calc->ConditionalEntropy(AttrSet::Singleton(rhs), lhs);
  return err < 0.0 && err > -1e-9 ? 0.0 : err;
}

Result<std::vector<Fd>> DiscoverFds(const Relation& r,
                                    const FdDiscoveryOptions& options) {
  AnalysisSession session;
  return DiscoverFds(&session, r, options);
}

Result<std::vector<Fd>> DiscoverFds(AnalysisSession* session,
                                    const Relation& r,
                                    const FdDiscoveryOptions& options) {
  if (r.NumRows() == 0) {
    return Status::FailedPrecondition("empty relation");
  }
  if (r.NumAttrs() > 24) {
    return Status::CapacityExceeded(
        "FD discovery is levelwise; 24 attributes max");
  }
  EntropyCalculator calc(session, &r);
  return DiscoverFdsImpl(&calc, r, options);
}

namespace {

Result<std::vector<Fd>> DiscoverFdsImpl(EntropyCalculator* calc,
                                        const Relation& r,
                                        const FdDiscoveryOptions& options) {
  const uint32_t n = r.NumAttrs();
  std::vector<Fd> found;
  // Per-rhs list of minimal determinants found so far, for pruning.
  std::vector<std::vector<AttrSet>> minimal(n);

  const uint32_t max_lhs = std::min(options.max_lhs_size, n - 1);
  AttrSet universe = r.schema().AllAttrs();
  for (uint32_t size = 0; size <= max_lhs; ++size) {
    ForEachSubsetOfSize(universe, size, [&](AttrSet lhs) {
      for (uint32_t rhs = 0; rhs < n; ++rhs) {
        if (lhs.Contains(rhs)) continue;
        if (options.minimal_only) {
          bool dominated = false;
          for (AttrSet m : minimal[rhs]) {
            if (m.IsSubsetOf(lhs)) {
              dominated = true;
              break;
            }
          }
          if (dominated) continue;
        }
        double err = FdError(calc, lhs, rhs);
        if (err <= options.max_error) {
          found.push_back({lhs, rhs, err});
          minimal[rhs].push_back(lhs);
        }
      }
    });
  }
  std::sort(found.begin(), found.end(), [](const Fd& a, const Fd& b) {
    if (a.rhs != b.rhs) return a.rhs < b.rhs;
    if (a.lhs.Count() != b.lhs.Count()) return a.lhs.Count() < b.lhs.Count();
    return a.lhs < b.lhs;
  });
  return found;
}

}  // namespace

std::string Fd::ToString(const Schema& schema) const {
  std::string s = "{";
  bool first = true;
  lhs.ForEach([&](uint32_t pos) {
    if (!first) s += ",";
    first = false;
    s += schema.attr(pos).name;
  });
  s += "} -> " + schema.attr(rhs).name;
  if (error > 0.0) s += " (err " + std::to_string(error) + ")";
  return s;
}

}  // namespace ajd
