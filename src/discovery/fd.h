// Approximate functional-dependency discovery. FDs are the degenerate
// dependencies the paper's Section 1 places at the bottom of the hierarchy
// (FD => MVD => JD); profiling them alongside the mined acyclic schema
// explains WHY a decomposition is lossless (e.g. course -> teacher makes
// course ->> student | teacher hold).
//
// The error measure is information-theoretic to match the rest of the
// library: err(lhs -> rhs) = H(rhs | lhs) in nats, which is 0 iff the FD
// holds exactly.
#ifndef AJD_DISCOVERY_FD_H_
#define AJD_DISCOVERY_FD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "info/entropy.h"
#include "relation/attr_set.h"
#include "relation/relation.h"
#include "util/status.h"

namespace ajd {

/// A (possibly approximate) functional dependency lhs -> rhs.
struct Fd {
  AttrSet lhs;
  uint32_t rhs = 0;      ///< single right-hand attribute position
  double error = 0.0;    ///< H(rhs | lhs), nats; 0 iff exact

  /// "{a,b} -> c (err)" with attribute names.
  std::string ToString(const Schema& schema) const;
};

/// Options for discovery.
struct FdDiscoveryOptions {
  uint32_t max_lhs_size = 2;   ///< determinant size cap
  double max_error = 1e-9;     ///< report FDs with H(rhs|lhs) <= this
  bool minimal_only = true;    ///< drop lhs supersets of reported lhs
};

/// Levelwise discovery of (approximate) FDs. Intended for profiling-scale
/// schemas (InvalidArgument beyond 24 attributes: the lattice explodes).
/// Results are sorted by (rhs, lhs size, lhs mask).
Result<std::vector<Fd>> DiscoverFds(const Relation& r,
                                    const FdDiscoveryOptions& options = {});

/// Session-sharing variant: the H(lhs) / H(lhs u rhs) lattice the levelwise
/// scan evaluates is served from (and left in) the session's engine for
/// `r`, so profiling FDs after mining a schema over the same relation
/// reuses every cached term.
Result<std::vector<Fd>> DiscoverFds(AnalysisSession* session,
                                    const Relation& r,
                                    const FdDiscoveryOptions& options = {});

/// The information-theoretic FD error H(rhs | lhs) for one candidate.
double FdError(EntropyCalculator* calc, AttrSet lhs, uint32_t rhs);

}  // namespace ajd

#endif  // AJD_DISCOVERY_FD_H_
