#include "discovery/miner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/bounds.h"
#include "engine/analysis_session.h"
#include "info/entropy.h"
#include "info/j_measure.h"
#include "util/string_util.h"

namespace ajd {

namespace {

// A candidate split of one bag.
struct SplitCandidate {
  AttrSet separator;
  AttrSet side_a;  // A u C
  AttrSet side_b;  // B u C
  double cmi = std::numeric_limits<double>::infinity();
  double sep_entropy = std::numeric_limits<double>::infinity();
  bool valid = false;
};

// Margin a candidate must win by before it replaces the incumbent in any
// scoring or candidate comparison. Entropy values may differ by ~1e-12
// between runs with different cache-fill histories (serial vs threaded
// fills perturb fp accumulation order), so any argmin decided by a smaller
// gap would let that noise pick different splits in different modes. At or
// below this margin the earliest candidate in the deterministic scan order
// wins instead. Must comfortably dominate the fill-order noise; 1e-9
// matches the CMI clamp in the engine.
constexpr double kSelectionEps = 1e-9;

// Ordering on candidates: primarily by CMI; ties (within tolerance) go to
// the separator with smaller entropy. Without the tie-break, conditioning
// on a key attribute always achieves CMI = 0 while duplicating the key into
// every bag — a useless decomposition for storage.
bool BetterThan(const SplitCandidate& a, const SplitCandidate& b) {
  if (!a.valid) return false;
  if (!b.valid) return true;
  if (a.cmi < b.cmi - kSelectionEps) return true;
  if (a.cmi > b.cmi + kSelectionEps) return false;
  return a.sep_entropy < b.sep_entropy - kSelectionEps;
}

// The units that must stay on one side of a split: the (separator-minus-C)
// groups of existing neighbor edges, plus singletons for loose attributes.
std::vector<AttrSet> BuildUnits(AttrSet bag, AttrSet c,
                                const std::vector<AttrSet>& neighbor_seps) {
  std::vector<AttrSet> units;
  AttrSet grouped;
  for (AttrSet sep : neighbor_seps) {
    AttrSet residual = sep.Minus(c);
    if (residual.Empty()) continue;
    // Merge overlapping residuals into one unit (both constraints then pin
    // the union to a single side).
    AttrSet merged = residual;
    std::vector<AttrSet> next_units;
    for (AttrSet u : units) {
      if (!u.DisjointFrom(merged)) {
        merged = merged.Union(u);
      } else {
        next_units.push_back(u);
      }
    }
    next_units.push_back(merged);
    units = std::move(next_units);
    grouped = grouped.Union(residual);
  }
  AttrSet loose = bag.Minus(c).Minus(grouped);
  loose.ForEach([&](uint32_t a) { units.push_back(AttrSet::Singleton(a)); });
  return units;
}

// Expands an assignment (bitmask over units: 1 = side A) into its sides.
void ExpandMask(const std::vector<AttrSet>& units, uint64_t mask, AttrSet* a,
                AttrSet* b) {
  for (size_t u = 0; u < units.size(); ++u) {
    if ((mask >> u) & 1) {
      *a = a->Union(units[u]);
    } else {
      *b = b->Union(units[u]);
    }
  }
}

// Scores an assignment and returns the CMI.
double ScoreAssignment(EntropyCalculator* calc,
                       const std::vector<AttrSet>& units, uint64_t mask,
                       AttrSet c, AttrSet* side_a, AttrSet* side_b) {
  AttrSet a, b;
  ExpandMask(units, mask, &a, &b);
  *side_a = a.Union(c);
  *side_b = b.Union(c);
  return calc->ConditionalMutualInformation(a, b, c);
}

// Exhaustive enumeration is feasible up to this many units (2^15 candidate
// masks); beyond it BestBipartition hill-climbs.
constexpr size_t kMaxExhaustiveUnits = 16;

// Adds the side terms H(A u C), H(B u C) of every exhaustive candidate
// mask for `units` under separator `c` to *terms. Deduping at insertion
// keeps the transient bounded by the number of DISTINCT attr-sets (side
// terms overlap heavily across masks and separators), not by the mask
// count. No-op when the space is too large to enumerate (the hill-climb
// case batches per neighborhood instead).
void CollectExhaustiveTerms(const std::vector<AttrSet>& units, AttrSet c,
                            std::unordered_set<AttrSet, AttrSetHash>* terms) {
  const size_t k = units.size();
  if (k < 2 || k > kMaxExhaustiveUnits) return;
  const uint64_t total = uint64_t{1} << k;
  // Skip empty/full masks; halve the space by fixing unit 0 on side A
  // (mirrors the scoring loop below).
  for (uint64_t mask = 1; mask < total; ++mask) {
    if ((mask & 1) == 0) continue;      // unit 0 pinned to A
    if (mask == total - 1) continue;    // side B empty
    AttrSet a, b;
    ExpandMask(units, mask, &a, &b);
    terms->insert(a.Union(c));
    terms->insert(b.Union(c));
  }
}

// Exhaustive best bipartition: every candidate's terms were already batched
// by BestSplit, so the mask-order scan below reads a warm cache; selection
// is deterministic regardless of how many threads filled it.
SplitCandidate BestBipartitionExhaustive(EntropyCalculator* calc,
                                         const std::vector<AttrSet>& units,
                                         AttrSet c) {
  SplitCandidate best;
  best.separator = c;
  const size_t k = units.size();
  const uint64_t total = uint64_t{1} << k;
  for (uint64_t mask = 1; mask < total; ++mask) {
    if ((mask & 1) == 0) continue;
    if (mask == total - 1) continue;
    AttrSet sa, sb;
    double cmi = ScoreAssignment(calc, units, mask, c, &sa, &sb);
    if (!best.valid || cmi < best.cmi - kSelectionEps) {
      best.cmi = cmi;
      best.side_a = sa;
      best.side_b = sb;
      best.valid = true;
    }
  }
  return best;
}

// Hill climbing with restarts for spaces too large to enumerate. Each sweep
// scores the whole neighborhood — the k single-unit flips of the current
// mask, 4 entropy terms each of which H(A u B u C) and H(C) are shared —
// as one deduped batch, then applies the steepest strictly-improving flip.
// Selection happens after the batch completes, in ascending unit order, so
// serial and threaded engines walk identical trajectories.
SplitCandidate BestBipartitionHillClimb(EntropyCalculator* calc,
                                        const std::vector<AttrSet>& units,
                                        AttrSet c, const MinerOptions& options,
                                        Rng* rng) {
  SplitCandidate best;
  best.separator = c;
  const size_t k = units.size();
  // k can reach 64 (a kMaxAttrs relation under the empty separator), where
  // `1 << k` would be undefined.
  const uint64_t full =
      k >= 64 ? ~uint64_t{0} : (uint64_t{1} << k) - 1;
  const bool batch = calc->engine().ParallelBatches();
  std::vector<AttrSet> terms;
  for (uint32_t restart = 0; restart < options.hill_climb_restarts;
       ++restart) {
    uint64_t mask = 0;
    // Random non-trivial start.
    for (size_t u = 0; u < k; ++u) {
      if (rng->Bernoulli(0.5)) mask |= uint64_t{1} << u;
    }
    if (mask == 0) mask = 1;
    if (mask == full) mask &= ~uint64_t{1};
    AttrSet sa, sb;
    double current = ScoreAssignment(calc, units, mask, c, &sa, &sb);
    bool improved = true;
    while (improved) {
      improved = false;
      if (batch) {
        terms.clear();
        for (size_t u = 0; u < k; ++u) {
          uint64_t flipped = mask ^ (uint64_t{1} << u);
          if (flipped == 0 || flipped == full) continue;
          AttrSet a, b;
          ExpandMask(units, flipped, &a, &b);
          terms.push_back(a.Union(c));
          terms.push_back(b.Union(c));
        }
        calc->engine().WarmEntropies(terms);  // values re-read below
      }
      size_t best_u = k;
      double best_cmi = current;
      AttrSet ba, bb;
      for (size_t u = 0; u < k; ++u) {
        uint64_t flipped = mask ^ (uint64_t{1} << u);
        if (flipped == 0 || flipped == full) continue;
        AttrSet ta, tb;
        double cmi = ScoreAssignment(calc, units, flipped, c, &ta, &tb);
        if (cmi < best_cmi - kSelectionEps) {
          best_cmi = cmi;
          best_u = u;
          ba = ta;
          bb = tb;
        }
      }
      if (best_u < k) {
        mask ^= uint64_t{1} << best_u;
        current = best_cmi;
        sa = ba;
        sb = bb;
        improved = true;
      }
    }
    if (!best.valid || current < best.cmi - kSelectionEps) {
      best.cmi = current;
      best.side_a = sa;
      best.side_b = sb;
      best.valid = true;
    }
  }
  return best;
}

// One separator's share of a split search: the separator and the immovable
// unit groups of the remainder.
struct SeparatorWork {
  AttrSet c;
  std::vector<AttrSet> units;
};

// Finds the best split of `bag` over all separators up to the size cap.
// All separators of one size build their candidate entropy-term lists up
// front and fan out through one deduped batch, so a threaded engine
// saturates its pool on the misses; the selection pass that follows runs
// in subset-enumeration order either way, keeping the result independent
// of thread count.
SplitCandidate BestSplit(EntropyCalculator* calc, AttrSet bag,
                const std::vector<AttrSet>& neighbor_seps,
                const MinerOptions& options, Rng* rng) {
  SplitCandidate best;
  uint32_t max_sep = std::min(options.max_separator_size, bag.Count());
  for (uint32_t size = 0; size <= max_sep; ++size) {
    std::vector<SeparatorWork> work;
    ForEachSubsetOfSize(bag, size, [&](AttrSet c) {
      work.push_back({c, BuildUnits(bag, c, neighbor_seps)});
    });

    // Seed the separator ancestors: every candidate term is a superset of
    // its separator, so a materialized C partition turns each A u C / B u C
    // miss into a single refinement step. Worth it even on a serial engine.
    std::vector<AttrSet> seps;
    seps.reserve(work.size());
    for (const SeparatorWork& w : work) seps.push_back(w.c);
    calc->engine().PrewarmSubsets(seps);

    if (calc->engine().ParallelBatches()) {
      // One deduped batch for every exhaustive candidate this size emits
      // (every mask shares H(bag) and H(C), neighboring masks share side
      // terms). With a serial engine the scoring loop below fills the same
      // cache at the same cost, so the batch would be pure overhead.
      std::unordered_set<AttrSet, AttrSetHash> term_set;
      term_set.insert(bag);
      for (const SeparatorWork& w : work) {
        if (!w.c.Empty()) term_set.insert(w.c);
        CollectExhaustiveTerms(w.units, w.c, &term_set);
      }
      // Set order is irrelevant: WarmEntropies sorts its miss list before
      // computing, so the cache fill stays deterministic.
      calc->engine().WarmEntropies(
          std::vector<AttrSet>(term_set.begin(), term_set.end()));
    }

    for (const SeparatorWork& w : work) {
      if (w.units.size() < 2) continue;  // cannot split
      SplitCandidate s =
          w.units.size() <= kMaxExhaustiveUnits
              ? BestBipartitionExhaustive(calc, w.units, w.c)
              : BestBipartitionHillClimb(calc, w.units, w.c, options, rng);
      if (!s.valid) continue;
      s.sep_entropy = calc->Entropy(w.c);
      if (BetterThan(s, best)) best = s;
    }
  }
  return best;
}

// Mutable tree under construction.
struct WorkTree {
  std::vector<AttrSet> bags;
  std::vector<bool> alive;
  // Edges as (u, v) pairs over work indexes; dead nodes have no edges.
  std::vector<std::pair<uint32_t, uint32_t>> edges;

  std::vector<uint32_t> NeighborsOf(uint32_t v) const {
    std::vector<uint32_t> out;
    for (auto [a, b] : edges) {
      if (a == v) out.push_back(b);
      if (b == v) out.push_back(a);
    }
    return out;
  }
};

}  // namespace

Result<MinerReport> MineJoinTree(const Relation& r,
                                 const MinerOptions& options) {
  // A throwaway session still shards: its engines share one worker pool
  // and one cache budget (SessionOptions defaults), so callers that mine
  // several relations through one session get global LRU across them.
  SessionOptions session_options;
  session_options.engine.num_threads = options.num_threads;
  session_options.engine.worker_pool = options.worker_pool;
  AnalysisSession session(session_options);
  return MineJoinTree(&session, r, options);
}

Result<MinerReport> MineJoinTree(AnalysisSession* session, const Relation& r,
                                 const MinerOptions& options) {
  if (r.NumAttrs() < 2) {
    return Status::InvalidArgument("miner needs at least two attributes");
  }
  if (r.NumRows() == 0) {
    return Status::InvalidArgument("miner needs a non-empty relation");
  }
  EntropyCalculator calc(session, &r);
  Rng rng(options.seed);

  WorkTree work;
  work.bags.push_back(r.schema().AllAttrs());
  work.alive.push_back(true);

  std::vector<SplitRecord> splits;
  double sum_cmi = 0.0;

  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t v = 0; v < work.bags.size(); ++v) {
      if (!work.alive[v]) continue;
      AttrSet bag = work.bags[v];
      if (bag.Count() < 2) continue;
      std::vector<uint32_t> neighbors = work.NeighborsOf(v);
      std::vector<AttrSet> neighbor_seps;
      neighbor_seps.reserve(neighbors.size());
      for (uint32_t u : neighbors) {
        neighbor_seps.push_back(bag.Intersect(work.bags[u]));
      }
      SplitCandidate split = BestSplit(&calc, bag, neighbor_seps, options, &rng);
      if (!split.valid) continue;
      const bool forced = bag.Count() > options.max_bag_size;
      if (!forced && split.cmi > options.cmi_threshold) continue;

      // Apply: v becomes side A; a fresh node becomes side B.
      uint32_t vb = static_cast<uint32_t>(work.bags.size());
      work.bags[v] = split.side_a;
      work.bags.push_back(split.side_b);
      work.alive.push_back(true);
      // Re-attach neighbors to the side containing their separator.
      for (auto& [a, b] : work.edges) {
        uint32_t* endpoint = nullptr;
        uint32_t other = 0;
        if (a == v) {
          endpoint = &a;
          other = b;
        } else if (b == v) {
          endpoint = &b;
          other = a;
        } else {
          continue;
        }
        AttrSet sep = work.bags[other].Intersect(bag);
        if (!sep.IsSubsetOf(split.side_a)) {
          AJD_CHECK(sep.IsSubsetOf(split.side_b));
          *endpoint = vb;
        }
      }
      work.edges.emplace_back(v, vb);
      splits.push_back({split.separator, split.side_a, split.side_b,
                        std::max(split.cmi, 0.0)});
      sum_cmi += std::max(split.cmi, 0.0);
      progress = true;
    }
  }

  // Contract bags contained in a neighbor (keeps the schema reduced).
  bool contracted = true;
  while (contracted) {
    contracted = false;
    for (uint32_t v = 0; v < work.bags.size() && !contracted; ++v) {
      if (!work.alive[v]) continue;
      for (uint32_t u : work.NeighborsOf(v)) {
        if (work.bags[v].IsSubsetOf(work.bags[u])) {
          // Move v's other edges to u, drop v.
          std::vector<std::pair<uint32_t, uint32_t>> next_edges;
          for (auto [a, b] : work.edges) {
            if ((a == v && b == u) || (a == u && b == v)) continue;
            if (a == v) a = u;
            if (b == v) b = u;
            next_edges.emplace_back(a, b);
          }
          work.edges = std::move(next_edges);
          work.alive[v] = false;
          contracted = true;
          break;
        }
      }
    }
  }

  // Compact to final ids and build the validated JoinTree.
  std::vector<uint32_t> remap(work.bags.size(), UINT32_MAX);
  std::vector<AttrSet> bags;
  for (uint32_t v = 0; v < work.bags.size(); ++v) {
    if (work.alive[v]) {
      remap[v] = static_cast<uint32_t>(bags.size());
      bags.push_back(work.bags[v]);
    }
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (auto [a, b] : work.edges) {
    AJD_CHECK(remap[a] != UINT32_MAX && remap[b] != UINT32_MAX);
    edges.emplace_back(remap[a], remap[b]);
  }
  Result<JoinTree> tree = JoinTree::Make(std::move(bags), std::move(edges));
  if (!tree.ok()) {
    return Status::Internal("miner produced an invalid tree: " +
                            tree.status().ToString());
  }

  // Member-by-member assembly (not positional aggregate init): adding a
  // field to MinerReport must not silently shift later initializers onto
  // the wrong members.
  MinerReport report{std::move(tree).value()};
  report.splits = std::move(splits);
  report.sum_split_cmi = sum_cmi;
  report.j = JMeasure(&calc, report.tree);
  report.rho_lower_bound = RhoLowerBoundFromJ(report.j);
  return report;
}

std::string MinerReport::ToString(const Schema& schema) const {
  auto names = [&schema](AttrSet s) {
    std::string out = "{";
    bool first = true;
    s.ForEach([&](uint32_t pos) {
      if (!first) out += ",";
      first = false;
      out += schema.attr(pos).name;
    });
    return out + "}";
  };
  std::string s = "Mined join tree with " +
                  std::to_string(tree.NumNodes()) + " bags:\n";
  for (uint32_t v = 0; v < tree.NumNodes(); ++v) {
    s += "  bag " + std::to_string(v) + " = " + names(tree.bag(v)) + "\n";
  }
  s += "splits:\n";
  for (const SplitRecord& sp : splits) {
    s += "  " + names(sp.separator) + " ->> " + names(sp.side_a) + " | " +
         names(sp.side_b) + "  CMI = " + FormatDouble(sp.cmi) + "\n";
  }
  s += "sum split CMI = " + FormatDouble(sum_split_cmi) +
       " (>= J), J = " + FormatDouble(j) +
       ", Lemma 4.1 loss lower bound rho >= " +
       FormatDouble(rho_lower_bound) + "\n";
  return s;
}

}  // namespace ajd
