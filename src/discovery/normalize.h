// Classic FD-driven normalization (Section 1 of the paper situates AJDs in
// the normal-form hierarchy: 3NF/BCNF from FDs, 4NF from MVDs, 5NF from
// JDs). This module provides:
//
//  * attribute-set closure under a set of FDs,
//  * candidate-key discovery,
//  * BCNF decomposition (binary splitting on violating FDs).
//
// The resulting schema is a set of attribute bags. BCNF decomposition is
// lossless by construction; the test suite verifies it END TO END with the
// paper's machinery: GYO builds a join tree for the decomposition when it
// is acyclic, and ComputeLoss / JMeasure confirm rho = 0 and J = 0.
#ifndef AJD_DISCOVERY_NORMALIZE_H_
#define AJD_DISCOVERY_NORMALIZE_H_

#include <vector>

#include "discovery/fd.h"
#include "relation/attr_set.h"
#include "util/status.h"

namespace ajd {

/// The closure of `attrs` under `fds`: the largest set X with attrs -> X.
AttrSet Closure(AttrSet attrs, const std::vector<Fd>& fds);

/// True iff lhs -> rhs follows from `fds` (rhs subset of Closure(lhs)).
bool Implies(const std::vector<Fd>& fds, AttrSet lhs, AttrSet rhs);

/// All candidate keys of a relation scheme `universe` under `fds`
/// (minimal sets whose closure is the universe). Exponential in the worst
/// case; intended for profiling-scale schemas (<= 20 attributes).
Result<std::vector<AttrSet>> CandidateKeys(AttrSet universe,
                                           const std::vector<Fd>& fds);

/// True iff the scheme `bag` is in BCNF w.r.t. the PROJECTION of `fds`
/// onto it: every nontrivial FD X -> A with X u {A} inside the bag has
/// X a superkey of the bag.
bool IsBcnf(AttrSet bag, const std::vector<Fd>& fds);

/// One step of the standard BCNF algorithm's violation search: a
/// nontrivial FD inside `bag` whose lhs is not a superkey of `bag`, if any.
/// Considers implied FDs via closures of subsets of `bag` (sound and
/// complete for bags up to ~20 attributes).
struct BcnfViolation {
  bool found = false;
  AttrSet lhs;
  AttrSet closure_in_bag;  ///< Closure(lhs) restricted to the bag.
};
BcnfViolation FindBcnfViolation(AttrSet bag, const std::vector<Fd>& fds);

/// BCNF decomposition of `universe` under `fds`: repeatedly splits a bag
/// with a violating FD X -> Y into (X u Y) and (bag \ Y). Lossless by
/// construction (each split is on a key of one side). Returns the final
/// bags (pairwise incomparable).
Result<std::vector<AttrSet>> BcnfDecompose(AttrSet universe,
                                           const std::vector<Fd>& fds);

}  // namespace ajd

#endif  // AJD_DISCOVERY_NORMALIZE_H_
