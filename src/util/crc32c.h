// CRC-32C (Castagnoli, polynomial 0x1EDC6F41): the checksum guarding the
// persistent cache tier's on-disk bytes (persist/persistent_store.h) —
// manifest journal records and partition blob payloads. CRC-32C is the
// variant hardware-accelerated everywhere (SSE4.2 crc32, ARMv8 CRC32C) and
// the one used by RocksDB, LevelDB, and ext4 metadata; this implementation
// is the portable slice-by-4 table walk, plenty for the store's write
// rates, and bit-compatible with the accelerated forms should one ever be
// added.
#ifndef AJD_UTIL_CRC32C_H_
#define AJD_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ajd {

/// CRC-32C of `n` bytes. Equal to Crc32cExtend(0, data, n).
uint32_t Crc32c(const void* data, size_t n);

/// Continues a CRC-32C: returns the checksum of the concatenation of the
/// bytes `crc` summarizes and these `n` bytes. Crc32cExtend(0, ...) starts
/// a fresh sum (the empty string's CRC is 0).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace ajd

#endif  // AJD_UTIL_CRC32C_H_
