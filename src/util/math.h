// Numeric helpers shared across the library: logarithm conventions, safe
// integer arithmetic over huge product domains, mixed-radix codecs, and the
// small scalar functions used throughout the paper's bounds.
//
// Convention: ALL information-theoretic quantities in this library are in
// nats (natural logarithm). See DESIGN.md. NatsToBits/BitsToNats convert.
#ifndef AJD_UTIL_MATH_H_
#define AJD_UTIL_MATH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace ajd {

/// ln(2), used to convert between nats and bits.
inline constexpr double kLn2 = 0.6931471805599453094;

/// Converts an information quantity from nats to bits.
inline double NatsToBits(double nats) { return nats / kLn2; }

/// Converts an information quantity from bits to nats.
inline double BitsToNats(double bits) { return bits * kLn2; }

/// x * ln(x) with the standard continuous extension 0 ln 0 = 0.
/// This is the building block of all entropy computations.
inline double XLogX(double x) { return x > 0.0 ? x * std::log(x) : 0.0; }

/// The paper's g(t) = -t ln t (Section 5.2.2), continuously extended at 0.
inline double NegTLogT(double t) { return -XLogX(t); }

/// The paper's h(t) = t ln(1 + t) (Eq. 57).
inline double TLog1p(double t) { return t * std::log1p(t); }

/// The paper's C(d) = 2 ln(d) / sqrt(d) (Eq. 45): the additive slack in the
/// expected-entropy bound of Proposition 5.4.
inline double EntropySlackC(double d) {
  return 2.0 * std::log(d) / std::sqrt(d);
}

/// Returns a*b, or nullopt on uint64 overflow.
std::optional<uint64_t> CheckedMul(uint64_t a, uint64_t b);

/// Returns a+b, or nullopt on uint64 overflow.
std::optional<uint64_t> CheckedAdd(uint64_t a, uint64_t b);

/// Product of `dims`, or nullopt on overflow. Empty product is 1.
std::optional<uint64_t> CheckedProduct(const std::vector<uint64_t>& dims);

/// ln Gamma(x) for x > 0 (thin wrapper over std::lgamma; kept behind a
/// named function so call sites read as math, not libc).
inline double LogGamma(double x) { return std::lgamma(x); }

/// ln(n!) via lgamma.
inline double LogFactorial(uint64_t n) {
  return LogGamma(static_cast<double>(n) + 1.0);
}

/// ln C(n, k), the log binomial coefficient. Requires k <= n.
double LogBinomial(uint64_t n, uint64_t k);

/// Mixed-radix codec for the product domain [d_0] x ... x [d_{n-1}].
/// Encodes a coordinate vector as a single index in [0, prod d_i) and back.
/// Coordinates are 0-based; index 0 maps to the all-zero tuple, and the
/// LAST dimension varies fastest (row-major).
class MixedRadixCodec {
 public:
  /// Creates a codec over the given per-dimension sizes. All sizes must be
  /// >= 1 and the product must fit in uint64 (checked by Valid()).
  explicit MixedRadixCodec(std::vector<uint64_t> dims);

  /// True iff all dims >= 1 and the total product fits in uint64.
  bool Valid() const { return valid_; }

  /// Total number of points, prod d_i. Only meaningful when Valid().
  uint64_t Size() const { return size_; }

  /// Number of dimensions.
  size_t NumDims() const { return dims_.size(); }

  /// Size of dimension i.
  uint64_t Dim(size_t i) const { return dims_[i]; }

  /// Decodes `index` into `out` (resized to NumDims()). index < Size().
  void Decode(uint64_t index, std::vector<uint32_t>* out) const;

  /// Encodes a coordinate vector (coords[i] < Dim(i)) into an index.
  uint64_t Encode(const std::vector<uint32_t>& coords) const;

 private:
  std::vector<uint64_t> dims_;
  std::vector<uint64_t> strides_;  // strides_[i] = prod_{j>i} dims_[j]
  uint64_t size_ = 0;
  bool valid_ = false;
};

/// Mean of a vector (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation (0 for n < 2).
double SampleStdDev(const std::vector<double>& xs);

/// q-quantile (0 <= q <= 1) by linear interpolation on the sorted copy.
/// Returns 0 for empty input.
double Quantile(std::vector<double> xs, double q);

/// True iff |a - b| <= tol * max(1, |a|, |b|) (relative-absolute blend).
bool ApproxEqual(double a, double b, double tol = 1e-9);

}  // namespace ajd

#endif  // AJD_UTIL_MATH_H_
