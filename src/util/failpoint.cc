#include "util/failpoint.h"

#include <mutex>
#include <random>
#include <unordered_map>

namespace ajd {

FailpointConfig FailpointConfig::EveryNth(uint64_t n, uint64_t start_after) {
  FailpointConfig c;
  c.kind = Kind::kEveryNth;
  c.n = n == 0 ? 1 : n;
  c.start_after = start_after;
  return c;
}

FailpointConfig FailpointConfig::Probability(double p, uint64_t seed) {
  FailpointConfig c;
  c.kind = Kind::kProbability;
  c.probability = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  c.seed = seed;
  return c;
}

FailpointConfig FailpointConfig::OneShot(uint64_t after) {
  FailpointConfig c;
  c.kind = Kind::kOneShot;
  c.start_after = after;
  return c;
}

struct FailpointRegistry::Impl {
  struct Point {
    bool armed = false;
    FailpointConfig config;
    uint64_t evals = 0;     // since last Arm
    uint64_t triggers = 0;  // since last Arm
    bool one_shot_fired = false;
    std::mt19937_64 rng;
  };

  mutable std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

FailpointRegistry::FailpointRegistry() : impl_(new Impl) {}
FailpointRegistry::~FailpointRegistry() { delete impl_; }

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry;
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name, FailpointConfig config) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl::Point& p = impl_->points[name];
  p.armed = true;
  p.config = config;
  p.evals = 0;
  p.triggers = 0;
  p.one_shot_fired = false;
  p.rng.seed(config.seed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  if (it != impl_->points.end()) it->second.armed = false;
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, p] : impl_->points) {
    (void)name;
    p.armed = false;
  }
}

bool FailpointRegistry::ShouldFail(const char* name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  if (it == impl_->points.end() || !it->second.armed) return false;
  Impl::Point& p = it->second;
  const uint64_t eval = ++p.evals;
  bool fire = false;
  switch (p.config.kind) {
    case FailpointConfig::Kind::kEveryNth:
      fire = eval > p.config.start_after &&
             (eval - p.config.start_after) % p.config.n == 0;
      break;
    case FailpointConfig::Kind::kProbability: {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(p.rng) < p.config.probability;
      break;
    }
    case FailpointConfig::Kind::kOneShot:
      fire = !p.one_shot_fired && eval > p.config.start_after;
      if (fire) p.one_shot_fired = true;
      break;
  }
  if (fire) ++p.triggers;
  return fire;
}

uint64_t FailpointRegistry::Evaluations(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  return it == impl_->points.end() ? 0 : it->second.evals;
}

uint64_t FailpointRegistry::Triggers(const std::string& name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->points.find(name);
  return it == impl_->points.end() ? 0 : it->second.triggers;
}

const std::vector<std::string>& FailpointRegistry::Catalog() {
  static const std::vector<std::string> catalog = {
      failpoints::kRelationAppendReserve,
      failpoints::kRelationAppendStage,
      failpoints::kRelationIntern,
      failpoints::kCsvBatch,
      failpoints::kEngineComputePartition,
      failpoints::kEngineBatchTask,
      failpoints::kEngineCatchupExtend,
      failpoints::kEngineCatchupPublish,
      failpoints::kStreamingIngestBatch,
      failpoints::kPersistManifestAppend,
      failpoints::kPersistBlobWrite,
      failpoints::kPersistBlobRead,
      failpoints::kPersistCompactRename,
  };
  return catalog;
}

}  // namespace ajd
