// Assertion macros for programmer errors (contract violations). These abort
// with a diagnostic; they are NOT for data-dependent failures, which surface
// as ajd::Status.
#ifndef AJD_UTIL_CHECK_H_
#define AJD_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message if `cond` is false. Active in all build types:
/// the invariants guarded by AJD_CHECK are cheap relative to the numeric
/// work around them, and silent corruption is worse than an abort.
#define AJD_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "AJD_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// AJD_CHECK with an extra printf-style explanation.
#define AJD_CHECK_MSG(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "AJD_CHECK failed: %s at %s:%d: ", #cond,        \
                   __FILE__, __LINE__);                                     \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // AJD_UTIL_CHECK_H_
