// Status / Result error-handling primitives, in the RocksDB style: library
// operations that can fail for data-dependent reasons return a Status (or a
// Result<T> carrying a value), never throw.
#ifndef AJD_UTIL_STATUS_H_
#define AJD_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ajd {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed structurally invalid input.
  kNotFound,          ///< A referenced entity (attribute, file, ...) is absent.
  kOutOfRange,        ///< A numeric parameter lies outside its legal range.
  kFailedPrecondition,///< Object state does not admit the operation.
  kCapacityExceeded,  ///< A size limit (e.g. 64 attributes) was exceeded.
  kIoError,           ///< Underlying file / stream failure.
  kInternal,          ///< Invariant violation inside the library.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an explanatory message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy when OK
/// (message is empty) and carry a diagnostic string otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// The diagnostic message (empty for OK).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: either holds a T (status OK) or an error Status.
///
/// Usage:
///   Result<Relation> r = Relation::FromRows(...);
///   if (!r.ok()) return r.status();
///   UseRelation(r.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status (OK if a value is held).
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// The held value; must only be called when ok().
  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// The held value or `fallback` when this is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace ajd

#endif  // AJD_UTIL_STATUS_H_
