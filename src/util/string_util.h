// Small string helpers used by I/O and diagnostics.
#ifndef AJD_UTIL_STRING_UTIL_H_
#define AJD_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ajd {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Formats a double with `precision` significant digits (for tables/CSV).
std::string FormatDouble(double x, int precision = 6);

/// True iff `s` parses entirely as a non-negative integer; stores it in *out.
bool ParseUint64(std::string_view s, uint64_t* out);

}  // namespace ajd

#endif  // AJD_UTIL_STRING_UTIL_H_
