#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ajd {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatDouble(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, x);
  return buf;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace ajd
