#include "util/math.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace ajd {

std::optional<uint64_t> CheckedMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > std::numeric_limits<uint64_t>::max() / a) {
    return std::nullopt;
  }
  return a * b;
}

std::optional<uint64_t> CheckedAdd(uint64_t a, uint64_t b) {
  if (b > std::numeric_limits<uint64_t>::max() - a) return std::nullopt;
  return a + b;
}

std::optional<uint64_t> CheckedProduct(const std::vector<uint64_t>& dims) {
  uint64_t prod = 1;
  for (uint64_t d : dims) {
    auto next = CheckedMul(prod, d);
    if (!next) return std::nullopt;
    prod = *next;
  }
  return prod;
}

double LogBinomial(uint64_t n, uint64_t k) {
  AJD_CHECK(k <= n);
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

MixedRadixCodec::MixedRadixCodec(std::vector<uint64_t> dims)
    : dims_(std::move(dims)) {
  strides_.assign(dims_.size(), 1);
  uint64_t prod = 1;
  bool ok = true;
  for (size_t i = dims_.size(); i-- > 0;) {
    if (dims_[i] == 0) {
      ok = false;
      break;
    }
    strides_[i] = prod;
    auto next = CheckedMul(prod, dims_[i]);
    if (!next) {
      ok = false;
      break;
    }
    prod = *next;
  }
  size_ = prod;
  valid_ = ok;
}

void MixedRadixCodec::Decode(uint64_t index, std::vector<uint32_t>* out) const {
  AJD_CHECK(valid_);
  AJD_CHECK(index < size_);
  out->resize(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    uint64_t coord = index / strides_[i];
    index -= coord * strides_[i];
    (*out)[i] = static_cast<uint32_t>(coord);
  }
}

uint64_t MixedRadixCodec::Encode(const std::vector<uint32_t>& coords) const {
  AJD_CHECK(valid_);
  AJD_CHECK(coords.size() == dims_.size());
  uint64_t index = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    AJD_CHECK(coords[i] < dims_[i]);
    index += coords[i] * strides_[i];
  }
  return index;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  AJD_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  double pos = q * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

bool ApproxEqual(double a, double b, double tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace ajd
