// Deterministic, seedable fault injection for robustness tests.
//
// A *failpoint* is a named site in the runtime where a test can arm a
// failure: an allocation that throws, an I/O step that errors, a task that
// dies mid-batch. Production code marks the site with one of the macros
// below; tests arm it through FailpointRegistry with a trigger policy
// (every-Nth evaluation, probability-with-seed, one-shot) and assert that
// the surrounding layer survives — batch completes, relation rolls back,
// catch-up degrades, budget stays settled.
//
// Unless the build defines AJD_ENABLE_FAILPOINTS (CMake option
// -DAJD_ENABLE_FAILPOINTS=ON), every macro compiles to nothing — the
// release binary carries no branch, no string, no registry symbol at the
// marked sites. tier-1 and the perf smoke drivers run with the macros off;
// the fault-injection soak (tests/fault_injection_test.cc) runs with them
// on and drives every catalogued point.
//
// Thread safety: Arm/Disarm/ShouldFail are fully synchronized — failpoints
// are evaluated from pool worker threads and the maintenance thread while a
// test arms/disarms from the main thread.
#ifndef AJD_UTIL_FAILPOINT_H_
#define AJD_UTIL_FAILPOINT_H_

#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace ajd {

/// The exception thrown by AJD_INJECT_FAULT at an armed failpoint. Layers
/// under test must treat it like any other runtime failure (bad_alloc,
/// io error): contain it, roll back, convert to Status at the boundary.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& point)
      : std::runtime_error("injected fault at failpoint: " + point),
        point_(point) {}

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// Trigger policy for one armed failpoint. All policies are deterministic:
/// every-Nth and one-shot count evaluations since Arm; probability draws
/// from a per-point PRNG seeded at Arm, so a given (policy, seed) produces
/// the same firing pattern on every run.
struct FailpointConfig {
  enum class Kind { kEveryNth, kProbability, kOneShot };

  /// Fires on the n-th, 2n-th, ... evaluation after `start_after` skipped
  /// evaluations.
  static FailpointConfig EveryNth(uint64_t n, uint64_t start_after = 0);

  /// Fires each evaluation independently with probability `p`, drawn from
  /// a PRNG seeded with `seed` at Arm time.
  static FailpointConfig Probability(double p, uint64_t seed);

  /// Fires exactly once, on the first evaluation after `after` skipped
  /// evaluations; subsequent evaluations never fire.
  static FailpointConfig OneShot(uint64_t after = 0);

  Kind kind = Kind::kOneShot;
  uint64_t n = 1;            // kEveryNth period
  uint64_t start_after = 0;  // kEveryNth / kOneShot skip count
  double probability = 0.0;  // kProbability
  uint64_t seed = 0;         // kProbability
};

/// Process-wide registry of armed failpoints and per-point counters.
class FailpointRegistry {
 public:
  /// The process singleton.
  static FailpointRegistry& Instance();

  /// Arms `name` with `config`, resetting its evaluation/trigger counters
  /// and (for probability policies) reseeding its PRNG.
  void Arm(const std::string& name, FailpointConfig config);

  /// Disarms `name`; its counters survive so a test can still read them.
  void Disarm(const std::string& name);

  /// Disarms every point. Call between soak iterations.
  void DisarmAll();

  /// Evaluates `name` against its armed policy; false when unarmed. This
  /// is what the macros call — tests normally use Arm + the counters.
  bool ShouldFail(const char* name);

  /// Evaluations of `name` since it was last armed (0 if never armed).
  uint64_t Evaluations(const std::string& name) const;

  /// Times `name` actually fired since it was last armed.
  uint64_t Triggers(const std::string& name) const;

  /// Every failpoint name compiled into the library, for coverage
  /// assertions ("the soak fired each of these at least once").
  static const std::vector<std::string>& Catalog();

 private:
  FailpointRegistry();
  ~FailpointRegistry();

  struct Impl;
  Impl* impl_;
};

namespace failpoints {
// The catalog. Names are "layer/site"; each constant is referenced by
// exactly one AJD_FAILPOINT site in src/ and by the soak's coverage loop.
inline constexpr const char* kRelationAppendReserve = "relation/append_reserve";
inline constexpr const char* kRelationAppendStage = "relation/append_stage";
inline constexpr const char* kRelationIntern = "relation/intern";
inline constexpr const char* kCsvBatch = "io/csv_batch";
inline constexpr const char* kEngineComputePartition =
    "engine/compute_partition";
inline constexpr const char* kEngineBatchTask = "engine/batch_task";
inline constexpr const char* kEngineCatchupExtend = "engine/catchup_extend";
inline constexpr const char* kEngineCatchupPublish = "engine/catchup_publish";
inline constexpr const char* kStreamingIngestBatch = "streaming/ingest_batch";
// Persistence tier (persist/persistent_store.h). These four sites cover
// every durable write/read the store performs; unlike the throwing sites
// above they surface as Status (the store's API is exception-free), and the
// write-path pair doubles as a CRASH SIMULATOR: when a write site fires,
// only persist_internal::SetTornWriteBytes() bytes of the buffer actually
// reach the file, and with persist_internal::SetCrashSimulation(true) the
// store skips its in-process tidy-up (truncate-back / tmp removal) so the
// file is left exactly as a kill -9 at that byte would leave it — the
// crash-recovery soak then reopens the directory and asserts recovery.
inline constexpr const char* kPersistManifestAppend =
    "persist/manifest_append";  ///< journal record append (torn-write capable)
inline constexpr const char* kPersistBlobWrite =
    "persist/blob_write";  ///< blob temp-file write (torn-write capable)
inline constexpr const char* kPersistBlobRead =
    "persist/blob_read";  ///< blob load — fires as a checksum failure, so the
                          ///< blob quarantines and the caller falls back cold
inline constexpr const char* kPersistCompactRename =
    "persist/compact_rename";  ///< between manifest.tmp fsync and the atomic
                               ///< rename; crash-sim leaves the tmp behind
}  // namespace failpoints

}  // namespace ajd

#ifdef AJD_ENABLE_FAILPOINTS

/// True when the named failpoint is armed and its policy fires now.
#define AJD_FAILPOINT(name) \
  (::ajd::FailpointRegistry::Instance().ShouldFail(name))

/// Throws std::bad_alloc when the named failpoint fires — simulates an
/// allocation failure at this site.
#define AJD_INJECT_BAD_ALLOC(name)              \
  do {                                          \
    if (AJD_FAILPOINT(name)) throw std::bad_alloc(); \
  } while (0)

/// Throws ajd::InjectedFault when the named failpoint fires.
#define AJD_INJECT_FAULT(name)                          \
  do {                                                  \
    if (AJD_FAILPOINT(name)) throw ::ajd::InjectedFault(name); \
  } while (0)

#else  // !AJD_ENABLE_FAILPOINTS

#define AJD_FAILPOINT(name) (false)
#define AJD_INJECT_BAD_ALLOC(name) \
  do {                             \
  } while (0)
#define AJD_INJECT_FAULT(name) \
  do {                         \
  } while (0)

#endif  // AJD_ENABLE_FAILPOINTS

#endif  // AJD_UTIL_FAILPOINT_H_
